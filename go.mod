module banyan

go 1.22
