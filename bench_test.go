package banyan

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (section 9), plus the ablations of DESIGN.md section 6. Each
// benchmark replays the corresponding experiment on the deterministic WAN
// simulator at reduced virtual duration and reports the quantities the
// paper plots as custom metrics:
//
//	latency-ms     mean proposal finalization time at the proposer
//	p95-ms         95th-percentile latency
//	tput-MBps      committed payload megabytes per second
//	fast-share     fraction of explicit finalizations via the fast path
//
// cmd/bench runs the same experiments at paper-scale duration with the
// paper's reported numbers inlined; EXPERIMENTS.md records a full run.
//
// Wall-clock note: ns/op here measures simulator speed, not protocol
// latency — the protocol quantities are the reported custom metrics.

import (
	"testing"
	"time"

	"banyan/internal/crypto"
	"banyan/internal/harness"
	"banyan/internal/latencymodel"
	"banyan/internal/types"
	"banyan/internal/wan"
)

const benchDuration = 15 * time.Second // virtual seconds per run

func report(b *testing.B, res *harness.Result) {
	b.Helper()
	b.ReportMetric(float64(res.Latency.Mean)/1e6, "latency-ms")
	b.ReportMetric(float64(res.Latency.P95)/1e6, "p95-ms")
	b.ReportMetric(res.ThroughputBps/1e6, "tput-MBps")
	explicit := res.FastFinal + res.SlowFinal
	if explicit > 0 {
		b.ReportMetric(float64(res.FastFinal)/float64(explicit), "fast-share")
	}
}

func runBench(b *testing.B, cfg harness.Config) {
	b.Helper()
	if cfg.Duration == 0 {
		cfg.Duration = benchDuration
	}
	var last *harness.Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := harness.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	report(b, last)
}

func topo(b *testing.B, f func() (*wan.Topology, error)) *wan.Topology {
	b.Helper()
	t, err := f()
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// BenchmarkTable1 evaluates the analytic Table 1 model (the rendering is
// what cmd/bench -exp table1 prints) and measures the implemented rows'
// finalization latency in δ units on a uniform topology.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = latencymodel.Render(6, 1)
	}
	const oneWay = 50 * time.Millisecond
	u := wan.Uniform(4, oneWay)
	for _, proto := range harness.Protocols() {
		res, err := harness.Run(harness.Config{
			Protocol:    proto,
			Params:      harness.ParamsFor(proto, 4, 1, 1),
			Topology:    u,
			BlockSize:   1 << 10,
			Duration:    benchDuration,
			Seed:        1,
			ProcRateBps: -1,
			ProcFixed:   -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Latency.Mean)/float64(oneWay), string(proto)+"-steps")
	}
}

// BenchmarkFigure1 measures the communication steps to finality: Banyan 2,
// ICC 3 (Figure 1's claim), on a uniform topology where latency/δ equals
// the step count.
func BenchmarkFigure1(b *testing.B) {
	const oneWay = 50 * time.Millisecond
	u := wan.Uniform(4, oneWay)
	for _, proto := range []harness.Protocol{harness.Banyan, harness.ICC} {
		b.Run(string(proto), func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Config{
					Protocol:    proto,
					Params:      harness.ParamsFor(proto, 4, 1, 1),
					Topology:    u,
					BlockSize:   1 << 10,
					Duration:    benchDuration,
					Seed:        uint64(i + 1),
					ProcRateBps: -1,
					ProcFixed:   -1,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Latency.Mean)/float64(oneWay), "steps")
			report(b, last)
		})
	}
}

// BenchmarkFigure2 shows the integrated dual mode: with the fast path
// unable to fire (two crashed replicas at p=1), Banyan's latency equals
// ICC's — no switching cost.
func BenchmarkFigure2(b *testing.B) {
	t := topo(b, wan.FourGlobal19)
	crash := []harness.CrashSpec{{Replica: 17}, {Replica: 18}}
	for _, proto := range []harness.Protocol{harness.Banyan, harness.ICC} {
		b.Run(string(proto)+"-fastpath-dark", func(b *testing.B) {
			runBench(b, harness.Config{
				Protocol:  proto,
				Params:    harness.ParamsFor(proto, 19, 6, 1),
				Topology:  t,
				BlockSize: 400 << 10,
				Crash:     crash,
			})
		})
	}
}

// BenchmarkFigure6a is the primary testbed: n=19 across 4 global
// datacenters, block-size sweep, all protocol configurations.
func BenchmarkFigure6a(b *testing.B) {
	t := topo(b, wan.FourGlobal19)
	cases := []struct {
		name  string
		proto harness.Protocol
		f, p  int
	}{
		{"banyan-p1", harness.Banyan, 6, 1},
		{"banyan-p4", harness.Banyan, 4, 4},
		{"icc", harness.ICC, 6, 0},
		{"hotstuff", harness.HotStuff, 6, 0},
		{"streamlet", harness.Streamlet, 6, 0},
	}
	for _, size := range []int{100 << 10, 400 << 10, 1600 << 10} {
		for _, tc := range cases {
			b.Run(tc.name+"/"+sizeName(size), func(b *testing.B) {
				runBench(b, harness.Config{
					Protocol:  tc.proto,
					Params:    harness.ParamsFor(tc.proto, 19, tc.f, tc.p),
					Topology:  t,
					BlockSize: size,
				})
			})
		}
	}
}

// BenchmarkFigure6b is the small-cluster testbed: n=4, one replica per
// global datacenter.
func BenchmarkFigure6b(b *testing.B) {
	t := topo(b, wan.FourGlobal4)
	cases := []struct {
		name  string
		proto harness.Protocol
	}{
		{"banyan-p1", harness.Banyan},
		{"icc", harness.ICC},
		{"hotstuff", harness.HotStuff},
		{"streamlet", harness.Streamlet},
	}
	for _, size := range []int{500 << 10, 1 << 20, 2 << 20} {
		for _, tc := range cases {
			b.Run(tc.name+"/"+sizeName(size), func(b *testing.B) {
				runBench(b, harness.Config{
					Protocol:  tc.proto,
					Params:    harness.ParamsFor(tc.proto, 4, 1, 1),
					Topology:  t,
					BlockSize: size,
				})
			})
		}
	}
}

// BenchmarkFigure6c measures latency variance (n=4, 1MB): Banyan's fast
// path must not be more variable than ICC.
func BenchmarkFigure6c(b *testing.B) {
	t := topo(b, wan.FourGlobal4)
	for _, proto := range []harness.Protocol{harness.Banyan, harness.ICC} {
		b.Run(string(proto), func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Config{
					Protocol:   proto,
					Params:     harness.ParamsFor(proto, 4, 1, 1),
					Topology:   t,
					BlockSize:  1 << 20,
					Duration:   benchDuration,
					Seed:       uint64(i + 1),
					JitterFrac: 0.08,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			report(b, last)
			b.ReportMetric(float64(last.Latency.StdDev)/1e6, "stddev-ms")
			b.ReportMetric(float64(last.Latency.P99)/1e6, "p99-ms")
		})
	}
}

// BenchmarkFigure6d is the crash-fault experiment: n=19 across 4 US
// datacenters, 3-second timeout (Δ=1.5s), crashes spread over DCs.
func BenchmarkFigure6d(b *testing.B) {
	t := topo(b, wan.FourUS19)
	spread := []types.ReplicaID{0, 5, 10, 15, 1, 6}
	for _, crashes := range []int{0, 2, 4, 6} {
		var specs []harness.CrashSpec
		for i := 0; i < crashes; i++ {
			specs = append(specs, harness.CrashSpec{Replica: spread[i]})
		}
		for _, proto := range []harness.Protocol{harness.Banyan, harness.ICC} {
			b.Run(benchName(string(proto), crashes), func(b *testing.B) {
				var last *harness.Result
				for i := 0; i < b.N; i++ {
					res, err := harness.Run(harness.Config{
						Protocol:  proto,
						Params:    harness.ParamsFor(proto, 19, 6, 1),
						Topology:  t,
						BlockSize: 400 << 10,
						Duration:  30 * time.Second, // timeouts need longer runs
						Delta:     1500 * time.Millisecond,
						Seed:      uint64(i + 1),
						Crash:     specs,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				report(b, last)
				b.ReportMetric(float64(last.BlockInterval)/1e6, "blkint-ms")
			})
		}
	}
}

// BenchmarkFigure6e is the worldwide testbed: one replica in each of 19
// regions, 1MB blocks.
func BenchmarkFigure6e(b *testing.B) {
	t := topo(b, wan.Global19)
	cases := []struct {
		name  string
		proto harness.Protocol
		f, p  int
	}{
		{"banyan-f6-p1", harness.Banyan, 6, 1},
		{"banyan-f4-p4", harness.Banyan, 4, 4},
		{"icc", harness.ICC, 6, 0},
		{"hotstuff", harness.HotStuff, 6, 0},
		{"streamlet", harness.Streamlet, 6, 0},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			runBench(b, harness.Config{
				Protocol:  tc.proto,
				Params:    harness.ParamsFor(tc.proto, 19, tc.f, tc.p),
				Topology:  t,
				BlockSize: 1 << 20,
			})
		})
	}
}

// BenchmarkAblationFastPath isolates the fast path: full Banyan vs Banyan
// with the fast path disabled vs ICC (DESIGN.md section 6).
func BenchmarkAblationFastPath(b *testing.B) {
	t := topo(b, wan.FourGlobal4)
	for _, tc := range []struct {
		name  string
		proto harness.Protocol
	}{
		{"banyan", harness.Banyan},
		{"banyan-nofast", harness.BanyanNoFast},
		{"icc", harness.ICC},
	} {
		b.Run(tc.name, func(b *testing.B) {
			runBench(b, harness.Config{
				Protocol:  tc.proto,
				Params:    harness.ParamsFor(tc.proto, 4, 1, 1),
				Topology:  t,
				BlockSize: 1 << 20,
			})
		})
	}
}

// BenchmarkAblationP sweeps the fast-path parameter p at n=19.
func BenchmarkAblationP(b *testing.B) {
	t := topo(b, wan.FourGlobal19)
	for _, pp := range []struct{ f, p int }{{6, 1}, {5, 2}, {4, 4}} {
		b.Run(benchName("p", pp.p), func(b *testing.B) {
			runBench(b, harness.Config{
				Protocol:  harness.Banyan,
				Params:    types.Params{N: 19, F: pp.f, P: pp.p},
				Topology:  t,
				BlockSize: 400 << 10,
			})
		})
	}
}

// BenchmarkAblationForwarding measures the tip-forwarding relay
// (Algorithm 1 line 35, the Bamboo fix of section 9.1).
func BenchmarkAblationForwarding(b *testing.B) {
	t := topo(b, wan.FourGlobal19)
	for _, off := range []bool{false, true} {
		name := "forwarding-on"
		if off {
			name = "forwarding-off"
		}
		b.Run(name, func(b *testing.B) {
			runBench(b, harness.Config{
				Protocol:     harness.Banyan,
				Params:       types.Params{N: 19, F: 6, P: 1},
				Topology:     t,
				BlockSize:    400 << 10,
				NoForwarding: off,
			})
		})
	}
}

// BenchmarkAblationGeography compares quorum geographies: the fast path
// gains most when a whole datacenter is the outlier (paper section 9.3's
// explanation of the p=4 result).
func BenchmarkAblationGeography(b *testing.B) {
	cases := []struct {
		name string
		dcs  []string
	}{
		{"spread", []string{"us-east-1", "us-west-2", "eu-central-1", "ap-northeast-1"}},
		{"colocated-outlier", []string{"us-east-1", "us-east-2", "ca-central-1", "ap-southeast-2"}},
		{"regional", []string{"us-east-1", "us-east-2", "us-west-1", "us-west-2"}},
	}
	for _, tc := range cases {
		t, err := wan.Colocated("geo-"+tc.name, tc.dcs, []int{5, 5, 5, 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, proto := range []harness.Protocol{harness.Banyan, harness.ICC} {
			b.Run(tc.name+"/"+string(proto), func(b *testing.B) {
				f, p := 4, 4
				if proto == harness.ICC {
					f, p = 6, 0
				}
				runBench(b, harness.Config{
					Protocol:  proto,
					Params:    harness.ParamsFor(proto, 19, f, p),
					Topology:  t,
					BlockSize: 400 << 10,
				})
			})
		}
	}
}

// BenchmarkEngineThroughput measures raw engine speed (events/second in
// the simulator) — the cost of the consensus logic itself, without any
// simulated network delay.
func BenchmarkEngineThroughput(b *testing.B) {
	u := wan.Uniform(4, 100*time.Microsecond)
	for _, proto := range harness.Protocols() {
		b.Run(string(proto), func(b *testing.B) {
			var blocks int64
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Config{
					Protocol:  proto,
					Params:    harness.ParamsFor(proto, 4, 1, 1),
					Topology:  u,
					BlockSize: 1 << 10,
					Duration:  5 * time.Second,
					Seed:      uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				blocks += res.BlocksCommitted
			}
			b.ReportMetric(float64(blocks)/float64(b.N), "blocks-per-5s")
		})
	}
}

// ---------------------------------------------------------------------------
// Signature-verification pipeline benchmarks: the sequential baseline
// (crypto.VerifyCert, one ed25519 operation per signature per delivery)
// against the batched pipeline (crypto.Verifier: worker pool + verified-
// signature cache). Two workloads per cluster size:
//
//   - gossip: a round's notarization certificate delivered 3 times — the
//     original broadcast, a tip-forwarding relay, and the Advance all carry
//     the same quorum of signatures. This is what the engine's ingestion
//     path actually sees; the cache collapses deliveries 2 and 3.
//   - cold: every signature seen exactly once (worst case for the cache;
//     the worker pool is the only lever, so on a single-core host this
//     pair measures the pipeline's overhead).
//
// The batched side builds a fresh Verifier every iteration, so cache state
// never carries across iterations: each measurement is one cold delivery
// plus two warm ones, exactly the per-round cost.

const gossipRedundancy = 3

// verifyFixture is a keyring plus one quorum-sized notarization
// certificate, the unit of verification work per round.
type verifyFixture struct {
	keyring *crypto.Keyring
	cert    *types.Certificate
	quorum  int
}

func newVerifyFixture(b *testing.B, n int) *verifyFixture {
	b.Helper()
	params := types.Params{N: n, F: (n - 1) / 3, P: 1}
	quorum := params.NotarizationQuorum()
	keyring, signers := crypto.GenerateCluster(crypto.Ed25519(), n, 1)
	var block types.BlockID
	block[0] = 7
	votes := make([]types.Vote, quorum)
	for i := range votes {
		votes[i] = signers[i].SignVote(types.VoteNotarize, 1, block)
	}
	cert, err := types.NewCertificate(types.CertNotarization, 1, block, votes)
	if err != nil {
		b.Fatal(err)
	}
	return &verifyFixture{keyring: keyring, cert: cert, quorum: quorum}
}

var verifySizes = []int{16, 64, 128}

// BenchmarkVerifyGossipSequential is the baseline for the acceptance
// comparison: every delivery of a round's certificate re-verifies every
// signature.
func BenchmarkVerifyGossipSequential(b *testing.B) {
	for _, n := range verifySizes {
		b.Run(benchName("n", n), func(b *testing.B) {
			fx := newVerifyFixture(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for d := 0; d < gossipRedundancy; d++ {
					if err := crypto.VerifyCert(fx.keyring, fx.cert, fx.quorum); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(fx.quorum*gossipRedundancy), "sigs/op")
		})
	}
}

// BenchmarkVerifyGossipBatched is the pipeline side of the acceptance
// comparison: ≥2x over BenchmarkVerifyGossipSequential at n=64 (the cache
// absorbs the redundant deliveries; the pool parallelizes the cold one).
func BenchmarkVerifyGossipBatched(b *testing.B) {
	for _, n := range verifySizes {
		b.Run(benchName("n", n), func(b *testing.B) {
			fx := newVerifyFixture(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := crypto.NewVerifier(fx.keyring, crypto.VerifyConfig{})
				for d := 0; d < gossipRedundancy; d++ {
					if err := v.VerifyCert(fx.cert, fx.quorum); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(fx.quorum*gossipRedundancy), "sigs/op")
		})
	}
}

// BenchmarkVerifyColdSequential verifies every signature exactly once,
// sequentially.
func BenchmarkVerifyColdSequential(b *testing.B) {
	for _, n := range verifySizes {
		b.Run(benchName("n", n), func(b *testing.B) {
			fx := newVerifyFixture(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := crypto.VerifyCert(fx.keyring, fx.cert, fx.quorum); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(fx.quorum), "sigs/op")
		})
	}
}

// BenchmarkVerifyColdBatched verifies every signature exactly once through
// the worker pool (no cache reuse): the speedup over ColdSequential tracks
// GOMAXPROCS.
func BenchmarkVerifyColdBatched(b *testing.B) {
	for _, n := range verifySizes {
		b.Run(benchName("n", n), func(b *testing.B) {
			fx := newVerifyFixture(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := crypto.NewVerifier(fx.keyring, crypto.VerifyConfig{CacheSize: -1})
				if err := v.VerifyCert(fx.cert, fx.quorum); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(fx.quorum), "sigs/op")
		})
	}
}

func sizeName(size int) string {
	if size >= 1<<20 {
		return benchName("MB", size>>20)
	}
	return benchName("KB", size>>10)
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + string(buf[i:])
}
