// Command banyan runs one consensus replica over TCP — the multi-process
// deployment path. Start n processes with the same -peers list and
// distinct -id values; each process prints finalized blocks as they
// commit.
//
// Example (three terminals, n=4 needs a fourth):
//
//	banyan -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//	banyan -id 1 -peers ...
//	banyan -id 2 -peers ...
//	banyan -id 3 -peers ... -load 100
//
// The -load flag makes the replica submit that many random transactions
// per second into its own mempool. cmd/localnet spawns a whole cluster in
// one process for quick local evaluation.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"banyan"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "banyan:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("banyan", flag.ContinueOnError)
	var (
		id       = fs.Int("id", 0, "this replica's ID in [0, n)")
		peerList = fs.String("peers", "", "comma-separated replica addresses, index = replica ID (required)")
		listen   = fs.String("listen", "", "listen address (default: the peers entry for -id)")
		proto    = fs.String("protocol", "banyan", "protocol: banyan, banyan-nofast, icc, hotstuff, streamlet")
		fFlag    = fs.Int("f", 0, "Byzantine faults tolerated (0 = maximum for n)")
		pFlag    = fs.Int("p", 1, "Banyan fast-path slack p")
		delta    = fs.Duration("delta", 50*time.Millisecond, "message-delay bound Δ")
		seed     = fs.Uint64("cluster-seed", 42, "shared demo-PKI seed (must match across replicas)")
		load     = fs.Int("load", 0, "transactions per second to self-submit (0 = none)")
		txSize   = fs.Int("tx-size", 256, "bytes per generated transaction")
		walDir   = fs.String("wal-dir", "", "write-ahead log directory; a restarted process with the same -wal-dir replays it and rejoins (empty = no durability)")
		walSync  = fs.Duration("wal-sync", 0, "WAL group-commit window (0 = 2ms default)")
		walEvery = fs.Bool("wal-sync-every-record", false, "fsync the WAL per record instead of group-committing")
		quiet    = fs.Bool("quiet", false, "suppress per-block output, print one summary line per 100 blocks")
		obsAddr  = fs.String("obs-addr", "", "serve the observability endpoint on this address: /metrics (Prometheus text), /debug/pprof/*, /trace (Chrome trace JSON), /trace/summary, /slow")
		verbose  = fs.Bool("v", false, "log transport diagnostics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peerList == "" {
		return fmt.Errorf("-peers is required")
	}
	addrs := strings.Split(*peerList, ",")
	n := len(addrs)
	if *id < 0 || *id >= n {
		return fmt.Errorf("-id %d out of range for %d peers", *id, n)
	}
	peers := make(map[int]string, n)
	for i, a := range addrs {
		peers[i] = strings.TrimSpace(a)
	}
	listenAddr := *listen
	if listenAddr == "" {
		listenAddr = peers[*id]
	}

	cfg := banyan.ReplicaConfig{
		ID:                 *id,
		N:                  n,
		F:                  *fFlag,
		P:                  *pFlag,
		Protocol:           banyan.Protocol(*proto),
		ListenAddr:         listenAddr,
		Peers:              peers,
		Delta:              *delta,
		ClusterSeed:        *seed,
		WALDir:             *walDir,
		WALSyncInterval:    *walSync,
		WALSyncEveryRecord: *walEvery,
		ObsAddr:            *obsAddr,
	}
	if *verbose {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	replica, err := banyan.NewReplica(cfg)
	if err != nil {
		return err
	}
	if err := replica.Start(); err != nil {
		return err
	}
	defer replica.Stop()
	fmt.Printf("replica %d/%d (%s) listening on %s\n", *id, n, *proto, replica.Addr())
	if addr := replica.ObsAddr(); addr != "" {
		fmt.Printf("observability endpoint at http://%s/metrics (pprof under /debug/pprof/)\n", addr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *load > 0 {
		go generateLoad(replica, *load, *txSize, stop)
	}

	var (
		blocks, bytes int64
		fast, slow    int64
		start         = time.Now()
	)
	for {
		select {
		case <-stop:
			elapsed := time.Since(start).Seconds()
			fmt.Printf("\nshutting down: %d blocks, %.2f MB committed in %.0fs (%.2f MB/s), fast=%d slow=%d\n",
				blocks, float64(bytes)/1e6, elapsed, float64(bytes)/1e6/elapsed, fast, slow)
			if faults := replica.Faults(); len(faults) > 0 {
				return fmt.Errorf("safety faults: %v", faults)
			}
			return nil
		case c, ok := <-replica.Commits():
			if !ok {
				return fmt.Errorf("commit stream closed unexpectedly")
			}
			blocks++
			bytes += int64(c.PayloadBytes)
			switch c.Path {
			case banyan.PathFast:
				fast++
			case banyan.PathSlow:
				slow++
			}
			if !*quiet {
				fmt.Printf("commit r=%-6d block=%s proposer=%-2d txs=%-4d bytes=%-8d path=%s\n",
					c.Round, c.BlockID, c.Proposer, len(c.Transactions), c.PayloadBytes, c.Path)
			} else if blocks%100 == 0 {
				fmt.Printf("%d blocks committed, %.2f MB, fast=%d slow=%d\n",
					blocks, float64(bytes)/1e6, fast, slow)
			}
		}
	}
}

func generateLoad(r *banyan.Replica, perSecond, txSize int, stop <-chan os.Signal) {
	interval := time.Second / time.Duration(perSecond)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			tx := make([]byte, txSize)
			if _, err := rand.Read(tx); err != nil {
				continue
			}
			r.Submit(tx)
		}
	}
}
