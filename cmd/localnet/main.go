// Command localnet spawns an n-replica cluster over real TCP sockets on
// localhost — every replica a full banyan.Replica with its own transport —
// runs a timed workload, and prints live and final statistics. It is the
// "multi-process local evaluation" entry point in single-binary form
// (replicas share the process but communicate exclusively through TCP).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"banyan"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "localnet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("localnet", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 4, "number of replicas")
		proto    = fs.String("protocol", "banyan", "protocol: banyan, banyan-nofast, icc, hotstuff, streamlet")
		pFlag    = fs.Int("p", 1, "Banyan fast-path slack p")
		delta    = fs.Duration("delta", 20*time.Millisecond, "message-delay bound Δ")
		duration = fs.Duration("duration", 15*time.Second, "run time")
		load     = fs.Int("load", 200, "transactions per second submitted across the cluster")
		txSize   = fs.Int("tx-size", 512, "bytes per transaction")
		basePort = fs.Int("base-port", 0, "first TCP port (0 = ephemeral ports)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Allocate addresses. With ephemeral ports we must bind first and
	// exchange discovered addresses, so run two passes: reserve with
	// explicit ports when given, otherwise pre-bind listeners via port 0
	// is not possible before NewReplica — use sequential ports from a
	// random base instead.
	base := *basePort
	if base == 0 {
		base = 20000 + rand.New(rand.NewSource(time.Now().UnixNano())).Intn(20000)
	}
	peers := make(map[int]string, *n)
	for i := 0; i < *n; i++ {
		peers[i] = fmt.Sprintf("127.0.0.1:%d", base+i)
	}

	replicas := make([]*banyan.Replica, *n)
	for i := 0; i < *n; i++ {
		r, err := banyan.NewReplica(banyan.ReplicaConfig{
			ID:       i,
			N:        *n,
			P:        *pFlag,
			Protocol: banyan.Protocol(*proto),
			Peers:    peers,
			Delta:    *delta,
		})
		if err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
		replicas[i] = r
	}
	for i, r := range replicas {
		if err := r.Start(); err != nil {
			return fmt.Errorf("start replica %d: %w", i, err)
		}
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()
	fmt.Printf("localnet: %d %s replicas on 127.0.0.1:%d..%d, %v\n",
		*n, *proto, base, base+*n-1, *duration)

	// Load generator: round-robin submission across replicas.
	stopLoad := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewSource(1))
		interval := time.Second / time.Duration(*load)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		i := 0
		for {
			select {
			case <-stopLoad:
				return
			case <-tick.C:
				tx := make([]byte, *txSize)
				rng.Read(tx)
				replicas[i%*n].Submit(tx)
				i++
			}
		}
	}()

	// Observe commits at replica 0.
	var (
		blocks, bytes, txs int64
		fast, slow         int64
		firstCommit        time.Time
		lastRound          uint64
	)
	deadline := time.After(*duration)
	progress := time.NewTicker(5 * time.Second)
	defer progress.Stop()
	start := time.Now()

loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-progress.C:
			fmt.Printf("  t=%4.0fs round=%-6d blocks=%-6d txs=%-7d %.2f MB committed (fast=%d slow=%d)\n",
				time.Since(start).Seconds(), lastRound, blocks, txs, float64(bytes)/1e6, fast, slow)
		case c, ok := <-replicas[0].Commits():
			if !ok {
				break loop
			}
			if firstCommit.IsZero() {
				firstCommit = time.Now()
			}
			blocks++
			bytes += int64(c.PayloadBytes)
			txs += int64(len(c.Transactions))
			lastRound = c.Round
			switch c.Path {
			case banyan.PathFast:
				fast++
			case banyan.PathSlow:
				slow++
			}
		}
	}
	close(stopLoad)

	elapsed := time.Since(start).Seconds()
	fmt.Printf("\nresults after %.0fs:\n", elapsed)
	fmt.Printf("  blocks committed : %d (%.1f/s)\n", blocks, float64(blocks)/elapsed)
	fmt.Printf("  transactions     : %d (%.1f/s)\n", txs, float64(txs)/elapsed)
	fmt.Printf("  payload          : %.2f MB (%.3f MB/s)\n", float64(bytes)/1e6, float64(bytes)/1e6/elapsed)
	fmt.Printf("  finalization     : fast=%d slow=%d indirect=%d\n", fast, slow, blocks-fast-slow)
	for i, r := range replicas {
		if faults := r.Faults(); len(faults) > 0 {
			return fmt.Errorf("replica %d faults: %v", i, faults)
		}
	}
	fmt.Println("  safety           : no faults")
	return nil
}
