// Command localnet spawns an n-replica cluster over real TCP sockets on
// localhost — every replica a full banyan.Replica with its own transport —
// runs a timed workload, and prints live and final statistics. It is the
// "multi-process local evaluation" entry point in single-binary form
// (replicas share the process but communicate exclusively through TCP).
//
// With -wal-dir every replica keeps a write-ahead log, and the
// -crash/-crash-at/-restart-at flags script a crash-restart: the chosen
// replica is killed mid-run (its WAL loses the unsynced group-commit
// tail, as a real crash would), restarted from the log, and the run
// fails unless it catches back up to the live tip. CI runs this as the
// crash-restart smoke test:
//
//	localnet -duration 10s -wal-dir /tmp/wal -crash 1 -crash-at 3s -restart-at 5s
//
// Adding -disk-loss wipes the victim's log before the restart and runs
// the cluster deep-pruned, so the replica comes back with no durable
// state against peers holding only a bounded window — it must recover
// via peer-to-peer snapshot state sync. CI runs this as the
// disk-loss-rejoin smoke test.
//
// With -dissem the cluster runs the batch-dissemination layer: proposals
// commit batch digests, bodies travel out-of-band, and a restarted
// replica — whose body store is in-memory only — refetches what delivery
// needs. CI combines -dissem with the crash-restart script above.
//
// With -reconfig the run scripts a live membership change (banyan
// protocols only): one extra identity is provisioned, the cluster runs
// deep-pruned, and mid-run the extra replica is booted cold and admitted
// by a finalized ConfigChange (it catches up through snapshot state sync
// and votes from the next epoch), then removed again. The run fails
// unless every replica reaches epoch 2 with no safety faults. CI runs
// this as the reconfiguration smoke test:
//
//	localnet -duration 12s -reconfig -add-at 3s -remove-at 7s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"banyan"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "localnet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("localnet", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 4, "number of replicas")
		proto      = fs.String("protocol", "banyan", "protocol: banyan, banyan-nofast, icc, hotstuff, streamlet")
		pFlag      = fs.Int("p", 1, "Banyan fast-path slack p")
		delta      = fs.Duration("delta", 20*time.Millisecond, "message-delay bound Δ")
		duration   = fs.Duration("duration", 15*time.Second, "run time")
		load       = fs.Int("load", 200, "transactions per second submitted across the cluster")
		txSize     = fs.Int("tx-size", 512, "bytes per transaction")
		basePort   = fs.Int("base-port", 0, "first TCP port (0 = ephemeral ports)")
		walDir     = fs.String("wal-dir", "", "write-ahead log root (one subdirectory per replica; empty = no WAL)")
		walSync    = fs.Duration("wal-sync", 0, "WAL group-commit window (0 = 2ms default)")
		walEvery   = fs.Bool("wal-sync-every-record", false, "fsync the WAL per record instead of group-committing")
		crashID    = fs.Int("crash", -1, "replica to kill mid-run (requires -wal-dir; must not be 0, the observer)")
		crashAt    = fs.Duration("crash-at", 0, "when to kill it (0 = duration/3)")
		restartAt  = fs.Duration("restart-at", 0, "when to restart it from its WAL (0 = 2*duration/3)")
		diskLoss   = fs.Bool("disk-loss", false, "wipe the crashed replica's WAL before restarting: it returns with no durable state and must recover its chain from peers via snapshot state sync (runs all replicas deep-pruned so only a bounded window is serveable)")
		optimistic = fs.Bool("optimistic", false, "enable optimistic proposal pipelining (Moonshot mode): the next leader broadcasts its block on the expected parent before the round certifies (banyan protocol only)")
		dissem     = fs.Bool("dissem", false, "route payloads through the batch-dissemination layer: proposals commit batch digests, bodies travel out-of-band, delivery gates on availability (banyan protocols only)")
		dissemB    = fs.Int("dissem-batch", 0, "dissemination batch cut size in bytes (0 = 64 KiB); transactions larger than this are rejected at Submit")
		dissemI    = fs.Int("dissem-inline", 0, "max inline tail bytes a proposal carries alongside its batch refs (0 = everything rides in batches)")
		reconfig   = fs.Bool("reconfig", false, "script a live membership change: boot an extra replica mid-run, admit it via a finalized ConfigChange (it enters through snapshot state sync), then remove it again (banyan protocols only; runs deep-pruned)")
		addAt      = fs.Duration("add-at", 0, "when to boot and admit the extra replica (0 = duration/4)")
		removeAt   = fs.Duration("remove-at", 0, "when to remove it again (0 = duration/2)")
		obsAddr    = fs.String("obs-addr", "", "serve replica 0's observability endpoint on this address: /metrics (Prometheus text), /debug/pprof/*, /trace (Chrome trace JSON), /trace/summary, /slow")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *crashID >= 0 {
		if *walDir == "" {
			return fmt.Errorf("-crash requires -wal-dir (the restart replays the log)")
		}
		if *crashID == 0 || *crashID >= *n {
			return fmt.Errorf("-crash %d out of range (observer 0 cannot be crashed)", *crashID)
		}
	}
	if *diskLoss && *crashID < 0 {
		return fmt.Errorf("-disk-loss requires -crash (it scripts the restart)")
	}
	if *crashAt == 0 {
		*crashAt = *duration / 3
	}
	if *restartAt == 0 {
		*restartAt = 2 * *duration / 3
	}
	if *crashID >= 0 && *restartAt <= *crashAt {
		return fmt.Errorf("-restart-at %s must be after -crash-at %s", *restartAt, *crashAt)
	}
	if *reconfig && *crashID >= 0 {
		return fmt.Errorf("-reconfig and -crash script conflicting scenarios; run them separately")
	}
	if *addAt == 0 {
		*addAt = *duration / 4
	}
	if *removeAt == 0 {
		*removeAt = *duration / 2
	}
	if *reconfig && *removeAt <= *addAt {
		return fmt.Errorf("-remove-at %s must be after -add-at %s", *removeAt, *addAt)
	}
	// With -reconfig one extra identity is provisioned: the joiner gets ID
	// n and every replica knows its address and key from the start.
	maxN := *n
	joinerID := -1
	if *reconfig {
		joinerID = *n
		maxN = *n + 1
	}

	// Allocate addresses. With ephemeral ports we must bind first and
	// exchange discovered addresses, so run two passes: reserve with
	// explicit ports when given, otherwise pre-bind listeners via port 0
	// is not possible before NewReplica — use sequential ports from a
	// random base instead.
	base := *basePort
	if base == 0 {
		base = 20000 + rand.New(rand.NewSource(time.Now().UnixNano())).Intn(20000)
	}
	peers := make(map[int]string, maxN)
	for i := 0; i < maxN; i++ {
		peers[i] = fmt.Sprintf("127.0.0.1:%d", base+i)
	}

	mkReplica := func(i int) (*banyan.Replica, error) {
		cfg := banyan.ReplicaConfig{
			ID:                  i,
			N:                   *n,
			MaxN:                maxN,
			P:                   *pFlag,
			Protocol:            banyan.Protocol(*proto),
			Peers:               peers,
			Delta:               *delta,
			WALSyncInterval:     *walSync,
			WALSyncEveryRecord:  *walEvery,
			OptimisticProposals: *optimistic,
			Dissem:              *dissem,
			DissemBatchBytes:    *dissemB,
			DissemInlineMax:     *dissemI,
		}
		if *diskLoss || *reconfig {
			// Deep-pruned, tight windows: peers can only serve their last
			// few rounds, so a wiped or late-joining replica is forced
			// through the snapshot state-sync path rather than
			// block-by-block catch-up.
			cfg.DeepPrune = true
			cfg.PruneKeep = 8
			cfg.PruneInterval = 8
		}
		if *walDir != "" {
			cfg.WALDir = filepath.Join(*walDir, fmt.Sprintf("replica-%d", i))
		}
		if i == 0 && *obsAddr != "" {
			// The endpoint serves the observer replica; 0 is never crashed,
			// so the address binds exactly once per run.
			cfg.ObsAddr = *obsAddr
		}
		return banyan.NewReplica(cfg)
	}

	// replicas is shared with the load-generator goroutine and mutated on
	// restart; all access goes through the mutex.
	var (
		replicasMu sync.Mutex
		replicas   = make([]*banyan.Replica, maxN) // joiner slot stays nil until -add-at
	)
	getReplica := func(i int) *banyan.Replica {
		replicasMu.Lock()
		defer replicasMu.Unlock()
		return replicas[i]
	}
	for i := 0; i < *n; i++ {
		r, err := mkReplica(i)
		if err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
		replicas[i] = r
	}
	for i := 0; i < *n; i++ {
		if err := replicas[i].Start(); err != nil {
			return fmt.Errorf("start replica %d: %w", i, err)
		}
	}
	defer func() {
		for i := 0; i < maxN; i++ {
			if r := getReplica(i); r != nil {
				r.Stop()
			}
		}
	}()
	fmt.Printf("localnet: %d %s replicas on 127.0.0.1:%d..%d, %v\n",
		*n, *proto, base, base+*n-1, *duration)
	if addr := replicas[0].ObsAddr(); addr != "" {
		fmt.Printf("localnet: observability endpoint at http://%s/metrics (pprof under /debug/pprof/)\n", addr)
	}

	// Load generator: round-robin submission across replicas.
	stopLoad := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewSource(1))
		interval := time.Second / time.Duration(*load)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		i := 0
		for {
			select {
			case <-stopLoad:
				return
			case <-tick.C:
				tx := make([]byte, *txSize)
				rng.Read(tx)
				getReplica(i % *n).Submit(tx)
				i++
			}
		}
	}()

	// Observe commits at replica 0.
	var (
		blocks, bytes, txs int64
		fast, slow         int64
		firstCommit        time.Time
		lastRound          uint64
	)
	// Crash-restart schedule: both timers stay nil (never firing) unless
	// -crash selected a victim.
	var crashC, restartC <-chan time.Time
	if *crashID >= 0 {
		crashC = time.After(*crashAt)
		restartC = time.After(*restartAt)
	}
	// victimRound tracks the highest round the restarted victim has
	// committed — replayed history first, live commits once it rejoins.
	var victimRound atomic.Uint64
	restarted := false

	// Reconfiguration schedule: both timers stay nil unless -reconfig.
	var addC, removeC <-chan time.Time
	if *reconfig {
		addC = time.After(*addAt)
		removeC = time.After(*removeAt)
	}
	// joinerRound tracks the highest round the admitted joiner committed.
	var joinerRound atomic.Uint64

	deadline := time.After(*duration)
	progress := time.NewTicker(5 * time.Second)
	defer progress.Stop()
	start := time.Now()

loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-crashC:
			crashC = nil
			getReplica(*crashID).Crash()
			fmt.Printf("  t=%4.0fs killed replica %d (WAL tail beyond the last group commit is lost)\n",
				time.Since(start).Seconds(), *crashID)
		case <-restartC:
			restartC = nil
			if *diskLoss {
				if err := os.RemoveAll(filepath.Join(*walDir, fmt.Sprintf("replica-%d", *crashID))); err != nil {
					return fmt.Errorf("wiping replica %d WAL: %w", *crashID, err)
				}
			}
			r, err := mkReplica(*crashID)
			if err != nil {
				return fmt.Errorf("restart replica %d: %w", *crashID, err)
			}
			if err := r.Start(); err != nil {
				return fmt.Errorf("restart replica %d: %w", *crashID, err)
			}
			replicasMu.Lock()
			replicas[*crashID] = r
			replicasMu.Unlock()
			restarted = true
			go func() {
				for c := range r.Commits() {
					victimRound.Store(c.Round)
				}
			}()
			if *diskLoss {
				fmt.Printf("  t=%4.0fs restarted replica %d with a wiped WAL (peer state sync only)\n",
					time.Since(start).Seconds(), *crashID)
			} else {
				fmt.Printf("  t=%4.0fs restarted replica %d from its WAL\n",
					time.Since(start).Seconds(), *crashID)
			}
		case <-addC:
			addC = nil
			j, err := mkReplica(joinerID)
			if err != nil {
				return fmt.Errorf("joiner %d: %w", joinerID, err)
			}
			if err := j.Start(); err != nil {
				return fmt.Errorf("start joiner %d: %w", joinerID, err)
			}
			replicasMu.Lock()
			replicas[joinerID] = j
			replicasMu.Unlock()
			go func() {
				for c := range j.Commits() {
					joinerRound.Store(c.Round)
				}
			}()
			// Propose the admission on every running replica: whichever
			// leads first attaches the change to its block.
			for i := 0; i < *n; i++ {
				if err := getReplica(i).ProposeAddValidator(joinerID); err != nil {
					return fmt.Errorf("propose add on replica %d: %w", i, err)
				}
			}
			fmt.Printf("  t=%4.0fs booted replica %d cold and proposed its admission\n",
				time.Since(start).Seconds(), joinerID)
		case <-removeC:
			removeC = nil
			for i := 0; i < *n; i++ {
				if err := getReplica(i).ProposeRemoveValidator(joinerID); err != nil {
					return fmt.Errorf("propose remove on replica %d: %w", i, err)
				}
			}
			fmt.Printf("  t=%4.0fs proposed removing replica %d\n",
				time.Since(start).Seconds(), joinerID)
		case <-progress.C:
			fmt.Printf("  t=%4.0fs round=%-6d blocks=%-6d txs=%-7d %.2f MB committed (fast=%d slow=%d)\n",
				time.Since(start).Seconds(), lastRound, blocks, txs, float64(bytes)/1e6, fast, slow)
		case c, ok := <-replicas[0].Commits():
			if !ok {
				break loop
			}
			if firstCommit.IsZero() {
				firstCommit = time.Now()
			}
			blocks++
			bytes += int64(c.PayloadBytes)
			txs += int64(len(c.Transactions))
			lastRound = c.Round
			switch c.Path {
			case banyan.PathFast:
				fast++
			case banyan.PathSlow:
				slow++
			}
		}
	}
	close(stopLoad)

	elapsed := time.Since(start).Seconds()
	fmt.Printf("\nresults after %.0fs:\n", elapsed)
	fmt.Printf("  blocks committed : %d (%.1f/s)\n", blocks, float64(blocks)/elapsed)
	fmt.Printf("  transactions     : %d (%.1f/s)\n", txs, float64(txs)/elapsed)
	fmt.Printf("  payload          : %.2f MB (%.3f MB/s)\n", float64(bytes)/1e6, float64(bytes)/1e6/elapsed)
	fmt.Printf("  finalization     : fast=%d slow=%d indirect=%d\n", fast, slow, blocks-fast-slow)
	for i, r := range replicas {
		if r == nil {
			continue // a joiner slot whose -add-at never fired
		}
		if faults := r.Faults(); len(faults) > 0 {
			return fmt.Errorf("replica %d faults: %v", i, faults)
		}
	}
	fmt.Println("  safety           : no faults")
	if *reconfig {
		joiner := getReplica(joinerID)
		if joiner == nil {
			return fmt.Errorf("reconfig: joiner %d never booted (-add-at beyond -duration?)", joinerID)
		}
		obsEpoch := getReplica(0).Epoch()
		jr := joinerRound.Load()
		fmt.Printf("  reconfig         : observer epoch=%d, joiner committed through round %d (epoch %d)\n",
			obsEpoch, jr, joiner.Epoch())
		if obsEpoch != 2 {
			return fmt.Errorf("reconfig: observer finished in epoch %d, want 2 (add then remove)", obsEpoch)
		}
		if jr == 0 {
			return fmt.Errorf("reconfig: admitted replica %d never committed — state sync or admission failed", joinerID)
		}
	}
	if restarted {
		vr := victimRound.Load()
		fmt.Printf("  recovery         : replica %d back at round %d (observer at %d)\n",
			*crashID, vr, lastRound)
		if vr == 0 {
			return fmt.Errorf("restarted replica %d never committed — recovery failed", *crashID)
		}
		if lastRound > 30 && vr+30 < lastRound {
			return fmt.Errorf("restarted replica %d stuck at round %d, observer at %d",
				*crashID, vr, lastRound)
		}
	}
	return nil
}
