package main

import (
	"fmt"
	"time"

	"banyan/internal/harness"
	"banyan/internal/types"
	"banyan/internal/wan"
)

// runReconfig measures what a membership change costs a live cluster: a
// 4-replica deployment finalizes a ConfigChange admitting a 5th replica
// (which bootstraps through snapshot state sync and votes from the next
// round on), runs the 5-replica epoch for a stretch, then votes the
// joiner back out. The quantity under test is the commit-latency blip
// across each epoch boundary — the rounds right after activation, where
// quorum size and leader schedule change underfoot — against each
// epoch's steady-state latency.
func runReconfig(o options) error {
	const (
		maxN = 5
		n    = 4
	)
	topo := wan.Uniform(maxN, 25*time.Millisecond)
	dur := o.duration
	addAt := dur * 3 / 10
	removeAt := dur * 7 / 10
	cfg := harness.Config{
		Protocol:  harness.Banyan,
		Params:    harness.ParamsFor(harness.Banyan, n, 1, 1),
		MaxN:      maxN,
		Topology:  topo,
		BlockSize: 64 << 10,
		Duration:  dur,
		Seed:      o.seed,
		// Deep-pruned windows force the joiner through the snapshot path
		// before its first vote, as a real late-provisioned replica would be.
		DeepPrune:     true,
		PruneKeep:     32,
		PruneInterval: 16,
		Join:          []harness.CrashSpec{{Replica: n, At: addAt / 2}},
		Reconfig: []harness.ReconfigSpec{
			{Replica: n, At: addAt, Op: types.ConfigAdd},
			{Replica: n, At: removeAt, Op: types.ConfigRemove},
		},
	}
	res, err := o.run(cfg)
	if err != nil {
		return err
	}
	if res.Epoch != 2 || len(res.EpochActivations) != 2 {
		return fmt.Errorf("reconfig: observer ended at epoch %d with activations %v, want 2 epochs",
			res.Epoch, res.EpochActivations)
	}
	fmt.Printf("n=4 -> 5 -> 4, uniform 25ms WAN, 64KB blocks; add at %s, remove at %s\n",
		addAt, removeAt)
	fmt.Printf("epoch activations: +replica at round %d, -replica at round %d\n",
		res.EpochActivations[0], res.EpochActivations[1])

	// Bucket the round-tagged latency samples by epoch, and carve out the
	// boundary window — the first rounds of each new epoch — separately.
	const boundaryRounds = 8
	bounds := res.EpochActivations
	epochOf := func(r types.Round) int {
		e := 0
		for _, a := range bounds {
			if r >= a {
				e++
			}
		}
		return e
	}
	steady := make([][]time.Duration, len(bounds)+1)
	blips := make([][]time.Duration, len(bounds))
	for _, rl := range res.RoundLatencies {
		e := epochOf(rl.Round)
		inBlip := false
		if e > 0 && rl.Round < bounds[e-1]+boundaryRounds {
			blips[e-1] = append(blips[e-1], rl.Latency)
			inBlip = true
		}
		if !inBlip {
			steady[e] = append(steady[e], rl.Latency)
		}
	}
	mean := func(ds []time.Duration) time.Duration {
		if len(ds) == 0 {
			return 0
		}
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		return sum / time.Duration(len(ds))
	}

	fmt.Printf("%-26s %10s %8s\n", "window", "mean(ms)", "blocks")
	sizes := []int{n, maxN, n}
	jsonEpochs := make([]map[string]any, 0, len(steady))
	for e, ds := range steady {
		label := fmt.Sprintf("epoch %d (n=%d) steady", e, sizes[e])
		fmt.Printf("%-26s %10.1f %8d\n", label, msF(mean(ds)), len(ds))
		jsonEpochs = append(jsonEpochs, map[string]any{
			"epoch": e, "n": sizes[e],
			"steady_mean_ms": round1(msF(mean(ds))), "steady_blocks": len(ds),
		})
	}
	for e, ds := range blips {
		label := fmt.Sprintf("epoch %d boundary (%dr)", e+1, boundaryRounds)
		fmt.Printf("%-26s %10.1f %8d\n", label, msF(mean(ds)), len(ds))
		jsonEpochs[e+1]["boundary_mean_ms"] = round1(msF(mean(ds)))
		jsonEpochs[e+1]["boundary_blocks"] = len(ds)
		if sm := mean(steady[e+1]); sm > 0 && len(ds) > 0 {
			blip := 100 * (float64(mean(ds))/float64(sm) - 1)
			fmt.Printf("%-26s %+9.1f%%\n", "  blip vs steady", blip)
			jsonEpochs[e+1]["blip_pct"] = round1(blip)
		}
	}
	fmt.Printf("\nobserver: %d blocks committed, %d fast / %d slow finalizations, %d faults\n",
		res.BlocksCommitted, res.FastFinal, res.SlowFinal, res.Faults)
	fmt.Println("(the boundary window is the first 8 rounds of each new epoch: the old")
	fmt.Println(" set's certs still verify, the new set votes, and the joiner enters")
	fmt.Println(" through snapshot state sync before its first vote)")

	if o.jsonOut == "" {
		return nil
	}
	obj := map[string]any{
		"note": fmt.Sprintf("cmd/bench -exp reconfig -duration %s: n=4 -> 5 -> 4 on a uniform 25ms WAN, 64KB blocks; boundary window = first %d rounds of each epoch", dur, boundaryRounds),
		"activation_rounds": res.EpochActivations,
		"epochs":            jsonEpochs,
		"blocks_committed":  res.BlocksCommitted,
		"faults":            res.Faults,
	}
	return mergeJSON(o.jsonOut, "reconfig", obj)
}
