package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"banyan/internal/harness"
	"banyan/internal/wan"
)

// runDissem measures the batch-dissemination layer (internal/dissem):
// blocks commit an ordered list of batch digests while the bodies travel
// out-of-band, continuously, off the consensus path. Two claims are under
// test, on the same constrained ~25 MB/s uplink the pipeline experiment
// uses so body transfer dominates:
//
//   - Decoupling: the proposal's wire size is a function of the digest
//     list, not the payload — it stays flat (within 2 KB) as the block
//     size sweeps 64 KB → 4 MB, where inline proposals grow 64x.
//   - Throughput: with the vote path freed from body transfer, rounds
//     certify at message-exchange speed and sustained committed bytes/s
//     beats inline at large block sizes (≥20% at 2 MB).
//
// Inline and dissemination runs share seed, topology, and workload; the
// only delta is the knob.
func runDissem(o options) error {
	topo, err := wan.FourGlobal4()
	if err != nil {
		return err
	}
	const bandwidth = 25e6 // bytes/s uplink: makes body transfer dominate
	sizes := []int{64 << 10, 256 << 10, 1 << 20, 2 << 20, 4 << 20}
	if o.quick {
		sizes = []int{64 << 10, 2 << 20, 4 << 20}
	}
	fmt.Printf("inline vs out-of-band dissemination, n=4, 4 global DCs, %.0f MB/s uplink\n", bandwidth/1e6)
	fmt.Printf("%-22s %10s %10s %12s %14s %8s %8s\n",
		"config", "mean(ms)", "p95(ms)", "tput(MB/s)", "proposal-wire", "fast", "slow")

	type point struct{ inline, dissem *harness.Result }
	points := make(map[int]point, len(sizes))
	row := func(label string, r *harness.Result) {
		fmt.Printf("%-22s %10.1f %10.1f %12.2f %14s %8d %8d\n", label,
			msF(r.Latency.Mean), msF(r.Latency.P95), r.ThroughputBps/1e6,
			wireLabel(r.MaxProposalWire), r.FastFinal, r.SlowFinal)
	}
	for _, size := range sizes {
		// The batch cut size scales with the block size (floor 64 KB) so a
		// proposal never references more than ~16 batches: the digest list —
		// and with it the proposal wire size — stays flat across the sweep.
		batchBytes := size / 16
		if batchBytes < 64<<10 {
			batchBytes = 64 << 10
		}
		var pt point
		for _, dissem := range []bool{false, true} {
			cfg := harness.Config{
				Protocol:         harness.Banyan,
				Params:           harness.ParamsFor(harness.Banyan, 4, 1, 1),
				Topology:         topo,
				BlockSize:        size,
				BandwidthBps:     bandwidth,
				Duration:         o.duration,
				Seed:             o.seed,
				Dissem:           dissem,
				DissemBatchBytes: batchBytes,
			}
			res, err := o.run(cfg)
			if err != nil {
				return err
			}
			if dissem {
				pt.dissem = res
				row("dissem/"+sizeLabel(size), res)
			} else {
				pt.inline = res
				row("inline/"+sizeLabel(size), res)
			}
		}
		points[size] = pt
		fmt.Printf("%-22s tput %+.1f%%  proposal wire %s -> %s\n\n",
			"  Δ "+sizeLabel(size),
			100*(pt.dissem.ThroughputBps/pt.inline.ThroughputBps-1),
			wireLabel(pt.inline.MaxProposalWire), wireLabel(pt.dissem.MaxProposalWire))
	}

	// The two acceptance claims, stated against the sweep.
	minWire, maxWire := points[sizes[0]].dissem.MaxProposalWire, 0
	for _, size := range sizes {
		if w := points[size].dissem.MaxProposalWire; true {
			if w < minWire {
				minWire = w
			}
			if w > maxWire {
				maxWire = w
			}
		}
	}
	fmt.Printf("dissem proposal wire across %s..%s sweep: %s..%s (spread %d B; decoupled iff ≤ 2 KB)\n",
		sizeLabel(sizes[0]), sizeLabel(sizes[len(sizes)-1]),
		wireLabel(minWire), wireLabel(maxWire), maxWire-minWire)
	gainAt := 2 << 20
	if pt, ok := points[gainAt]; ok {
		fmt.Printf("sustained throughput at 2MB blocks: %.2f MB/s inline vs %.2f MB/s dissem (%+.1f%%)\n",
			pt.inline.ThroughputBps/1e6, pt.dissem.ThroughputBps/1e6,
			100*(pt.dissem.ThroughputBps/pt.inline.ThroughputBps-1))
	}
	fmt.Println("(bodies broadcast continuously by every replica as they are cut, so the")
	fmt.Println(" vote path carries digests only; delivery — not voting — gates on bodies)")

	if o.jsonOut == "" {
		return nil
	}
	sweep := make(map[string]any, len(sizes))
	for _, size := range sizes {
		pt := points[size]
		sweep[sizeLabel(size)] = map[string]any{
			"inline_mean_ms":    round1(msF(pt.inline.Latency.Mean)),
			"dissem_mean_ms":    round1(msF(pt.dissem.Latency.Mean)),
			"inline_tput_mbps":  round2(pt.inline.ThroughputBps / 1e6),
			"dissem_tput_mbps":  round2(pt.dissem.ThroughputBps / 1e6),
			"inline_wire_b":     pt.inline.MaxProposalWire,
			"dissem_wire_b":     pt.dissem.MaxProposalWire,
			"tput_delta_pct":    round1(100 * (pt.dissem.ThroughputBps/pt.inline.ThroughputBps - 1)),
			"dissem_fast_final": pt.dissem.FastFinal,
		}
	}
	obj := map[string]any{
		"note": fmt.Sprintf("cmd/bench -exp dissem -duration %s: zero-loss simnet, n=4, FourGlobal4 WAN, 25 MB/s uplink; proposal-wire is the max leader-proposal wire size post-warmup", o.duration),
		"sweep": sweep,
		"dissem_wire_spread_b": maxWire - minWire,
	}
	if pt, ok := points[gainAt]; ok {
		obj["tput_gain_2mb_pct"] = round1(100 * (pt.dissem.ThroughputBps/pt.inline.ThroughputBps - 1))
	}
	return mergeJSON(o.jsonOut, "dissem", obj)
}

func wireLabel(b int) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	}
	if b >= 1<<10 {
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

func round1(f float64) float64 { return float64(int(f*10+0.5)) / 10 }
func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }

// mergeJSON sets one top-level key of a snapshot file (BENCH_PR<n>.json),
// preserving everything else — the complement of bench_snapshot.sh, which
// owns the microbenchmark keys and preserves the experiment keys.
func mergeJSON(path, key string, value any) error {
	snap := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("merge %s: %w", path, err)
		}
	}
	raw, err := json.MarshalIndent(value, "  ", "  ")
	if err != nil {
		return err
	}
	snap[key] = raw
	if _, ok := snap["generated_utc"]; !ok {
		stamp, _ := json.Marshal(time.Now().UTC().Format(time.RFC3339))
		snap["generated_utc"] = stamp
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("(merged %q results into %s)\n", key, path)
	return nil
}
