package main

import (
	"testing"
	"time"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestQuickExperimentsRun executes the cheapest experiments end to end so
// the bench tool itself stays correct.
func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is not short")
	}
	for _, exp := range []string{"table1", "fig1", "ablation-fastpath"} {
		if err := run([]string{"-exp", exp, "-quick", "-duration", "5s"}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestOptionDefaults(t *testing.T) {
	o := options{duration: 120 * time.Second, seed: 1}
	if o.duration != 120*time.Second {
		t.Fatal("unexpected default")
	}
}
