package main

import (
	"fmt"

	"banyan/internal/harness"
	"banyan/internal/wan"
)

// runPipeline measures optimistic proposal pipelining (Moonshot mode,
// DESIGN.md section on OptimisticProposals): the next leader broadcasts
// its block on the expected parent as soon as the round's rank-0 block
// arrives, before the round certifies. The body transfer — the dominant
// cost at large block sizes on constrained uplinks — overlaps the
// previous round's certificate exchange instead of serializing after it,
// so commit latency drops by up to the body transmission time and block
// rate rises. The experiment runs large blocks over a ~25 MB/s uplink so
// the transfer is worth hiding (baseline and pipelined runs share seed,
// topology, and workload; the only delta is the knob).
func runPipeline(o options) error {
	topo, err := wan.FourGlobal4()
	if err != nil {
		return err
	}
	const bandwidth = 25e6 // bytes/s uplink: makes body transfer dominate
	sizes := []int{512 << 10, 1 << 20, 2 << 20}
	if o.quick {
		sizes = []int{1 << 20}
	}
	fmt.Printf("zero-loss pipeline comparison, n=4, 4 global DCs, %0.f MB/s uplink\n", bandwidth/1e6)
	printHeader()
	for _, size := range sizes {
		var base, opt *harness.Result
		for _, pipelined := range []bool{false, true} {
			cfg := harness.Config{
				Protocol:            harness.Banyan,
				Params:              harness.ParamsFor(harness.Banyan, 4, 1, 1),
				Topology:            topo,
				BlockSize:           size,
				BandwidthBps:        bandwidth,
				Duration:            o.duration,
				Seed:                o.seed,
				OptimisticProposals: pipelined,
			}
			res, err := o.run(cfg)
			if err != nil {
				return err
			}
			label := "baseline/" + sizeLabel(size)
			if pipelined {
				label = "pipelined/" + sizeLabel(size)
				opt = res
			} else {
				base = res
			}
			printRow(label, res)
		}
		fmt.Printf("%-22s mean %+.1f%%  p50 %+.1f%%  (opt proposed=%d confirmed=%d withdrawn=%d)\n\n",
			"  Δ "+sizeLabel(size),
			100*(float64(opt.Latency.Mean)/float64(base.Latency.Mean)-1),
			100*(float64(opt.Latency.P50)/float64(base.Latency.P50)-1),
			opt.OptimisticProposed, opt.OptimisticConfirmed, opt.OptimisticWithdrawn)
	}
	fmt.Println("(the pipelined body broadcast overlaps the previous round's certificate exchange,")
	fmt.Println(" taking up to (n-1)·size/bandwidth of transfer off the post-certificate critical")
	fmt.Println(" path; once the transfer outgrows that ~2-hop window the residual tail returns to")
	fmt.Println(" the critical path and the win shifts from latency to block rate — see the 2MB row)")
	return nil
}
