package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"banyan/internal/harness"
	"banyan/internal/obs"
	"banyan/internal/wan"
)

// runObs measures the observability layer itself, in two parts:
//
//   - Overhead: the pipeline experiment's configuration (n=4, 4 global
//     DCs, ~25 MB/s uplink, optimistic proposals) run with instrumentation
//     off and on, same seed and workload. Virtual-time results must be
//     bit-identical — recording never consumes simulated time — so the
//     throughput delta is the correctness check (0%), and the wall-clock
//     delta is the real cost of the histograms and tracer on the hosting
//     machine (the <2% budget).
//
//   - Stage breakdown: one fully-loaded run — dissemination on, every
//     replica behind a WAL, one crash-restart to force body refetches —
//     with observers on, reporting p50/p99 per stage from the merged
//     histograms (commit latency, verify time, WAL flush, dissem fetch,
//     delivery wait) plus the slow-round detector's verdicts.
func runObs(o options) error {
	topo, err := wan.FourGlobal4()
	if err != nil {
		return err
	}
	const bandwidth = 25e6 // bytes/s uplink, matching the pipeline experiment
	const size = 1 << 20

	fmt.Printf("instrumentation overhead, pipeline config (n=4, 4 global DCs, %.0f MB/s, 1MB blocks)\n", bandwidth/1e6)
	base := harness.Config{
		Protocol:            harness.Banyan,
		Params:              harness.ParamsFor(harness.Banyan, 4, 1, 1),
		Topology:            topo,
		BlockSize:           size,
		BandwidthBps:        bandwidth,
		Duration:            o.duration,
		Seed:                o.seed,
		OptimisticProposals: true,
	}
	var offRes, onRes *harness.Result
	var offWall, onWall time.Duration
	printHeader()
	for _, on := range []bool{false, true} {
		cfg := base
		cfg.Obs = on
		start := time.Now()
		res, err := o.run(cfg)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		if on {
			onRes, onWall = res, wall
			printRow("obs-on", res)
		} else {
			offRes, offWall = res, wall
			printRow("obs-off", res)
		}
	}
	tputDelta := 100 * (onRes.ThroughputBps/offRes.ThroughputBps - 1)
	wallDelta := 100 * (onWall.Seconds()/offWall.Seconds() - 1)
	fmt.Printf("\nvirtual-time throughput delta: %+.2f%% (must be 0: recording is invisible to the simulation)\n", tputDelta)
	fmt.Printf("wall-clock delta: %+.1f%% (%.2fs -> %.2fs; the real cost of histograms + tracer)\n",
		wallDelta, offWall.Seconds(), onWall.Seconds())

	// Part 2: a run that exercises every instrumented stage. The WAL is
	// real I/O in virtual time, so hold it to a short run regardless of
	// -duration (same policy as the persist experiment).
	duration := 15 * time.Second
	if o.quick {
		duration = 8 * time.Second
	}
	dir, err := os.MkdirTemp("", "banyan-obs-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	full := harness.Config{
		Protocol:         harness.Banyan,
		Params:           harness.ParamsFor(harness.Banyan, 4, 1, 1),
		Topology:         topo,
		BlockSize:        size,
		BandwidthBps:     bandwidth,
		Duration:         duration,
		Seed:             o.seed,
		Obs:              true,
		Dissem:           true,
		DissemBatchBytes: size / 16,
		WALDir:           dir,
		// The restarted replica's body store is memory-only: it comes back
		// with journaled digests but no bodies and must fetch them from
		// peers — the path that populates the dissem-fetch histogram.
		Crash:   []harness.CrashSpec{{Replica: 3, At: duration / 3}},
		Restart: []harness.CrashSpec{{Replica: 3, At: 2 * duration / 3}},
	}
	res, err := o.run(full)
	if err != nil {
		return err
	}
	fmt.Printf("\nstage breakdown, fully loaded run (dissem + WAL + crash-restart of replica 3, %s)\n", duration)
	fmt.Printf("%-18s %10s %12s %12s %12s\n", "stage", "samples", "mean(ms)", "p50(ms)", "p99(ms)")
	names := make([]string, 0, len(res.Stages))
	for name := range res.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := res.Stages[name]
		fmt.Printf("%-18s %10d %12.3f %12.3f %12.3f\n",
			name, s.Count, msF(s.Mean), msF(s.P50), msF(s.P99))
	}
	fmt.Printf("slow rounds flagged at the observer (latency > k×EWMA): %d\n", res.SlowRounds)
	fmt.Println("(commit latency / dissem fetch / delivery wait tick in virtual time and are exact;")
	fmt.Println(" verify time and WAL flush are real time on this host. Histogram buckets are log2,")
	fmt.Println(" so quantiles carry ~2x bucket resolution — read them as magnitudes, not microseconds)")

	for _, want := range []string{obs.HistCommitLatency, obs.HistVerifyTime, obs.HistWALFlush, obs.HistDissemFetch} {
		if res.Stages[want].Count == 0 {
			return fmt.Errorf("obs: stage %q recorded no samples", want)
		}
	}

	if o.jsonOut == "" {
		return nil
	}
	stages := make(map[string]any, len(res.Stages))
	for name, s := range res.Stages {
		stages[name] = map[string]any{
			"count":   s.Count,
			"mean_ms": round3(msF(s.Mean)),
			"p50_ms":  round3(msF(s.P50)),
			"p99_ms":  round3(msF(s.P99)),
		}
	}
	obj := map[string]any{
		"note": fmt.Sprintf("cmd/bench -exp obs -duration %s: overhead on the pipeline config (obs off vs on, same seed); stage breakdown from a %s dissem+WAL+crash-restart run, histograms merged across replicas (log2 buckets)", o.duration, duration),
		"tput_obs_off_mbps":     round2(offRes.ThroughputBps / 1e6),
		"tput_obs_on_mbps":      round2(onRes.ThroughputBps / 1e6),
		"tput_overhead_pct":     round2(tputDelta),
		"wall_obs_off_s":        round2(offWall.Seconds()),
		"wall_obs_on_s":         round2(onWall.Seconds()),
		"wall_overhead_pct":     round1(wallDelta),
		"stages":                stages,
		"slow_rounds_flagged":   res.SlowRounds,
		"restart_replayed_recs": res.RestartReplayed,
	}
	return mergeJSON(o.jsonOut, "obs", obj)
}

func round3(f float64) float64 { return float64(int(f*1000+0.5)) / 1000 }
