// Command bench regenerates every table and figure of the paper's
// evaluation (section 9) on the discrete-event WAN simulator, plus the
// ablation studies of DESIGN.md section 6.
//
// Usage:
//
//	bench -exp all                   # everything, paper-scale durations
//	bench -exp fig6a,fig6c -quick    # selected experiments, short runs
//	bench -exp table1                # analytic Table 1
//
// Output is aligned text, one section per experiment, with the paper's
// reported numbers inlined for comparison. EXPERIMENTS.md records a full
// run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"banyan/internal/crypto"
	"banyan/internal/harness"
	"banyan/internal/latencymodel"
	"banyan/internal/types"
	"banyan/internal/wan"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

type options struct {
	duration time.Duration
	seed     uint64
	quick    bool
	verify   crypto.VerifyConfig
	// jsonOut, when set, makes experiments that record snapshot results
	// (dissem, obs) merge them into this BENCH_PR<n>.json file.
	jsonOut string
}

// run executes one harness experiment with the global verification knobs
// applied.
func (o options) run(cfg harness.Config) (*harness.Result, error) {
	cfg.Verify = o.verify
	return harness.Run(cfg)
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "comma-separated experiments: table1,fig1,fig2,fig6a,fig6b,fig6c,fig6d,fig6e,traffic,ablation-p,ablation-fastpath,ablation-forwarding,ablation-geography,verify,persist,pipeline,dissem,reconfig,obs or 'all'")
		duration = fs.Duration("duration", 120*time.Second, "virtual duration per run (paper: 120s)")
		seed     = fs.Uint64("seed", 1, "simulation seed")
		quick    = fs.Bool("quick", false, "short runs and fewer sweep points")
		list     = fs.Bool("list", false, "list experiments and exit")
		verifyW  = fs.Int("verify-workers", 0, "signature-verification pool size (0 = GOMAXPROCS, 1 = inline)")
		verifyC  = fs.Int("verify-cache", 0, "verified-signature cache capacity (0 = default, <0 = disabled)")
		jsonOut  = fs.String("json", "", "merge experiment results into this BENCH_PR<n>.json snapshot (dissem experiment)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range allExperiments {
			fmt.Printf("%-20s %s\n", e.name, e.desc)
		}
		return nil
	}
	opts := options{
		duration: *duration, seed: *seed, quick: *quick,
		verify:  crypto.VerifyConfig{Workers: *verifyW, CacheSize: *verifyC},
		jsonOut: *jsonOut,
	}
	if *quick && *duration == 120*time.Second {
		opts.duration = 20 * time.Second
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(name)] = true
	}
	ranAny := false
	for _, e := range allExperiments {
		if !want["all"] && !want[e.name] {
			continue
		}
		ranAny = true
		fmt.Printf("==== %s — %s ====\n", e.name, e.desc)
		start := time.Now()
		if err := e.run(opts); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("(%s in %.1fs wall time)\n\n", e.name, time.Since(start).Seconds())
	}
	if !ranAny {
		return fmt.Errorf("no experiment matched %q (try -list)", *exp)
	}
	return nil
}

type experiment struct {
	name string
	desc string
	run  func(options) error
}

var allExperiments = []experiment{
	{"table1", "Table 1: analytic protocol comparison", runTable1},
	{"fig1", "Figure 1: communication steps to finality (latency in δ units)", runFig1},
	{"fig2", "Figure 2: integrated fast path has no switching cost", runFig2},
	{"fig6a", "Figure 6a: throughput vs latency, n=19, 4 global DCs", runFig6a},
	{"fig6b", "Figure 6b: throughput vs latency, n=4, 4 global DCs", runFig6b},
	{"fig6c", "Figure 6c: latency variance, n=4, 1MB blocks", runFig6c},
	{"fig6d", "Figure 6d: crash faults, n=19, 4 US DCs, 3s timeout", runFig6d},
	{"fig6e", "Figure 6e: global network, n=19 across 19 regions", runFig6e},
	{"traffic", "Message complexity: traffic per finalized block", runTraffic},
	{"ablation-p", "Ablation: sweep of the fast-path parameter p", runAblationP},
	{"ablation-fastpath", "Ablation: Banyan with the fast path disabled", runAblationFastPath},
	{"ablation-forwarding", "Ablation: tip forwarding on/off", runAblationForwarding},
	{"ablation-geography", "Ablation: co-located vs spread quorum geography", runAblationGeography},
	{"verify", "Microbench: sequential vs batched/cached signature verification", runVerify},
	{"persist", "Durability: WAL group commit vs per-record fsync + crash-restart recovery", runPersist},
	{"pipeline", "Optimistic proposal pipelining (Moonshot mode) vs baseline commit latency", runPipeline},
	{"dissem", "Decoupled batch dissemination: digest-only proposals vs inline payloads", runDissem},
	{"reconfig", "Reconfiguration: add/remove a validator mid-run, latency blip at epoch boundaries", runReconfig},
	{"obs", "Observability: instrumentation overhead and per-stage latency breakdown", runObs},
}

const header = "%-22s %10s %10s %10s %10s %12s %8s %8s\n"
const rowFmt = "%-22s %10.1f %10.1f %10.1f %10.1f %12.2f %8d %8d\n"

func printHeader() {
	fmt.Printf(header, "config", "mean(ms)", "p50(ms)", "p95(ms)", "sd(ms)", "tput(MB/s)", "fast", "slow")
}

func printRow(name string, r *harness.Result) {
	fmt.Printf(rowFmt, name,
		msF(r.Latency.Mean), msF(r.Latency.P50), msF(r.Latency.P95), msF(r.Latency.StdDev),
		r.ThroughputBps/1e6, r.FastFinal, r.SlowFinal)
}

func msF(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func runTable1(options) error {
	fmt.Print(latencymodel.Render(1, 1))
	fmt.Println()
	fmt.Print(latencymodel.Render(6, 1))
	fmt.Println("\nNote: this repository implements Banyan, ICC, Streamlet, and chained")
	fmt.Println("3-phase HotStuff (~7δ at the proposer; the table's Fast HotStuff row is")
	fmt.Println("the pipelined 5δ variant). Measured step counts: see fig1.")
	return nil
}

// runFig1 measures proposal finalization latency on a uniform topology in
// units of the one-way delay δ — the "communication steps" of Figure 1.
func runFig1(o options) error {
	const oneWay = 50 * time.Millisecond
	topo := wan.Uniform(4, oneWay)
	fmt.Printf("%-12s %12s %10s   %s\n", "protocol", "latency(ms)", "steps(δ)", "paper")
	paper := map[harness.Protocol]string{
		harness.Banyan:    "2 steps (fast path)",
		harness.ICC:       "3 steps",
		harness.HotStuff:  "~7 steps (3-chain commit at proposer)",
		harness.Streamlet: "epoch-clocked (Δ-bound, not δ)",
	}
	for _, proto := range harness.Protocols() {
		res, err := o.run(harness.Config{
			Protocol:    proto,
			Params:      harness.ParamsFor(proto, 4, 1, 1),
			Topology:    topo,
			BlockSize:   1 << 10,
			Duration:    o.duration,
			Seed:        o.seed,
			ProcRateBps: -1, // disable CPU model: count pure steps
			ProcFixed:   -1,
		})
		if err != nil {
			return err
		}
		steps := float64(res.Latency.Mean) / float64(oneWay)
		fmt.Printf("%-12s %12.1f %10.2f   %s\n", proto, msF(res.Latency.Mean), steps, paper[proto])
	}
	return nil
}

// runFig2 demonstrates the integrated dual mode: with the fast path
// unable to fire (p+1 replicas crashed), Banyan's latency matches ICC's —
// there is no switching cost — whereas a strawman that runs the fast path
// and falls back on a timeout would pay the timeout on every block.
func runFig2(o options) error {
	topo, err := wan.FourGlobal19()
	if err != nil {
		return err
	}
	// Crash p+1 = 2 replicas so the n-p = 18 fast quorum is unreachable.
	crash := []harness.CrashSpec{{Replica: 17}, {Replica: 18}}
	printHeader()
	var banyanMean, iccMean time.Duration
	for _, proto := range []harness.Protocol{harness.Banyan, harness.ICC} {
		res, err := o.run(harness.Config{
			Protocol:  proto,
			Params:    harness.ParamsFor(proto, 19, 6, 1),
			Topology:  topo,
			BlockSize: 400 << 10,
			Duration:  o.duration,
			Seed:      o.seed,
			Crash:     crash,
		})
		if err != nil {
			return err
		}
		printRow(string(proto)+"+2crash", res)
		if proto == harness.Banyan {
			banyanMean = res.Latency.Mean
		} else {
			iccMean = res.Latency.Mean
		}
	}
	delta := harness.AutoDelta(topo, 400<<10, 625e6, 100e6, 150*time.Microsecond)
	fmt.Printf("\nBanyan (fast path dark) vs ICC: %.1fms vs %.1fms (%+.1f%%)\n",
		msF(banyanMean), msF(iccMean), 100*(float64(banyanMean)/float64(iccMean)-1))
	fmt.Printf("strawman timeout-fallback protocol would add a fast-path timeout (~2Δ = %.0fms) per block: ~%.1fms\n",
		msF(2*delta), msF(iccMean+2*delta))
	return nil
}

func fig6Sweep(o options, topo *wan.Topology, sizes []int, configs []protoConfig) error {
	printHeader()
	for _, size := range sizes {
		for _, pc := range configs {
			res, err := o.run(harness.Config{
				Protocol:  pc.proto,
				Params:    harness.ParamsFor(pc.proto, topo.N(), pc.f, pc.p),
				Topology:  topo,
				BlockSize: size,
				Duration:  o.duration,
				Seed:      o.seed,
			})
			if err != nil {
				return err
			}
			printRow(fmt.Sprintf("%s/%s", pc.label, sizeLabel(size)), res)
		}
		fmt.Println()
	}
	return nil
}

type protoConfig struct {
	label string
	proto harness.Protocol
	f, p  int
}

func sizeLabel(size int) string {
	if size >= 1<<20 {
		return fmt.Sprintf("%.1fMB", float64(size)/(1<<20))
	}
	return fmt.Sprintf("%dKB", size>>10)
}

func runFig6a(o options) error {
	topo, err := wan.FourGlobal19()
	if err != nil {
		return err
	}
	sizes := []int{100 << 10, 200 << 10, 400 << 10, 800 << 10, 1600 << 10}
	if o.quick {
		sizes = []int{400 << 10, 1600 << 10}
	}
	configs := []protoConfig{
		{"banyan-p1", harness.Banyan, 6, 1},
		{"banyan-p4", harness.Banyan, 4, 4},
		{"icc", harness.ICC, 6, 0},
		{"hotstuff", harness.HotStuff, 6, 0},
		{"streamlet", harness.Streamlet, 6, 0},
	}
	fmt.Println("paper at 400KB: ICC 239ms, Banyan p=1 216ms (-10%), Banyan p=4 179ms (-25.1%)")
	return fig6Sweep(o, topo, sizes, configs)
}

func runFig6b(o options) error {
	topo, err := wan.FourGlobal4()
	if err != nil {
		return err
	}
	sizes := []int{500 << 10, 1 << 20, 1500 << 10, 2 << 20, 2500 << 10}
	if o.quick {
		sizes = []int{1 << 20}
	}
	configs := []protoConfig{
		{"banyan-p1", harness.Banyan, 1, 1},
		{"icc", harness.ICC, 1, 0},
		{"hotstuff", harness.HotStuff, 1, 0},
		{"streamlet", harness.Streamlet, 1, 0},
	}
	fmt.Println("paper at 1MB: ICC 224ms, Banyan 157ms (-29.9%)")
	return fig6Sweep(o, topo, sizes, configs)
}

func runFig6c(o options) error {
	topo, err := wan.FourGlobal4()
	if err != nil {
		return err
	}
	fmt.Println("paper: Banyan's fast path does not increase latency variance (n=4, 1MB)")
	fmt.Printf("%-10s %10s %10s %10s %10s %10s %10s %10s\n",
		"protocol", "mean(ms)", "sd(ms)", "min(ms)", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)")
	for _, proto := range []harness.Protocol{harness.Banyan, harness.ICC} {
		res, err := o.run(harness.Config{
			Protocol:   proto,
			Params:     harness.ParamsFor(proto, 4, 1, 1),
			Topology:   topo,
			BlockSize:  1 << 20,
			Duration:   o.duration,
			Seed:       o.seed,
			JitterFrac: 0.08, // variance needs jitter; the paper's WAN has it
		})
		if err != nil {
			return err
		}
		l := res.Latency
		fmt.Printf("%-10s %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			proto, msF(l.Mean), msF(l.StdDev), msF(l.Min), msF(l.P50), msF(l.P95), msF(l.P99), msF(l.Max))
	}
	return nil
}

func runFig6d(o options) error {
	topo, err := wan.FourUS19()
	if err != nil {
		return err
	}
	// The paper sets the (rank-1) timeout to 3 seconds: Δ_notary(1) = 2Δ.
	delta := 1500 * time.Millisecond
	crashCounts := []int{0, 2, 4, 6}
	if o.quick {
		crashCounts = []int{0, 4}
	}
	// Crashed replicas are spread across datacenters (5/5/5/4 layout).
	spread := []types.ReplicaID{0, 5, 10, 15, 1, 6}
	fmt.Println("paper: no penalty for trying the fast path; under crashes Banyan behaves exactly like ICC")
	fmt.Printf("%-18s %10s %12s %14s %8s %8s\n",
		"config", "mean(ms)", "tput(MB/s)", "blkint(ms)", "fast", "slow")
	for _, crashes := range crashCounts {
		var specs []harness.CrashSpec
		for i := 0; i < crashes; i++ {
			specs = append(specs, harness.CrashSpec{Replica: spread[i]})
		}
		for _, proto := range []harness.Protocol{harness.Banyan, harness.ICC} {
			res, err := o.run(harness.Config{
				Protocol:  proto,
				Params:    harness.ParamsFor(proto, 19, 6, 1),
				Topology:  topo,
				BlockSize: 400 << 10,
				Duration:  o.duration,
				Delta:     delta,
				Seed:      o.seed,
				Crash:     specs,
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-18s %10.1f %12.2f %14.1f %8d %8d\n",
				fmt.Sprintf("%s/%dcrash", proto, crashes),
				msF(res.Latency.Mean), res.ThroughputBps/1e6, msF(res.BlockInterval),
				res.FastFinal, res.SlowFinal)
		}
		fmt.Println()
	}
	return nil
}

func runFig6e(o options) error {
	topo, err := wan.Global19()
	if err != nil {
		return err
	}
	configs := []protoConfig{
		{"banyan-f6-p1", harness.Banyan, 6, 1},
		{"banyan-f4-p4", harness.Banyan, 4, 4},
		{"icc", harness.ICC, 6, 0},
		{"hotstuff", harness.HotStuff, 6, 0},
		{"streamlet", harness.Streamlet, 6, 0},
	}
	sizes := []int{1 << 20}
	if !o.quick {
		sizes = []int{256 << 10, 512 << 10, 1 << 20, 2 << 20}
	}
	fmt.Println("paper at 1MB: ICC 384ms, Banyan f=6,p=1 362ms (-5.8%), Banyan f=4,p=4 324ms (-16%)")
	return fig6Sweep(o, topo, sizes, configs)
}

// runTraffic measures message complexity: messages and bytes on the wire
// per finalized block, for each protocol. The paper (section 2, "Other
// aspects") notes Banyan's fast path adds only constant per-round message
// overhead over ICC — fast votes ride on existing messages and the Advance
// broadcast replaces ICC's notarization broadcast.
func runTraffic(o options) error {
	topo, err := wan.FourGlobal19()
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %12s %14s %16s %14s\n",
		"protocol", "blocks", "msgs/block", "wire-KB/block", "overhead")
	const blockSize = 64 << 10
	for _, proto := range harness.Protocols() {
		res, err := o.run(harness.Config{
			Protocol:  proto,
			Params:    harness.ParamsFor(proto, 19, 6, 1),
			Topology:  topo,
			BlockSize: blockSize,
			Duration:  o.duration,
			Seed:      o.seed,
		})
		if err != nil {
			return err
		}
		if res.BlocksCommitted == 0 {
			fmt.Printf("%-12s %12d %14s %16s %14s\n", proto, 0, "-", "-", "-")
			continue
		}
		msgsPerBlock := float64(res.Messages) / float64(res.BlocksCommitted)
		kbPerBlock := float64(res.MessageBytes) / float64(res.BlocksCommitted) / 1024
		// Overhead: wire bytes beyond the payload itself, per block.
		overhead := kbPerBlock - float64(blockSize)/1024
		fmt.Printf("%-12s %12d %14.1f %16.1f %13.1fx\n",
			proto, res.BlocksCommitted, msgsPerBlock, kbPerBlock,
			overhead/(float64(blockSize)/1024))
	}
	fmt.Println("(overhead = wire bytes beyond one payload copy, as a multiple of the payload;")
	fmt.Println(" includes the n-1 unicasts of every broadcast plus tip-forwarding relays)")
	return nil
}

func runAblationP(o options) error {
	topo, err := wan.FourGlobal19()
	if err != nil {
		return err
	}
	fmt.Println("latency vs p at n=19 (larger p: more robust and faster fast path, lower f)")
	printHeader()
	// Valid (f, p) pairs at n = 19: the bound 3f+2p-1 <= 19 admits exactly
	// f=6,p=1 (the paper's first config), f=5,p=2, and f=4,p=4 (the second).
	for _, pp := range []struct{ f, p int }{{6, 1}, {5, 2}, {4, 4}} {
		params := types.Params{N: 19, F: pp.f, P: pp.p}
		if err := params.Validate(); err != nil {
			fmt.Printf("%-22s invalid: %v\n", fmt.Sprintf("f=%d,p=%d", pp.f, pp.p), err)
			continue
		}
		res, err := o.run(harness.Config{
			Protocol:  harness.Banyan,
			Params:    params,
			Topology:  topo,
			BlockSize: 400 << 10,
			Duration:  o.duration,
			Seed:      o.seed,
		})
		if err != nil {
			return err
		}
		printRow(fmt.Sprintf("banyan f=%d p=%d", pp.f, pp.p), res)
	}
	return nil
}

func runAblationFastPath(o options) error {
	topo, err := wan.FourGlobal4()
	if err != nil {
		return err
	}
	fmt.Println("isolating the fast path: Banyan vs Banyan-without-fast-path vs ICC (n=4, 1MB)")
	printHeader()
	for _, pc := range []protoConfig{
		{"banyan", harness.Banyan, 1, 1},
		{"banyan-nofast", harness.BanyanNoFast, 1, 1},
		{"icc", harness.ICC, 1, 0},
	} {
		res, err := o.run(harness.Config{
			Protocol:  pc.proto,
			Params:    harness.ParamsFor(pc.proto, 4, pc.f, pc.p),
			Topology:  topo,
			BlockSize: 1 << 20,
			Duration:  o.duration,
			Seed:      o.seed,
		})
		if err != nil {
			return err
		}
		printRow(pc.label, res)
	}
	return nil
}

func runAblationForwarding(o options) error {
	topo, err := wan.FourGlobal19()
	if err != nil {
		return err
	}
	fmt.Println("tip forwarding (Algorithm 1 line 35 / Bamboo fix) on vs off, n=19, 400KB")
	printHeader()
	for _, off := range []bool{false, true} {
		for _, proto := range []harness.Protocol{harness.Banyan, harness.ICC} {
			res, err := o.run(harness.Config{
				Protocol:     proto,
				Params:       harness.ParamsFor(proto, 19, 6, 1),
				Topology:     topo,
				BlockSize:    400 << 10,
				Duration:     o.duration,
				Seed:         o.seed,
				NoForwarding: off,
			})
			if err != nil {
				return err
			}
			label := string(proto) + "/fwd"
			if off {
				label = string(proto) + "/nofwd"
			}
			printRow(label, res)
		}
	}
	return nil
}

func runAblationGeography(o options) error {
	fmt.Println("quorum geography: the fast path gains most when a whole datacenter is far (p=f skips it)")
	printHeader()
	cases := []struct {
		label string
		dcs   []string
	}{
		{"spread", []string{"us-east-1", "us-west-2", "eu-central-1", "ap-northeast-1"}},
		{"colocated-outlier", []string{"us-east-1", "us-east-2", "ca-central-1", "ap-southeast-2"}},
		{"regional", []string{"us-east-1", "us-east-2", "us-west-1", "us-west-2"}},
	}
	for _, tc := range cases {
		topo, err := wan.Colocated("geo-"+tc.label, tc.dcs, []int{5, 5, 5, 4})
		if err != nil {
			return err
		}
		for _, pc := range []protoConfig{
			{"banyan-p4", harness.Banyan, 4, 4},
			{"icc", harness.ICC, 6, 0},
		} {
			res, err := o.run(harness.Config{
				Protocol:  pc.proto,
				Params:    harness.ParamsFor(pc.proto, 19, pc.f, pc.p),
				Topology:  topo,
				BlockSize: 400 << 10,
				Duration:  o.duration,
				Seed:      o.seed,
			})
			if err != nil {
				return err
			}
			printRow(tc.label+"/"+pc.label, res)
		}
		fmt.Println()
	}
	return nil
}

// runVerify microbenchmarks the signature-verification pipeline outside
// the simulator: a round's notarization certificate delivered redundantly
// (the original broadcast, a relay, and the Advance carry the same quorum
// of signatures), verified sequentially vs through the batched pool with
// the verified-signature cache. This is the raw-crypto view of what the
// engine's ingestion path pays per round.
func runVerify(o options) error {
	const redundancy = 3
	fmt.Println("one notarization certificate per round, delivered 3x (gossip redundancy), ed25519")
	fmt.Printf("%-6s %8s %16s %16s %9s %10s\n",
		"n", "quorum", "seq(ms/round)", "batch(ms/round)", "speedup", "cache-hit%")
	for _, n := range []int{16, 64, 128} {
		params := types.Params{N: n, F: (n - 1) / 3, P: 1}
		quorum := params.NotarizationQuorum()
		keyring, signers := crypto.GenerateCluster(crypto.Ed25519(), n, o.seed)
		rounds := 50
		if o.quick {
			rounds = 10
		}
		certs := make([]*types.Certificate, rounds)
		for r := range certs {
			var block types.BlockID
			block[0], block[1] = byte(r), byte(r>>8)
			votes := make([]types.Vote, quorum)
			for i := range votes {
				votes[i] = signers[i].SignVote(types.VoteNotarize, types.Round(r+1), block)
			}
			cert, err := types.NewCertificate(types.CertNotarization, types.Round(r+1), block, votes)
			if err != nil {
				return err
			}
			certs[r] = cert
		}

		seqStart := time.Now()
		for _, cert := range certs {
			for d := 0; d < redundancy; d++ {
				if err := crypto.VerifyCert(keyring, cert, quorum); err != nil {
					return err
				}
			}
		}
		seq := time.Since(seqStart)

		verifier := crypto.NewVerifier(keyring, o.verify)
		batchStart := time.Now()
		for _, cert := range certs {
			for d := 0; d < redundancy; d++ {
				if err := verifier.VerifyCert(cert, quorum); err != nil {
					return err
				}
			}
		}
		batch := time.Since(batchStart)
		hits, misses := verifier.CacheStats()
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Printf("%-6d %8d %16.2f %16.2f %8.1fx %9.1f%%\n",
			n, quorum,
			msF(seq)/float64(rounds), msF(batch)/float64(rounds),
			float64(seq)/float64(batch), hitRate)
	}
	return nil
}

var _ = sort.Strings // reserved for future table sorting
