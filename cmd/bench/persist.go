package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"banyan/internal/harness"
	"banyan/internal/types"
	"banyan/internal/wal"
	"banyan/internal/wan"
)

// runPersist is the durability experiment: (a) raw WAL append throughput
// under per-record fsync vs group commit — the amortization the engine's
// hot path rides on — and (b) a crash-restart scenario on the simulator,
// where f replicas die mid-run and recover from their logs.
func runPersist(o options) error {
	if err := persistThroughput(o); err != nil {
		return err
	}
	fmt.Println()
	return persistCrashRestart(o)
}

// persistRecord is a representative journal entry: a vote message with
// an ed25519-sized signature, roughly what every round appends most of.
func persistRecord(i int) wal.Record {
	return wal.Record{
		Kind: wal.KindInbound,
		From: types.ReplicaID(i % 16),
		Msg: &types.VoteMsg{Votes: []types.Vote{{
			Kind:      types.VoteNotarize,
			Round:     types.Round(i + 1),
			Voter:     types.ReplicaID(i % 16),
			Signature: bytes.Repeat([]byte{byte(i)}, 64),
		}}},
	}
}

// appendFor appends records for the window and returns records/second
// plus the appends-per-fsync amortization ratio actually achieved.
func appendFor(opts wal.Options, window time.Duration) (recsPerSec float64, perSync float64, err error) {
	dir, err := os.MkdirTemp("", "banyan-persist-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	log, _, err := wal.Open(dir, opts)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	deadline := start.Add(window)
	n := 0
	for time.Now().Before(deadline) {
		// Check the clock once per small batch, not per append.
		for i := 0; i < 64; i++ {
			if err := log.Append(persistRecord(n)); err != nil {
				return 0, 0, err
			}
			n++
		}
	}
	elapsed := time.Since(start)
	if err := log.Close(); err != nil {
		return 0, 0, err
	}
	appends, syncs := log.Stats()
	if syncs == 0 {
		syncs = 1
	}
	return float64(n) / elapsed.Seconds(), float64(appends) / float64(syncs), nil
}

func persistThroughput(o options) error {
	window := 2 * time.Second
	if o.quick {
		window = 500 * time.Millisecond
	}
	fmt.Printf("WAL append throughput, one ~120B vote record per append, %s per mode\n", window)
	fmt.Printf("%-26s %14s %16s\n", "sync policy", "records/s", "appends/fsync")

	everyRec, everyRatio, err := appendFor(wal.Options{Sync: wal.SyncPolicy{EveryRecord: true}}, window)
	if err != nil {
		return err
	}
	fmt.Printf("%-26s %14.0f %16.1f\n", "fsync per record", everyRec, everyRatio)

	groupRec, groupRatio, err := appendFor(wal.Options{Sync: wal.SyncPolicy{Interval: 2 * time.Millisecond}}, window)
	if err != nil {
		return err
	}
	fmt.Printf("%-26s %14.0f %16.1f\n", "group commit (2ms window)", groupRec, groupRatio)
	fmt.Printf("\ngroup commit sustains %.1fx the per-record-fsync throughput\n", groupRec/everyRec)
	fmt.Println("(the window bounds loss: a crash forfeits at most 2ms of records — never acknowledged state,")
	fmt.Println(" since replay re-verifies everything and the engine re-syncs any gap from peers)")
	return nil
}

func persistCrashRestart(o options) error {
	// The WAL is real I/O in virtual time, so hold the scenario to a
	// short run regardless of -duration.
	duration := 15 * time.Second
	if o.quick {
		duration = 8 * time.Second
	}
	const n, f, p = 7, 2, 1
	fmt.Printf("crash-restart scenario: n=%d, f=%d replicas killed at t=%s, restarted from their WALs at t=%s\n",
		n, f, duration/4, duration/2)
	cfg := harness.Config{
		Protocol:  harness.Banyan,
		Params:    types.Params{N: n, F: f, P: p},
		Topology:  wan.Uniform(n, 20*time.Millisecond),
		BlockSize: 16 << 10,
		Duration:  duration,
		Seed:      o.seed,
	}
	dir, err := os.MkdirTemp("", "banyan-persist-restart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg.WALDir = dir
	for i := 0; i < f; i++ {
		id := types.ReplicaID(n - 1 - i)
		cfg.Crash = append(cfg.Crash, harness.CrashSpec{Replica: id, At: duration / 4})
		cfg.Restart = append(cfg.Restart, harness.CrashSpec{Replica: id, At: duration / 2})
	}
	res, err := o.run(cfg)
	if err != nil {
		return err
	}
	printHeader()
	printRow("banyan+crash-restart", res)
	fmt.Printf("\nrestarted replicas replayed %d journaled records; safety faults: %d\n",
		res.RestartReplayed, res.Faults)
	return nil
}
