package banyan

import (
	"fmt"
	"sync"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/crypto"
	"banyan/internal/dissem"
	"banyan/internal/membership"
	"banyan/internal/mempool"
	"banyan/internal/metrics"
	"banyan/internal/node"
	"banyan/internal/obs"
	"banyan/internal/protocol"
	"banyan/internal/transport/tcp"
	"banyan/internal/types"
	"banyan/internal/wal"
)

// ReplicaConfig configures a single TCP-connected replica for
// multi-process deployments (see cmd/banyan and cmd/localnet).
type ReplicaConfig struct {
	// ID is this replica's index in [0, MaxN).
	ID int
	// N, F, P are the cluster fault parameters (see Params). N is the
	// genesis validator-set size.
	N, F, P int
	// MaxN is the number of replica identities the deployment provisions
	// keys for; zero means N. Identities in [N, MaxN) start as non-voting
	// observers (they catch up via state sync) and become voters when a
	// finalized ConfigChange admits them — see ProposeAddValidator.
	// Banyan protocols only.
	MaxN int
	// Protocol selects the engine; empty picks ProtocolBanyan.
	Protocol Protocol
	// ListenAddr is the local listen address; Peers maps every replica ID
	// to its address (the entry for ID is ignored).
	ListenAddr string
	Peers      map[int]string
	// Delta is the Δ bound for rank delays; zero picks 50ms (LAN/metro).
	Delta time.Duration
	// MaxBlockBytes caps transaction batches per block (default 1 MiB).
	MaxBlockBytes int
	// Scheme selects the signature scheme (default "ed25519").
	Scheme string
	// ClusterSeed derives the shared demo PKI deterministically; every
	// replica of a deployment must use the same value.
	ClusterSeed uint64
	// CommitBuffer is the capacity of the Commits channel (default 1024).
	CommitBuffer int
	// VerifyWorkers sizes the signature-verification pool: 0 selects
	// GOMAXPROCS, 1 verifies inline, negative additionally skips the
	// node's preverification stage.
	VerifyWorkers int
	// VerifyCacheSize caps the verified-signature cache (0 default,
	// negative disables caching).
	VerifyCacheSize int
	// WALDir, when non-empty, enables the write-ahead log: inbound
	// messages, this replica's own proposals/votes/certificates, and
	// commit decisions are journaled to the directory, and a restarted
	// replica (same WALDir) replays the log on Start — rebuilding its
	// blocktree and voting record, re-delivering the committed chain on
	// Commits, and rejoining at its pre-crash round without equivocating.
	WALDir string
	// WALSyncEveryRecord fsyncs per record instead of group-committing —
	// no durability window, at a large throughput cost (see cmd/bench
	// -exp persist).
	WALSyncEveryRecord bool
	// WALSyncInterval is the group-commit window (0 = 2ms): a crash loses
	// at most the records appended within it.
	WALSyncInterval time.Duration
	// WALSyncBytes flushes a group early at this many buffered bytes
	// (0 = 256 KiB).
	WALSyncBytes int
	// WALSegmentBytes rotates log segments at this size (0 = 64 MiB).
	WALSegmentBytes int
	// WALNoForceOwn drops the force-log-before-send rule for this
	// replica's own signed messages (see wal.SyncPolicy.NoForceOwn):
	// faster, but a crash may forget a vote the network already saw.
	WALNoForceOwn bool
	// WALContinueOnError keeps sending own votes after a WAL write error
	// instead of failing safe by going silent (see
	// wal.RecorderConfig.ContinueOnError).
	WALContinueOnError bool
	// WALCheckpointRounds checkpoints and truncates the WAL every this
	// many finalized rounds (0 = default 16, negative = disabled); see
	// ClusterConfig.WALCheckpointRounds.
	WALCheckpointRounds int
	// DeepPrune evicts finalized block bodies below the engine's prune
	// floor; see ClusterConfig.DeepPrune. A deployment running DeepPrune
	// serves catch-up from a bounded window, and replicas that lose
	// their disk rejoin via peer snapshot state sync (point a fresh
	// Replica at an empty WALDir and Start it).
	DeepPrune bool
	// PruneKeep / PruneInterval override the engine's pruning cadence in
	// rounds (0 = engine defaults).
	PruneKeep, PruneInterval int
	// OptimisticProposals enables Moonshot-style proposal pipelining (see
	// ClusterConfig.OptimisticProposals): the next leader broadcasts its
	// block on the expected parent before the round certifies. Every
	// replica of a deployment must use the same value, stable across
	// restarts.
	OptimisticProposals bool
	// Dissem decouples payload dissemination from ordering (see
	// ClusterConfig.Dissem): batches travel out-of-band, blocks commit
	// digest lists, delivery waits for availability. Every replica of a
	// deployment must use the same value.
	Dissem bool
	// DissemBatchBytes is the dissemination batch cut size; transactions
	// larger than this are rejected at Submit. Zero picks 64 KiB.
	DissemBatchBytes int
	// DissemInlineMax bounds the inline tail a proposal may carry
	// alongside its batch refs. Zero means everything rides in batches.
	DissemInlineMax int
	// Obs enables the observability layer: block-lifecycle tracing,
	// stage-latency histograms (commit latency, preverify wait, verify
	// time, WAL flush, dissem fetch, delivery wait), and gauges, all
	// registered in the replica's metrics registry. Implied by ObsAddr.
	Obs bool
	// ObsAddr, when non-empty, serves the observability endpoint on this
	// address: /metrics (Prometheus text), /debug/pprof/*, /trace
	// (Chrome trace JSON), /trace/summary, /slow. Implies Obs.
	ObsAddr string
	// ObsTraceEvents overrides the tracer ring capacity
	// (0 = obs.DefaultTraceEvents).
	ObsTraceEvents int
	// ObsSlowK overrides the slow-round detector's k×EWMA multiplier
	// (0 = obs.DefaultSlowK).
	ObsSlowK float64
	// Logf, when non-nil, receives transport diagnostics.
	Logf func(format string, args ...any)
}

// walOptions converts the ReplicaConfig knobs to wal.Options.
func (cfg ReplicaConfig) walOptions() wal.Options {
	return wal.Options{
		Sync: wal.SyncPolicy{
			EveryRecord: cfg.WALSyncEveryRecord,
			Interval:    cfg.WALSyncInterval,
			Bytes:       cfg.WALSyncBytes,
			NoForceOwn:  cfg.WALNoForceOwn,
		},
		SegmentBytes: cfg.WALSegmentBytes,
	}
}

// Replica is one consensus replica over TCP.
type Replica struct {
	cfg      ReplicaConfig
	params   types.Params
	node     *node.Node
	tr       *tcp.Transport
	pool     *mempool.Pool
	store    *dissem.Store // nil without Dissem
	engine   protocol.Engine
	rec      *wal.Recorder // nil without WALDir
	counters *metrics.Registry
	obs      *obs.Observer // nil without Obs/ObsAddr
	obsSrv   *obs.Server   // nil without ObsAddr
	maxN     int
	keyring  *crypto.Keyring
	reconfig *membership.Reconfigurator // nil for baseline protocols

	commits   chan Commit
	rawCommit chan node.CommitEvent

	mu      sync.Mutex
	faults  []error
	stopped bool
	done    chan struct{}
}

// NewReplica assembles a replica; call Start to run it.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Protocol == "" {
		cfg.Protocol = ProtocolBanyan
	}
	if cfg.P == 0 {
		cfg.P = 1
	}
	var params types.Params
	var err error
	if cfg.F == 0 {
		params, err = DefaultParams(cfg.Protocol, cfg.N, cfg.P)
	} else {
		params, err = Params(cfg.Protocol, cfg.N, cfg.F, cfg.P)
	}
	if err != nil {
		return nil, err
	}
	maxN := cfg.MaxN
	if maxN == 0 {
		maxN = params.N
	}
	if maxN < params.N {
		return nil, fmt.Errorf("banyan: MaxN %d below N %d", maxN, params.N)
	}
	if maxN > params.N && cfg.Protocol != ProtocolBanyan && cfg.Protocol != ProtocolBanyanNoFast {
		return nil, fmt.Errorf("banyan: MaxN requires a Banyan protocol, got %q", cfg.Protocol)
	}
	if cfg.ID < 0 || cfg.ID >= maxN {
		return nil, fmt.Errorf("banyan: replica id %d out of range (maxN=%d)", cfg.ID, maxN)
	}
	if cfg.Delta == 0 {
		cfg.Delta = 50 * time.Millisecond
	}
	if cfg.MaxBlockBytes <= 0 {
		cfg.MaxBlockBytes = 1 << 20
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "ed25519"
	}
	if cfg.CommitBuffer <= 0 {
		cfg.CommitBuffer = 1024
	}
	if cfg.Dissem {
		if cfg.Protocol != ProtocolBanyan && cfg.Protocol != ProtocolBanyanNoFast {
			return nil, fmt.Errorf("banyan: Dissem requires a Banyan protocol, got %q", cfg.Protocol)
		}
		if cfg.DissemBatchBytes <= 0 {
			cfg.DissemBatchBytes = 64 << 10
		}
	}

	scheme, err := crypto.SchemeByName(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	keyring, signers := crypto.GenerateCluster(scheme, maxN, cfg.ClusterSeed)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		return nil, err
	}

	peers := make(map[types.ReplicaID]string, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		peers[types.ReplicaID(id)] = addr
	}
	listenAddr := cfg.ListenAddr
	if listenAddr == "" {
		// Default to this replica's own entry in the peer list.
		listenAddr = cfg.Peers[cfg.ID]
	}
	counters := metrics.NewRegistry()
	var observer *obs.Observer
	if cfg.Obs || cfg.ObsAddr != "" {
		// Share the replica's registry so transport/engine counters and
		// the observability instruments export through one /metrics page.
		observer = obs.New(obs.Options{
			Registry:    counters,
			TraceEvents: cfg.ObsTraceEvents,
			SlowK:       cfg.ObsSlowK,
		})
	}
	tr, err := tcp.New(tcp.Config{
		Self:       types.ReplicaID(cfg.ID),
		ListenAddr: listenAddr,
		Peers:      peers,
		Logf:       cfg.Logf,
		Drops:      counters.Counter("transport_dropped"),
	})
	if err != nil {
		return nil, err
	}

	pool := mempool.NewPool(0, cfg.MaxBlockBytes)
	if cfg.Dissem {
		pool = mempool.NewShardedPool(0, cfg.DissemBatchBytes, params.N)
	}
	r := &Replica{
		cfg:       cfg,
		params:    params,
		maxN:      maxN,
		keyring:   keyring,
		tr:        tr,
		pool:      pool,
		counters:  counters,
		obs:       observer,
		commits:   make(chan Commit, cfg.CommitBuffer),
		rawCommit: make(chan node.CommitEvent, cfg.CommitBuffer),
		done:      make(chan struct{}),
	}
	if cfg.Dissem {
		// Fresh per process: bodies are not journaled (the WAL holds the
		// refs inside blocks); a restarted replica re-fetches what it lost.
		r.store = dissem.NewStore(dissem.Config{
			Self:       types.ReplicaID(cfg.ID),
			N:          params.N,
			BatchBytes: cfg.DissemBatchBytes,
			InlineMax:  cfg.DissemInlineMax,
			BlockBytes: cfg.MaxBlockBytes,
			Source:     pool,
		})
	}
	verifier := newVerifierFor(cfg.Protocol, keyring, crypto.VerifyConfig{
		Workers: cfg.VerifyWorkers, CacheSize: cfg.VerifyCacheSize,
	})
	switch cfg.Protocol {
	case ProtocolBanyan, ProtocolBanyanNoFast:
		r.reconfig = &membership.Reconfigurator{}
	}
	if observer != nil {
		pool := r.pool
		store := r.store
		observer.OnCollect(func(o *obs.Observer) {
			o.MempoolDepth.Set(int64(pool.Len()))
			if store != nil {
				o.DissemStoreBytes.Set(store.HeldBytes())
			}
		})
	}
	eng, err := buildEngine(cfg.Protocol, params, types.ReplicaID(cfg.ID),
		keyring, verifier, signers[cfg.ID], bc, r.pool, engineTuning{
			delta:         cfg.Delta,
			deepPrune:     cfg.DeepPrune,
			pruneKeep:     types.Round(cfg.PruneKeep),
			pruneInterval: types.Round(cfg.PruneInterval),
			optimistic:    cfg.OptimisticProposals,
			dissem:        r.store,
			reconfig:      r.reconfig,
			obs:           observer,
		})
	if err != nil {
		tr.Close()
		return nil, err
	}
	r.engine = eng
	hosted := eng
	if cfg.WALDir != "" {
		walOpts := cfg.walOptions()
		if observer != nil {
			walOpts.FlushHist = observer.WALFlush
		}
		rec, err := wal.NewRecorder(wal.RecorderConfig{
			Dir:             cfg.WALDir,
			Engine:          eng,
			Options:         walOpts,
			ContinueOnError: cfg.WALContinueOnError,
			CheckpointEvery: checkpointEveryFor(cfg.Protocol, cfg.WALCheckpointRounds),
		})
		if err != nil {
			tr.Close()
			return nil, err
		}
		r.rec = rec
		hosted = rec
	}
	n, err := node.New(node.Config{
		Engine:        hosted,
		Transport:     tr,
		Commits:       r.rawCommit,
		OnFault:       func(err error) { r.recordFault(err) },
		Preverifier:   preverifierFor(verifier),
		VerifyWorkers: cfg.VerifyWorkers,
		Obs:           observer,
	})
	if err != nil {
		tr.Close()
		if r.rec != nil {
			r.rec.Close()
		}
		return nil, err
	}
	r.node = n
	return r, nil
}

// Addr returns the bound listen address.
func (r *Replica) Addr() string { return r.tr.Addr() }

// Start runs the replica.
func (r *Replica) Start() error {
	if r.cfg.ObsAddr != "" && r.obsSrv == nil {
		srv, err := obs.Serve(r.cfg.ObsAddr, r.obs, types.ReplicaID(r.cfg.ID))
		if err != nil {
			return fmt.Errorf("banyan: obs endpoint: %w", err)
		}
		r.obsSrv = srv
	}
	go r.pump()
	return r.node.Start()
}

// Observer returns the replica's observability bundle (nil unless Obs or
// ObsAddr is set). Histograms and the tracer are internally synchronized
// and safe to read while the replica runs.
func (r *Replica) Observer() *obs.Observer { return r.obs }

// ObsAddr returns the bound observability endpoint address ("" when
// ObsAddr was not configured or the replica has not started).
func (r *Replica) ObsAddr() string {
	if r.obsSrv == nil {
		return ""
	}
	return r.obsSrv.Addr()
}

func (r *Replica) pump() {
	defer close(r.commits)
	for {
		select {
		case <-r.done:
			return
		case ev := <-r.rawCommit:
			for _, b := range ev.Blocks {
				commit := Commit{
					Round:        uint64(b.Round),
					Epoch:        b.Epoch,
					BlockID:      b.ID().String(),
					Proposer:     int(b.Proposer),
					Transactions: decodeTransactions(r.store, b.Payload),
					PayloadBytes: b.Payload.Size(),
					Path:         pathOf(ev.Explicit),
					At:           ev.At,
				}
				select {
				case r.commits <- commit:
				case <-r.done:
					return
				}
			}
		}
	}
}

// Submit queues a transaction for proposal when this replica leads.
func (r *Replica) Submit(tx []byte) bool { return r.pool.Submit(tx) }

// SubmitErr queues a transaction, returning the mempool's typed
// rejection (mempool.ErrTxTooLarge, mempool.ErrPoolFull,
// mempool.ErrTxEmpty) on failure. In dissemination mode a transaction
// larger than DissemBatchBytes is refused here — never truncated.
func (r *Replica) SubmitErr(tx []byte) error { return r.pool.SubmitErr(tx) }

// SubmitFrom queues a transaction under a submitter identity, the shard
// key of the mempool's submitter-sharded drain.
func (r *Replica) SubmitFrom(submitter uint64, tx []byte) error {
	return r.pool.SubmitFrom(submitter, tx)
}

// Commits streams blocks finalized by this replica.
func (r *Replica) Commits() <-chan Commit { return r.commits }

// ProposeAddValidator queues a ConfigChange admitting a provisioned
// identity (see MaxN): the next time this replica leads a round it
// attaches the change to its proposal; once a block carrying it
// finalizes at round R the grown set takes effect at R+1. For the change
// to land promptly, call this on every running replica — whichever leads
// first proposes it, and every replica's slot clears when the change
// finalizes. Banyan protocols only.
func (r *Replica) ProposeAddValidator(id int) error {
	if id < 0 || id >= r.maxN {
		return fmt.Errorf("banyan: no provisioned identity %d (maxN=%d)", id, r.maxN)
	}
	key := r.keyring.PublicKey(types.ReplicaID(id))
	if key == nil {
		return fmt.Errorf("banyan: no key provisioned for replica %d", id)
	}
	return r.proposeChange(types.ConfigChange{
		Op: types.ConfigAdd, Replica: types.ReplicaID(id), PubKey: key,
	})
}

// ProposeRemoveValidator queues a ConfigChange evicting a validator; see
// ProposeAddValidator for how changes land. From the activation round on
// the evicted replica's votes carry no weight; it keeps running as a
// non-voting observer.
func (r *Replica) ProposeRemoveValidator(id int) error {
	if id < 0 || id >= r.maxN {
		return fmt.Errorf("banyan: no replica %d", id)
	}
	return r.proposeChange(types.ConfigChange{
		Op: types.ConfigRemove, Replica: types.ReplicaID(id),
	})
}

func (r *Replica) proposeChange(change types.ConfigChange) error {
	if r.reconfig == nil {
		return fmt.Errorf("banyan: reconfiguration requires a Banyan protocol, got %q", r.cfg.Protocol)
	}
	r.reconfig.Propose(change)
	return nil
}

// Epoch returns the validator-set epoch this replica currently operates
// in (0 for the single-epoch baselines). Safe to poll while running.
func (r *Replica) Epoch() uint32 {
	h, ok := r.engine.(interface{ History() *membership.History })
	if !ok {
		return 0
	}
	return h.History().Current().Epoch()
}

// MemberIDs returns the validator IDs of this replica's current epoch,
// in set order (nil for baselines).
func (r *Replica) MemberIDs() []int {
	h, ok := r.engine.(interface{ History() *membership.History })
	if !ok {
		return nil
	}
	members := h.History().Current().Members()
	out := make([]int, len(members))
	for i, m := range members {
		out[i] = int(m)
	}
	return out
}

// Faults returns safety faults (must stay empty).
func (r *Replica) Faults() []error {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]error, len(r.faults))
	copy(out, r.faults)
	return out
}

// Metrics returns the engine counters (plus WAL counters when a WALDir
// is set, and transport counters such as "transport_dropped"). Only
// valid after Stop.
func (r *Replica) Metrics() map[string]int64 {
	m := r.node.Metrics()
	if m == nil {
		return nil
	}
	for name, v := range r.counters.Snapshot() {
		m[name] = v
	}
	r.pool.Metrics(m)
	return m
}

// Stop shuts the replica down gracefully, flushing the WAL tail.
func (r *Replica) Stop() {
	r.shutdown(true)
}

// Crash shuts the replica down abandoning the WAL's unsynced group —
// what a process crash leaves on disk. A new Replica with the same
// WALDir recovers the durable prefix and rejoins; see the crash-restart
// walkthrough in the README.
func (r *Replica) Crash() {
	r.shutdown(false)
}

func (r *Replica) shutdown(flush bool) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	if r.obsSrv != nil {
		r.obsSrv.Close()
	}
	r.node.Stop()
	if r.rec != nil {
		// A log that died mid-run means the replica has been running
		// without durability; surface that as a fault rather than letting
		// the run report clean.
		if err := r.rec.Err(); err != nil {
			r.recordFault(err)
		}
		if flush {
			if err := r.rec.Close(); err != nil {
				r.recordFault(err)
			}
		} else {
			r.rec.Crash()
		}
	}
	close(r.done)
}

func (r *Replica) recordFault(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faults = append(r.faults, err)
}
