// Command benchjson is a tiny helper for scripts/bench_snapshot.sh:
// with -extract-baseline it prints the "baseline" object of an existing
// snapshot file (or null), so regenerating a snapshot preserves the
// recorded before-numbers without needing jq in the environment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	extract := flag.String("extract-baseline", "", "snapshot file to read from")
	key := flag.String("key", "baseline", "top-level key to print")
	flag.Parse()
	if *extract == "" {
		fmt.Fprintln(os.Stderr, "usage: benchjson -extract-baseline FILE [-key NAME]")
		os.Exit(2)
	}
	data, err := os.ReadFile(*extract)
	if err != nil {
		fmt.Println("null")
		return
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(data, &snap); err != nil || len(snap[*key]) == 0 {
		fmt.Println("null")
		return
	}
	fmt.Println(string(snap[*key]))
}
