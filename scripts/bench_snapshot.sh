#!/usr/bin/env bash
# bench_snapshot.sh — run the hot-path benchmarks and record the numbers
# as JSON, so the perf trajectory is tracked across PRs.
#
# Usage: scripts/bench_snapshot.sh [output.json] [benchtime]
#
#   output.json  where to write the snapshot (default BENCH_PR10.json);
#                a BENCH_PR<n>.json name sets the snapshot's "pr" field
#   benchtime    passed to -benchtime (default 20000x; use e.g. 2000x in CI)
#
# The snapshot holds one entry per benchmark with ns/op, B/op and
# allocs/op. "baseline", "restart_replay", "pipeline", "dissem",
# "reconfig", and "obs" objects already present in the output file are
# preserved, so before/after comparisons and experiment results survive
# regeneration.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
BENCHTIME="${2:-20000x}"
PKGS="./internal/types ./internal/wal ./internal/transport/tcp ./internal/metrics"
PATTERN='BenchmarkEncodeDecode|BenchmarkWALAppend|BenchmarkEncodeFrame|BenchmarkBroadcast$|BenchmarkCounterHoisted|BenchmarkCounterRegistryLookup|BenchmarkHistogramRecord'

# Derive the PR number from the output filename (BENCH_PR<n>.json).
PR="$(basename "$OUT" | sed -n 's/^BENCH_PR\([0-9][0-9]*\)\.json$/\1/p')"
PR="${PR:-0}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
# shellcheck disable=SC2086
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem $PKGS | tee "$RAW" >&2

BASELINE="null"
RESTART="null"
PIPELINE="null"
DISSEM="null"
RECONFIG="null"
OBS="null"
if [ -f "$OUT" ]; then
    BASELINE="$(go run ./scripts/benchjson -extract-baseline "$OUT" 2>/dev/null || echo null)"
    RESTART="$(go run ./scripts/benchjson -extract-baseline "$OUT" -key restart_replay 2>/dev/null || echo null)"
    PIPELINE="$(go run ./scripts/benchjson -extract-baseline "$OUT" -key pipeline 2>/dev/null || echo null)"
    DISSEM="$(go run ./scripts/benchjson -extract-baseline "$OUT" -key dissem 2>/dev/null || echo null)"
    RECONFIG="$(go run ./scripts/benchjson -extract-baseline "$OUT" -key reconfig 2>/dev/null || echo null)"
    OBS="$(go run ./scripts/benchjson -extract-baseline "$OUT" -key obs 2>/dev/null || echo null)"
fi

{
    printf '{\n'
    printf '  "pr": %s,\n' "$PR"
    printf '  "generated_utc": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "benchtime": "%s",\n' "$BENCHTIME"
    printf '  "benchmarks": {\n'
    awk '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = b = allocs = "null"
            for (i = 2; i <= NF; i++) {
                if ($i == "ns/op")     ns = $(i-1)
                if ($i == "B/op")      b = $(i-1)
                if ($i == "allocs/op") allocs = $(i-1)
            }
            if (out != "") out = out ",\n"
            out = out sprintf("    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", name, ns, b, allocs)
        }
        END { print out }
    ' "$RAW"
    printf '  },\n'
    printf '  "obs": %s,\n' "$OBS"
    printf '  "reconfig": %s,\n' "$RECONFIG"
    printf '  "dissem": %s,\n' "$DISSEM"
    printf '  "pipeline": %s,\n' "$PIPELINE"
    printf '  "restart_replay": %s,\n' "$RESTART"
    printf '  "baseline": %s\n' "$BASELINE"
    printf '}\n'
} > "$OUT.tmp"
mv "$OUT.tmp" "$OUT"
echo "wrote $OUT" >&2
