#!/usr/bin/env bash
# check-doc-links.sh — verify that every relative markdown link in the
# given docs points at a file or directory that exists. CI runs it over
# ARCHITECTURE.md and README.md so code links cannot rot silently.
set -euo pipefail

cd "$(dirname "$0")/.."
docs=("$@")
if [ ${#docs[@]} -eq 0 ]; then
  docs=(ARCHITECTURE.md README.md)
fi

fail=0
for doc in "${docs[@]}"; do
  # Extract markdown link targets: [text](target), dropping #fragments
  # and skipping absolute URLs.
  while IFS= read -r target; do
    target="${target%%#*}"
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    if [ ! -e "$target" ]; then
      echo "$doc: broken link -> $target" >&2
      fail=1
    fi
  done < <(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "doc link check failed" >&2
  exit 1
fi
echo "doc links OK: ${docs[*]}"
