package banyan_test

import (
	"fmt"
	"log"
	"time"

	"banyan"
)

// ExampleCluster shows the minimal submit-and-finalize loop.
func ExampleCluster() {
	cluster, err := banyan.NewCluster(banyan.ClusterConfig{N: 4, Scheme: "hmac"})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	cluster.Submit([]byte("pay alice 10"))
	for commit := range cluster.Commits() {
		for _, tx := range commit.Transactions {
			fmt.Printf("finalized: %s\n", tx)
			return
		}
	}
	// Output: finalized: pay alice 10
}

// ExampleRunExperiment reproduces one point of the paper's Figure 6b — the
// n=4 four-datacenter comparison — inside the deterministic simulator.
func ExampleRunExperiment() {
	res, err := banyan.RunExperiment(banyan.ExperimentConfig{
		Protocol:       banyan.ProtocolBanyan,
		N:              4,
		F:              1,
		P:              1,
		Topology:       "4dc-global",
		BlockSizeBytes: 1 << 20,
		Duration:       30 * time.Second,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast-path share: %d%%\n",
		100*res.FastFinalized/(res.FastFinalized+res.SlowFinalized))
	fmt.Printf("mean latency under 200ms: %v\n", res.MeanLatency < 200*time.Millisecond)
	// Output:
	// fast-path share: 100%
	// mean latency under 200ms: true
}

// ExampleParams shows the resilience arithmetic of the protocol: the
// paper's two n=19 configurations.
func ExampleParams() {
	a, _ := banyan.Params(banyan.ProtocolBanyan, 19, 6, 1)
	b, _ := banyan.Params(banyan.ProtocolBanyan, 19, 4, 4)
	fmt.Printf("f=%d p=%d: fast quorum %d of %d\n", a.F, a.P, a.FastQuorum(), a.N)
	fmt.Printf("f=%d p=%d: fast quorum %d of %d\n", b.F, b.P, b.FastQuorum(), b.N)
	// Output:
	// f=6 p=1: fast quorum 18 of 19
	// f=4 p=4: fast quorum 15 of 19
}
