package banyan

import (
	"fmt"
	"testing"
	"time"
)

// TestClusterCommitsTransactions runs a real-time 4-replica Banyan cluster
// in-process and checks submitted transactions come out finalized, in
// order, mostly on the fast path.
func TestClusterCommitsTransactions(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		N:     4,
		Delta: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	const txCount = 40
	want := make(map[string]bool, txCount)
	for i := 0; i < txCount; i++ {
		tx := fmt.Sprintf("tx-%03d", i)
		want[tx] = true
		if !cluster.Submit([]byte(tx)) {
			t.Fatalf("submit %q rejected", tx)
		}
	}

	deadline := time.After(20 * time.Second)
	got := make(map[string]bool, txCount)
	fast := 0
	for len(got) < txCount {
		select {
		case c, ok := <-cluster.Commits():
			if !ok {
				t.Fatal("commit stream closed early")
			}
			if c.Path == PathFast {
				fast++
			}
			for _, tx := range c.Transactions {
				s := string(tx)
				if !want[s] {
					t.Fatalf("committed unexpected transaction %q", s)
				}
				if got[s] {
					t.Fatalf("transaction %q committed twice", s)
				}
				got[s] = true
			}
		case <-deadline:
			t.Fatalf("timed out: %d/%d transactions committed", len(got), txCount)
		}
	}
	if fast == 0 {
		t.Error("no fast-path commits observed")
	}
	if faults := cluster.Faults(); len(faults) > 0 {
		t.Fatalf("faults: %v", faults)
	}
}

// TestClusterProtocols checks every protocol makes progress through the
// public API.
func TestClusterProtocols(t *testing.T) {
	for _, proto := range []Protocol{ProtocolBanyan, ProtocolBanyanNoFast, ProtocolICC, ProtocolHotStuff, ProtocolStreamlet} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			cluster, err := NewCluster(ClusterConfig{
				N:        4,
				Protocol: proto,
				Delta:    5 * time.Millisecond,
				Scheme:   "hmac",
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := cluster.Start(); err != nil {
				t.Fatal(err)
			}
			defer cluster.Stop()

			if !cluster.Submit([]byte("hello")) {
				t.Fatal("submit rejected")
			}
			deadline := time.After(20 * time.Second)
			for {
				select {
				case c, ok := <-cluster.Commits():
					if !ok {
						t.Fatal("commit stream closed early")
					}
					for _, tx := range c.Transactions {
						if string(tx) == "hello" {
							return
						}
					}
				case <-deadline:
					t.Fatal("timed out waiting for the transaction to commit")
				}
			}
		})
	}
}
