package banyan

import (
	"testing"
	"time"
)

// waitForEpoch drains the commit stream until the observer reports the
// given epoch, returning the round of the first commit seen at it.
func waitForEpoch(t *testing.T, cluster *Cluster, epoch uint32, deadline time.Duration) uint64 {
	t.Helper()
	timeout := time.After(deadline)
	for {
		select {
		case c, ok := <-cluster.Commits():
			if !ok {
				t.Fatal("commit stream closed early")
			}
			if c.Epoch >= epoch {
				return c.Round
			}
		case <-timeout:
			t.Fatalf("timed out waiting for epoch %d (observer at %d)", epoch, cluster.Epoch(0))
		}
	}
}

func memberSet(ids []int) map[int]bool {
	m := make(map[int]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// TestClusterReconfigureAddRemove is the PR's acceptance scenario over
// the real in-process transport: a 4-replica cluster finalizes a
// ConfigChange adding a 5th replica — which bootstrapped through the
// snapshot path and votes in the next epoch — then one removing it
// again. Commits are tagged with the epoch that certified them, the
// membership view shifts 4 → 5 → 4, and nothing forks.
func TestClusterReconfigureAddRemove(t *testing.T) {
	const joiner = 4
	cluster, err := NewCluster(ClusterConfig{
		N:      4,
		MaxN:   5,
		Delta:  5 * time.Millisecond,
		Scheme: "hmac",
		// Deep-pruned windows force the joiner through snapshot state sync
		// (the PR 6 path) before its first vote.
		DeepPrune:     true,
		PruneKeep:     8,
		PruneInterval: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	if err := cluster.AddValidator(9); err == nil {
		t.Fatal("adding an unprovisioned identity must be rejected")
	}
	if got := memberSet(cluster.MemberIDs(0)); len(got) != 4 || got[joiner] {
		t.Fatalf("genesis members %v, want 0-3", cluster.MemberIDs(0))
	}

	// The joiner boots cold well behind the window, then is voted in.
	waitForRound(t, cluster, 30, 30*time.Second)
	if err := cluster.JoinReplica(joiner); err != nil {
		t.Fatal(err)
	}
	waitForRound(t, cluster, 45, 30*time.Second)
	if err := cluster.AddValidator(joiner); err != nil {
		t.Fatal(err)
	}
	epoch1At := waitForEpoch(t, cluster, 1, 30*time.Second)
	if got := memberSet(cluster.MemberIDs(0)); len(got) != 5 || !got[joiner] {
		t.Fatalf("epoch-1 members %v, want 0-4", cluster.MemberIDs(0))
	}

	// Let the joiner vote for a stretch of its epoch, then vote it out.
	waitForRound(t, cluster, epoch1At+40, 30*time.Second)
	if err := cluster.RemoveValidator(joiner); err != nil {
		t.Fatal(err)
	}
	epoch2At := waitForEpoch(t, cluster, 2, 30*time.Second)
	if got := memberSet(cluster.MemberIDs(0)); len(got) != 4 || got[joiner] {
		t.Fatalf("epoch-2 members %v, want the joiner evicted", cluster.MemberIDs(0))
	}

	// The evicted replica keeps following the chain as an observer.
	waitForRound(t, cluster, epoch2At+40, 30*time.Second)
	cluster.Stop()

	if faults := cluster.Faults(); len(faults) > 0 {
		t.Fatalf("safety faults: %v", faults)
	}
	if got := cluster.Epoch(0); got != 2 {
		t.Fatalf("observer epoch %d, want 2", got)
	}
	for id := 0; id <= joiner; id++ {
		if got := cluster.Epoch(id); got != 2 {
			t.Errorf("replica %d ended at epoch %d, want 2", id, got)
		}
	}
	m := cluster.Metrics(joiner)
	// The joiner was a member only during epoch 1, so any votes at all
	// prove it participated in its epoch.
	if m["votes_sent"] == 0 {
		t.Error("joiner never voted during its epoch")
	}
	if m["statesync_fetches"] == 0 {
		t.Error("joiner entered without a snapshot fetch — the PR 6 path was not exercised")
	}
	// The joiner may learn epoch 1 either by applying the finalized add
	// or wholesale from its adopted snapshot, so epoch_changes is 1 or 2;
	// the epoch gauge must land at 2 regardless.
	if m["epoch"] != 2 {
		t.Errorf("joiner ended at epoch %d, want 2", m["epoch"])
	}

	// The joiner's windowed chain must be a byte-identical suffix of the
	// observer's.
	ref := cluster.FinalizedChain(0)
	got := cluster.FinalizedChain(joiner)
	if len(ref) == 0 || len(got) == 0 {
		t.Fatal("empty finalized chains")
	}
	start := -1
	for i, rid := range ref {
		if rid == got[0] {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatalf("joiner window start %s not on observer chain", got[0])
	}
	for i := 0; i < len(got) && start+i < len(ref); i++ {
		if ref[start+i] != got[i] {
			t.Fatalf("joiner diverges at window offset %d", i)
		}
	}
	t.Logf("epoch 1 at round %d, epoch 2 at round %d; joiner votes %d, fetches %d",
		epoch1At, epoch2At, m["votes_sent"], m["statesync_fetches"])
}
