package banyan

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// Cluster-level batteries for decoupled batch dissemination: the
// application-visible transaction sequence must be unchanged by the
// transport (digest-committed batches vs inline payloads), and a
// crash-restart whose WAL holds only batch refs must refetch every
// finalized body instead of losing or re-ordering it.

// runTxSequence runs a 4-replica cluster with or without dissemination,
// submits txCount transactions from a single submitter to replica 0
// before the cluster starts, and returns the flattened commit-order
// transaction sequence as observed by replica 0.
func runTxSequence(t *testing.T, dissem bool, txCount int) []string {
	t.Helper()
	cluster, err := NewCluster(ClusterConfig{
		N:      4,
		Delta:  5 * time.Millisecond,
		Scheme: "hmac",
		Dissem: dissem,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool, txCount)
	for i := 0; i < txCount; i++ {
		tx := fmt.Sprintf("equiv-tx-%04d", i)
		want[tx] = true
		// One submitter identity: the sharded drain preserves per-submitter
		// FIFO, so the committed order is comparable across transports.
		if err := cluster.SubmitAs(0, 7, []byte(tx)); err != nil {
			t.Fatalf("submit %q: %v", tx, err)
		}
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	var seq []string
	seen := make(map[string]bool, txCount)
	deadline := time.After(30 * time.Second)
	for len(seen) < txCount {
		select {
		case c, ok := <-cluster.Commits():
			if !ok {
				t.Fatal("commit stream closed early")
			}
			for _, tx := range c.Transactions {
				s := string(tx)
				if !want[s] {
					t.Fatalf("committed unexpected transaction %q", s)
				}
				if seen[s] {
					t.Fatalf("transaction %q committed twice", s)
				}
				seen[s] = true
				seq = append(seq, s)
			}
		case <-deadline:
			t.Fatalf("timed out: %d/%d transactions committed (dissem=%v)",
				len(seen), txCount, dissem)
		}
	}
	cluster.Stop()
	if faults := cluster.Faults(); len(faults) > 0 {
		t.Fatalf("faults (dissem=%v): %v", dissem, faults)
	}
	if dissem {
		// The run must actually have traveled the batch plane, not an
		// inline fallback: replica 0 cut and announced batches.
		m := cluster.Metrics(0)
		if m["dissemBatchesCut"] == 0 || m["dissemAnnounced"] == 0 {
			t.Fatalf("dissemination never engaged: cut=%d announced=%d",
				m["dissemBatchesCut"], m["dissemAnnounced"])
		}
	}
	return seq
}

// TestClusterDissemSameSeedEquivalence: with a single submitter, the
// application observes the exact same transaction sequence whether
// payloads ride inline in proposals or commit as digests with bodies
// disseminated out-of-band. Dissemination changes the transport, never
// the ordering contract.
func TestClusterDissemSameSeedEquivalence(t *testing.T) {
	const txCount = 48
	inline := runTxSequence(t, false, txCount)
	dissem := runTxSequence(t, true, txCount)
	if len(inline) != len(dissem) {
		t.Fatalf("sequence lengths diverge: inline %d, dissem %d", len(inline), len(dissem))
	}
	for i := range inline {
		if inline[i] != dissem[i] {
			t.Fatalf("transaction order diverges at %d: inline %q, dissem %q",
				i, inline[i], dissem[i])
		}
	}
}

// TestClusterDissemCrashRestart: a dissemination-mode replica crashes and
// restarts from a WAL that journals batch refs, not bodies (the batch
// store is rebuilt empty). Replay re-finalizes its pre-crash window with
// every body missing, so the delivery gate must refetch each one from the
// ack-quorum holders before re-delivering — nothing lost, nothing
// reordered, and no equivocation from the restarted proposer.
func TestClusterDissemCrashRestart(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		N:      4,
		Delta:  5 * time.Millisecond,
		Scheme: "hmac",
		Dissem: true,
		WALDir: t.TempDir(),
		// Per-record sync, as in TestClusterCrashRestartWAL: the replayed-
		// records assertion needs a deterministic durable prefix.
		WALSyncEveryRecord: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Real batch traffic, spread round-robin so every replica (the victim
	// included) cuts and announces bodies the restarted store won't have.
	submit := func(n, base int) {
		for i := 0; i < n; i++ {
			tx := make([]byte, 512)
			copy(tx, fmt.Sprintf("crash-tx-%06d", base+i))
			if !cluster.Submit(tx) {
				t.Fatalf("submit %d rejected", base+i)
			}
		}
	}
	submit(2000, 0)
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	const victim = 1
	waitForRound(t, cluster, 8, 20*time.Second)
	if err := cluster.CrashReplica(victim); err != nil {
		t.Fatal(err)
	}
	waitForRound(t, cluster, 12, 20*time.Second)
	// Submitted to the live replicas while the victim is down: their
	// bodies are cut and announced exactly once, into a slot whose
	// backlog the restart discards. A block referencing one of them can
	// only be delivered by the victim through fetch-on-miss.
	for i := 0; i < 600; i++ {
		tx := make([]byte, 512)
		copy(tx, fmt.Sprintf("crash-tx-%06d", 2000+i))
		live := []int{0, 2, 3}[i%3]
		if err := cluster.SubmitAs(live, uint64(10+live), tx); err != nil {
			t.Fatalf("submit down-window %d: %v", i, err)
		}
	}
	// From here on, every commit drained from the observer is scanned for
	// a down-window transaction (they can land as early as round ~13, so
	// the scan must cover the pre-restart drain too). The run ends only
	// once the observer has committed a down-window body and then gone 10
	// more blocks and round 40: the victim's chain window below may trail
	// the observer by at most 8 blocks, so it necessarily covers that
	// commit — which the victim can only have delivered by fetching the
	// body. This keeps the fetch assertion meaningful even under heavy
	// CPU load, where rounds outpace batch referencing and a fixed round
	// target could stop the run before any down-window batch commits.
	downSeen := false
	blocksAfter := 0
	var lastRound uint64
	deadline := time.After(45 * time.Second)
	drainUntil := func(done func() bool) {
		t.Helper()
		for !done() {
			select {
			case c, ok := <-cluster.Commits():
				if !ok {
					t.Fatal("commit stream closed early")
				}
				lastRound = c.Round
				if downSeen {
					blocksAfter++
					continue
				}
				for _, tx := range c.Transactions {
					if strings.HasPrefix(string(tx), "crash-tx-002") {
						downSeen = true
						break
					}
				}
			case <-deadline:
				t.Fatalf("timed out: down-window body committed=%v, %d blocks past it, round %d",
					downSeen, blocksAfter, lastRound)
			}
		}
	}
	drainUntil(func() bool { return lastRound >= 16 })
	if err := cluster.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	submit(1000, 3000) // keep bodies flowing across the restarted life
	drainUntil(func() bool { return downSeen && blocksAfter >= 10 && lastRound >= 40 })
	cluster.Stop()

	if faults := cluster.Faults(); len(faults) > 0 {
		t.Fatalf("safety faults: %v", faults)
	}
	ref := cluster.FinalizedChain(0)
	got := cluster.FinalizedChain(victim)
	if len(ref) == 0 || len(got) == 0 {
		t.Fatalf("empty chains: observer %d, victim %d", len(ref), len(got))
	}
	// The victim's delivered chain must be a contiguous window of the
	// observer's — checkpointed replay may start it past genesis, but
	// within the window nothing may be missing or transposed.
	start := -1
	for i, id := range ref {
		if id == got[0] {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatalf("victim window start %s not on observer chain", got[0])
	}
	for i := 0; i < len(got) && start+i < len(ref); i++ {
		if ref[start+i] != got[i] {
			t.Fatalf("chain divergence at %d: observer %s, victim %s", i, ref[start+i], got[i])
		}
	}
	if len(got) < len(ref)-start-8 {
		t.Fatalf("victim delivered %d blocks from window start %d, observer %d — lost finalized batches",
			len(got), start, len(ref))
	}
	m := cluster.Metrics(victim)
	if m["wal_replayed_records"] == 0 {
		t.Error("restarted replica replayed no WAL records")
	}
	// The store is rebuilt empty and the down-window bodies were announced
	// into a dead slot, so rejoining MUST have gone through fetch-on-miss.
	if m["dissemFetches"] == 0 {
		t.Error("restarted replica refetched no batch bodies")
	}
	if q := m["dissemDelivQueued"]; q > 4 {
		t.Errorf("victim still has %d gated deliveries queued at shutdown", q)
	}
	t.Logf("victim: %d blocks (observer %d, window start %d), %d replayed records, %d fetches, %d stale drops",
		len(got), len(ref), start, m["wal_replayed_records"], m["dissemFetches"], m["dissemDelivDropped"])
}
