package banyan

import (
	"testing"
	"time"
)

func TestTopologyByName(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		wantN   int
		wantErr bool
	}{
		{"4dc-global", 4, 4, false},
		{"4dc-global", 19, 19, false},
		{"", 0, 19, false},
		{"4dc-us", 19, 19, false},
		{"global", 19, 19, false},
		{"uniform:25ms", 7, 7, false},
		{"uniform:bogus", 4, 0, true},
		{"atlantis", 4, 0, true},
	}
	for _, tt := range tests {
		topo, err := TopologyByName(tt.name, tt.n)
		if (err != nil) != tt.wantErr {
			t.Errorf("TopologyByName(%q, %d) error = %v", tt.name, tt.n, err)
			continue
		}
		if err == nil && topo.N() != tt.wantN {
			t.Errorf("TopologyByName(%q, %d).N() = %d, want %d", tt.name, tt.n, topo.N(), tt.wantN)
		}
	}
}

func TestRunExperimentShape(t *testing.T) {
	base := ExperimentConfig{
		N: 4, F: 1, P: 1,
		Topology:       "4dc-global",
		BlockSizeBytes: 64 << 10,
		Duration:       20 * time.Second,
		Seed:           3,
	}
	banyanCfg := base
	banyanCfg.Protocol = ProtocolBanyan
	iccCfg := base
	iccCfg.Protocol = ProtocolICC

	bres, err := RunExperiment(banyanCfg)
	if err != nil {
		t.Fatal(err)
	}
	ires, err := RunExperiment(iccCfg)
	if err != nil {
		t.Fatal(err)
	}
	if bres.MeanLatency >= ires.MeanLatency {
		t.Errorf("Banyan %v not faster than ICC %v", bres.MeanLatency, ires.MeanLatency)
	}
	if bres.FastFinalized == 0 || bres.SlowFinalized != 0 {
		t.Errorf("Banyan path split fast=%d slow=%d", bres.FastFinalized, bres.SlowFinalized)
	}
	if ires.FastFinalized != 0 {
		t.Errorf("ICC reported fast finalizations: %d", ires.FastFinalized)
	}
	if bres.BlocksCommitted < 50 || bres.ThroughputBps <= 0 {
		t.Errorf("suspicious throughput: %d blocks, %.0f B/s", bres.BlocksCommitted, bres.ThroughputBps)
	}
	if len(bres.LatencySamples) == 0 || bres.P50 == 0 || bres.DeltaUsed == 0 {
		t.Error("missing distribution fields")
	}
}

func TestRunExperimentDeterministic(t *testing.T) {
	cfg := ExperimentConfig{
		Protocol:       ProtocolBanyan,
		N:              4,
		Topology:       "uniform:20ms",
		BlockSizeBytes: 4096,
		Duration:       10 * time.Second,
		Seed:           11,
	}
	a, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanLatency != b.MeanLatency || a.BlocksCommitted != b.BlocksCommitted {
		t.Fatalf("experiment not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunExperimentCrash(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Protocol:       ProtocolBanyan,
		N:              4,
		F:              1,
		P:              1,
		Topology:       "uniform:10ms",
		BlockSizeBytes: 1024,
		Duration:       20 * time.Second,
		Seed:           5,
		CrashReplicas:  []int{3},
		Delta:          50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksCommitted < 20 {
		t.Errorf("only %d blocks with one crash", res.BlocksCommitted)
	}
	// With one crash and p=1 the fast quorum n-p = 3 is exactly the healthy
	// replica count, so the fast path still fires on non-crashed leaders'
	// rounds.
	if res.FastFinalized == 0 {
		t.Error("fast path never fired with n-p healthy replicas")
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := Params(ProtocolBanyan, 4, 1, 0); err == nil {
		t.Error("Banyan with p=0 accepted")
	}
	if _, err := Params(ProtocolBanyan, 18, 6, 1); err == nil {
		t.Error("n below bound accepted")
	}
	if _, err := Params(ProtocolICC, 3, 1, 0); err == nil {
		t.Error("ICC with n < 3f+1 accepted")
	}
	if _, err := Params("paxos", 4, 1, 0); err == nil {
		t.Error("unknown protocol accepted")
	}
	p, err := DefaultParams(ProtocolBanyan, 19, 4)
	if err != nil || p.F != 4 || p.P != 4 {
		t.Errorf("DefaultParams(banyan, 19, 4) = %+v, %v", p, err)
	}
	p, err = DefaultParams(ProtocolHotStuff, 19, 0)
	if err != nil || p.F != 6 {
		t.Errorf("DefaultParams(hotstuff, 19) = %+v, %v", p, err)
	}
}
