package banyan

import (
	"fmt"
	"strings"
	"time"

	"banyan/internal/harness"
	"banyan/internal/types"
	"banyan/internal/wan"
)

// ExperimentConfig describes a simulated wide-area experiment, mirroring
// the paper's methodology (section 9.2). Topology names reference the
// testbeds of Figure 5.
type ExperimentConfig struct {
	// Protocol under test.
	Protocol Protocol
	// N, F, P are the fault parameters; F=0 auto-selects.
	N, F, P int
	// Topology is one of "4dc-global" (section 9.3), "4dc-us" (9.4),
	// "global" (9.5), or "uniform:<duration>" for a synthetic topology
	// with one identical one-way delay (e.g. "uniform:25ms").
	Topology string
	// BlockSizeBytes is the synthetic payload size.
	BlockSizeBytes int
	// Duration is the virtual experiment length (paper: 120s).
	Duration time.Duration
	// Seed drives all randomness deterministically.
	Seed uint64
	// CrashReplicas are crashed at time zero (Figure 6d).
	CrashReplicas []int
	// Delta overrides the auto-derived Δ bound (0 = auto). The crash
	// experiment uses it to set the paper's 3-second timeout (Δ = 1.5s).
	Delta time.Duration
}

// ExperimentResult reports one run's measurements.
type ExperimentResult struct {
	// MeanLatency is the average proposal finalization time at proposers.
	MeanLatency time.Duration
	// P50/P95/P99/StdDev/Min/Max describe the latency distribution.
	P50, P95, P99, StdDev, Min, Max time.Duration
	// LatencySamples is the raw distribution (for variance plots).
	LatencySamples []time.Duration
	// ThroughputBps is committed payload bytes per second.
	ThroughputBps float64
	// BlocksCommitted counts committed blocks at the observer.
	BlocksCommitted int64
	// BlockInterval is the mean time between committed blocks.
	BlockInterval time.Duration
	// FastFinalized / SlowFinalized split explicit finalizations by path.
	FastFinalized, SlowFinalized int64
	// DeltaUsed echoes the Δ bound after auto-derivation.
	DeltaUsed time.Duration
}

// RunExperiment executes one simulated experiment. Identical configs give
// identical results.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	topo, err := TopologyByName(cfg.Topology, cfg.N)
	if err != nil {
		return nil, err
	}
	if cfg.N == 0 {
		cfg.N = topo.N()
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtocolBanyan
	}
	var params types.Params
	if cfg.F == 0 {
		params, err = DefaultParams(cfg.Protocol, cfg.N, cfg.P)
	} else {
		params, err = Params(cfg.Protocol, cfg.N, cfg.F, cfg.P)
	}
	if err != nil {
		return nil, err
	}
	hcfg := harness.Config{
		Protocol:  harness.Protocol(cfg.Protocol),
		Params:    params,
		Topology:  topo,
		BlockSize: cfg.BlockSizeBytes,
		Duration:  cfg.Duration,
		Delta:     cfg.Delta,
		Seed:      cfg.Seed,
	}
	for _, id := range cfg.CrashReplicas {
		hcfg.Crash = append(hcfg.Crash, harness.CrashSpec{Replica: types.ReplicaID(id)})
	}
	res, err := harness.Run(hcfg)
	if err != nil {
		return nil, err
	}
	return &ExperimentResult{
		MeanLatency:     res.Latency.Mean,
		P50:             res.Latency.P50,
		P95:             res.Latency.P95,
		P99:             res.Latency.P99,
		StdDev:          res.Latency.StdDev,
		Min:             res.Latency.Min,
		Max:             res.Latency.Max,
		LatencySamples:  res.LatencySamples,
		ThroughputBps:   res.ThroughputBps,
		BlocksCommitted: res.BlocksCommitted,
		BlockInterval:   res.BlockInterval,
		FastFinalized:   res.FastFinal,
		SlowFinalized:   res.SlowFinal,
		DeltaUsed:       res.Delta,
	}, nil
}

// TopologyByName resolves the named testbed. n adjusts the replica count
// where the testbed supports it (4dc topologies support 4 or 19; "global"
// is fixed at 19; "uniform:<d>" takes any n).
func TopologyByName(name string, n int) (*wan.Topology, error) {
	switch {
	case name == "" || name == "4dc-global":
		if n == 4 {
			return wan.FourGlobal4()
		}
		return wan.FourGlobal19()
	case name == "4dc-us":
		return wan.FourUS19()
	case name == "global":
		return wan.Global19()
	case strings.HasPrefix(name, "uniform:"):
		d, err := time.ParseDuration(strings.TrimPrefix(name, "uniform:"))
		if err != nil {
			return nil, fmt.Errorf("banyan: bad uniform topology %q: %w", name, err)
		}
		if n <= 0 {
			n = 4
		}
		return wan.Uniform(n, d), nil
	default:
		return nil, fmt.Errorf("banyan: unknown topology %q", name)
	}
}
