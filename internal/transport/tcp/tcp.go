// Package tcp is a length-prefix framed TCP transport for multi-process
// deployments: each replica listens on one address, dials every peer with
// automatic reconnection, and exchanges wire-encoded consensus messages
// (types.EncodeMessage). It is the deployment substrate behind cmd/banyan
// and cmd/localnet.
//
// Framing: a connection opens with a 10-byte hello (8-byte magic, 2-byte
// sender ID); every subsequent frame is a 4-byte little-endian length
// followed by that many bytes of message encoding. Oversized or malformed
// frames close the connection; the dialer reconnects.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"banyan/internal/metrics"
	"banyan/internal/node"
	"banyan/internal/types"
)

var magic = [8]byte{'b', 'a', 'n', 'y', 'a', 'n', '/', '1'}

// Config assembles a TCP transport.
type Config struct {
	// Self is this replica's ID.
	Self types.ReplicaID
	// ListenAddr is the local listen address ("host:port"); use port 0 for
	// an ephemeral port (Addr reports the bound address).
	ListenAddr string
	// Peers maps every other replica to its address. An entry for Self is
	// ignored.
	Peers map[types.ReplicaID]string
	// DialTimeout bounds connection attempts (default 3s).
	DialTimeout time.Duration
	// RetryInterval paces reconnection attempts (default 500ms).
	RetryInterval time.Duration
	// QueueLen is the per-peer outbound queue and the shared inbound queue
	// capacity (default 1024). Full outbound queues drop (consensus
	// tolerates loss); the inbound queue applies backpressure.
	QueueLen int
	// MaxFrame bounds accepted frame sizes (default 32 MiB).
	MaxFrame int
	// Logf, when non-nil, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
	// Drops, when non-nil, is incremented for every outbound message
	// dropped on a full (or closing) peer queue, surfacing transport loss
	// through the replica's metrics instead of dropping silently —
	// without it, a WAL-recovery investigation cannot tell replay gaps
	// from network loss. Dropped reports the same count locally.
	Drops *metrics.Counter
}

// Transport is a running TCP endpoint. It implements node.Transport.
type Transport struct {
	cfg      Config
	listener net.Listener
	inbound  chan node.Inbound
	closedCh chan struct{} // closed on Close; unblocks reader goroutines

	// peerList is the fixed fan-out set, built once in New: Broadcast
	// iterates it without taking the lock or allocating (the peer set
	// never changes after construction; only the connections behind the
	// queues come and go).
	peerList []*peer

	mu      sync.Mutex
	peers   map[types.ReplicaID]*peer
	conns   map[net.Conn]bool // accepted connections, closed on Close
	closed  bool
	dropped int64

	wg sync.WaitGroup
}

var _ node.Transport = (*Transport)(nil)

type peer struct {
	id   types.ReplicaID
	addr string
	out  chan []byte
}

// New starts listening and dialing. Callers should Close the transport.
func New(cfg Config) (*Transport, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 500 * time.Millisecond
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = 32 << 20
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", cfg.ListenAddr, err)
	}
	t := &Transport{
		cfg:      cfg,
		listener: ln,
		inbound:  make(chan node.Inbound, cfg.QueueLen),
		closedCh: make(chan struct{}),
		peers:    make(map[types.ReplicaID]*peer),
		conns:    make(map[net.Conn]bool),
	}
	for id, addr := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		p := &peer{id: id, addr: addr, out: make(chan []byte, cfg.QueueLen)}
		t.peers[id] = p
		t.peerList = append(t.peerList, p)
		t.wg.Add(1)
		go t.dialLoop(p)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ephemeral ports).
func (t *Transport) Addr() string { return t.listener.Addr().String() }

// Dropped returns the number of outbound messages dropped on full queues.
func (t *Transport) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Send implements node.Transport.
func (t *Transport) Send(to types.ReplicaID, msg types.Message) error {
	t.mu.Lock()
	p, ok := t.peers[to]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return errors.New("tcp: transport closed")
	}
	if !ok {
		return fmt.Errorf("tcp: unknown peer %d", to)
	}
	frame, err := encodeFrame(msg)
	if err != nil {
		return err
	}
	t.enqueue(p, frame)
	return nil
}

// Broadcast implements node.Transport: the message is encoded into one
// frame (a single exact-size allocation) shared by every peer queue.
func (t *Transport) Broadcast(msg types.Message) error {
	frame, err := encodeFrame(msg)
	if err != nil {
		return err
	}
	if t.isClosed() {
		return errors.New("tcp: transport closed")
	}
	for _, p := range t.peerList {
		t.enqueue(p, frame)
	}
	return nil
}

// Receive implements node.Transport.
func (t *Transport) Receive() <-chan node.Inbound { return t.inbound }

// Close implements node.Transport: stops the listener, dialers and
// readers, then closes the receive channel.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, p := range t.peers {
		close(p.out)
	}
	// Close accepted connections so blocked readers return; otherwise a
	// reader on a quiet connection would pin Close until the remote side
	// goes away.
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	close(t.closedCh)
	err := t.listener.Close()
	t.wg.Wait()
	close(t.inbound)
	return err
}

func (t *Transport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *Transport) enqueue(p *peer, frame []byte) {
	defer func() {
		// Losing the race with Close (send on closed channel) counts as a
		// drop rather than a crash.
		if recover() != nil {
			t.countDrop()
		}
	}()
	select {
	case p.out <- frame:
	default:
		t.countDrop()
	}
}

func (t *Transport) countDrop() {
	t.mu.Lock()
	t.dropped++
	t.mu.Unlock()
	if t.cfg.Drops != nil {
		t.cfg.Drops.Inc()
	}
}

func (t *Transport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// dialLoop maintains the outbound connection to one peer, writing frames
// from its queue and reconnecting on failure.
func (t *Transport) dialLoop(p *peer) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for frame := range p.out {
		for conn == nil {
			if t.isClosed() {
				return
			}
			c, err := net.DialTimeout("tcp", p.addr, t.cfg.DialTimeout)
			if err != nil {
				t.logf("tcp: dial %d@%s: %v", p.id, p.addr, err)
				time.Sleep(t.cfg.RetryInterval)
				continue
			}
			if err := writeHello(c, t.cfg.Self); err != nil {
				t.logf("tcp: hello to %d: %v", p.id, err)
				c.Close()
				time.Sleep(t.cfg.RetryInterval)
				continue
			}
			conn = c
			t.logf("tcp: connected to %d@%s", p.id, p.addr)
		}
		if _, err := conn.Write(frame); err != nil {
			t.logf("tcp: write to %d: %v", p.id, err)
			conn.Close()
			conn = nil
			// The frame is lost; consensus handles loss. Continue with the
			// next frame after reconnecting.
		}
	}
}

// acceptLoop accepts inbound connections and spawns a reader per peer.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	from, err := readHello(conn)
	if err != nil {
		t.logf("tcp: bad hello from %s: %v", conn.RemoteAddr(), err)
		return
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			if !errors.Is(err, io.EOF) && !t.isClosed() {
				t.logf("tcp: read from %d: %v", from, err)
			}
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if int(n) > t.cfg.MaxFrame || n == 0 {
			t.logf("tcp: bad frame length %d from %d", n, from)
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.logf("tcp: read frame from %d: %v", from, err)
			return
		}
		// Zero-copy decode: buf is freshly allocated per frame and handed
		// to the message outright (never reused by this loop), so decoded
		// byte fields alias it instead of copying, and the WAL can journal
		// the received bytes without re-encoding. See DecodeMessageInPlace
		// for the ownership contract.
		msg, err := types.DecodeMessageInPlace(buf)
		if err != nil {
			t.logf("tcp: decode from %d: %v", from, err)
			return
		}
		if t.isClosed() {
			return
		}
		// Backpressure: block until the node consumes. A stalled node
		// stalls its TCP peers rather than ballooning memory; shutdown
		// unblocks via closedCh.
		select {
		case t.inbound <- node.Inbound{From: from, Msg: msg}:
		case <-t.closedCh:
			return
		}
	}
}

// encodeFrame builds a length-prefixed frame in one exact-size
// allocation and installs the frame body as the message's cached
// encoding, so a later consumer of the same message (the WAL journaling
// an own broadcast, a unicast Send after a Broadcast) reuses the bytes
// instead of re-encoding. The frame is immutable once built — it is
// shared by every peer queue — which is what makes the alias safe.
// Caching is single-writer by construction: frames are only encoded on
// the goroutine that owns the message (the node's event loop).
func encodeFrame(msg types.Message) ([]byte, error) {
	size := msg.EncodedSize()
	frame := make([]byte, 4, 4+size)
	binary.LittleEndian.PutUint32(frame[:4], uint32(size))
	frame, err := types.AppendMessage(frame, msg)
	if err != nil {
		return nil, err
	}
	if len(frame)-4 != size {
		// The prefix was written from the EncodedSize prediction; if an
		// implementation ever lets it drift from the appended bytes, fail
		// the send here rather than ship a mis-framed stream that tears
		// down the peer connection with no local clue.
		return nil, fmt.Errorf("tcp: %T EncodedSize %d != encoded length %d", msg, size, len(frame)-4)
	}
	types.SetCachedEncoding(msg, frame[4:len(frame):len(frame)])
	return frame, nil
}

func writeHello(c net.Conn, self types.ReplicaID) error {
	var hello [10]byte
	copy(hello[:8], magic[:])
	binary.LittleEndian.PutUint16(hello[8:10], uint16(self))
	_, err := c.Write(hello[:])
	return err
}

func readHello(c net.Conn) (types.ReplicaID, error) {
	var hello [10]byte
	if err := c.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return 0, err
	}
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		return 0, err
	}
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		return 0, err
	}
	if [8]byte(hello[:8]) != magic {
		return 0, errors.New("tcp: bad magic")
	}
	return types.ReplicaID(binary.LittleEndian.Uint16(hello[8:10])), nil
}
