package tcp

import (
	"math/rand"
	"testing"

	"banyan/internal/types"
)

// benchMessage is a realistic per-round broadcast: a proposal carrying a
// 512-byte payload, the proposer signature and a 3-signer parent
// notarization.
func benchMessage() types.Message {
	r := rand.New(rand.NewSource(42))
	payload := make([]byte, 512)
	r.Read(payload)
	sig := func(n int) []byte {
		s := make([]byte, n)
		r.Read(s)
		return s
	}
	b := types.NewBlock(9, 2, 0, types.BlockID{1, 2, 3}, types.BytesPayload(payload))
	b.Signature = sig(64)
	cert := &types.Certificate{Kind: types.CertNotarization, Round: 8, Block: types.BlockID{4, 5}}
	for i := 0; i < 3; i++ {
		cert.Signers = append(cert.Signers, types.ReplicaID(i))
		cert.Sigs = append(cert.Sigs, sig(64))
	}
	return &types.Proposal{Block: b, ParentNotarization: cert}
}

// BenchmarkBroadcast measures the sender-side cost of fanning one
// message out to three peers over real loopback connections: encode,
// frame, and enqueue. Receivers drain and decode concurrently, so the
// reported allocs/op cover the whole wire round trip the cluster pays
// per broadcast.
func BenchmarkBroadcast(b *testing.B) {
	const peers = 3
	sinks := make([]*Transport, peers)
	peerMap := map[types.ReplicaID]string{}
	for i := 0; i < peers; i++ {
		s, err := New(Config{Self: types.ReplicaID(i + 1), ListenAddr: "127.0.0.1:0"})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		sinks[i] = s
		peerMap[types.ReplicaID(i+1)] = s.Addr()
		go func(s *Transport) {
			for range s.Receive() {
			}
		}(s)
	}
	t, err := New(Config{Self: 0, ListenAddr: "127.0.0.1:0", Peers: peerMap, QueueLen: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()

	msg := benchMessage()
	// Warm the connections so dial latency stays out of the measurement.
	if err := t.Broadcast(msg); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.Broadcast(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if d := t.Dropped(); d > int64(b.N) {
		b.Logf("dropped %d of %d broadcasts (full queues)", d, b.N)
	}
}

// BenchmarkEncodeFrame isolates the frame-encoding step Broadcast and
// Send share, without sockets or queues.
func BenchmarkEncodeFrame(b *testing.B) {
	msg := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := encodeFrame(msg); err != nil {
			b.Fatal(err)
		}
	}
}
