package tcp

import (
	"fmt"
	"testing"
	"time"

	"banyan/internal/types"
)

// pairedTransports builds n connected transports on ephemeral ports.
func pairedTransports(t *testing.T, n int) []*Transport {
	t.Helper()
	// First bind all listeners on ephemeral ports.
	trs := make([]*Transport, n)
	addrs := make(map[types.ReplicaID]string, n)
	for i := 0; i < n; i++ {
		tr, err := New(Config{
			Self:       types.ReplicaID(i),
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		addrs[types.ReplicaID(i)] = tr.Addr()
	}
	// Rebuild with full peer maps (simplest correct wiring for tests).
	for i := 0; i < n; i++ {
		trs[i].Close()
	}
	for i := 0; i < n; i++ {
		tr, err := New(Config{
			Self:       types.ReplicaID(i),
			ListenAddr: addrs[types.ReplicaID(i)],
			Peers:      addrs,
			Logf:       t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		t.Cleanup(func() { tr.Close() })
	}
	return trs
}

func TestSendAndBroadcast(t *testing.T) {
	trs := pairedTransports(t, 3)

	vote := types.Vote{Kind: types.VoteNotarize, Round: 7, Voter: 0, Signature: []byte("sig")}
	if err := trs[0].Send(1, &types.VoteMsg{Votes: []types.Vote{vote}}); err != nil {
		t.Fatal(err)
	}
	select {
	case in := <-trs[1].Receive():
		if in.From != 0 {
			t.Fatalf("message from %d, want 0", in.From)
		}
		vm, ok := in.Msg.(*types.VoteMsg)
		if !ok || len(vm.Votes) != 1 || vm.Votes[0].Round != 7 {
			t.Fatalf("unexpected message %#v", in.Msg)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("send not delivered")
	}

	if err := trs[2].Broadcast(&types.CertMsg{}); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		select {
		case in := <-trs[i].Receive():
			if in.From != 2 {
				t.Fatalf("broadcast from %d, want 2", in.From)
			}
			if _, ok := in.Msg.(*types.CertMsg); !ok {
				t.Fatalf("unexpected message %#v", in.Msg)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("broadcast not delivered to %d", i)
		}
	}
}

func TestCloseUnblocksPromptly(t *testing.T) {
	trs := pairedTransports(t, 2)
	// Generate some traffic so connections exist.
	for i := 0; i < 10; i++ {
		if err := trs[0].Send(1, &types.CertMsg{}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-trs[1].Receive():
	case <-time.After(10 * time.Second):
		t.Fatal("no delivery")
	}
	done := make(chan struct{})
	go func() {
		trs[0].Close()
		trs[1].Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return promptly")
	}
}

func TestLargeFrame(t *testing.T) {
	trs := pairedTransports(t, 2)
	payload := make([]byte, 2<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	b := types.NewBlock(3, 0, 0, types.BlockID{}, types.BytesPayload(payload))
	if err := trs[0].Send(1, &types.Proposal{Block: b}); err != nil {
		t.Fatal(err)
	}
	select {
	case in := <-trs[1].Receive():
		p, ok := in.Msg.(*types.Proposal)
		if !ok {
			t.Fatalf("unexpected message %#v", in.Msg)
		}
		if p.Block.Payload.Size() != len(payload) {
			t.Fatalf("payload size %d, want %d", p.Block.Payload.Size(), len(payload))
		}
		if p.Block.ID() != b.ID() {
			t.Fatal("block identity changed in transit")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("large frame not delivered")
	}
}

func TestReconnectAfterPeerRestart(t *testing.T) {
	trs := pairedTransports(t, 2)
	addr1 := trs[1].Addr()

	if err := trs[0].Send(1, &types.CertMsg{}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-trs[1].Receive():
	case <-time.After(10 * time.Second):
		t.Fatal("initial delivery failed")
	}

	// Restart replica 1's transport on the same address.
	trs[1].Close()
	time.Sleep(100 * time.Millisecond)
	tr1, err := New(Config{
		Self:       1,
		ListenAddr: addr1,
		Peers:      map[types.ReplicaID]string{0: trs[0].Addr()},
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr1.Close()

	// Sending repeatedly must eventually get through the new connection.
	deadline := time.After(20 * time.Second)
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := trs[0].Send(1, &types.CertMsg{}); err != nil {
				t.Fatal(err)
			}
		case in := <-tr1.Receive():
			if in.From != 0 {
				t.Fatalf("from %d, want 0", in.From)
			}
			return
		case <-deadline:
			t.Fatalf("no delivery after restart (dropped=%d)", trs[0].Dropped())
		}
	}
}

func TestUnknownPeer(t *testing.T) {
	trs := pairedTransports(t, 2)
	if err := trs[0].Send(9, &types.CertMsg{}); err == nil {
		t.Fatal("expected error for unknown peer")
	}
}

func TestManyMessagesBothWays(t *testing.T) {
	trs := pairedTransports(t, 2)
	const count = 500
	go func() {
		for i := 0; i < count; i++ {
			trs[0].Send(1, &types.VoteMsg{Votes: []types.Vote{{Kind: types.VoteFast, Round: types.Round(i)}}})
		}
	}()
	go func() {
		for i := 0; i < count; i++ {
			trs[1].Send(0, &types.VoteMsg{Votes: []types.Vote{{Kind: types.VoteFast, Round: types.Round(i)}}})
		}
	}()
	recv := func(tr *Transport, name string) {
		got := 0
		deadline := time.After(20 * time.Second)
		for got < count {
			select {
			case <-tr.Receive():
				got++
			case <-deadline:
				t.Errorf("%s received %d/%d", name, got, count)
				return
			}
		}
	}
	recv(trs[0], "tr0")
	recv(trs[1], "tr1")
	if err := failIfDropped(trs...); err != nil {
		t.Log(err) // informational: drops are legal but unexpected locally
	}
}

func failIfDropped(trs ...*Transport) error {
	for i, tr := range trs {
		if d := tr.Dropped(); d > 0 {
			return fmt.Errorf("transport %d dropped %d messages", i, d)
		}
	}
	return nil
}
