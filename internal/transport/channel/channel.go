// Package channel provides an in-process transport: a hub connects n
// replicas through buffered channels with optional per-link delay, loss
// and partitions. It backs the runnable examples (whole clusters in one
// process, real time) and the node-runtime tests; wide-area experiments
// use the discrete-event simulator instead.
//
// Messages are delivered by pointer, never deep-copied or re-encoded:
// consensus messages are immutable once emitted (the contract
// types.CachedEncoding and Block.ID caching also rely on), so aliasing
// one message across n receive queues is safe and keeps the in-process
// fan-out allocation-free. The channel hand-off supplies the
// happens-before edge that makes the sender-side digest and encoding
// caches readable by every receiver.
package channel

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"banyan/internal/node"
	"banyan/internal/types"
)

// Options tune the hub.
type Options struct {
	// QueueLen is each replica's inbound queue capacity (default 4096).
	// When a queue is full the message is dropped — consensus protocols
	// tolerate loss; tests can assert drop counters stay zero.
	QueueLen int
	// Delay, when non-nil, returns the one-way delivery delay per link.
	Delay func(from, to types.ReplicaID) time.Duration
	// DropRate in [0,1) drops messages at random (seeded by Seed).
	DropRate float64
	// Seed drives the loss randomness.
	Seed int64
}

// Hub connects n in-process replicas.
type Hub struct {
	n      int
	opts   Options
	queues []chan node.Inbound

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned map[linkKey]bool
	dropped     int64
	closed      bool

	wg sync.WaitGroup
}

type linkKey struct{ from, to types.ReplicaID }

// NewHub creates a hub for n replicas.
func NewHub(n int, opts Options) *Hub {
	if opts.QueueLen <= 0 {
		opts.QueueLen = 4096
	}
	h := &Hub{
		n:           n,
		opts:        opts,
		queues:      make([]chan node.Inbound, n),
		rng:         rand.New(rand.NewSource(opts.Seed)),
		partitioned: make(map[linkKey]bool),
	}
	for i := range h.queues {
		h.queues[i] = make(chan node.Inbound, opts.QueueLen)
	}
	return h
}

// Transport returns the transport endpoint for replica id.
func (h *Hub) Transport(id types.ReplicaID) node.Transport {
	return &endpoint{hub: h, id: id}
}

// Partition cuts the link from -> to (one direction). Use both calls for a
// full cut.
func (h *Hub) Partition(from, to types.ReplicaID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.partitioned[linkKey{from, to}] = true
}

// Heal restores the link from -> to.
func (h *Hub) Heal(from, to types.ReplicaID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.partitioned, linkKey{from, to})
}

// Isolate cuts every link to and from the replica.
func (h *Hub) Isolate(id types.ReplicaID) {
	for j := 0; j < h.n; j++ {
		if types.ReplicaID(j) == id {
			continue
		}
		h.Partition(id, types.ReplicaID(j))
		h.Partition(types.ReplicaID(j), id)
	}
}

// Rejoin restores every link to and from the replica.
func (h *Hub) Rejoin(id types.ReplicaID) {
	for j := 0; j < h.n; j++ {
		if types.ReplicaID(j) == id {
			continue
		}
		h.Heal(id, types.ReplicaID(j))
		h.Heal(types.ReplicaID(j), id)
	}
}

// Drain discards everything queued for a replica. A replica provisioned
// mid-run (Cluster.JoinReplica) connects its transport at join time and
// must not inherit the backlog addressed to its slot before it existed —
// replaying that history would let it catch up through a channel no
// real deployment has.
func (h *Hub) Drain(id types.ReplicaID) {
	for {
		select {
		case <-h.queues[id]:
		default:
			return
		}
	}
}

// Dropped returns the number of messages dropped (loss, partitions, full
// queues).
func (h *Hub) Dropped() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// Close shuts the hub down; pending delayed deliveries are awaited, then
// all queues close.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	h.wg.Wait()
	for _, q := range h.queues {
		close(q)
	}
}

func (h *Hub) deliver(from, to types.ReplicaID, msg types.Message) {
	h.mu.Lock()
	if h.closed || h.partitioned[linkKey{from, to}] {
		h.dropped++
		h.mu.Unlock()
		return
	}
	if h.opts.DropRate > 0 && h.rng.Float64() < h.opts.DropRate {
		h.dropped++
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()

	var delay time.Duration
	if h.opts.Delay != nil {
		delay = h.opts.Delay(from, to)
	}
	in := node.Inbound{From: from, Msg: msg}
	if delay <= 0 {
		h.enqueue(to, in)
		return
	}
	h.wg.Add(1)
	time.AfterFunc(delay, func() {
		defer h.wg.Done()
		h.mu.Lock()
		closed := h.closed
		h.mu.Unlock()
		if !closed {
			h.enqueue(to, in)
		}
	})
}

func (h *Hub) enqueue(to types.ReplicaID, in node.Inbound) {
	select {
	case h.queues[to] <- in:
	default:
		h.mu.Lock()
		h.dropped++
		h.mu.Unlock()
	}
}

type endpoint struct {
	hub *Hub
	id  types.ReplicaID
}

var _ node.Transport = (*endpoint)(nil)

func (e *endpoint) Send(to types.ReplicaID, msg types.Message) error {
	if int(to) >= e.hub.n {
		return fmt.Errorf("channel: no replica %d", to)
	}
	e.hub.deliver(e.id, to, msg)
	return nil
}

func (e *endpoint) Broadcast(msg types.Message) error {
	for j := 0; j < e.hub.n; j++ {
		if types.ReplicaID(j) == e.id {
			continue
		}
		e.hub.deliver(e.id, types.ReplicaID(j), msg)
	}
	return nil
}

func (e *endpoint) Receive() <-chan node.Inbound { return e.hub.queues[e.id] }

// Close is a no-op for endpoints; the hub owns shared state. Closing the
// hub closes every endpoint's receive channel.
func (e *endpoint) Close() error { return nil }
