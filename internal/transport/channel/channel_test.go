package channel

import (
	"testing"
	"time"

	"banyan/internal/node"
	"banyan/internal/types"
)

func recvOne(t *testing.T, tr node.Transport) node.Inbound {
	t.Helper()
	select {
	case in := <-tr.Receive():
		return in
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
		return node.Inbound{}
	}
}

func expectNone(t *testing.T, tr node.Transport) {
	t.Helper()
	select {
	case in := <-tr.Receive():
		t.Fatalf("unexpected delivery %+v", in)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSendAndBroadcast(t *testing.T) {
	hub := NewHub(3, Options{})
	defer hub.Close()
	t0, t1, t2 := hub.Transport(0), hub.Transport(1), hub.Transport(2)

	if err := t0.Send(1, &types.CertMsg{}); err != nil {
		t.Fatal(err)
	}
	in := recvOne(t, t1)
	if in.From != 0 {
		t.Fatalf("from = %d", in.From)
	}
	if err := t2.Broadcast(&types.CertMsg{}); err != nil {
		t.Fatal(err)
	}
	if in := recvOne(t, t0); in.From != 2 {
		t.Fatalf("from = %d", in.From)
	}
	if in := recvOne(t, t1); in.From != 2 {
		t.Fatalf("from = %d", in.From)
	}
	if err := t0.Send(7, &types.CertMsg{}); err == nil {
		t.Fatal("send to unknown replica accepted")
	}
}

func TestDelay(t *testing.T) {
	const delay = 50 * time.Millisecond
	hub := NewHub(2, Options{Delay: func(_, _ types.ReplicaID) time.Duration { return delay }})
	defer hub.Close()
	start := time.Now()
	hub.Transport(0).Send(1, &types.CertMsg{})
	recvOne(t, hub.Transport(1))
	if got := time.Since(start); got < delay-5*time.Millisecond {
		t.Fatalf("delivered after %v, want >= %v", got, delay)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	hub := NewHub(2, Options{})
	defer hub.Close()
	hub.Partition(0, 1)
	hub.Transport(0).Send(1, &types.CertMsg{})
	expectNone(t, hub.Transport(1))
	// The reverse direction still works.
	hub.Transport(1).Send(0, &types.CertMsg{})
	recvOne(t, hub.Transport(0))
	if hub.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", hub.Dropped())
	}
	hub.Heal(0, 1)
	hub.Transport(0).Send(1, &types.CertMsg{})
	recvOne(t, hub.Transport(1))
}

func TestIsolateRejoin(t *testing.T) {
	hub := NewHub(3, Options{})
	defer hub.Close()
	hub.Isolate(2)
	hub.Transport(0).Broadcast(&types.CertMsg{})
	recvOne(t, hub.Transport(1))
	expectNone(t, hub.Transport(2))
	hub.Transport(2).Send(0, &types.CertMsg{})
	expectNone(t, hub.Transport(0))
	hub.Rejoin(2)
	hub.Transport(2).Send(0, &types.CertMsg{})
	recvOne(t, hub.Transport(0))
}

func TestDropRate(t *testing.T) {
	hub := NewHub(2, Options{DropRate: 1.0, Seed: 1})
	defer hub.Close()
	for i := 0; i < 10; i++ {
		hub.Transport(0).Send(1, &types.CertMsg{})
	}
	expectNone(t, hub.Transport(1))
	if hub.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", hub.Dropped())
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	hub := NewHub(2, Options{QueueLen: 4})
	defer hub.Close()
	for i := 0; i < 10; i++ {
		hub.Transport(0).Send(1, &types.CertMsg{})
	}
	if hub.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", hub.Dropped())
	}
}

func TestCloseClosesReceive(t *testing.T) {
	hub := NewHub(2, Options{})
	tr := hub.Transport(0)
	hub.Close()
	hub.Close() // idempotent
	if _, ok := <-tr.Receive(); ok {
		t.Fatal("receive channel still open after Close")
	}
	// Sends after close are dropped, not panicking.
	hub.Transport(1).Send(0, &types.CertMsg{})
}

func TestDelayedDeliveryAfterCloseIsDropped(t *testing.T) {
	hub := NewHub(2, Options{Delay: func(_, _ types.ReplicaID) time.Duration { return 30 * time.Millisecond }})
	hub.Transport(0).Send(1, &types.CertMsg{})
	hub.Close() // waits for the delayed delivery timer, which must not panic
}
