package integration_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/core"
	"banyan/internal/crypto"
	"banyan/internal/protocol"
	"banyan/internal/simnet"
	"banyan/internal/types"
	"banyan/internal/wal"
	"banyan/internal/wan"
)

// roundLog records each replica's committed block per round. Unlike
// commitLog's positional prefix check, this is keyed by round, so it
// stays meaningful for replicas whose commit stream begins mid-chain —
// disk-loss rejoiners and fresh joiners adopt a snapshot window and
// never re-deliver the deep history below it.
type roundLog struct {
	chains map[types.ReplicaID]map[types.Round]types.BlockID
	faults []error
}

func newRoundLog() *roundLog {
	return &roundLog{chains: make(map[types.ReplicaID]map[types.Round]types.BlockID)}
}

func (l *roundLog) hooks() simnet.Hooks {
	return simnet.Hooks{
		OnCommit: func(node types.ReplicaID, _ time.Time, c protocol.Commit) {
			m := l.chains[node]
			if m == nil {
				m = make(map[types.Round]types.BlockID)
				l.chains[node] = m
			}
			for _, b := range c.Blocks {
				m[b.Round] = b.ID()
			}
		},
		OnFault: func(_ types.ReplicaID, _ time.Time, err error) {
			l.faults = append(l.faults, err)
		},
	}
}

// checkRoundConsistent fails if any two replicas committed different
// blocks at the same round (the safety property, windowed-join safe).
func (l *roundLog) checkRoundConsistent(t *testing.T) {
	t.Helper()
	ref := make(map[types.Round]types.BlockID)
	refNode := make(map[types.Round]types.ReplicaID)
	for node, chain := range l.chains {
		for r, id := range chain {
			if prev, ok := ref[r]; ok {
				if prev != id {
					t.Fatalf("safety violation: round %d committed as %s by replica %d, %s by replica %d",
						r, id, node, prev, refNode[r])
				}
				continue
			}
			ref[r], refNode[r] = id, node
		}
	}
}

// window configures the deep-pruned shape every statesync scenario
// needs: replicas hold (and can serve) only their last 8 finalized
// rounds, so anyone below that window must recover via snapshot.
func window(cfg *core.Config) {
	cfg.DeepPrune = true
	cfg.PruneKeep = 8
	cfg.PruneInterval = 8
}

func mkBanyan(t *testing.T, params types.Params, keyring *crypto.Keyring,
	signers []*crypto.Signer, bc beacon.Beacon, delta time.Duration,
	id types.ReplicaID, opts ...func(*core.Config)) protocol.Engine {
	t.Helper()
	cfg := core.Config{
		Params:  params,
		Self:    id,
		Keyring: keyring,
		Signer:  signers[id],
		Beacon:  bc,
		Delta:   delta,
		Payloads: protocol.PayloadFunc(func(r types.Round) types.Payload {
			return types.SyntheticPayload(256, uint64(r)<<16|uint64(id))
		}),
	}
	for _, o := range opts {
		o(&cfg)
	}
	e, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDiskLossRejoinViaSnapshot is the scenario of ISSUE 6: a replica
// crashes, its disk dies with it, and it restarts against peers that
// have deep-pruned everything below their finalized window. Pre-fix it
// livelocked re-requesting an unserveable prefix forever; now it must
// fetch a quorum-certified snapshot, adopt the window, and rejoin the
// live rounds — with an empty write-ahead log directory underneath.
func TestDiskLossRejoinViaSnapshot(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	const (
		delta     = 60 * time.Millisecond
		crashAt   = 2 * time.Second
		restartAt = 5 * time.Second
		duration  = 12 * time.Second
	)
	victim := types.ReplicaID(3)
	walRoot := t.TempDir()
	victimDir := func() string {
		return filepath.Join(walRoot, fmt.Sprintf("replica-%d", victim))
	}

	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 42)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	// Only the victim runs behind a recorder: its log exists solely to be
	// destroyed, proving the rejoin owes nothing to local durable state.
	mkVictim := func() protocol.Engine {
		rec, err := wal.NewRecorder(wal.RecorderConfig{
			Dir:     victimDir(),
			Engine:  mkBanyan(t, params, keyring, signers, bc, delta, victim, window),
			Options: wal.Options{Sync: wal.SyncPolicy{EveryRecord: true}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	engines := make([]protocol.Engine, params.N)
	for i := range engines {
		if types.ReplicaID(i) == victim {
			engines[i] = mkVictim()
			continue
		}
		engines[i] = mkBanyan(t, params, keyring, signers, bc, delta, types.ReplicaID(i), window)
	}

	log := newRoundLog()
	hooks := log.hooks()
	postRestart := 0
	restartWall := simnet.Epoch.Add(restartAt)
	baseOnCommit := hooks.OnCommit
	hooks.OnCommit = func(node types.ReplicaID, at time.Time, c protocol.Commit) {
		baseOnCommit(node, at, c)
		if node == victim && at.After(restartWall) {
			postRestart += len(c.Blocks)
		}
	}

	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(params.N, 20*time.Millisecond),
		Seed:     7,
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	net.CrashAt(victim, crashAt)
	net.RestartAt(victim, restartAt, func(time.Time) protocol.Engine {
		// The disk is gone: abandon the old recorder and wipe its
		// directory. The replacement starts over an empty log, with no
		// chain, no checkpoints, and no voting record.
		if rec, ok := net.Engine(victim).(*wal.Recorder); ok {
			rec.Crash()
		}
		if err := os.RemoveAll(victimDir()); err != nil {
			t.Errorf("wiping victim log: %v", err)
			return nil
		}
		log.chains[victim] = nil
		return mkVictim()
	})
	net.Run(duration)

	if len(log.faults) > 0 {
		t.Fatalf("safety faults: %v", log.faults)
	}
	log.checkRoundConsistent(t)

	if len(log.chains[0]) < 40 {
		t.Fatalf("cluster committed only %d rounds in %s", len(log.chains[0]), duration)
	}
	if postRestart == 0 {
		t.Fatal("victim never committed after its disk-loss restart — it did not rejoin")
	}
	m := net.Engine(victim).Metrics()
	if m["statesync_fetches"] == 0 {
		t.Error("victim rejoined without a snapshot fetch; the scenario did not exercise state sync")
	}
	if m["wal_replayed_records"] != 0 {
		t.Errorf("victim replayed %d WAL records from a wiped disk", m["wal_replayed_records"])
	}
	// Rejoined means caught up: the victim's highest committed round must
	// be within a few rounds of the observer's.
	maxRound := func(id types.ReplicaID) types.Round {
		var hi types.Round
		for r := range log.chains[id] {
			if r > hi {
				hi = r
			}
		}
		return hi
	}
	if vic, obs := maxRound(victim), maxRound(0); vic < obs-10 {
		t.Errorf("victim's last commit at round %d lags observer's %d", vic, obs)
	}
	t.Logf("victim: post-restart commits %d, fetches %d, rejected %d, bytes %d",
		postRestart, m["statesync_fetches"], m["statesync_rejected"], m["statesync_bytes"])
}

// TestFreshJoinReachesLiveRound: a replica provisioned mid-run (held
// out of the initial start) boots cold against a deep-pruned cluster,
// recovers the finalized window via snapshot state sync, and becomes a
// participant — voting and committing in live rounds.
func TestFreshJoinReachesLiveRound(t *testing.T) {
	params := types.Params{N: 5, F: 1, P: 1}
	const (
		delta    = 60 * time.Millisecond
		joinAt   = 4 * time.Second
		duration = 12 * time.Second
	)
	joiner := types.ReplicaID(4)

	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 42)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]protocol.Engine, params.N)
	for i := range engines {
		engines[i] = mkBanyan(t, params, keyring, signers, bc, delta, types.ReplicaID(i), window)
	}

	log := newRoundLog()
	hooks := log.hooks()
	postJoin := 0
	joinWall := simnet.Epoch.Add(joinAt)
	baseOnCommit := hooks.OnCommit
	hooks.OnCommit = func(node types.ReplicaID, at time.Time, c protocol.Commit) {
		baseOnCommit(node, at, c)
		if node == joiner && at.After(joinWall) {
			postJoin += len(c.Blocks)
		}
	}

	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(params.N, 20*time.Millisecond),
		Seed:     11,
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	net.JoinAt(joiner, joinAt)
	net.Run(duration)

	if len(log.faults) > 0 {
		t.Fatalf("safety faults: %v", log.faults)
	}
	log.checkRoundConsistent(t)
	if postJoin == 0 {
		t.Fatal("joiner never committed — it did not reach the live rounds")
	}
	m := net.Engine(joiner).Metrics()
	if m["statesync_fetches"] == 0 {
		t.Error("joiner caught up without a snapshot fetch; the cluster was not window-only")
	}
	if m["votes_sent"] == 0 {
		t.Error("joiner never voted — it observed but did not participate")
	}
	t.Logf("joiner: post-join commits %d, fetches %d, votes %d, rounds started %d",
		postJoin, m["statesync_fetches"], m["votes_sent"], m["rounds"])
}
