// Package integration holds whole-cluster executions of every engine on
// the discrete-event simulator, checking the protocol properties of
// paper section 5 across scenario families:
//
//   - smoke_test.go — fault-free runs: deadlock-freeness (chain growth),
//     safety (consistent finalized prefixes) and liveness (leader blocks
//     finalize in synchrony) for Banyan and ICC.
//   - baselines_smoke_test.go — the same for HotStuff and Streamlet.
//   - adversarial_test.go — Byzantine engines (equivocation, vote
//     withholding) via the internal/byzantine wrappers; safety must hold
//     with up to f traitors.
//   - chaos_test.go — network-level adversity: loss, partitions,
//     reordering.
//   - restart_test.go — crash-restart: f replicas killed mid-run,
//     rebuilt from their write-ahead logs (internal/wal), rejoining with
//     byte-identical chains and continued commits.
//
// The tests live in the external package integration_test and assert on
// commit logs gathered through simnet hooks; a safety fault anywhere in
// any scenario is a test failure.
package integration
