package integration_test

import (
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/crypto"
	"banyan/internal/hotstuff"
	"banyan/internal/protocol"
	"banyan/internal/simnet"
	"banyan/internal/streamlet"
	"banyan/internal/types"
	"banyan/internal/wan"
)

func makeHotStuffEngines(t *testing.T, params types.Params, timeout time.Duration, payload int) []protocol.Engine {
	t.Helper()
	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 42)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]protocol.Engine, params.N)
	for i := 0; i < params.N; i++ {
		id := types.ReplicaID(i)
		e, err := hotstuff.New(hotstuff.Config{
			Params:      params,
			Self:        id,
			Keyring:     keyring,
			Signer:      signers[i],
			Beacon:      bc,
			ViewTimeout: timeout,
			Payloads: protocol.PayloadFunc(func(r types.Round) types.Payload {
				return types.SyntheticPayload(payload, uint64(r)<<16|uint64(id))
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	return engines
}

func makeStreamletEngines(t *testing.T, params types.Params, epoch time.Duration, payload int) []protocol.Engine {
	t.Helper()
	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 42)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]protocol.Engine, params.N)
	for i := 0; i < params.N; i++ {
		id := types.ReplicaID(i)
		e, err := streamlet.New(streamlet.Config{
			Params:        params,
			Self:          id,
			Keyring:       keyring,
			Signer:        signers[i],
			Beacon:        bc,
			EpochDuration: epoch,
			Payloads: protocol.PayloadFunc(func(r types.Round) types.Payload {
				return types.SyntheticPayload(payload, uint64(r)<<16|uint64(id))
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	return engines
}

func TestHotStuffSmokeN4(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 0}
	engines := makeHotStuffEngines(t, params, 2*time.Second, 1024)
	log := newCommitLog()
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(4, 25*time.Millisecond),
		Seed:     1,
	}, log.hooks())
	if err != nil {
		t.Fatal(err)
	}
	net.Run(10 * time.Second)

	if len(log.faults) > 0 {
		t.Fatalf("safety faults: %v", log.faults)
	}
	log.checkPrefixConsistent(t)
	for i := 0; i < params.N; i++ {
		m := engines[i].Metrics()
		if m["blocks_commit"] < 50 {
			t.Errorf("replica %d committed only %d blocks in 10s", i, m["blocks_commit"])
		}
		if m["timeouts"] > 2 {
			t.Errorf("replica %d hit %d pacemaker timeouts in the happy path", i, m["timeouts"])
		}
		t.Logf("replica %d: %v", i, m)
	}
}

func TestStreamletSmokeN4(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 0}
	engines := makeStreamletEngines(t, params, 120*time.Millisecond, 1024)
	log := newCommitLog()
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(4, 25*time.Millisecond),
		Seed:     1,
	}, log.hooks())
	if err != nil {
		t.Fatal(err)
	}
	net.Run(20 * time.Second)

	if len(log.faults) > 0 {
		t.Fatalf("safety faults: %v", log.faults)
	}
	log.checkPrefixConsistent(t)
	for i := 0; i < params.N; i++ {
		m := engines[i].Metrics()
		if m["blocks_commit"] < 30 {
			t.Errorf("replica %d committed only %d blocks in 20s", i, m["blocks_commit"])
		}
		t.Logf("replica %d: %v", i, m)
	}
}
