package integration_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/core"
	"banyan/internal/crypto"
	"banyan/internal/protocol"
	"banyan/internal/simnet"
	"banyan/internal/types"
	"banyan/internal/wal"
	"banyan/internal/wan"
)

// TestCrashRestartFromWAL is the crash-restart scenario of ISSUE 2: f
// replicas are killed mid-run, restarted from their write-ahead logs,
// and must rejoin — re-deriving their pre-crash chain byte-for-byte from
// the journal, then continuing to commit with the cluster, with no
// safety violation anywhere.
func TestCrashRestartFromWAL(t *testing.T) {
	params := types.Params{N: 7, F: 2, P: 1}
	const (
		delta     = 60 * time.Millisecond
		payload   = 512
		crashAt   = 2 * time.Second
		restartAt = 4 * time.Second
		duration  = 10 * time.Second
	)
	victims := []types.ReplicaID{5, 6} // f = 2 replicas
	walRoot := t.TempDir()

	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 42)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	isVictim := func(id types.ReplicaID) bool {
		for _, v := range victims {
			if id == v {
				return true
			}
		}
		return false
	}
	mkEngine := func(id types.ReplicaID) protocol.Engine {
		e, err := core.New(core.Config{
			Params:  params,
			Self:    id,
			Keyring: keyring,
			Signer:  signers[id],
			Beacon:  bc,
			Delta:   delta,
			Payloads: protocol.PayloadFunc(func(r types.Round) types.Payload {
				return types.SyntheticPayload(payload, uint64(r)<<16|uint64(id))
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		// Victims fsync per record so their durable prefix — and so the
		// assertions below — do not depend on wall-clock group-commit
		// timing; the survivors (whose logs are never replayed here) ride
		// the default group commit, keeping the test's fsync count down.
		sync := wal.SyncPolicy{}
		if isVictim(id) {
			sync.EveryRecord = true
		}
		rec, err := wal.NewRecorder(wal.RecorderConfig{
			Dir:     filepath.Join(walRoot, fmt.Sprintf("replica-%d", id)),
			Engine:  e,
			Options: wal.Options{Sync: sync},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}

	engines := make([]protocol.Engine, params.N)
	for i := range engines {
		engines[i] = mkEngine(types.ReplicaID(i))
	}

	log := newCommitLog()
	hooks := log.hooks()
	// Count commits each victim finalizes strictly after its restart
	// instant — the proof it rejoined, as opposed to only replaying.
	postRestart := make(map[types.ReplicaID]int)
	restartWall := simnet.Epoch.Add(restartAt)
	baseOnCommit := hooks.OnCommit
	hooks.OnCommit = func(node types.ReplicaID, at time.Time, c protocol.Commit) {
		baseOnCommit(node, at, c)
		for _, v := range victims {
			if node == v && at.After(restartWall) {
				postRestart[node] += len(c.Blocks)
			}
		}
	}

	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(params.N, 20*time.Millisecond),
		Seed:     7,
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	preCrashLen := make(map[types.ReplicaID]int)
	for _, v := range victims {
		id := v
		net.CrashAt(id, crashAt)
		net.RestartAt(id, restartAt, func(time.Time) protocol.Engine {
			// The dying process takes its recorder with it; the journal on
			// disk is all the new life gets. The commit log restarts too —
			// the replayed chain must rebuild it from scratch, so the
			// prefix-consistency check below covers replay output as well.
			preCrashLen[id] = len(log.chains[id])
			if rec, ok := net.Engine(id).(*wal.Recorder); ok {
				rec.Crash()
			}
			log.chains[id] = nil
			return mkEngine(id)
		})
	}
	net.Run(duration)

	if len(log.faults) > 0 {
		t.Fatalf("safety faults: %v", log.faults)
	}
	log.checkPrefixConsistent(t)

	refLen := len(log.chains[0])
	if refLen < 40 {
		t.Fatalf("cluster committed only %d blocks in %s", refLen, duration)
	}
	for _, v := range victims {
		rec, ok := net.Engine(v).(*wal.Recorder)
		if !ok {
			t.Fatalf("replica %d is not running behind a recorder", v)
		}
		m := rec.Metrics()
		if m["wal_replayed_records"] == 0 {
			t.Errorf("replica %d replayed no WAL records", v)
		}
		if got, pre := len(log.chains[v]), preCrashLen[v]; got < pre {
			t.Errorf("replica %d recovered %d blocks, had already committed %d before the crash",
				v, got, pre)
		}
		if postRestart[v] == 0 {
			t.Errorf("replica %d never committed after its restart — it did not rejoin", v)
		}
		// The restarted replica must hold (a prefix of) the same chain as
		// the observer — byte-identical block IDs via checkPrefixConsistent
		// — and must have caught up to within a few rounds of the tip.
		if got := len(log.chains[v]); got < refLen-10 {
			t.Errorf("replica %d chain length %d lags observer %d by more than 10", v, got, refLen)
		}
		t.Logf("replica %d: pre-crash %d, final %d (observer %d), post-restart %d, replayed %d records",
			v, preCrashLen[v], len(log.chains[v]), refLen, postRestart[v], m["wal_replayed_records"])
	}
}
