package integration_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"banyan/internal/byzantine"
	"banyan/internal/core"
	"banyan/internal/crypto"
	"banyan/internal/protocol"
	"banyan/internal/simnet"
	"banyan/internal/types"
	"banyan/internal/wan"
)

// Whole-cluster safety battery for optimistic proposal pipelining
// (Moonshot mode): equivalence with the baseline under zero loss,
// randomized safety under delay/drop/reordering, and Byzantine leaders
// attacking the pipeline directly.

// propertyTrials mirrors the core package helper: BANYAN_PROPERTY_TRIALS
// scales the randomized batteries up for the long-mode CI job.
func propertyTrials(def int) int {
	if s := os.Getenv("BANYAN_PROPERTY_TRIALS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// makeOptimisticEngines is makeBanyanEngines with the pipelining knob and
// optional per-replica wrapping. Payloads are deterministic per
// (round, replica), so two runs over the same seed produce byte-identical
// blocks — the equivalence test depends on that.
func makeOptimisticEngines(t *testing.T, params types.Params, optimistic bool,
	wrap func(id types.ReplicaID, eng protocol.Engine, signer *crypto.Signer) protocol.Engine,
) []protocol.Engine {
	t.Helper()
	keyring, signers := crypto.GenerateCluster(crypto.Ed25519(), params.N, 99)
	bc := mustRR(t, params.N)
	engines := make([]protocol.Engine, params.N)
	for i := 0; i < params.N; i++ {
		id := types.ReplicaID(i)
		eng, err := core.New(core.Config{
			Params: params, Self: id, Keyring: keyring, Signer: signers[i],
			Beacon: bc, Delta: 50 * time.Millisecond,
			Payloads: protocol.PayloadFunc(func(r types.Round) types.Payload {
				return types.SyntheticPayload(512, uint64(r)<<16|uint64(id))
			}),
			OptimisticProposals: optimistic,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
		if wrap != nil {
			engines[i] = wrap(id, eng, signers[i])
		}
	}
	return engines
}

// sumOptMetrics totals the optimistic lifecycle counters across a cluster.
func sumOptMetrics(engines []protocol.Engine) (proposed, confirmed, withdrawn int64) {
	for _, e := range engines {
		m := e.Metrics()
		proposed += m["opt_proposed"]
		confirmed += m["opt_confirmed"]
		withdrawn += m["opt_withdrawn"]
	}
	return
}

// TestOptimisticSameSeedEquivalence: under zero loss, the knob is a pure
// latency optimization — the same seed must finalize the *identical*
// chain with and without it, every optimistic proposal confirming and
// none withdrawing.
func TestOptimisticSameSeedEquivalence(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	run := func(optimistic bool) (*commitLog, []protocol.Engine) {
		engines := makeOptimisticEngines(t, params, optimistic, nil)
		log := newCommitLog()
		net, err := simnet.New(engines, simnet.Options{
			Topology: wan.Uniform(4, 10*time.Millisecond),
			Seed:     21,
		}, log.hooks())
		if err != nil {
			t.Fatal(err)
		}
		net.Run(20 * time.Second)
		if len(log.faults) > 0 {
			t.Fatalf("faults (optimistic=%v): %v", optimistic, log.faults)
		}
		log.checkPrefixConsistent(t)
		return log, engines
	}

	base, _ := run(false)
	opt, engines := run(true)

	baseChain, optChain := base.chains[0], opt.chains[0]
	if len(baseChain) < 100 || len(optChain) < 100 {
		t.Fatalf("insufficient progress: baseline=%d optimistic=%d blocks", len(baseChain), len(optChain))
	}
	n := len(baseChain)
	if len(optChain) < n {
		n = len(optChain)
	}
	for i := 0; i < n; i++ {
		if baseChain[i] != optChain[i] {
			t.Fatalf("chains diverge at %d: baseline %s vs optimistic %s", i, baseChain[i], optChain[i])
		}
	}
	proposed, confirmed, withdrawn := sumOptMetrics(engines)
	if confirmed == 0 {
		t.Error("no optimistic proposal ever confirmed — the pipeline never engaged")
	}
	if withdrawn != 0 {
		t.Errorf("%d optimistic proposals withdrawn under zero loss, want 0", withdrawn)
	}
	// Every optimistic proposal confirms, except any still awaiting its
	// parent's certificate when the simulation stops.
	if proposed < confirmed || proposed-confirmed > int64(params.N) {
		t.Errorf("proposed=%d confirmed=%d under zero loss, want equal up to in-flight tail", proposed, confirmed)
	}
}

// TestOptimisticRandomizedSafety: randomized delay spread, message
// reordering, and ~8%% message drop across seeded trials — agreement must
// hold in every one, and the cluster must keep committing. Withdrawals
// are expected here (drops can certify a parent the leader did not
// guess); what must never happen is a safety fault or fork.
func TestOptimisticRandomizedSafety(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	trials := propertyTrials(6)
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			engines := makeOptimisticEngines(t, params, true, nil)
			// Seeded drop filter: simnet is single-threaded, so the closure's
			// rng keeps trials deterministic.
			rng := rand.New(rand.NewSource(int64(3000 + trial)))
			log := newCommitLog()
			net, err := simnet.New(engines, simnet.Options{
				Topology:        wan.Uniform(4, 10*time.Millisecond),
				Seed:            uint64(100 + trial),
				JitterFrac:      1.5,
				AllowReordering: trial%2 == 0,
				Filter: func(from, to types.ReplicaID, _ types.Message, _ time.Time) bool {
					return rng.Float64() >= 0.08
				},
			}, log.hooks())
			if err != nil {
				t.Fatal(err)
			}
			net.Run(20 * time.Second)
			if len(log.faults) > 0 {
				t.Fatalf("faults: %v", log.faults)
			}
			log.checkPrefixConsistent(t)
			if got := len(log.chains[0]); got < 20 {
				t.Errorf("committed only %d blocks under loss", got)
			}
		})
	}
}

// TestOptimisticEquivocatingLeader: a Byzantine leader equivocates
// through the optimistic pipeline itself — conflicting bare bodies to the
// two cluster halves, then conflicting confirmation fast votes. Honest
// replicas must never fast-commit either twin (n=7, p=1: a fast quorum
// of 6 cannot form from a 3-replica half plus the adversary), at most
// one twin per round may commit at all, and the cluster keeps going.
func TestOptimisticEquivocatingLeader(t *testing.T) {
	params := types.Params{N: 7, F: 2, P: 1}
	const evil = types.ReplicaID(2)
	var adversary *byzantine.OptimisticEquivocator
	engines := makeOptimisticEngines(t, params, true,
		func(id types.ReplicaID, eng protocol.Engine, signer *crypto.Signer) protocol.Engine {
			if id == evil {
				adversary = byzantine.NewOptimisticEquivocator(eng, signer, params.N)
				return adversary
			}
			return eng
		})
	honest := map[types.ReplicaID]bool{0: true, 1: true, 3: true, 4: true, 5: true, 6: true}

	// Track every fast-committed block at honest replicas: no equivocated
	// twin may ever appear with FinalizeFast.
	fastCommitted := make(map[types.BlockID]bool)
	log := newCommitLog()
	hooks := log.hooks()
	baseCommit := hooks.OnCommit
	hooks.OnCommit = func(node types.ReplicaID, at time.Time, c protocol.Commit) {
		if honest[node] && c.Explicit == protocol.FinalizeFast && len(c.Blocks) > 0 {
			fastCommitted[c.Blocks[len(c.Blocks)-1].ID()] = true
		}
		baseCommit(node, at, c)
	}
	hooks.OnFault = func(node types.ReplicaID, _ time.Time, err error) {
		if honest[node] {
			t.Errorf("safety fault at honest replica %d: %v", node, err)
		}
	}
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(7, 10*time.Millisecond),
		Seed:     31,
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	net.Run(25 * time.Second)

	log.checkPrefixConsistent(t)
	for id := range honest {
		if got := len(log.chains[id]); got < 80 {
			t.Errorf("honest replica %d committed only %d blocks under optimistic equivocation", id, got)
		}
	}
	pairs := adversary.Pairs()
	if len(pairs) == 0 {
		t.Fatal("adversary never equivocated — the scenario did not engage")
	}
	committed := make(map[types.BlockID]bool)
	for _, id := range log.chains[0] {
		committed[id] = true
	}
	for orig, twin := range pairs {
		if fastCommitted[orig] || fastCommitted[twin] {
			t.Errorf("equivocated block fast-committed: orig=%v twin=%v", fastCommitted[orig], fastCommitted[twin])
		}
		if committed[orig] && committed[twin] {
			t.Errorf("both equivocated twins committed: %s and %s", orig, twin)
		}
	}
}

// TestOptimisticStaleParentLeader: a Byzantine leader re-targets its
// rank-0 proposals at the grandparent — a finalized but superseded
// extension point — with its fast vote re-signed for the forgery. The
// extension rule (a rank-0 block must extend the previous round) must
// hold: no forged block ever commits, no honest replica faults, and the
// adversary only costs the cluster its own rounds' fast path.
func TestOptimisticStaleParentLeader(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	const evil = types.ReplicaID(2)
	var adversary *byzantine.StaleParentLeader
	engines := makeOptimisticEngines(t, params, true,
		func(id types.ReplicaID, eng protocol.Engine, signer *crypto.Signer) protocol.Engine {
			if id == evil {
				adversary = byzantine.NewStaleParentLeader(eng, signer)
				return adversary
			}
			return eng
		})
	honest := map[types.ReplicaID]bool{0: true, 1: true, 3: true}
	log := runAdversarial(t, engines, simnet.Options{
		Topology: wan.Uniform(4, 10*time.Millisecond),
		Seed:     32,
	}, 25*time.Second, honest)

	log.checkPrefixConsistent(t)
	for id := range honest {
		if got := len(log.chains[id]); got < 80 {
			t.Errorf("honest replica %d committed only %d blocks under stale-parent attack", id, got)
		}
	}
	forged := adversary.ForgedIDs()
	if len(forged) == 0 {
		t.Fatal("adversary never forged a stale-parent proposal — the scenario did not engage")
	}
	committed := make(map[types.BlockID]bool)
	for _, chain := range log.chains {
		for _, id := range chain {
			committed[id] = true
		}
	}
	for _, id := range forged {
		if committed[id] {
			t.Errorf("stale-parent block %s was committed", id)
		}
	}
}
