package integration_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"banyan/internal/protocol"
	"banyan/internal/simnet"
	"banyan/internal/types"
	"banyan/internal/wan"
)

// chaosSchedule is a randomized fault scenario derived from a seed.
type chaosSchedule struct {
	seed       int64
	n, f, p    int
	oneWay     time.Duration
	jitter     float64
	reorder    bool
	dropRate   float64
	crashes    []types.ReplicaID
	crashTimes []time.Duration
}

func newChaosSchedule(seed int64) chaosSchedule {
	rng := rand.New(rand.NewSource(seed))
	cs := chaosSchedule{
		seed:    seed,
		oneWay:  time.Duration(5+rng.Intn(30)) * time.Millisecond,
		jitter:  rng.Float64() * 0.5,
		reorder: rng.Intn(2) == 0,
		// Random loss up to 5%: the BFT model assumes reliable links, but
		// the engines' resend mechanism must recover from drops.
		dropRate: rng.Float64() * 0.05,
	}
	// Cluster shapes satisfying n >= max(3f+2p-1, 3f+1).
	shapes := [][3]int{{4, 1, 1}, {7, 2, 1}, {9, 2, 2}}
	shape := shapes[rng.Intn(len(shapes))]
	cs.n, cs.f, cs.p = shape[0], shape[1], shape[2]
	// Crash up to f replicas at random times.
	crashes := rng.Intn(cs.f + 1)
	perm := rng.Perm(cs.n)
	for i := 0; i < crashes; i++ {
		cs.crashes = append(cs.crashes, types.ReplicaID(perm[i]))
		cs.crashTimes = append(cs.crashTimes, time.Duration(rng.Intn(10))*time.Second)
	}
	return cs
}

func (cs chaosSchedule) String() string {
	return fmt.Sprintf("seed=%d n=%d f=%d p=%d delay=%v jitter=%.2f reorder=%v drop=%.3f crashes=%v",
		cs.seed, cs.n, cs.f, cs.p, cs.oneWay, cs.jitter, cs.reorder, cs.dropRate, cs.crashes)
}

// TestChaosBanyan runs randomized fault scenarios against Banyan clusters:
// whatever the schedule, safety (prefix consistency, no faults) must hold,
// and with at most f crashes the chain must keep growing.
func TestChaosBanyan(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		cs := newChaosSchedule(seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			params := types.Params{N: cs.n, F: cs.f, P: cs.p}
			if err := params.Validate(); err != nil {
				t.Fatalf("generated invalid params %v: %v", params, err)
			}
			engines := makeBanyanEngines(t, params, 80*time.Millisecond, 512, false)
			log := newCommitLog()
			dropRng := rand.New(rand.NewSource(cs.seed * 977))
			net, err := simnet.New(engines, simnet.Options{
				Topology:        wan.Uniform(cs.n, cs.oneWay),
				Seed:            uint64(cs.seed),
				JitterFrac:      cs.jitter,
				AllowReordering: cs.reorder,
				Filter: func(from, to types.ReplicaID, _ types.Message, _ time.Time) bool {
					return dropRng.Float64() >= cs.dropRate
				},
			}, log.hooks())
			if err != nil {
				t.Fatal(err)
			}
			for i, id := range cs.crashes {
				net.CrashAt(id, cs.crashTimes[i])
			}
			net.Run(25 * time.Second)

			if len(log.faults) > 0 {
				t.Fatalf("%v: faults %v", cs, log.faults)
			}
			log.checkPrefixConsistent(t)
			crashed := make(map[types.ReplicaID]bool, len(cs.crashes))
			for _, id := range cs.crashes {
				crashed[id] = true
			}
			for i := 0; i < cs.n; i++ {
				id := types.ReplicaID(i)
				if crashed[id] {
					continue
				}
				if got := len(log.chains[id]); got < 20 {
					t.Errorf("%v: replica %d committed only %d blocks", cs, id, got)
				}
			}
		})
	}
}

// TestHeavyLossRecovery hammers a Banyan cluster with 10% uniform message
// loss and a crashed replica (so quorums need every remaining replica):
// the resend mechanism must keep the chain growing.
func TestHeavyLossRecovery(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	engines := makeBanyanEngines(t, params, 50*time.Millisecond, 256, false)
	log := newCommitLog()
	dropRng := rand.New(rand.NewSource(321))
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(4, 10*time.Millisecond),
		Seed:     17,
		Filter: func(from, to types.ReplicaID, _ types.Message, _ time.Time) bool {
			return dropRng.Float64() >= 0.10
		},
	}, log.hooks())
	if err != nil {
		t.Fatal(err)
	}
	net.CrashAt(3, 0)
	net.Run(60 * time.Second)
	if len(log.faults) > 0 {
		t.Fatalf("faults: %v", log.faults)
	}
	log.checkPrefixConsistent(t)
	m := engines[0].Metrics()
	if m["blocks_commit"] < 40 {
		t.Errorf("only %d blocks under 10%% loss; resend mechanism ineffective (resends=%d)",
			m["blocks_commit"], m["resends"])
	}
	if m["resends"] == 0 {
		t.Error("no resends recorded despite heavy loss")
	}
	t.Logf("blocks=%d resends=%d", m["blocks_commit"], m["resends"])
}

// TestChaosAllProtocols runs a lighter chaos pass (jitter + reordering, no
// loss or crashes) over all four protocols: safety everywhere, liveness
// for the responsive protocols.
func TestChaosAllProtocols(t *testing.T) {
	type mk func(*testing.T, types.Params, time.Duration, int) []protocol.Engine
	builders := map[string]mk{
		"icc": makeICCEngines,
		"hotstuff": func(t *testing.T, p types.Params, d time.Duration, size int) []protocol.Engine {
			return makeHotStuffEngines(t, p, 10*d, size)
		},
		"streamlet": makeStreamletEngines,
	}
	for name, build := range builders {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				params := types.Params{N: 4, F: 1}
				engines := build(t, params, 100*time.Millisecond, 256)
				log := newCommitLog()
				net, err := simnet.New(engines, simnet.Options{
					Topology:        wan.Uniform(4, 15*time.Millisecond),
					Seed:            seed,
					JitterFrac:      0.8,
					AllowReordering: true,
				}, log.hooks())
				if err != nil {
					t.Fatal(err)
				}
				net.Run(20 * time.Second)
				if len(log.faults) > 0 {
					t.Fatalf("faults: %v", log.faults)
				}
				log.checkPrefixConsistent(t)
				if got := len(log.chains[0]); got < 10 {
					t.Errorf("%s seed %d: only %d commits", name, seed, got)
				}
			})
		}
	}
}
