// Package integration_test runs whole-cluster executions of every engine
// on the discrete-event simulator and checks the protocol properties of
// paper section 5: deadlock-freeness (chain growth), safety (consistent
// finalized prefixes) and liveness (leader blocks finalize in synchrony).
package integration_test

import (
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/core"
	"banyan/internal/crypto"
	"banyan/internal/icc"
	"banyan/internal/protocol"
	"banyan/internal/simnet"
	"banyan/internal/types"
	"banyan/internal/wan"
)

// commitLog records each replica's committed block sequence.
type commitLog struct {
	chains map[types.ReplicaID][]types.BlockID
	faults []error
}

func newCommitLog() *commitLog {
	return &commitLog{chains: make(map[types.ReplicaID][]types.BlockID)}
}

func (l *commitLog) hooks() simnet.Hooks {
	return simnet.Hooks{
		OnCommit: func(node types.ReplicaID, _ time.Time, c protocol.Commit) {
			for _, b := range c.Blocks {
				l.chains[node] = append(l.chains[node], b.ID())
			}
		},
		OnFault: func(_ types.ReplicaID, _ time.Time, err error) {
			l.faults = append(l.faults, err)
		},
	}
}

// checkPrefixConsistent fails the test if any two replicas' committed
// sequences disagree on a common prefix (the safety property).
func (l *commitLog) checkPrefixConsistent(t *testing.T) {
	t.Helper()
	var ref []types.BlockID
	var refNode types.ReplicaID
	for node, chain := range l.chains {
		if len(chain) > len(ref) {
			ref, refNode = chain, node
		}
	}
	for node, chain := range l.chains {
		for i, id := range chain {
			if ref[i] != id {
				t.Fatalf("safety violation: replica %d commit[%d] = %s, replica %d has %s",
					node, i, id, refNode, ref[i])
			}
		}
	}
}

func makeBanyanEngines(t *testing.T, params types.Params, delta time.Duration,
	payload int, disableFast bool) []protocol.Engine {
	t.Helper()
	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 42)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]protocol.Engine, params.N)
	for i := 0; i < params.N; i++ {
		id := types.ReplicaID(i)
		e, err := core.New(core.Config{
			Params:  params,
			Self:    id,
			Keyring: keyring,
			Signer:  signers[i],
			Beacon:  bc,
			Delta:   delta,
			Payloads: protocol.PayloadFunc(func(r types.Round) types.Payload {
				return types.SyntheticPayload(payload, uint64(r)<<16|uint64(id))
			}),
			DisableFastPath: disableFast,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	return engines
}

func makeICCEngines(t *testing.T, params types.Params, delta time.Duration, payload int) []protocol.Engine {
	t.Helper()
	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 42)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]protocol.Engine, params.N)
	for i := 0; i < params.N; i++ {
		id := types.ReplicaID(i)
		e, err := icc.New(icc.Config{
			Params:  params,
			Self:    id,
			Keyring: keyring,
			Signer:  signers[i],
			Beacon:  bc,
			Delta:   delta,
			Payloads: protocol.PayloadFunc(func(r types.Round) types.Payload {
				return types.SyntheticPayload(payload, uint64(r)<<16|uint64(id))
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	return engines
}

func TestBanyanSmokeN4(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	engines := makeBanyanEngines(t, params, 60*time.Millisecond, 1024, false)
	log := newCommitLog()
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(4, 25*time.Millisecond),
		Seed:     1,
	}, log.hooks())
	if err != nil {
		t.Fatal(err)
	}
	net.Run(10 * time.Second)

	if len(log.faults) > 0 {
		t.Fatalf("safety faults: %v", log.faults)
	}
	log.checkPrefixConsistent(t)
	for i := 0; i < params.N; i++ {
		m := engines[i].Metrics()
		if m["blocks_commit"] < 50 {
			t.Errorf("replica %d committed only %d blocks in 10s", i, m["blocks_commit"])
		}
		if m["final_fast"] == 0 {
			t.Errorf("replica %d never used the fast path", i)
		}
		t.Logf("replica %d: %v", i, m)
	}
}

func TestICCSmokeN4(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 0}
	engines := makeICCEngines(t, params, 60*time.Millisecond, 1024)
	log := newCommitLog()
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(4, 25*time.Millisecond),
		Seed:     1,
	}, log.hooks())
	if err != nil {
		t.Fatal(err)
	}
	net.Run(10 * time.Second)

	if len(log.faults) > 0 {
		t.Fatalf("safety faults: %v", log.faults)
	}
	log.checkPrefixConsistent(t)
	for i := 0; i < params.N; i++ {
		m := engines[i].Metrics()
		if m["blocks_commit"] < 50 {
			t.Errorf("replica %d committed only %d blocks in 10s", i, m["blocks_commit"])
		}
		t.Logf("replica %d: %v", i, m)
	}
}
