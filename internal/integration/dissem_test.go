package integration_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"banyan/internal/byzantine"
	"banyan/internal/core"
	"banyan/internal/crypto"
	"banyan/internal/dissem"
	"banyan/internal/mempool"
	"banyan/internal/protocol"
	"banyan/internal/simnet"
	"banyan/internal/types"
	"banyan/internal/wan"
)

// Whole-cluster batteries for the batch-dissemination layer: a Byzantine
// origin that withholds bodies must not touch the vote path and must be
// routed around by fetch-on-miss, and randomized loss/reordering must
// never produce a fork or a stuck delivery queue.

// makeDissemEngines builds Banyan engines with a dissemination store per
// replica (synthetic batch source, one 4 KB batch per cut, 8 KB blocks).
func makeDissemEngines(t *testing.T, params types.Params,
	wrap func(id types.ReplicaID, eng protocol.Engine, signer *crypto.Signer) protocol.Engine,
) []protocol.Engine {
	t.Helper()
	keyring, signers := crypto.GenerateCluster(crypto.Ed25519(), params.N, 99)
	bc := mustRR(t, params.N)
	engines := make([]protocol.Engine, params.N)
	for i := 0; i < params.N; i++ {
		id := types.ReplicaID(i)
		store := dissem.NewStore(dissem.Config{
			Self:       id,
			N:          params.N,
			BatchBytes: 4 << 10,
			BlockBytes: 8 << 10,
			Source:     mempool.NewSynthetic(4<<10, 99^uint64(id)<<32, false),
		})
		eng, err := core.New(core.Config{
			Params: params, Self: id, Keyring: keyring, Signer: signers[i],
			Beacon: bc, Delta: 50 * time.Millisecond,
			Dissem: store,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
		if wrap != nil {
			engines[i] = wrap(id, eng, signers[i])
		}
	}
	return engines
}

// TestDissemBatchWithholder: a Byzantine origin announces its batch
// bodies to exactly the ack quorum (replicas 0 and 1), starving replica 3,
// and refuses every fetch afterwards. Votes and finalization must be
// unaffected — the withholder's blocks still commit everywhere — and
// replica 3 must recover delivery by rotating its fetch off the silent
// origin onto an acked holder.
func TestDissemBatchWithholder(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	const evil = types.ReplicaID(2)
	var adversary *byzantine.BatchWithholder
	engines := makeDissemEngines(t, params,
		func(id types.ReplicaID, eng protocol.Engine, signer *crypto.Signer) protocol.Engine {
			if id == evil {
				// f+1 = 2 acks keep the adversary's batches proposable while
				// replica 3 never receives a body from the origin.
				adversary = byzantine.NewBatchWithholder(eng, []types.ReplicaID{0, 1})
				return adversary
			}
			return eng
		})
	honest := map[types.ReplicaID]bool{0: true, 1: true, 3: true}
	log := runAdversarial(t, engines, simnet.Options{
		Topology: wan.Uniform(4, 10*time.Millisecond),
		Seed:     41,
	}, 20*time.Second, honest)

	log.checkPrefixConsistent(t)
	if adversary.Withheld() == 0 {
		t.Fatal("adversary never withheld a body — the scenario did not engage")
	}
	if adversary.Refused() == 0 {
		t.Error("starved replica never even asked the origin — fetch-on-miss did not engage")
	}
	// Vote path unaffected: every honest replica delivers a long chain,
	// including the withholder's own rounds (1 in 4 of all rounds), and the
	// starved replica keeps pace with the fully-served ones.
	for id := range honest {
		if got := len(log.chains[id]); got < 100 {
			t.Errorf("honest replica %d delivered only %d blocks under withholding", id, got)
		}
	}
	if starved, served := len(log.chains[3]), len(log.chains[0]); starved < served-20 {
		t.Errorf("starved replica delivered %d blocks vs %d at a served replica — delivery gating leaked into progress", starved, served)
	}
	// And the recovery really went through the fetch path with rotation:
	// the starved replica fetched, and retried past the refusing origin.
	m := engines[3].Metrics()
	if m["dissemFetches"] == 0 {
		t.Error("starved replica recorded no batch fetches")
	}
	if m["dissemFetchRetries"] == 0 {
		t.Error("starved replica never rotated off the silent origin")
	}
	if m["dissemDelivQueued"] > 4 {
		t.Errorf("starved replica still has %d gated deliveries queued at shutdown", m["dissemDelivQueued"])
	}
}

// TestDissemRandomizedLossReorder: randomized jitter, reordering, and ~8%
// message drop — hitting announces, acks, requests, and responses alike —
// across seeded trials. Agreement must hold, delivery must keep flowing
// (the fetch scheduler re-requests dropped bodies), and the delivery queue
// must not wedge. BANYAN_PROPERTY_TRIALS scales the battery up in CI.
func TestDissemRandomizedLossReorder(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	trials := propertyTrials(6)
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			engines := makeDissemEngines(t, params, nil)
			rng := rand.New(rand.NewSource(int64(7000 + trial)))
			log := newCommitLog()
			net, err := simnet.New(engines, simnet.Options{
				Topology:        wan.Uniform(4, 10*time.Millisecond),
				Seed:            uint64(500 + trial),
				JitterFrac:      1.5,
				AllowReordering: trial%2 == 0,
				Filter: func(from, to types.ReplicaID, _ types.Message, _ time.Time) bool {
					return rng.Float64() >= 0.08
				},
			}, log.hooks())
			if err != nil {
				t.Fatal(err)
			}
			net.Run(20 * time.Second)
			if len(log.faults) > 0 {
				t.Fatalf("faults: %v", log.faults)
			}
			log.checkPrefixConsistent(t)
			if got := len(log.chains[0]); got < 20 {
				t.Errorf("delivered only %d blocks under loss", got)
			}
			// No replica may end wedged behind a fetchable body.
			for i, e := range engines {
				if q := e.Metrics()["dissemDelivQueued"]; q > 8 {
					t.Errorf("replica %d ended with %d gated deliveries queued", i, q)
				}
			}
		})
	}
}
