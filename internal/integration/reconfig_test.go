package integration_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/byzantine"
	"banyan/internal/core"
	"banyan/internal/crypto"
	"banyan/internal/membership"
	"banyan/internal/protocol"
	"banyan/internal/simnet"
	"banyan/internal/types"
	"banyan/internal/wal"
	"banyan/internal/wan"
)

// certLog captures every certificate that crosses the wire — Advance
// notarizations, standalone CertMsgs, and the parent notarizations
// riding proposals — so tests can assert the quorum geometry of each
// epoch: how many signers a cert carries and who they are.
type certLog struct {
	certs []*types.Certificate
}

func (l *certLog) hook() func(types.ReplicaID, time.Time, types.Message) {
	return func(_ types.ReplicaID, _ time.Time, msg types.Message) {
		switch m := msg.(type) {
		case *types.Advance:
			l.certs = append(l.certs, m.Notarization)
		case *types.CertMsg:
			l.certs = append(l.certs, m.Cert)
		case *types.Proposal:
			if m.ParentNotarization != nil {
				l.certs = append(l.certs, m.ParentNotarization)
			}
		}
	}
}

// signerCount returns, per round, the largest signer list observed on any
// certificate for that round.
func (l *certLog) signerCount() map[types.Round]int {
	out := make(map[types.Round]int)
	for _, c := range l.certs {
		if c != nil && len(c.Signers) > out[c.Round] {
			out[c.Round] = len(c.Signers)
		}
	}
	return out
}

// contains reports whether any certificate at round >= from carries id
// among its signers.
func (l *certLog) contains(id types.ReplicaID, from types.Round) bool {
	for _, c := range l.certs {
		if c == nil || c.Round < from {
			continue
		}
		for _, s := range c.Signers {
			if s == id {
				return true
			}
		}
	}
	return false
}

func withReconfig(r *membership.Reconfigurator) func(*core.Config) {
	return func(c *core.Config) { c.Reconfig = r }
}

// historyOf extracts the epoch history from a (possibly recorder-wrapped)
// engine.
func historyOf(t *testing.T, e protocol.Engine) *membership.History {
	t.Helper()
	h, ok := e.(interface{ History() *membership.History })
	if !ok {
		t.Fatalf("engine %T does not expose History()", e)
	}
	hist := h.History()
	if hist == nil {
		t.Fatalf("engine %T returned a nil History", e)
	}
	return hist
}

// proposeToAll queues the change on every replica's reconfigurator:
// whichever leader proposes first carries it, the rest observe the
// finalized block and clear their slots (duplicate application is a
// deterministic no-op).
func proposeToAll(recfg []*membership.Reconfigurator, c types.ConfigChange) {
	for _, r := range recfg {
		if r != nil {
			r.Propose(c)
		}
	}
}

// TestReconfigAddThenRemove is the tentpole scenario end-to-end in the
// simulator: a 4-replica genesis cluster finalizes a ConfigChange adding
// a 5th replica — which bootstrapped cold through the snapshot path and
// votes from the next epoch — then one removing it again. The cert log
// must show the quorum geometry shifting with the epochs: quorum-3
// certificates before the add, >= 4 signers while the 5th member is in,
// quorum-3 again after the remove.
func TestReconfigAddThenRemove(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	const (
		maxN     = 5
		delta    = 60 * time.Millisecond
		joinAt   = 2 * time.Second
		addAt    = 4 * time.Second
		removeAt = 9 * time.Second
		duration = 16 * time.Second
	)
	joiner := types.ReplicaID(4)

	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), maxN, 42)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	recfg := make([]*membership.Reconfigurator, maxN)
	engines := make([]protocol.Engine, maxN)
	for i := range engines {
		recfg[i] = &membership.Reconfigurator{}
		engines[i] = mkBanyan(t, params, keyring, signers, bc, delta,
			types.ReplicaID(i), window, withReconfig(recfg[i]))
	}

	log := newRoundLog()
	certs := &certLog{}
	hooks := log.hooks()
	hooks.OnBroadcast = certs.hook()

	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(maxN, 20*time.Millisecond),
		Seed:     7,
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	// The joiner boots cold against a deep-pruned cluster well before the
	// add is proposed: it must enter through the snapshot path and be
	// caught up by the time its epoch starts.
	net.JoinAt(joiner, joinAt)
	net.At(addAt, func(time.Time) {
		proposeToAll(recfg, types.ConfigChange{
			Op: types.ConfigAdd, Replica: joiner, PubKey: keyring.PublicKey(joiner),
		})
	})
	net.At(removeAt, func(time.Time) {
		proposeToAll(recfg, types.ConfigChange{Op: types.ConfigRemove, Replica: joiner})
	})
	net.Run(duration)

	if len(log.faults) > 0 {
		t.Fatalf("safety faults: %v", log.faults)
	}
	log.checkRoundConsistent(t)

	hist := historyOf(t, net.Engine(0))
	if hist.Len() != 3 {
		t.Fatalf("observer history holds %d sets, want 3 (genesis, +joiner, -joiner)", hist.Len())
	}
	set0, set1, set2 := hist.SetForEpoch(0), hist.SetForEpoch(1), hist.SetForEpoch(2)
	if set1.Size() != 5 || !set1.Contains(joiner) {
		t.Fatalf("epoch 1 set is %v, want 5 members including %d", set1.Members(), joiner)
	}
	if set2.Size() != 4 || set2.Contains(joiner) {
		t.Fatalf("epoch 2 set is %v, want the joiner removed", set2.Members())
	}

	// The acceptance bar: certs before and after the add use different
	// quorums. Epoch 0 (n=4) notarizes at 3 signatures; epoch 1 (n=5)
	// needs 4.
	q0, q1 := set0.Params().NotarizationQuorum(), set1.Params().NotarizationQuorum()
	if q0 == q1 {
		t.Fatalf("epoch quorums did not change: %d vs %d", q0, q1)
	}
	act1, act2 := set1.Activation(), set2.Activation()
	sawEpoch0AtQ0, sawEpoch1 := false, false
	for r, n := range certs.signerCount() {
		switch {
		case r < act1:
			if n == q0 {
				sawEpoch0AtQ0 = true
			}
			if n > set0.Size() {
				t.Errorf("epoch-0 cert at round %d carries %d signers, set has %d members", r, n, set0.Size())
			}
		case r < act2:
			sawEpoch1 = true
			if n < q1 {
				t.Errorf("epoch-1 cert at round %d carries %d signers, quorum is %d", r, n, q1)
			}
		}
	}
	if !sawEpoch0AtQ0 {
		t.Errorf("no epoch-0 certificate observed at the old quorum %d", q0)
	}
	if !sawEpoch1 {
		t.Error("no certificates observed inside epoch 1 — the add never took effect in-run")
	}
	// The joiner is a genuine participant in its epoch: it voted, its
	// signature appears in epoch-1 certs, and it entered via snapshot.
	if !certs.contains(joiner, act1) {
		t.Error("joiner never signed a certificate after its activation")
	}
	m := net.Engine(joiner).Metrics()
	if m["votes_sent"] == 0 {
		t.Error("joiner never voted")
	}
	if m["statesync_fetches"] == 0 {
		t.Error("joiner caught up without a snapshot fetch; the cluster was not window-only")
	}
	if got := m["epoch_changes"]; got != 2 {
		t.Errorf("joiner observed %d epoch changes, want 2", got)
	}
	t.Logf("activations: epoch1@%d epoch2@%d; joiner votes %d, fetches %d, certs seen %d",
		act1, act2, m["votes_sent"], m["statesync_fetches"], len(certs.certs))
}

// TestReconfigJoinDuringChange boots the joiner at the same instant the
// add is proposed: snapshot catch-up races the epoch boundary. The joiner
// must still end up a voting member without tripping safety.
func TestReconfigJoinDuringChange(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	const (
		maxN     = 5
		delta    = 60 * time.Millisecond
		addAt    = 3 * time.Second
		duration = 12 * time.Second
	)
	joiner := types.ReplicaID(4)

	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), maxN, 43)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	recfg := make([]*membership.Reconfigurator, maxN)
	engines := make([]protocol.Engine, maxN)
	for i := range engines {
		recfg[i] = &membership.Reconfigurator{}
		engines[i] = mkBanyan(t, params, keyring, signers, bc, delta,
			types.ReplicaID(i), window, withReconfig(recfg[i]))
	}

	log := newRoundLog()
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(maxN, 20*time.Millisecond),
		Seed:     13,
	}, log.hooks())
	if err != nil {
		t.Fatal(err)
	}
	net.JoinAt(joiner, addAt)
	net.At(addAt, func(time.Time) {
		proposeToAll(recfg, types.ConfigChange{
			Op: types.ConfigAdd, Replica: joiner, PubKey: keyring.PublicKey(joiner),
		})
	})
	net.Run(duration)

	if len(log.faults) > 0 {
		t.Fatalf("safety faults: %v", log.faults)
	}
	log.checkRoundConsistent(t)
	hist := historyOf(t, net.Engine(0))
	if hist.Len() != 2 {
		t.Fatalf("observer history holds %d sets, want 2", hist.Len())
	}
	m := net.Engine(joiner).Metrics()
	if m["votes_sent"] == 0 {
		t.Error("joiner never voted despite joining during the reconfiguration")
	}
	if m["statesync_fetches"] == 0 {
		t.Error("joiner caught up without a snapshot fetch")
	}
}

// TestReconfigRemoveCurrentLeader removes a genesis member and keeps the
// cluster running long enough that every leader slot of the shrunken
// schedule — including the rounds the removed replica would have led —
// rotates through several times. The schedule must close over the gap
// without stalling.
func TestReconfigRemoveCurrentLeader(t *testing.T) {
	params := types.Params{N: 5, F: 1, P: 1}
	const (
		delta    = 60 * time.Millisecond
		removeAt = 3 * time.Second
		duration = 12 * time.Second
	)
	removed := types.ReplicaID(2)

	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 44)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	recfg := make([]*membership.Reconfigurator, params.N)
	engines := make([]protocol.Engine, params.N)
	for i := range engines {
		recfg[i] = &membership.Reconfigurator{}
		engines[i] = mkBanyan(t, params, keyring, signers, bc, delta,
			types.ReplicaID(i), window, withReconfig(recfg[i]))
	}

	log := newRoundLog()
	certs := &certLog{}
	hooks := log.hooks()
	hooks.OnBroadcast = certs.hook()
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(params.N, 20*time.Millisecond),
		Seed:     17,
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	net.At(removeAt, func(time.Time) {
		proposeToAll(recfg, types.ConfigChange{Op: types.ConfigRemove, Replica: removed})
	})
	net.Run(duration)

	if len(log.faults) > 0 {
		t.Fatalf("safety faults: %v", log.faults)
	}
	log.checkRoundConsistent(t)
	hist := historyOf(t, net.Engine(0))
	if hist.Len() != 2 {
		t.Fatalf("observer history holds %d sets, want 2", hist.Len())
	}
	next := hist.SetForEpoch(1)
	if next.Contains(removed) {
		t.Fatalf("epoch 1 still contains replica %d", removed)
	}
	act := next.Activation()
	// Liveness across the boundary: with four members each leads every
	// 4th round, so clearing activation by 40+ rounds exercises the
	// removed replica's former leader turns ~10 times over.
	maxRound := func(id types.ReplicaID) types.Round {
		var hi types.Round
		for r := range log.chains[id] {
			if r > hi {
				hi = r
			}
		}
		return hi
	}
	if hi := maxRound(0); hi < act+40 {
		t.Fatalf("only reached round %d after activation %d — schedule stalled on the removed leader's slots", hi, act)
	}
	if certs.contains(removed, act) {
		t.Errorf("a certificate at or after round %d counts removed replica %d", act, removed)
	}
	// The removed replica keeps following the chain as an observer.
	if maxRound(removed) < act {
		t.Errorf("removed replica stopped committing at its own removal")
	}
}

// TestReconfigCrashRestartStraddle crashes a WAL-backed replica before a
// removal finalizes and restarts it after the epoch has turned: replay
// plus live catch-up must land it in the post-change set. A second
// crash-restart then replays a log whose checkpoint was taken after the
// change, proving the journaled validator sets restore the epoch without
// re-deriving it from live traffic.
func TestReconfigCrashRestartStraddle(t *testing.T) {
	params := types.Params{N: 5, F: 1, P: 1}
	const (
		delta      = 60 * time.Millisecond
		crashAt    = 2500 * time.Millisecond
		removeAt   = 3 * time.Second
		restartAt  = 6 * time.Second
		crash2At   = 9 * time.Second
		restart2At = 10 * time.Second
		duration   = 15 * time.Second
	)
	victim := types.ReplicaID(3)
	removed := types.ReplicaID(4)
	dir := filepath.Join(t.TempDir(), "victim")

	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 45)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	recfg := make([]*membership.Reconfigurator, params.N)
	for i := range recfg {
		recfg[i] = &membership.Reconfigurator{}
	}
	// The victim's reconfigurator outlives its engine rebuilds, like the
	// host layers do, so a pending change survives the crash.
	mkVictim := func() protocol.Engine {
		rec, err := wal.NewRecorder(wal.RecorderConfig{
			Dir:             dir,
			Engine:          mkBanyan(t, params, keyring, signers, bc, delta, victim, window, withReconfig(recfg[victim])),
			CheckpointEvery: 16,
			Options:         wal.Options{Sync: wal.SyncPolicy{EveryRecord: true}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	engines := make([]protocol.Engine, params.N)
	for i := range engines {
		if types.ReplicaID(i) == victim {
			engines[i] = mkVictim()
			continue
		}
		engines[i] = mkBanyan(t, params, keyring, signers, bc, delta,
			types.ReplicaID(i), window, withReconfig(recfg[i]))
	}

	log := newRoundLog()
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(params.N, 20*time.Millisecond),
		Seed:     19,
	}, log.hooks())
	if err != nil {
		t.Fatal(err)
	}
	rebuild := func(time.Time) protocol.Engine {
		if rec, ok := net.Engine(victim).(*wal.Recorder); ok {
			rec.Crash()
		}
		return mkVictim()
	}
	net.CrashAt(victim, crashAt)
	net.At(removeAt, func(time.Time) {
		proposeToAll(recfg, types.ConfigChange{Op: types.ConfigRemove, Replica: removed})
	})
	net.RestartAt(victim, restartAt, rebuild)
	net.CrashAt(victim, crash2At)
	net.RestartAt(victim, restart2At, rebuild)
	net.Run(duration)

	if len(log.faults) > 0 {
		t.Fatalf("safety faults: %v", log.faults)
	}
	log.checkRoundConsistent(t)

	hist := historyOf(t, net.Engine(victim))
	if hist.Len() != 2 {
		t.Fatalf("victim history holds %d sets after straddling restarts, want 2 (metrics: %v)",
			hist.Len(), net.Engine(victim).Metrics())
	}
	if cur := hist.Current(); cur.Contains(removed) {
		t.Fatalf("victim's current set still contains removed replica %d", removed)
	}
	m := net.Engine(victim).Metrics()
	if m["wal_replayed_records"] == 0 {
		t.Error("victim restarted without replaying its WAL — the straddle was not exercised")
	}
	maxRound := func(id types.ReplicaID) types.Round {
		var hi types.Round
		for r := range log.chains[id] {
			if r > hi {
				hi = r
			}
		}
		return hi
	}
	if vic, obs := maxRound(victim), maxRound(0); vic < obs-10 {
		t.Errorf("victim's last commit at round %d lags observer's %d", vic, obs)
	}
	t.Logf("victim: replayed %d records, history len %d, epoch %d",
		m["wal_replayed_records"], hist.Len(), hist.Current().Epoch())
}

// TestReconfigSameSeedEquivalence runs the add-then-remove scenario twice
// per seed under jitter, reordering, and seeded loss: identical seeds
// must yield identical committed chains and identical epoch histories.
// Determinism is what makes every other trial in this battery evidence
// rather than anecdote.
func TestReconfigSameSeedEquivalence(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	const (
		maxN     = 5
		delta    = 60 * time.Millisecond
		addAt    = 2 * time.Second
		removeAt = 6 * time.Second
		duration = 10 * time.Second
	)
	joiner := types.ReplicaID(4)
	trials := propertyTrials(3)

	run := func(t *testing.T, trial int) (map[types.Round]types.BlockID, []*types.ValidatorSetDesc) {
		keyring, signers := crypto.GenerateCluster(crypto.HMAC(), maxN, 42)
		bc, err := beacon.NewRoundRobin(params.N)
		if err != nil {
			t.Fatal(err)
		}
		recfg := make([]*membership.Reconfigurator, maxN)
		engines := make([]protocol.Engine, maxN)
		for i := range engines {
			recfg[i] = &membership.Reconfigurator{}
			engines[i] = mkBanyan(t, params, keyring, signers, bc, delta,
				types.ReplicaID(i), window, withReconfig(recfg[i]))
		}
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		log := newRoundLog()
		net, err := simnet.New(engines, simnet.Options{
			Topology:        wan.Uniform(maxN, 15*time.Millisecond),
			Seed:            uint64(200 + trial),
			JitterFrac:      1.5,
			AllowReordering: trial%2 == 0,
			Filter: func(from, to types.ReplicaID, _ types.Message, _ time.Time) bool {
				return rng.Float64() >= 0.05
			},
		}, log.hooks())
		if err != nil {
			t.Fatal(err)
		}
		net.JoinAt(joiner, addAt)
		net.At(addAt, func(time.Time) {
			proposeToAll(recfg, types.ConfigChange{
				Op: types.ConfigAdd, Replica: joiner, PubKey: keyring.PublicKey(joiner),
			})
		})
		net.At(removeAt, func(time.Time) {
			proposeToAll(recfg, types.ConfigChange{Op: types.ConfigRemove, Replica: joiner})
		})
		net.Run(duration)
		if len(log.faults) > 0 {
			t.Fatalf("safety faults: %v", log.faults)
		}
		log.checkRoundConsistent(t)
		return log.chains[0], historyOf(t, net.Engine(0)).Descs()
	}

	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			chainA, descsA := run(t, trial)
			chainB, descsB := run(t, trial)
			if len(chainA) != len(chainB) {
				t.Fatalf("same seed, different chain lengths: %d vs %d", len(chainA), len(chainB))
			}
			for r, id := range chainA {
				if chainB[r] != id {
					t.Fatalf("same seed diverged at round %d: %s vs %s", r, id, chainB[r])
				}
			}
			if len(descsA) != len(descsB) {
				t.Fatalf("same seed, different epoch counts: %d vs %d", len(descsA), len(descsB))
			}
			for i := range descsA {
				if descsA[i].Epoch != descsB[i].Epoch || descsA[i].Activation != descsB[i].Activation {
					t.Fatalf("same seed, epoch %d activated at %d vs %d",
						descsA[i].Epoch, descsA[i].Activation, descsB[i].Activation)
				}
			}
			if len(chainA) < 20 {
				t.Errorf("committed only %d rounds under loss", len(chainA))
			}
		})
	}
}

// TestReconfigEpochStraddler removes a validator that refuses to go: the
// EpochStraddler keeps voting on post-activation proposals with its old
// key. Epoch-pinned verification must keep its signatures out of every
// certificate, and the cluster must not miss a beat.
func TestReconfigEpochStraddler(t *testing.T) {
	params := types.Params{N: 5, F: 1, P: 1}
	const (
		delta    = 60 * time.Millisecond
		removeAt = 3 * time.Second
		duration = 12 * time.Second
	)
	evil := types.ReplicaID(2)

	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 46)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	recfg := make([]*membership.Reconfigurator, params.N)
	var adversary *byzantine.EpochStraddler
	engines := make([]protocol.Engine, params.N)
	for i := range engines {
		recfg[i] = &membership.Reconfigurator{}
		eng := mkBanyan(t, params, keyring, signers, bc, delta,
			types.ReplicaID(i), window, withReconfig(recfg[i]))
		if types.ReplicaID(i) == evil {
			adversary = byzantine.NewEpochStraddler(eng, signers[i])
			engines[i] = adversary
			continue
		}
		engines[i] = eng
	}

	log := newRoundLog()
	certs := &certLog{}
	hooks := log.hooks()
	hooks.OnBroadcast = certs.hook()
	hooks.OnFault = func(node types.ReplicaID, _ time.Time, err error) {
		if node != evil {
			t.Errorf("safety fault at honest replica %d: %v", node, err)
		}
	}
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(params.N, 20*time.Millisecond),
		Seed:     23,
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	net.At(removeAt, func(time.Time) {
		proposeToAll(recfg, types.ConfigChange{Op: types.ConfigRemove, Replica: evil})
	})
	net.Run(duration)

	log.checkRoundConsistent(t)
	if adversary.ForgedVotes() == 0 {
		t.Fatal("straddler never forged a post-removal vote — the scenario did not engage")
	}
	act := adversary.RemovedAt()
	if act == 0 {
		t.Fatal("straddler never observed its own removal")
	}
	if certs.contains(evil, act) {
		t.Errorf("a certificate at or after activation %d counts the removed straddler", act)
	}
	hist := historyOf(t, net.Engine(0))
	if hist.Current().Contains(evil) {
		t.Fatal("straddler still in the current set")
	}
	maxRound := func(id types.ReplicaID) types.Round {
		var hi types.Round
		for r := range log.chains[id] {
			if r > hi {
				hi = r
			}
		}
		return hi
	}
	if hi := maxRound(0); hi < act+40 {
		t.Errorf("only reached round %d after activation %d — the straddler slowed the cluster", hi, act)
	}
	t.Logf("straddler forged %d votes after activation %d; cluster reached round %d",
		adversary.ForgedVotes(), act, maxRound(0))
}
