package integration_test

import (
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/byzantine"
	"banyan/internal/core"
	"banyan/internal/crypto"
	"banyan/internal/icc"
	"banyan/internal/protocol"
	"banyan/internal/simnet"
	"banyan/internal/types"
	"banyan/internal/wan"
)

// buildCluster assembles engines for one protocol with optional per-replica
// wrapping (for adversaries). Byzantine tests use Ed25519 so forgery is
// actually impossible, not just unattempted.
func buildCluster(t *testing.T, params types.Params, proto string,
	wrap func(id types.ReplicaID, eng protocol.Engine, signer *crypto.Signer) protocol.Engine,
) []protocol.Engine {
	t.Helper()
	keyring, signers := crypto.GenerateCluster(crypto.Ed25519(), params.N, 99)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]protocol.Engine, params.N)
	for i := 0; i < params.N; i++ {
		id := types.ReplicaID(i)
		var eng protocol.Engine
		switch proto {
		case "banyan":
			eng, err = core.New(core.Config{
				Params: params, Self: id, Keyring: keyring, Signer: signers[i],
				Beacon: bc, Delta: 50 * time.Millisecond,
				Payloads: protocol.PayloadFunc(func(r types.Round) types.Payload {
					return types.SyntheticPayload(512, uint64(r)<<16|uint64(id))
				}),
			})
		case "icc":
			eng, err = icc.New(icc.Config{
				Params: params, Self: id, Keyring: keyring, Signer: signers[i],
				Beacon: bc, Delta: 50 * time.Millisecond,
			})
		default:
			t.Fatalf("unknown protocol %q", proto)
		}
		if err != nil {
			t.Fatal(err)
		}
		if wrap != nil {
			eng = wrap(id, eng, signers[i])
		}
		engines[i] = eng
	}
	return engines
}

// runAdversarial runs a cluster and returns the per-replica commit log.
func runAdversarial(t *testing.T, engines []protocol.Engine, opts simnet.Options,
	d time.Duration, honestFaultsFatal map[types.ReplicaID]bool) *commitLog {
	t.Helper()
	log := newCommitLog()
	hooks := log.hooks()
	base := hooks.OnFault
	hooks.OnFault = func(node types.ReplicaID, at time.Time, err error) {
		if honestFaultsFatal == nil || honestFaultsFatal[node] {
			t.Errorf("safety fault at honest replica %d: %v", node, err)
		}
		base(node, at, err)
	}
	net, err := simnet.New(engines, opts, hooks)
	if err != nil {
		t.Fatal(err)
	}
	net.Run(d)
	return log
}

// TestBanyanEquivocatingLeader: with one equivocating leader (f=1, n=4),
// honest replicas never finalize conflicting blocks and keep making
// progress; the Byzantine replica's rounds may resolve via Condition 2.
func TestBanyanEquivocatingLeader(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	const evil = types.ReplicaID(2)
	engines := buildCluster(t, params, "banyan",
		func(id types.ReplicaID, eng protocol.Engine, signer *crypto.Signer) protocol.Engine {
			if id == evil {
				return byzantine.NewEquivocatingLeader(eng, signer, params.N)
			}
			return eng
		})
	honest := map[types.ReplicaID]bool{0: true, 1: true, 3: true}
	log := runAdversarial(t, engines, simnet.Options{
		Topology: wan.Uniform(4, 10*time.Millisecond),
		Seed:     5,
	}, 20*time.Second, honest)

	log.checkPrefixConsistent(t)
	for id := range honest {
		if got := len(log.chains[id]); got < 100 {
			t.Errorf("honest replica %d committed only %d blocks under equivocation", id, got)
		}
	}
	// The equivocator actually equivocated: at least one of its rounds has
	// two blocks stored at an honest replica.
	tree := engines[0].(*core.Engine).Tree()
	sawEquivocation := false
	for round := types.Round(1); round < 40 && !sawEquivocation; round++ {
		if beacon.Leader(mustRR(t, 4), round) == evil && len(tree.AtRound(round)) > 1 {
			sawEquivocation = true
		}
	}
	if !sawEquivocation {
		t.Log("note: equivocation not observed in replica 0's tree (may have been pruned)")
	}
}

func mustRR(t *testing.T, n int) beacon.Beacon {
	t.Helper()
	b, err := beacon.NewRoundRobin(n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestICCEquivocatingLeader: the ICC baseline also survives equivocation.
func TestICCEquivocatingLeader(t *testing.T) {
	params := types.Params{N: 4, F: 1}
	const evil = types.ReplicaID(1)
	engines := buildCluster(t, params, "icc",
		func(id types.ReplicaID, eng protocol.Engine, signer *crypto.Signer) protocol.Engine {
			if id == evil {
				return byzantine.NewEquivocatingLeader(eng, signer, params.N)
			}
			return eng
		})
	honest := map[types.ReplicaID]bool{0: true, 2: true, 3: true}
	log := runAdversarial(t, engines, simnet.Options{
		Topology: wan.Uniform(4, 10*time.Millisecond),
		Seed:     6,
	}, 20*time.Second, honest)
	log.checkPrefixConsistent(t)
	for id := range honest {
		if got := len(log.chains[id]); got < 100 {
			t.Errorf("honest replica %d committed only %d blocks", id, got)
		}
	}
}

// TestBanyanVoteWithholders: with p+1 replicas withholding fast votes, the
// fast path goes dark but the integrated slow path carries every round —
// the "no switching cost" property (Figure 2).
func TestBanyanVoteWithholders(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	withholders := map[types.ReplicaID]bool{2: true, 3: true} // p+1 = 2
	engines := buildCluster(t, params, "banyan",
		func(id types.ReplicaID, eng protocol.Engine, signer *crypto.Signer) protocol.Engine {
			if withholders[id] {
				return byzantine.NewVoteWithholder(eng)
			}
			return eng
		})
	log := runAdversarial(t, engines, simnet.Options{
		Topology: wan.Uniform(4, 10*time.Millisecond),
		Seed:     7,
	}, 30*time.Second, map[types.ReplicaID]bool{0: true, 1: true})
	log.checkPrefixConsistent(t)

	m := engines[0].Metrics()
	if m["final_fast"] != 0 {
		t.Errorf("fast path fired %d times with %d withholders (> p)", m["final_fast"], len(withholders))
	}
	if m["blocks_commit"] < 50 {
		t.Errorf("slow path committed only %d blocks", m["blocks_commit"])
	}
}

// TestBanyanMuteReplica: a replica that goes mute mid-run (mute fault, not
// crash: it keeps receiving) does not stop the cluster, and the fast path
// continues when the mute count stays within p... here p=1 and one mute,
// so fast finalization keeps firing for the remaining replicas.
func TestBanyanMuteReplica(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	engines := buildCluster(t, params, "banyan",
		func(id types.ReplicaID, eng protocol.Engine, signer *crypto.Signer) protocol.Engine {
			if id == 3 {
				return byzantine.NewSilent(eng, simnet.Epoch.Add(5*time.Second))
			}
			return eng
		})
	log := runAdversarial(t, engines, simnet.Options{
		Topology: wan.Uniform(4, 10*time.Millisecond),
		Seed:     8,
	}, 25*time.Second, map[types.ReplicaID]bool{0: true, 1: true, 2: true})
	log.checkPrefixConsistent(t)

	m := engines[0].Metrics()
	if m["blocks_commit"] < 100 {
		t.Errorf("committed only %d blocks with one mute replica", m["blocks_commit"])
	}
	if m["final_fast"] < m["final_slow"] {
		t.Errorf("fast path should dominate with exactly p mute replicas: fast=%d slow=%d",
			m["final_fast"], m["final_slow"])
	}
}

// TestBanyanCrashF: crashing f replicas (the paper's crash-fault model,
// Figure 6d) leaves a live, safe cluster; rounds led by crashed replicas
// recover via the rank-1 proposal after the 2Δ timeout.
func TestBanyanCrashF(t *testing.T) {
	params := types.Params{N: 7, F: 2, P: 1}
	engines := makeBanyanEngines(t, params, 50*time.Millisecond, 512, false)
	log := newCommitLog()
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(7, 10*time.Millisecond),
		Seed:     9,
	}, log.hooks())
	if err != nil {
		t.Fatal(err)
	}
	net.CrashAt(1, 2*time.Second)
	net.CrashAt(4, 2*time.Second)
	net.Run(30 * time.Second)

	if len(log.faults) > 0 {
		t.Fatalf("faults: %v", log.faults)
	}
	log.checkPrefixConsistent(t)
	m := engines[0].Metrics()
	if m["blocks_commit"] < 100 {
		t.Errorf("committed only %d blocks after crashing f replicas", m["blocks_commit"])
	}
}

// TestBanyanPartitionHeal: a minority partition stalls no one; after the
// partition heals, the isolated replica catches up to a consistent chain.
func TestBanyanPartitionHeal(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	engines := makeBanyanEngines(t, params, 50*time.Millisecond, 512, false)
	cut := func(at time.Time) bool {
		from := simnet.Epoch.Add(3 * time.Second)
		to := simnet.Epoch.Add(8 * time.Second)
		return !at.Before(from) && at.Before(to)
	}
	log := newCommitLog()
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(4, 10*time.Millisecond),
		Seed:     10,
		Filter: func(from, to types.ReplicaID, _ types.Message, at time.Time) bool {
			if (from == 3 || to == 3) && cut(at) {
				return false
			}
			return true
		},
	}, log.hooks())
	if err != nil {
		t.Fatal(err)
	}
	net.Run(30 * time.Second)

	if len(log.faults) > 0 {
		t.Fatalf("faults: %v", log.faults)
	}
	log.checkPrefixConsistent(t)
	// The partitioned replica must have caught up to within a few rounds
	// of the majority.
	major := engines[0].(*core.Engine).Tree().FinalizedRound()
	minor := engines[3].(*core.Engine).Tree().FinalizedRound()
	if minor+20 < major {
		t.Errorf("partitioned replica at round %d, majority at %d: did not catch up", minor, major)
	}
	if major < 100 {
		t.Errorf("majority stalled during partition: round %d", major)
	}
}

// TestBanyanMessageReordering: with per-link FIFO disabled and heavy
// jitter (adversarial scheduling), safety and liveness still hold —
// Remark 8.3 only claims latency, not correctness, depends on ordering.
func TestBanyanMessageReordering(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	engines := makeBanyanEngines(t, params, 50*time.Millisecond, 512, false)
	log := newCommitLog()
	net, err := simnet.New(engines, simnet.Options{
		Topology:        wan.Uniform(4, 10*time.Millisecond),
		Seed:            11,
		JitterFrac:      2.0, // up to 3x delay spread
		AllowReordering: true,
	}, log.hooks())
	if err != nil {
		t.Fatal(err)
	}
	net.Run(20 * time.Second)
	if len(log.faults) > 0 {
		t.Fatalf("faults: %v", log.faults)
	}
	log.checkPrefixConsistent(t)
	if m := engines[0].Metrics(); m["blocks_commit"] < 50 {
		t.Errorf("committed only %d blocks under reordering", m["blocks_commit"])
	}
}

// TestExperimentDeterminism: the full harness is reproducible — identical
// seeds give identical measurements.
func TestExperimentDeterminism(t *testing.T) {
	run := func() (time.Duration, int64) {
		params := types.Params{N: 4, F: 1, P: 1}
		engines := makeBanyanEngines(t, params, 60*time.Millisecond, 4096, false)
		var commits int64
		var last time.Time
		net, err := simnet.New(engines, simnet.Options{
			Topology:   wan.Uniform(4, 25*time.Millisecond),
			Seed:       42,
			JitterFrac: 0.2,
		}, simnet.Hooks{
			OnCommit: func(node types.ReplicaID, at time.Time, c protocol.Commit) {
				if node == 0 {
					commits += int64(len(c.Blocks))
					last = at
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		net.Run(10 * time.Second)
		return last.Sub(simnet.Epoch), commits
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("non-deterministic: (%v, %d) vs (%v, %d)", t1, c1, t2, c2)
	}
}

// TestICCPartitionHeal exercises the ICC engine's catch-up subprotocol the
// same way as the Banyan test.
func TestICCPartitionHeal(t *testing.T) {
	params := types.Params{N: 4, F: 1}
	engines := makeICCEngines(t, params, 50*time.Millisecond, 512)
	cut := func(at time.Time) bool {
		from := simnet.Epoch.Add(3 * time.Second)
		to := simnet.Epoch.Add(8 * time.Second)
		return !at.Before(from) && at.Before(to)
	}
	log := newCommitLog()
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(4, 10*time.Millisecond),
		Seed:     12,
		Filter: func(from, to types.ReplicaID, _ types.Message, at time.Time) bool {
			if (from == 3 || to == 3) && cut(at) {
				return false
			}
			return true
		},
	}, log.hooks())
	if err != nil {
		t.Fatal(err)
	}
	net.Run(30 * time.Second)

	if len(log.faults) > 0 {
		t.Fatalf("faults: %v", log.faults)
	}
	log.checkPrefixConsistent(t)
	major := engines[0].(*icc.Engine).Tree().FinalizedRound()
	minor := engines[3].(*icc.Engine).Tree().FinalizedRound()
	if minor+20 < major {
		t.Errorf("partitioned replica at round %d, majority at %d: did not catch up", minor, major)
	}
}

// TestBanyanColdReplicaJoins: a replica that is unreachable from the very
// start (it sees nothing of rounds 1..k) joins late purely through
// catch-up and ends consistent.
func TestBanyanColdReplicaJoins(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	engines := makeBanyanEngines(t, params, 50*time.Millisecond, 512, false)
	log := newCommitLog()
	healAt := simnet.Epoch.Add(10 * time.Second)
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(4, 10*time.Millisecond),
		Seed:     13,
		Filter: func(from, to types.ReplicaID, _ types.Message, at time.Time) bool {
			return !((from == 2 || to == 2) && at.Before(healAt))
		},
	}, log.hooks())
	if err != nil {
		t.Fatal(err)
	}
	net.Run(25 * time.Second)

	if len(log.faults) > 0 {
		t.Fatalf("faults: %v", log.faults)
	}
	log.checkPrefixConsistent(t)
	major := engines[0].(*core.Engine).Tree().FinalizedRound()
	cold := engines[2].(*core.Engine).Tree().FinalizedRound()
	if cold+20 < major {
		t.Errorf("cold replica at round %d, majority at %d", cold, major)
	}
}
