package hotstuff

import (
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/crypto"
	"banyan/internal/protocol"
	"banyan/internal/simnet"
	"banyan/internal/types"
	"banyan/internal/wan"
)

func cluster(t *testing.T, n int, timeout time.Duration) ([]protocol.Engine, *crypto.Keyring) {
	t.Helper()
	params := types.Params{N: n, F: (n - 1) / 3}
	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), n, 3)
	bc, err := beacon.NewRoundRobin(n)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]protocol.Engine, n)
	for i := 0; i < n; i++ {
		eng, err := New(Config{
			Params:      params,
			Self:        types.ReplicaID(i),
			Keyring:     keyring,
			Signer:      signers[i],
			Beacon:      bc,
			ViewTimeout: timeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	return engines, keyring
}

// TestThreeChainCommit: on a clean network, block of view v commits once
// views v+1, v+2 form QCs and the chain reaches the proposer — and every
// commit is a direct 3-chain.
func TestThreeChainCommit(t *testing.T) {
	engines, _ := cluster(t, 4, 5*time.Second)
	var commits []protocol.Commit
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(4, 10*time.Millisecond),
	}, simnet.Hooks{
		OnCommit: func(node types.ReplicaID, _ time.Time, c protocol.Commit) {
			if node == 0 {
				commits = append(commits, c)
			}
		},
		OnFault: func(node types.ReplicaID, _ time.Time, err error) {
			t.Errorf("fault at %d: %v", node, err)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(3 * time.Second)
	if len(commits) < 10 {
		t.Fatalf("only %d commits in 3s", len(commits))
	}
	// Views are consecutive on the happy path; commits arrive in order.
	var lastRound types.Round
	for _, c := range commits {
		for _, b := range c.Blocks {
			if b.Round <= lastRound {
				t.Fatalf("commit order violated: %d after %d", b.Round, lastRound)
			}
			lastRound = b.Round
		}
	}
	for i, e := range engines {
		m := e.Metrics()
		if m["timeouts"] > 1 {
			t.Errorf("replica %d: %d pacemaker timeouts on a clean network", i, m["timeouts"])
		}
	}
}

// TestLeaderCrashTimeout: with one replica crashed, the pacemaker times
// out its views and the next leader takes over; progress resumes.
//
// n = 5 rather than 4: with n = 4 and round-robin rotation, the crashed
// replica is the vote collector for every view 4k+4 (QC(v) forms at
// leader(v+1)), so no three consecutive views ever complete a 3-chain and
// chained HotStuff commits nothing — a known alignment pathology of the
// basic chained protocol under a crashed leader (Jolteon/Fast-HotStuff
// fix it with timeout certificates). At n = 5 the alive-leader window is
// long enough and commits flow between crash views.
func TestLeaderCrashTimeout(t *testing.T) {
	engines, _ := cluster(t, 5, 200*time.Millisecond)
	commitCount := make(map[types.ReplicaID]int)
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(5, 10*time.Millisecond),
	}, simnet.Hooks{
		OnCommit: func(node types.ReplicaID, _ time.Time, c protocol.Commit) {
			commitCount[node] += len(c.Blocks)
		},
		OnFault: func(node types.ReplicaID, _ time.Time, err error) {
			t.Errorf("fault at %d: %v", node, err)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Crash the leader of view 1 (round-robin: replica 1) from the start.
	net.CrashAt(1, 0)
	net.Run(5 * time.Second)
	for id, count := range commitCount {
		if id == 1 {
			continue
		}
		if count < 5 {
			t.Errorf("replica %d committed only %d blocks with a crashed leader", id, count)
		}
	}
	m := engines[0].Metrics()
	if m["timeouts"] == 0 {
		t.Error("no pacemaker timeouts despite a crashed leader")
	}
}

// TestSafetyRuleRejectsStaleView: a proposal for a view at or below the
// last voted view gets no vote.
func TestSafetyRuleRejectsStaleView(t *testing.T) {
	engines, keyring := cluster(t, 4, 5*time.Second)
	_ = keyring
	e := engines[3].(*Engine)
	now := time.Unix(0, 0)
	e.Start(now)

	_, signers := crypto.GenerateCluster(crypto.HMAC(), 4, 3)
	bc, _ := beacon.NewRoundRobin(4)
	leader1 := beacon.Leader(bc, 1)
	b := types.NewBlock(1, leader1, 0, types.Genesis().ID(), types.BytesPayload([]byte{1}))
	if err := signers[leader1].SignBlock(b); err != nil {
		t.Fatal(err)
	}
	acts := e.HandleMessage(leader1, &types.Proposal{Block: b}, now)
	if countVotes(acts) != 1 {
		t.Fatalf("first proposal: %d votes, want 1", countVotes(acts))
	}
	// A second (equivocating) view-1 proposal must not be voted.
	b2 := types.NewBlock(1, leader1, 0, types.Genesis().ID(), types.BytesPayload([]byte{2}))
	if err := signers[leader1].SignBlock(b2); err != nil {
		t.Fatal(err)
	}
	acts = e.HandleMessage(leader1, &types.Proposal{Block: b2}, now)
	if countVotes(acts) != 0 {
		t.Fatal("voted twice in one view")
	}
}

func countVotes(acts []protocol.Action) int {
	n := 0
	for _, a := range acts {
		switch m := a.(type) {
		case protocol.Send:
			if vm, ok := m.Msg.(*types.VoteMsg); ok {
				n += len(vm.Votes)
			}
		case protocol.Broadcast:
			if vm, ok := m.Msg.(*types.VoteMsg); ok {
				n += len(vm.Votes)
			}
		}
	}
	return n
}

// TestRejectsNonLeaderProposal: blocks from a replica that does not lead
// the view are rejected.
func TestRejectsNonLeaderProposal(t *testing.T) {
	engines, _ := cluster(t, 4, 5*time.Second)
	e := engines[3].(*Engine)
	now := time.Unix(0, 0)
	e.Start(now)
	_, signers := crypto.GenerateCluster(crypto.HMAC(), 4, 3)
	bc, _ := beacon.NewRoundRobin(4)
	notLeader := beacon.Leader(bc, 2) // leads view 2, not view 1
	b := types.NewBlock(1, notLeader, 0, types.Genesis().ID(), types.Payload{})
	if err := signers[notLeader].SignBlock(b); err != nil {
		t.Fatal(err)
	}
	e.HandleMessage(notLeader, &types.Proposal{Block: b}, now)
	if e.Metrics()["rejected"] != 1 {
		t.Fatalf("rejected = %d, want 1", e.Metrics()["rejected"])
	}
}
