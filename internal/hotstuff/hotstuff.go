// Package hotstuff implements chained (event-driven) HotStuff with a
// rotating-leader pacemaker — the baseline the paper inherits from the
// Bamboo framework (Yin et al., PODC 2019; Gai et al., ICDCS 2021).
//
// Views carry one block each: the view's leader proposes a block justified
// by the highest quorum certificate (QC) it knows, replicas vote to the
// *next* leader, and 2f+1 votes form the QC that justifies the next block.
// A block commits when it heads a three-chain of blocks with consecutive
// views and direct parent links (the 3-chain commit rule), so the proposer
// observes finalization of its block roughly seven message delays after
// proposing — the latency gap to ICC/Banyan that Figure 6 quantifies.
//
// The pacemaker rotates leaders round-robin; on view timeout replicas send
// a NewView with their highest QC to the next leader, which proposes after
// a quorum of NewViews.
package hotstuff

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/blocktree"
	"banyan/internal/crypto"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Config assembles everything a HotStuff engine instance needs.
type Config struct {
	// Params carries n and f; quorums are 2f+1 (n >= 3f+1).
	Params types.Params
	// Self is this replica's ID.
	Self types.ReplicaID
	// Keyring holds every replica's public key.
	Keyring *crypto.Keyring
	// Signer signs this replica's blocks and votes.
	Signer *crypto.Signer
	// Beacon rotates leaders (rank-0 replica of a view is its leader).
	Beacon beacon.Beacon
	// Payloads supplies block payloads when this replica leads.
	Payloads protocol.PayloadSource
	// ViewTimeout is the pacemaker timeout for a view without progress.
	ViewTimeout time.Duration
}

func (c *Config) validate() error {
	if c.Params.N < 3*c.Params.F+1 {
		return fmt.Errorf("hotstuff: n = %d below 3f+1 for f = %d", c.Params.N, c.Params.F)
	}
	if c.Keyring == nil || c.Signer == nil {
		return errors.New("hotstuff: keyring and signer are required")
	}
	if c.Beacon == nil || c.Beacon.N() != c.Params.N {
		return errors.New("hotstuff: beacon must permute exactly n replicas")
	}
	if int(c.Self) >= c.Params.N {
		return fmt.Errorf("hotstuff: self id %d out of range (n=%d)", c.Self, c.Params.N)
	}
	if c.ViewTimeout <= 0 {
		return errors.New("hotstuff: ViewTimeout must be positive")
	}
	if c.Payloads == nil {
		c.Payloads = protocol.EmptyPayloads
	}
	return nil
}

// quorum is 2f+1.
func (c *Config) quorum() int { return 2*c.Params.F + 1 }

// Engine is the chained-HotStuff state machine for one replica.
type Engine struct {
	cfg  Config
	tree *blocktree.Tree

	view      types.Round // current view
	lastVoted types.Round // highest view voted in

	// highQC is the highest quorum certificate known; nil stands for the
	// implicit QC of the genesis block.
	highQC *types.Certificate
	// locked is the block of the highest 2-chain head seen (lockedQC.node);
	// zero value means genesis.
	locked     types.BlockID
	lockedView types.Round

	// votes collects view votes by block: view -> block -> voter -> sig.
	votes map[types.Round]map[types.BlockID]map[types.ReplicaID][]byte
	// newViews collects pacemaker messages per target view.
	newViews map[types.Round]map[types.ReplicaID]*types.NewView
	// proposedIn marks views in which this replica already proposed.
	proposedIn map[types.Round]bool
	// timerSet marks views whose timeout has been scheduled.
	timerSet map[types.Round]bool

	stopped bool
	fault   error

	met struct {
		proposals    int64
		votesSent    int64
		newViews     int64
		timeouts     int64
		qcFormed     int64
		commits      int64
		blocksCommit int64
		bytesCommit  int64
		rejected     int64
	}
}

var _ protocol.Engine = (*Engine)(nil)

// New builds a HotStuff engine from the configuration.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:        cfg,
		tree:       blocktree.New(),
		votes:      make(map[types.Round]map[types.BlockID]map[types.ReplicaID][]byte),
		newViews:   make(map[types.Round]map[types.ReplicaID]*types.NewView),
		proposedIn: make(map[types.Round]bool),
		timerSet:   make(map[types.Round]bool),
	}
	e.locked = e.tree.Genesis().ID()
	return e, nil
}

// ID implements protocol.Engine.
func (e *Engine) ID() types.ReplicaID { return e.cfg.Self }

// Protocol implements protocol.Engine.
func (e *Engine) Protocol() string { return "hotstuff" }

// View returns the current view (tests/harness).
func (e *Engine) View() types.Round { return e.view }

// Tree exposes the block tree (tests/harness).
func (e *Engine) Tree() *blocktree.Tree { return e.tree }

// Start implements protocol.Engine: enter view 1.
func (e *Engine) Start(now time.Time) []protocol.Action {
	var acts []protocol.Action
	acts = e.enterView(1, now, acts)
	return acts
}

// HandleMessage implements protocol.Engine.
func (e *Engine) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	if e.stopped || int(from) >= e.cfg.Params.N {
		return nil
	}
	var acts []protocol.Action
	switch m := msg.(type) {
	case *types.Proposal:
		acts = e.onProposal(m, now, acts)
	case *types.VoteMsg:
		for _, v := range m.Votes {
			acts = e.onVote(v, now, acts)
		}
	case *types.NewView:
		acts = e.onNewView(m, now, acts)
	default:
		e.met.rejected++
	}
	return e.drainFault(acts)
}

// HandleTimer implements protocol.Engine: pacemaker timeout.
func (e *Engine) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	if e.stopped || id.Kind != protocol.TimerView || id.Round != e.view {
		return nil
	}
	e.met.timeouts++
	// Move to the next view and tell its leader with our highest QC.
	var acts []protocol.Action
	next := e.view + 1
	nv := e.makeNewView(next)
	leader := beacon.Leader(e.cfg.Beacon, next)
	if leader == e.cfg.Self {
		e.recordNewView(nv)
	} else {
		acts = append(acts, protocol.Send{To: leader, Msg: nv})
	}
	e.met.newViews++
	acts = e.enterView(next, now, acts)
	return e.drainFault(acts)
}

// Metrics implements protocol.Engine.
func (e *Engine) Metrics() map[string]int64 {
	return map[string]int64{
		"proposals":     e.met.proposals,
		"votes_sent":    e.met.votesSent,
		"new_views":     e.met.newViews,
		"timeouts":      e.met.timeouts,
		"qc_formed":     e.met.qcFormed,
		"commits":       e.met.commits,
		"blocks_commit": e.met.blocksCommit,
		"bytes_commit":  e.met.bytesCommit,
		"rejected":      e.met.rejected,
		"rounds":        int64(e.view),
	}
}

// ---------------------------------------------------------------------------

// enterView advances to the given view, arming its pacemaker timer and
// proposing if this replica leads it and already holds the justification.
func (e *Engine) enterView(v types.Round, now time.Time, acts []protocol.Action) []protocol.Action {
	if v > e.view {
		e.view = v
	}
	if !e.timerSet[e.view] {
		e.timerSet[e.view] = true
		acts = append(acts, protocol.SetTimer{
			ID: protocol.TimerID{Round: e.view, Kind: protocol.TimerView},
			At: now.Add(e.cfg.ViewTimeout),
		})
	}
	e.prune()
	return e.tryPropose(now, acts)
}

// prune bounds per-view book-keeping and the block store.
func (e *Engine) prune() {
	const keep = 128
	if e.view <= keep {
		return
	}
	floor := e.view - keep
	for v := range e.votes {
		if v < floor {
			delete(e.votes, v)
		}
	}
	for v := range e.newViews {
		if v < floor {
			delete(e.newViews, v)
		}
	}
	for v := range e.proposedIn {
		if v < floor {
			delete(e.proposedIn, v)
			delete(e.timerSet, v)
		}
	}
	if fin := e.tree.FinalizedRound(); fin > keep {
		e.tree.Prune(fin - keep)
	}
}

// qcView returns the view certified by a QC (0 for the genesis sentinel).
func qcView(qc *types.Certificate) types.Round {
	if qc == nil {
		return 0
	}
	return qc.Round
}

// qcBlock returns the block a QC certifies (genesis for the nil sentinel).
func (e *Engine) qcBlock(qc *types.Certificate) types.BlockID {
	if qc == nil {
		return e.tree.Genesis().ID()
	}
	return qc.Block
}

// tryPropose proposes in the current view if this replica is its leader
// and either holds a QC for the previous view (happy path) or a quorum of
// NewView messages (after timeouts).
func (e *Engine) tryPropose(now time.Time, acts []protocol.Action) []protocol.Action {
	v := e.view
	if e.proposedIn[v] || beacon.Leader(e.cfg.Beacon, v) != e.cfg.Self {
		return acts
	}
	ready := qcView(e.highQC) == v-1 || len(e.newViews[v]) >= e.cfg.quorum()
	if !ready {
		return acts
	}
	parent := e.qcBlock(e.highQC)
	payload := e.cfg.Payloads.NextPayload(v)
	b := types.NewBlock(v, e.cfg.Self, 0, parent, payload)
	if err := e.cfg.Signer.SignBlock(b); err != nil {
		e.stop(fmt.Errorf("hotstuff: signing own block: %w", err))
		return acts
	}
	e.proposedIn[v] = true
	e.tree.Add(b)
	e.met.proposals++
	prop := &types.Proposal{Block: b, ParentNotarization: e.highQC}
	acts = append(acts, protocol.Broadcast{Msg: prop})
	// Process our own proposal: vote and update chains.
	return e.onProposal(prop, now, acts)
}

// onProposal validates a proposal, applies the chained-HotStuff update
// rule, and votes if the safety rule allows.
func (e *Engine) onProposal(m *types.Proposal, now time.Time, acts []protocol.Action) []protocol.Action {
	b := m.Block
	if b == nil || b.Round < 1 || int(b.Proposer) >= e.cfg.Params.N {
		e.met.rejected++
		return acts
	}
	// The proposer must lead the block's view.
	if beacon.Leader(e.cfg.Beacon, b.Round) != b.Proposer || b.Rank != 0 {
		e.met.rejected++
		return acts
	}
	if b.Proposer != e.cfg.Self {
		if err := crypto.VerifyBlock(e.cfg.Keyring, b); err != nil {
			e.met.rejected++
			return acts
		}
	}
	qc := m.ParentNotarization
	if qc != nil {
		if err := e.checkQC(qc); err != nil {
			e.met.rejected++
			return acts
		}
	}
	// The block must extend the QC's block.
	if b.Parent != e.qcBlock(qc) {
		e.met.rejected++
		return acts
	}
	e.tree.Add(b)
	acts = e.update(qc, acts)

	// Safety rule: vote once per view, for blocks that extend the locked
	// block or carry a higher justify than the lock.
	if b.Round <= e.lastVoted {
		return acts
	}
	safe := e.extendsLocked(b) || qcView(qc) > e.lockedView
	if !safe {
		return acts
	}
	e.lastVoted = b.Round
	vote := e.cfg.Signer.SignVote(types.VoteNotarize, b.Round, b.ID())
	next := beacon.Leader(e.cfg.Beacon, b.Round+1)
	e.met.votesSent++
	if next == e.cfg.Self {
		acts = e.onVote(vote, now, acts)
	} else {
		acts = append(acts, protocol.Send{To: next, Msg: &types.VoteMsg{Votes: []types.Vote{vote}}})
	}
	// Seeing a valid proposal for view v implies a QC chain justifying
	// view v; follow the proposer into the view.
	if b.Round > e.view {
		acts = e.enterView(b.Round, now, acts)
	}
	return acts
}

// extendsLocked walks b's ancestry to check it extends the locked block.
func (e *Engine) extendsLocked(b *types.Block) bool {
	if e.locked == e.tree.Genesis().ID() {
		return true
	}
	cur := b
	for {
		if cur.Parent == e.locked {
			return true
		}
		parent, ok := e.tree.Block(cur.Parent)
		if !ok || parent.Round <= e.lockedView {
			return false
		}
		cur = parent
	}
}

// update is the chained-HotStuff three-phase update (Yin et al.,
// Algorithm 5): advance highQC, lock on the 2-chain head, commit the
// 3-chain head when parent links are direct.
func (e *Engine) update(qc *types.Certificate, acts []protocol.Action) []protocol.Action {
	if qc == nil {
		return acts
	}
	if qcView(qc) > qcView(e.highQC) {
		e.highQC = qc
	}
	b2, ok := e.tree.Block(qc.Block) // head of 1-chain
	if !ok {
		return acts
	}
	b1, ok := e.tree.Block(b2.Parent) // head of 2-chain
	if !ok || b1.IsGenesis() {
		return acts
	}
	if b1.Round > e.lockedView {
		e.locked = b1.ID()
		e.lockedView = b1.Round
	}
	b0, ok := e.tree.Block(b1.Parent) // head of 3-chain
	if !ok || b0.IsGenesis() {
		return acts
	}
	// Commit rule: direct parents with consecutive views.
	if b2.Round == b1.Round+1 && b1.Round == b0.Round+1 {
		acts = e.commit(b0, acts)
	}
	return acts
}

func (e *Engine) commit(b *types.Block, acts []protocol.Action) []protocol.Action {
	if e.tree.IsFinalized(b.ID()) {
		return acts
	}
	chain, err := e.tree.Finalize(b.ID())
	switch {
	case err == nil:
		if len(chain) > 0 {
			for _, blk := range chain {
				e.met.blocksCommit++
				e.met.bytesCommit += int64(blk.Payload.Size())
			}
			e.met.commits++
			acts = append(acts, protocol.Commit{Blocks: chain, Explicit: protocol.FinalizeSlow})
		}
	case errors.Is(err, blocktree.ErrMissingAncestor):
		// Blocks arrive before ancestors only under heavy reordering; the
		// next commit attempt retries.
	default:
		e.stop(err)
	}
	return acts
}

// onVote collects view votes; the leader of the next view forms a QC at
// quorum and proposes immediately (optimistic responsiveness).
func (e *Engine) onVote(v types.Vote, now time.Time, acts []protocol.Action) []protocol.Action {
	if v.Kind != types.VoteNotarize || v.Round < 1 || int(v.Voter) >= e.cfg.Params.N {
		e.met.rejected++
		return acts
	}
	// Only the leader of view v+1 aggregates votes of view v.
	if beacon.Leader(e.cfg.Beacon, v.Round+1) != e.cfg.Self {
		return acts
	}
	byBlock, ok := e.votes[v.Round]
	if !ok {
		byBlock = make(map[types.BlockID]map[types.ReplicaID][]byte)
		e.votes[v.Round] = byBlock
	}
	if _, dup := byBlock[v.Block][v.Voter]; dup {
		return acts
	}
	if v.Voter != e.cfg.Self {
		if err := crypto.VerifyVote(e.cfg.Keyring, v); err != nil {
			e.met.rejected++
			return acts
		}
	}
	m, ok := byBlock[v.Block]
	if !ok {
		m = make(map[types.ReplicaID][]byte)
		byBlock[v.Block] = m
	}
	m[v.Voter] = v.Signature
	if len(m) != e.cfg.quorum() {
		// Below quorum, or the QC for this block was already formed when
		// the quorum-th vote arrived.
		return acts
	}
	votes := make([]types.Vote, 0, len(m))
	for voter, sig := range m {
		votes = append(votes, types.Vote{
			Kind: types.VoteNotarize, Round: v.Round, Block: v.Block, Voter: voter, Signature: sig,
		})
	}
	qc, err := types.NewCertificate(types.CertNotarization, v.Round, v.Block, votes)
	if err != nil {
		return acts
	}
	e.met.qcFormed++
	e.tree.MarkNotarized(v.Block)
	acts = e.update(qc, acts)
	return e.enterView(v.Round+1, now, acts)
}

// onNewView collects pacemaker messages for views this replica leads.
func (e *Engine) onNewView(m *types.NewView, now time.Time, acts []protocol.Action) []protocol.Action {
	if m.Round < 1 || int(m.Sender) >= e.cfg.Params.N {
		e.met.rejected++
		return acts
	}
	if beacon.Leader(e.cfg.Beacon, m.Round) != e.cfg.Self {
		return acts
	}
	if !e.cfg.Keyring.Verify(m.Sender, newViewDigest(m.Round, m.Sender), m.Signature) {
		e.met.rejected++
		return acts
	}
	if m.HighQC != nil {
		if err := e.checkQC(m.HighQC); err != nil {
			e.met.rejected++
			return acts
		}
		acts = e.update(m.HighQC, acts)
	}
	e.recordNewView(m)
	if m.Round > e.view && len(e.newViews[m.Round]) >= e.cfg.quorum() {
		acts = e.enterView(m.Round, now, acts)
	} else {
		acts = e.tryPropose(now, acts)
	}
	return acts
}

func (e *Engine) recordNewView(m *types.NewView) {
	bySender, ok := e.newViews[m.Round]
	if !ok {
		bySender = make(map[types.ReplicaID]*types.NewView)
		e.newViews[m.Round] = bySender
	}
	bySender[m.Sender] = m
}

func (e *Engine) makeNewView(target types.Round) *types.NewView {
	nv := &types.NewView{Round: target, Sender: e.cfg.Self, HighQC: e.highQC}
	nv.Signature = e.cfg.Signer.Sign(newViewDigest(target, e.cfg.Self))
	return nv
}

func newViewDigest(round types.Round, sender types.ReplicaID) [32]byte {
	var buf [10]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(round))
	binary.LittleEndian.PutUint16(buf[8:10], uint16(sender))
	h := sha256.New()
	h.Write([]byte("banyan/hotstuff/newview/v1"))
	h.Write(buf[:])
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// checkQC verifies a QC once and caches acceptance via the block tree's
// notarization mark.
func (e *Engine) checkQC(qc *types.Certificate) error {
	if qc.Kind != types.CertNotarization {
		return fmt.Errorf("hotstuff: unexpected certificate kind %v", qc.Kind)
	}
	if e.tree.IsNotarized(qc.Block) {
		return nil
	}
	if err := crypto.VerifyCert(e.cfg.Keyring, qc, e.cfg.quorum()); err != nil {
		return err
	}
	e.tree.MarkNotarized(qc.Block)
	return nil
}

func (e *Engine) drainFault(acts []protocol.Action) []protocol.Action {
	if e.stopped && e.fault != nil {
		acts = append(acts, protocol.SafetyFault{Err: e.fault})
		e.fault = nil
	}
	return acts
}

func (e *Engine) stop(err error) {
	if !e.stopped {
		e.stopped = true
		e.fault = err
	}
}
