package wal

import (
	"fmt"
	"time"

	"banyan/internal/membership"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Replayer is the recovery contract an engine opts into. An engine that
// implements it can be rebuilt from a WAL: the Recorder brackets a
// replay with BeginReplay/EndReplay, feeds journaled peer messages back
// through HandleMessage, and hands the replica's own journaled messages
// to ReplayOwn so the engine restores its voting record (which blocks it
// proposed, notarize-voted, fast-voted and finalize-voted for) without
// signing anything new. Between the brackets the engine must not create
// signatures — re-deciding a vote with post-crash timing is how a
// restarted replica equivocates. internal/core implements it.
type Replayer interface {
	protocol.Engine
	// BeginReplay enters replay mode before Start is called.
	BeginReplay()
	// ReplayOwn ingests a message this replica itself sent pre-crash.
	ReplayOwn(msg types.Message, now time.Time) []protocol.Action
	// EndReplay leaves replay mode, re-arms timers for the recovered
	// round, and returns the actions to resume live operation with.
	EndReplay(now time.Time) []protocol.Action
}

// RecorderConfig assembles a Recorder.
type RecorderConfig struct {
	// Dir is the log directory (one per replica).
	Dir string
	// Engine is the wrapped consensus engine. Required. If it implements
	// Replayer, a non-empty log is replayed on Start. An engine that does
	// not is only accepted over an empty log (which it still records):
	// NewRecorder refuses to reopen a non-empty log with it, because
	// starting fresh would silently discard the journaled voting record
	// while the network may still hold the pre-crash votes — the
	// equivocation the WAL exists to prevent.
	Engine protocol.Engine
	// Options tune the log (sync policy, segment size).
	Options Options
	// ContinueOnError keeps externalizing the replica's own signed
	// messages after a WAL write error. By default the Recorder fails
	// safe: once a record carrying this replica's signature cannot be
	// made durable, the message is suppressed — never handed to the
	// transport — and the replica goes silent (crash-faulty, which BFT
	// tolerates) rather than voting without a journal and risking
	// equivocation after a restart. Set ContinueOnError to trade that
	// guarantee for availability on a dying disk; the error still
	// surfaces through Err and the wal_errors metric either way.
	ContinueOnError bool
	// CheckpointEvery, when positive, checkpoints the log each time the
	// finalized round advances by that many rounds: the engine's
	// protocol.Snapshot is journaled, the log rotates, and the segments
	// behind the checkpoint are deleted, bounding restart replay and disk
	// usage by the checkpoint window instead of uptime. Requires an
	// engine that implements protocol.Snapshotter (in addition to
	// Replayer). Zero disables checkpointing; existing checkpoints in the
	// log are still honored on recovery.
	CheckpointEvery types.Round
}

// Recorder wraps a protocol.Engine with a write-ahead log. It is itself
// a protocol.Engine, so every host (node runtime, simulator) can run a
// durable replica without knowing about the WAL: inbound messages are
// journaled before the engine's state transition, the engine's own
// outbound messages before the host's transport sends them, and commit
// decisions as they are emitted.
type Recorder struct {
	eng           protocol.Engine
	log           *Log
	rec           *Recovery
	continueOnErr bool

	// Checkpoint cadence: every checkpointEvery finalized rounds past
	// lastCheckpoint (0 = disabled).
	checkpointEvery types.Round
	lastCheckpoint  types.Round

	replayedRecords int64
	replayedCommits int64
	replaySkipped   int64
	walErrs         int64
	suppressed      int64
}

var _ protocol.Engine = (*Recorder)(nil)

// NewRecorder opens (or reopens) the log and wraps the engine. Recovery
// happens on Start. Reopening a non-empty log with an engine that
// cannot replay it is refused (see RecorderConfig.Engine); the check
// runs against a read-only scan before the log is opened, so a refusal
// leaves the directory untouched — no repair, no fresh segment, and no
// file growth when a supervisor retries the same misconfiguration.
func NewRecorder(cfg RecorderConfig) (*Recorder, error) {
	_, canReplay := cfg.Engine.(Replayer)
	_, canSnapshot := cfg.Engine.(protocol.Snapshotter)
	if !canReplay || !canSnapshot {
		records, checkpoints, err := probeDir(cfg.Dir)
		if err != nil {
			return nil, err
		}
		if records && !canReplay {
			return nil, fmt.Errorf("wal: %s engine cannot replay the records journaled in %s "+
				"(it does not implement wal.Replayer); restarting it fresh would discard the "+
				"pre-crash voting record and risk equivocation — use an empty directory to start over",
				cfg.Engine.Protocol(), cfg.Dir)
		}
		if checkpoints && !canSnapshot {
			return nil, fmt.Errorf("wal: %s engine cannot restore the checkpoint journaled in %s "+
				"(it does not implement protocol.Snapshotter); the records the checkpoint summarizes "+
				"were truncated away, so replaying without it would lose the pre-crash voting record",
				cfg.Engine.Protocol(), cfg.Dir)
		}
	}
	if cfg.CheckpointEvery > 0 && !canSnapshot {
		return nil, fmt.Errorf("wal: CheckpointEvery requires an engine implementing protocol.Snapshotter, %s does not",
			cfg.Engine.Protocol())
	}
	log, rec, err := Open(cfg.Dir, cfg.Options)
	if err != nil {
		return nil, err
	}
	r := &Recorder{eng: cfg.Engine, log: log, rec: rec,
		continueOnErr:   cfg.ContinueOnError,
		checkpointEvery: cfg.CheckpointEvery,
		replaySkipped:   int64(rec.Skipped),
	}
	return r, nil
}

// Recovered reports what Open found on disk (records are released after
// Start consumes them).
func (r *Recorder) Recovered() Recovery { return *r.rec }

// Log exposes the underlying log (for Sync in tests and benchmarks).
func (r *Recorder) Log() *Log { return r.log }

// History forwards to the hosted engine's validator-set history when it
// has one (the Banyan core engine), nil otherwise — so hosts that probe
// engines for epoch state see through the recorder wrapper.
func (r *Recorder) History() *membership.History {
	if h, ok := r.eng.(interface{ History() *membership.History }); ok {
		return h.History()
	}
	return nil
}

// ID implements protocol.Engine.
func (r *Recorder) ID() types.ReplicaID { return r.eng.ID() }

// Protocol implements protocol.Engine.
func (r *Recorder) Protocol() string { return r.eng.Protocol() }

// Start implements protocol.Engine. With an empty log it is a plain
// recorded Start. With journaled records and a Replayer engine it
// replays: peer messages re-enter HandleMessage (signatures re-verified,
// certificates re-formed, commits re-derived), own messages restore the
// voting record, and the host receives the recovered chain as ordinary
// Commit actions followed by the actions that resume live operation.
//
// When the log was checkpointed, replay is two-phase: the checkpoint's
// snapshot re-anchors the block tree and its own-message bundle restores
// the pre-checkpoint voting record (through the same ReplayOwn path as
// journaled records, so signatures re-verify), then only the records
// journaled after the checkpoint replay — O(checkpoint window) work
// regardless of uptime.
func (r *Recorder) Start(now time.Time) []protocol.Action {
	records := r.rec.Records
	r.rec.Records = nil
	rep, canReplay := r.eng.(Replayer)
	if len(records) == 0 || !canReplay {
		return r.record(r.eng.Start(now))
	}
	rep.BeginReplay()
	acts := keepReplayActions(nil, rep.Start(now))
	if records[0].Kind == KindCheckpoint {
		snap := records[0].Snapshot
		// NewRecorder refuses checkpointed logs unless the engine is a
		// Snapshotter, so the assertion cannot fail here.
		sn := r.eng.(protocol.Snapshotter)
		if err := sn.RestoreSnapshot(snap); err != nil {
			// A checkpoint that does not restore is local state corruption
			// beyond repair-by-replay (the summarized records are gone);
			// halting beats rejoining with a hole in the voting record.
			return append(acts, protocol.SafetyFault{
				Err: fmt.Errorf("wal: checkpoint restore failed: %w", err),
			})
		}
		for _, m := range snap.Own {
			acts = keepReplayActions(acts, rep.ReplayOwn(m, now))
		}
		r.lastCheckpoint = snap.FinalizedRound
		r.replayedRecords++
		records = records[1:]
	}
	for _, rec := range records {
		switch rec.Kind {
		case KindInbound:
			acts = keepReplayActions(acts, rep.HandleMessage(rec.From, rec.Msg, now))
		case KindOwn:
			acts = keepReplayActions(acts, rep.ReplayOwn(rec.Msg, now))
		}
		r.replayedRecords++
	}
	for _, a := range acts {
		if c, ok := a.(protocol.Commit); ok {
			r.replayedCommits += int64(len(c.Blocks))
		}
	}
	return append(acts, r.record(rep.EndReplay(now))...)
}

// keepReplayActions filters actions produced during replay: commits are
// re-delivered to the application (which also lost its state), safety
// faults surface, and everything else — sends the cluster has long seen,
// timers for rounds long past — is dropped. Nothing is re-journaled.
func keepReplayActions(acts, produced []protocol.Action) []protocol.Action {
	for _, a := range produced {
		switch a.(type) {
		case protocol.Commit, protocol.SafetyFault:
			acts = append(acts, a)
		}
	}
	return acts
}

// HandleMessage implements protocol.Engine: journal, transition, journal
// the outputs.
func (r *Recorder) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	if loggedInbound(msg) {
		r.append(Record{Kind: KindInbound, From: from, Msg: msg})
	}
	return r.record(r.eng.HandleMessage(from, msg, now))
}

// HandleTimer implements protocol.Engine.
func (r *Recorder) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	return r.record(r.eng.HandleTimer(id, now))
}

// Metrics implements protocol.Engine, adding the WAL's counters to the
// engine's.
func (r *Recorder) Metrics() map[string]int64 {
	m := r.eng.Metrics()
	if m == nil {
		m = make(map[string]int64)
	}
	appends, syncs := r.log.Stats()
	checkpoints, segsRemoved := r.log.CheckpointStats()
	m["wal_appends"] = appends
	m["wal_syncs"] = syncs
	m["wal_replayed_records"] = r.replayedRecords
	m["wal_replayed_blocks"] = r.replayedCommits
	m["wal_replay_skipped"] = r.replaySkipped
	m["wal_errors"] = r.walErrs
	m["wal_suppressed_sends"] = r.suppressed
	m["wal_checkpoints"] = checkpoints
	m["wal_segments_removed"] = segsRemoved
	return m
}

// Sync forces the buffered group to disk.
func (r *Recorder) Sync() error { return r.log.Sync() }

// Close flushes and closes the log (graceful shutdown).
func (r *Recorder) Close() error { return r.log.Close() }

// Crash abandons the unsynced tail and closes the log (simulated crash).
func (r *Recorder) Crash() { r.log.Crash() }

// record journals the engine's outputs: own messages before the host
// sends them (the node applies actions after this returns, and — unless
// SyncPolicy.NoForceOwn — the group is forced to disk before any
// own-signature message is released, the classic force-log-before-
// externalize rule), commits as decisions. If an own record cannot be
// made durable — the append or the forced sync fails — the own-signature
// messages of the batch are dropped from the returned actions (unless
// ContinueOnError): a vote the journal never saw must not reach the
// network, or a restart could re-decide it differently and equivocate.
// Going silent is ordinary crash-fault behavior the protocol tolerates.
func (r *Recorder) record(acts []protocol.Action) []protocol.Action {
	ownAppended, ownDurable := false, true
	var commitTip types.Round
	for _, a := range acts {
		switch act := a.(type) {
		case protocol.Broadcast:
			if loggedOwn(act.Msg) {
				ownDurable = r.appendOwn(act.Msg) && ownDurable
				ownAppended = true
			}
		case protocol.Send:
			if loggedOwn(act.Msg) {
				ownDurable = r.appendOwn(act.Msg) && ownDurable
				ownAppended = true
			}
		case protocol.Commit:
			if len(act.Blocks) == 0 {
				continue
			}
			tip := act.Blocks[len(act.Blocks)-1]
			if tip.Round > commitTip {
				commitTip = tip.Round
			}
			r.append(Record{
				Kind:   KindCommit,
				Round:  tip.Round,
				Block:  tip.ID(),
				Mode:   uint8(act.Explicit),
				Blocks: uint32(len(act.Blocks)),
			})
		}
	}
	if ownAppended && !r.log.opts.Sync.NoForceOwn && !r.log.opts.Sync.EveryRecord {
		// One fsync covers every own record of this action batch plus the
		// whole pending group.
		if err := r.log.Sync(); err != nil {
			r.walErrs++
			ownDurable = false
		}
	}
	if r.checkpointEvery > 0 && commitTip >= r.lastCheckpoint+r.checkpointEvery {
		r.checkpoint()
	}
	if ownAppended && !ownDurable && !r.continueOnErr {
		return r.suppressOwn(acts)
	}
	return acts
}

// checkpoint snapshots the engine and journals it, truncating the log
// behind the checkpoint. Failures are counted but non-fatal: a missed
// checkpoint only means the next restart replays more records (the
// ordinary append path still provides durability), and if the log is
// truly dying its sticky error fails the own-record path anyway.
func (r *Recorder) checkpoint() {
	snap := r.eng.(protocol.Snapshotter).Snapshot()
	if err := r.log.AppendCheckpoint(Record{Kind: KindCheckpoint, Round: snap.FinalizedRound, Snapshot: snap}); err != nil {
		r.walErrs++
		return
	}
	r.lastCheckpoint = snap.FinalizedRound
}

// appendOwn journals one of the replica's own messages. The message's
// canonical encoding is memoized first (the recorder runs on the node
// loop, before the transport sees the message, so it is the single
// writer the cache contract requires): the WAL writes those bytes here
// and the transport frames the very same bytes afterwards — encode once,
// fan out everywhere.
func (r *Recorder) appendOwn(msg types.Message) bool {
	types.CachedEncoding(msg) //nolint:errcheck // append re-derives the error below
	return r.append(Record{Kind: KindOwn, Msg: msg})
}

// suppressOwn strips own-signature sends from an action batch whose
// journal write failed; everything else (commits, timers) still reaches
// the host.
func (r *Recorder) suppressOwn(acts []protocol.Action) []protocol.Action {
	kept := make([]protocol.Action, 0, len(acts))
	for _, a := range acts {
		switch act := a.(type) {
		case protocol.Broadcast:
			if loggedOwn(act.Msg) {
				r.suppressed++
				continue
			}
		case protocol.Send:
			if loggedOwn(act.Msg) {
				r.suppressed++
				continue
			}
		}
		kept = append(kept, a)
	}
	return kept
}

// append journals one record, reporting whether it is (or will be, under
// the group-commit window) durable. Errors are counted and left sticky
// in the log; record() decides whether the batch may still externalize.
func (r *Recorder) append(rec Record) bool {
	if err := r.log.Append(rec); err != nil {
		r.walErrs++
		return false
	}
	return true
}

// Err returns the log's sticky I/O error, if any.
func (r *Recorder) Err() error {
	r.log.mu.Lock()
	defer r.log.mu.Unlock()
	return r.log.err
}

// loggedInbound says which peer messages are journaled. Sync and
// snapshot requests are stateless (served from the tree) and skipped, as
// is all batch-dissemination traffic — bodies would multiply the log by
// the payload volume, and the blocks journal the batch *refs*, so a
// restarted replica re-fetches any finalized body it lost (the ack
// quorum guarantees f+1 peers besides the origin hold it); everything
// else — including sync and snapshot responses, whose blocks feed
// catch-up state and must be re-adopted on replay — is recorded.
func loggedInbound(msg types.Message) bool {
	switch msg.(type) {
	case *types.SyncRequest, *types.SnapshotRequest,
		*types.BatchAnnounce, *types.BatchRequest, *types.BatchResponse:
		return false
	default:
		return true
	}
}

// loggedOwn says which of the replica's own messages are journaled. Sync
// and snapshot traffic is derived state (requests are stateless,
// responses are read from the finalized tree) and would bloat the log;
// every message that carries this replica's signatures or certificates
// is recorded.
func loggedOwn(msg types.Message) bool {
	switch msg.(type) {
	case *types.SyncRequest, *types.SyncResponse,
		*types.SnapshotRequest, *types.SnapshotResponse,
		*types.BatchAnnounce, *types.BatchRequest, *types.BatchResponse:
		return false
	default:
		return true
	}
}
