package wal

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/core"
	"banyan/internal/crypto"
	"banyan/internal/protocol"
	"banyan/internal/types"
	"banyan/internal/wan"

	"banyan/internal/simnet"
)

// checkpointSimRun drives a deterministic 4-replica simulation with
// replica 0 journaled under the given checkpoint cadence, closes the log
// cleanly, and restarts replica 0 from it into a fresh engine. It
// returns the restored engine and its recorder.
//
// Identical seeds make the two runs of the equivalence test byte-for-
// byte identical executions (HMAC signatures and the simulator are both
// deterministic), so any state difference after restart is attributable
// to checkpointing alone.
func checkpointSimRun(t *testing.T, dir string, every types.Round, simFor time.Duration) (*core.Engine, *Recorder) {
	t.Helper()
	params := types.Params{N: 4, F: 1, P: 1}
	const pruneKeep = 16
	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 42)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	mkCore := func(id types.ReplicaID) *core.Engine {
		e, err := core.New(core.Config{
			Params: params, Self: id, Keyring: keyring, Signer: signers[id],
			Beacon: bc, Delta: 10 * time.Millisecond, PruneKeep: pruneKeep,
			Payloads: protocol.PayloadFunc(func(r types.Round) types.Payload {
				return types.SyntheticPayload(128, uint64(r)<<16|uint64(id))
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	engines := make([]protocol.Engine, params.N)
	for i := range engines {
		engines[i] = mkCore(types.ReplicaID(i))
	}
	rec, err := NewRecorder(RecorderConfig{
		Dir: dir, Engine: engines[0], CheckpointEvery: every,
	})
	if err != nil {
		t.Fatal(err)
	}
	engines[0] = rec
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(params.N, 2*time.Millisecond),
		Seed:     7,
	}, simnet.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(simFor)
	// Graceful close: the durable journal is then exactly the record
	// stream, keeping both runs' on-disk state deterministic (torn-tail
	// recovery is covered by the wal corruption tests).
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	restored := mkCore(0)
	rec2, err := NewRecorder(RecorderConfig{
		Dir: dir, Engine: restored, CheckpointEvery: every,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range rec2.Start(simnet.Epoch.Add(simFor)) {
		if f, ok := a.(protocol.SafetyFault); ok {
			t.Fatalf("restart reported safety fault: %v", f.Err)
		}
	}
	return restored, rec2
}

// TestCheckpointReplayEquivalence is the checkpoint correctness
// property: for the same deterministic execution, restarting from a
// checkpointed-and-truncated log reconstructs the identical voting
// record (and finalized window) as a full replay of the append-only log
// — while replaying an order of magnitude fewer records and keeping the
// directory an order of magnitude smaller.
func TestCheckpointReplayEquivalence(t *testing.T) {
	const (
		pruneKeep = 16
		simFor    = 5 * time.Second // >1000 virtual rounds, comfortably past 10×PruneKeep
	)
	fullDir := filepath.Join(t.TempDir(), "full")
	ckptDir := filepath.Join(t.TempDir(), "ckpt")

	full, fullRec := checkpointSimRun(t, fullDir, 0, simFor)
	ckpt, ckptRec := checkpointSimRun(t, ckptDir, pruneKeep, simFor)

	// The executions were identical, so the restored replicas must agree
	// exactly on the state that prevents equivocation.
	fullVotes := full.OwnVotingRecord()
	ckptVotes := ckpt.OwnVotingRecord()
	if !reflect.DeepEqual(fullVotes, ckptVotes) {
		t.Fatalf("voting records diverge:\n full (%d rounds): %+v\n ckpt (%d rounds): %+v",
			len(fullVotes), fullVotes, len(ckptVotes), ckptVotes)
	}
	if full.Round() != ckpt.Round() && ckpt.Round() > full.Round() {
		t.Fatalf("checkpointed restart ahead of full replay: %d vs %d", ckpt.Round(), full.Round())
	}

	// Identical finalized tips, and the checkpointed tree's window is a
	// suffix of the full tree's chain.
	fullFin, ckptFin := full.Tree().FinalizedRound(), ckpt.Tree().FinalizedRound()
	if fullFin != ckptFin {
		t.Fatalf("finalized rounds diverge: full %d, ckpt %d", fullFin, ckptFin)
	}
	if fullFin < 10*pruneKeep {
		t.Fatalf("run too short to exercise checkpointing: finalized %d < %d", fullFin, 10*pruneKeep)
	}
	fullChain := full.Tree().FinalizedChain()
	ckptChain := ckpt.Tree().FinalizedChain()
	if len(ckptChain) == 0 || len(ckptChain) > len(fullChain) {
		t.Fatalf("chain lengths: full %d, ckpt %d", len(fullChain), len(ckptChain))
	}
	tail := fullChain[len(fullChain)-len(ckptChain):]
	for i := range tail {
		if tail[i] != ckptChain[i] {
			t.Fatalf("restored window diverges from full chain at %d", i)
		}
	}

	// Bounded-replay claim: after ≥10×PruneKeep finalized rounds, the
	// checkpointed restart replays O(PruneKeep) records — the newest
	// checkpoint plus at most two checkpoint windows of tail records —
	// while the full replay walks all of history.
	fullReplayed := fullRec.Metrics()["wal_replayed_records"]
	ckptReplayed := ckptRec.Metrics()["wal_replayed_records"]
	if ckptReplayed*4 > fullReplayed {
		t.Fatalf("checkpointed restart replayed %d of %d records — not bounded", ckptReplayed, fullReplayed)
	}
	perRound := fullReplayed / int64(fullFin)
	if maxReplay := perRound * 3 * pruneKeep; ckptReplayed > maxReplay {
		t.Fatalf("replayed %d records, want O(PruneKeep) ≈ ≤%d (%d/round over %d rounds)",
			ckptReplayed, maxReplay, perRound, fullFin)
	}
	if !ckptRec.Recovered().HasCheckpoint {
		t.Fatal("checkpointed recovery found no checkpoint")
	}
	// Records behind a checkpoint are deleted with their segments at
	// checkpoint time, so recovery normally sees nothing to skip — the
	// skipping path only runs when truncation was interrupted (covered by
	// TestCheckpointCrashBeforeTruncate).

	// Bounded-disk claim: the truncated log is a fraction of the
	// append-only one.
	fullBytes, ckptBytes := dirBytes(t, fullDir), dirBytes(t, ckptDir)
	if ckptBytes*4 > fullBytes {
		t.Fatalf("checkpointed log holds %d bytes, full log %d — truncation ineffective", ckptBytes, fullBytes)
	}
	t.Logf("finalized=%d replayed full=%d ckpt=%d, disk full=%dB ckpt=%dB",
		fullFin, fullReplayed, ckptReplayed, fullBytes, ckptBytes)
}
