package wal

import (
	"math/rand"
	"testing"
	"time"

	"banyan/internal/types"
)

// benchRecord is the dominant journal entry in steady state: an inbound
// VoteMsg carrying a bundled notarize+fast vote pair.
func benchRecord() Record {
	r := rand.New(rand.NewSource(42))
	vote := func(kind types.VoteKind) types.Vote {
		v := types.Vote{Kind: kind, Round: 9, Voter: 1}
		r.Read(v.Block[:])
		v.Signature = make([]byte, 64)
		r.Read(v.Signature)
		return v
	}
	return Record{
		Kind: KindInbound,
		From: 1,
		Msg:  &types.VoteMsg{Votes: []types.Vote{vote(types.VoteNotarize), vote(types.VoteFast)}},
	}
}

// BenchmarkWALAppend measures the journaling cost per record under group
// commit (the fsync itself is amortized by the background syncer and a
// long interval keeps it out of the loop, so the number isolates encode
// and framing).
func BenchmarkWALAppend(b *testing.B) {
	log, _, err := Open(b.TempDir(), Options{
		Sync:         SyncPolicy{Interval: time.Hour, Bytes: 1 << 30},
		SegmentBytes: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()

	rec := benchRecord()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := log.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
