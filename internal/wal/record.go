package wal

import (
	"encoding/binary"
	"fmt"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Kind tags what a record journals.
type Kind uint8

const (
	// KindInbound is a consensus message received from a peer, appended
	// before the engine processes it.
	KindInbound Kind = iota + 1
	// KindOwn is a message this replica generated (proposal, votes,
	// certificate, advance), appended before the transport sends it. These
	// records restore the replica's own voting record on replay, which is
	// what prevents post-restart equivocation.
	KindOwn
	// KindCommit is a finalization decision: the explicitly finalized
	// block, the path that finalized it, and the size of the committed
	// batch. Commit records are bookkeeping for tooling and tests; replay
	// re-derives commits from the message records.
	KindCommit
	// KindCheckpoint is an engine snapshot (protocol.Snapshot): the
	// finalized chain window plus the replica's own voting record for
	// live rounds. Recovery replays from the newest checkpoint instead of
	// the beginning of history, and the log truncates the segments behind
	// it, bounding both restart replay and disk usage.
	KindCheckpoint
)

func (k Kind) String() string {
	switch k {
	case KindInbound:
		return "inbound"
	case KindOwn:
		return "own"
	case KindCommit:
		return "commit"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one journal entry.
type Record struct {
	Kind Kind
	// From is the sending replica (KindInbound only).
	From types.ReplicaID
	// Msg is the wire message (KindInbound and KindOwn).
	Msg types.Message
	// Round, Block, Mode and Blocks describe a finalization (KindCommit):
	// the explicitly finalized block and protocol.FinalizationMode, plus
	// the number of blocks the commit delivered (ancestors included).
	Round  types.Round
	Block  types.BlockID
	Mode   uint8
	Blocks uint32
	// Snapshot is the engine state a checkpoint journals (KindCheckpoint).
	Snapshot *protocol.Snapshot
}

// payloadSize returns the exact appendPayload length, so callers can
// reserve capacity (pooled buffers) and skip growth entirely.
func (r Record) payloadSize() int {
	switch r.Kind {
	case KindInbound:
		return 3 + r.Msg.EncodedSize()
	case KindOwn:
		return 1 + r.Msg.EncodedSize()
	case KindCommit:
		return 1 + 8 + 32 + 1 + 4
	case KindCheckpoint:
		if r.Snapshot == nil {
			return 1 // appendPayload reports the real error
		}
		s := 1 + 8 + 8 + 4 + 4 + 4
		for _, b := range r.Snapshot.Chain {
			s += types.BlockEncodedSize(b)
		}
		for _, m := range r.Snapshot.Own {
			s += 4 + m.EncodedSize()
		}
		for _, d := range r.Snapshot.Sets {
			s += d.EncodedSize()
		}
		return s
	default:
		return 0
	}
}

// appendPayload appends the record payload to buf (the CRC frame is the
// Log's job). Message bodies reuse the message's cached encoding when
// one exists — the same bytes the transport framed or received — so
// journaling a message costs a memcpy, not a re-encode, and with a
// pooled buffer no allocation at all.
func (r Record) appendPayload(buf []byte) ([]byte, error) {
	switch r.Kind {
	case KindInbound:
		buf = append(buf, byte(KindInbound))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(r.From))
		return types.AppendMessage(buf, r.Msg)
	case KindOwn:
		buf = append(buf, byte(KindOwn))
		return types.AppendMessage(buf, r.Msg)
	case KindCommit:
		buf = append(buf, byte(KindCommit))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Round))
		buf = append(buf, r.Block[:]...)
		buf = append(buf, r.Mode)
		return binary.LittleEndian.AppendUint32(buf, r.Blocks), nil
	case KindCheckpoint:
		s := r.Snapshot
		if s == nil {
			return nil, fmt.Errorf("wal: checkpoint record without snapshot")
		}
		buf = append(buf, byte(KindCheckpoint))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Round))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.FinalizedRound))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Chain)))
		for _, b := range s.Chain {
			buf = types.AppendBlock(buf, b)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Own)))
		for _, m := range s.Own {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(m.EncodedSize()))
			var err error
			if buf, err = types.AppendMessage(buf, m); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Sets)))
		for _, d := range s.Sets {
			buf = types.AppendValidatorSetDesc(buf, d)
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("wal: cannot encode record kind %d", r.Kind)
	}
}

// encode serializes the record payload into a fresh buffer.
func (r Record) encode() ([]byte, error) {
	return r.appendPayload(make([]byte, 0, r.payloadSize()))
}

// maxCheckpointItems bounds the chain and message counts a checkpoint
// claims, so a corrupt length prefix cannot drive a huge allocation.
const maxCheckpointItems = 1 << 20

// decodeRecord parses a payload produced by appendPayload. Any
// malformation is an error — recovery treats it as the end of the
// durable prefix. Byte fields are copied out of payload (recovery scans
// whole segments; aliasing would pin them in memory).
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("wal: empty record")
	}
	switch Kind(payload[0]) {
	case KindInbound:
		if len(payload) < 4 {
			return Record{}, fmt.Errorf("wal: truncated inbound record")
		}
		msg, err := types.DecodeMessage(payload[3:])
		if err != nil {
			return Record{}, fmt.Errorf("wal: %w", err)
		}
		return Record{
			Kind: KindInbound,
			From: types.ReplicaID(binary.LittleEndian.Uint16(payload[1:3])),
			Msg:  msg,
		}, nil
	case KindOwn:
		if len(payload) < 2 {
			return Record{}, fmt.Errorf("wal: truncated own record")
		}
		msg, err := types.DecodeMessage(payload[1:])
		if err != nil {
			return Record{}, fmt.Errorf("wal: %w", err)
		}
		return Record{Kind: KindOwn, Msg: msg}, nil
	case KindCommit:
		if len(payload) != 1+8+32+1+4 {
			return Record{}, fmt.Errorf("wal: bad commit record length %d", len(payload))
		}
		r := Record{
			Kind:   KindCommit,
			Round:  types.Round(binary.LittleEndian.Uint64(payload[1:9])),
			Mode:   payload[41],
			Blocks: binary.LittleEndian.Uint32(payload[42:46]),
		}
		copy(r.Block[:], payload[9:41])
		return r, nil
	case KindCheckpoint:
		return decodeCheckpoint(payload)
	default:
		return Record{}, fmt.Errorf("wal: unknown record kind %d", payload[0])
	}
}

func decodeCheckpoint(payload []byte) (Record, error) {
	fail := func(what string) (Record, error) {
		return Record{}, fmt.Errorf("wal: truncated checkpoint record (%s)", what)
	}
	off := 1
	if len(payload) < off+8+8+4 {
		return fail("header")
	}
	s := &protocol.Snapshot{
		Round:          types.Round(binary.LittleEndian.Uint64(payload[off : off+8])),
		FinalizedRound: types.Round(binary.LittleEndian.Uint64(payload[off+8 : off+16])),
	}
	off += 16
	nChain := binary.LittleEndian.Uint32(payload[off : off+4])
	off += 4
	if nChain > maxCheckpointItems {
		return fail("chain count")
	}
	for i := uint32(0); i < nChain; i++ {
		b, n, err := types.DecodeBlockPrefix(payload[off:])
		if err != nil {
			return Record{}, fmt.Errorf("wal: checkpoint chain block %d: %w", i, err)
		}
		if b == nil {
			return fail("nil chain block")
		}
		s.Chain = append(s.Chain, b)
		off += n
	}
	if len(payload) < off+4 {
		return fail("message count")
	}
	nOwn := binary.LittleEndian.Uint32(payload[off : off+4])
	off += 4
	if nOwn > maxCheckpointItems {
		return fail("message count")
	}
	for i := uint32(0); i < nOwn; i++ {
		if len(payload) < off+4 {
			return fail("message length")
		}
		n := int(binary.LittleEndian.Uint32(payload[off : off+4]))
		off += 4
		if n <= 0 || len(payload) < off+n {
			return fail("message body")
		}
		m, err := types.DecodeMessage(payload[off : off+n])
		if err != nil {
			return Record{}, fmt.Errorf("wal: checkpoint message %d: %w", i, err)
		}
		s.Own = append(s.Own, m)
		off += n
	}
	if len(payload) < off+4 {
		return fail("set count")
	}
	nSets := binary.LittleEndian.Uint32(payload[off : off+4])
	off += 4
	if nSets > types.MaxSnapshotSets {
		return fail("set count")
	}
	for i := uint32(0); i < nSets; i++ {
		d, n, err := types.DecodeValidatorSetDescPrefix(payload[off:])
		if err != nil {
			return Record{}, fmt.Errorf("wal: checkpoint validator set %d: %w", i, err)
		}
		s.Sets = append(s.Sets, d)
		off += n
	}
	if off != len(payload) {
		return Record{}, fmt.Errorf("wal: %d trailing bytes in checkpoint record", len(payload)-off)
	}
	return Record{Kind: KindCheckpoint, Round: s.FinalizedRound, Snapshot: s}, nil
}
