package wal

import (
	"encoding/binary"
	"fmt"

	"banyan/internal/types"
)

// Kind tags what a record journals.
type Kind uint8

const (
	// KindInbound is a consensus message received from a peer, appended
	// before the engine processes it.
	KindInbound Kind = iota + 1
	// KindOwn is a message this replica generated (proposal, votes,
	// certificate, advance), appended before the transport sends it. These
	// records restore the replica's own voting record on replay, which is
	// what prevents post-restart equivocation.
	KindOwn
	// KindCommit is a finalization decision: the explicitly finalized
	// block, the path that finalized it, and the size of the committed
	// batch. Commit records are bookkeeping for tooling and tests; replay
	// re-derives commits from the message records.
	KindCommit
)

func (k Kind) String() string {
	switch k {
	case KindInbound:
		return "inbound"
	case KindOwn:
		return "own"
	case KindCommit:
		return "commit"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one journal entry.
type Record struct {
	Kind Kind
	// From is the sending replica (KindInbound only).
	From types.ReplicaID
	// Msg is the wire message (KindInbound and KindOwn).
	Msg types.Message
	// Round, Block, Mode and Blocks describe a finalization (KindCommit):
	// the explicitly finalized block and protocol.FinalizationMode, plus
	// the number of blocks the commit delivered (ancestors included).
	Round  types.Round
	Block  types.BlockID
	Mode   uint8
	Blocks uint32
}

// encode serializes the record payload (the CRC frame is the Log's job).
func (r Record) encode() ([]byte, error) {
	switch r.Kind {
	case KindInbound:
		body, err := types.EncodeMessage(r.Msg)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		out := make([]byte, 3, 3+len(body))
		out[0] = byte(KindInbound)
		binary.LittleEndian.PutUint16(out[1:3], uint16(r.From))
		return append(out, body...), nil
	case KindOwn:
		body, err := types.EncodeMessage(r.Msg)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		out := make([]byte, 1, 1+len(body))
		out[0] = byte(KindOwn)
		return append(out, body...), nil
	case KindCommit:
		out := make([]byte, 1+8+32+1+4)
		out[0] = byte(KindCommit)
		binary.LittleEndian.PutUint64(out[1:9], uint64(r.Round))
		copy(out[9:41], r.Block[:])
		out[41] = r.Mode
		binary.LittleEndian.PutUint32(out[42:46], r.Blocks)
		return out, nil
	default:
		return nil, fmt.Errorf("wal: cannot encode record kind %d", r.Kind)
	}
}

// decodeRecord parses a payload produced by encode. Any malformation is
// an error — recovery treats it as the end of the durable prefix.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("wal: empty record")
	}
	switch Kind(payload[0]) {
	case KindInbound:
		if len(payload) < 4 {
			return Record{}, fmt.Errorf("wal: truncated inbound record")
		}
		msg, err := types.DecodeMessage(payload[3:])
		if err != nil {
			return Record{}, fmt.Errorf("wal: %w", err)
		}
		return Record{
			Kind: KindInbound,
			From: types.ReplicaID(binary.LittleEndian.Uint16(payload[1:3])),
			Msg:  msg,
		}, nil
	case KindOwn:
		if len(payload) < 2 {
			return Record{}, fmt.Errorf("wal: truncated own record")
		}
		msg, err := types.DecodeMessage(payload[1:])
		if err != nil {
			return Record{}, fmt.Errorf("wal: %w", err)
		}
		return Record{Kind: KindOwn, Msg: msg}, nil
	case KindCommit:
		if len(payload) != 1+8+32+1+4 {
			return Record{}, fmt.Errorf("wal: bad commit record length %d", len(payload))
		}
		r := Record{
			Kind:   KindCommit,
			Round:  types.Round(binary.LittleEndian.Uint64(payload[1:9])),
			Mode:   payload[41],
			Blocks: binary.LittleEndian.Uint32(payload[42:46]),
		}
		copy(r.Block[:], payload[9:41])
		return r, nil
	default:
		return Record{}, fmt.Errorf("wal: unknown record kind %d", payload[0])
	}
}
