package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"banyan/internal/types"
)

// sampleRecords builds a representative record mix: peer messages, own
// messages, and commit decisions.
func sampleRecords(n int) []Record {
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			out = append(out, Record{
				Kind: KindInbound,
				From: types.ReplicaID(i % 7),
				Msg: &types.VoteMsg{Votes: []types.Vote{{
					Kind:      types.VoteNotarize,
					Round:     types.Round(i + 1),
					Voter:     types.ReplicaID(i % 7),
					Signature: bytes.Repeat([]byte{byte(i)}, 64),
				}}},
			})
		case 1:
			b := types.NewBlock(types.Round(i+1), types.ReplicaID(i%7), 0,
				types.BlockID{}, types.BytesPayload(bytes.Repeat([]byte{byte(i)}, 100)))
			b.Signature = bytes.Repeat([]byte{byte(i)}, 64)
			out = append(out, Record{Kind: KindOwn, Msg: &types.Proposal{Block: b}})
		default:
			var id types.BlockID
			id[0] = byte(i)
			out = append(out, Record{
				Kind: KindCommit, Round: types.Round(i + 1), Block: id, Mode: 2, Blocks: 3,
			})
		}
	}
	return out
}

func openT(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

// checkPrefix fails unless got is a prefix of want (comparing encodings).
func checkPrefix(t *testing.T, want, got []Record) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("recovered %d records, only %d were written", len(got), len(want))
	}
	for i := range got {
		we, err1 := want[i].encode()
		ge, err2 := got[i].encode()
		if err1 != nil || err2 != nil {
			t.Fatalf("encode: %v / %v", err1, err2)
		}
		if !bytes.Equal(we, ge) {
			t.Fatalf("record %d differs after recovery", i)
		}
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords(30)

	l, rec := openT(t, dir, Options{})
	if len(rec.Records) != 0 || rec.Truncated {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := openT(t, dir, Options{})
	defer l2.Close()
	if rec2.Truncated {
		t.Fatal("clean log reported truncated")
	}
	if len(rec2.Records) != len(recs) {
		t.Fatalf("recovered %d of %d records", len(rec2.Records), len(recs))
	}
	checkPrefix(t, recs, rec2.Records)
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords(60)
	l, _ := openT(t, dir, Options{SegmentBytes: 512})
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	l2, rec := openT(t, dir, Options{SegmentBytes: 512})
	defer l2.Close()
	if rec.Truncated || len(rec.Records) != len(recs) {
		t.Fatalf("recovered %d of %d (truncated=%v) across %d segments",
			len(rec.Records), len(recs), rec.Truncated, rec.Segments)
	}
	checkPrefix(t, recs, rec.Records)
}

// TestCrashDropsUnsyncedTail checks the group-commit durability window:
// records synced before the crash survive, the unsynced tail is gone,
// and recovery is a clean prefix either way.
func TestCrashDropsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords(20)
	// A huge window and byte threshold: nothing syncs unless asked.
	l, _ := openT(t, dir, Options{Sync: SyncPolicy{Interval: time.Hour, Bytes: 1 << 30}})
	appendAll(t, l, recs[:12])
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, recs[12:])
	l.Crash()

	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 12 {
		t.Fatalf("recovered %d records, want the 12 synced ones", len(rec.Records))
	}
	checkPrefix(t, recs, rec.Records)
}

func TestSyncEveryRecordDurableWithoutClose(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords(9)
	l, _ := openT(t, dir, Options{Sync: SyncPolicy{EveryRecord: true}})
	appendAll(t, l, recs)
	l.Crash() // no flush — but every append already synced

	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != len(recs) {
		t.Fatalf("recovered %d of %d with per-record sync", len(rec.Records), len(recs))
	}
}

func TestGroupCommitAmortizesSyncs(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Sync: SyncPolicy{Interval: 50 * time.Millisecond}})
	appendAll(t, l, sampleRecords(99))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	appends, syncs := l.Stats()
	if appends != 99 {
		t.Fatalf("appends = %d", appends)
	}
	if syncs >= appends/2 {
		t.Fatalf("group commit did not amortize: %d syncs for %d appends", syncs, appends)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleRecords(1)[0]); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

// lastSegment returns the path of the highest-indexed segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[0]
	for _, s := range segs[1:] {
		if s > last {
			last = s
		}
	}
	return last
}

// writeSealed writes a log of n records into dir and returns them plus
// the single sealed segment's path.
func writeSealed(t *testing.T, dir string, n int) ([]Record, string) {
	t.Helper()
	recs := sampleRecords(n)
	l, _ := openT(t, dir, Options{})
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return recs, lastSegment(t, dir)
}

// TestTornWriteProperty is the torn-write property test: truncating the
// segment at *every* possible byte length must recover a clean prefix of
// the original records — never an error, never a panic, never a record
// that was not written.
func TestTornWriteProperty(t *testing.T) {
	dir := t.TempDir()
	recs, seg := writeSealed(t, dir, 12)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	prevLen := -1
	for cut := 0; cut <= len(data); cut++ {
		var got []Record
		scanSegment(data[:cut], &got)
		checkPrefix(t, recs, got)
		if len(got) < prevLen {
			t.Fatalf("prefix shrank at cut %d: %d -> %d", cut, prevLen, len(got))
		}
		prevLen = len(got)
	}
	if prevLen != len(recs) {
		t.Fatalf("full file recovered %d of %d", prevLen, len(recs))
	}
}

// TestCorruptionProperty flips every byte of the segment in turn (one
// mutation at a time): recovery must always yield a prefix of the
// original records and stop at or before the corrupted frame.
func TestCorruptionProperty(t *testing.T) {
	dir := t.TempDir()
	recs, seg := writeSealed(t, dir, 8)
	orig, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(orig); pos++ {
		data := bytes.Clone(orig)
		data[pos] ^= 0x5a
		var got []Record
		scanSegment(data, &got)
		checkPrefix(t, recs, got)
	}
}

// TestCorruptMiddleSegmentStopsRecovery: a corrupt earlier segment must
// fence off all later segments (ordering after a gap is untrustworthy).
func TestCorruptMiddleSegmentStopsRecovery(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords(40)
	l, _ := openT(t, dir, Options{SegmentBytes: 512})
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Corrupt a byte in the middle of the second segment.
	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if !rec.Truncated {
		t.Fatal("corruption not reported")
	}
	checkPrefix(t, recs, rec.Records)
	var firstSeg []Record
	seg0, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	scanSegment(seg0, &firstSeg)
	if len(rec.Records) < len(firstSeg) {
		t.Fatalf("recovered %d records, fewer than the %d of the intact first segment",
			len(rec.Records), len(firstSeg))
	}
}

// TestTornTailRepairedAcrossRestarts is the crash→restart→crash→restart
// scenario: run 1 leaves a torn frame at its tail; run 2 recovers, gets
// the tail repaired, and journals new records into the next segment; run
// 3 must recover run 2's records. Without the Open-time repair, run 3's
// scan would stop at run 1's torn frame and silently skip everything run
// 2 made durable — forgetting votes the network saw.
func TestTornTailRepairedAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords(20)

	// Run 1: 10 records, then a torn frame at the tail (as a mid-record
	// buffer flush before a power loss would leave).
	l1, _ := openT(t, dir, Options{})
	appendAll(t, l1, recs[:10])
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(bytes.Clone(data), 0x99, 0, 0, 0, 0xde, 0xad) // partial frame header
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Run 2: recovery truncates, repair cleans the tail, new records land
	// in the next segment.
	l2, rec2 := openT(t, dir, Options{})
	if !rec2.Truncated || !rec2.Repaired {
		t.Fatalf("run 2: truncated=%v repaired=%v, want both", rec2.Truncated, rec2.Repaired)
	}
	if len(rec2.Records) != 10 {
		t.Fatalf("run 2 recovered %d records, want 10", len(rec2.Records))
	}
	if fixed, err := os.ReadFile(seg); err != nil || !bytes.Equal(fixed, data) {
		t.Fatalf("damaged segment not truncated to its valid prefix (err=%v)", err)
	}
	appendAll(t, l2, recs[10:])
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// Run 3: everything durable so far — run 1's valid prefix AND run 2's
	// records — must come back, with no truncation report.
	l3, rec3 := openT(t, dir, Options{})
	defer l3.Close()
	if rec3.Truncated || rec3.Repaired {
		t.Fatalf("run 3: truncated=%v repaired=%v after repair, want clean", rec3.Truncated, rec3.Repaired)
	}
	if len(rec3.Records) != len(recs) {
		t.Fatalf("run 3 recovered %d records, want %d (run 2's records fenced off?)",
			len(rec3.Records), len(recs))
	}
	checkPrefix(t, recs, rec3.Records)
}

// TestRepairQuarantinesLaterSegments: when corruption sits in a middle
// segment, repair must empty every later segment (preserving its bytes
// as *.seg.corrupt) so the next run's appends extend the clean prefix —
// and the next recovery must be clean and byte-stable.
func TestRepairQuarantinesLaterSegments(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords(40)
	l, _ := openT(t, dir, Options{SegmentBytes: 512})
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, Options{SegmentBytes: 512})
	if !rec.Repaired {
		t.Fatal("repair not reported")
	}
	recovered := len(rec.Records)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	// Every discarded byte range leaves a forensic copy: the damaged
	// segment plus each later segment.
	quarantined, err := filepath.Glob(filepath.Join(dir, "wal-*.seg.corrupt"))
	if err != nil || len(quarantined) != len(segs)-1 {
		t.Fatalf("quarantined %d segments, want %d (err=%v)", len(quarantined), len(segs)-1, err)
	}
	// The later live segments themselves are durably empty, which scans
	// clean; only file fsyncs — no directory rename — back the repair.
	for _, s := range segs[2:] {
		fi, err := os.Stat(s)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != 0 {
			t.Fatalf("later segment %s not emptied (size=%d)", s, fi.Size())
		}
	}

	l3, rec3 := openT(t, dir, Options{SegmentBytes: 512})
	defer l3.Close()
	if rec3.Truncated || rec3.Repaired {
		t.Fatalf("post-repair open: truncated=%v repaired=%v, want clean", rec3.Truncated, rec3.Repaired)
	}
	if len(rec3.Records) != recovered {
		t.Fatalf("post-repair open recovered %d records, want the stable %d", len(rec3.Records), recovered)
	}
	checkPrefix(t, recs, rec3.Records)
}

// TestBogusLengthPrefix: a frame announcing an absurd length must stop
// recovery without attempting the allocation.
func TestBogusLengthPrefix(t *testing.T) {
	dir := t.TempDir()
	recs, seg := writeSealed(t, dir, 4)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Append a frame header claiming 1 GiB.
	data = append(data, 0, 0, 0, 0x40, 0xde, 0xad, 0xbe, 0xef)
	var got []Record
	if _, clean := scanSegment(data, &got); clean {
		t.Fatal("bogus frame accepted as clean")
	}
	if len(got) != len(recs) {
		t.Fatalf("recovered %d of %d before the bogus frame", len(got), len(recs))
	}
}

// FuzzScanSegment: arbitrary bytes must never panic the scanner and must
// only ever yield records that re-encode to the bytes the frame carried.
func FuzzScanSegment(f *testing.F) {
	dir := f.TempDir()
	recs := sampleRecords(6)
	l, _, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	data, err := os.ReadFile(segs[len(segs)-1])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte{})
	f.Add(segMagic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		var got []Record
		scanSegment(data, &got) // must not panic
		for _, r := range got {
			if _, err := r.encode(); err != nil {
				t.Fatalf("recovered record does not re-encode: %v", err)
			}
		}
	})
}

// FuzzRecordRoundTrip: decodeRecord must never panic, and whatever it
// accepts must reach a canonical fixed point — decode(encode(decode(p)))
// re-encodes identically, so replaying a journaled record cannot drift.
// (Byte-identity with the input is not required: the wire format accepts
// non-canonical booleans.)
func FuzzRecordRoundTrip(f *testing.F) {
	for _, r := range sampleRecords(6) {
		payload, err := r.encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := decodeRecord(payload)
		if err != nil {
			return
		}
		canon, err := r.encode()
		if err != nil {
			t.Fatalf("decoded record does not encode: %v", err)
		}
		r2, err := decodeRecord(canon)
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		again, err := r2.encode()
		if err != nil {
			t.Fatalf("re-decoded record does not encode: %v", err)
		}
		if !bytes.Equal(canon, again) {
			t.Fatalf("record encoding not a fixed point:\n 1st: %x\n 2nd: %x", canon, again)
		}
	})
}
