package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// snapFixture builds a small but fully-populated snapshot: a two-block
// finalized window plus an own-vote bundle and a finalization cert.
func snapFixture(t *testing.T) *protocol.Snapshot {
	t.Helper()
	b1 := types.NewBlock(7, 1, 0, types.Genesis().ID(), types.BytesPayload([]byte("one")))
	b1.Signature = []byte("sig-1")
	b2 := types.NewBlock(8, 2, 1, b1.ID(), types.BytesPayload([]byte("two")))
	b2.Signature = []byte("sig-2")
	return &protocol.Snapshot{
		Round:          9,
		FinalizedRound: 8,
		Chain:          []*types.Block{b1, b2},
		Own: []types.Message{
			&types.VoteMsg{Votes: []types.Vote{{
				Kind: types.VoteNotarize, Round: 8, Block: b2.ID(), Voter: 3, Signature: []byte("vs"),
			}}},
			&types.CertMsg{Cert: &types.Certificate{
				Kind: types.CertFinalization, Round: 8, Block: b2.ID(),
				Signers: []types.ReplicaID{0, 1, 2}, Sigs: [][]byte{{1}, {2}, {3}},
			}},
		},
	}
}

// TestCheckpointRecordRoundTrip checks a checkpoint record survives
// encode/decode with its snapshot intact.
func TestCheckpointRecordRoundTrip(t *testing.T) {
	snap := snapFixture(t)
	rec := Record{Kind: KindCheckpoint, Round: snap.FinalizedRound, Snapshot: snap}
	payload, err := rec.encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(payload), rec.payloadSize(); got != want {
		t.Fatalf("payloadSize %d != encoded length %d", want, got)
	}
	dec, err := decodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != KindCheckpoint || dec.Snapshot == nil {
		t.Fatalf("decoded %v", dec.Kind)
	}
	got := dec.Snapshot
	if got.Round != snap.Round || got.FinalizedRound != snap.FinalizedRound {
		t.Fatalf("rounds changed: %+v", got)
	}
	if len(got.Chain) != 2 || got.Chain[0].ID() != snap.Chain[0].ID() || got.Chain[1].ID() != snap.Chain[1].ID() {
		t.Fatal("chain window changed identity")
	}
	if len(got.Own) != 2 {
		t.Fatalf("own messages: got %d, want 2", len(got.Own))
	}
	wantVotes := snap.Own[0].(*types.VoteMsg).Votes
	gotVotes := got.Own[0].(*types.VoteMsg).Votes
	if !reflect.DeepEqual(gotVotes, wantVotes) {
		t.Fatalf("own votes changed:\n got %+v\nwant %+v", gotVotes, wantVotes)
	}
	// Corrupt every byte position once: must error or decode, never panic.
	for i := range payload {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0x40
		decodeRecord(mut) //nolint:errcheck
	}
}

func dirSegments(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if _, ok := segIndex(e.Name()); ok {
			segs = append(segs, e.Name())
		}
	}
	return segs
}

func dirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	for _, name := range dirSegments(t, dir) {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestLogCheckpointTruncates drives the log through several checkpoint
// cycles and checks (a) recovery replays only from the newest
// checkpoint, (b) the segments behind it are deleted, and (c) disk usage
// stays bounded as history grows.
func TestLogCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	log, rec, err := Open(dir, Options{Sync: SyncPolicy{EveryRecord: true}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.HasCheckpoint || rec.Skipped != 0 {
		t.Fatalf("fresh log claims checkpoint state: %+v", rec)
	}
	var peak int64
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 20; i++ {
			if err := log.Append(Record{Kind: KindOwn, Msg: voteMsg(types.Round(cycle*20 + i + 1))}); err != nil {
				t.Fatal(err)
			}
		}
		snap := snapFixture(t)
		snap.FinalizedRound = types.Round((cycle + 1) * 20)
		if err := log.AppendCheckpoint(Record{Kind: KindCheckpoint, Round: snap.FinalizedRound, Snapshot: snap}); err != nil {
			t.Fatal(err)
		}
		if b := dirBytes(t, dir); b > peak {
			peak = b
		}
	}
	// Tail after the last checkpoint.
	for i := 0; i < 3; i++ {
		if err := log.Append(Record{Kind: KindOwn, Msg: voteMsg(types.Round(200 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	checkpoints, removed := log.CheckpointStats()
	if checkpoints != 5 {
		t.Fatalf("checkpoints = %d, want 5", checkpoints)
	}
	if removed == 0 {
		t.Fatal("no dead segments were removed")
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Disk usage must be bounded by one checkpoint cycle, not total
	// history: 5 cycles of 20 records each must not accumulate.
	if segs := dirSegments(t, dir); len(segs) > 2 {
		t.Fatalf("expected at most 2 live segments (checkpoint + tail), found %v", segs)
	}

	_, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec2.HasCheckpoint {
		t.Fatal("recovery found no checkpoint")
	}
	if rec2.Records[0].Kind != KindCheckpoint {
		t.Fatalf("first replay record is %s, want checkpoint", rec2.Records[0].Kind)
	}
	if rec2.Records[0].Snapshot.FinalizedRound != 100 {
		t.Fatalf("recovered checkpoint at round %d, want 100", rec2.Records[0].Snapshot.FinalizedRound)
	}
	// Replay = checkpoint + the 3-record tail, independent of the 100
	// records of history before it.
	if got := len(rec2.Records); got != 4 {
		t.Fatalf("replaying %d records, want 4 (checkpoint + 3 tail)", got)
	}
}

// TestOversizedRecordRefused: a record larger than recovery's frame
// limit must be refused at append time — journaling it would poison the
// segment for the next Open, and for a checkpoint the truncation that
// follows would orphan the history it claims to summarize.
func TestOversizedRecordRefused(t *testing.T) {
	dir := t.TempDir()
	log, _, err := Open(dir, Options{Sync: SyncPolicy{EveryRecord: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	huge := &types.VoteMsg{Votes: []types.Vote{{
		Kind: types.VoteNotarize, Round: 1, Voter: 1,
		Signature: make([]byte, maxRecordLen+1),
	}}}
	if err := log.Append(Record{Kind: KindOwn, Msg: huge}); err == nil {
		t.Fatal("oversized record accepted")
	}
	snap := snapFixture(t)
	snap.Own = append(snap.Own, huge)
	if err := log.AppendCheckpoint(Record{Kind: KindCheckpoint, Round: 8, Snapshot: snap}); err == nil {
		t.Fatal("oversized checkpoint accepted")
	}
	// The refusals must not have poisoned the log.
	if err := log.Append(Record{Kind: KindOwn, Msg: voteMsg(1)}); err != nil {
		t.Fatalf("log unusable after refusing oversized records: %v", err)
	}
	// A checkpoint record without a snapshot is a caller bug; it must
	// surface as an error, not a panic in the size probe.
	if err := log.AppendCheckpoint(Record{Kind: KindCheckpoint}); err == nil {
		t.Fatal("nil-snapshot checkpoint accepted")
	}
	if err := log.Append(Record{Kind: KindCheckpoint}); err == nil {
		t.Fatal("nil-snapshot checkpoint accepted by Append")
	}
}

// TestCheckpointCrashBeforeTruncate simulates the crash window between
// a durable checkpoint and the deletion of the segments behind it: Open
// must finish the truncation and still replay from the checkpoint.
func TestCheckpointCrashBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	log, _, err := Open(dir, Options{Sync: SyncPolicy{EveryRecord: true}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := log.Append(Record{Kind: KindOwn, Msg: voteMsg(types.Round(i + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.AppendCheckpoint(Record{Kind: KindCheckpoint, Round: 10, Snapshot: snapFixture(t)}); err != nil {
		t.Fatal(err)
	}
	log.Crash()

	// Resurrect the pre-checkpoint segment as if deletion had not
	// happened (crash between fsync and unlink).
	ckptSegs := dirSegments(t, dir)
	ghost := filepath.Join(dir, segName(0)) // below every live index
	data := append([]byte(nil), segMagic[:]...)
	if err := os.WriteFile(ghost, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.HasCheckpoint {
		t.Fatal("recovery lost the checkpoint")
	}
	if rec.SegmentsRemoved == 0 {
		t.Fatal("open did not finish the interrupted truncation")
	}
	if _, err := os.Stat(ghost); !os.IsNotExist(err) {
		t.Fatalf("ghost segment still present (segments at checkpoint: %v)", ckptSegs)
	}
}
