package wal

import (
	"testing"
	"time"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// fakeEngine is a scripted Replayer: it emits preset actions and records
// every call the Recorder makes, so tests can assert journaling and
// replay order without a real cluster.
type fakeEngine struct {
	calls   []string
	actions []protocol.Action // returned by the next Handle*/Start call
}

func (f *fakeEngine) ID() types.ReplicaID { return 3 }
func (f *fakeEngine) Protocol() string    { return "fake" }
func (f *fakeEngine) Start(time.Time) []protocol.Action {
	f.calls = append(f.calls, "start")
	return f.take()
}
func (f *fakeEngine) HandleMessage(from types.ReplicaID, msg types.Message, _ time.Time) []protocol.Action {
	f.calls = append(f.calls, "msg:"+msg.Kind().String())
	return f.take()
}
func (f *fakeEngine) HandleTimer(protocol.TimerID, time.Time) []protocol.Action {
	f.calls = append(f.calls, "timer")
	return f.take()
}
func (f *fakeEngine) Metrics() map[string]int64 { return map[string]int64{"fake": 1} }
func (f *fakeEngine) BeginReplay()              { f.calls = append(f.calls, "begin-replay") }
func (f *fakeEngine) ReplayOwn(msg types.Message, _ time.Time) []protocol.Action {
	f.calls = append(f.calls, "replay-own:"+msg.Kind().String())
	return f.take()
}
func (f *fakeEngine) EndReplay(time.Time) []protocol.Action {
	f.calls = append(f.calls, "end-replay")
	return f.take()
}
func (f *fakeEngine) take() []protocol.Action {
	a := f.actions
	f.actions = nil
	return a
}

func voteMsg(round types.Round) *types.VoteMsg {
	return &types.VoteMsg{Votes: []types.Vote{{
		Kind: types.VoteNotarize, Round: round, Voter: 3, Signature: []byte("sig"),
	}}}
}

func TestRecorderJournalsAndReplays(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(100, 0)

	// First life: start, receive a message, emit a vote and a commit.
	eng := &fakeEngine{}
	rec, err := NewRecorder(RecorderConfig{Dir: dir, Engine: eng,
		Options: Options{Sync: SyncPolicy{EveryRecord: true}}})
	if err != nil {
		t.Fatal(err)
	}
	rec.Start(now)
	eng.actions = []protocol.Action{
		protocol.Broadcast{Msg: voteMsg(1)},
		protocol.Broadcast{Msg: &types.SyncRequest{From: 1, To: 2}}, // not journaled
		protocol.Commit{Blocks: []*types.Block{types.Genesis()}, Explicit: protocol.FinalizeFast},
	}
	rec.HandleMessage(5, voteMsg(1), now)
	rec.Crash() // even with EveryRecord, everything is already durable

	// Second life: the journal must replay — inbound through
	// HandleMessage, own through ReplayOwn, bracketed by Begin/EndReplay —
	// and the commit record must not re-enter the engine.
	eng2 := &fakeEngine{}
	rec2, err := NewRecorder(RecorderConfig{Dir: dir, Engine: eng2,
		Options: Options{Sync: SyncPolicy{EveryRecord: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec2.Recovered(); got.Truncated || len(got.Records) != 3 {
		t.Fatalf("recovered %d records (truncated=%v), want 3", len(got.Records), got.Truncated)
	}
	rec2.Start(now)
	want := []string{"begin-replay", "start", "msg:vote", "replay-own:vote", "end-replay"}
	if len(eng2.calls) != len(want) {
		t.Fatalf("replay calls = %v, want %v", eng2.calls, want)
	}
	for i := range want {
		if eng2.calls[i] != want[i] {
			t.Fatalf("replay call %d = %q, want %q (all: %v)", i, eng2.calls[i], want[i], eng2.calls)
		}
	}
	m := rec2.Metrics()
	if m["wal_replayed_records"] != 3 {
		t.Fatalf("wal_replayed_records = %d", m["wal_replayed_records"])
	}
	if err := rec2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecorderForcesOwnBeforeSend: under group commit with an
// effectively-infinite window, a message the replica signed must still
// be durable the moment record() returns — i.e. before the host can
// send it — so a crash can never forget a vote the network saw.
func TestRecorderForcesOwnBeforeSend(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(100, 0)
	lazy := Options{Sync: SyncPolicy{Interval: time.Hour, Bytes: 1 << 30}}

	eng := &fakeEngine{}
	rec, err := NewRecorder(RecorderConfig{Dir: dir, Engine: eng, Options: lazy})
	if err != nil {
		t.Fatal(err)
	}
	rec.Start(now)
	// An inbound-only batch stays in the group buffer...
	rec.HandleMessage(1, voteMsg(1), now)
	// ...but a batch carrying an own vote forces the whole group down.
	eng.actions = []protocol.Action{protocol.Broadcast{Msg: voteMsg(2)}}
	rec.HandleMessage(2, voteMsg(2), now)
	rec.Crash()

	_, recovery, err := Open(dir, lazy)
	if err != nil {
		t.Fatal(err)
	}
	// All three records survive: the forced sync for the own vote
	// committed the buffered inbound records with it.
	if len(recovery.Records) != 3 {
		t.Fatalf("recovered %d records, want 3 (own-vote sync must commit the group)", len(recovery.Records))
	}
	var ownDurable bool
	for _, r := range recovery.Records {
		if r.Kind == KindOwn {
			ownDurable = true
		}
	}
	if !ownDurable {
		t.Fatal("own vote not durable after record() returned")
	}

	// With NoForceOwn the same sequence loses everything to the crash.
	dir2 := t.TempDir()
	noForce := lazy
	noForce.Sync.NoForceOwn = true
	eng2 := &fakeEngine{}
	rec2, err := NewRecorder(RecorderConfig{Dir: dir2, Engine: eng2, Options: noForce})
	if err != nil {
		t.Fatal(err)
	}
	rec2.Start(now)
	eng2.actions = []protocol.Action{protocol.Broadcast{Msg: voteMsg(2)}}
	rec2.HandleMessage(2, voteMsg(2), now)
	rec2.Crash()
	_, recovery2, err := Open(dir2, noForce)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovery2.Records) != 0 {
		t.Fatalf("NoForceOwn recovered %d records, want 0", len(recovery2.Records))
	}
}

// TestRecorderReplayFiltersActions: replay must surface commits and
// safety faults to the host and drop sends/timers from rounds long past.
func TestRecorderReplayFiltersActions(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(100, 0)

	eng := &fakeEngine{}
	rec, err := NewRecorder(RecorderConfig{Dir: dir, Engine: eng,
		Options: Options{Sync: SyncPolicy{EveryRecord: true}}})
	if err != nil {
		t.Fatal(err)
	}
	rec.Start(now)
	rec.HandleMessage(1, voteMsg(7), now)
	rec.Crash()

	eng2 := &fakeEngine{}
	rec2, err := NewRecorder(RecorderConfig{Dir: dir, Engine: eng2,
		Options: Options{Sync: SyncPolicy{EveryRecord: true}}})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	// The replayed inbound message makes the engine emit one of each
	// action kind; only Commit may pass the filter (plus EndReplay's
	// live actions, which pass unfiltered).
	commit := protocol.Commit{Blocks: []*types.Block{types.Genesis()}, Explicit: protocol.FinalizeSlow}
	eng2.actions = []protocol.Action{
		protocol.Broadcast{Msg: voteMsg(7)},
		protocol.Send{To: 2, Msg: voteMsg(7)},
		protocol.SetTimer{ID: protocol.TimerID{Round: 7}},
		commit,
	}
	acts := rec2.Start(now)
	var commits, others int
	for _, a := range acts {
		if _, ok := a.(protocol.Commit); ok {
			commits++
		} else {
			others++
		}
	}
	if commits != 1 || others != 0 {
		t.Fatalf("replay actions = %d commits + %d others, want 1 + 0 (%v)", commits, others, acts)
	}
}
