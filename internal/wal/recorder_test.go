package wal

import (
	"errors"
	"os"
	"testing"
	"time"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// fakeEngine is a scripted Replayer: it emits preset actions and records
// every call the Recorder makes, so tests can assert journaling and
// replay order without a real cluster.
type fakeEngine struct {
	calls   []string
	actions []protocol.Action // returned by the next Handle*/Start call
}

func (f *fakeEngine) ID() types.ReplicaID { return 3 }
func (f *fakeEngine) Protocol() string    { return "fake" }
func (f *fakeEngine) Start(time.Time) []protocol.Action {
	f.calls = append(f.calls, "start")
	return f.take()
}
func (f *fakeEngine) HandleMessage(from types.ReplicaID, msg types.Message, _ time.Time) []protocol.Action {
	f.calls = append(f.calls, "msg:"+msg.Kind().String())
	return f.take()
}
func (f *fakeEngine) HandleTimer(protocol.TimerID, time.Time) []protocol.Action {
	f.calls = append(f.calls, "timer")
	return f.take()
}
func (f *fakeEngine) Metrics() map[string]int64 { return map[string]int64{"fake": 1} }
func (f *fakeEngine) BeginReplay()              { f.calls = append(f.calls, "begin-replay") }
func (f *fakeEngine) ReplayOwn(msg types.Message, _ time.Time) []protocol.Action {
	f.calls = append(f.calls, "replay-own:"+msg.Kind().String())
	return f.take()
}
func (f *fakeEngine) EndReplay(time.Time) []protocol.Action {
	f.calls = append(f.calls, "end-replay")
	return f.take()
}
func (f *fakeEngine) take() []protocol.Action {
	a := f.actions
	f.actions = nil
	return a
}

func voteMsg(round types.Round) *types.VoteMsg {
	return &types.VoteMsg{Votes: []types.Vote{{
		Kind: types.VoteNotarize, Round: round, Voter: 3, Signature: []byte("sig"),
	}}}
}

func TestRecorderJournalsAndReplays(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(100, 0)

	// First life: start, receive a message, emit a vote and a commit.
	eng := &fakeEngine{}
	rec, err := NewRecorder(RecorderConfig{Dir: dir, Engine: eng,
		Options: Options{Sync: SyncPolicy{EveryRecord: true}}})
	if err != nil {
		t.Fatal(err)
	}
	rec.Start(now)
	eng.actions = []protocol.Action{
		protocol.Broadcast{Msg: voteMsg(1)},
		protocol.Broadcast{Msg: &types.SyncRequest{From: 1, To: 2}}, // not journaled
		protocol.Commit{Blocks: []*types.Block{types.Genesis()}, Explicit: protocol.FinalizeFast},
	}
	rec.HandleMessage(5, voteMsg(1), now)
	rec.Crash() // even with EveryRecord, everything is already durable

	// Second life: the journal must replay — inbound through
	// HandleMessage, own through ReplayOwn, bracketed by Begin/EndReplay —
	// and the commit record must not re-enter the engine.
	eng2 := &fakeEngine{}
	rec2, err := NewRecorder(RecorderConfig{Dir: dir, Engine: eng2,
		Options: Options{Sync: SyncPolicy{EveryRecord: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec2.Recovered(); got.Truncated || len(got.Records) != 3 {
		t.Fatalf("recovered %d records (truncated=%v), want 3", len(got.Records), got.Truncated)
	}
	rec2.Start(now)
	want := []string{"begin-replay", "start", "msg:vote", "replay-own:vote", "end-replay"}
	if len(eng2.calls) != len(want) {
		t.Fatalf("replay calls = %v, want %v", eng2.calls, want)
	}
	for i := range want {
		if eng2.calls[i] != want[i] {
			t.Fatalf("replay call %d = %q, want %q (all: %v)", i, eng2.calls[i], want[i], eng2.calls)
		}
	}
	m := rec2.Metrics()
	if m["wal_replayed_records"] != 3 {
		t.Fatalf("wal_replayed_records = %d", m["wal_replayed_records"])
	}
	if err := rec2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecorderForcesOwnBeforeSend: under group commit with an
// effectively-infinite window, a message the replica signed must still
// be durable the moment record() returns — i.e. before the host can
// send it — so a crash can never forget a vote the network saw.
func TestRecorderForcesOwnBeforeSend(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(100, 0)
	lazy := Options{Sync: SyncPolicy{Interval: time.Hour, Bytes: 1 << 30}}

	eng := &fakeEngine{}
	rec, err := NewRecorder(RecorderConfig{Dir: dir, Engine: eng, Options: lazy})
	if err != nil {
		t.Fatal(err)
	}
	rec.Start(now)
	// An inbound-only batch stays in the group buffer...
	rec.HandleMessage(1, voteMsg(1), now)
	// ...but a batch carrying an own vote forces the whole group down.
	eng.actions = []protocol.Action{protocol.Broadcast{Msg: voteMsg(2)}}
	rec.HandleMessage(2, voteMsg(2), now)
	rec.Crash()

	_, recovery, err := Open(dir, lazy)
	if err != nil {
		t.Fatal(err)
	}
	// All three records survive: the forced sync for the own vote
	// committed the buffered inbound records with it.
	if len(recovery.Records) != 3 {
		t.Fatalf("recovered %d records, want 3 (own-vote sync must commit the group)", len(recovery.Records))
	}
	var ownDurable bool
	for _, r := range recovery.Records {
		if r.Kind == KindOwn {
			ownDurable = true
		}
	}
	if !ownDurable {
		t.Fatal("own vote not durable after record() returned")
	}

	// With NoForceOwn the same sequence loses everything to the crash.
	dir2 := t.TempDir()
	noForce := lazy
	noForce.Sync.NoForceOwn = true
	eng2 := &fakeEngine{}
	rec2, err := NewRecorder(RecorderConfig{Dir: dir2, Engine: eng2, Options: noForce})
	if err != nil {
		t.Fatal(err)
	}
	rec2.Start(now)
	eng2.actions = []protocol.Action{protocol.Broadcast{Msg: voteMsg(2)}}
	rec2.HandleMessage(2, voteMsg(2), now)
	rec2.Crash()
	_, recovery2, err := Open(dir2, noForce)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovery2.Records) != 0 {
		t.Fatalf("NoForceOwn recovered %d records, want 0", len(recovery2.Records))
	}
}

// plainEngine is a protocol.Engine that does NOT implement Replayer —
// the shape of the baseline engines (hotstuff, streamlet).
type plainEngine struct{ f *fakeEngine }

func (p *plainEngine) ID() types.ReplicaID { return p.f.ID() }
func (p *plainEngine) Protocol() string    { return "plain" }
func (p *plainEngine) Start(now time.Time) []protocol.Action {
	return p.f.Start(now)
}
func (p *plainEngine) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	return p.f.HandleMessage(from, msg, now)
}
func (p *plainEngine) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	return p.f.HandleTimer(id, now)
}
func (p *plainEngine) Metrics() map[string]int64 { return p.f.Metrics() }

// TestRecorderRefusesNonReplayerOverNonEmptyLog: an engine that cannot
// replay must not silently restart fresh over a journal holding a
// voting record — the network may still hold the pre-crash votes, so a
// fresh round 1 can re-vote them differently (equivocation). NewRecorder
// must refuse; an empty log stays fine; the refused log is untouched.
func TestRecorderRefusesNonReplayerOverNonEmptyLog(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(100, 0)
	eng := &fakeEngine{}
	rec, err := NewRecorder(RecorderConfig{Dir: dir, Engine: eng,
		Options: Options{Sync: SyncPolicy{EveryRecord: true}}})
	if err != nil {
		t.Fatal(err)
	}
	rec.Start(now)
	eng.actions = []protocol.Action{protocol.Broadcast{Msg: voteMsg(1)}}
	rec.HandleMessage(1, voteMsg(1), now)
	rec.Crash()

	before, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRecorder(RecorderConfig{Dir: dir, Engine: &plainEngine{f: &fakeEngine{}},
		Options: Options{Sync: SyncPolicy{EveryRecord: true}}}); err == nil {
		t.Fatal("non-Replayer engine accepted over a non-empty log")
	}
	// The refusal happens before the log is opened: no repair, no fresh
	// segment — a supervisor crash-looping on this misconfiguration must
	// not grow the directory.
	after, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("refused NewRecorder mutated the directory: %d -> %d entries", len(before), len(after))
	}

	// An empty directory is fine: the plain engine starts fresh and the
	// log records.
	rec2, err := NewRecorder(RecorderConfig{Dir: t.TempDir(), Engine: &plainEngine{f: &fakeEngine{}},
		Options: Options{Sync: SyncPolicy{EveryRecord: true}}})
	if err != nil {
		t.Fatalf("non-Replayer engine refused over an empty log: %v", err)
	}
	rec2.Close()

	// The refusal must not have damaged the journal: a Replayer engine
	// still recovers everything.
	rec3, err := NewRecorder(RecorderConfig{Dir: dir, Engine: &fakeEngine{},
		Options: Options{Sync: SyncPolicy{EveryRecord: true}}})
	if err != nil {
		t.Fatal(err)
	}
	defer rec3.Close()
	if got := rec3.Recovered(); got.Truncated || len(got.Records) != 2 {
		t.Fatalf("after refusal recovered %d records (truncated=%v), want 2", len(got.Records), got.Truncated)
	}
}

// countSends tallies own-signature Broadcast/Send actions in a batch.
func countSends(acts []protocol.Action) int {
	n := 0
	for _, a := range acts {
		switch a.(type) {
		case protocol.Broadcast, protocol.Send:
			n++
		}
	}
	return n
}

// TestRecorderSuppressesSendsOnWALError: once the log cannot make an own
// vote durable, the vote must not reach the transport — the replica goes
// silent (crash-faulty) instead of running with a journal that
// under-reports what the network saw, which is the equivocation window
// the WAL exists to close. Commits still reach the host, the error is
// visible in metrics, and ContinueOnError opts back into the old
// behavior.
func TestRecorderSuppressesSendsOnWALError(t *testing.T) {
	now := time.Unix(100, 0)
	batch := func() []protocol.Action {
		return []protocol.Action{
			protocol.Broadcast{Msg: voteMsg(2)},
			protocol.Send{To: 1, Msg: voteMsg(2)},
			protocol.Commit{Blocks: []*types.Block{types.Genesis()}, Explicit: protocol.FinalizeSlow},
		}
	}
	stick := func(r *Recorder) {
		r.log.mu.Lock()
		r.log.err = errors.New("disk gone")
		r.log.mu.Unlock()
	}

	t.Run("sticky error drops own sends", func(t *testing.T) {
		eng := &fakeEngine{}
		rec, err := NewRecorder(RecorderConfig{Dir: t.TempDir(), Engine: eng,
			Options: Options{Sync: SyncPolicy{EveryRecord: true}}})
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Crash()
		rec.Start(now)
		stick(rec)
		eng.actions = batch()
		acts := rec.HandleMessage(1, voteMsg(2), now)
		if n := countSends(acts); n != 0 {
			t.Fatalf("%d own sends externalized after WAL error, want 0 (%v)", n, acts)
		}
		var commits int
		for _, a := range acts {
			if _, ok := a.(protocol.Commit); ok {
				commits++
			}
		}
		if commits != 1 {
			t.Fatalf("commit dropped with the sends: %v", acts)
		}
		m := rec.Metrics()
		if m["wal_suppressed_sends"] != 2 || m["wal_errors"] == 0 {
			t.Fatalf("metrics = suppressed %d, errors %d; want 2 and > 0",
				m["wal_suppressed_sends"], m["wal_errors"])
		}
		if rec.Err() == nil {
			t.Fatal("sticky error not surfaced through Err")
		}
	})

	t.Run("forced group sync failure drops own sends", func(t *testing.T) {
		eng := &fakeEngine{}
		rec, err := NewRecorder(RecorderConfig{Dir: t.TempDir(), Engine: eng,
			Options: Options{Sync: SyncPolicy{Interval: time.Hour, Bytes: 1 << 30}}})
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Crash()
		rec.Start(now)
		// Close the segment file underneath the log: the append lands in
		// the bufio buffer without error, and the failure only surfaces in
		// the forced pre-send flush+fsync — exactly the path that must not
		// release the vote.
		rec.log.f.Close()
		eng.actions = batch()
		acts := rec.HandleMessage(1, voteMsg(2), now)
		if n := countSends(acts); n != 0 {
			t.Fatalf("%d own sends externalized after failed forced sync, want 0", n)
		}
		if rec.Err() == nil {
			t.Fatal("sync failure not sticky")
		}
	})

	t.Run("ContinueOnError keeps sending", func(t *testing.T) {
		eng := &fakeEngine{}
		rec, err := NewRecorder(RecorderConfig{Dir: t.TempDir(), Engine: eng,
			Options:         Options{Sync: SyncPolicy{EveryRecord: true}},
			ContinueOnError: true})
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Crash()
		rec.Start(now)
		stick(rec)
		eng.actions = batch()
		acts := rec.HandleMessage(1, voteMsg(2), now)
		if n := countSends(acts); n != 2 {
			t.Fatalf("%d own sends with ContinueOnError, want 2", n)
		}
		if m := rec.Metrics(); m["wal_errors"] == 0 {
			t.Fatal("error not counted under ContinueOnError")
		}
	})
}

// TestRecorderReplayFiltersActions: replay must surface commits and
// safety faults to the host and drop sends/timers from rounds long past.
func TestRecorderReplayFiltersActions(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(100, 0)

	eng := &fakeEngine{}
	rec, err := NewRecorder(RecorderConfig{Dir: dir, Engine: eng,
		Options: Options{Sync: SyncPolicy{EveryRecord: true}}})
	if err != nil {
		t.Fatal(err)
	}
	rec.Start(now)
	rec.HandleMessage(1, voteMsg(7), now)
	rec.Crash()

	eng2 := &fakeEngine{}
	rec2, err := NewRecorder(RecorderConfig{Dir: dir, Engine: eng2,
		Options: Options{Sync: SyncPolicy{EveryRecord: true}}})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	// The replayed inbound message makes the engine emit one of each
	// action kind; only Commit may pass the filter (plus EndReplay's
	// live actions, which pass unfiltered).
	commit := protocol.Commit{Blocks: []*types.Block{types.Genesis()}, Explicit: protocol.FinalizeSlow}
	eng2.actions = []protocol.Action{
		protocol.Broadcast{Msg: voteMsg(7)},
		protocol.Send{To: 2, Msg: voteMsg(7)},
		protocol.SetTimer{ID: protocol.TimerID{Round: 7}},
		commit,
	}
	acts := rec2.Start(now)
	var commits, others int
	for _, a := range acts {
		if _, ok := a.(protocol.Commit); ok {
			commits++
		} else {
			others++
		}
	}
	if commits != 1 || others != 0 {
		t.Fatalf("replay actions = %d commits + %d others, want 1 + 0 (%v)", commits, others, acts)
	}
}
