// Package wal is a durable write-ahead log for consensus replicas: a
// segmented, CRC-framed append-only log with group commit, plus a
// Recorder that wraps any protocol.Engine and journals its inputs and
// outputs so a crashed replica can rebuild blocktree and protocol state
// on restart.
//
// # Log format
//
// A log is a directory of segment files (wal-00000001.seg, ...). Every
// segment opens with an 8-byte magic; every record is framed as
//
//	u32 payload length | u32 CRC-32C of payload | payload
//
// with the payload encoding in record.go. Recovery scans segments in
// order and stops at the first frame that is truncated, oversized, fails
// its CRC, or does not decode — everything before it is the durable
// prefix, everything after it is discarded. Open then repairs the log:
// the damaged segment is truncated to its valid prefix and any later
// segments are emptied (their bytes kept aside as *.seg.corrupt for
// forensics), so segments appended
// by this and subsequent runs extend a clean chain — without the repair,
// a torn frame left by run 1 would permanently fence off everything run
// 2 journals after it. A torn write at the tail therefore loses at most
// the records of the last unsynced group; it can never resurrect
// garbage, and replay re-verifies every signature a record carries, so a
// corrupted-but-CRC-valid entry cannot smuggle a forged vote into the
// engine either.
//
// # Group commit
//
// Durability cost is amortized the way the verification pipeline
// amortizes signature checks: appends land in a user-space buffer, and a
// background syncer flushes + fsyncs the batch once per SyncPolicy
// window (or earlier when SyncPolicy.Bytes accumulate). Every record of
// the window shares one fsync. The price is a bounded durability window:
// a crash loses at most the records appended since the last sync.
// SyncPolicy.EveryRecord trades that window away for an fsync per append
// (the cmd/bench "persist" experiment measures the gap).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"banyan/internal/metrics"
	"banyan/internal/types"
)

var segMagic = [8]byte{'b', 'a', 'n', 'W', 'A', 'L', '0', '1'}

// ErrClosed reports an append to a closed (or crashed) log.
var ErrClosed = errors.New("wal: log closed")

// maxRecordLen bounds frame payloads so a corrupt length prefix cannot
// trigger a huge allocation; it matches the types package slice cap.
const maxRecordLen = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy says when appended records become durable.
type SyncPolicy struct {
	// EveryRecord fsyncs after every append (no durability window, no
	// amortization). When set, Interval and Bytes are ignored.
	EveryRecord bool
	// Interval is the group-commit window: buffered records are flushed
	// and fsynced at least this often. Zero selects 2ms; negative is
	// equivalent to EveryRecord.
	Interval time.Duration
	// Bytes flushes the group early once this much is buffered. Zero
	// selects 256 KiB.
	Bytes int
	// NoForceOwn removes the write-ahead discipline for the replica's
	// own messages. By default the Recorder forces the group to disk
	// before handing a message this replica signed to the transport, so
	// the journal can never under-report a vote the network saw — the
	// invariant that makes a restarted replica unable to equivocate.
	// Inbound records still ride the group window (they dominate volume;
	// own messages are a handful per round), and the forced sync commits
	// the whole pending group, so amortization survives. Set NoForceOwn
	// for maximum throughput at the price of a crash window in which a
	// sent vote is forgotten.
	NoForceOwn bool
}

func (p SyncPolicy) normalize() SyncPolicy {
	if p.Interval < 0 {
		p.EveryRecord = true
	}
	if p.Interval <= 0 {
		p.Interval = 2 * time.Millisecond
	}
	if p.Bytes <= 0 {
		p.Bytes = 256 << 10
	}
	return p
}

// Options tune a log.
type Options struct {
	// Sync is the durability policy (see SyncPolicy).
	Sync SyncPolicy
	// SegmentBytes rotates to a fresh segment file once the current one
	// reaches this size. Zero selects 64 MiB.
	SegmentBytes int
	// FlushHist, when set, records the duration of every group-commit
	// flush (buffer flush + fsync). Recording is a few atomic adds, so
	// it rides inside the lock without extending the group window; nil
	// (the default) records nothing.
	FlushHist *metrics.Histogram
}

func (o Options) normalize() Options {
	o.Sync = o.Sync.normalize()
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Records is the durable record suffix to replay, in append order.
	// When the log holds checkpoints it starts at the newest checkpoint
	// record; everything before it is summarized by that checkpoint and
	// skipped (Skipped counts it).
	Records []Record
	// Skipped is the number of durable records before the newest
	// checkpoint that replay does not need.
	Skipped int
	// HasCheckpoint reports that Records starts with a checkpoint record.
	HasCheckpoint bool
	// Segments is the number of segment files scanned.
	Segments int
	// SegmentsRemoved counts dead pre-checkpoint segment files Open
	// deleted (checkpoint truncation that a crash interrupted).
	SegmentsRemoved int
	// Truncated reports that scanning stopped at an invalid frame (torn
	// write, bad CRC, or undecodable payload) before the end of the data.
	Truncated bool
	// Repaired reports that Open truncated the damaged segment to its
	// valid prefix (and emptied any later segments, keeping their bytes
	// as *.seg.corrupt) so future appends extend a clean chain.
	Repaired bool
}

// Log is an append-only write-ahead log over one directory. Append,
// Sync, Close and Crash are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	segIndex uint64
	segBytes int
	pending  int // bytes buffered since the last sync
	closed   bool
	err      error // sticky I/O error

	appends     int64
	syncs       int64
	checkpoints int64
	segsRemoved int64

	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// Open creates (or reopens) the log in dir, recovering the durable
// record prefix of any previous run. Appends go to a fresh segment.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	opts = opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	rec, lastIndex, err := recoverDir(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{
		dir:  dir,
		opts: opts,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if err := l.openSegment(lastIndex + 1); err != nil {
		return nil, nil, err
	}
	if !opts.Sync.EveryRecord {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, rec, nil
}

func segName(index uint64) string { return fmt.Sprintf("wal-%08d.seg", index) }

func segIndex(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	var idx uint64
	if _, err := fmt.Sscanf(name, "wal-%08d.seg", &idx); err != nil {
		return 0, false
	}
	return idx, true
}

// recover scans existing segments in index order, decoding records until
// the first invalid frame anywhere (records after a corruption cannot be
// trusted to be in order, so the scan stops for good). It then repairs
// the directory: the damaged segment is truncated to its valid prefix
// and every later segment is quarantined, so the durable prefix on disk
// matches what was recovered and segments appended by this run remain
// reachable by the next recovery instead of being fenced off behind the
// old torn frame.
//
// With checkpoints in the log, the replayable suffix starts at the
// newest checkpoint record: everything before it is state that
// checkpoint summarizes. Segments wholly before the checkpoint's segment
// are dead weight — normally AppendCheckpoint removes them right after
// the checkpoint fsync, but a crash in between leaves them behind, so
// Open finishes the job (the checkpoint is durable first in both paths,
// which is what makes the deletion safe in any order after it).
func recoverDir(dir string) (*Recovery, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	var indexes []uint64
	for _, e := range entries {
		if idx, ok := segIndex(e.Name()); ok {
			indexes = append(indexes, idx)
		}
	}
	sort.Slice(indexes, func(i, j int) bool { return indexes[i] < indexes[j] })
	rec := &Recovery{}
	var last uint64
	var badIndex uint64 // segment holding the first invalid frame
	var badLen int      // its valid prefix length in bytes
	var quarantine []uint64
	segOf := make([]uint64, 0, 64) // segment index per recovered record
	for _, idx := range indexes {
		if idx > last {
			last = idx
		}
		if rec.Truncated {
			// A prior segment was corrupt; later data is untrusted.
			quarantine = append(quarantine, idx)
			continue
		}
		rec.Segments++
		data, err := os.ReadFile(filepath.Join(dir, segName(idx)))
		if err != nil {
			return nil, 0, fmt.Errorf("wal: %w", err)
		}
		before := len(rec.Records)
		validLen, clean := scanSegment(data, &rec.Records)
		for i := before; i < len(rec.Records); i++ {
			segOf = append(segOf, idx)
		}
		if !clean {
			rec.Truncated = true
			badIndex, badLen = idx, validLen
		}
	}
	if rec.Truncated {
		if err := repairTail(dir, badIndex, badLen, quarantine); err != nil {
			return nil, 0, err
		}
		rec.Repaired = true
	}
	// Replay from the newest checkpoint.
	ckpt := -1
	for i, r := range rec.Records {
		if r.Kind == KindCheckpoint {
			ckpt = i
		}
	}
	if ckpt >= 0 {
		rec.Skipped = ckpt
		rec.HasCheckpoint = true
		rec.Records = rec.Records[ckpt:]
		// Finish an interrupted truncation: segments wholly before the
		// checkpoint's segment hold only summarized records.
		rec.SegmentsRemoved = removeSegmentsBelow(dir, segOf[ckpt])
	}
	return rec, last, nil
}

// removeSegmentsBelow deletes segment files with index < floor,
// returning how many were removed. Best-effort: a segment that cannot be
// removed is simply re-scanned (and re-skipped) on the next Open.
func removeSegmentsBelow(dir string, floor uint64) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range entries {
		if idx, ok := segIndex(e.Name()); ok && idx < floor {
			if os.Remove(filepath.Join(dir, e.Name())) == nil {
				removed++
			}
		}
	}
	if removed > 0 {
		syncDir(dir)
	}
	return removed
}

// repairTail quarantines everything after the corruption point, then
// truncates the damaged segment to its valid record prefix. The bytes
// being discarded are first copied aside to *.seg.corrupt (best-effort
// forensics); the live *.seg files themselves are truncated in place —
// later segments to zero length, which scans clean — rather than
// renamed, so the repair's correctness rests only on file fsyncs and
// never on directory fsync, which some filesystems refuse or reorder.
// Ordering is what makes an interrupted repair safe: the torn frame in
// the damaged segment is the marker that a repair is owed, so every
// later segment is durably emptied before that marker is erased. A
// crash mid-repair leaves the marker in place and the next Open redoes
// the repair; the reverse order could leave a cleanly-truncated
// damaged segment followed by discarded-but-CRC-valid segments that
// the next scan would wrongly accept as the voting record.
func repairTail(dir string, badIndex uint64, validLen int, later []uint64) error {
	for _, idx := range later {
		path := filepath.Join(dir, segName(idx))
		quarantineCopy(path)
		if err := truncateSync(path, 0); err != nil {
			return err
		}
	}
	path := filepath.Join(dir, segName(badIndex))
	quarantineCopy(path)
	if err := truncateSync(path, int64(validLen)); err != nil {
		return err
	}
	syncDir(dir) // best-effort durability for the forensic copies
	return nil
}

// quarantineCopy preserves path's current bytes as path+".corrupt" for
// forensics before the repair truncates them away. Best-effort on both
// sides: it never overwrites an earlier copy (a redone repair would
// only have already-truncated bytes to offer), and failures do not
// block the repair — the copy plays no role in correctness.
func quarantineCopy(path string) {
	dst := path + ".corrupt"
	if _, err := os.Lstat(dst); err == nil {
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	os.WriteFile(dst, data, 0o644) //nolint:errcheck
}

// truncateSync truncates path to size and forces the change to disk
// before returning.
func truncateSync(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: repair: %w", err)
	}
	if terr := f.Truncate(size); terr == nil {
		err = f.Sync()
	} else {
		err = terr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: repair: %w", err)
	}
	return nil
}

// syncDir fsyncs the directory. Errors are ignored: some filesystems
// reject fsync on directories, and nothing correctness-critical depends
// on it — repair durability rides on per-file fsyncs.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
}

// probeDir reports whether any segment in dir holds at least one valid
// record, and whether any of those records is a checkpoint. Purely
// read-only — no repair, no segment creation — so callers can probe a
// directory before deciding to Open it. A missing directory simply has
// no records.
func probeDir(dir string) (records, checkpoints bool, err error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return false, false, nil
	}
	if err != nil {
		return false, false, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if records && checkpoints {
			break // both answers known; skip the remaining I/O
		}
		if _, ok := segIndex(e.Name()); !ok {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return false, false, fmt.Errorf("wal: %w", err)
		}
		var recs []Record
		scanSegment(data, &recs)
		for _, r := range recs {
			records = true
			if r.Kind == KindCheckpoint {
				checkpoints = true
				break
			}
		}
	}
	return records, checkpoints, nil
}

// scanSegment appends a segment's valid record prefix to out, returning
// the prefix's byte length and whether the segment was consumed cleanly
// to its end.
func scanSegment(data []byte, out *[]Record) (validLen int, clean bool) {
	if len(data) < len(segMagic) || [8]byte(data[:8]) != segMagic {
		return 0, len(data) == 0
	}
	off := len(segMagic)
	for off < len(data) {
		if off+8 > len(data) {
			return off, false // torn frame header
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > maxRecordLen || off+8+int(n) > len(data) {
			return off, false // bogus length or torn payload
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, false // bit rot or torn write inside the frame
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return off, false // CRC-valid but not a record we understand
		}
		*out = append(*out, r)
		off += 8 + int(n)
	}
	return off, true
}

func (l *Log) openSegment(index uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(index)),
		os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.segIndex = index
	l.segBytes = 0
	if _, err := l.w.Write(segMagic[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Append journals one record. With group commit the record becomes
// durable within the sync window; with EveryRecord it is durable on
// return. The payload is framed in a pooled scratch buffer (the record's
// exact size is known up front), so steady-state appends allocate
// nothing.
func (l *Log) Append(r Record) error {
	bp := types.GetBuffer()
	defer types.PutBuffer(bp)
	buf := *bp
	if need := r.payloadSize(); cap(buf) < need {
		buf = make([]byte, 0, need)
		*bp = buf // let the pool keep the grown buffer
	}
	payload, err := r.appendPayload(buf[:0])
	if err != nil {
		return err
	}
	*bp = payload[:0]
	if len(payload) > maxRecordLen {
		// Recovery rejects frames above maxRecordLen as corruption;
		// journaling one would poison the segment for the next Open.
		return fmt.Errorf("wal: record payload %d bytes exceeds limit %d", len(payload), maxRecordLen)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))

	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(hdr, payload)
}

func (l *Log) appendLocked(hdr [8]byte, payload []byte) error {
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.w.Write(hdr[:]); err != nil {
		return l.fail(err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return l.fail(err)
	}
	size := 8 + len(payload)
	l.segBytes += size
	l.pending += size
	l.appends++
	if l.opts.Sync.EveryRecord || l.pending >= l.opts.Sync.Bytes {
		return l.syncLocked()
	}
	// Leave the group for the background syncer; nudge it so an idle log
	// does not sit on a dirty buffer for a full interval after a burst.
	select {
	case l.wake <- struct{}{}:
	default:
	}
	return nil
}

// AppendCheckpoint journals a checkpoint record and truncates the log
// behind it: the log rotates so the checkpoint opens a fresh segment,
// the checkpoint (and every record before it) is forced to disk, and
// only then are the now-dead earlier segments deleted. A crash anywhere
// in between leaves either the old segments plus a durable checkpoint
// (Open finishes the deletion) or no checkpoint and the old segments
// intact (full replay) — never a gap.
func (l *Log) AppendCheckpoint(r Record) error {
	if r.Kind != KindCheckpoint {
		return fmt.Errorf("wal: AppendCheckpoint with record kind %s", r.Kind)
	}
	payload, err := r.encode()
	if err != nil {
		return err
	}
	if len(payload) > maxRecordLen {
		// A checkpoint recovery would reject as corrupt must never be
		// written — the deletion that follows it would orphan the history
		// it claims to summarize. Refusing here keeps the old segments,
		// so the failure costs replay time, not the voting record.
		return fmt.Errorf("wal: checkpoint payload %d bytes exceeds limit %d", len(payload), maxRecordLen)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	// Rotate so the checkpoint is the first record of its segment; every
	// earlier segment then holds only pre-checkpoint records. A segment
	// that is still empty already satisfies that.
	if l.segBytes > 0 {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if err := l.appendLocked(hdr, payload); err != nil {
		return err
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	// Make the checkpoint segment's directory entry durable before
	// unlinking anything: file fsync persists the data but not the
	// dirent, and without this barrier a metadata-reordering power loss
	// could apply the unlinks while losing the create — an empty log.
	// syncDir is best-effort on filesystems that refuse directory fsync;
	// on those, Open's finish-the-truncation path is the recovery story.
	syncDir(l.dir)
	l.checkpoints++
	l.segsRemoved += int64(removeSegmentsBelow(l.dir, l.segIndex))
	return nil
}

// Sync forces the buffered group to disk now.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.pending == 0 {
		return nil
	}
	var start time.Time
	if l.opts.FlushHist != nil {
		start = time.Now()
	}
	if err := l.w.Flush(); err != nil {
		return l.fail(err)
	}
	if err := l.f.Sync(); err != nil {
		return l.fail(err)
	}
	if l.opts.FlushHist != nil {
		l.opts.FlushHist.Record(time.Since(start))
	}
	l.pending = 0
	l.syncs++
	return nil
}

func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return l.fail(err)
	}
	return l.openSegment(l.segIndex + 1)
}

func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = fmt.Errorf("wal: %w", err)
	}
	return l.err
}

// Close flushes and fsyncs the tail, then closes the log.
func (l *Log) Close() error {
	return l.shutdown(true)
}

// Crash closes the log abandoning the unsynced group — what a process
// crash does to the user-space buffer. Tests use it to exercise the
// recovery path with a realistic torn tail.
func (l *Log) Crash() {
	l.shutdown(false)
}

func (l *Log) shutdown(flush bool) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if flush && l.err == nil && l.pending > 0 {
		if ferr := l.w.Flush(); ferr != nil {
			err = ferr
		} else if serr := l.f.Sync(); serr != nil {
			err = serr
		} else {
			l.syncs++
		}
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	l.mu.Unlock()
	close(l.done)
	l.wg.Wait()
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// syncLoop is the group-commit goroutine: it fsyncs the buffered group
// once per interval while the log is dirty.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	// Create the timer pre-drained: under go < 1.23 a Reset on a fired,
	// undrained timer would leave the stale initial tick in timer.C and
	// collapse the first group's window to zero.
	timer := time.NewTimer(l.opts.Sync.Interval)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-l.wake:
			// Dirty: wait out the rest of the window, then sync whatever
			// accumulated (the group).
			timer.Reset(l.opts.Sync.Interval)
			select {
			case <-l.done:
				return
			case <-timer.C:
			}
			l.mu.Lock()
			if !l.closed && l.err == nil {
				l.syncLocked() //nolint:errcheck // sticky in l.err
			}
			l.mu.Unlock()
		}
	}
}

// Stats reports append/sync counters (and thereby the amortization
// ratio: appends per fsync).
func (l *Log) Stats() (appends, syncs int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs
}

// CheckpointStats reports how many checkpoints were written and how many
// dead segments truncation removed over the log's lifetime.
func (l *Log) CheckpointStats() (checkpoints, segmentsRemoved int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpoints, l.segsRemoved
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

var _ io.Closer = (*Log)(nil)
