package beacon

import (
	"testing"
	"testing/quick"

	"banyan/internal/types"
)

func beacons(t *testing.T, n int) map[string]Beacon {
	t.Helper()
	rr, err := NewRoundRobin(n)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHashChain(n, 12345)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Beacon{"round-robin": rr, "hash-chain": hc}
}

// TestPermutationProperties checks, for both beacons and many rounds, that
// RankOf and ReplicaAt are inverse bijections over [0, n).
func TestPermutationProperties(t *testing.T) {
	for _, n := range []int{1, 2, 4, 19} {
		for name, b := range beacons(t, n) {
			for round := types.Round(0); round < 50; round++ {
				seenRank := make(map[types.Rank]bool, n)
				for id := types.ReplicaID(0); int(id) < n; id++ {
					rank := b.RankOf(round, id)
					if int(rank) >= n {
						t.Fatalf("%s n=%d: rank %d out of range", name, n, rank)
					}
					if seenRank[rank] {
						t.Fatalf("%s n=%d round=%d: duplicate rank %d", name, n, round, rank)
					}
					seenRank[rank] = true
					if got := b.ReplicaAt(round, rank); got != id {
						t.Fatalf("%s n=%d round=%d: ReplicaAt(RankOf(%d)) = %d", name, n, round, id, got)
					}
				}
			}
		}
	}
}

func TestRoundRobinRotation(t *testing.T) {
	rr, err := NewRoundRobin(4)
	if err != nil {
		t.Fatal(err)
	}
	// Leader of round k is replica k mod n.
	for round := types.Round(0); round < 12; round++ {
		if got := Leader(rr, round); got != types.ReplicaID(round%4) {
			t.Errorf("round %d leader = %d, want %d", round, got, round%4)
		}
	}
	// Every replica leads exactly once per n consecutive rounds.
	counts := make(map[types.ReplicaID]int)
	for round := types.Round(100); round < 104; round++ {
		counts[Leader(rr, round)]++
	}
	for id, c := range counts {
		if c != 1 {
			t.Errorf("replica %d led %d times in one rotation", id, c)
		}
	}
}

func TestHashChainDeterminismAndVariation(t *testing.T) {
	a, _ := NewHashChain(7, 9)
	b, _ := NewHashChain(7, 9)
	c, _ := NewHashChain(7, 10)
	same, diff := true, false
	for round := types.Round(0); round < 64; round++ {
		if Leader(a, round) != Leader(b, round) {
			same = false
		}
		if Leader(a, round) != Leader(c, round) {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different permutations")
	}
	if !diff {
		t.Error("different seeds produced identical leader schedules")
	}
}

// TestHashChainLeaderFairness: over many rounds every replica leads a
// roughly proportional share.
func TestHashChainLeaderFairness(t *testing.T) {
	const n, rounds = 5, 5000
	hc, _ := NewHashChain(n, 1)
	counts := make(map[types.ReplicaID]int, n)
	for round := types.Round(0); round < rounds; round++ {
		counts[Leader(hc, round)]++
	}
	want := rounds / n
	for id := types.ReplicaID(0); int(id) < n; id++ {
		got := counts[id]
		if got < want*7/10 || got > want*13/10 {
			t.Errorf("replica %d led %d/%d rounds; expected about %d", id, got, rounds, want)
		}
	}
}

func TestHashChainCacheWindow(t *testing.T) {
	hc, _ := NewHashChain(4, 2)
	// Touch far more rounds than the cache window.
	for round := types.Round(0); round < 10000; round += 10 {
		hc.RankOf(round, 0)
	}
	if len(hc.cache) > 5000 {
		t.Errorf("cache grew to %d entries; the window should bound it", len(hc.cache))
	}
	// Old rounds must still be recomputable and agree with a fresh beacon.
	fresh, _ := NewHashChain(4, 2)
	if hc.RankOf(0, 1) != fresh.RankOf(0, 1) {
		t.Error("re-materialized permutation differs")
	}
}

func TestInvalidN(t *testing.T) {
	if _, err := NewRoundRobin(0); err == nil {
		t.Error("NewRoundRobin(0) should fail")
	}
	if _, err := NewHashChain(-1, 1); err == nil {
		t.Error("NewHashChain(-1) should fail")
	}
}

// TestQuickRoundRobinInverse is the property RankOf/ReplicaAt are inverses
// for arbitrary rounds.
func TestQuickRoundRobinInverse(t *testing.T) {
	rr, _ := NewRoundRobin(19)
	f := func(round uint64, id uint8) bool {
		replica := types.ReplicaID(id % 19)
		r := types.Round(round)
		return rr.ReplicaAt(r, rr.RankOf(r, replica)) == replica
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
