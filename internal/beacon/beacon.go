// Package beacon supplies per-round leader permutations.
//
// The ICC/Banyan model assumes shared randomness: each round a random
// permutation of the replicas assigns every replica a rank, and the rank-0
// replica leads the round (paper section 4, "Block Proposal"). For its
// evaluation the paper replaces the random beacon with a round-robin
// rotation "to increase predictability and transparency" (section 9.1);
// this package provides both, behind one interface.
package beacon

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"banyan/internal/types"
)

// Beacon deterministically maps rounds to leader permutations. All honest
// replicas of a deployment must hold beacons that agree on every round.
type Beacon interface {
	// N is the number of replicas the beacon permutes.
	N() int
	// RankOf returns replica id's rank in the given round.
	RankOf(round types.Round, id types.ReplicaID) types.Rank
	// ReplicaAt returns the replica holding the given rank in the round.
	ReplicaAt(round types.Round, rank types.Rank) types.ReplicaID
}

// Leader returns the round's rank-0 replica.
func Leader(b Beacon, round types.Round) types.ReplicaID {
	return b.ReplicaAt(round, 0)
}

// RoundRobin rotates leadership one replica per round: the leader of round
// k is replica k mod n, and ranks follow in ID order from the leader. This
// is the rotation used in the paper's evaluation.
type RoundRobin struct {
	n int
}

// NewRoundRobin builds a round-robin beacon over n replicas.
func NewRoundRobin(n int) (*RoundRobin, error) {
	if n <= 0 {
		return nil, fmt.Errorf("beacon: n = %d must be positive", n)
	}
	return &RoundRobin{n: n}, nil
}

// N implements Beacon.
func (r *RoundRobin) N() int { return r.n }

// RankOf implements Beacon: rank = (id - round) mod n.
func (r *RoundRobin) RankOf(round types.Round, id types.ReplicaID) types.Rank {
	n := uint64(r.n)
	shift := uint64(round) % n
	return types.Rank((uint64(id) + n - shift) % n)
}

// ReplicaAt implements Beacon: replica = (round + rank) mod n.
func (r *RoundRobin) ReplicaAt(round types.Round, rank types.Rank) types.ReplicaID {
	n := uint64(r.n)
	return types.ReplicaID((uint64(round) + uint64(rank)) % n)
}

// HashChain derives an independent pseudo-random permutation per round from
// a shared seed, standing in for a random-beacon protocol (the paper points
// at threshold-BLS beacons; any agreed-upon randomness source works).
// Permutations are computed by a seeded Fisher-Yates shuffle and cached.
type HashChain struct {
	n     int
	seed  uint64
	cache map[types.Round][]types.ReplicaID // rank -> replica
	ranks map[types.Round][]types.Rank      // replica -> rank
}

// NewHashChain builds a hash-chain beacon over n replicas from a seed.
func NewHashChain(n int, seed uint64) (*HashChain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("beacon: n = %d must be positive", n)
	}
	return &HashChain{
		n:     n,
		seed:  seed,
		cache: make(map[types.Round][]types.ReplicaID),
		ranks: make(map[types.Round][]types.Rank),
	}, nil
}

// N implements Beacon.
func (h *HashChain) N() int { return h.n }

// RankOf implements Beacon.
func (h *HashChain) RankOf(round types.Round, id types.ReplicaID) types.Rank {
	h.materialize(round)
	return h.ranks[round][id]
}

// ReplicaAt implements Beacon.
func (h *HashChain) ReplicaAt(round types.Round, rank types.Rank) types.ReplicaID {
	h.materialize(round)
	return h.cache[round][rank]
}

func (h *HashChain) materialize(round types.Round) {
	if _, ok := h.cache[round]; ok {
		return
	}
	perm := make([]types.ReplicaID, h.n)
	for i := range perm {
		perm[i] = types.ReplicaID(i)
	}
	rng := newRoundRNG(h.seed, round)
	for i := h.n - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	ranks := make([]types.Rank, h.n)
	for rank, id := range perm {
		ranks[id] = types.Rank(rank)
	}
	h.cache[round] = perm
	h.ranks[round] = ranks
	// Bound the cache: keep a sliding window so long simulations do not
	// accumulate one permutation per round forever.
	const window = 4096
	if len(h.cache) > window {
		for r := range h.cache {
			if r+window < round {
				delete(h.cache, r)
				delete(h.ranks, r)
			}
		}
	}
}

// roundRNG is a small deterministic generator seeded by SHA-256 of
// (seed, round), then advanced as xorshift64*.
type roundRNG struct {
	x uint64
}

func newRoundRNG(seed uint64, round types.Round) *roundRNG {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], seed)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(round))
	sum := sha256.Sum256(buf[:])
	x := binary.LittleEndian.Uint64(sum[:8])
	if x == 0 {
		x = 1
	}
	return &roundRNG{x: x}
}

func (r *roundRNG) next() uint64 {
	r.x ^= r.x >> 12
	r.x ^= r.x << 25
	r.x ^= r.x >> 27
	return r.x * 0x2545F4914F6CDD1D
}

// Compile-time interface checks.
var (
	_ Beacon = (*RoundRobin)(nil)
	_ Beacon = (*HashChain)(nil)
)
