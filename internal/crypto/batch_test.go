package crypto

import (
	"math/rand"
	"testing"

	"banyan/internal/types"
)

// corruption is one way an adversary can mangle a signature triple.
type corruption int

const (
	corruptNone      corruption = iota // leave the triple valid
	corruptForged                      // flip a bit of the signature
	corruptWrongKey                    // signature by a different replica
	corruptTruncated                   // cut the signature short
	corruptDigest                      // signature over a different digest
	corruptEmpty                       // empty signature
	numCorruptions
)

// buildTriples makes count signature triples over random digests, applying
// the corruption chosen by pick(i) to triple i. It returns the triples and
// the expected per-triple verdicts (computed from the corruption applied,
// not from calling Verify).
func buildTriples(t testing.TB, scheme Scheme, n, count int, seed int64,
	pick func(i int) corruption) (pubs [][]byte, digests [][32]byte, sigs [][]byte, want []bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	_, signers := GenerateCluster(scheme, n, uint64(seed)+1)
	keyring, _ := GenerateCluster(scheme, n, uint64(seed)+1)
	for i := 0; i < count; i++ {
		var digest [32]byte
		rng.Read(digest[:])
		who := rng.Intn(n)
		sig := signers[who].Sign(digest)
		pub := keyring.PublicKey(types.ReplicaID(who))
		valid := true
		switch pick(i) {
		case corruptForged:
			sig = append([]byte(nil), sig...)
			sig[rng.Intn(len(sig))] ^= 1 << uint(rng.Intn(8))
			valid = false
		case corruptWrongKey:
			other := (who + 1 + rng.Intn(n-1)) % n
			pub = keyring.PublicKey(types.ReplicaID(other))
			valid = false
		case corruptTruncated:
			sig = sig[:rng.Intn(len(sig))]
			valid = false
		case corruptDigest:
			digest[rng.Intn(32)] ^= 1
			valid = false
		case corruptEmpty:
			sig = nil
			valid = false
		}
		pubs = append(pubs, pub)
		digests = append(digests, digest)
		sigs = append(sigs, sig)
		want = append(want, valid)
	}
	return pubs, digests, sigs, want
}

// TestBatchVerifierMatchesSequential is the core equivalence property:
// for every mix of valid, forged, wrong-key, truncated, wrong-digest and
// empty signatures, under both schemes, BatchVerifier.Flush returns
// exactly the verdicts per-signature Verify would.
func TestBatchVerifierMatchesSequential(t *testing.T) {
	for _, scheme := range schemes() {
		t.Run(scheme.Name(), func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)))
				count := 1 + rng.Intn(40)
				pubs, digests, sigs, want := buildTriples(t, scheme, 7, count, int64(trial),
					func(int) corruption { return corruption(rng.Intn(int(numCorruptions))) })

				bv := NewBatchVerifier(scheme)
				for i := range pubs {
					bv.Add(pubs[i], digests[i], sigs[i])
				}
				got := bv.Flush()
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d: triple %d: batch verdict %v, want %v",
							trial, i, got[i], want[i])
					}
					if seq := scheme.Verify(pubs[i], digests[i], sigs[i]); seq != want[i] {
						t.Fatalf("trial %d: triple %d: sequential verdict %v, want %v",
							trial, i, seq, want[i])
					}
				}
				if bv.Len() != 0 {
					t.Fatalf("batch not reset after Flush: len=%d", bv.Len())
				}
			}
		})
	}
}

// TestBatchVerifierAllValidAndAllInvalid exercises the two boundary
// batches: the all-valid batch (batch path accepts in one pass) and the
// all-invalid batch (every triple resolved by the per-signature fallback).
func TestBatchVerifierAllValidAndAllInvalid(t *testing.T) {
	for _, scheme := range schemes() {
		for _, c := range []corruption{corruptNone, corruptForged} {
			pubs, digests, sigs, want := buildTriples(t, scheme, 5, 33, int64(c),
				func(int) corruption { return c })
			bv := NewBatchVerifier(scheme)
			for i := range pubs {
				bv.Add(pubs[i], digests[i], sigs[i])
			}
			got := bv.Flush()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s corruption %d: triple %d got %v want %v",
						scheme.Name(), c, i, got[i], want[i])
				}
			}
		}
	}
}

// TestVerifierPoolMatchesSequential checks the pool at several worker
// counts, including fan-outs larger than the batch.
func TestVerifierPoolMatchesSequential(t *testing.T) {
	for _, scheme := range schemes() {
		for _, workers := range []int{1, 2, 4, 64} {
			pubs, digests, sigs, want := buildTriples(t, scheme, 9, 50, int64(workers),
				func(i int) corruption { return corruption(i % int(numCorruptions)) })
			pool := NewVerifierPool(scheme, workers)
			got := pool.VerifyMany(pubs, digests, sigs)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: triple %d got %v want %v",
						scheme.Name(), workers, i, got[i], want[i])
				}
			}
			if pool.VerifyManyValid(pubs, digests, sigs) {
				t.Fatalf("%s workers=%d: mixed batch reported all-valid", scheme.Name(), workers)
			}
		}
	}
}

// TestVerifierMatchesFreeFunctions: the cached pipeline must agree with
// the package-level verification functions on both accepts and rejects —
// including on repeat calls, where the cache serves the verdict.
func TestVerifierMatchesFreeFunctions(t *testing.T) {
	for _, scheme := range schemes() {
		t.Run(scheme.Name(), func(t *testing.T) {
			keyring, signers := GenerateCluster(scheme, 4, 3)
			v := NewVerifier(keyring, VerifyConfig{})
			var block types.BlockID
			block[2] = 9

			vote := signers[1].SignVote(types.VoteNotarize, 5, block)
			forged := vote
			forged.Voter = 2

			votes := collectVotes(signers, types.VoteNotarize, 5, block, 0, 1, 3)
			cert, err := types.NewCertificate(types.CertNotarization, 5, block, votes)
			if err != nil {
				t.Fatal(err)
			}
			tampered := &types.Certificate{
				Kind: cert.Kind, Round: cert.Round, Block: cert.Block,
				Signers: append([]types.ReplicaID(nil), cert.Signers...),
				Sigs:    append([][]byte(nil), cert.Sigs...),
			}
			tampered.Sigs[1] = append([]byte(nil), tampered.Sigs[1]...)
			tampered.Sigs[1][0] ^= 1

			blk := types.NewBlock(5, 2, 1, types.BlockID{}, types.BytesPayload([]byte("x")))
			if err := signers[2].SignBlock(blk); err != nil {
				t.Fatal(err)
			}

			for round := 0; round < 3; round++ { // repeat: exercise cache hits
				if got, want := v.VerifyVote(vote), VerifyVote(keyring, vote); (got == nil) != (want == nil) {
					t.Fatalf("round %d: VerifyVote mismatch: %v vs %v", round, got, want)
				}
				if got, want := v.VerifyVote(forged), VerifyVote(keyring, forged); (got == nil) != (want == nil) {
					t.Fatalf("round %d: forged vote mismatch: %v vs %v", round, got, want)
				}
				if got, want := v.VerifyCert(cert, 3), VerifyCert(keyring, cert, 3); (got == nil) != (want == nil) {
					t.Fatalf("round %d: VerifyCert mismatch: %v vs %v", round, got, want)
				}
				if got, want := v.VerifyCert(tampered, 3), VerifyCert(keyring, tampered, 3); (got == nil) != (want == nil) {
					t.Fatalf("round %d: tampered cert mismatch: %v vs %v", round, got, want)
				}
				if got, want := v.VerifyCert(cert, 4), VerifyCert(keyring, cert, 4); (got == nil) != (want == nil) {
					t.Fatalf("round %d: below-quorum mismatch: %v vs %v", round, got, want)
				}
				if got, want := v.VerifyBlock(blk), VerifyBlock(keyring, blk); (got == nil) != (want == nil) {
					t.Fatalf("round %d: VerifyBlock mismatch: %v vs %v", round, got, want)
				}
			}
		})
	}
}

// TestVerifierUnlockProofMatches mirrors TestVerifyUnlockProof through the
// pipeline, including the falsified-rank rejection.
func TestVerifierUnlockProofMatches(t *testing.T) {
	keyring, signers := GenerateCluster(Ed25519(), 4, 1)
	v := NewVerifier(keyring, VerifyConfig{})
	b := types.NewBlock(5, 0, 0, types.BlockID{}, types.BytesPayload([]byte("b")))
	id := b.ID()
	votes := collectVotes(signers, types.VoteFast, 5, id, 0, 1, 2)
	proof := &types.UnlockProof{
		Round: 5,
		Block: id,
		Entries: []types.UnlockEntry{{
			Header: b.Header(),
			Voters: []types.ReplicaID{0, 1, 2},
			Sigs:   [][]byte{votes[0].Signature, votes[1].Signature, votes[2].Signature},
		}},
	}
	for round := 0; round < 2; round++ {
		if err := v.VerifyUnlockProof(proof, 2); err != nil {
			t.Fatal(err)
		}
		if err := v.VerifyUnlockProof(proof, 3); err == nil {
			t.Fatal("proof accepted above its support")
		}
		if err := v.VerifyUnlockProof(nil, 1); err == nil {
			t.Fatal("nil proof accepted")
		}
		lied := *proof
		lied.Entries = []types.UnlockEntry{proof.Entries[0]}
		lied.Entries[0].Header.Rank = 1
		if err := v.VerifyUnlockProof(&lied, 2); err == nil {
			t.Fatal("proof with falsified rank accepted")
		}
	}
}

// TestVerifierNeverCachesFailures: a forged signature must be re-checked
// (and re-rejected) on every delivery; only successes may enter the cache.
func TestVerifierNeverCachesFailures(t *testing.T) {
	keyring, signers := GenerateCluster(Ed25519(), 4, 2)
	v := NewVerifier(keyring, VerifyConfig{})
	vote := signers[0].SignVote(types.VoteFast, 1, types.BlockID{})
	bad := vote
	bad.Signature = append([]byte(nil), vote.Signature...)
	bad.Signature[3] ^= 1
	for i := 0; i < 5; i++ {
		if err := v.VerifyVote(bad); err == nil {
			t.Fatalf("delivery %d: forged vote accepted", i)
		}
	}
	hits, _ := v.CacheStats()
	if hits != 0 {
		t.Fatalf("forged vote produced %d cache hits", hits)
	}
}

// TestPreverifyWarmsCache: after PreverifyMessage on a worker, the
// engine-side verification of the same material must be pure cache hits.
func TestPreverifyWarmsCache(t *testing.T) {
	keyring, signers := GenerateCluster(Ed25519(), 4, 5)
	v := NewVerifier(keyring, VerifyConfig{})
	var block types.BlockID
	block[1] = 3
	votes := collectVotes(signers, types.VoteNotarize, 2, block, 0, 1, 2)
	cert, err := types.NewCertificate(types.CertNotarization, 2, block, votes)
	if err != nil {
		t.Fatal(err)
	}
	v.PreverifyMessage(&types.CertMsg{Cert: cert})
	_, missesBefore := v.CacheStats()
	if err := v.VerifyCert(cert, 3); err != nil {
		t.Fatal(err)
	}
	hits, misses := v.CacheStats()
	if misses != missesBefore {
		t.Fatalf("VerifyCert after preverify missed the cache (%d new misses)", misses-missesBefore)
	}
	if hits < int64(len(cert.Signers)) {
		t.Fatalf("expected ≥%d cache hits, got %d", len(cert.Signers), hits)
	}
}

// TestPreverifyMalformedMessages: preverification must tolerate every
// malformed shape (it only warms the cache; judging is the engine's job).
func TestPreverifyMalformedMessages(t *testing.T) {
	keyring, signers := GenerateCluster(Ed25519(), 4, 6)
	v := NewVerifier(keyring, VerifyConfig{})
	blk := types.NewBlock(1, 0, 0, types.BlockID{}, types.BytesPayload([]byte("p")))
	if err := signers[0].SignBlock(blk); err != nil {
		t.Fatal(err)
	}
	fv := signers[0].SignVote(types.VoteFast, 1, blk.ID())
	msgs := []types.Message{
		&types.Proposal{}, // nil block
		&types.Proposal{Block: blk, FastVote: &fv},
		&types.VoteMsg{},
		&types.VoteMsg{Votes: []types.Vote{{Kind: 99, Voter: 200}}},
		&types.CertMsg{}, // nil cert
		&types.CertMsg{Cert: &types.Certificate{Kind: 1, Signers: []types.ReplicaID{0}, Sigs: nil}},
		&types.Advance{},
		&types.SyncResponse{Blocks: []*types.Block{nil, blk}},
		&types.SyncRequest{},
	}
	for _, m := range msgs {
		v.PreverifyMessage(m) // must not panic
	}
}

// TestPreverifyBoundsAdversarialMessages: preverification runs before any
// protocol validation, so it must not be a CPU-amplification target — a
// shape-violating aggregate is skipped outright, and a signature-stuffed
// message is capped at a small multiple of the cluster size.
func TestPreverifyBoundsAdversarialMessages(t *testing.T) {
	const n = 4
	keyring, signers := GenerateCluster(HMAC(), n, 8)
	v := NewVerifier(keyring, VerifyConfig{})

	// Unsorted signers violate certificate shape: no signature may even
	// be looked up, let alone verified.
	sig := signers[0].Sign([32]byte{})
	v.PreverifyMessage(&types.CertMsg{Cert: &types.Certificate{
		Kind:    types.CertNotarization,
		Round:   1,
		Signers: []types.ReplicaID{2, 1, 0},
		Sigs:    [][]byte{sig, sig, sig},
	}})
	if hits, misses := v.CacheStats(); hits+misses != 0 {
		t.Fatalf("malformed cert caused %d cache lookups, want 0", hits+misses)
	}

	// A vote-stuffed message (1000 distinct valid votes) must be capped
	// at 4n signatures of preverification work.
	var votes []types.Vote
	for i := 0; i < 1000; i++ {
		var block types.BlockID
		block[0], block[1] = byte(i), byte(i>>8)
		votes = append(votes, signers[i%n].SignVote(types.VoteNotarize, 1, block))
	}
	v.PreverifyMessage(&types.VoteMsg{Votes: votes})
	if hits, misses := v.CacheStats(); hits+misses > int64(4*n) {
		t.Fatalf("stuffed VoteMsg caused %d signature lookups, want <= %d", hits+misses, 4*n)
	}
}

// TestVerifiedCacheEviction fills the cache past capacity and checks old
// entries fall out while the map never exceeds the cap.
func TestVerifiedCacheEviction(t *testing.T) {
	c := NewVerifiedCache(8)
	mk := func(i int) CacheKey {
		var k CacheKey
		k[0], k[1] = byte(i), byte(i>>8)
		k[31] = 1 // never the zero sentinel
		return k
	}
	for i := 0; i < 32; i++ {
		c.Add(mk(i))
		if c.Len() > 8 {
			t.Fatalf("cache grew to %d entries (cap 8)", c.Len())
		}
	}
	if c.Contains(mk(0)) {
		t.Fatal("oldest entry survived 4x-capacity insertion")
	}
	if !c.Contains(mk(31)) {
		t.Fatal("newest entry evicted")
	}
}

// FuzzBatchVerifyEquivalence: for arbitrary signature mutations, the
// batch verdict must equal the sequential verdict, under both schemes.
func FuzzBatchVerifyEquivalence(f *testing.F) {
	f.Add([]byte{0}, uint8(0), uint8(0))
	f.Add([]byte{1, 2, 3}, uint8(3), uint8(64))
	f.Add([]byte{}, uint8(7), uint8(255))
	f.Fuzz(func(t *testing.T, mutation []byte, whoRaw, cut uint8) {
		for _, scheme := range schemes() {
			keyring, signers := GenerateCluster(scheme, 4, 11)
			who := int(whoRaw) % 4
			var digest [32]byte
			copy(digest[:], mutation)
			sig := signers[who].Sign(digest)
			// Mutate the signature with the fuzzed bytes: XOR then truncate.
			sig = append([]byte(nil), sig...)
			for i, b := range mutation {
				sig[i%len(sig)] ^= b
			}
			if int(cut) < len(sig) {
				sig = sig[:cut]
			}
			pub := keyring.PublicKey(types.ReplicaID(who))
			want := scheme.Verify(pub, digest, sig)

			bv := NewBatchVerifier(scheme)
			bv.Add(pub, digest, sig)
			// Pair the fuzzed triple with a valid one so a failing batch
			// exercises the mixed per-signature fallback.
			other := signers[(who+1)%4].Sign(digest)
			bv.Add(keyring.PublicKey(types.ReplicaID((who+1)%4)), digest, other)
			got := bv.Flush()
			if got[0] != want {
				t.Fatalf("%s: batch verdict %v, sequential %v", scheme.Name(), got[0], want)
			}
			if !got[1] {
				t.Fatalf("%s: valid companion signature rejected", scheme.Name())
			}
		}
	})
}
