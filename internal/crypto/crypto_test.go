package crypto

import (
	"testing"
	"testing/quick"

	"banyan/internal/types"
)

func schemes() []Scheme { return []Scheme{Ed25519(), HMAC()} }

func TestSignVerifyBothSchemes(t *testing.T) {
	for _, scheme := range schemes() {
		t.Run(scheme.Name(), func(t *testing.T) {
			keyring, signers := GenerateCluster(scheme, 4, 1)
			digest := [32]byte{1, 2, 3}
			sig := signers[2].Sign(digest)
			if len(sig) != scheme.SignatureSize() {
				t.Fatalf("signature size %d, want %d", len(sig), scheme.SignatureSize())
			}
			if !keyring.Verify(2, digest, sig) {
				t.Fatal("valid signature rejected")
			}
			if keyring.Verify(1, digest, sig) {
				t.Fatal("signature verified under wrong replica")
			}
			bad := append([]byte(nil), sig...)
			bad[0] ^= 1
			if keyring.Verify(2, digest, bad) {
				t.Fatal("tampered signature accepted")
			}
			other := digest
			other[5] ^= 1
			if keyring.Verify(2, other, sig) {
				t.Fatal("signature verified over wrong digest")
			}
		})
	}
}

func TestDeterministicKeyGeneration(t *testing.T) {
	for _, scheme := range schemes() {
		k1, _ := GenerateCluster(scheme, 4, 99)
		k2, _ := GenerateCluster(scheme, 4, 99)
		k3, _ := GenerateCluster(scheme, 4, 100)
		for i := types.ReplicaID(0); i < 4; i++ {
			if string(k1.PublicKey(i)) != string(k2.PublicKey(i)) {
				t.Fatalf("%s: same seed produced different keys", scheme.Name())
			}
			if string(k1.PublicKey(i)) == string(k3.PublicKey(i)) {
				t.Fatalf("%s: different seeds produced identical keys", scheme.Name())
			}
		}
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"", "ed25519", "hmac"} {
		if _, err := SchemeByName(name); err != nil {
			t.Errorf("SchemeByName(%q): %v", name, err)
		}
	}
	if _, err := SchemeByName("rsa"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSignVerifyVote(t *testing.T) {
	keyring, signers := GenerateCluster(Ed25519(), 4, 1)
	var block types.BlockID
	block[3] = 9
	v := signers[1].SignVote(types.VoteFast, 7, block)
	if v.Voter != 1 || v.Kind != types.VoteFast || v.Round != 7 {
		t.Fatalf("unexpected vote %v", v)
	}
	if err := VerifyVote(keyring, v); err != nil {
		t.Fatal(err)
	}
	forged := v
	forged.Voter = 2
	if err := VerifyVote(keyring, forged); err == nil {
		t.Fatal("vote with reassigned voter accepted")
	}
	wrongKind := v
	wrongKind.Kind = types.VoteNotarize
	if err := VerifyVote(keyring, wrongKind); err == nil {
		t.Fatal("vote with altered kind accepted (kind must bind the digest)")
	}
	badKind := v
	badKind.Kind = 99
	if err := VerifyVote(keyring, badKind); err == nil {
		t.Fatal("invalid vote kind accepted")
	}
}

func TestSignVerifyBlock(t *testing.T) {
	keyring, signers := GenerateCluster(Ed25519(), 4, 1)
	b := types.NewBlock(3, 2, 1, types.BlockID{}, types.BytesPayload([]byte("payload")))
	if err := signers[2].SignBlock(b); err != nil {
		t.Fatal(err)
	}
	if err := VerifyBlock(keyring, b); err != nil {
		t.Fatal(err)
	}
	if err := signers[1].SignBlock(b); err == nil {
		t.Fatal("signer accepted a block proposed by another replica")
	}
	// A payload change changes the ID, invalidating the signature.
	forged := types.NewBlock(3, 2, 1, types.BlockID{}, types.BytesPayload([]byte("other")))
	forged.Signature = b.Signature
	if err := VerifyBlock(keyring, forged); err == nil {
		t.Fatal("signature transplanted to a different block accepted")
	}
	if err := VerifyBlock(keyring, types.Genesis()); err != nil {
		t.Fatal("genesis must verify without a signature")
	}
}

func collectVotes(signers []*Signer, kind types.VoteKind, round types.Round,
	block types.BlockID, ids ...int) []types.Vote {
	votes := make([]types.Vote, 0, len(ids))
	for _, i := range ids {
		votes = append(votes, signers[i].SignVote(kind, round, block))
	}
	return votes
}

func TestVerifyCert(t *testing.T) {
	keyring, signers := GenerateCluster(Ed25519(), 4, 1)
	var block types.BlockID
	block[0] = 5
	votes := collectVotes(signers, types.VoteNotarize, 4, block, 0, 1, 3)
	cert, err := types.NewCertificate(types.CertNotarization, 4, block, votes)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCert(keyring, cert, 3); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCert(keyring, cert, 4); err == nil {
		t.Fatal("below-quorum certificate accepted")
	}
	if err := VerifyCert(keyring, nil, 1); err == nil {
		t.Fatal("nil certificate accepted")
	}
	// Tamper with one signature.
	cert.Sigs[1] = append([]byte(nil), cert.Sigs[1]...)
	cert.Sigs[1][0] ^= 1
	if err := VerifyCert(keyring, cert, 3); err == nil {
		t.Fatal("certificate with tampered signature accepted")
	}
}

func TestVerifyCertRejectsForeignVotes(t *testing.T) {
	keyring, signers := GenerateCluster(Ed25519(), 4, 1)
	_, otherSigners := GenerateCluster(Ed25519(), 4, 2)
	var block types.BlockID
	votes := collectVotes(signers, types.VoteNotarize, 4, block, 0, 1)
	votes = append(votes, otherSigners[3].SignVote(types.VoteNotarize, 4, block))
	cert, err := types.NewCertificate(types.CertNotarization, 4, block, votes)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCert(keyring, cert, 3); err == nil {
		t.Fatal("certificate containing a foreign-cluster vote accepted")
	}
}

func TestVerifyUnlockProof(t *testing.T) {
	keyring, signers := GenerateCluster(Ed25519(), 4, 1)
	b := types.NewBlock(5, 0, 0, types.BlockID{}, types.BytesPayload([]byte("b")))
	id := b.ID()
	votes := collectVotes(signers, types.VoteFast, 5, id, 0, 1, 2)
	proof := &types.UnlockProof{
		Round: 5,
		Block: id,
		Entries: []types.UnlockEntry{{
			Header: b.Header(),
			Voters: []types.ReplicaID{0, 1, 2},
			Sigs:   [][]byte{votes[0].Signature, votes[1].Signature, votes[2].Signature},
		}},
	}
	if err := VerifyUnlockProof(keyring, proof, 2); err != nil {
		t.Fatal(err)
	}
	// Above the threshold the claim fails structurally.
	if err := VerifyUnlockProof(keyring, proof, 3); err == nil {
		t.Fatal("proof accepted above its support")
	}
	if err := VerifyUnlockProof(keyring, nil, 1); err == nil {
		t.Fatal("nil proof accepted")
	}
	// A header with a falsified rank changes the header ID, so the fast
	// votes no longer verify against it — rank claims are hash-bound.
	lied := *proof
	lied.Entries = []types.UnlockEntry{proof.Entries[0]}
	lied.Entries[0].Header.Rank = 1
	if err := VerifyUnlockProof(keyring, &lied, 2); err == nil {
		t.Fatal("proof with falsified rank accepted")
	}
}

// TestQuickSignVerify property: every signed digest verifies under the
// right key and fails under any other replica's key.
func TestQuickSignVerify(t *testing.T) {
	for _, scheme := range schemes() {
		keyring, signers := GenerateCluster(scheme, 4, 7)
		f := func(digest [32]byte, who uint8) bool {
			id := types.ReplicaID(who % 4)
			sig := signers[id].Sign(digest)
			if !keyring.Verify(id, digest, sig) {
				return false
			}
			return !keyring.Verify((id+1)%4, digest, sig)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", scheme.Name(), err)
		}
	}
}

func TestKeyringBounds(t *testing.T) {
	keyring, _ := GenerateCluster(HMAC(), 4, 1)
	if keyring.PublicKey(4) != nil {
		t.Fatal("out-of-range public key returned")
	}
	if keyring.Verify(9, [32]byte{}, []byte("x")) {
		t.Fatal("out-of-range replica verified")
	}
	if keyring.N() != 4 {
		t.Fatalf("N = %d, want 4", keyring.N())
	}
}
