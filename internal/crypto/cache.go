package crypto

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// VerifiedCache remembers signatures that have already verified, so that
// re-gossiped material is never re-verified. Banyan re-delivers the same
// signatures constantly: a vote arrives in a VoteMsg, again inside the
// notarization certificate of the Advance broadcast, again in relayed
// proposals' parent credentials, and fast votes reappear inside unlock
// proofs. Keys bind the scheme, public key, digest and signature bytes, so
// a hit proves this exact verification succeeded before; both schemes are
// deterministic, making the cached verdict sound. Only successes are
// cached — a forged signature is re-checked (and re-rejected) every time.
//
// The cache is a fixed-capacity LRU safe for concurrent use: the node's
// preverification workers warm it while the consensus goroutine reads it.
type VerifiedCache struct {
	mu   sync.Mutex
	cap  int
	m    map[CacheKey]int // key -> index into ring
	ring []CacheKey       // circular eviction order (approximate LRU: FIFO ring)
	next int

	hits, misses int64
}

// CacheKey identifies one verified (scheme, pub, digest, sig) triple.
type CacheKey [32]byte

// DefaultCacheSize is the per-replica verified-signature capacity used
// when a configuration leaves the size zero. At 32 bytes per key it is
// ~256 KiB and covers several rounds of traffic at n in the hundreds.
const DefaultCacheSize = 8192

// NewVerifiedCache builds a cache holding up to size verified keys;
// size <= 0 selects DefaultCacheSize.
func NewVerifiedCache(size int) *VerifiedCache {
	if size <= 0 {
		size = DefaultCacheSize
	}
	return &VerifiedCache{
		cap:  size,
		m:    make(map[CacheKey]int, size),
		ring: make([]CacheKey, size),
	}
}

// VerifiedKey computes the cache key for a signature triple.
func VerifiedKey(scheme Scheme, pub []byte, digest [32]byte, sig []byte) CacheKey {
	h := sha256.New()
	h.Write([]byte("banyan/verified/v1/"))
	h.Write([]byte(scheme.Name()))
	var lens [8]byte
	binary.LittleEndian.PutUint32(lens[0:4], uint32(len(pub)))
	binary.LittleEndian.PutUint32(lens[4:8], uint32(len(sig)))
	h.Write(lens[:])
	h.Write(pub)
	h.Write(digest[:])
	h.Write(sig)
	var k CacheKey
	h.Sum(k[:0])
	return k
}

// Contains reports whether the key was verified before.
func (c *VerifiedCache) Contains(k CacheKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.m[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return ok
}

// Add records a verified key, evicting the oldest entry when full.
func (c *VerifiedCache) Add(k CacheKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[k]; ok {
		return
	}
	if old := c.ring[c.next]; old != (CacheKey{}) {
		delete(c.m, old)
	}
	c.ring[c.next] = k
	c.m[k] = c.next
	c.next = (c.next + 1) % c.cap
}

// Len returns the number of cached keys.
func (c *VerifiedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns cumulative (hits, misses) of Contains lookups.
func (c *VerifiedCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
