package crypto

import (
	"testing"

	"banyan/internal/types"
)

// idSet is a minimal MemberSet for epoch-pinned verification tests.
type idSet map[types.ReplicaID]bool

func (s idSet) Contains(id types.ReplicaID) bool { return s[id] }
func (s idSet) Size() int                        { return len(s) }

// TestVerifyCertInEpochPinning is the unit half of the epoch-straddler
// scenario: a validator removed from the set keeps signing with its old
// key. The key is still registered and the signature still verifies —
// identities are never re-keyed — but a certificate counting the removed
// signer must fail verification pinned to the post-removal epoch, while
// certificates from before the removal keep verifying against their own
// epoch's set.
func TestVerifyCertInEpochPinning(t *testing.T) {
	keyring, signers := GenerateCluster(Ed25519(), 5, 1)
	var block types.BlockID
	block[0] = 9
	straddler := 4
	oldSet := idSet{0: true, 1: true, 2: true, 3: true, 4: true} // epoch E
	newSet := idSet{0: true, 1: true, 2: true, 3: true}         // epoch E+1, straddler removed
	const quorum = 3

	// A cert the straddler signed while still a member: valid in its
	// epoch, before and after the set moves on.
	before, err := types.NewCertificate(types.CertNotarization, 10, block,
		collectVotes(signers, types.VoteNotarize, 10, block, 1, 2, straddler))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCertIn(keyring, before, quorum, oldSet); err != nil {
		t.Fatalf("pre-removal certificate rejected in its own epoch: %v", err)
	}

	// A post-removal cert that counts the straddler's forged vote: the
	// signatures are genuine, so unpinned verification passes — only the
	// membership pin catches it.
	after, err := types.NewCertificate(types.CertNotarization, 20, block,
		collectVotes(signers, types.VoteNotarize, 20, block, 1, 2, straddler))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCert(keyring, after, quorum); err != nil {
		t.Fatalf("sanity: forged-quorum cert has genuine signatures, got %v", err)
	}
	if err := VerifyCertIn(keyring, after, quorum, newSet); err == nil {
		t.Fatal("certificate counting a removed validator verified against the new epoch")
	}

	// An honest post-removal quorum passes the pin.
	honest, err := types.NewCertificate(types.CertNotarization, 20, block,
		collectVotes(signers, types.VoteNotarize, 20, block, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCertIn(keyring, honest, quorum, newSet); err != nil {
		t.Fatalf("honest new-epoch certificate rejected: %v", err)
	}

	// The cached Verifier facade applies the same pin.
	v := NewVerifier(keyring, VerifyConfig{})
	if err := v.VerifyCertIn(after, quorum, newSet); err == nil {
		t.Fatal("Verifier.VerifyCertIn accepted the removed validator's signature")
	}
	if err := v.VerifyCertIn(honest, quorum, newSet); err != nil {
		t.Fatalf("Verifier.VerifyCertIn rejected an honest certificate: %v", err)
	}
}
