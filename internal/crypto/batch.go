package crypto

// Batched signature verification. Banyan's fast path makes every round a
// verification burst: a ⌈3n/4⌉ fast quorum means substantially more vote
// signatures per round than a plain ⌈2n/3⌉ protocol, and certificates,
// unlock proofs and re-gossiped votes all carry the same signatures again.
// BatchVerifier is the accumulation half of the pipeline: it collects
// (pub, digest, sig) triples and verifies them in one flush, preferring a
// scheme-level batch operation and falling back to per-signature
// verification when the batch fails (so individual forgeries can be
// pinpointed).

// BatchScheme is implemented by schemes that can check many signatures in
// one pass. VerifyBatch reports whether every triple verifies; it gives no
// indication of which triple failed (BatchVerifier falls back to
// per-signature verification to find out).
//
// Ed25519 admits true batch verification (one random linear combination of
// all equations, roughly halving the curve work); the Go standard library
// does not export the required edwards25519 arithmetic, so this
// implementation's schemes provide a tight-loop VerifyBatch and the
// pipeline's asymptotic wins come from the verified cache and the worker
// pool instead. The interface is the seam where a curve-level batch
// verifier plugs in without touching any caller.
type BatchScheme interface {
	Scheme
	VerifyBatch(pubs [][]byte, digests [][32]byte, sigs [][]byte) bool
}

// VerifyBatch implements BatchScheme for Ed25519 as a loop over Verify
// (see the BatchScheme comment for why no algebraic batching).
func (s ed25519Scheme) VerifyBatch(pubs [][]byte, digests [][32]byte, sigs [][]byte) bool {
	return loopVerifyBatch(s, pubs, digests, sigs)
}

// VerifyBatch implements BatchScheme for HMAC.
func (s hmacScheme) VerifyBatch(pubs [][]byte, digests [][32]byte, sigs [][]byte) bool {
	return loopVerifyBatch(s, pubs, digests, sigs)
}

func loopVerifyBatch(s Scheme, pubs [][]byte, digests [][32]byte, sigs [][]byte) bool {
	for i := range pubs {
		if !s.Verify(pubs[i], digests[i], sigs[i]) {
			return false
		}
	}
	return true
}

var (
	_ BatchScheme = ed25519Scheme{}
	_ BatchScheme = hmacScheme{}
)

// BatchVerifier accumulates signature triples and verifies them together
// on Flush. It is not safe for concurrent use; VerifierPool shards one
// logical batch across several BatchVerifiers.
type BatchVerifier struct {
	scheme  Scheme
	pubs    [][]byte
	digests [][32]byte
	sigs    [][]byte
}

// NewBatchVerifier creates an empty batch for the scheme.
func NewBatchVerifier(scheme Scheme) *BatchVerifier {
	return &BatchVerifier{scheme: scheme}
}

// Add queues one (pub, digest, sig) triple. Slices are retained until the
// next Flush; callers must not mutate them in between.
func (b *BatchVerifier) Add(pub []byte, digest [32]byte, sig []byte) {
	b.pubs = append(b.pubs, pub)
	b.digests = append(b.digests, digest)
	b.sigs = append(b.sigs, sig)
}

// Len returns the number of queued triples.
func (b *BatchVerifier) Len() int { return len(b.pubs) }

// Flush verifies every queued triple and returns one verdict per triple in
// Add order, resetting the batch. The whole batch is tried first; on
// failure every triple is verified individually to pinpoint the forgeries.
// (With a true algebraic VerifyBatch the failure path should bisect
// instead — but while VerifyBatch is itself a verification loop, bisection
// only re-verifies honest signatures an adversary already made us check.)
func (b *BatchVerifier) Flush() []bool {
	n := b.Len()
	out := make([]bool, n)
	if n == 0 {
		return out
	}
	if bs, ok := b.scheme.(BatchScheme); ok && bs.VerifyBatch(b.pubs, b.digests, b.sigs) {
		for i := range out {
			out[i] = true
		}
	} else {
		for i := range out {
			out[i] = b.scheme.Verify(b.pubs[i], b.digests[i], b.sigs[i])
		}
	}
	b.pubs = b.pubs[:0]
	b.digests = b.digests[:0]
	b.sigs = b.sigs[:0]
	return out
}

// FlushValid flushes and reports whether every queued triple verified.
func (b *BatchVerifier) FlushValid() bool {
	for _, ok := range b.Flush() {
		if !ok {
			return false
		}
	}
	return true
}
