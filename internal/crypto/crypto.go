// Package crypto provides the signature layer of the consensus stack: a
// pluggable signing scheme, a keyring standing in for the paper's PKI, and
// verification helpers for blocks, votes, certificates and unlock proofs.
//
// The Banyan paper aggregates votes with BLS multi-signatures. BLS needs
// pairing-friendly curves that are not in the Go standard library, so this
// implementation substitutes per-replica signatures combined into a
// signer-list certificate (see types.Certificate and DESIGN.md section 2).
// The substitution preserves everything the protocol relies on:
// unforgeability of votes, transferability of quorum certificates, and
// certificate sizes that grow with the quorum.
package crypto

import (
	"bytes"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"

	"banyan/internal/types"
)

// Scheme is a deterministic digital-signature scheme over 32-byte digests.
type Scheme interface {
	// Name identifies the scheme ("ed25519", "hmac").
	Name() string
	// SignatureSize is the fixed signature length in bytes.
	SignatureSize() int
	// KeyGen derives a key pair deterministically from a 32-byte seed.
	KeyGen(seed [32]byte) (priv, pub []byte)
	// Sign signs a digest.
	Sign(priv []byte, digest [32]byte) []byte
	// Verify checks a signature.
	Verify(pub []byte, digest [32]byte, sig []byte) bool
}

// Ed25519 returns the production scheme: real Ed25519 signatures.
func Ed25519() Scheme { return ed25519Scheme{} }

type ed25519Scheme struct{}

func (ed25519Scheme) Name() string       { return "ed25519" }
func (ed25519Scheme) SignatureSize() int { return ed25519.SignatureSize }

func (ed25519Scheme) KeyGen(seed [32]byte) ([]byte, []byte) {
	priv := ed25519.NewKeyFromSeed(seed[:])
	pub := priv.Public().(ed25519.PublicKey)
	return priv, pub
}

func (ed25519Scheme) Sign(priv []byte, digest [32]byte) []byte {
	return ed25519.Sign(ed25519.PrivateKey(priv), digest[:])
}

func (ed25519Scheme) Verify(pub []byte, digest [32]byte, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(pub), digest[:], sig)
}

// HMAC returns a symmetric MAC-based scheme for large simulations: tags are
// HMAC-SHA256 over the digest. It is roughly two orders of magnitude faster
// than Ed25519 and keeps message sizes realistic (32-byte tags), but the
// "public key" equals the secret, so it authenticates only in simulations
// where all replicas are honest process-local code. Byzantine tests that
// need unforgeability use Ed25519.
func HMAC() Scheme { return hmacScheme{} }

type hmacScheme struct{}

func (hmacScheme) Name() string       { return "hmac" }
func (hmacScheme) SignatureSize() int { return sha256.Size }

func (hmacScheme) KeyGen(seed [32]byte) ([]byte, []byte) {
	h := sha256.Sum256(append([]byte("banyan/hmac-key/"), seed[:]...))
	k := h[:]
	return k, k
}

func (hmacScheme) Sign(priv []byte, digest [32]byte) []byte {
	m := hmac.New(sha256.New, priv)
	m.Write(digest[:])
	return m.Sum(nil)
}

func (hmacScheme) Verify(pub []byte, digest [32]byte, sig []byte) bool {
	m := hmac.New(sha256.New, pub)
	m.Write(digest[:])
	return hmac.Equal(m.Sum(nil), sig)
}

// SchemeByName resolves a scheme from its configuration name.
func SchemeByName(name string) (Scheme, error) {
	switch name {
	case "", "ed25519":
		return Ed25519(), nil
	case "hmac":
		return HMAC(), nil
	default:
		return nil, fmt.Errorf("crypto: unknown scheme %q", name)
	}
}

// Keyring is the global key registry standing in for the PKI: every
// replica identity that has ever existed in the deployment, under one
// scheme. Since PR 9 it is growable — validators added by on-chain
// reconfiguration register their keys at apply time — and decoupled from
// *membership*: holding a key in the registry means "this identity can be
// authenticated", while the epoch's validator set (internal/membership)
// decides who may vote. Removed validators keep their registry entry so
// certificates from earlier epochs keep verifying.
//
// Reads are lock-free (copy-on-write behind an atomic pointer), so the
// hot verification path pays nothing for growability; SetKey serializes
// writers.
type Keyring struct {
	scheme Scheme
	mu     sync.Mutex // serializes SetKey
	pubs   atomic.Pointer[[][]byte]
}

// NewKeyring builds a keyring over the given public keys.
func NewKeyring(scheme Scheme, pubs [][]byte) *Keyring {
	cp := make([][]byte, len(pubs))
	copy(cp, pubs)
	k := &Keyring{scheme: scheme}
	k.pubs.Store(&cp)
	return k
}

// SetKey registers (or re-asserts) replica id's public key, growing the
// registry as needed. Registering the key an identity already holds is an
// idempotent no-op; registering a *different* key for a known identity is
// rejected — identities are never re-keyed, which is what lets old
// certificates verify forever.
func (k *Keyring) SetKey(id types.ReplicaID, pub []byte) error {
	if len(pub) == 0 {
		return fmt.Errorf("crypto: empty public key for replica %d", id)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	cur := *k.pubs.Load()
	if int(id) < len(cur) && cur[id] != nil {
		if bytes.Equal(cur[id], pub) {
			return nil
		}
		return fmt.Errorf("crypto: replica %d already registered under a different key", id)
	}
	size := len(cur)
	if int(id) >= size {
		size = int(id) + 1
	}
	next := make([][]byte, size)
	copy(next, cur)
	next[id] = append([]byte(nil), pub...)
	k.pubs.Store(&next)
	return nil
}

// GenerateCluster deterministically creates n key pairs from a cluster
// seed, returning the shared keyring and one signer per replica. All
// replicas of a deployment derive identical keyrings from the same seed,
// which is how the examples and the simulator bootstrap their PKI.
func GenerateCluster(scheme Scheme, n int, seed uint64) (*Keyring, []*Signer) {
	pubs := make([][]byte, n)
	signers := make([]*Signer, n)
	for i := 0; i < n; i++ {
		var s [32]byte
		h := sha256.New()
		fmt.Fprintf(h, "banyan/keyseed/%d/%d", seed, i)
		h.Sum(s[:0])
		priv, pub := scheme.KeyGen(s)
		pubs[i] = pub
		signers[i] = &Signer{id: types.ReplicaID(i), scheme: scheme, priv: priv}
	}
	return NewKeyring(scheme, pubs), signers
}

// N returns the number of replica identities the registry spans.
func (k *Keyring) N() int { return len(*k.pubs.Load()) }

// Scheme returns the signature scheme of the keyring.
func (k *Keyring) Scheme() Scheme { return k.scheme }

// PublicKey returns replica id's public key, or nil if unregistered.
func (k *Keyring) PublicKey(id types.ReplicaID) []byte {
	pubs := *k.pubs.Load()
	if int(id) >= len(pubs) {
		return nil
	}
	return pubs[id]
}

// Verify checks a signature by replica id over a digest.
func (k *Keyring) Verify(id types.ReplicaID, digest [32]byte, sig []byte) bool {
	pub := k.PublicKey(id)
	if pub == nil {
		return false
	}
	return k.scheme.Verify(pub, digest, sig)
}

// Signer holds one replica's private key.
type Signer struct {
	id     types.ReplicaID
	scheme Scheme
	priv   []byte
}

// NewSigner wraps a private key for a replica.
func NewSigner(id types.ReplicaID, scheme Scheme, priv []byte) *Signer {
	return &Signer{id: id, scheme: scheme, priv: priv}
}

// ID returns the replica the signer signs for.
func (s *Signer) ID() types.ReplicaID { return s.id }

// Sign signs a raw digest.
func (s *Signer) Sign(digest [32]byte) []byte { return s.scheme.Sign(s.priv, digest) }

// SignVote creates a signed vote of the given kind.
func (s *Signer) SignVote(kind types.VoteKind, round types.Round, block types.BlockID) types.Vote {
	v := types.Vote{Kind: kind, Round: round, Block: block, Voter: s.id}
	v.Signature = s.Sign(v.Digest())
	return v
}

// SignBlock attaches the proposer signature to a block. The block's
// Proposer must equal the signer's replica ID.
func (s *Signer) SignBlock(b *types.Block) error {
	if b.Proposer != s.id {
		return fmt.Errorf("crypto: signer %d cannot sign block proposed by %d", s.id, b.Proposer)
	}
	id := b.ID()
	b.Signature = s.Sign(blockDigest(id))
	return nil
}

func blockDigest(id types.BlockID) [32]byte {
	h := sha256.New()
	h.Write([]byte("banyan/blocksig/v1"))
	h.Write(id[:])
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// VerifyBlock checks the proposer signature on a block.
func VerifyBlock(k *Keyring, b *types.Block) error {
	if b.IsGenesis() {
		return nil
	}
	if !k.Verify(b.Proposer, blockDigest(b.ID()), b.Signature) {
		return fmt.Errorf("crypto: bad proposer signature on %v", b)
	}
	return nil
}

// VerifyVote checks a single vote's signature.
func VerifyVote(k *Keyring, v types.Vote) error {
	if !v.Kind.Valid() {
		return fmt.Errorf("crypto: invalid vote kind in %v", v)
	}
	if !k.Verify(v.Voter, v.Digest(), v.Signature) {
		return fmt.Errorf("crypto: bad signature on %v", v)
	}
	return nil
}

// VerifyCert checks a certificate: shape (sorted unique signers meeting the
// quorum) and every contained signature.
func VerifyCert(k *Keyring, c *types.Certificate, quorum int) error {
	if c == nil {
		return fmt.Errorf("crypto: nil certificate")
	}
	if err := c.CheckShape(k.N(), quorum); err != nil {
		return err
	}
	digest := c.Digest()
	for i, signer := range c.Signers {
		if !k.Verify(signer, digest, c.Sigs[i]) {
			return fmt.Errorf("crypto: bad signature by %d in %v", signer, c)
		}
	}
	return nil
}

// MemberSet is the membership predicate epoch-pinned verification checks
// signers against; membership.ValidatorSet satisfies it. Keeping the
// interface here lets crypto stay below membership in the import graph.
type MemberSet interface {
	// Contains reports whether id is a member of the set.
	Contains(id types.ReplicaID) bool
	// Size returns the number of members.
	Size() int
}

// VerifyCertIn is VerifyCert pinned to an epoch's validator set: every
// signer must be a member in addition to holding a valid key. This is
// what defeats a removed validator that keeps signing with its old —
// still registered, still valid — key: its signatures verify, but a
// certificate counting it no longer proves a quorum of the epoch.
func VerifyCertIn(k *Keyring, c *types.Certificate, quorum int, set MemberSet) error {
	if err := VerifyCert(k, c, quorum); err != nil {
		return err
	}
	for _, signer := range c.Signers {
		if !set.Contains(signer) {
			return fmt.Errorf("crypto: signer %d not a member of the certificate's epoch in %v", signer, c)
		}
	}
	return nil
}

// VerifyUnlockProof checks that the proof's fast votes are genuine and that
// they establish the claimed unlock under Definition 7.6 with the given
// threshold (f+p). Vote digests are recomputed against each entry's header
// ID, so rank claims are bound by the hash.
func VerifyUnlockProof(k *Keyring, u *types.UnlockProof, threshold int) error {
	if u == nil {
		return fmt.Errorf("crypto: nil unlock proof")
	}
	for _, e := range u.Entries {
		id := e.Header.ID()
		digest := types.VoteDigest(types.VoteFast, u.Round, id)
		if len(e.Voters) != len(e.Sigs) {
			return fmt.Errorf("crypto: unlock entry voters/sigs mismatch in %v", u)
		}
		for i, voter := range e.Voters {
			if !k.Verify(voter, digest, e.Sigs[i]) {
				return fmt.Errorf("crypto: bad fast vote by %d for %s in %v", voter, id, u)
			}
		}
	}
	if !u.Evaluate(threshold) {
		return fmt.Errorf("crypto: unlock proof does not establish its claim: %v", u)
	}
	return nil
}
