package crypto

import (
	"fmt"

	"banyan/internal/types"
)

// VerifyConfig tunes a Verifier. The zero value selects sensible defaults
// for both simulators and deployments.
type VerifyConfig struct {
	// Workers sizes the verification worker pool: 0 selects GOMAXPROCS,
	// 1 verifies inline, larger values cap the fan-out.
	Workers int
	// CacheSize caps the verified-signature cache: 0 selects
	// DefaultCacheSize, negative disables caching entirely.
	CacheSize int
}

// Verifier is the batched, cached verification pipeline over one keyring.
// It offers the same checks as the package-level VerifyBlock / VerifyVote /
// VerifyCert / VerifyUnlockProof functions — byte-for-byte identical
// verdicts — but verifies signature sets through a worker pool and
// remembers successes, so re-gossiped votes and certificates cost one
// cache lookup instead of a curve operation. PreverifyMessage additionally
// lets a transport stage warm the cache off the consensus goroutine.
//
// A Verifier is safe for concurrent use.
type Verifier struct {
	kr    *Keyring
	pool  *VerifierPool
	cache *VerifiedCache // nil when caching is disabled
}

// NewVerifier builds a verification pipeline over the keyring.
func NewVerifier(kr *Keyring, cfg VerifyConfig) *Verifier {
	v := &Verifier{
		kr:   kr,
		pool: NewVerifierPool(kr.Scheme(), cfg.Workers),
	}
	if cfg.CacheSize >= 0 {
		v.cache = NewVerifiedCache(cfg.CacheSize)
	}
	return v
}

// Keyring returns the keyring the verifier checks against.
func (v *Verifier) Keyring() *Keyring { return v.kr }

// CacheStats returns cumulative cache (hits, misses); zeros when caching
// is disabled.
func (v *Verifier) CacheStats() (hits, misses int64) {
	if v.cache == nil {
		return 0, 0
	}
	return v.cache.Stats()
}

// verifyOne checks a single signature through the cache.
func (v *Verifier) verifyOne(id types.ReplicaID, digest [32]byte, sig []byte) bool {
	pub := v.kr.PublicKey(id)
	if pub == nil {
		return false
	}
	var key CacheKey
	if v.cache != nil {
		key = VerifiedKey(v.kr.scheme, pub, digest, sig)
		if v.cache.Contains(key) {
			return true
		}
	}
	if !v.kr.scheme.Verify(pub, digest, sig) {
		return false
	}
	if v.cache != nil {
		v.cache.Add(key)
	}
	return true
}

// sigBatch collects the uncached signatures of one aggregate (certificate
// or unlock proof) for a pooled flush.
type sigBatch struct {
	v       *Verifier
	pubs    [][]byte
	digests [][32]byte
	sigs    [][]byte
	keys    []CacheKey
	// bad is the index (into the caller's ordering) of the first signer
	// whose key was out of range, or -1.
	bad int
	// seq maps batch position back to the caller's ordering.
	seq []int
	// limit, when positive, caps how many signatures may be queued
	// (preverification's defense against signature-stuffed messages).
	limit int
}

// full reports whether the batch reached its queue limit.
func (b *sigBatch) full() bool {
	return b.limit > 0 && len(b.sigs) >= b.limit
}

func (v *Verifier) newSigBatch(capacity int) *sigBatch {
	return &sigBatch{
		v:       v,
		pubs:    make([][]byte, 0, capacity),
		digests: make([][32]byte, 0, capacity),
		sigs:    make([][]byte, 0, capacity),
		keys:    make([]CacheKey, 0, capacity),
		seq:     make([]int, 0, capacity),
		bad:     -1,
	}
}

// add queues signer seq's signature unless it is already cached. It
// reports false when the signer has no key in the keyring.
func (b *sigBatch) add(seq int, id types.ReplicaID, digest [32]byte, sig []byte) bool {
	pub := b.v.kr.PublicKey(id)
	if pub == nil {
		if b.bad < 0 {
			b.bad = seq
		}
		return false
	}
	var key CacheKey
	if b.v.cache != nil {
		key = VerifiedKey(b.v.kr.scheme, pub, digest, sig)
		if b.v.cache.Contains(key) {
			return true
		}
	}
	b.pubs = append(b.pubs, pub)
	b.digests = append(b.digests, digest)
	b.sigs = append(b.sigs, sig)
	b.keys = append(b.keys, key)
	b.seq = append(b.seq, seq)
	return true
}

// flush verifies the queued signatures through the pool, caches the
// successes, and returns the caller-ordering index of the first failure
// (including any out-of-range signer recorded by add), or -1 when every
// signature verified.
func (b *sigBatch) flush() int {
	verdicts := b.v.pool.VerifyMany(b.pubs, b.digests, b.sigs)
	firstBad := b.bad
	for i, ok := range verdicts {
		if !ok {
			if firstBad < 0 || b.seq[i] < firstBad {
				firstBad = b.seq[i]
			}
			continue
		}
		if b.v.cache != nil {
			b.v.cache.Add(b.keys[i])
		}
	}
	return firstBad
}

// VerifyBlock checks the proposer signature on a block; it is the cached
// counterpart of the package-level VerifyBlock.
func (v *Verifier) VerifyBlock(b *types.Block) error {
	if b.IsGenesis() {
		return nil
	}
	if !v.verifyOne(b.Proposer, blockDigest(b.ID()), b.Signature) {
		return fmt.Errorf("crypto: bad proposer signature on %v", b)
	}
	return nil
}

// VerifyVote checks a single vote's signature; cached counterpart of the
// package-level VerifyVote.
func (v *Verifier) VerifyVote(vt types.Vote) error {
	if !vt.Kind.Valid() {
		return fmt.Errorf("crypto: invalid vote kind in %v", vt)
	}
	if !v.verifyOne(vt.Voter, vt.Digest(), vt.Signature) {
		return fmt.Errorf("crypto: bad signature on %v", vt)
	}
	return nil
}

// VerifyCert checks a certificate — shape, then every signature through
// the pool and cache; cached counterpart of the package-level VerifyCert.
func (v *Verifier) VerifyCert(c *types.Certificate, quorum int) error {
	if c == nil {
		return fmt.Errorf("crypto: nil certificate")
	}
	if err := c.CheckShape(v.kr.N(), quorum); err != nil {
		return err
	}
	digest := c.Digest()
	batch := v.newSigBatch(len(c.Signers))
	for i, signer := range c.Signers {
		batch.add(i, signer, digest, c.Sigs[i])
	}
	if bad := batch.flush(); bad >= 0 {
		return fmt.Errorf("crypto: bad signature by %d in %v", c.Signers[bad], c)
	}
	return nil
}

// VerifyUnlockProof checks an unlock proof's fast votes through the pool
// and cache, then re-evaluates the claim; cached counterpart of the
// package-level VerifyUnlockProof.
func (v *Verifier) VerifyUnlockProof(u *types.UnlockProof, threshold int) error {
	if u == nil {
		return fmt.Errorf("crypto: nil unlock proof")
	}
	total := 0
	for _, e := range u.Entries {
		if len(e.Voters) != len(e.Sigs) {
			return fmt.Errorf("crypto: unlock entry voters/sigs mismatch in %v", u)
		}
		total += len(e.Voters)
	}
	type ref struct {
		voter types.ReplicaID
		id    types.BlockID
	}
	refs := make([]ref, 0, total)
	batch := v.newSigBatch(total)
	for _, e := range u.Entries {
		id := e.Header.ID()
		digest := types.VoteDigest(types.VoteFast, u.Round, id)
		for i, voter := range e.Voters {
			batch.add(len(refs), voter, digest, e.Sigs[i])
			refs = append(refs, ref{voter: voter, id: id})
		}
	}
	if bad := batch.flush(); bad >= 0 {
		return fmt.Errorf("crypto: bad fast vote by %d for %s in %v",
			refs[bad].voter, refs[bad].id, u)
	}
	if !u.Evaluate(threshold) {
		return fmt.Errorf("crypto: unlock proof does not establish its claim: %v", u)
	}
	return nil
}

// VerifyCertIn is VerifyCert pinned to an epoch's validator set: every
// signer must additionally be a member. See the package-level VerifyCertIn
// for why the member check — not the signature check — is what evicts a
// removed validator's still-valid signatures.
func (v *Verifier) VerifyCertIn(c *types.Certificate, quorum int, set MemberSet) error {
	if err := v.VerifyCert(c, quorum); err != nil {
		return err
	}
	for _, signer := range c.Signers {
		if !set.Contains(signer) {
			return fmt.Errorf("crypto: signer %d not a member of the certificate's epoch in %v", signer, c)
		}
	}
	return nil
}

// VerifyUnlockProofIn is VerifyUnlockProof pinned to an epoch's validator
// set: every fast-vote voter must additionally be a member.
func (v *Verifier) VerifyUnlockProofIn(u *types.UnlockProof, threshold int, set MemberSet) error {
	if u == nil {
		return fmt.Errorf("crypto: nil unlock proof")
	}
	for _, e := range u.Entries {
		for _, voter := range e.Voters {
			if !set.Contains(voter) {
				return fmt.Errorf("crypto: fast voter %d not a member of the proof's epoch in %v", voter, u)
			}
		}
	}
	return v.VerifyUnlockProof(u, threshold)
}

// PreverifyMessage verifies the signatures a consensus message carries
// and caches the valid ones, without judging the message itself — quorum
// thresholds and protocol rules remain the engine's job. It is the verify
// half of a verify-then-deliver stage: transports call it on worker
// goroutines so that the consensus goroutine's own verification becomes
// cache lookups. Invalid signatures are simply not cached (the engine
// will reject them); malformed messages are ignored.
//
// Because preverification runs before any protocol-level validation, it
// is a CPU-amplification target: a Byzantine peer could stuff one message
// with an arbitrary number of garbage signatures. Two defenses bound the
// work to what the engine itself would risk: aggregates must pass the
// same structural checks the engine applies first (sorted unique in-range
// signers), and the total signatures verified per message are capped at a
// small multiple of the cluster size — anything beyond the cap is left
// for the engine, which rejects malformed aggregates before verifying.
func (v *Verifier) PreverifyMessage(msg types.Message) {
	if v.cache == nil {
		return // nothing to warm
	}
	batch := v.newSigBatch(16)
	batch.limit = 4 * v.kr.N()
	v.gather(batch, msg)
	batch.flush()
}

// gather queues every signature of a message into the batch.
func (v *Verifier) gather(b *sigBatch, msg types.Message) {
	switch m := msg.(type) {
	case *types.Proposal:
		if m.Block != nil && !m.Block.IsGenesis() {
			b.add(0, m.Block.Proposer, blockDigest(m.Block.ID()), m.Block.Signature)
		}
		if m.FastVote != nil && m.FastVote.Kind.Valid() {
			b.add(0, m.FastVote.Voter, m.FastVote.Digest(), m.FastVote.Signature)
		}
		v.gatherCert(b, m.ParentNotarization)
		v.gatherUnlock(b, m.ParentUnlock)
	case *types.VoteMsg:
		for _, vt := range m.Votes {
			if b.full() {
				return
			}
			if vt.Kind.Valid() {
				b.add(0, vt.Voter, vt.Digest(), vt.Signature)
			}
		}
	case *types.CertMsg:
		v.gatherCert(b, m.Cert)
	case *types.Advance:
		v.gatherCert(b, m.Notarization)
		v.gatherUnlock(b, m.Unlock)
	case *types.SyncResponse:
		for _, blk := range m.Blocks {
			if b.full() {
				return
			}
			if blk != nil && !blk.IsGenesis() {
				b.add(0, blk.Proposer, blockDigest(blk.ID()), blk.Signature)
			}
		}
		v.gatherCert(b, m.Finalization)
	case *types.SnapshotResponse:
		for _, blk := range m.Chain {
			if b.full() {
				return
			}
			if blk != nil && !blk.IsGenesis() {
				b.add(0, blk.Proposer, blockDigest(blk.ID()), blk.Signature)
			}
		}
		v.gatherCert(b, m.Finalization)
	}
}

// gatherCert queues a certificate's signatures, but only when the
// certificate passes the engine's structural checks (sorted unique
// in-range signers, which also bounds them at keyring.N()) — the engine
// rejects anything else before verifying a single signature, so
// preverifying it would be free work for an attacker.
func (v *Verifier) gatherCert(b *sigBatch, c *types.Certificate) {
	if c == nil || c.CheckShape(v.kr.N(), 1) != nil {
		return
	}
	digest := c.Digest()
	for i, signer := range c.Signers {
		if b.full() {
			return
		}
		b.add(0, signer, digest, c.Sigs[i])
	}
}

// gatherUnlock queues an unlock proof's fast votes, entry by entry,
// skipping entries that fail the structural rules Evaluate enforces
// (aligned voter/sig lists, strictly ascending voters — which bounds each
// entry at keyring.N() votes).
func (v *Verifier) gatherUnlock(b *sigBatch, u *types.UnlockProof) {
	if u == nil {
		return
	}
	for _, e := range u.Entries {
		if len(e.Voters) != len(e.Sigs) || !ascendingVoters(e.Voters) {
			continue
		}
		id := e.Header.ID()
		digest := types.VoteDigest(types.VoteFast, u.Round, id)
		for i, voter := range e.Voters {
			if b.full() {
				return
			}
			b.add(0, voter, digest, e.Sigs[i])
		}
	}
}

func ascendingVoters(voters []types.ReplicaID) bool {
	for i := 1; i < len(voters); i++ {
		if voters[i-1] >= voters[i] {
			return false
		}
	}
	return true
}
