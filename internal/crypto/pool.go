package crypto

import (
	"runtime"
	"sync"
)

// VerifierPool fans signature verification out over worker goroutines.
// One logical batch is sharded into per-worker BatchVerifiers; the call is
// synchronous, so callers (including the deterministic consensus engine)
// observe the same verdicts regardless of worker count or scheduling —
// parallelism changes wall-clock time only, never results.
type VerifierPool struct {
	scheme  Scheme
	workers int
}

// minParallel is the batch size below which the pool verifies inline:
// goroutine fan-out costs more than it saves on tiny batches.
const minParallel = 8

// NewVerifierPool builds a pool over the scheme. workers <= 0 selects
// GOMAXPROCS; workers == 1 verifies everything inline.
func NewVerifierPool(scheme Scheme, workers int) *VerifierPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &VerifierPool{scheme: scheme, workers: workers}
}

// Workers returns the pool's concurrency.
func (p *VerifierPool) Workers() int { return p.workers }

// VerifyMany checks every (pub, digest, sig) triple and returns one
// verdict per triple, in order. The three slices must have equal length.
func (p *VerifierPool) VerifyMany(pubs [][]byte, digests [][32]byte, sigs [][]byte) []bool {
	n := len(pubs)
	out := make([]bool, n)
	if n == 0 {
		return out
	}
	if p.workers == 1 || n < minParallel {
		p.verifyChunk(pubs, digests, sigs, out)
		return out
	}
	// Shard into at most `workers` contiguous chunks of near-equal size;
	// each worker writes a disjoint range of out.
	chunks := p.workers
	if chunks > n {
		chunks = n
	}
	var wg sync.WaitGroup
	size := (n + chunks - 1) / chunks
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			p.verifyChunk(pubs[lo:hi], digests[lo:hi], sigs[lo:hi], out[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// VerifyManyValid reports whether every triple verifies.
func (p *VerifierPool) VerifyManyValid(pubs [][]byte, digests [][32]byte, sigs [][]byte) bool {
	for _, ok := range p.VerifyMany(pubs, digests, sigs) {
		if !ok {
			return false
		}
	}
	return true
}

func (p *VerifierPool) verifyChunk(pubs [][]byte, digests [][32]byte, sigs [][]byte, out []bool) {
	bv := NewBatchVerifier(p.scheme)
	for i := range pubs {
		bv.Add(pubs[i], digests[i], sigs[i])
	}
	copy(out, bv.Flush())
}
