// Package wan models the wide-area testbeds of the paper's evaluation
// (Figure 5): replicas placed in AWS regions with realistic inter-region
// latencies.
//
// Instead of hard-coding a measured RTT table, latencies derive from a
// geographic model: round-trip time between two regions is the great-circle
// distance travelled twice at the speed of light in fiber (~200,000 km/s),
// inflated by a path factor for real fiber routing, plus a small fixed
// processing overhead:
//
//	RTT(a,b) = 2·dist(a,b)/c_fiber · 1.25 + 2.5 ms
//
// This reproduces published AWS inter-region figures within ~10–20%
// (e.g. us-east-1 ↔ eu-west-1 ≈ 68 ms, us-east-1 ↔ ap-northeast-1 ≈
// 145 ms), which is what the evaluation needs: the *geography* — who is
// near whom, which datacenter is furthest — drives every effect the paper
// reports. Replicas in the same region see a sub-millisecond RTT.
package wan

import (
	"fmt"
	"math"
	"time"

	"banyan/internal/types"
)

// coord is a latitude/longitude pair in degrees.
type coord struct {
	lat, lon float64
}

// regionCoords places each AWS region at its datacenter metro area.
var regionCoords = map[string]coord{
	"us-east-1":      {38.9, -77.0},  // N. Virginia
	"us-east-2":      {40.0, -83.0},  // Ohio
	"us-west-1":      {37.4, -122.0}, // N. California
	"us-west-2":      {45.5, -122.7}, // Oregon
	"ca-central-1":   {45.5, -73.6},  // Montreal
	"sa-east-1":      {-23.5, -46.6}, // São Paulo
	"eu-west-1":      {53.3, -6.3},   // Dublin
	"eu-west-2":      {51.5, -0.1},   // London
	"eu-west-3":      {48.9, 2.3},    // Paris
	"eu-central-1":   {50.1, 8.7},    // Frankfurt
	"eu-north-1":     {59.3, 18.1},   // Stockholm
	"eu-south-1":     {45.5, 9.2},    // Milan
	"ap-south-1":     {19.1, 72.9},   // Mumbai
	"ap-southeast-1": {1.35, 103.8},  // Singapore
	"ap-southeast-2": {-33.9, 151.2}, // Sydney
	"ap-northeast-1": {35.7, 139.7},  // Tokyo
	"ap-northeast-2": {37.6, 127.0},  // Seoul
	"ap-northeast-3": {34.7, 135.5},  // Osaka
	"ap-east-1":      {22.3, 114.2},  // Hong Kong
}

const (
	earthRadiusKm = 6371.0
	// fiberKmPerMs is the speed of light in fiber: ~200,000 km/s.
	fiberKmPerMs = 200.0
	// pathInflation accounts for fiber routes being longer than great
	// circles.
	pathInflation = 1.25
	// fixedOverhead is per-RTT switching/processing overhead.
	fixedOverhead = 2500 * time.Microsecond
	// sameRegionRTT is the round trip between hosts in one region.
	sameRegionRTT = 700 * time.Microsecond
)

// Regions lists all modeled region names, in a fixed order.
func Regions() []string {
	return []string{
		"us-east-1", "us-east-2", "us-west-1", "us-west-2", "ca-central-1",
		"sa-east-1", "eu-west-1", "eu-west-2", "eu-west-3", "eu-central-1",
		"eu-north-1", "eu-south-1", "ap-south-1", "ap-southeast-1",
		"ap-southeast-2", "ap-northeast-1", "ap-northeast-2",
		"ap-northeast-3", "ap-east-1",
	}
}

func haversineKm(a, b coord) float64 {
	const degToRad = math.Pi / 180
	lat1, lon1 := a.lat*degToRad, a.lon*degToRad
	lat2, lon2 := b.lat*degToRad, b.lon*degToRad
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// RTT returns the modeled round-trip time between two regions.
func RTT(a, b string) (time.Duration, error) {
	ca, ok := regionCoords[a]
	if !ok {
		return 0, fmt.Errorf("wan: unknown region %q", a)
	}
	cb, ok := regionCoords[b]
	if !ok {
		return 0, fmt.Errorf("wan: unknown region %q", b)
	}
	if a == b {
		return sameRegionRTT, nil
	}
	km := haversineKm(ca, cb)
	fiber := time.Duration(2 * km / fiberKmPerMs * pathInflation * float64(time.Millisecond))
	return fiber + fixedOverhead, nil
}

// Topology is a concrete replica placement: replica i lives in Region(i).
// It implements simnet.Topology.
type Topology struct {
	name    string
	regions []string
	delay   [][]time.Duration
}

// NewTopology builds a placement from a per-replica region list.
func NewTopology(name string, regions []string) (*Topology, error) {
	n := len(regions)
	if n == 0 {
		return nil, fmt.Errorf("wan: empty placement")
	}
	for _, region := range regions {
		if _, ok := regionCoords[region]; !ok {
			return nil, fmt.Errorf("wan: unknown region %q", region)
		}
	}
	d := make([][]time.Duration, n)
	for i := range d {
		d[i] = make([]time.Duration, n)
		for j := range d[i] {
			if i == j {
				continue
			}
			rtt, err := RTT(regions[i], regions[j])
			if err != nil {
				return nil, err
			}
			d[i][j] = rtt / 2
		}
	}
	cp := make([]string, n)
	copy(cp, regions)
	return &Topology{name: name, regions: cp, delay: d}, nil
}

// Name identifies the topology in reports.
func (t *Topology) Name() string { return t.name }

// N implements simnet.Topology.
func (t *Topology) N() int { return len(t.regions) }

// Region returns replica i's region.
func (t *Topology) Region(i types.ReplicaID) string { return t.regions[i] }

// Delay implements simnet.Topology: one-way propagation delay.
func (t *Topology) Delay(from, to types.ReplicaID) time.Duration {
	return t.delay[from][to]
}

// MaxOneWay returns the largest one-way delay in the topology — the basis
// for setting Δ "larger than the message delay experienced without network
// disruptions" (paper section 9.2).
func (t *Topology) MaxOneWay() time.Duration {
	var max time.Duration
	for i := range t.delay {
		for _, d := range t.delay[i] {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// spread distributes counts[i] replicas into dcs[i], concatenated in order.
func spread(name string, dcs []string, counts []int) (*Topology, error) {
	if len(dcs) != len(counts) {
		return nil, fmt.Errorf("wan: %d datacenters but %d counts", len(dcs), len(counts))
	}
	var regions []string
	for i, dc := range dcs {
		for k := 0; k < counts[i]; k++ {
			regions = append(regions, dc)
		}
	}
	return NewTopology(name, regions)
}

// fourGlobalDCs are the four globally spread datacenters of section 9.3
// (red triangles in Figure 5): two in North America, one in Europe, one in
// Asia — giving the fast path a "furthest datacenter" to wait for.
var fourGlobalDCs = []string{"us-east-1", "us-west-2", "eu-central-1", "ap-northeast-1"}

// fourUSDCs are the four US datacenters of section 9.4 (yellow crosses in
// Figure 5).
var fourUSDCs = []string{"us-east-1", "us-east-2", "us-west-1", "us-west-2"}

// FourGlobal19 is the section 9.3 primary testbed: 19 replicas across 4
// global datacenters, 5 per datacenter except one with 4.
func FourGlobal19() (*Topology, error) {
	return spread("4dc-global-n19", fourGlobalDCs, []int{5, 5, 5, 4})
}

// FourGlobal4 is the section 9.3 small-cluster testbed: one replica in
// each of the four global datacenters (n = 4).
func FourGlobal4() (*Topology, error) {
	return spread("4dc-global-n4", fourGlobalDCs, []int{1, 1, 1, 1})
}

// FourUS19 is the section 9.4 crash-fault testbed: 19 replicas across four
// US datacenters (5, 5, 5, 4).
func FourUS19() (*Topology, error) {
	return spread("4dc-us-n19", fourUSDCs, []int{5, 5, 5, 4})
}

// Global19 is the section 9.5 worldwide testbed: one replica in each of 19
// AWS regions (black dots in Figure 5).
func Global19() (*Topology, error) {
	return NewTopology("global-n19", Regions())
}

// Uniform builds a synthetic topology with one identical one-way delay
// between every pair — handy for unit tests and the latency model.
func Uniform(n int, oneWay time.Duration) *Topology {
	regions := make([]string, n)
	d := make([][]time.Duration, n)
	for i := range d {
		regions[i] = "uniform"
		d[i] = make([]time.Duration, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = oneWay
			}
		}
	}
	return &Topology{name: fmt.Sprintf("uniform-n%d-%s", n, oneWay), regions: regions, delay: d}
}

// Colocated builds a topology where groups of replicas share a region from
// a custom datacenter list (used by the geography ablation).
func Colocated(name string, dcs []string, counts []int) (*Topology, error) {
	return spread(name, dcs, counts)
}
