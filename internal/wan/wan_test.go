package wan

import (
	"testing"
	"time"

	"banyan/internal/types"
)

func TestRTTModelPlausibility(t *testing.T) {
	// The model should land within ~25% of well-known figures.
	tests := []struct {
		a, b string
		want time.Duration
	}{
		{"us-east-1", "eu-west-1", 67 * time.Millisecond},
		{"us-east-1", "us-west-2", 60 * time.Millisecond},
		{"us-east-1", "ap-northeast-1", 145 * time.Millisecond},
		{"eu-central-1", "ap-southeast-1", 155 * time.Millisecond},
		{"us-east-1", "sa-east-1", 115 * time.Millisecond},
	}
	for _, tt := range tests {
		got, err := RTT(tt.a, tt.b)
		if err != nil {
			t.Fatal(err)
		}
		lo := tt.want * 3 / 4
		hi := tt.want * 5 / 4
		if got < lo || got > hi {
			t.Errorf("RTT(%s, %s) = %v; published ≈ %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestRTTSymmetryAndSelf(t *testing.T) {
	regions := Regions()
	for _, a := range regions {
		self, err := RTT(a, a)
		if err != nil || self != sameRegionRTT {
			t.Fatalf("RTT(%s, %s) = %v, %v", a, a, self, err)
		}
		for _, b := range regions {
			ab, err1 := RTT(a, b)
			ba, err2 := RTT(b, a)
			if err1 != nil || err2 != nil || ab != ba {
				t.Fatalf("RTT asymmetric for %s<->%s: %v vs %v", a, b, ab, ba)
			}
		}
	}
	if _, err := RTT("mars-east-1", "us-east-1"); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestTopologyDelayIsHalfRTT(t *testing.T) {
	topo, err := NewTopology("t", []string{"us-east-1", "eu-west-1"})
	if err != nil {
		t.Fatal(err)
	}
	rtt, _ := RTT("us-east-1", "eu-west-1")
	if got := topo.Delay(0, 1); got != rtt/2 {
		t.Fatalf("one-way delay %v, want %v", got, rtt/2)
	}
	if topo.Delay(0, 0) != 0 {
		t.Fatal("self delay must be zero")
	}
}

func TestPaperTestbeds(t *testing.T) {
	tests := []struct {
		name string
		make func() (*Topology, error)
		n    int
	}{
		{"FourGlobal19", FourGlobal19, 19},
		{"FourGlobal4", FourGlobal4, 4},
		{"FourUS19", FourUS19, 19},
		{"Global19", Global19, 19},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			topo, err := tt.make()
			if err != nil {
				t.Fatal(err)
			}
			if topo.N() != tt.n {
				t.Fatalf("N = %d, want %d", topo.N(), tt.n)
			}
			if topo.MaxOneWay() <= 0 {
				t.Fatal("MaxOneWay must be positive")
			}
		})
	}
}

func TestFourGlobal19Layout(t *testing.T) {
	topo, err := FourGlobal19()
	if err != nil {
		t.Fatal(err)
	}
	// 5/5/5/4 across four datacenters.
	perDC := make(map[string]int)
	for i := 0; i < topo.N(); i++ {
		perDC[topo.Region(types.ReplicaID(i))]++
	}
	if len(perDC) != 4 {
		t.Fatalf("%d datacenters, want 4", len(perDC))
	}
	fives, fours := 0, 0
	for _, c := range perDC {
		switch c {
		case 5:
			fives++
		case 4:
			fours++
		}
	}
	if fives != 3 || fours != 1 {
		t.Fatalf("layout %v, want 5/5/5/4", perDC)
	}
	// Co-located replicas see sub-millisecond delays.
	if d := topo.Delay(0, 1); d >= time.Millisecond {
		t.Fatalf("intra-DC delay %v too large", d)
	}
	// Cross-DC delays are tens of milliseconds.
	if d := topo.Delay(0, 18); d < 10*time.Millisecond {
		t.Fatalf("cross-DC delay %v too small", d)
	}
}

func TestGlobal19CoversAllRegions(t *testing.T) {
	topo, err := Global19()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i := 0; i < topo.N(); i++ {
		seen[topo.Region(types.ReplicaID(i))] = true
	}
	if len(seen) != 19 {
		t.Fatalf("%d distinct regions, want 19", len(seen))
	}
}

func TestUniform(t *testing.T) {
	topo := Uniform(5, 30*time.Millisecond)
	if topo.N() != 5 {
		t.Fatal("wrong n")
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 30 * time.Millisecond
			if i == j {
				want = 0
			}
			if got := topo.Delay(types.ReplicaID(i), types.ReplicaID(j)); got != want {
				t.Fatalf("Delay(%d,%d) = %v", i, j, got)
			}
		}
	}
	if topo.MaxOneWay() != 30*time.Millisecond {
		t.Fatal("MaxOneWay wrong")
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := NewTopology("x", nil); err == nil {
		t.Fatal("empty placement accepted")
	}
	if _, err := NewTopology("x", []string{"nowhere-1"}); err == nil {
		t.Fatal("unknown region accepted")
	}
	if _, err := Colocated("x", []string{"us-east-1"}, []int{1, 2}); err == nil {
		t.Fatal("mismatched counts accepted")
	}
}
