package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of log2 latency buckets a Histogram carries.
// Bucket i counts observations whose nanosecond value has bit-length i,
// i.e. durations in [2^(i-1), 2^i) ns; bucket 0 counts non-positive
// observations. 64 buckets cover every representable duration.
const HistBuckets = 64

// Histogram is a lock-free log2-bucketed latency histogram. Record is a
// fixed number of atomic adds — no locks, no allocations — so it is safe
// on the same hot paths the PR 3 zero-allocation discipline protects
// (gated by TestAllocRegressionHistogramRecord). The zero value is ready
// to use, and all methods are nil-receiver safe so optional wiring needs
// no call-site guards.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	sum     atomic.Int64 // total nanoseconds observed
	count   atomic.Int64
}

// Record observes one duration. Non-positive durations land in bucket 0.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	idx := 0
	if ns > 0 {
		idx = bits.Len64(uint64(ns))
	}
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot copies the current bucket counts into a point-in-time view.
// Buckets are read individually (not under a lock), so a snapshot taken
// concurrently with Record may be off by in-flight observations — fine
// for scraping, which is the only consumer.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, mergeable across
// replicas by bucket addition (the harness aggregates per-replica
// histograms this way).
type HistSnapshot struct {
	Buckets [HistBuckets]int64
	Sum     int64 // nanoseconds
	Count   int64
}

// Merge adds another snapshot's buckets into this one.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// BucketUpper returns the exclusive upper bound of bucket i in
// nanoseconds: 2^i (bucket 0 holds only non-positive values, bound 1).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return int64(1) << 62 // clamp: effectively +Inf for durations
	}
	return int64(1) << uint(i)
}

// Quantile returns an estimate of the q-th quantile (0 < q <= 1) by
// linear interpolation inside the target log2 bucket. Returns 0 when the
// histogram is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo := float64(BucketUpper(i)) / 2
			if i == 0 {
				lo = 0
			}
			hi := float64(BucketUpper(i))
			frac := (rank - cum) / float64(c)
			return time.Duration(lo + (hi-lo)*frac)
		}
		cum = next
	}
	return time.Duration(BucketUpper(HistBuckets - 1))
}

// Mean returns the exact mean of all observations (the sum is tracked
// outside the buckets).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Gauge is an instantaneous value (current round, mempool depth). The
// zero value is ready; methods are nil-receiver safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
