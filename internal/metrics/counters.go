package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a named atomic event counter, cheap enough for transport
// hot paths (queue drops, reconnects). The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Registry is a set of named counters shared across a replica's
// components (transport, node, WAL), snapshotted into the same
// map[string]int64 the engines report, so operational counters — e.g.
// the TCP transport's outbound-queue drops — surface next to protocol
// counters instead of vanishing silently. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it on first
// use. Nil registries return a detached counter (callers need no nil
// checks on optional wiring).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Snapshot returns the current value of every counter.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// Names returns the registered counter names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
