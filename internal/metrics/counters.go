package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a named atomic event counter, cheap enough for transport
// hot paths (queue drops, reconnects). The zero value is ready to use.
//
// Hot paths must not call Registry.Counter per event: look the counter up
// once at construction time and cache the *Counter in a struct field, so
// the per-event cost is a single atomic add (see BenchmarkCounterHoisted
// vs BenchmarkCounterRegistryLookup).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Registry is a set of named counters, histograms, and gauges shared
// across a replica's components (transport, node, WAL, engine
// observability), snapshotted into the same map[string]int64 the engines
// report, so operational counters — e.g. the TCP transport's
// outbound-queue drops — surface next to protocol counters instead of
// vanishing silently. Safe for concurrent use.
//
// Lookups and scrapes take a read lock; the write lock is held only on
// first registration of a name, so metric scraping never contends with
// steady-state instrument lookup.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Nil registries return a detached counter (callers need no nil
// checks on optional wiring).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Histogram returns the histogram with the given name, creating it on
// first use. Nil registries return a detached histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Gauge returns the gauge with the given name, creating it on first use.
// Nil registries return a detached gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Snapshot returns the current value of every counter.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// Gauges returns the current value of every gauge.
func (r *Registry) Gauges() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Load()
	}
	return out
}

// Histograms returns a point-in-time snapshot of every histogram.
func (r *Registry) Histograms() map[string]HistSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]HistSnapshot, len(r.hists))
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// Names returns the registered counter names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
