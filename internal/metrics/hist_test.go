package metrics

import (
	"math/bits"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries is the bucket-placement property test:
// for every exponent k, the values 2^k−1, 2^k, and 2^k+1 must land in
// the bucket equal to their nanosecond bit-length, and non-positive
// values in bucket 0. This pins the log2 bucketing contract BucketUpper
// and Quantile both build on.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []int64{0, -1, -1 << 40, 1, 2, 3}
	for k := 1; k < 63; k++ {
		p := int64(1) << uint(k)
		cases = append(cases, p-1, p, p+1)
	}
	for _, ns := range cases {
		var h Histogram
		h.Record(time.Duration(ns))
		want := 0
		if ns > 0 {
			want = bits.Len64(uint64(ns))
		}
		if want >= HistBuckets {
			want = HistBuckets - 1
		}
		s := h.Snapshot()
		for i, c := range s.Buckets {
			switch {
			case i == want && c != 1:
				t.Fatalf("Record(%d): bucket %d has %d observations, want 1", ns, i, c)
			case i != want && c != 0:
				t.Fatalf("Record(%d): stray count in bucket %d, want everything in %d", ns, i, want)
			}
		}
		if upper := BucketUpper(want); ns > 0 && ns < int64(1)<<62 && ns >= upper {
			t.Fatalf("Record(%d): landed in bucket %d with upper bound %d", ns, want, upper)
		}
	}
}

// TestBucketUpperMonotone checks the bucket bounds are strictly
// increasing until the +Inf clamp — the property sparse Prometheus
// exposition relies on for cumulative le series.
func TestBucketUpperMonotone(t *testing.T) {
	prev := int64(0)
	for i := 0; i < 63; i++ {
		u := BucketUpper(i)
		if u <= prev {
			t.Fatalf("BucketUpper(%d) = %d not > BucketUpper(%d) = %d", i, u, i-1, prev)
		}
		prev = u
	}
	if BucketUpper(63) != BucketUpper(100) {
		t.Fatalf("upper bound not clamped past bucket 62")
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many
// goroutines (run under -race in CI) and checks no observation is lost:
// count, sum, and the bucket total must all agree.
func TestHistogramConcurrentRecord(t *testing.T) {
	const goroutines = 8
	const perG = 10_000
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(time.Duration(g*perG + i + 1))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if want := int64(goroutines * perG); s.Count != want {
		t.Fatalf("count = %d, want %d", s.Count, want)
	}
	var inBuckets int64
	for _, c := range s.Buckets {
		inBuckets += c
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket total %d != count %d", inBuckets, s.Count)
	}
	// Sum of 1..goroutines*perG.
	n := int64(goroutines * perG)
	if want := n * (n + 1) / 2; s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
}

// TestAllocRegressionHistogramRecord gates the PR 3 discipline for the
// observability hot path: Record and Gauge.Set must not allocate, on a
// live instrument or a nil one.
func TestAllocRegressionHistogramRecord(t *testing.T) {
	var h Histogram
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(137 * time.Microsecond)
		g.Set(42)
	}); n > 0 {
		t.Errorf("Histogram.Record + Gauge.Set: %v allocs/op, budget 0", n)
	}
	var nilH *Histogram
	var nilG *Gauge
	if n := testing.AllocsPerRun(1000, func() {
		nilH.Record(time.Millisecond)
		nilG.Set(1)
		nilG.Add(1)
	}); n > 0 {
		t.Errorf("nil-receiver Record/Set: %v allocs/op, budget 0", n)
	}
}

// TestHistogramQuantile checks the interpolated quantiles stay inside
// their bucket and order correctly.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 100 observations at ~1ms (bucket of 2^20ns), 10 at ~1s (2^30ns).
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Second)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	p99 := s.Quantile(0.99)
	msIdx := bits.Len64(uint64(time.Millisecond))
	secIdx := bits.Len64(uint64(time.Second))
	if lo, hi := BucketUpper(msIdx)/2, BucketUpper(msIdx); int64(p50) < lo || int64(p50) > hi {
		t.Errorf("p50 = %v outside the 1ms bucket [%d, %d]", p50, lo, hi)
	}
	if lo, hi := BucketUpper(secIdx)/2, BucketUpper(secIdx); int64(p99) < lo || int64(p99) > hi {
		t.Errorf("p99 = %v outside the 1s bucket [%d, %d]", p99, lo, hi)
	}
	if p50 >= p99 {
		t.Errorf("p50 %v >= p99 %v", p50, p99)
	}
	if got := (HistSnapshot{}).Quantile(0.99); got != 0 {
		t.Errorf("empty snapshot quantile = %v, want 0", got)
	}
}

// TestHistSnapshotMerge checks cross-replica aggregation: merged
// snapshots add bucket-wise and keep the exact mean.
func TestHistSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Record(time.Millisecond)
		b.Record(3 * time.Second)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 20 {
		t.Fatalf("merged count = %d, want 20", sa.Count)
	}
	if want := 10*int64(time.Millisecond) + 10*int64(3*time.Second); sa.Sum != want {
		t.Fatalf("merged sum = %d, want %d", sa.Sum, want)
	}
	if want := time.Duration((int64(time.Millisecond) + int64(3*time.Second)) / 2); sa.Mean() != want {
		t.Fatalf("merged mean = %v, want %v", sa.Mean(), want)
	}
}

// TestNilHistogramSafe checks optional wiring needs no call-site guards.
func TestNilHistogramSafe(t *testing.T) {
	var h *Histogram
	h.Record(time.Second)
	if h.Count() != 0 {
		t.Fatal("nil histogram count != 0")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	var g *Gauge
	g.Set(5)
	g.Add(5)
	if g.Load() != 0 {
		t.Fatal("nil gauge load != 0")
	}
}

// TestRegistryStablePointers checks the read-mostly registry contract:
// concurrent lookups of one name all resolve to the same instrument, so
// hoisting the pointer once at construction time is sound.
func TestRegistryStablePointers(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	counters := make([]*Counter, goroutines)
	hists := make([]*Histogram, goroutines)
	gauges := make([]*Gauge, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			counters[g] = r.Counter("shared")
			hists[g] = r.Histogram("shared")
			gauges[g] = r.Gauge("shared")
			counters[g].Inc()
			hists[g].Record(time.Millisecond)
			r.Snapshot()
			r.Histograms()
			r.Gauges()
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if counters[g] != counters[0] || hists[g] != hists[0] || gauges[g] != gauges[0] {
			t.Fatalf("goroutine %d resolved different instrument pointers for one name", g)
		}
	}
	if got := r.Snapshot()["shared"]; got != goroutines {
		t.Fatalf("counter = %d, want %d", got, goroutines)
	}
	if got := r.Histograms()["shared"].Count; got != goroutines {
		t.Fatalf("histogram count = %d, want %d", got, goroutines)
	}
}

// TestNilRegistryDetached checks the nil registry returns detached but
// usable instruments.
func TestNilRegistryDetached(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Histogram("x").Record(time.Second)
	r.Gauge("x").Set(1)
	if r.Snapshot() != nil || r.Histograms() != nil || r.Gauges() != nil || r.Names() != nil {
		t.Fatal("nil registry snapshots not nil")
	}
}

// BenchmarkCounterHoisted measures the per-event cost when the *Counter
// is looked up once and cached in a struct field — the discipline every
// hot path in this codebase follows. Compare with
// BenchmarkCounterRegistryLookup to see what the discipline buys.
func BenchmarkCounterHoisted(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_hoisted")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterRegistryLookup measures the anti-pattern: a registry
// map lookup under RLock on every event.
func BenchmarkCounterRegistryLookup(b *testing.B) {
	r := NewRegistry()
	r.Counter("bench_lookup")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("bench_lookup").Inc()
	}
}

// BenchmarkHistogramRecord measures the observability hot-path record.
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i))
	}
}
