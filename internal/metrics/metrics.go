// Package metrics provides the measurement pipeline of the evaluation
// and the operational counters of the runtime.
//
// For the evaluation (paper section 9.2): latency Series with summary
// statistics (mean, deviation, percentiles) and byte-Throughput
// accounting, mirroring the paper's definitions — proposal finalization
// time measured at the proposer, committed bytes per second at a
// non-faulty replica.
//
// For the runtime: named atomic Counters collected in a Registry, which
// components share so operational events surface in the same
// map[string]int64 snapshot the engines report instead of disappearing
// silently — e.g. the TCP transport counts outbound-queue drops into
// "transport_dropped", letting a WAL-recovery investigation distinguish
// replay gaps from network loss.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series accumulates duration samples.
type Series struct {
	samples []time.Duration
	sorted  bool
}

// NewSeries returns an empty series.
func NewSeries() *Series { return &Series{} }

// Add appends a sample.
func (s *Series) Add(d time.Duration) {
	s.samples = append(s.samples, d)
	s.sorted = false
}

// Count returns the number of samples.
func (s *Series) Count() int { return len(s.samples) }

// Mean returns the average sample, or 0 when empty.
func (s *Series) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.samples {
		sum += d
	}
	return sum / time.Duration(len(s.samples))
}

// StdDev returns the population standard deviation, or 0 when empty.
func (s *Series) StdDev() time.Duration {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := float64(s.Mean())
	var acc float64
	for _, d := range s.samples {
		diff := float64(d) - mean
		acc += diff * diff
	}
	return time.Duration(math.Sqrt(acc / float64(n)))
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, or 0 when empty.
func (s *Series) Percentile(p float64) time.Duration {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s.samples[rank-1]
}

// Min returns the smallest sample, or 0 when empty.
func (s *Series) Min() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[0]
}

// Max returns the largest sample, or 0 when empty.
func (s *Series) Max() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[len(s.samples)-1]
}

// Samples returns a copy of the raw samples in insertion order is NOT
// guaranteed after summary calls; callers needing order should keep their
// own log. The copy protects internal state.
func (s *Series) Samples() []time.Duration {
	out := make([]time.Duration, len(s.samples))
	copy(out, s.samples)
	return out
}

func (s *Series) ensureSorted() {
	if !s.sorted {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
		s.sorted = true
	}
}

// Summary is a snapshot of a series' statistics.
type Summary struct {
	Count  int
	Mean   time.Duration
	StdDev time.Duration
	Min    time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
	Max    time.Duration
}

// Summarize computes all summary statistics at once.
func (s *Series) Summarize() Summary {
	return Summary{
		Count:  s.Count(),
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		Min:    s.Min(),
		P50:    s.Percentile(50),
		P95:    s.Percentile(95),
		P99:    s.Percentile(99),
		Max:    s.Max(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%s sd=%s p50=%s p95=%s p99=%s max=%s",
		s.Count, ms(s.Mean), ms(s.StdDev), ms(s.P50), ms(s.P95), ms(s.P99), ms(s.Max))
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

// Throughput tracks committed bytes and blocks over an observation window.
type Throughput struct {
	Bytes  int64
	Blocks int64
	window time.Duration
}

// NewThroughput creates a throughput accumulator over the given window.
func NewThroughput(window time.Duration) *Throughput {
	return &Throughput{window: window}
}

// Observe adds one committed block of the given payload size.
func (t *Throughput) Observe(payloadBytes int) {
	t.Bytes += int64(payloadBytes)
	t.Blocks++
}

// BytesPerSecond returns committed payload bytes per second of window.
func (t *Throughput) BytesPerSecond() float64 {
	if t.window <= 0 {
		return 0
	}
	return float64(t.Bytes) / t.window.Seconds()
}

// BlocksPerSecond returns committed blocks per second of window.
func (t *Throughput) BlocksPerSecond() float64 {
	if t.window <= 0 {
		return 0
	}
	return float64(t.Blocks) / t.window.Seconds()
}

// BlockInterval returns the average time between committed blocks (the
// "block interval" of Figure 6d), or 0 with no blocks.
func (t *Throughput) BlockInterval() time.Duration {
	if t.Blocks == 0 {
		return 0
	}
	return time.Duration(int64(t.window) / t.Blocks)
}
