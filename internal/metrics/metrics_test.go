package metrics

import (
	"math"
	"testing"
	"time"
)

func seriesOf(ds ...time.Duration) *Series {
	s := NewSeries()
	for _, d := range ds {
		s.Add(d)
	}
	return s
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries()
	if s.Count() != 0 || s.Mean() != 0 || s.StdDev() != 0 ||
		s.Percentile(50) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty series statistics must all be zero")
	}
}

func TestSeriesStatistics(t *testing.T) {
	s := seriesOf(10*time.Millisecond, 20*time.Millisecond, 30*time.Millisecond, 40*time.Millisecond)
	if got := s.Mean(); got != 25*time.Millisecond {
		t.Errorf("Mean = %v, want 25ms", got)
	}
	if got := s.Min(); got != 10*time.Millisecond {
		t.Errorf("Min = %v", got)
	}
	if got := s.Max(); got != 40*time.Millisecond {
		t.Errorf("Max = %v", got)
	}
	// Population stddev of {10,20,30,40} = sqrt(125) ms.
	want := time.Duration(math.Sqrt(125) * float64(time.Millisecond))
	if got := s.StdDev(); got < want-time.Microsecond || got > want+time.Microsecond {
		t.Errorf("StdDev = %v, want ~%v", got, want)
	}
}

func TestPercentiles(t *testing.T) {
	s := NewSeries()
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{1, 1 * time.Millisecond},
		{0.5, 1 * time.Millisecond}, // rank clamps to 1
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); got != tt.want {
			t.Errorf("P%.1f = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestAddAfterSummaryKeepsCorrectness(t *testing.T) {
	s := seriesOf(3*time.Millisecond, 1*time.Millisecond)
	if s.Min() != time.Millisecond {
		t.Fatal("min wrong")
	}
	s.Add(500 * time.Microsecond) // after a sorted read
	if s.Min() != 500*time.Microsecond {
		t.Fatal("min not updated after post-summary Add")
	}
}

func TestSummarize(t *testing.T) {
	s := seriesOf(1*time.Millisecond, 2*time.Millisecond, 3*time.Millisecond)
	sum := s.Summarize()
	if sum.Count != 3 || sum.Mean != 2*time.Millisecond || sum.Min != time.Millisecond || sum.Max != 3*time.Millisecond {
		t.Fatalf("unexpected summary %+v", sum)
	}
	if sum.String() == "" {
		t.Fatal("summary must render")
	}
}

func TestSamplesCopy(t *testing.T) {
	s := seriesOf(time.Second)
	cp := s.Samples()
	cp[0] = 0
	if s.Max() != time.Second {
		t.Fatal("Samples returned a live reference to internal state")
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput(10 * time.Second)
	for i := 0; i < 20; i++ {
		tp.Observe(1 << 20)
	}
	if got := tp.BytesPerSecond(); got != float64(20<<20)/10 {
		t.Errorf("BytesPerSecond = %f", got)
	}
	if got := tp.BlocksPerSecond(); got != 2 {
		t.Errorf("BlocksPerSecond = %f", got)
	}
	if got := tp.BlockInterval(); got != 500*time.Millisecond {
		t.Errorf("BlockInterval = %v", got)
	}
}

func TestThroughputEmpty(t *testing.T) {
	tp := NewThroughput(0)
	if tp.BytesPerSecond() != 0 || tp.BlocksPerSecond() != 0 || tp.BlockInterval() != 0 {
		t.Fatal("zero-window throughput must report zeros")
	}
	tp2 := NewThroughput(time.Second)
	if tp2.BlockInterval() != 0 {
		t.Fatal("no-blocks interval must be zero")
	}
}
