package byzantine

import (
	"testing"
	"time"

	"banyan/internal/crypto"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// scriptedEngine is a fake inner engine that returns canned actions from
// every entry point, so tests can observe exactly how an adversary wrapper
// rewrites them.
type scriptedEngine struct {
	id   types.ReplicaID
	acts []protocol.Action
}

func (s *scriptedEngine) ID() types.ReplicaID               { return s.id }
func (s *scriptedEngine) Protocol() string                  { return "scripted" }
func (s *scriptedEngine) Metrics() map[string]int64         { return map[string]int64{"x": 1} }
func (s *scriptedEngine) Start(time.Time) []protocol.Action { return s.acts }
func (s *scriptedEngine) HandleMessage(types.ReplicaID, types.Message, time.Time) []protocol.Action {
	return s.acts
}
func (s *scriptedEngine) HandleTimer(protocol.TimerID, time.Time) []protocol.Action {
	return s.acts
}

func signedProposal(t *testing.T, signer *crypto.Signer, rank types.Rank, withFastVote bool) *types.Proposal {
	t.Helper()
	b := types.NewBlock(1, signer.ID(), rank, types.BlockID{}, types.SyntheticPayload(64, 42))
	if err := signer.SignBlock(b); err != nil {
		t.Fatal(err)
	}
	p := &types.Proposal{Block: b}
	if withFastVote {
		fv := signer.SignVote(types.VoteFast, b.Round, b.ID())
		p.FastVote = &fv
	}
	return p
}

func TestEquivocatingLeaderSplitsOwnProposal(t *testing.T) {
	const n = 5
	keyring, signers := crypto.GenerateCluster(crypto.Ed25519(), n, 1)
	self := signers[0]
	prop := signedProposal(t, self, 0, true)
	inner := &scriptedEngine{id: 0, acts: []protocol.Action{protocol.Broadcast{Msg: prop}}}
	adv := NewEquivocatingLeader(inner, self, n)

	acts := adv.Start(time.Unix(0, 0))

	// The broadcast must be rewritten into per-recipient sends only.
	sends := make(map[types.ReplicaID][]types.Message)
	for _, a := range acts {
		switch act := a.(type) {
		case protocol.Broadcast:
			t.Fatalf("own proposal escaped as a broadcast: %v", act.Msg)
		case protocol.Send:
			if act.To == adv.ID() {
				t.Fatal("adversary sent to itself")
			}
			sends[act.To] = append(sends[act.To], act.Msg)
		}
	}
	if len(sends) != n-1 {
		t.Fatalf("split reached %d recipients, want %d", len(sends), n-1)
	}

	// Each recipient gets exactly one of two conflicting, validly signed
	// blocks with the same round/rank/parent.
	blockIDs := make(map[types.BlockID]bool)
	for to, msgs := range sends {
		p, ok := msgs[0].(*types.Proposal)
		if !ok {
			t.Fatalf("first message to %d is %T, want *Proposal", to, msgs[0])
		}
		b := p.Block
		if b.Round != prop.Block.Round || b.Rank != prop.Block.Rank || b.Parent != prop.Block.Parent {
			t.Fatalf("twin header diverges beyond the payload: %v", b)
		}
		if err := crypto.VerifyBlock(keyring, b); err != nil {
			t.Fatalf("equivocated block to %d is not validly signed: %v", to, err)
		}
		if p.FastVote == nil {
			t.Fatalf("proposal to %d lost the leader's fast vote", to)
		}
		if p.FastVote.Block != b.ID() {
			t.Fatalf("fast vote to %d names %s, not the delivered block %s", to, p.FastVote.Block, b.ID())
		}
		if err := crypto.VerifyVote(keyring, *p.FastVote); err != nil {
			t.Fatalf("equivocated fast vote to %d does not verify: %v", to, err)
		}
		blockIDs[b.ID()] = true
	}
	if len(blockIDs) != 2 {
		t.Fatalf("split produced %d distinct blocks, want 2 conflicting", len(blockIDs))
	}
}

func TestEquivocatingLeaderPassesThroughForeignActions(t *testing.T) {
	const n = 4
	_, signers := crypto.GenerateCluster(crypto.Ed25519(), n, 2)
	self, other := signers[1], signers[2]
	foreign := signedProposal(t, other, 1, false)
	relayed := signedProposal(t, self, 0, false)
	relayed.Relayed = true
	vote := self.SignVote(types.VoteNotarize, 1, types.BlockID{})
	inner := &scriptedEngine{id: 1, acts: []protocol.Action{
		protocol.Broadcast{Msg: foreign},                                   // someone else's block
		protocol.Broadcast{Msg: relayed},                                   // own block, but a relay
		protocol.Broadcast{Msg: &types.VoteMsg{Votes: []types.Vote{vote}}}, // not a proposal
		protocol.SetTimer{ID: protocol.TimerID{Round: 1}},                  // not a network action
	}}
	adv := NewEquivocatingLeader(inner, self, n)
	acts := adv.HandleTimer(protocol.TimerID{}, time.Unix(0, 0))
	if len(acts) != len(inner.acts) {
		t.Fatalf("pass-through rewrote %d actions into %d", len(inner.acts), len(acts))
	}
	for i := range acts {
		if acts[i] != inner.acts[i] {
			t.Fatalf("action %d rewritten: %v -> %v", i, inner.acts[i], acts[i])
		}
	}
}

func TestSilentGoesMuteAfterDeadline(t *testing.T) {
	_, signers := crypto.GenerateCluster(crypto.HMAC(), 4, 3)
	prop := signedProposal(t, signers[0], 0, false)
	inner := &scriptedEngine{id: 0, acts: []protocol.Action{
		protocol.Broadcast{Msg: prop},
		protocol.Send{To: 2, Msg: prop},
		protocol.SetTimer{ID: protocol.TimerID{Round: 1}},
	}}
	cutoff := time.Unix(100, 0)
	s := NewSilent(inner, cutoff)

	before := s.HandleMessage(1, prop, cutoff.Add(-time.Second))
	if len(before) != 3 {
		t.Fatalf("before the deadline %d actions survived, want all 3", len(before))
	}
	after := s.HandleMessage(1, prop, cutoff)
	if len(after) != 1 {
		t.Fatalf("after the deadline %d actions survived, want only the timer", len(after))
	}
	if _, ok := after[0].(protocol.SetTimer); !ok {
		t.Fatalf("surviving action is %T, want SetTimer (mute replicas keep internal timers)", after[0])
	}
}

func TestVoteWithholderStripsFastAndFinalizationVotes(t *testing.T) {
	_, signers := crypto.GenerateCluster(crypto.HMAC(), 4, 4)
	self := signers[0]
	notar := self.SignVote(types.VoteNotarize, 1, types.BlockID{})
	fast := self.SignVote(types.VoteFast, 1, types.BlockID{})
	final := self.SignVote(types.VoteFinalize, 1, types.BlockID{})
	inner := &scriptedEngine{id: 0, acts: []protocol.Action{
		protocol.Broadcast{Msg: &types.VoteMsg{Votes: []types.Vote{notar, fast}}},
		protocol.Broadcast{Msg: &types.VoteMsg{Votes: []types.Vote{final}}},
	}}
	w := NewVoteWithholder(inner)
	acts := w.Start(time.Unix(0, 0))
	if len(acts) != 1 {
		t.Fatalf("%d broadcasts survived, want 1 (the all-stripped VoteMsg is dropped)", len(acts))
	}
	vm := acts[0].(protocol.Broadcast).Msg.(*types.VoteMsg)
	if len(vm.Votes) != 1 || vm.Votes[0].Kind != types.VoteNotarize {
		t.Fatalf("surviving votes %v, want exactly the notarization vote", vm.Votes)
	}
}

func TestVoteWithholderStripsProposalFastVote(t *testing.T) {
	_, signers := crypto.GenerateCluster(crypto.HMAC(), 4, 5)
	prop := signedProposal(t, signers[0], 0, true)
	inner := &scriptedEngine{id: 0, acts: []protocol.Action{protocol.Broadcast{Msg: prop}}}
	w := NewVoteWithholder(inner)
	acts := w.Start(time.Unix(0, 0))
	if len(acts) != 1 {
		t.Fatalf("got %d actions, want 1", len(acts))
	}
	got := acts[0].(protocol.Broadcast).Msg.(*types.Proposal)
	if got.FastVote != nil {
		t.Fatal("fast vote riding on the proposal was not stripped")
	}
	if got.Block != prop.Block {
		t.Fatal("withholder altered the proposal's block")
	}
	if prop.FastVote == nil {
		t.Fatal("withholder mutated the original proposal instead of copying it")
	}
}

func TestBatchWithholderNarrowsBodiesAndRefusesFetches(t *testing.T) {
	body := types.BytesPayload([]byte("batch-body"))
	digest := body.Digest()
	ann := &types.BatchAnnounce{Origin: 0, Digest: digest, Body: body}
	ack := &types.BatchAnnounce{Origin: 0, Digest: digest}
	resp := &types.BatchResponse{Digest: digest, Body: body}
	vote := types.Vote{Kind: types.VoteNotarize, Round: 1}
	inner := &scriptedEngine{id: 0, acts: []protocol.Action{
		protocol.Broadcast{Msg: ann},                                       // own body: narrowed
		protocol.Send{To: 3, Msg: ack},                                     // ack of a peer batch: kept
		protocol.Send{To: 3, Msg: resp},                                    // fetch response: dropped
		protocol.Broadcast{Msg: &types.VoteMsg{Votes: []types.Vote{vote}}}, // consensus: kept
	}}
	w := NewBatchWithholder(inner, []types.ReplicaID{1, 2})

	acts := w.Start(time.Unix(0, 0))

	served := map[types.ReplicaID]bool{}
	for _, a := range acts {
		switch act := a.(type) {
		case protocol.Broadcast:
			if _, isAnn := act.Msg.(*types.BatchAnnounce); isAnn {
				t.Fatal("body announce escaped as a broadcast")
			}
		case protocol.Send:
			switch m := act.Msg.(type) {
			case *types.BatchAnnounce:
				if m.IsAck() {
					if act.To != 3 {
						t.Fatalf("ack rerouted to %d", act.To)
					}
					continue
				}
				served[act.To] = true
			case *types.BatchResponse:
				t.Fatal("fetch response escaped")
			}
		}
	}
	if !served[1] || !served[2] || len(served) != 2 {
		t.Fatalf("body served to %v, want exactly replicas 1 and 2", served)
	}
	if w.Withheld() != 1 || w.Refused() != 1 {
		t.Fatalf("withheld=%d refused=%d, want 1 and 1", w.Withheld(), w.Refused())
	}
}

// TestAdversaryIdentity: wrappers must report the wrapped replica's ID and
// metrics while advertising their deviation in the protocol name.
func TestAdversaryIdentity(t *testing.T) {
	_, signers := crypto.GenerateCluster(crypto.HMAC(), 4, 6)
	inner := &scriptedEngine{id: 3}
	for _, tc := range []struct {
		eng  protocol.Engine
		want string
	}{
		{NewEquivocatingLeader(inner, signers[3], 4), "scripted-equivocator"},
		{NewSilent(inner, time.Unix(0, 0)), "scripted-mute"},
		{NewVoteWithholder(inner), "scripted-withholder"},
	} {
		if tc.eng.ID() != 3 {
			t.Errorf("%s: ID() = %d, want 3", tc.want, tc.eng.ID())
		}
		if tc.eng.Protocol() != tc.want {
			t.Errorf("Protocol() = %q, want %q", tc.eng.Protocol(), tc.want)
		}
		if tc.eng.Metrics()["x"] != 1 {
			t.Errorf("%s: metrics not proxied", tc.want)
		}
	}
}
