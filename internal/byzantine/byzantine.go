// Package byzantine provides adversarial replicas for fault-injection
// tests: engines that follow the protocol just enough to be dangerous and
// deviate where it hurts — the behaviours the Banyan paper's model allows
// a corrupted replica (an "f" replica) to exhibit.
//
// The adversaries wrap a real engine for protocol state tracking and
// rewrite its outgoing actions, so they stay in sync with the cluster
// while attacking. They are test infrastructure, not part of the protocol
// surface; integration tests assert that honest replicas preserve safety
// and liveness against them.
package byzantine

import (
	"time"

	"banyan/internal/crypto"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// EquivocatingLeader runs the wrapped engine faithfully except when it
// proposes: each proposal is split into two conflicting blocks — the
// original to one half of the cluster, a forged twin (same parent, other
// payload) to the other half — with matching equivocated fast votes. This
// is the "Byzantine leader proposes conflicting blocks" scenario of the
// paper's Remark 7.3 and Lemma 8.1.
type EquivocatingLeader struct {
	inner  protocol.Engine
	signer *crypto.Signer
	n      int
}

var _ protocol.Engine = (*EquivocatingLeader)(nil)

// NewEquivocatingLeader wraps an engine (the adversary's own replica) with
// its signer; n is the cluster size.
func NewEquivocatingLeader(inner protocol.Engine, signer *crypto.Signer, n int) *EquivocatingLeader {
	return &EquivocatingLeader{inner: inner, signer: signer, n: n}
}

// ID implements protocol.Engine.
func (e *EquivocatingLeader) ID() types.ReplicaID { return e.inner.ID() }

// Protocol implements protocol.Engine.
func (e *EquivocatingLeader) Protocol() string { return e.inner.Protocol() + "-equivocator" }

// Metrics implements protocol.Engine.
func (e *EquivocatingLeader) Metrics() map[string]int64 { return e.inner.Metrics() }

// Start implements protocol.Engine.
func (e *EquivocatingLeader) Start(now time.Time) []protocol.Action {
	return e.rewrite(e.inner.Start(now))
}

// HandleMessage implements protocol.Engine.
func (e *EquivocatingLeader) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	return e.rewrite(e.inner.HandleMessage(from, msg, now))
}

// HandleTimer implements protocol.Engine.
func (e *EquivocatingLeader) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	return e.rewrite(e.inner.HandleTimer(id, now))
}

// rewrite splits own-proposal broadcasts into conflicting per-recipient
// sends and passes everything else through.
func (e *EquivocatingLeader) rewrite(acts []protocol.Action) []protocol.Action {
	out := make([]protocol.Action, 0, len(acts))
	for _, a := range acts {
		bc, ok := a.(protocol.Broadcast)
		if !ok {
			out = append(out, a)
			continue
		}
		prop, ok := bc.Msg.(*types.Proposal)
		if !ok || prop.Relayed || prop.Block == nil || prop.Block.Proposer != e.ID() {
			out = append(out, a)
			continue
		}
		out = append(out, e.split(prop)...)
	}
	return out
}

func (e *EquivocatingLeader) split(prop *types.Proposal) []protocol.Action {
	b := prop.Block
	// Forge the twin: identical header except the payload.
	twinPayload := types.SyntheticPayload(b.Payload.Size()+1, uint64(b.Round)^0xEC0EC0)
	twin := types.NewBlock(b.Round, b.Proposer, b.Rank, b.Parent, twinPayload)
	if err := e.signer.SignBlock(twin); err != nil {
		// Cannot forge (should not happen); fall back to honest behaviour.
		return []protocol.Action{protocol.Broadcast{Msg: prop}}
	}
	twinProp := &types.Proposal{
		Block:              twin,
		ParentNotarization: prop.ParentNotarization,
		ParentUnlock:       prop.ParentUnlock,
	}
	if prop.FastVote != nil {
		fv := e.signer.SignVote(types.VoteFast, twin.Round, twin.ID())
		twinProp.FastVote = &fv
	}
	// Equivocated votes for the twin, so each half believes its block has
	// the leader's support.
	twinVotes := &types.VoteMsg{Votes: []types.Vote{
		e.signer.SignVote(types.VoteNotarize, twin.Round, twin.ID()),
	}}

	var acts []protocol.Action
	for i := 0; i < e.n; i++ {
		id := types.ReplicaID(i)
		if id == e.ID() {
			continue
		}
		if i%2 == 0 {
			acts = append(acts, protocol.Send{To: id, Msg: prop})
		} else {
			acts = append(acts,
				protocol.Send{To: id, Msg: twinProp},
				protocol.Send{To: id, Msg: twinVotes},
			)
		}
	}
	return acts
}

// OptimisticEquivocator attacks the optimistic proposal pipeline: every
// own proposal — including the credential-less optimistic body broadcast
// — is split into conflicting twins sent to different cluster halves,
// and every own vote for a split block is equivocated to match (each
// half sees the leader fast-voting "its" twin). An honest cluster must
// never fast-commit either twin: the fast quorum n-p forces any two
// commit quorums to share an honest replica, and honest replicas vote
// for at most one rank-0 block per round.
type OptimisticEquivocator struct {
	inner  protocol.Engine
	signer *crypto.Signer
	n      int
	twins  map[types.BlockID]*types.Block // original block ID → forged twin
}

var _ protocol.Engine = (*OptimisticEquivocator)(nil)

// NewOptimisticEquivocator wraps an engine (the adversary's own replica)
// with its signer; n is the cluster size.
func NewOptimisticEquivocator(inner protocol.Engine, signer *crypto.Signer, n int) *OptimisticEquivocator {
	return &OptimisticEquivocator{inner: inner, signer: signer, n: n, twins: make(map[types.BlockID]*types.Block)}
}

// ID implements protocol.Engine.
func (e *OptimisticEquivocator) ID() types.ReplicaID { return e.inner.ID() }

// Protocol implements protocol.Engine.
func (e *OptimisticEquivocator) Protocol() string { return e.inner.Protocol() + "-opt-equivocator" }

// Metrics implements protocol.Engine.
func (e *OptimisticEquivocator) Metrics() map[string]int64 { return e.inner.Metrics() }

// Pairs returns the equivocated (original, twin) block-ID pairs produced
// so far, keyed by the original's ID. Tests use it to assert at most one
// of each pair ever commits.
func (e *OptimisticEquivocator) Pairs() map[types.BlockID]types.BlockID {
	out := make(map[types.BlockID]types.BlockID, len(e.twins))
	for orig, twin := range e.twins {
		out[orig] = twin.ID()
	}
	return out
}

// Start implements protocol.Engine.
func (e *OptimisticEquivocator) Start(now time.Time) []protocol.Action {
	return e.rewrite(e.inner.Start(now))
}

// HandleMessage implements protocol.Engine.
func (e *OptimisticEquivocator) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	return e.rewrite(e.inner.HandleMessage(from, msg, now))
}

// HandleTimer implements protocol.Engine.
func (e *OptimisticEquivocator) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	return e.rewrite(e.inner.HandleTimer(id, now))
}

func (e *OptimisticEquivocator) rewrite(acts []protocol.Action) []protocol.Action {
	out := make([]protocol.Action, 0, len(acts))
	for _, a := range acts {
		bc, ok := a.(protocol.Broadcast)
		if !ok {
			out = append(out, a)
			continue
		}
		switch m := bc.Msg.(type) {
		case *types.Proposal:
			if m.Relayed || m.Block == nil || m.Block.Proposer != e.ID() {
				out = append(out, a)
				continue
			}
			out = append(out, e.splitProposal(m)...)
		case *types.VoteMsg:
			out = append(out, e.splitVotes(m)...)
		default:
			out = append(out, a)
		}
	}
	return out
}

// splitProposal forges a twin of an own proposal and sends the original
// to the even half, the twin to the odd half. A bare (optimistic)
// original yields a bare twin — the confirmation votes are equivocated
// later by splitVotes.
func (e *OptimisticEquivocator) splitProposal(prop *types.Proposal) []protocol.Action {
	b := prop.Block
	twin, ok := e.twins[b.ID()]
	if !ok {
		twinPayload := types.SyntheticPayload(b.Payload.Size()+1, uint64(b.Round)^0xEC0EC0)
		twin = types.NewBlock(b.Round, b.Proposer, b.Rank, b.Parent, twinPayload)
		if err := e.signer.SignBlock(twin); err != nil {
			return []protocol.Action{protocol.Broadcast{Msg: prop}}
		}
		e.twins[b.ID()] = twin
	}
	twinProp := &types.Proposal{
		Block:              twin,
		ParentNotarization: prop.ParentNotarization,
		ParentUnlock:       prop.ParentUnlock,
	}
	if prop.FastVote != nil {
		fv := e.signer.SignVote(types.VoteFast, twin.Round, twin.ID())
		twinProp.FastVote = &fv
	}
	var acts []protocol.Action
	for i := 0; i < e.n; i++ {
		id := types.ReplicaID(i)
		if id == e.ID() {
			continue
		}
		if i%2 == 0 {
			acts = append(acts, protocol.Send{To: id, Msg: prop})
		} else {
			acts = append(acts, protocol.Send{To: id, Msg: twinProp})
		}
	}
	return acts
}

// splitVotes rewrites an own vote message: votes for a split block go
// out twice — the original to the even half, a re-signed vote for the
// twin to the odd half — so each half sees a consistent leader. This is
// what turns the optimistic confirmation fast vote into equivocation.
func (e *OptimisticEquivocator) splitVotes(vm *types.VoteMsg) []protocol.Action {
	split := false
	for _, v := range vm.Votes {
		if _, ok := e.twins[v.Block]; ok && v.Voter == e.ID() {
			split = true
			break
		}
	}
	if !split {
		return []protocol.Action{protocol.Broadcast{Msg: vm}}
	}
	odd := make([]types.Vote, 0, len(vm.Votes))
	for _, v := range vm.Votes {
		if twin, ok := e.twins[v.Block]; ok && v.Voter == e.ID() {
			odd = append(odd, e.signer.SignVote(v.Kind, v.Round, twin.ID()))
		} else {
			odd = append(odd, v)
		}
	}
	evenMsg, oddMsg := vm, &types.VoteMsg{Votes: odd}
	var acts []protocol.Action
	for i := 0; i < e.n; i++ {
		id := types.ReplicaID(i)
		if id == e.ID() {
			continue
		}
		if i%2 == 0 {
			acts = append(acts, protocol.Send{To: id, Msg: evenMsg})
		} else {
			acts = append(acts, protocol.Send{To: id, Msg: oddMsg})
		}
	}
	return acts
}

// StaleParentLeader attacks the parent-extension rule the optimistic
// path leans on: whenever it leads, it re-targets its rank-0 proposal at
// the *grandparent* — a finalized-but-superseded extension point — and
// re-signs its credentials for the forged block. Honest replicas must
// refuse to vote for it (a rank-0 block must extend the previous round's
// tip), costing the adversary its round but never safety.
type StaleParentLeader struct {
	inner  protocol.Engine
	signer *crypto.Signer
	seen   map[types.BlockID]*types.Block // every block observed, for ancestry lookups
	forged map[types.BlockID]*types.Block // original block ID → stale-parent forgery
}

var _ protocol.Engine = (*StaleParentLeader)(nil)

// NewStaleParentLeader wraps an engine (the adversary's own replica)
// with its signer.
func NewStaleParentLeader(inner protocol.Engine, signer *crypto.Signer) *StaleParentLeader {
	return &StaleParentLeader{
		inner:  inner,
		signer: signer,
		seen:   make(map[types.BlockID]*types.Block),
		forged: make(map[types.BlockID]*types.Block),
	}
}

// ID implements protocol.Engine.
func (s *StaleParentLeader) ID() types.ReplicaID { return s.inner.ID() }

// Protocol implements protocol.Engine.
func (s *StaleParentLeader) Protocol() string { return s.inner.Protocol() + "-stale-parent" }

// Metrics implements protocol.Engine.
func (s *StaleParentLeader) Metrics() map[string]int64 { return s.inner.Metrics() }

// ForgedIDs returns the stale-parent blocks broadcast so far. Tests use
// it to assert none ever commits.
func (s *StaleParentLeader) ForgedIDs() []types.BlockID {
	out := make([]types.BlockID, 0, len(s.forged))
	for _, b := range s.forged {
		out = append(out, b.ID())
	}
	return out
}

// Start implements protocol.Engine.
func (s *StaleParentLeader) Start(now time.Time) []protocol.Action {
	return s.rewrite(s.inner.Start(now))
}

// HandleMessage implements protocol.Engine.
func (s *StaleParentLeader) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	if p, ok := msg.(*types.Proposal); ok && p.Block != nil {
		s.seen[p.Block.ID()] = p.Block
	}
	return s.rewrite(s.inner.HandleMessage(from, msg, now))
}

// HandleTimer implements protocol.Engine.
func (s *StaleParentLeader) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	return s.rewrite(s.inner.HandleTimer(id, now))
}

func (s *StaleParentLeader) rewrite(acts []protocol.Action) []protocol.Action {
	out := make([]protocol.Action, 0, len(acts))
	for _, a := range acts {
		bc, ok := a.(protocol.Broadcast)
		if !ok {
			out = append(out, a)
			continue
		}
		switch m := bc.Msg.(type) {
		case *types.Proposal:
			if m.Block != nil {
				s.seen[m.Block.ID()] = m.Block
			}
			if m.Relayed || m.Block == nil || m.Block.Proposer != s.ID() || m.Block.Rank != 0 {
				out = append(out, a)
				continue
			}
			out = append(out, s.retarget(m))
		case *types.VoteMsg:
			out = append(out, protocol.Broadcast{Msg: s.resign(m)})
		default:
			out = append(out, a)
		}
	}
	return out
}

// retarget rebuilds an own rank-0 proposal on the grandparent. If the
// parent's ancestry is unknown (round 1, or the parent arrived bare and
// was pruned) the proposal passes through honestly.
func (s *StaleParentLeader) retarget(prop *types.Proposal) protocol.Action {
	b := prop.Block
	parent, ok := s.seen[b.Parent]
	if !ok || parent.Round < 1 {
		return protocol.Broadcast{Msg: prop}
	}
	forged, done := s.forged[b.ID()]
	if !done {
		forged = types.NewBlock(b.Round, b.Proposer, 0, parent.Parent, b.Payload)
		if err := s.signer.SignBlock(forged); err != nil {
			return protocol.Broadcast{Msg: prop}
		}
		s.forged[b.ID()] = forged
	}
	fp := &types.Proposal{
		Block:              forged,
		ParentNotarization: prop.ParentNotarization,
		ParentUnlock:       prop.ParentUnlock,
	}
	if prop.FastVote != nil {
		fv := s.signer.SignVote(types.VoteFast, forged.Round, forged.ID())
		fp.FastVote = &fv
	}
	return protocol.Broadcast{Msg: fp}
}

// resign redirects own votes for a retargeted block to the forgery, so
// the stale proposal arrives with the proposer's fast vote attached —
// honest replicas must reject it on the extension rule alone, not
// because its credentials are missing.
func (s *StaleParentLeader) resign(vm *types.VoteMsg) *types.VoteMsg {
	changed := false
	votes := make([]types.Vote, len(vm.Votes))
	for i, v := range vm.Votes {
		if forged, ok := s.forged[v.Block]; ok && v.Voter == s.ID() {
			votes[i] = s.signer.SignVote(v.Kind, v.Round, forged.ID())
			changed = true
		} else {
			votes[i] = v
		}
	}
	if !changed {
		return vm
	}
	return &types.VoteMsg{Votes: votes}
}

// BatchWithholder attacks the dissemination layer's availability
// assumption: it runs consensus faithfully but serves its batch bodies to
// only a chosen subset of peers — just enough acks to get its batches
// referenced from its proposals — and refuses every fetch (BatchRequest)
// afterwards. Replicas outside the subset see digests they cannot resolve
// locally and an origin that never answers. Honest clusters must be
// unaffected on the vote path (headers commit digests; voting never waits
// for bodies) and recover delivery through fetch-on-miss rotation: the
// origin costs one timeout, then the request lands on an acked holder.
type BatchWithholder struct {
	inner protocol.Engine
	serve map[types.ReplicaID]bool

	withheld int64 // announce copies suppressed
	refused  int64 // fetch responses dropped
}

var _ protocol.Engine = (*BatchWithholder)(nil)

// NewBatchWithholder wraps an engine; serve lists the peers that still
// receive its batch bodies (size it to the ack quorum: the minimum that
// keeps the adversary's batches proposable).
func NewBatchWithholder(inner protocol.Engine, serve []types.ReplicaID) *BatchWithholder {
	m := make(map[types.ReplicaID]bool, len(serve))
	for _, id := range serve {
		m[id] = true
	}
	return &BatchWithholder{inner: inner, serve: m}
}

// ID implements protocol.Engine.
func (w *BatchWithholder) ID() types.ReplicaID { return w.inner.ID() }

// Protocol implements protocol.Engine.
func (w *BatchWithholder) Protocol() string { return w.inner.Protocol() + "-batch-withholder" }

// Metrics implements protocol.Engine.
func (w *BatchWithholder) Metrics() map[string]int64 { return w.inner.Metrics() }

// Withheld returns how many body announce copies were suppressed.
func (w *BatchWithholder) Withheld() int64 { return w.withheld }

// Refused returns how many fetch responses were dropped.
func (w *BatchWithholder) Refused() int64 { return w.refused }

// Start implements protocol.Engine.
func (w *BatchWithholder) Start(now time.Time) []protocol.Action {
	return w.rewrite(w.inner.Start(now))
}

// HandleMessage implements protocol.Engine.
func (w *BatchWithholder) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	return w.rewrite(w.inner.HandleMessage(from, msg, now))
}

// HandleTimer implements protocol.Engine.
func (w *BatchWithholder) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	return w.rewrite(w.inner.HandleTimer(id, now))
}

// rewrite narrows own body broadcasts to the served subset and swallows
// fetch responses; acks for other replicas' batches and every consensus
// message pass through untouched.
func (w *BatchWithholder) rewrite(acts []protocol.Action) []protocol.Action {
	out := make([]protocol.Action, 0, len(acts))
	for _, a := range acts {
		switch act := a.(type) {
		case protocol.Broadcast:
			ann, ok := act.Msg.(*types.BatchAnnounce)
			if !ok || ann.IsAck() {
				out = append(out, a)
				continue
			}
			for id := range w.serve {
				if id == w.ID() {
					continue
				}
				out = append(out, protocol.Send{To: id, Msg: ann})
			}
			w.withheld++
		case protocol.Send:
			if _, ok := act.Msg.(*types.BatchResponse); ok {
				w.refused++
				continue
			}
			out = append(out, a)
		default:
			out = append(out, a)
		}
	}
	return out
}

// Silent is a crash-like adversary: it participates normally until
// SilenceAfter, then emits nothing (but keeps consuming messages, unlike a
// crash — a "mute" fault).
type Silent struct {
	inner protocol.Engine
	// SilenceAfter is the time from which the replica stops emitting.
	SilenceAfter time.Time
}

var _ protocol.Engine = (*Silent)(nil)

// NewSilent wraps an engine to go mute at the given time.
func NewSilent(inner protocol.Engine, after time.Time) *Silent {
	return &Silent{inner: inner, SilenceAfter: after}
}

// ID implements protocol.Engine.
func (s *Silent) ID() types.ReplicaID { return s.inner.ID() }

// Protocol implements protocol.Engine.
func (s *Silent) Protocol() string { return s.inner.Protocol() + "-mute" }

// Metrics implements protocol.Engine.
func (s *Silent) Metrics() map[string]int64 { return s.inner.Metrics() }

// Start implements protocol.Engine.
func (s *Silent) Start(now time.Time) []protocol.Action {
	return s.filter(s.inner.Start(now), now)
}

// HandleMessage implements protocol.Engine.
func (s *Silent) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	return s.filter(s.inner.HandleMessage(from, msg, now), now)
}

// HandleTimer implements protocol.Engine.
func (s *Silent) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	return s.filter(s.inner.HandleTimer(id, now), now)
}

func (s *Silent) filter(acts []protocol.Action, now time.Time) []protocol.Action {
	if now.Before(s.SilenceAfter) {
		return acts
	}
	// Keep timers (internal), drop all network output.
	out := acts[:0]
	for _, a := range acts {
		switch a.(type) {
		case protocol.Broadcast, protocol.Send:
			// dropped
		default:
			out = append(out, a)
		}
	}
	return out
}

// VoteWithholder participates normally but never sends fast or
// finalization votes — the "unresponsive" replica of the fast-path model:
// with more than p of these, FP-finalization must never fire while the
// slow path still commits.
type VoteWithholder struct {
	inner protocol.Engine
}

var _ protocol.Engine = (*VoteWithholder)(nil)

// NewVoteWithholder wraps an engine to suppress its fast and finalization
// votes.
func NewVoteWithholder(inner protocol.Engine) *VoteWithholder {
	return &VoteWithholder{inner: inner}
}

// ID implements protocol.Engine.
func (w *VoteWithholder) ID() types.ReplicaID { return w.inner.ID() }

// Protocol implements protocol.Engine.
func (w *VoteWithholder) Protocol() string { return w.inner.Protocol() + "-withholder" }

// Metrics implements protocol.Engine.
func (w *VoteWithholder) Metrics() map[string]int64 { return w.inner.Metrics() }

// Start implements protocol.Engine.
func (w *VoteWithholder) Start(now time.Time) []protocol.Action {
	return w.strip(w.inner.Start(now))
}

// HandleMessage implements protocol.Engine.
func (w *VoteWithholder) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	return w.strip(w.inner.HandleMessage(from, msg, now))
}

// HandleTimer implements protocol.Engine.
func (w *VoteWithholder) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	return w.strip(w.inner.HandleTimer(id, now))
}

func (w *VoteWithholder) strip(acts []protocol.Action) []protocol.Action {
	out := make([]protocol.Action, 0, len(acts))
	for _, a := range acts {
		bc, ok := a.(protocol.Broadcast)
		if !ok {
			out = append(out, a)
			continue
		}
		vm, ok := bc.Msg.(*types.VoteMsg)
		if !ok {
			// Strip fast votes riding on own proposals too. The copy is
			// rebuilt field by field rather than by struct assignment so it
			// cannot inherit the original's memoized wire encoding (which
			// would still contain the fast vote being stripped).
			if p, isProp := bc.Msg.(*types.Proposal); isProp && p.FastVote != nil {
				cp := &types.Proposal{
					Block:              p.Block,
					ParentNotarization: p.ParentNotarization,
					ParentUnlock:       p.ParentUnlock,
					Relayed:            p.Relayed,
				}
				out = append(out, protocol.Broadcast{Msg: cp})
				continue
			}
			out = append(out, a)
			continue
		}
		var kept []types.Vote
		for _, v := range vm.Votes {
			if v.Kind == types.VoteNotarize {
				kept = append(kept, v)
			}
		}
		if len(kept) > 0 {
			out = append(out, protocol.Broadcast{Msg: &types.VoteMsg{Votes: kept}})
		}
	}
	return out
}

// EpochStraddler models a removed validator that refuses to accept its
// eviction. It runs the wrapped engine faithfully until it observes a
// finalized ConfigChange removing itself; from the change's activation
// round on it keeps broadcasting notarization and fast votes — signed
// with the key it still legitimately holds in the global registry — for
// every proposal it receives. The signatures verify; what must stop them
// is membership: honest replicas discard votes from non-members of the
// voting round's epoch, and epoch-pinned certificate verification
// (crypto.VerifyCertIn) rejects any certificate counting them. Tests
// assert both, plus that the cluster keeps finalizing without the
// straddler's weight.
type EpochStraddler struct {
	inner  protocol.Engine
	signer *crypto.Signer

	activation types.Round // first round self is no longer a member; 0 = still one
	forged     int64
}

var _ protocol.Engine = (*EpochStraddler)(nil)

// NewEpochStraddler wraps the adversary's own engine with its signer.
func NewEpochStraddler(inner protocol.Engine, signer *crypto.Signer) *EpochStraddler {
	return &EpochStraddler{inner: inner, signer: signer}
}

// ID implements protocol.Engine.
func (e *EpochStraddler) ID() types.ReplicaID { return e.inner.ID() }

// Protocol implements protocol.Engine.
func (e *EpochStraddler) Protocol() string { return e.inner.Protocol() + "-epoch-straddler" }

// Metrics implements protocol.Engine.
func (e *EpochStraddler) Metrics() map[string]int64 { return e.inner.Metrics() }

// Start implements protocol.Engine.
func (e *EpochStraddler) Start(now time.Time) []protocol.Action {
	return e.observe(e.inner.Start(now))
}

// HandleMessage implements protocol.Engine: faithful processing, plus —
// once removed — a forged vote pair for every proposal at or past the
// activation round.
func (e *EpochStraddler) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	acts := e.observe(e.inner.HandleMessage(from, msg, now))
	prop, ok := msg.(*types.Proposal)
	if !ok || prop.Block == nil || e.activation == 0 || prop.Block.Round < e.activation {
		return acts
	}
	b := prop.Block
	votes := &types.VoteMsg{Votes: []types.Vote{
		e.signer.SignVote(types.VoteNotarize, b.Round, b.ID()),
		e.signer.SignVote(types.VoteFast, b.Round, b.ID()),
	}}
	e.forged += 2
	return append(acts, protocol.Broadcast{Msg: votes})
}

// HandleTimer implements protocol.Engine.
func (e *EpochStraddler) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	return e.observe(e.inner.HandleTimer(id, now))
}

// observe watches the inner engine's commits for the finalized
// ConfigChange that evicts self and records its activation round.
func (e *EpochStraddler) observe(acts []protocol.Action) []protocol.Action {
	if e.activation > 0 {
		return acts
	}
	for _, a := range acts {
		c, ok := a.(protocol.Commit)
		if !ok {
			continue
		}
		for _, b := range c.Blocks {
			ch := b.Payload.Change
			if ch != nil && ch.Op == types.ConfigRemove && ch.Replica == e.ID() {
				e.activation = b.Round + 1
			}
		}
	}
	return acts
}

// ForgedVotes counts the stale-epoch votes broadcast after removal.
func (e *EpochStraddler) ForgedVotes() int64 { return e.forged }

// RemovedAt returns the activation round of the eviction the straddler
// observed (0 until then).
func (e *EpochStraddler) RemovedAt() types.Round { return e.activation }
