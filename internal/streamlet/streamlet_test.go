package streamlet

import (
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/crypto"
	"banyan/internal/protocol"
	"banyan/internal/simnet"
	"banyan/internal/types"
	"banyan/internal/wan"
)

func cluster(t *testing.T, n int, epoch time.Duration) []protocol.Engine {
	t.Helper()
	params := types.Params{N: n, F: (n - 1) / 3}
	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), n, 5)
	bc, err := beacon.NewRoundRobin(n)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]protocol.Engine, n)
	for i := 0; i < n; i++ {
		eng, err := New(Config{
			Params:        params,
			Self:          types.ReplicaID(i),
			Keyring:       keyring,
			Signer:        signers[i],
			Beacon:        bc,
			EpochDuration: epoch,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	return engines
}

// TestThreeConsecutiveEpochsFinalize: on a synchronous network, the chain
// grows one block per epoch and finality lags the tip by one epoch (the
// middle of each consecutive triple commits).
func TestThreeConsecutiveEpochsFinalize(t *testing.T) {
	engines := cluster(t, 4, 100*time.Millisecond)
	var commits []protocol.Commit
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(4, 10*time.Millisecond),
	}, simnet.Hooks{
		OnCommit: func(node types.ReplicaID, _ time.Time, c protocol.Commit) {
			if node == 0 {
				commits = append(commits, c)
			}
		},
		OnFault: func(node types.ReplicaID, _ time.Time, err error) {
			t.Errorf("fault at %d: %v", node, err)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(3 * time.Second)
	// ~30 epochs; finality lags by roughly 2, so expect >= 20 commits.
	total := 0
	var lastEpoch types.Round
	for _, c := range commits {
		for _, b := range c.Blocks {
			total++
			if b.Round <= lastEpoch {
				t.Fatalf("commit order violated: epoch %d after %d", b.Round, lastEpoch)
			}
			lastEpoch = b.Round
		}
	}
	if total < 20 {
		t.Fatalf("committed %d blocks in 3s, want >= 20", total)
	}
}

// TestCrashedLeaderSkipsEpoch: with one replica crashed, its epochs
// produce no block but the chain continues across the gap.
func TestCrashedLeaderSkipsEpoch(t *testing.T) {
	engines := cluster(t, 4, 100*time.Millisecond)
	committed := make(map[types.Round]bool)
	net, err := simnet.New(engines, simnet.Options{
		Topology: wan.Uniform(4, 10*time.Millisecond),
	}, simnet.Hooks{
		OnCommit: func(node types.ReplicaID, _ time.Time, c protocol.Commit) {
			if node == 0 {
				for _, b := range c.Blocks {
					committed[b.Round] = true
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.CrashAt(2, 0) // replica 2 leads epochs 2, 6, 10, ...
	net.Run(4 * time.Second)
	if len(committed) < 10 {
		t.Fatalf("committed %d blocks with one crashed replica", len(committed))
	}
	for epoch := range committed {
		if beacon.Leader(mustBeacon(t, 4), epoch) == 2 {
			t.Fatalf("epoch %d led by the crashed replica produced a block", epoch)
		}
	}
}

func mustBeacon(t *testing.T, n int) beacon.Beacon {
	t.Helper()
	b, err := beacon.NewRoundRobin(n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestVoteOnlyForCurrentEpochLeader: proposals from the wrong leader or
// for the wrong epoch get no vote.
func TestVoteOnlyForCurrentEpochLeader(t *testing.T) {
	engines := cluster(t, 4, time.Hour) // frozen in epoch 1
	e := engines[3].(*Engine)
	now := time.Unix(0, 0)
	e.Start(now)
	_, signers := crypto.GenerateCluster(crypto.HMAC(), 4, 5)
	bc := mustBeacon(t, 4)

	// Wrong epoch (2, while the replica is in 1).
	leader2 := beacon.Leader(bc, 2)
	b2 := types.NewBlock(2, leader2, 0, types.Genesis().ID(), types.Payload{})
	if err := signers[leader2].SignBlock(b2); err != nil {
		t.Fatal(err)
	}
	acts := e.HandleMessage(leader2, &types.Proposal{Block: b2}, now)
	if countBroadcastVotes(acts) != 0 {
		t.Fatal("voted for a future epoch's proposal")
	}

	// Correct epoch and leader: one vote, broadcast.
	leader1 := beacon.Leader(bc, 1)
	b1 := types.NewBlock(1, leader1, 0, types.Genesis().ID(), types.Payload{})
	if err := signers[leader1].SignBlock(b1); err != nil {
		t.Fatal(err)
	}
	acts = e.HandleMessage(leader1, &types.Proposal{Block: b1}, now)
	if countBroadcastVotes(acts) != 1 {
		t.Fatal("no vote for the epoch leader's proposal")
	}

	// Second proposal in the same epoch: no second vote.
	b1b := types.NewBlock(1, leader1, 0, types.Genesis().ID(), types.BytesPayload([]byte{9}))
	if err := signers[leader1].SignBlock(b1b); err != nil {
		t.Fatal(err)
	}
	acts = e.HandleMessage(leader1, &types.Proposal{Block: b1b}, now)
	if countBroadcastVotes(acts) != 0 {
		t.Fatal("voted twice in one epoch")
	}
}

func countBroadcastVotes(acts []protocol.Action) int {
	n := 0
	for _, a := range acts {
		if b, ok := a.(protocol.Broadcast); ok {
			if vm, ok := b.Msg.(*types.VoteMsg); ok {
				n += len(vm.Votes)
			}
		}
	}
	return n
}

// TestVoteRequiresLongestChainExtension: a proposal extending a shorter
// notarized chain is not voted for.
func TestVoteRequiresLongestChainExtension(t *testing.T) {
	engines := cluster(t, 4, time.Hour)
	e := engines[3].(*Engine)
	now := time.Unix(0, 0)
	e.Start(now)
	_, signers := crypto.GenerateCluster(crypto.HMAC(), 4, 5)
	bc := mustBeacon(t, 4)
	leader1 := beacon.Leader(bc, 1)

	// Build a notarized chain of length 1 locally: block b0 at epoch 1
	// gets 3 votes.
	b0 := types.NewBlock(1, leader1, 0, types.Genesis().ID(), types.BytesPayload([]byte{1}))
	if err := signers[leader1].SignBlock(b0); err != nil {
		t.Fatal(err)
	}
	e.HandleMessage(leader1, &types.Proposal{Block: b0}, now)
	for _, peer := range []types.ReplicaID{0, 1} {
		v := signers[peer].SignVote(types.VoteNotarize, 1, b0.ID())
		e.HandleMessage(peer, &types.VoteMsg{Votes: []types.Vote{v}}, now)
	}
	if !e.tree.IsNotarized(b0.ID()) {
		t.Fatal("b0 not notarized")
	}

	// Force epoch 2 via the timer, then feed a proposal extending GENESIS
	// (shorter than the notarized chain through b0): no vote.
	acts := e.HandleTimer(protocol.TimerID{Round: 2, Kind: protocol.TimerView}, now.Add(time.Minute))
	_ = acts
	leader2 := beacon.Leader(bc, 2)
	short := types.NewBlock(2, leader2, 0, types.Genesis().ID(), types.BytesPayload([]byte{2}))
	if err := signers[leader2].SignBlock(short); err != nil {
		t.Fatal(err)
	}
	acts = e.HandleMessage(leader2, &types.Proposal{Block: short}, now.Add(time.Minute))
	if countBroadcastVotes(acts) != 0 {
		t.Fatal("voted for a proposal extending a non-longest chain")
	}
	// A proposal extending b0 is voted.
	good := types.NewBlock(2, leader2, 0, b0.ID(), types.BytesPayload([]byte{3}))
	if err := signers[leader2].SignBlock(good); err != nil {
		t.Fatal(err)
	}
	acts = e.HandleMessage(leader2, &types.Proposal{Block: good}, now.Add(time.Minute))
	if countBroadcastVotes(acts) != 1 {
		t.Fatal("no vote for the longest-chain extension")
	}
}
