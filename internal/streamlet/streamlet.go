// Package streamlet implements the Streamlet protocol (Chan & Shi, AFT
// 2020), the second baseline shipped with the Bamboo framework.
//
// Time is divided into synchronized epochs of length 2Δ. The epoch's
// leader proposes a block extending a longest notarized chain it has seen;
// every replica broadcasts a vote for the first valid epoch proposal that
// extends one of its longest notarized chains; a block with n−f votes is
// notarized. When three notarized blocks with consecutive epoch numbers
// chain directly, the prefix ending at the middle block is final.
// Epoch-clocked operation makes Streamlet's latency proportional to Δ (the
// pessimistic bound) rather than δ (the actual delay) — the 6Δ row of
// Table 1, and the slowest line of Figure 6.
package streamlet

import (
	"errors"
	"fmt"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/blocktree"
	"banyan/internal/crypto"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Config assembles everything a Streamlet engine instance needs.
type Config struct {
	// Params carries n and f; the vote quorum is n−f.
	Params types.Params
	// Self is this replica's ID.
	Self types.ReplicaID
	// Keyring holds every replica's public key.
	Keyring *crypto.Keyring
	// Signer signs this replica's blocks and votes.
	Signer *crypto.Signer
	// Beacon rotates epoch leaders.
	Beacon beacon.Beacon
	// Payloads supplies block payloads when this replica leads.
	Payloads protocol.PayloadSource
	// EpochDuration is the epoch length (the protocol prescribes 2Δ).
	EpochDuration time.Duration
	// PruneKeep bounds retained epochs below the finalized height.
	PruneKeep types.Round
}

func (c *Config) validate() error {
	if c.Params.N < 3*c.Params.F+1 {
		return fmt.Errorf("streamlet: n = %d below 3f+1 for f = %d", c.Params.N, c.Params.F)
	}
	if c.Keyring == nil || c.Signer == nil {
		return errors.New("streamlet: keyring and signer are required")
	}
	if c.Beacon == nil || c.Beacon.N() != c.Params.N {
		return errors.New("streamlet: beacon must permute exactly n replicas")
	}
	if int(c.Self) >= c.Params.N {
		return fmt.Errorf("streamlet: self id %d out of range (n=%d)", c.Self, c.Params.N)
	}
	if c.EpochDuration <= 0 {
		return errors.New("streamlet: EpochDuration must be positive")
	}
	if c.Payloads == nil {
		c.Payloads = protocol.EmptyPayloads
	}
	if c.PruneKeep == 0 {
		c.PruneKeep = 64
	}
	return nil
}

func (c *Config) quorum() int { return c.Params.N - c.Params.F }

// Engine is the Streamlet state machine for one replica.
type Engine struct {
	cfg  Config
	tree *blocktree.Tree

	start time.Time   // epoch clock origin
	epoch types.Round // current epoch

	votes      map[types.Round]map[types.BlockID]map[types.ReplicaID][]byte
	votedIn    map[types.Round]bool
	proposedIn map[types.Round]bool

	// chainLen memoizes notarized-chain length; -1 while unknown.
	chainLen map[types.BlockID]int
	maxLen   int

	stopped bool
	fault   error

	met struct {
		proposals    int64
		votesSent    int64
		notarized    int64
		blocksCommit int64
		bytesCommit  int64
		rejected     int64
	}
}

var _ protocol.Engine = (*Engine)(nil)

// New builds a Streamlet engine from the configuration.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:        cfg,
		tree:       blocktree.New(),
		votes:      make(map[types.Round]map[types.BlockID]map[types.ReplicaID][]byte),
		votedIn:    make(map[types.Round]bool),
		proposedIn: make(map[types.Round]bool),
		chainLen:   make(map[types.BlockID]int),
	}
	e.chainLen[e.tree.Genesis().ID()] = 0
	return e, nil
}

// ID implements protocol.Engine.
func (e *Engine) ID() types.ReplicaID { return e.cfg.Self }

// Protocol implements protocol.Engine.
func (e *Engine) Protocol() string { return "streamlet" }

// Epoch returns the current epoch (tests/harness).
func (e *Engine) Epoch() types.Round { return e.epoch }

// Tree exposes the block tree (tests/harness).
func (e *Engine) Tree() *blocktree.Tree { return e.tree }

// Start implements protocol.Engine: epoch 1 begins immediately.
func (e *Engine) Start(now time.Time) []protocol.Action {
	e.start = now
	return e.enterEpoch(1, now, nil)
}

// HandleMessage implements protocol.Engine.
func (e *Engine) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	if e.stopped || int(from) >= e.cfg.Params.N {
		return nil
	}
	var acts []protocol.Action
	switch m := msg.(type) {
	case *types.Proposal:
		acts = e.onProposal(m, acts)
	case *types.VoteMsg:
		for _, v := range m.Votes {
			acts = e.onVote(v, acts)
		}
	default:
		e.met.rejected++
	}
	return e.drainFault(acts)
}

// HandleTimer implements protocol.Engine: epoch boundaries.
func (e *Engine) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	if e.stopped || id.Kind != protocol.TimerView {
		return nil
	}
	if id.Round <= e.epoch {
		return nil
	}
	return e.drainFault(e.enterEpoch(id.Round, now, nil))
}

// Metrics implements protocol.Engine.
func (e *Engine) Metrics() map[string]int64 {
	return map[string]int64{
		"proposals":     e.met.proposals,
		"votes_sent":    e.met.votesSent,
		"notarized":     e.met.notarized,
		"blocks_commit": e.met.blocksCommit,
		"bytes_commit":  e.met.bytesCommit,
		"rejected":      e.met.rejected,
		"rounds":        int64(e.epoch),
	}
}

// ---------------------------------------------------------------------------

func (e *Engine) enterEpoch(ep types.Round, now time.Time, acts []protocol.Action) []protocol.Action {
	e.epoch = ep
	// Arm the next boundary.
	acts = append(acts, protocol.SetTimer{
		ID: protocol.TimerID{Round: ep + 1, Kind: protocol.TimerView},
		At: e.start.Add(time.Duration(ep) * e.cfg.EpochDuration),
	})
	e.prune()
	if beacon.Leader(e.cfg.Beacon, ep) != e.cfg.Self || e.proposedIn[ep] {
		return acts
	}
	// Propose extending a longest notarized chain.
	parent := e.longestTip()
	payload := e.cfg.Payloads.NextPayload(ep)
	b := types.NewBlock(ep, e.cfg.Self, 0, parent, payload)
	if err := e.cfg.Signer.SignBlock(b); err != nil {
		e.stop(fmt.Errorf("streamlet: signing own block: %w", err))
		return acts
	}
	e.proposedIn[ep] = true
	e.met.proposals++
	prop := &types.Proposal{Block: b}
	acts = append(acts, protocol.Broadcast{Msg: prop})
	return e.onProposal(prop, acts)
}

// longestTip picks the tip of a longest notarized chain: maximal length,
// ties to the highest epoch then smallest ID.
func (e *Engine) longestTip() types.BlockID {
	best := e.tree.Genesis().ID()
	bestLen, bestEpoch := 0, types.Round(0)
	for id, l := range e.chainLen {
		if l < 0 {
			continue
		}
		b, ok := e.tree.Block(id)
		if !ok {
			continue
		}
		switch {
		case l > bestLen,
			l == bestLen && b.Round > bestEpoch,
			l == bestLen && b.Round == bestEpoch && lessID(id, best):
			best, bestLen, bestEpoch = id, l, b.Round
		}
	}
	return best
}

func lessID(a, b types.BlockID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func (e *Engine) onProposal(m *types.Proposal, acts []protocol.Action) []protocol.Action {
	b := m.Block
	if b == nil || b.Round < 1 || int(b.Proposer) >= e.cfg.Params.N {
		e.met.rejected++
		return acts
	}
	if beacon.Leader(e.cfg.Beacon, b.Round) != b.Proposer || b.Rank != 0 {
		e.met.rejected++
		return acts
	}
	if b.Proposer != e.cfg.Self {
		if err := crypto.VerifyBlock(e.cfg.Keyring, b); err != nil {
			e.met.rejected++
			return acts
		}
	}
	e.tree.Add(b)
	acts = e.tryNotarize(b.Round, b.ID(), acts)

	// Vote only during the block's epoch, once per epoch, and only if the
	// block extends a longest notarized chain in this replica's view.
	if b.Round != e.epoch || e.votedIn[b.Round] {
		return acts
	}
	if pl, ok := e.chainLen[b.Parent]; !ok || pl < 0 || pl < e.maxLen {
		return acts
	}
	e.votedIn[b.Round] = true
	v := e.cfg.Signer.SignVote(types.VoteNotarize, b.Round, b.ID())
	e.met.votesSent++
	acts = append(acts, protocol.Broadcast{Msg: &types.VoteMsg{Votes: []types.Vote{v}}})
	return e.onVote(v, acts)
}

func (e *Engine) onVote(v types.Vote, acts []protocol.Action) []protocol.Action {
	if v.Kind != types.VoteNotarize || v.Round < 1 || int(v.Voter) >= e.cfg.Params.N {
		e.met.rejected++
		return acts
	}
	byBlock, ok := e.votes[v.Round]
	if !ok {
		byBlock = make(map[types.BlockID]map[types.ReplicaID][]byte)
		e.votes[v.Round] = byBlock
	}
	if _, dup := byBlock[v.Block][v.Voter]; dup {
		return acts
	}
	if v.Voter != e.cfg.Self {
		if err := crypto.VerifyVote(e.cfg.Keyring, v); err != nil {
			e.met.rejected++
			return acts
		}
	}
	m, ok := byBlock[v.Block]
	if !ok {
		m = make(map[types.ReplicaID][]byte)
		byBlock[v.Block] = m
	}
	m[v.Voter] = v.Signature
	return e.tryNotarize(v.Round, v.Block, acts)
}

// tryNotarize notarizes a block once it holds n−f votes, updates chain
// lengths and applies the three-consecutive-epochs finality rule.
func (e *Engine) tryNotarize(epoch types.Round, id types.BlockID, acts []protocol.Action) []protocol.Action {
	if e.tree.IsNotarized(id) {
		return e.refreshLengths(acts)
	}
	if len(e.votes[epoch][id]) < e.cfg.quorum() {
		return acts
	}
	if _, ok := e.tree.Block(id); !ok {
		return acts
	}
	e.tree.MarkNotarized(id)
	e.met.notarized++
	if _, ok := e.chainLen[id]; !ok {
		e.chainLen[id] = -1
	}
	return e.refreshLengths(acts)
}

// refreshLengths resolves notarized-chain lengths that were blocked on
// missing ancestors, then checks finality for every resolved block.
func (e *Engine) refreshLengths(acts []protocol.Action) []protocol.Action {
	for changed := true; changed; {
		changed = false
		for id, l := range e.chainLen {
			if l >= 0 {
				continue
			}
			b, ok := e.tree.Block(id)
			if !ok {
				continue
			}
			pl, ok := e.chainLen[b.Parent]
			if !ok || pl < 0 {
				continue
			}
			e.chainLen[id] = pl + 1
			if pl+1 > e.maxLen {
				e.maxLen = pl + 1
			}
			changed = true
			acts = e.checkFinal(b, acts)
		}
	}
	return acts
}

// checkFinal applies Streamlet finality: when notarized b” (epoch x+2)
// directly extends notarized b' (x+1) which extends notarized b (x), the
// chain up to b' is final. b3 here is any newly notarized block; it is
// checked as the head and as the middle of such a triple.
func (e *Engine) checkFinal(b3 *types.Block, acts []protocol.Action) []protocol.Action {
	acts = e.checkTripleHead(b3, acts)
	// b3 may also complete a triple as the middle block if its child is
	// already notarized; scan its epoch successor among notarized blocks.
	for _, id := range e.tree.AtRound(b3.Round + 1) {
		child, ok := e.tree.Block(id)
		if !ok || !e.tree.IsNotarized(id) || child.Parent != b3.ID() {
			continue
		}
		acts = e.checkTripleHead(child, acts)
	}
	return acts
}

func (e *Engine) checkTripleHead(b3 *types.Block, acts []protocol.Action) []protocol.Action {
	if !e.tree.IsNotarized(b3.ID()) {
		return acts
	}
	b2, ok := e.tree.Block(b3.Parent)
	if !ok || !e.tree.IsNotarized(b2.ID()) || b2.Round != b3.Round-1 {
		return acts
	}
	b1, ok := e.tree.Block(b2.Parent)
	if !ok || !e.tree.IsNotarized(b1.ID()) || b1.Round != b2.Round-1 {
		return acts
	}
	if e.tree.IsFinalized(b2.ID()) {
		return acts
	}
	chain, err := e.tree.Finalize(b2.ID())
	switch {
	case err == nil:
		if len(chain) > 0 {
			for _, blk := range chain {
				e.met.blocksCommit++
				e.met.bytesCommit += int64(blk.Payload.Size())
			}
			acts = append(acts, protocol.Commit{Blocks: chain, Explicit: protocol.FinalizeSlow})
		}
	case errors.Is(err, blocktree.ErrMissingAncestor):
		// Retried on the next notarization.
	default:
		e.stop(err)
	}
	return acts
}

func (e *Engine) prune() {
	fin := e.tree.FinalizedRound()
	if fin <= e.cfg.PruneKeep {
		return
	}
	floor := fin - e.cfg.PruneKeep
	for ep := range e.votes {
		if ep < floor {
			delete(e.votes, ep)
		}
	}
	for ep := range e.votedIn {
		if ep < floor {
			delete(e.votedIn, ep)
			delete(e.proposedIn, ep)
		}
	}
	for id := range e.chainLen {
		if b, ok := e.tree.Block(id); !ok || (b.Round < floor && !e.tree.IsFinalized(id)) {
			delete(e.chainLen, id)
		}
	}
	e.tree.Prune(floor)
}

func (e *Engine) drainFault(acts []protocol.Action) []protocol.Action {
	if e.stopped && e.fault != nil {
		acts = append(acts, protocol.SafetyFault{Err: e.fault})
		e.fault = nil
	}
	return acts
}

func (e *Engine) stop(err error) {
	if !e.stopped {
		e.stopped = true
		e.fault = err
	}
}
