// Package harness runs the paper's experiments: it assembles a cluster
// of engines of a chosen protocol, places them on a simulated WAN
// topology, drives a timed workload, injects faults, and collects
// exactly the quantities the evaluation section plots — average proposal
// finalization time measured at the proposer, committed bytes per second
// at a non-faulty replica, latency variance, block intervals, and the
// fast/slow path split (paper section 9.2).
//
// Fault injection covers permanent crashes (Config.Crash, Figure 6d)
// and crash-restarts: with Config.WALDir every simulated replica runs
// behind a write-ahead log (internal/wal), and Config.Restart rebuilds
// a crashed replica from its journal mid-run — the cmd/bench "persist"
// experiment and the crash-restart integration tests drive this path.
//
// Everything is deterministic: identical Config values (including Seed)
// produce identical results, because the simulator runs in virtual time
// and the WAL uses per-record fsync under the harness so the durable
// prefix never depends on wall-clock flush timing.
package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/core"
	"banyan/internal/crypto"
	"banyan/internal/dissem"
	"banyan/internal/hotstuff"
	"banyan/internal/icc"
	"banyan/internal/membership"
	"banyan/internal/mempool"
	"banyan/internal/metrics"
	"banyan/internal/obs"
	"banyan/internal/protocol"
	"banyan/internal/simnet"
	"banyan/internal/streamlet"
	"banyan/internal/types"
	"banyan/internal/wal"
	"banyan/internal/wan"
)

// Protocol selects the consensus engine under test.
type Protocol string

// The four protocols of the paper's evaluation, plus the fast-path-ablated
// Banyan variant.
const (
	Banyan       Protocol = "banyan"
	BanyanNoFast Protocol = "banyan-nofast"
	ICC          Protocol = "icc"
	HotStuff     Protocol = "hotstuff"
	Streamlet    Protocol = "streamlet"
)

// Protocols lists the paper's four evaluated protocols in report order.
func Protocols() []Protocol { return []Protocol{Banyan, ICC, HotStuff, Streamlet} }

// Config describes one experiment run.
type Config struct {
	Protocol Protocol
	// Params carries n, f and (for Banyan) p.
	Params types.Params
	// Topology places the replicas; required.
	Topology *wan.Topology
	// BlockSize is the synthetic payload size in bytes (the paper's load
	// knob, section 9.2).
	BlockSize int
	// Duration is the experiment's virtual running time (paper: 120 s).
	Duration time.Duration
	// Warmup excludes the initial ramp from all statistics.
	Warmup time.Duration
	// Delta is the Δ bound used for proposal/notarization delays. Zero
	// auto-derives it from the topology and block size, mirroring how the
	// paper tunes delays above the undisrupted message delay.
	Delta time.Duration
	// ViewTimeout is HotStuff's pacemaker timeout; zero auto-derives.
	ViewTimeout time.Duration
	// BandwidthBps is each replica's uplink; zero selects 625 MB/s (the
	// 5 Gbit/s burst bandwidth of the paper's t3.large instances).
	BandwidthBps float64
	// ProcRateBps / ProcFixed model receiver-side message processing
	// (deserialization, hashing, signature verification) on the testbed's
	// 2-vCPU hosts; see simnet.Options. Zero selects defaults; negative
	// ProcRateBps disables the model.
	ProcRateBps float64
	ProcFixed   time.Duration
	// JitterFrac adds pseudo-random per-message jitter.
	JitterFrac float64
	// Seed drives all randomness; identical configs with identical seeds
	// produce identical results.
	Seed uint64
	// Crash lists replicas crashed at given times (Figure 6d).
	Crash []CrashSpec
	// Restart lists crash-restarts: at the given time the replica is
	// rebuilt from its write-ahead log and rejoins (crash it first via
	// Crash). Requires WALDir. A spec with DiskLoss wipes the replica's
	// log directory first, so it restarts with no durable state and must
	// recover its chain entirely from peers (snapshot state sync).
	Restart []CrashSpec
	// Join lists replicas held out of the initial start that boot cold at
	// the given time, having observed nothing — the fresh-join scenario.
	Join []CrashSpec
	// MaxN is the number of replica identities provisioned (keys, engines,
	// topology slots); zero means Params.N. Identities in [N, MaxN) are
	// not genesis members: they run as non-voting observers (or join late
	// via Join) until a Reconfig spec admits them. Banyan protocols only.
	MaxN int
	// Reconfig schedules validator-set changes: at the given virtual time
	// the change is handed to every replica's reconfiguration slot, the
	// next leader proposes it, and it activates the round after its block
	// finalizes. Banyan protocols only.
	Reconfig []ReconfigSpec
	// WALDir, when non-empty, runs every replica behind a write-ahead
	// log (one subdirectory per replica) with per-record fsync, so
	// executions stay deterministic and Restart can replay. The WAL is a
	// real-time side effect — it slows wall-clock runs, never changes
	// virtual-time results.
	WALDir string
	// NoForwarding disables tip forwarding in the Banyan/ICC engines (the
	// forwarding ablation; see DESIGN.md section 6).
	NoForwarding bool
	// OptimisticProposals enables Moonshot-style proposal pipelining in the
	// Banyan engines: the next leader broadcasts its block on the expected
	// parent before the round certifies, withdrawing on mismatch (see
	// core.Config.OptimisticProposals). The cmd/bench "pipeline" experiment
	// compares latency and throughput with this on and off.
	OptimisticProposals bool
	// Dissem routes payloads through the batch-dissemination layer
	// (internal/dissem): proposals commit batch digests, bodies travel
	// out-of-band, and delivery of finalized blocks gates on body
	// availability. Banyan protocols only.
	Dissem bool
	// DissemBatchBytes is the dissemination batch cut size (zero: 64 KiB).
	DissemBatchBytes int
	// DissemInlineMax bounds the inline tail a proposal carries alongside
	// its batch refs (zero: everything rides in batches).
	DissemInlineMax int
	// DeepPrune evicts finalized block bodies below the Banyan engines'
	// prune floor, leaving each replica holding only a bounded window of
	// the chain — the shape that forces rejoining replicas through
	// snapshot state sync rather than block-by-block catch-up.
	DeepPrune bool
	// PruneKeep / PruneInterval override the Banyan engines' pruning
	// cadence (zero keeps the engine defaults).
	PruneKeep     types.Round
	PruneInterval types.Round
	// Scheme selects the signature scheme ("hmac" default, "ed25519").
	Scheme string
	// Verify tunes the Banyan engines' signature-verification pipeline
	// (worker-pool size and verified-signature cache capacity). The
	// simulator's virtual clock is independent of real compute, so these
	// knobs change wall-clock speed of a run, never its measured results.
	Verify crypto.VerifyConfig
	// Obs wires an obs.Observer into every Banyan engine, and reports the
	// merged stage-latency breakdown in Result.Stages. Virtual-time stages
	// (commit latency, dissem fetch, delivery wait) are exact; real-time
	// stages (verify, WAL flush) reflect the host the simulation ran on.
	// Observers survive mid-run crash-restarts, so histograms span a
	// replica's lives.
	Obs bool
}

// CrashSpec crashes a replica at a point in virtual time. In a Restart
// spec, DiskLoss wipes the replica's WAL directory before the rebuild.
type CrashSpec struct {
	Replica  types.ReplicaID
	At       time.Duration
	DiskLoss bool
}

// ReconfigSpec schedules one validator-set change at a point in virtual
// time. Op is types.ConfigAdd or types.ConfigRemove; for an add, the
// replica's provisioned key is attached automatically.
type ReconfigSpec struct {
	Replica types.ReplicaID
	At      time.Duration
	Op      types.ConfigOp
}

// Result aggregates one run's measurements.
type Result struct {
	Config Config

	// Latency is the proposal finalization time distribution, measured at
	// each block's proposer, over the post-warmup window. The clock starts
	// when the proposal becomes protocol-active: at its broadcast normally,
	// or — under OptimisticProposals — at the confirming fast vote, since
	// the early credential-less body broadcast is a transport prefetch no
	// replica can vote on (and which may still be withdrawn). Pipelining's
	// overlap win additionally shows up in BlockInterval/ThroughputBps.
	Latency metrics.Summary
	// LatencySamples retains the raw series for variance plots (Fig. 6c).
	LatencySamples []time.Duration

	// ThroughputBps is committed payload bytes per second at the observer
	// (lowest-ID non-crashed replica) over the post-warmup window.
	ThroughputBps float64
	// BlocksCommitted is the observer's committed block count post-warmup.
	BlocksCommitted int64
	// BlockInterval is the observer's mean time between committed blocks.
	BlockInterval time.Duration

	// FastFinal / SlowFinal / IndirectFinal split the observer's explicit
	// finalizations by path.
	FastFinal, SlowFinal, IndirectFinal int64

	// OptimisticProposed / OptimisticConfirmed / OptimisticWithdrawn sum
	// the optimistic-pipelining counters across the cluster (zero unless
	// Config.OptimisticProposals).
	OptimisticProposed, OptimisticConfirmed, OptimisticWithdrawn int64

	// Faults counts safety faults across the cluster (must be zero).
	Faults int
	// RestartReplayed sums the WAL records restarted replicas replayed
	// (zero without Restart specs).
	RestartReplayed int64
	// Messages / MessageBytes count total network traffic.
	Messages, MessageBytes int64
	// MaxProposalWire is the largest leader-proposal wire size observed
	// post-warmup. Under Dissem this stays near-constant as BlockSize grows
	// (proposals carry digests, not bodies) — the decoupling the cmd/bench
	// "dissem" experiment asserts.
	MaxProposalWire int

	// Epoch is the observer's final validator-set epoch and EpochChanges
	// the finalized ConfigChanges it applied (zero without Reconfig).
	Epoch        uint32
	EpochChanges int64
	// EpochActivations lists the activation round of each post-genesis
	// epoch at the observer, ascending.
	EpochActivations []types.Round
	// RoundLatencies pairs each Latency sample with the round of the block
	// it measured, letting experiments localize latency around an epoch
	// boundary (the cmd/bench "reconfig" blip measurement).
	RoundLatencies []RoundLatency
	// Delta echoes the Δ actually used (after auto-derivation).
	Delta time.Duration

	// Stages holds the per-stage latency breakdown, merged across every
	// replica's histograms, keyed by the obs.Hist* names (empty without
	// Config.Obs; stages with no samples are omitted).
	Stages map[string]StageStats
	// SlowRounds counts rounds the observer's slow-round detector flagged
	// (commit latency above k×EWMA; zero without Config.Obs).
	SlowRounds int
}

// StageStats summarizes one stage histogram.
type StageStats struct {
	Count          int64
	Mean, P50, P99 time.Duration
}

// RoundLatency is one proposal-finalization latency sample tagged with
// the round of the block it measured.
type RoundLatency struct {
	Round   types.Round
	Latency time.Duration
}

// AutoDelta derives the Δ bound for a topology and block size: the largest
// one-way delay, inflated for jitter, plus the sender-side transmission
// time of a full block broadcast, plus the receiver-side processing burden
// of a round's relayed block copies, plus a fixed margin. This matches the
// paper's methodology of setting delays "larger than the message delay
// experienced without network disruptions" so exactly one block is
// proposed per round in fault-free runs.
func AutoDelta(topo *wan.Topology, blockSize int, bandwidthBps, procRateBps float64,
	procFixed time.Duration) time.Duration {
	d := topo.MaxOneWay()
	d += d / 4 // jitter headroom
	n := topo.N()
	if bandwidthBps > 0 {
		tx := float64(blockSize) * float64(n-1) / bandwidthBps
		d += time.Duration(tx * float64(time.Second))
	}
	if procRateBps > 0 {
		proc := float64(blockSize) / procRateBps * float64(time.Second)
		d += time.Duration(proc*float64(n-1)) + time.Duration(n-1)*procFixed
	}
	return d + 5*time.Millisecond
}

const (
	defaultBandwidth = 625e6 // 5 Gbit/s in bytes/s
	// defaultProcRate / defaultProcFixed approximate the Bamboo stack's
	// per-message receive cost (gob decode + hashing + signature checks)
	// on a 2-vCPU t3.large.
	defaultProcRate  = 100e6 // bytes/s
	defaultProcFixed = 150 * time.Microsecond
)

func (c *Config) fill() error {
	if c.Topology == nil {
		return fmt.Errorf("harness: topology is required")
	}
	if c.Params.N == 0 {
		return fmt.Errorf("harness: params are required")
	}
	if c.MaxN == 0 {
		c.MaxN = c.Params.N
	}
	if c.MaxN < c.Params.N {
		return fmt.Errorf("harness: MaxN %d below n %d", c.MaxN, c.Params.N)
	}
	if c.MaxN != c.Topology.N() {
		return fmt.Errorf("harness: %d provisioned replicas but topology has %d", c.MaxN, c.Topology.N())
	}
	if (c.MaxN > c.Params.N || len(c.Reconfig) > 0) && c.Protocol != Banyan && c.Protocol != BanyanNoFast {
		return fmt.Errorf("harness: reconfiguration requires a Banyan protocol, got %q", c.Protocol)
	}
	for _, r := range c.Reconfig {
		if !r.Op.Valid() {
			return fmt.Errorf("harness: invalid reconfig op %d", r.Op)
		}
		if int(r.Replica) >= c.MaxN {
			return fmt.Errorf("harness: reconfig names replica %d but only %d are provisioned", r.Replica, c.MaxN)
		}
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.Warmup <= 0 || c.Warmup >= c.Duration {
		c.Warmup = c.Duration / 10
	}
	if c.BandwidthBps == 0 {
		c.BandwidthBps = defaultBandwidth
	}
	if c.ProcRateBps == 0 {
		c.ProcRateBps = defaultProcRate
	} else if c.ProcRateBps < 0 {
		c.ProcRateBps = 0
	}
	if c.ProcFixed == 0 {
		c.ProcFixed = defaultProcFixed
	} else if c.ProcFixed < 0 {
		c.ProcFixed = 0
	}
	if c.Delta == 0 {
		c.Delta = AutoDelta(c.Topology, c.BlockSize, c.BandwidthBps, c.ProcRateBps, c.ProcFixed)
	}
	if c.ViewTimeout == 0 {
		// Generous enough that the happy path never times out.
		c.ViewTimeout = 6 * c.Delta
	}
	if c.Scheme == "" {
		c.Scheme = "hmac"
	}
	if c.Dissem {
		if c.Protocol != Banyan && c.Protocol != BanyanNoFast {
			return fmt.Errorf("harness: Dissem requires a Banyan protocol, got %q", c.Protocol)
		}
		if c.DissemBatchBytes <= 0 {
			c.DissemBatchBytes = 64 << 10
		}
	}
	return nil
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	scheme, err := crypto.SchemeByName(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	keyring, signers := crypto.GenerateCluster(scheme, cfg.MaxN, cfg.Seed)
	bc, err := beacon.NewRoundRobin(cfg.Params.N)
	if err != nil {
		return nil, err
	}

	if len(cfg.Restart) > 0 && cfg.WALDir == "" {
		return nil, fmt.Errorf("harness: Restart requires WALDir")
	}
	// One reconfiguration slot per replica, surviving engine rebuilds so a
	// pending change outlives a crash-restart (Banyan protocols only).
	reconfigs := make([]*membership.Reconfigurator, cfg.MaxN)
	if cfg.Protocol == Banyan || cfg.Protocol == BanyanNoFast {
		for i := range reconfigs {
			reconfigs[i] = &membership.Reconfigurator{}
		}
	}
	// One observer per replica, surviving engine rebuilds like the
	// reconfiguration slots, so stage histograms accumulate across a
	// crash-restart.
	observers := make([]*obs.Observer, cfg.MaxN)
	if cfg.Obs {
		for i := range observers {
			observers[i] = obs.New(obs.Options{})
		}
	}
	// mkEngine builds (or rebuilds, for restarts) one replica's engine;
	// with a WALDir it is wrapped in a recorder over that replica's log.
	mkEngine := func(i types.ReplicaID) (protocol.Engine, error) {
		src := mempool.NewSynthetic(cfg.BlockSize, cfg.Seed^uint64(i)<<32, false)
		// A fresh store per build: a restarted replica loses its body cache
		// (bodies are not journaled) and refetches what delivery needs.
		var store *dissem.Store
		if cfg.Dissem {
			store = dissem.NewStore(dissem.Config{
				Self:       i,
				N:          cfg.Params.N,
				BatchBytes: cfg.DissemBatchBytes,
				InlineMax:  cfg.DissemInlineMax,
				BlockBytes: cfg.BlockSize,
				Source:     src,
			})
		}
		e, err := buildEngine(cfg, i, keyring, signers[i], bc, src, store, reconfigs[i], observers[i])
		if err != nil {
			return nil, err
		}
		if cfg.WALDir == "" {
			return e, nil
		}
		walOpts := wal.Options{
			// Per-record fsync keeps the durable prefix — and therefore the
			// replayed execution — independent of wall-clock flush timing.
			Sync: wal.SyncPolicy{EveryRecord: true},
		}
		if o := observers[i]; o != nil {
			walOpts.FlushHist = o.WALFlush
		}
		return wal.NewRecorder(wal.RecorderConfig{
			Dir:     filepath.Join(cfg.WALDir, fmt.Sprintf("replica-%d", i)),
			Engine:  e,
			Options: walOpts,
		})
	}
	engines := make([]protocol.Engine, cfg.MaxN)
	for i := range engines {
		e, err := mkEngine(types.ReplicaID(i))
		if err != nil {
			return nil, err
		}
		engines[i] = e
	}

	// The observer must be a replica with the full run's history: not
	// crashed, and not a late joiner (whose commit stream starts at its
	// adopted snapshot, mid-run).
	crashedSet := make(map[types.ReplicaID]bool, len(cfg.Crash)+len(cfg.Join))
	for _, c := range cfg.Crash {
		crashedSet[c.Replica] = true
	}
	for _, j := range cfg.Join {
		crashedSet[j.Replica] = true
	}
	observer := types.ReplicaID(0)
	for crashedSet[observer] {
		observer++
	}
	if int(observer) >= cfg.Params.N {
		return nil, fmt.Errorf("harness: all replicas crashed")
	}

	// proposalClock times one own proposal. An optimistic (credential-less
	// rank-0) broadcast records awaitingConfirm: the clock restarts at the
	// proposer's confirming fast vote, the moment the block becomes
	// voteable (see Result.Latency).
	type proposalClock struct {
		at              time.Time
		proposer        types.ReplicaID
		awaitingConfirm bool
	}
	var (
		warmupEnd       = simnet.Epoch.Add(cfg.Warmup)
		proposedAt      = make(map[types.BlockID]proposalClock)
		latency         = metrics.NewSeries()
		throughput      = metrics.NewThroughput(cfg.Duration - cfg.Warmup)
		faultErrors     []error
		maxProposalWire int
		roundLatencies  []RoundLatency
	)
	hooks := simnet.Hooks{
		OnBroadcast: func(node types.ReplicaID, at time.Time, msg types.Message) {
			switch m := msg.(type) {
			case *types.Proposal:
				if m.Relayed || m.Block == nil || m.Block.Proposer != node {
					return
				}
				if !at.Before(warmupEnd) {
					if w := m.WireSize(); w > maxProposalWire {
						maxProposalWire = w
					}
					proposedAt[m.Block.ID()] = proposalClock{
						at:              at,
						proposer:        node,
						awaitingConfirm: m.Block.Rank == 0 && m.FastVote == nil,
					}
				}
			case *types.VoteMsg:
				for _, v := range m.Votes {
					if v.Kind != types.VoteFast || v.Voter != node {
						continue
					}
					if pc, ok := proposedAt[v.Block]; ok && pc.awaitingConfirm && pc.proposer == node {
						proposedAt[v.Block] = proposalClock{at: at, proposer: node}
					}
				}
			}
		},
		OnCommit: func(node types.ReplicaID, at time.Time, c protocol.Commit) {
			for _, b := range c.Blocks {
				if b.Proposer == node {
					if pc, ok := proposedAt[b.ID()]; ok {
						d := at.Sub(pc.at)
						latency.Add(d)
						roundLatencies = append(roundLatencies, RoundLatency{Round: b.Round, Latency: d})
						delete(proposedAt, b.ID())
					}
				}
				if node == observer && !at.Before(warmupEnd) {
					throughput.Observe(b.Payload.Size())
				}
			}
		},
		OnFault: func(node types.ReplicaID, at time.Time, err error) {
			faultErrors = append(faultErrors, fmt.Errorf("replica %d at %s: %w", node, at.Sub(simnet.Epoch), err))
		},
	}

	net, err := simnet.New(engines, simnet.Options{
		Topology:     cfg.Topology,
		BandwidthBps: cfg.BandwidthBps,
		ProcRateBps:  cfg.ProcRateBps,
		ProcFixed:    cfg.ProcFixed,
		JitterFrac:   cfg.JitterFrac,
		Seed:         cfg.Seed,
	}, hooks)
	if err != nil {
		return nil, err
	}
	for _, c := range cfg.Crash {
		net.CrashAt(c.Replica, c.At)
	}
	for _, j := range cfg.Join {
		net.JoinAt(j.Replica, j.At)
	}
	for _, rc := range cfg.Reconfig {
		change := types.ConfigChange{Op: rc.Op, Replica: rc.Replica}
		if rc.Op == types.ConfigAdd {
			change.PubKey = keyring.PublicKey(rc.Replica)
		}
		net.At(rc.At, func(time.Time) {
			// Hand the change to every slot: whichever replica leads first
			// proposes it, re-application is a deterministic no-op, and all
			// slots clear when the finalized change is observed.
			for _, r := range reconfigs {
				if r != nil {
					r.Propose(change)
				}
			}
		})
	}
	for _, r := range cfg.Restart {
		id, diskLoss := r.Replica, r.DiskLoss
		net.RestartAt(id, r.At, func(time.Time) protocol.Engine {
			// Crash the old recorder (dropping any unsynced tail — none
			// under per-record fsync), then recover from its directory.
			if rec, ok := net.Engine(id).(*wal.Recorder); ok {
				rec.Crash()
			}
			if diskLoss {
				// The disk died with the process: the replica comes back
				// with an empty log and must resync its chain from peers.
				if err := os.RemoveAll(filepath.Join(cfg.WALDir, fmt.Sprintf("replica-%d", id))); err != nil {
					faultErrors = append(faultErrors, fmt.Errorf("replica %d disk wipe: %w", id, err))
					return nil
				}
			}
			e, err := mkEngine(id)
			if err != nil {
				// Rebuild can fail on real I/O (wal.Open on a full disk).
				// Returning nil keeps the replica crashed — visible in the
				// results — instead of corrupting the run by re-starting
				// the old engine.
				faultErrors = append(faultErrors, fmt.Errorf("replica %d restart: %w", id, err))
				return nil
			}
			return e
		})
	}
	net.Run(cfg.Duration)

	// Dedup by replica: a replica restarted twice appears in two specs,
	// but its recorder's counter is already cumulative across restarts.
	var restartReplayed int64
	counted := make(map[types.ReplicaID]bool, len(cfg.Restart))
	for _, r := range cfg.Restart {
		if counted[r.Replica] {
			continue
		}
		counted[r.Replica] = true
		if m := net.Engine(r.Replica).Metrics(); m != nil {
			restartReplayed += m["wal_replayed_records"]
		}
	}

	// Optimistic-pipelining counters are per-leader events; sum them
	// cluster-wide so the result reflects every round, not just the
	// observer's turns at rank 0.
	var optProposed, optConfirmed, optWithdrawn int64
	for i := 0; i < len(engines); i++ {
		if m := net.Engine(types.ReplicaID(i)).Metrics(); m != nil {
			optProposed += m["opt_proposed"]
			optConfirmed += m["opt_confirmed"]
			optWithdrawn += m["opt_withdrawn"]
		}
	}

	obsMetrics := net.Engine(observer).Metrics()
	var epoch uint32
	var activations []types.Round
	if h, ok := net.Engine(observer).(interface{ History() *membership.History }); ok {
		if hist := h.History(); hist != nil {
			epoch = hist.Current().Epoch()
			for _, d := range hist.Descs() {
				if d.Epoch > 0 {
					activations = append(activations, d.Activation)
				}
			}
		}
	}
	res := &Result{
		Config:              cfg,
		Latency:             latency.Summarize(),
		LatencySamples:      latency.Samples(),
		ThroughputBps:       throughput.BytesPerSecond(),
		BlocksCommitted:     throughput.Blocks,
		BlockInterval:       throughput.BlockInterval(),
		FastFinal:           obsMetrics["final_fast"],
		SlowFinal:           obsMetrics["final_slow"],
		IndirectFinal:       obsMetrics["final_indirect"],
		OptimisticProposed:  optProposed,
		OptimisticConfirmed: optConfirmed,
		OptimisticWithdrawn: optWithdrawn,
		Faults:              len(faultErrors),
		RestartReplayed:     restartReplayed,
		Messages:            net.Stats().Messages,
		MessageBytes:        net.Stats().Bytes,
		MaxProposalWire:     maxProposalWire,
		Epoch:               epoch,
		EpochChanges:        obsMetrics["epoch_changes"],
		EpochActivations:    activations,
		RoundLatencies:      roundLatencies,
		Delta:               cfg.Delta,
	}
	if cfg.Obs {
		res.Stages = mergeStages(observers)
		if d := observers[observer].Detector; d != nil {
			res.SlowRounds = len(d.Slow())
		}
	}
	if len(faultErrors) > 0 {
		return res, fmt.Errorf("harness: safety faults: %v", faultErrors)
	}
	return res, nil
}

// mergeStages folds every replica's stage histograms into one summary
// per stage name, skipping stages nothing recorded into.
func mergeStages(observers []*obs.Observer) map[string]StageStats {
	merged := map[string]metrics.HistSnapshot{}
	for _, o := range observers {
		if o == nil {
			continue
		}
		for name, h := range o.Registry.Histograms() {
			s := merged[name]
			s.Merge(h)
			merged[name] = s
		}
	}
	out := make(map[string]StageStats, len(merged))
	for name, s := range merged {
		if s.Count == 0 {
			continue
		}
		out[name] = StageStats{
			Count: s.Count,
			Mean:  s.Mean(),
			P50:   s.Quantile(0.50),
			P99:   s.Quantile(0.99),
		}
	}
	return out
}

func buildEngine(cfg Config, id types.ReplicaID, keyring *crypto.Keyring,
	signer *crypto.Signer, bc beacon.Beacon, src protocol.PayloadSource,
	store *dissem.Store, reconfig *membership.Reconfigurator,
	observer *obs.Observer) (protocol.Engine, error) {
	switch cfg.Protocol {
	case Banyan, BanyanNoFast:
		return core.New(core.Config{
			Params:              cfg.Params,
			Self:                id,
			Keyring:             keyring,
			Reconfig:            reconfig,
			Obs:                 observer,
			VerifyOptions:       cfg.Verify,
			Signer:              signer,
			Beacon:              bc,
			Payloads:            src,
			Dissem:              store,
			Delta:               cfg.Delta,
			DisableFastPath:     cfg.Protocol == BanyanNoFast,
			DisableForwarding:   cfg.NoForwarding,
			OptimisticProposals: cfg.OptimisticProposals,
			DeepPrune:           cfg.DeepPrune,
			PruneKeep:           cfg.PruneKeep,
			PruneInterval:       cfg.PruneInterval,
		})
	case ICC:
		return icc.New(icc.Config{
			Params:            cfg.Params,
			Self:              id,
			Keyring:           keyring,
			Signer:            signer,
			Beacon:            bc,
			Payloads:          src,
			Delta:             cfg.Delta,
			DisableForwarding: cfg.NoForwarding,
		})
	case HotStuff:
		return hotstuff.New(hotstuff.Config{
			Params:      cfg.Params,
			Self:        id,
			Keyring:     keyring,
			Signer:      signer,
			Beacon:      bc,
			Payloads:    src,
			ViewTimeout: cfg.ViewTimeout,
		})
	case Streamlet:
		// Streamlet is clocked on the pessimistic synchrony bound Δ rather
		// than actual delays (it is not optimistically responsive), so its
		// epoch gets the protocol-prescribed 2Δ with Δ set to twice the
		// measured bound — the safety margin any real deployment needs for
		// a parameter that, if undershot, halts progress.
		return streamlet.New(streamlet.Config{
			Params:        cfg.Params,
			Self:          id,
			Keyring:       keyring,
			Signer:        signer,
			Beacon:        bc,
			Payloads:      src,
			EpochDuration: 4 * cfg.Delta,
		})
	default:
		return nil, fmt.Errorf("harness: unknown protocol %q", cfg.Protocol)
	}
}

// ParamsFor returns the fault parameters each protocol uses at cluster
// size n: Banyan takes (f, p) per the caller; the baselines use the
// classic f = (n-1)/3 bound with p ignored.
func ParamsFor(proto Protocol, n, f, p int) types.Params {
	switch proto {
	case Banyan, BanyanNoFast:
		return types.Params{N: n, F: f, P: p}
	default:
		return types.Params{N: n, F: (n - 1) / 3, P: 0}
	}
}
