package harness

import (
	"testing"
	"time"

	"banyan/internal/wan"
)

// TestHeadlineShape reproduces the core claim of the evaluation on the
// n=4 four-datacenter topology (Figure 6b): Banyan's fast path finalizes
// proposals faster than ICC, which is faster than HotStuff, with Streamlet
// slowest; and Banyan's finalizations are overwhelmingly fast-path.
func TestHeadlineShape(t *testing.T) {
	topo, err := wan.FourGlobal4()
	if err != nil {
		t.Fatal(err)
	}
	run := func(p Protocol, f, pp int) *Result {
		t.Helper()
		res, err := Run(Config{
			Protocol:  p,
			Params:    ParamsFor(p, 4, f, pp),
			Topology:  topo,
			BlockSize: 1 << 20, // the 1 MB point section 9.3 highlights
			Duration:  60 * time.Second,
			Seed:      7,
		})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		t.Logf("%-10s mean=%s p95=%s tput=%.2f MB/s blocks=%d fast=%d slow=%d",
			p, res.Latency.Mean, res.Latency.P95, res.ThroughputBps/1e6,
			res.BlocksCommitted, res.FastFinal, res.SlowFinal)
		return res
	}

	banyan := run(Banyan, 1, 1)
	iccRes := run(ICC, 1, 0)
	hs := run(HotStuff, 1, 0)
	sl := run(Streamlet, 1, 0)

	if banyan.Latency.Mean >= iccRes.Latency.Mean {
		t.Errorf("Banyan mean latency %v not below ICC %v", banyan.Latency.Mean, iccRes.Latency.Mean)
	}
	if iccRes.Latency.Mean >= hs.Latency.Mean {
		t.Errorf("ICC mean latency %v not below HotStuff %v", iccRes.Latency.Mean, hs.Latency.Mean)
	}
	if hs.Latency.Mean >= sl.Latency.Mean {
		t.Errorf("HotStuff mean latency %v not below Streamlet %v", hs.Latency.Mean, sl.Latency.Mean)
	}
	if banyan.FastFinal < 9*banyan.SlowFinal {
		t.Errorf("fast path underused: fast=%d slow=%d", banyan.FastFinal, banyan.SlowFinal)
	}
	// The paper reports ~30%% improvement over ICC at n=4 (section 9.3):
	// check we are in that regime (at least 20%%).
	improvement := 1 - float64(banyan.Latency.Mean)/float64(iccRes.Latency.Mean)
	if improvement < 0.20 {
		t.Errorf("Banyan improvement over ICC only %.1f%%, expected ~30%%", improvement*100)
	}
}

// TestCrashParityBanyanICC is Figure 6d's claim as an assertion: under
// crash faults Banyan behaves exactly like ICC (no penalty for trying the
// fast path).
func TestCrashParityBanyanICC(t *testing.T) {
	topo, err := wan.FourUS19()
	if err != nil {
		t.Fatal(err)
	}
	run := func(p Protocol) *Result {
		t.Helper()
		res, err := Run(Config{
			Protocol:  p,
			Params:    ParamsFor(p, 19, 6, 1),
			Topology:  topo,
			BlockSize: 100 << 10,
			Duration:  30 * time.Second,
			Delta:     1500 * time.Millisecond, // the paper's 3s timeout
			Seed:      4,
			Crash:     []CrashSpec{{Replica: 0}, {Replica: 5}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	b, i := run(Banyan), run(ICC)
	if b.FastFinal != 0 {
		t.Errorf("fast path fired %d times under crashes that break the fast quorum", b.FastFinal)
	}
	// Same block production cadence.
	if b.BlocksCommitted != i.BlocksCommitted {
		t.Errorf("blocks: banyan %d vs icc %d", b.BlocksCommitted, i.BlocksCommitted)
	}
	// Latency within 3% of each other.
	ratio := float64(b.Latency.Mean) / float64(i.Latency.Mean)
	if ratio < 0.97 || ratio > 1.03 {
		t.Errorf("crash-fault latency parity broken: banyan %v vs icc %v (ratio %.3f)",
			b.Latency.Mean, i.Latency.Mean, ratio)
	}
}

// TestVarianceClaim is Figure 6c's claim as an assertion: the fast path
// does not increase latency variance.
func TestVarianceClaim(t *testing.T) {
	topo, err := wan.FourGlobal4()
	if err != nil {
		t.Fatal(err)
	}
	run := func(p Protocol) *Result {
		t.Helper()
		res, err := Run(Config{
			Protocol:   p,
			Params:     ParamsFor(p, 4, 1, 1),
			Topology:   topo,
			BlockSize:  1 << 20,
			Duration:   45 * time.Second,
			Seed:       6,
			JitterFrac: 0.08,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	b, i := run(Banyan), run(ICC)
	if b.Latency.StdDev > i.Latency.StdDev*3/2 {
		t.Errorf("Banyan stddev %v well above ICC's %v", b.Latency.StdDev, i.Latency.StdDev)
	}
	t.Logf("banyan: %v  icc: %v", b.Latency, i.Latency)
}

// TestNegligibleOverheadClaim is the abstract's "negligible communication
// overhead" claim: Banyan's wire traffic exceeds ICC's by only a few
// percent (fast votes ride on existing messages).
func TestNegligibleOverheadClaim(t *testing.T) {
	topo, err := wan.FourGlobal19()
	if err != nil {
		t.Fatal(err)
	}
	run := func(p Protocol) *Result {
		t.Helper()
		res, err := Run(Config{
			Protocol:  p,
			Params:    ParamsFor(p, 19, 6, 1),
			Topology:  topo,
			BlockSize: 64 << 10,
			Duration:  20 * time.Second,
			Seed:      2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	b, i := run(Banyan), run(ICC)
	perBlockB := float64(b.MessageBytes) / float64(b.BlocksCommitted)
	perBlockI := float64(i.MessageBytes) / float64(i.BlocksCommitted)
	overhead := perBlockB/perBlockI - 1
	if overhead > 0.05 {
		t.Errorf("Banyan wire overhead over ICC = %.1f%%, want < 5%%", overhead*100)
	}
	t.Logf("banyan %.1f KB/block vs icc %.1f KB/block (%+.1f%%)",
		perBlockB/1024, perBlockI/1024, overhead*100)
}

// TestDissemDecouplesProposalWire is the batch-dissemination layer's core
// claim as an assertion: with Dissem on, the proposal's wire size is a
// function of the digest list, not the payload — it stays flat as the
// block size grows 16× — while the committed throughput still reflects the
// full logical payload.
func TestDissemDecouplesProposalWire(t *testing.T) {
	topo, err := wan.FourGlobal4()
	if err != nil {
		t.Fatal(err)
	}
	run := func(blockSize int, dissem bool) *Result {
		t.Helper()
		res, err := Run(Config{
			Protocol:  Banyan,
			Params:    ParamsFor(Banyan, 4, 1, 1),
			Topology:  topo,
			BlockSize: blockSize,
			Duration:  30 * time.Second,
			Seed:      11,
			Dissem:    dissem,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	small := run(64<<10, true)
	large := run(1<<20, true)
	t.Logf("dissem wire: 64KB blocks -> %d B proposals, 1MB blocks -> %d B proposals",
		small.MaxProposalWire, large.MaxProposalWire)
	for _, r := range []*Result{small, large} {
		if r.BlocksCommitted == 0 {
			t.Fatal("dissem run committed no blocks")
		}
		if r.Faults != 0 {
			t.Fatalf("dissem run reported %d safety faults", r.Faults)
		}
	}
	// Constant-within-2KB across the sweep (the bench's acceptance bound).
	if diff := large.MaxProposalWire - small.MaxProposalWire; diff > 2<<10 || diff < -(2<<10) {
		t.Errorf("proposal wire grew %d B across a 16x block-size sweep, want within 2KB", diff)
	}
	// And genuinely decoupled: nowhere near the payload size.
	if large.MaxProposalWire > 64<<10 {
		t.Errorf("1MB-block proposal wire = %d B, expected digests-only (≪ payload)", large.MaxProposalWire)
	}

	// Inline mode at the same size ships the body inside the proposal.
	inline := run(1<<20, false)
	if inline.MaxProposalWire < 1<<20 {
		t.Errorf("inline proposal wire = %d B, expected ≥ payload size", inline.MaxProposalWire)
	}
	// Dissem still commits the full logical payload volume: throughput
	// within 2x of inline on this unconstrained-bandwidth profile.
	if small.ThroughputBps == 0 || large.ThroughputBps < inline.ThroughputBps/2 {
		t.Errorf("dissem throughput %.1f MB/s vs inline %.1f MB/s",
			large.ThroughputBps/1e6, inline.ThroughputBps/1e6)
	}
}

// TestAutoDeltaKeepsSingleProposer: the derived Δ must be generous enough
// that fault-free rounds see exactly one proposer (paper section 9.2's
// tuning requirement).
func TestAutoDeltaKeepsSingleProposer(t *testing.T) {
	for _, mk := range []func() (*wan.Topology, error){wan.FourGlobal19, wan.Global19} {
		topo, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Protocol:   Banyan,
			Params:     ParamsFor(Banyan, 19, 6, 1),
			Topology:   topo,
			BlockSize:  400 << 10,
			Duration:   20 * time.Second,
			Seed:       3,
			JitterFrac: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		// All finalizations fast => only rank-0 blocks ever won a round =>
		// higher-rank proposals never interfered.
		if res.SlowFinal > res.FastFinal/20 {
			t.Errorf("%s: %d slow vs %d fast finalizations — Δ too tight?",
				topo.Name(), res.SlowFinal, res.FastFinal)
		}
	}
}
