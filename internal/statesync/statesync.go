// Package statesync schedules snapshot fetches for replicas whose missing
// chain prefix no peer can serve: fresh joiners, disk-loss restarts, and
// laggards that fell below every peer's pruned window. The engine detects
// the condition (repeated sync stalls on the same unserveable prefix) and
// hands the target — the finalization certificate it cannot connect — to a
// Fetcher, which unicasts one SnapshotRequest at a time and rotates to the
// next peer when one times out. The scheduler holds no crypto: the engine
// verifies every response through the same quorum-certificate trust gate
// that guards WAL checkpoint restores, so a malicious peer can waste one
// timeout but never inject state.
package statesync

import (
	"time"

	"banyan/internal/types"
)

// Ring iterates over the peers of one replica in a fixed rotation,
// skipping the replica itself. Both the snapshot fetcher and the engine's
// unicast chain-suffix sync draw peers from a Ring so retry traffic
// spreads over the cluster instead of hammering one replica.
type Ring struct {
	self   types.ReplicaID
	n      int
	cursor int
}

// NewRing creates a rotation over the n-1 peers of self. n must be >= 2.
func NewRing(self types.ReplicaID, n int) *Ring {
	return &Ring{self: self, n: n}
}

// Current returns the peer the rotation points at.
func (r *Ring) Current() types.ReplicaID {
	id := (int(r.self) + 1 + r.cursor%(r.n-1)) % r.n
	return types.ReplicaID(id)
}

// Advance moves to the next peer and returns it.
func (r *Ring) Advance() types.ReplicaID {
	r.cursor = (r.cursor + 1) % (r.n - 1)
	return r.Current()
}

// Target is one snapshot the fetcher wants: the finalization certificate
// the engine could not connect to its tree. The certificate is carried so
// diagnostics can name the block, but the request itself only tells the
// peer what the requester already has — the peer serves its own window.
type Target struct {
	Round types.Round
	Block types.BlockID
	Cert  *types.Certificate
}

// Fetcher schedules snapshot fetches: a height-ordered deduplicated
// target queue, at most one in-flight unicast request, and a per-peer
// deadline after which the request is retried against the next peer in
// rotation. The fetcher is passive like the engine that owns it — the
// engine calls Begin/Expired/Retry/Done from its event handlers and turns
// the returned peer choices into Send actions.
type Fetcher struct {
	ring    *Ring
	timeout time.Duration

	targets []Target // height-descending; [0] is the next to fetch

	inflight bool
	target   Target
	peer     types.ReplicaID
	deadline time.Time
}

// NewFetcher creates a fetcher for replica self in a cluster of n.
// timeout is the per-peer silence budget before rotating.
func NewFetcher(self types.ReplicaID, n int, timeout time.Duration) *Fetcher {
	return &Fetcher{ring: NewRing(self, n), timeout: timeout}
}

// AddTarget queues a fetch target, deduplicating by round: a certificate
// for a round already queued (or currently being fetched at or above it)
// is dropped, and a higher round supersedes lower queued ones — one
// snapshot at the highest height covers everything below it. Reports
// whether the queue changed.
func (f *Fetcher) AddTarget(c *types.Certificate) bool {
	if c == nil {
		return false
	}
	if f.inflight && f.target.Round >= c.Round {
		return false
	}
	for _, t := range f.targets {
		if t.Round >= c.Round {
			return false
		}
	}
	// c is higher than everything queued: it supersedes the queue.
	f.targets = append(f.targets[:0], Target{Round: c.Round, Block: c.Block, Cert: c})
	return true
}

// Fetching reports whether a request is in flight.
func (f *Fetcher) Fetching() bool { return f.inflight }

// Pending reports whether targets are queued (not counting in-flight).
func (f *Fetcher) Pending() bool { return len(f.targets) > 0 }

// Target returns the in-flight target; only valid while Fetching.
func (f *Fetcher) Target() Target { return f.target }

// Peer returns the peer currently being asked; only valid while Fetching.
func (f *Fetcher) Peer() types.ReplicaID { return f.peer }

// Deadline returns the in-flight request's retry deadline; only valid
// while Fetching.
func (f *Fetcher) Deadline() time.Time { return f.deadline }

// Begin pops the highest queued target and starts a fetch against the
// rotation's current peer. Returns false when nothing is queued or a
// fetch is already in flight.
func (f *Fetcher) Begin(now time.Time) bool {
	if f.inflight || len(f.targets) == 0 {
		return false
	}
	f.target = f.targets[0]
	f.targets = f.targets[:0]
	f.inflight = true
	f.peer = f.ring.Current()
	f.deadline = now.Add(f.timeout)
	return true
}

// Expired reports whether the in-flight request's deadline has passed.
func (f *Fetcher) Expired(now time.Time) bool {
	return f.inflight && !now.Before(f.deadline)
}

// Retry rotates to the next peer and re-arms the deadline; the caller
// resends the request to the returned peer. Only valid while Fetching.
func (f *Fetcher) Retry(now time.Time) types.ReplicaID {
	f.peer = f.ring.Advance()
	f.deadline = now.Add(f.timeout)
	return f.peer
}

// Done completes the fetch cycle at the given finalized round: the
// in-flight request (if any) is cleared and queued targets at or below
// the round are dropped — a snapshot at that height covered them.
func (f *Fetcher) Done(round types.Round) {
	if f.inflight && f.target.Round <= round {
		f.inflight = false
	}
	kept := f.targets[:0]
	for _, t := range f.targets {
		if t.Round > round {
			kept = append(kept, t)
		}
	}
	f.targets = kept
}
