package statesync

import (
	"testing"
	"time"

	"banyan/internal/types"
)

func cert(r types.Round) *types.Certificate {
	return &types.Certificate{Kind: types.CertFinalization, Round: r}
}

func TestRingSkipsSelf(t *testing.T) {
	r := NewRing(2, 4)
	seen := map[types.ReplicaID]int{}
	for i := 0; i < 9; i++ {
		p := r.Current()
		if p == 2 {
			t.Fatal("ring returned self")
		}
		seen[p]++
		r.Advance()
	}
	// 9 draws over 3 peers: each peer exactly 3 times.
	for _, id := range []types.ReplicaID{0, 1, 3} {
		if seen[id] != 3 {
			t.Fatalf("peer %d drawn %d times, want 3", id, seen[id])
		}
	}
}

func TestFetcherDedupsByHeight(t *testing.T) {
	f := NewFetcher(0, 4, time.Second)
	if !f.AddTarget(cert(10)) {
		t.Fatal("first target rejected")
	}
	if f.AddTarget(cert(8)) {
		t.Fatal("lower target accepted")
	}
	if f.AddTarget(cert(10)) {
		t.Fatal("duplicate target accepted")
	}
	if !f.AddTarget(cert(12)) {
		t.Fatal("higher target rejected")
	}
	now := time.Unix(0, 0)
	if !f.Begin(now) {
		t.Fatal("begin failed")
	}
	if f.Target().Round != 12 {
		t.Fatalf("fetching round %d, want 12 (highest supersedes)", f.Target().Round)
	}
	// In-flight at 12: anything at or below is a duplicate.
	if f.AddTarget(cert(12)) || f.AddTarget(cert(5)) {
		t.Fatal("target at or below in-flight accepted")
	}
	if !f.AddTarget(cert(20)) {
		t.Fatal("target above in-flight rejected")
	}
}

func TestFetcherTimeoutRotation(t *testing.T) {
	f := NewFetcher(1, 4, time.Second)
	f.AddTarget(cert(7))
	now := time.Unix(100, 0)
	f.Begin(now)
	first := f.Peer()
	if first == 1 {
		t.Fatal("fetching from self")
	}
	if f.Expired(now.Add(999 * time.Millisecond)) {
		t.Fatal("expired before deadline")
	}
	if !f.Expired(now.Add(time.Second)) {
		t.Fatal("not expired at deadline")
	}
	second := f.Retry(now.Add(time.Second))
	if second == first || second == 1 {
		t.Fatalf("retry peer %d after %d", second, first)
	}
	if f.Expired(now.Add(1500 * time.Millisecond)) {
		t.Fatal("deadline not re-armed on retry")
	}
	// Full rotation returns to the first peer.
	p := second
	for i := 0; i < 2; i++ {
		p = f.Retry(now)
	}
	if p != first {
		t.Fatalf("rotation did not wrap: got %d, want %d", p, first)
	}
}

func TestFetcherDone(t *testing.T) {
	f := NewFetcher(0, 4, time.Second)
	f.AddTarget(cert(9))
	now := time.Unix(0, 0)
	f.Begin(now)
	f.AddTarget(cert(15)) // queued behind the in-flight fetch

	// Completing at 9 clears the in-flight fetch but keeps the higher target.
	f.Done(9)
	if f.Fetching() {
		t.Fatal("still fetching after Done")
	}
	if !f.Pending() {
		t.Fatal("higher target dropped")
	}
	if !f.Begin(now) || f.Target().Round != 15 {
		t.Fatal("queued target not fetchable")
	}
	// Completing above the in-flight round clears everything.
	f.Done(20)
	if f.Fetching() || f.Pending() {
		t.Fatal("Done above target left state behind")
	}
	if f.Begin(now) {
		t.Fatal("Begin succeeded with empty queue")
	}
}

func TestFetcherStaleDoneKeepsFetch(t *testing.T) {
	f := NewFetcher(0, 4, time.Second)
	f.AddTarget(cert(30))
	f.Begin(time.Unix(0, 0))
	// Suffix sync advancing to 12 does not cover the round-30 fetch.
	f.Done(12)
	if !f.Fetching() {
		t.Fatal("in-flight fetch cleared by lower Done")
	}
}
