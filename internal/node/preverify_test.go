package node

import (
	"sync"
	"testing"
	"time"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// countingPreverifier records every message it sees, with a configurable
// per-message delay to shake out ordering races in the pipeline.
type countingPreverifier struct {
	mu    sync.Mutex
	seen  []types.Message
	delay time.Duration
}

func (p *countingPreverifier) PreverifyMessage(msg types.Message) {
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	p.mu.Lock()
	p.seen = append(p.seen, msg)
	p.mu.Unlock()
}

func (p *countingPreverifier) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.seen)
}

// TestPreverifyStageDeliversInOrder: with several workers racing, every
// message must still reach the engine, exactly once, in arrival order.
func TestPreverifyStageDeliversInOrder(t *testing.T) {
	eng := &scriptEngine{id: 0}
	tr := newMemTransport()
	pv := &countingPreverifier{delay: 100 * time.Microsecond}
	n, err := New(Config{Engine: eng, Transport: tr, Preverifier: pv, VerifyWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	const total = 64
	msgs := make([]*types.SyncRequest, total)
	for i := range msgs {
		msgs[i] = &types.SyncRequest{From: types.Round(i + 1)}
		tr.in <- Inbound{From: 1, Msg: msgs[i]}
	}
	waitFor(t, func() bool { return eng.receivedCount() == total })

	if got := pv.count(); got != total {
		t.Fatalf("preverifier saw %d messages, want %d", got, total)
	}
	eng.mu.Lock()
	defer eng.mu.Unlock()
	for i, m := range eng.received {
		if m != msgs[i] {
			t.Fatalf("delivery %d out of order: got %v, want %v",
				i, m.(*types.SyncRequest).From, msgs[i].From)
		}
	}
}

// TestPreverifyRunsBeforeDelivery: by the time the engine handles a
// message, that message's preverification must have completed (the
// stage's whole point is that the engine finds a warm cache).
func TestPreverifyRunsBeforeDelivery(t *testing.T) {
	pv := &countingPreverifier{}
	var (
		mu         sync.Mutex
		violations int
	)
	eng := &scriptEngine{id: 0}
	eng.onMsg = func(_ types.ReplicaID, msg types.Message, _ time.Time) []protocol.Action {
		pv.mu.Lock()
		seen := false
		for _, m := range pv.seen {
			if m == msg {
				seen = true
				break
			}
		}
		pv.mu.Unlock()
		if !seen {
			mu.Lock()
			violations++
			mu.Unlock()
		}
		return nil
	}
	tr := newMemTransport()
	n, err := New(Config{Engine: eng, Transport: tr, Preverifier: pv, VerifyWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	const total = 16
	for i := 0; i < total; i++ {
		tr.in <- Inbound{From: 1, Msg: &types.SyncRequest{From: types.Round(i)}}
	}
	waitFor(t, func() bool { return eng.receivedCount() == total })
	mu.Lock()
	defer mu.Unlock()
	if violations > 0 {
		t.Fatalf("%d messages reached the engine before preverification", violations)
	}
}

// TestPreverifyDisabled: a negative worker count must bypass the stage
// entirely even when a Preverifier is configured.
func TestPreverifyDisabled(t *testing.T) {
	eng := &scriptEngine{id: 0}
	tr := newMemTransport()
	pv := &countingPreverifier{}
	n, err := New(Config{Engine: eng, Transport: tr, Preverifier: pv, VerifyWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	tr.in <- Inbound{From: 1, Msg: &types.CertMsg{}}
	waitFor(t, func() bool { return eng.receivedCount() == 1 })
	if pv.count() != 0 {
		t.Fatalf("preverifier ran %d times despite VerifyWorkers=-1", pv.count())
	}
}

// TestPreverifyStopMidStream: stopping the node while the pipeline is
// full must not deadlock or panic.
func TestPreverifyStopMidStream(t *testing.T) {
	eng := &scriptEngine{id: 0}
	tr := newMemTransport()
	pv := &countingPreverifier{delay: time.Millisecond}
	n, err := New(Config{Engine: eng, Transport: tr, Preverifier: pv, VerifyWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		tr.in <- Inbound{From: 1, Msg: &types.SyncRequest{From: types.Round(i)}}
	}
	done := make(chan struct{})
	go func() { n.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop deadlocked with a full preverification pipeline")
	}
}
