package node

import (
	"errors"
	"sync"
	"testing"
	"time"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// scriptEngine is a controllable engine for node tests.
type scriptEngine struct {
	mu       sync.Mutex
	id       types.ReplicaID
	onStart  []protocol.Action
	onMsg    func(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action
	onTimer  func(id protocol.TimerID, now time.Time) []protocol.Action
	received []types.Message
	fired    []protocol.TimerID
}

func (s *scriptEngine) ID() types.ReplicaID       { return s.id }
func (s *scriptEngine) Protocol() string          { return "script" }
func (s *scriptEngine) Metrics() map[string]int64 { return map[string]int64{"ok": 1} }

func (s *scriptEngine) Start(time.Time) []protocol.Action { return s.onStart }

func (s *scriptEngine) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	s.mu.Lock()
	s.received = append(s.received, msg)
	s.mu.Unlock()
	if s.onMsg != nil {
		return s.onMsg(from, msg, now)
	}
	return nil
}

func (s *scriptEngine) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	s.mu.Lock()
	s.fired = append(s.fired, id)
	s.mu.Unlock()
	if s.onTimer != nil {
		return s.onTimer(id, now)
	}
	return nil
}

func (s *scriptEngine) receivedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.received)
}

func (s *scriptEngine) firedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.fired)
}

// memTransport is an in-memory loopback transport for a single node.
type memTransport struct {
	in     chan Inbound
	mu     sync.Mutex
	sent   []types.Message
	closed bool
}

func newMemTransport() *memTransport {
	return &memTransport{in: make(chan Inbound, 64)}
}

func (m *memTransport) Send(_ types.ReplicaID, msg types.Message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sent = append(m.sent, msg)
	return nil
}

func (m *memTransport) Broadcast(msg types.Message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sent = append(m.sent, msg)
	return nil
}

func (m *memTransport) Receive() <-chan Inbound { return m.in }

func (m *memTransport) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.closed {
		m.closed = true
		close(m.in)
	}
	return nil
}

func (m *memTransport) sentCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sent)
}

func TestNodeDeliversMessagesToEngine(t *testing.T) {
	eng := &scriptEngine{id: 0}
	tr := newMemTransport()
	n, err := New(Config{Engine: eng, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	for i := 0; i < 5; i++ {
		tr.in <- Inbound{From: 1, Msg: &types.CertMsg{}}
	}
	waitFor(t, func() bool { return eng.receivedCount() == 5 })
}

func TestNodeExecutesBroadcasts(t *testing.T) {
	eng := &scriptEngine{
		id:      0,
		onStart: []protocol.Action{protocol.Broadcast{Msg: &types.CertMsg{}}},
		onMsg: func(types.ReplicaID, types.Message, time.Time) []protocol.Action {
			return []protocol.Action{protocol.Send{To: 2, Msg: &types.CertMsg{}}}
		},
	}
	tr := newMemTransport()
	n, _ := New(Config{Engine: eng, Transport: tr})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	tr.in <- Inbound{From: 1, Msg: &types.CertMsg{}}
	waitFor(t, func() bool { return tr.sentCount() == 2 })
}

func TestNodeTimerFires(t *testing.T) {
	// A shifted clock: fake epoch, real cadence — exercises the clock
	// injection path while letting timers actually elapse.
	realStart := time.Now()
	clock := func() time.Time {
		return time.Unix(1000, 0).Add(time.Since(realStart))
	}
	tid := protocol.TimerID{Round: 1, Kind: protocol.TimerPropose}
	eng := &scriptEngine{
		id:      0,
		onStart: []protocol.Action{protocol.SetTimer{ID: tid, At: time.Unix(1000, 0).Add(20 * time.Millisecond)}},
	}
	tr := newMemTransport()
	n, _ := New(Config{Engine: eng, Transport: tr, Clock: clock})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	// The timer is 20ms of fake time away, and the real timer waits that
	// long too (the node computes the wait from the injected clock).
	waitFor(t, func() bool { return eng.firedCount() == 1 })
	if eng.fired[0] != tid {
		t.Fatalf("fired %v, want %v", eng.fired[0], tid)
	}
}

func TestNodeTimerSuperseded(t *testing.T) {
	tid := protocol.TimerID{Round: 2, Kind: protocol.TimerNotarize}
	eng := &scriptEngine{id: 0}
	// Two SetTimer actions with the same ID: only the later generation may
	// fire.
	eng.onStart = []protocol.Action{
		protocol.SetTimer{ID: tid, At: time.Now().Add(5 * time.Millisecond)},
		protocol.SetTimer{ID: tid, At: time.Now().Add(15 * time.Millisecond)},
	}
	tr := newMemTransport()
	n, _ := New(Config{Engine: eng, Transport: tr})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	time.Sleep(80 * time.Millisecond)
	if got := eng.firedCount(); got != 1 {
		t.Fatalf("timer fired %d times, want 1 (superseded generation must not fire)", got)
	}
}

func TestNodeCommitsFlow(t *testing.T) {
	blocks := []*types.Block{types.NewBlock(1, 0, 0, types.Genesis().ID(), types.Payload{})}
	eng := &scriptEngine{
		id: 0,
		onMsg: func(types.ReplicaID, types.Message, time.Time) []protocol.Action {
			return []protocol.Action{protocol.Commit{Blocks: blocks, Explicit: protocol.FinalizeFast}}
		},
	}
	tr := newMemTransport()
	commits := make(chan CommitEvent, 4)
	n, _ := New(Config{Engine: eng, Transport: tr, Commits: commits})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	tr.in <- Inbound{From: 1, Msg: &types.CertMsg{}}
	select {
	case ev := <-commits:
		if len(ev.Blocks) != 1 || ev.Explicit != protocol.FinalizeFast {
			t.Fatalf("unexpected commit %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit not delivered")
	}
}

func TestNodeStopsOnSafetyFault(t *testing.T) {
	eng := &scriptEngine{
		id: 0,
		onMsg: func(types.ReplicaID, types.Message, time.Time) []protocol.Action {
			return []protocol.Action{protocol.SafetyFault{Err: errors.New("conflict")}}
		},
	}
	tr := newMemTransport()
	var faultMu sync.Mutex
	var faults []error
	n, _ := New(Config{Engine: eng, Transport: tr, OnFault: func(err error) {
		faultMu.Lock()
		faults = append(faults, err)
		faultMu.Unlock()
	}})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	tr.in <- Inbound{From: 1, Msg: &types.CertMsg{}}
	waitFor(t, func() bool {
		faultMu.Lock()
		defer faultMu.Unlock()
		return len(faults) == 1
	})
	n.Stop() // must not hang: the loop already exited
	if n.Metrics() == nil {
		t.Fatal("metrics unavailable after stop")
	}
}

func TestNodeStopTwice(t *testing.T) {
	eng := &scriptEngine{id: 0}
	n, _ := New(Config{Engine: eng, Transport: newMemTransport()})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	n.Stop()
	n.Stop() // idempotent
	if err := n.Start(); err == nil {
		t.Fatal("restart accepted")
	}
}

func TestNodeValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(Config{Engine: &scriptEngine{}}); err == nil {
		t.Fatal("nil transport accepted")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
