// Package node hosts a consensus engine in real time: it connects an
// engine to a transport and the wall clock, running the engine's
// single-threaded event loop on a dedicated goroutine. It is the
// deployment-side counterpart of the discrete-event simulator — the same
// engine code runs under both, which is the framework property paper
// section 9.1 relies on for fair protocol comparison.
package node

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"banyan/internal/obs"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Inbound is a message received from a peer. Msg may alias the
// transport's receive buffer (the TCP transport decodes frames in place)
// and, on in-process transports, may be the very object another replica
// sent — both are safe because consensus messages are immutable after
// construction and carry their own memoized digests and encodings.
type Inbound struct {
	From types.ReplicaID
	Msg  types.Message
}

// Transport moves messages between replicas. Implementations:
// transport/channel (in-process) and transport/tcp (real sockets).
type Transport interface {
	// Send delivers a message to one replica (best effort).
	Send(to types.ReplicaID, msg types.Message) error
	// Broadcast delivers a message to every other replica (best effort).
	Broadcast(msg types.Message) error
	// Receive returns the channel of inbound messages. The channel is
	// closed when the transport shuts down.
	Receive() <-chan Inbound
	// Close shuts the transport down and releases its resources.
	Close() error
}

// CommitEvent reports finalized blocks to the application.
type CommitEvent struct {
	Blocks   []*types.Block
	Explicit protocol.FinalizationMode
	At       time.Time
}

// Preverifier verifies the signatures a message carries before the
// message reaches the engine, caching the results (crypto.Verifier
// implements it). It must be safe for concurrent use and must not judge
// the message — acceptance stays with the engine.
type Preverifier interface {
	PreverifyMessage(msg types.Message)
}

// Config assembles a node.
type Config struct {
	// Engine is the consensus state machine to host. Required.
	Engine protocol.Engine
	// Transport connects the node to its peers. Required. The node owns it
	// and closes it on Stop.
	Transport Transport
	// Commits, when non-nil, receives finalization events. The node sends
	// without blocking indefinitely: if the application falls behind by
	// more than the channel capacity, events are dropped and counted.
	Commits chan<- CommitEvent
	// OnFault, when non-nil, is called once if the engine reports a safety
	// violation; the node stops afterwards.
	OnFault func(error)
	// Preverifier, when non-nil, inserts a verify-then-deliver stage
	// between the transport and the engine: inbound messages have their
	// signatures verified (and cached) on a worker pool, then are handed
	// to the engine in arrival order. The engine's own verification of the
	// same signatures becomes cache lookups, moving the dominant crypto
	// cost off the consensus goroutine. Pass the engine's crypto.Verifier.
	Preverifier Preverifier
	// VerifyWorkers sizes the preverification stage: 0 selects GOMAXPROCS
	// (and skips the stage entirely on single-proc hosts, where nothing
	// can overlap), negative disables the stage even when Preverifier is
	// set, positive counts are honored as given.
	VerifyWorkers int
	// Clock returns the current time; nil selects time.Now. Tests inject
	// fake clocks here.
	Clock func() time.Time
	// Obs, when non-nil, instruments the preverify stage: per-message
	// queue-wait and verify-time histograms (real time — this pipeline
	// is CPU- and scheduling-bound). The engine's own instruments are
	// wired separately through its config.
	Obs *obs.Observer
}

// Node runs one replica.
type Node struct {
	cfg   Config
	clock func() time.Time

	timers   timerHeap
	timerGen map[protocol.TimerID]uint64 // latest generation per ID

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu        sync.Mutex
	dropped   int64
	startedAt time.Time
	running   bool
}

// New assembles a node; call Start to run it.
func New(cfg Config) (*Node, error) {
	if cfg.Engine == nil {
		return nil, errors.New("node: engine is required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("node: transport is required")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Node{
		cfg:      cfg,
		clock:    clock,
		timerGen: make(map[protocol.TimerID]uint64),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// ID returns the hosted replica's ID.
func (n *Node) ID() types.ReplicaID { return n.cfg.Engine.ID() }

// Start boots the engine and runs the event loop until Stop.
func (n *Node) Start() error {
	n.mu.Lock()
	if n.running {
		n.mu.Unlock()
		return errors.New("node: already started")
	}
	n.running = true
	n.startedAt = n.clock()
	n.mu.Unlock()
	go n.run()
	return nil
}

// Stop shuts the node down and waits for the event loop to exit.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	<-n.done
}

// Dropped returns the number of commit events dropped because the
// application reader fell behind.
func (n *Node) Dropped() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dropped
}

// Metrics proxies the engine's counters (safe to call while running only
// from the commit consumer's perspective of freshness; values may lag).
func (n *Node) Metrics() map[string]int64 {
	// The engine is single-threaded inside the loop; to avoid a data race
	// we snapshot via a request over the loop would be heavyweight. The
	// loop exits before done is closed, so reading after Stop is safe.
	select {
	case <-n.done:
		return n.cfg.Engine.Metrics()
	default:
		return nil
	}
}

func (n *Node) run() {
	defer close(n.done)
	defer func() {
		if err := n.cfg.Transport.Close(); err != nil && n.cfg.OnFault != nil {
			n.cfg.OnFault(fmt.Errorf("node: closing transport: %w", err))
		}
	}()

	if !n.apply(n.cfg.Engine.Start(n.clock())) {
		return
	}

	idle := time.NewTimer(time.Hour)
	defer idle.Stop()
	inbound := n.cfg.Transport.Receive()
	workers := n.cfg.VerifyWorkers
	if workers == 0 {
		// Auto mode: the stage only helps when verification can overlap
		// engine processing, which needs a second processor. On a
		// single-proc host it would add scheduling hops for nothing.
		if workers = runtime.GOMAXPROCS(0); workers == 1 {
			workers = -1
		}
	}
	if n.cfg.Preverifier != nil && workers > 0 {
		inbound = n.preverify(inbound, workers)
	}
	for {
		var timerC <-chan time.Time
		if next, ok := n.nextTimer(); ok {
			d := next.at.Sub(n.clock())
			if d < 0 {
				d = 0
			}
			idle.Reset(d)
			timerC = idle.C
		}

		select {
		case <-n.stop:
			return
		case in, ok := <-inbound:
			if !ok {
				return
			}
			if !n.apply(n.cfg.Engine.HandleMessage(in.From, in.Msg, n.clock())) {
				return
			}
		case <-timerC:
			now := n.clock()
			for {
				next, ok := n.nextTimer()
				if !ok || next.at.After(now) {
					break
				}
				heap.Pop(&n.timers)
				if n.timerGen[next.id] != next.gen {
					continue // superseded
				}
				// The live generation fired: forget the ID so the map does
				// not grow with one entry per round forever.
				delete(n.timerGen, next.id)
				if !n.apply(n.cfg.Engine.HandleTimer(next.id, now)) {
					return
				}
			}
		}
	}
}

// preverify is the verify-then-deliver stage: it fans inbound messages
// over `workers` goroutines that run the Preverifier (warming the
// signature cache), while a reorder queue preserves arrival order into the
// returned channel. The engine therefore observes exactly the message
// sequence the transport delivered — only cheaper to verify. All stage
// goroutines exit when the transport channel closes or the node stops.
func (n *Node) preverify(inbound <-chan Inbound, workers int) <-chan Inbound {
	type pending struct {
		in   Inbound
		enq  time.Time // when the dispatcher queued it (zero when obs is off)
		done chan struct{}
	}
	depth := 4 * workers
	order := make(chan *pending, depth)
	work := make(chan *pending, depth)
	out := make(chan Inbound, depth)

	o := n.cfg.Obs
	for i := 0; i < workers; i++ {
		go func() {
			for p := range work {
				if o != nil {
					pick := time.Now()
					o.PreverifyWait.Record(pick.Sub(p.enq))
					n.cfg.Preverifier.PreverifyMessage(p.in.Msg)
					o.VerifyTime.Record(time.Since(pick))
				} else {
					n.cfg.Preverifier.PreverifyMessage(p.in.Msg)
				}
				close(p.done)
			}
		}()
	}
	// Dispatcher: tag each message with a completion signal, keep the
	// arrival order in `order`, and hand the work to the pool. The
	// receive itself races n.stop: the transport channel may be a shared
	// hub queue that outlives this node (crash-restart reuses it for the
	// replacement node), so a stopped dispatcher must detach rather than
	// keep consuming — and discarding — the successor's messages.
	go func() {
		defer close(order)
		defer close(work)
		for {
			var p *pending
			select {
			case in, ok := <-inbound:
				if !ok {
					return
				}
				p = &pending{in: in, done: make(chan struct{})}
				if o != nil {
					p.enq = time.Now()
				}
			case <-n.stop:
				return
			}
			select {
			case order <- p:
			case <-n.stop:
				return
			}
			select {
			case work <- p:
			case <-n.stop:
				return
			}
		}
	}()
	// Reorderer: release messages downstream strictly in arrival order,
	// each once its verification finished.
	go func() {
		defer close(out)
		for p := range order {
			select {
			case <-p.done:
			case <-n.stop:
				return
			}
			select {
			case out <- p.in:
			case <-n.stop:
				return
			}
		}
	}()
	return out
}

// apply executes engine actions; it returns false when the node must stop
// (safety fault).
func (n *Node) apply(acts []protocol.Action) bool {
	for _, a := range acts {
		switch act := a.(type) {
		case protocol.Broadcast:
			if err := n.cfg.Transport.Broadcast(act.Msg); err != nil && n.cfg.OnFault != nil {
				// Transport errors are reported but non-fatal: consensus
				// tolerates message loss.
				n.cfg.OnFault(fmt.Errorf("node: broadcast: %w", err))
			}
		case protocol.Send:
			if err := n.cfg.Transport.Send(act.To, act.Msg); err != nil && n.cfg.OnFault != nil {
				n.cfg.OnFault(fmt.Errorf("node: send to %d: %w", act.To, err))
			}
		case protocol.SetTimer:
			n.setTimer(act)
		case protocol.Commit:
			if n.cfg.Commits != nil {
				select {
				case n.cfg.Commits <- CommitEvent{Blocks: act.Blocks, Explicit: act.Explicit, At: n.clock()}:
				default:
					n.mu.Lock()
					n.dropped++
					n.mu.Unlock()
				}
			}
		case protocol.SafetyFault:
			if n.cfg.OnFault != nil {
				n.cfg.OnFault(act.Err)
			}
			return false
		}
	}
	return true
}

func (n *Node) setTimer(act protocol.SetTimer) {
	gen := n.timerGen[act.ID] + 1
	n.timerGen[act.ID] = gen
	heap.Push(&n.timers, pendingTimer{at: act.At, id: act.ID, gen: gen})
}

func (n *Node) nextTimer() (pendingTimer, bool) {
	for len(n.timers) > 0 {
		top := n.timers[0]
		if n.timerGen[top.id] != top.gen {
			heap.Pop(&n.timers) // superseded entry
			continue
		}
		return top, true
	}
	return pendingTimer{}, false
}

type pendingTimer struct {
	at  time.Time
	id  protocol.TimerID
	gen uint64
}

type timerHeap []pendingTimer

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)        { *h = append(*h, x.(pendingTimer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
