package blocktree

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"banyan/internal/types"
)

// chainBlocks builds a linear chain of blocks on top of the genesis.
func chainBlocks(n int, tag byte) []*types.Block {
	blocks := make([]*types.Block, n)
	parent := types.Genesis().ID()
	for i := 0; i < n; i++ {
		b := types.NewBlock(types.Round(i+1), types.ReplicaID(i%4), 0, parent,
			types.BytesPayload([]byte{tag, byte(i)}))
		blocks[i] = b
		parent = b.ID()
	}
	return blocks
}

func TestAddAndLookup(t *testing.T) {
	tr := New()
	blocks := chainBlocks(3, 1)
	for _, b := range blocks {
		tr.Add(b)
		tr.Add(b) // idempotent
	}
	for _, b := range blocks {
		got, ok := tr.Block(b.ID())
		if !ok || !got.Equal(b) {
			t.Fatalf("block %v not found after Add", b)
		}
	}
	if got := len(tr.AtRound(1)); got != 1 {
		t.Fatalf("AtRound(1) returned %d blocks, want 1", got)
	}
	if !tr.Contains(types.Genesis().ID()) {
		t.Fatal("genesis missing")
	}
	if tr.Contains(types.BlockID{9}) {
		t.Fatal("phantom block reported present")
	}
}

func TestGenesisState(t *testing.T) {
	tr := New()
	g := tr.Genesis()
	if !tr.IsNotarized(g.ID()) || !tr.IsFinalized(g.ID()) {
		t.Fatal("genesis must be notarized and finalized by definition")
	}
	if tr.FinalizedRound() != 0 {
		t.Fatalf("FinalizedRound = %d, want 0", tr.FinalizedRound())
	}
}

func TestFinalizeImplicitAncestors(t *testing.T) {
	tr := New()
	blocks := chainBlocks(5, 1)
	for _, b := range blocks {
		tr.Add(b)
	}
	// Explicitly finalizing block 4 (round 5) finalizes rounds 1..5.
	chain, err := tr.Finalize(blocks[4].ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 5 {
		t.Fatalf("finalized %d blocks, want 5", len(chain))
	}
	for i, b := range chain {
		if b.Round != types.Round(i+1) {
			t.Fatalf("chain[%d].Round = %d, want %d (oldest first)", i, b.Round, i+1)
		}
		if !tr.IsFinalized(b.ID()) {
			t.Fatalf("chain[%d] not marked finalized", i)
		}
		if !tr.IsNotarized(b.ID()) {
			t.Fatalf("finalized block %d not notarized", i)
		}
	}
	if tr.FinalizedRound() != 5 {
		t.Fatalf("FinalizedRound = %d, want 5", tr.FinalizedRound())
	}
	// Re-finalizing is a no-op.
	again, err := tr.Finalize(blocks[4].ID())
	if err != nil || len(again) != 0 {
		t.Fatalf("re-finalize: chain=%d err=%v", len(again), err)
	}
}

func TestFinalizeMissingAncestor(t *testing.T) {
	tr := New()
	blocks := chainBlocks(3, 1)
	tr.Add(blocks[0])
	tr.Add(blocks[2]) // skip block 1
	if _, err := tr.Finalize(blocks[2].ID()); !errors.Is(err, ErrMissingAncestor) {
		t.Fatalf("err = %v, want ErrMissingAncestor", err)
	}
	// After the missing block arrives, finalization succeeds.
	tr.Add(blocks[1])
	chain, err := tr.Finalize(blocks[2].ID())
	if err != nil || len(chain) != 3 {
		t.Fatalf("chain=%d err=%v", len(chain), err)
	}
	// Finalizing an unknown block also reports missing ancestor.
	if _, err := tr.Finalize(types.BlockID{42}); !errors.Is(err, ErrMissingAncestor) {
		t.Fatalf("err = %v, want ErrMissingAncestor", err)
	}
}

func TestFinalizeConflictDetected(t *testing.T) {
	tr := New()
	main := chainBlocks(3, 1)
	forkTail := chainBlocks(3, 2) // same heights, different payloads
	for _, b := range main {
		tr.Add(b)
	}
	for _, b := range forkTail {
		tr.Add(b)
	}
	if _, err := tr.Finalize(main[2].ID()); err != nil {
		t.Fatal(err)
	}
	// Finalizing the forked chain's tip must be a safety violation.
	if _, err := tr.Finalize(forkTail[2].ID()); !errors.Is(err, ErrSafetyViolation) {
		t.Fatalf("err = %v, want ErrSafetyViolation", err)
	}
	// A block below the finalized height that is not on the chain too.
	if _, err := tr.Finalize(forkTail[0].ID()); !errors.Is(err, ErrSafetyViolation) {
		t.Fatalf("err = %v, want ErrSafetyViolation", err)
	}
}

// TestFinalizeBypassConflict: a chain that joins the finalized prefix
// below its tip (bypassing a finalized block) must be rejected even with
// non-contiguous rounds.
func TestFinalizeBypassConflict(t *testing.T) {
	tr := New()
	main := chainBlocks(2, 1)
	for _, b := range main {
		tr.Add(b)
	}
	if _, err := tr.Finalize(main[1].ID()); err != nil {
		t.Fatal(err)
	}
	// A round-5 block whose parent is genesis bypasses finalized rounds 1-2.
	bypass := types.NewBlock(5, 0, 0, types.Genesis().ID(), types.BytesPayload([]byte("x")))
	tr.Add(bypass)
	if _, err := tr.Finalize(bypass.ID()); !errors.Is(err, ErrSafetyViolation) {
		t.Fatalf("err = %v, want ErrSafetyViolation", err)
	}
}

// TestStreamletStyleGaps: non-contiguous rounds (epochs) finalize fine as
// long as the chain joins the finalized tip.
func TestStreamletStyleGaps(t *testing.T) {
	tr := New()
	b1 := types.NewBlock(2, 0, 0, types.Genesis().ID(), types.BytesPayload([]byte("a")))
	b2 := types.NewBlock(5, 1, 0, b1.ID(), types.BytesPayload([]byte("b")))
	b3 := types.NewBlock(6, 2, 0, b2.ID(), types.BytesPayload([]byte("c")))
	for _, b := range []*types.Block{b1, b2, b3} {
		tr.Add(b)
	}
	chain, err := tr.Finalize(b2.ID())
	if err != nil || len(chain) != 2 {
		t.Fatalf("chain=%d err=%v", len(chain), err)
	}
	if tr.FinalizedRound() != 5 {
		t.Fatalf("FinalizedRound = %d, want 5", tr.FinalizedRound())
	}
	chain, err = tr.Finalize(b3.ID())
	if err != nil || len(chain) != 1 {
		t.Fatalf("chain=%d err=%v", len(chain), err)
	}
}

func TestNotarization(t *testing.T) {
	tr := New()
	blocks := chainBlocks(2, 1)
	tr.Add(blocks[0])
	tr.MarkNotarized(blocks[0].ID())
	if !tr.IsNotarized(blocks[0].ID()) {
		t.Fatal("block not notarized after MarkNotarized")
	}
	if tr.IsNotarized(blocks[1].ID()) {
		t.Fatal("unmarked block reported notarized")
	}
	nb := tr.NotarizedAt(1)
	if len(nb) != 1 || !nb[0].Equal(blocks[0]) {
		t.Fatalf("NotarizedAt(1) = %v", nb)
	}
	// Marking before Add is allowed (certificates can precede blocks).
	tr.MarkNotarized(blocks[1].ID())
	if !tr.IsNotarized(blocks[1].ID()) {
		t.Fatal("pre-add notarization mark lost")
	}
}

func TestLength(t *testing.T) {
	tr := New()
	blocks := chainBlocks(4, 1)
	for _, b := range blocks {
		tr.Add(b)
	}
	if got := tr.Length(types.Genesis().ID()); got != 0 {
		t.Fatalf("genesis length = %d, want 0", got)
	}
	if got := tr.Length(blocks[3].ID()); got != 4 {
		t.Fatalf("tip length = %d, want 4", got)
	}
	orphan := types.NewBlock(9, 0, 0, types.BlockID{7}, types.Payload{})
	tr.Add(orphan)
	if got := tr.Length(orphan.ID()); got != -1 {
		t.Fatalf("orphan length = %d, want -1", got)
	}
}

func TestChainTo(t *testing.T) {
	tr := New()
	blocks := chainBlocks(4, 1)
	for _, b := range blocks {
		tr.Add(b)
	}
	if _, err := tr.Finalize(blocks[1].ID()); err != nil {
		t.Fatal(err)
	}
	chain := tr.ChainTo(blocks[3].ID())
	if len(chain) != 2 || chain[0].Round != 3 || chain[1].Round != 4 {
		t.Fatalf("ChainTo returned %v", chain)
	}
	if got := tr.ChainTo(types.BlockID{5}); got != nil {
		t.Fatalf("ChainTo(unknown) = %v, want nil", got)
	}
}

func TestPrune(t *testing.T) {
	tr := New()
	blocks := chainBlocks(10, 1)
	var forks []*types.Block
	parent := types.Genesis().ID()
	for i, b := range blocks {
		tr.Add(b)
		// Add a losing fork block at each height.
		fork := types.NewBlock(types.Round(i+1), 3, 1, parent, types.BytesPayload([]byte{0xFF, byte(i)}))
		tr.Add(fork)
		forks = append(forks, fork)
		parent = b.ID()
	}
	if _, err := tr.Finalize(blocks[9].ID()); err != nil {
		t.Fatal(err)
	}
	tr.Prune(8)
	for i := 0; i < 7; i++ {
		if tr.Contains(forks[i].ID()) {
			t.Fatalf("fork at round %d survived pruning", i+1)
		}
		if !tr.Contains(blocks[i].ID()) {
			t.Fatalf("finalized block at round %d was pruned", i+1)
		}
	}
	if !tr.Contains(forks[8].ID()) {
		t.Fatal("fork above the prune floor was removed")
	}
	st := tr.Stats()
	if st.FinalizedRound != 10 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFinalizedChain(t *testing.T) {
	tr := New()
	blocks := chainBlocks(3, 1)
	for _, b := range blocks {
		tr.Add(b)
	}
	if _, err := tr.Finalize(blocks[2].ID()); err != nil {
		t.Fatal(err)
	}
	chain := tr.FinalizedChain()
	if len(chain) != 3 {
		t.Fatalf("FinalizedChain has %d entries, want 3", len(chain))
	}
	for i, id := range chain {
		if id != blocks[i].ID() {
			t.Fatalf("FinalizedChain[%d] mismatch", i)
		}
	}
}

// TestRandomForestInvariants grows a random forest, finalizes random
// chain prefixes, and checks the invariants: the finalized chain is
// connected, monotone, and never conflicts.
func TestRandomForestInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		tr := New()
		tips := []*types.Block{types.Genesis()}
		var all []*types.Block
		for i := 0; i < 60; i++ {
			parent := tips[rng.Intn(len(tips))]
			b := types.NewBlock(parent.Round+1, types.ReplicaID(rng.Intn(4)),
				types.Rank(rng.Intn(3)), parent.ID(),
				types.BytesPayload([]byte(fmt.Sprintf("%d-%d", trial, i))))
			tr.Add(b)
			tips = append(tips, b)
			all = append(all, b)
		}
		// Finalize a few random blocks; only extensions of the finalized
		// prefix may succeed.
		for i := 0; i < 10; i++ {
			b := all[rng.Intn(len(all))]
			chain, err := tr.Finalize(b.ID())
			switch {
			case err == nil:
				for j := 1; j < len(chain); j++ {
					if chain[j].Parent != chain[j-1].ID() {
						t.Fatal("finalized chain not connected")
					}
				}
			case errors.Is(err, ErrSafetyViolation), errors.Is(err, ErrMissingAncestor):
				// acceptable outcomes for random choices
			default:
				t.Fatalf("unexpected error: %v", err)
			}
		}
		// The finalized chain must be parent-connected end to end.
		ids := tr.FinalizedChain()
		prev := types.Genesis().ID()
		for _, id := range ids {
			b, ok := tr.Block(id)
			if !ok {
				t.Fatal("finalized block missing from store")
			}
			if b.Parent != prev {
				t.Fatal("finalized chain has a gap")
			}
			prev = id
		}
	}
}

// TestAdoptFinalizedFreshTree: a snapshot window grafts onto a tree that
// has only genesis, even though the window floor's parent is absent.
func TestAdoptFinalizedFreshTree(t *testing.T) {
	tr := New()
	blocks := chainBlocks(20, 3)
	window := blocks[12:] // rounds 13..20; parent of 13 unknown to tr
	added, err := tr.AdoptFinalized(window)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != len(window) {
		t.Fatalf("added %d blocks, want %d", len(added), len(window))
	}
	if tr.FinalizedRound() != 20 {
		t.Fatalf("FinalizedRound = %d, want 20", tr.FinalizedRound())
	}
	for _, b := range window {
		if !tr.IsFinalized(b.ID()) || !tr.IsNotarized(b.ID()) {
			t.Fatalf("round %d not finalized+notarized after adopt", b.Round)
		}
	}
	// A later Finalize joining the adopted tip works as usual.
	next := types.NewBlock(21, 0, 0, window[len(window)-1].ID(), types.BytesPayload([]byte{9}))
	tr.Add(next)
	chain, err := tr.Finalize(next.ID())
	if err != nil || len(chain) != 1 {
		t.Fatalf("Finalize after adopt: chain=%d err=%v", len(chain), err)
	}
}

// TestAdoptFinalizedOnPopulatedTree: adoption on a live tree returns only
// the rounds above the old finalized height and tolerates overlap that
// agrees with the prefix.
func TestAdoptFinalizedOnPopulatedTree(t *testing.T) {
	tr := New()
	blocks := chainBlocks(10, 4)
	for _, b := range blocks[:6] {
		tr.Add(b)
	}
	if _, err := tr.Finalize(blocks[3].ID()); err != nil {
		t.Fatal(err)
	}
	// Window overlaps rounds 3..4 (finalized) and extends to 10.
	added, err := tr.AdoptFinalized(blocks[2:])
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 6 {
		t.Fatalf("added %d blocks, want 6 (rounds 5..10)", len(added))
	}
	if added[0].Round != 5 || tr.FinalizedRound() != 10 {
		t.Fatalf("adopt result wrong: first=%d fin=%d", added[0].Round, tr.FinalizedRound())
	}
}

// TestAdoptFinalizedRejections: stale windows adopt to nothing; broken or
// conflicting windows are refused.
func TestAdoptFinalizedRejections(t *testing.T) {
	tr := New()
	blocks := chainBlocks(8, 5)
	if _, err := tr.AdoptFinalized(blocks); err != nil {
		t.Fatal(err)
	}
	// Stale: tip at or below the finalized round.
	added, err := tr.AdoptFinalized(blocks[2:5])
	if err != nil || added != nil {
		t.Fatalf("stale window: added=%v err=%v", added, err)
	}
	// Broken parent links.
	fork := chainBlocks(12, 6)
	if _, err := tr.AdoptFinalized([]*types.Block{fork[9], fork[11]}); err == nil {
		t.Fatal("discontiguous window accepted")
	}
	// Conflicting overlap with the finalized prefix.
	if _, err := tr.AdoptFinalized(fork[5:]); !errors.Is(err, ErrSafetyViolation) {
		t.Fatalf("conflicting window: err=%v, want safety violation", err)
	}
	// Nil block.
	if _, err := tr.AdoptFinalized([]*types.Block{nil}); err == nil {
		t.Fatal("nil block accepted")
	}
}

// TestPruneDeep: block bodies below the floor are dropped while the
// finalized ID map (conflict detection, FinalizedChain) survives.
func TestPruneDeep(t *testing.T) {
	tr := New()
	blocks := chainBlocks(30, 7)
	for _, b := range blocks {
		tr.Add(b)
	}
	if _, err := tr.Finalize(blocks[len(blocks)-1].ID()); err != nil {
		t.Fatal(err)
	}
	tr.PruneDeep(21)
	for _, b := range blocks[:20] {
		if tr.Contains(b.ID()) {
			t.Fatalf("round %d block survived deep prune", b.Round)
		}
		if id, ok := tr.FinalizedAt(b.Round); !ok || id != b.ID() {
			t.Fatalf("round %d finalized ID lost by deep prune", b.Round)
		}
	}
	for _, b := range blocks[20:] {
		if !tr.Contains(b.ID()) || !tr.IsFinalized(b.ID()) {
			t.Fatalf("round %d inside window damaged by deep prune", b.Round)
		}
	}
	if !tr.Contains(types.Genesis().ID()) {
		t.Fatal("genesis dropped by deep prune")
	}
	if got := len(tr.FinalizedChain()); got != 30 {
		t.Fatalf("FinalizedChain has %d entries after deep prune, want 30", got)
	}
	// Conflict detection below the floor still works: a divergent window
	// overlapping deep-pruned rounds must be refused.
	evil := chainBlocks(40, 8)
	if _, err := tr.AdoptFinalized(evil[2:]); !errors.Is(err, ErrSafetyViolation) {
		t.Fatalf("conflict below deep-pruned floor: err=%v", err)
	}
}
