// Package blocktree maintains the tree of blocks a replica has received:
// parent links from a genesis root, notarization marks, the finalized
// chain, and the implicit-finalization rule (finalizing a block finalizes
// all its ancestors back to the previous finalized block, paper section 4).
//
// The tree is deliberately protocol-agnostic: Banyan and ICC place one
// block per round-height, HotStuff chains blocks by quorum certificates,
// Streamlet chains blocks across non-contiguous epochs. All of them share
// this store.
package blocktree

import (
	"errors"
	"fmt"
	"sort"

	"banyan/internal/types"
)

// ErrMissingAncestor reports a finalization whose chain to the previous
// finalized block cannot be resolved yet; callers buffer and retry after
// more blocks arrive.
var ErrMissingAncestor = errors.New("blocktree: missing ancestor")

// ErrSafetyViolation reports two different finalized blocks at one height —
// the condition the protocol's safety property forbids. Integration tests
// assert it never occurs; a production node would halt on it.
var ErrSafetyViolation = errors.New("blocktree: conflicting finalization")

// Tree stores a replica's view of the block tree.
type Tree struct {
	genesis *types.Block

	blocks    map[types.BlockID]*types.Block
	byRound   map[types.Round][]types.BlockID
	notarized map[types.BlockID]bool

	finalized      map[types.Round]types.BlockID
	finalizedRound types.Round // highest explicitly/implicitly finalized round (kMax)

	lengths map[types.BlockID]int // memoized chain length (genesis = 0)
}

// New creates a tree rooted at the canonical genesis block, which is
// notarized and finalized by definition.
func New() *Tree {
	g := types.Genesis()
	t := &Tree{
		genesis:   g,
		blocks:    make(map[types.BlockID]*types.Block),
		byRound:   make(map[types.Round][]types.BlockID),
		notarized: make(map[types.BlockID]bool),
		finalized: make(map[types.Round]types.BlockID),
		lengths:   make(map[types.BlockID]int),
	}
	id := g.ID()
	t.blocks[id] = g
	t.byRound[0] = []types.BlockID{id}
	t.notarized[id] = true
	t.finalized[0] = id
	t.lengths[id] = 0
	return t
}

// Genesis returns the genesis block.
func (t *Tree) Genesis() *types.Block { return t.genesis }

// Add stores a block. Adding the same block twice is a no-op. The parent
// does not need to be present yet (messages can arrive out of order).
func (t *Tree) Add(b *types.Block) {
	id := b.ID()
	if _, ok := t.blocks[id]; ok {
		return
	}
	t.blocks[id] = b
	t.byRound[b.Round] = append(t.byRound[b.Round], id)
}

// Block looks up a block by ID.
func (t *Tree) Block(id types.BlockID) (*types.Block, bool) {
	b, ok := t.blocks[id]
	return b, ok
}

// Contains reports whether the block is stored.
func (t *Tree) Contains(id types.BlockID) bool {
	_, ok := t.blocks[id]
	return ok
}

// AtRound returns the IDs of all stored blocks at a round, in insertion
// order.
func (t *Tree) AtRound(round types.Round) []types.BlockID {
	ids := t.byRound[round]
	out := make([]types.BlockID, len(ids))
	copy(out, ids)
	return out
}

// MarkNotarized records that a notarization certificate exists for the
// block. The block itself may arrive later.
func (t *Tree) MarkNotarized(id types.BlockID) {
	t.notarized[id] = true
}

// IsNotarized reports whether the block is known notarized.
func (t *Tree) IsNotarized(id types.BlockID) bool { return t.notarized[id] }

// NotarizedAt returns the stored blocks at a round that are notarized.
func (t *Tree) NotarizedAt(round types.Round) []*types.Block {
	var out []*types.Block
	for _, id := range t.byRound[round] {
		if t.notarized[id] {
			out = append(out, t.blocks[id])
		}
	}
	return out
}

// FinalizedRound returns the highest finalized round (kMax).
func (t *Tree) FinalizedRound() types.Round { return t.finalizedRound }

// FinalizedAt returns the finalized block ID at a round, if any.
func (t *Tree) FinalizedAt(round types.Round) (types.BlockID, bool) {
	id, ok := t.finalized[round]
	return id, ok
}

// IsFinalized reports whether the block is on the finalized chain.
func (t *Tree) IsFinalized(id types.BlockID) bool {
	b, ok := t.blocks[id]
	if !ok {
		return false
	}
	fid, ok := t.finalized[b.Round]
	return ok && fid == id
}

// Finalize marks the block explicitly finalized and implicitly finalizes
// its ancestors down to the previous finalized block. It returns the newly
// finalized blocks in chain order (oldest first).
//
// Errors: ErrMissingAncestor if the chain back to the finalized prefix
// cannot be resolved (caller should retry later), ErrSafetyViolation if the
// chain contradicts an already-finalized block.
func (t *Tree) Finalize(id types.BlockID) ([]*types.Block, error) {
	b, ok := t.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: block %s not stored", ErrMissingAncestor, id)
	}
	if b.Round <= t.finalizedRound {
		// Already covered by the finalized prefix: consistent (no-op) if this
		// exact block is the finalized one at its round; any other block at
		// or below the finalized height is a conflicting chain.
		if fid, ok := t.finalized[b.Round]; ok && fid == id {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: round %d conflicts with finalized prefix (got %s)",
			ErrSafetyViolation, b.Round, id)
	}

	// Walk ancestors until we reach the finalized prefix. Rounds need not be
	// contiguous (Streamlet chains across epochs), so we stop at the first
	// finalized ancestor and then require it to be the *tip* of the finalized
	// chain — a lower finalized ancestor would mean this chain bypasses an
	// already-finalized block.
	var chain []*types.Block
	cur := b
	for {
		chain = append(chain, cur)
		parent, ok := t.blocks[cur.Parent]
		if !ok {
			return nil, fmt.Errorf("%w: parent %s of %s", ErrMissingAncestor, cur.Parent, cur.ID())
		}
		if t.IsFinalized(parent.ID()) {
			if parent.Round != t.finalizedRound {
				return nil, fmt.Errorf("%w: chain to %s joins finalized prefix at round %d, tip is %d",
					ErrSafetyViolation, id, parent.Round, t.finalizedRound)
			}
			break
		}
		cur = parent
	}

	// Commit the walk: oldest first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	for _, blk := range chain {
		t.finalized[blk.Round] = blk.ID()
		// A finalized block is by definition notarized.
		t.notarized[blk.ID()] = true
	}
	if last := chain[len(chain)-1]; last.Round > t.finalizedRound {
		t.finalizedRound = last.Round
	}
	return chain, nil
}

// RestoreFinalized seeds a fresh tree from a finalized chain window
// recovered from a WAL checkpoint: blocks in ascending round order,
// contiguous by parent links. Every block is stored, marked notarized
// and finalized (finalized blocks are both by definition), and the
// finalized height advances to the window's tip, so a later Finalize
// whose chain joins the restored tip succeeds exactly as it would have
// on the pre-crash tree. The window's oldest parent is allowed to be
// absent — history below the checkpoint floor is gone by design, and
// finalizations that would need it surface as ErrMissingAncestor (the
// sync subprotocol's cue), never as silent acceptance.
//
// Restore is only valid on a tree that has seen no blocks beyond genesis;
// restoring onto a populated tree is a programming error and is refused.
func (t *Tree) RestoreFinalized(chain []*types.Block) error {
	if len(t.blocks) > 1 || t.finalizedRound != 0 {
		return errors.New("blocktree: RestoreFinalized on a non-empty tree")
	}
	for i, b := range chain {
		if b == nil {
			return fmt.Errorf("blocktree: restore chain has nil block at %d", i)
		}
		if i > 0 {
			prev := chain[i-1]
			if b.Parent != prev.ID() || b.Round <= prev.Round {
				return fmt.Errorf("blocktree: restore chain breaks at round %d", b.Round)
			}
		}
		id := b.ID()
		t.blocks[id] = b
		t.byRound[b.Round] = append(t.byRound[b.Round], id)
		t.notarized[id] = true
		t.finalized[b.Round] = id
		if b.Round > t.finalizedRound {
			t.finalizedRound = b.Round
		}
	}
	return nil
}

// AdoptFinalized grafts a finalized chain window received from a peer
// (state sync) onto a live tree. Unlike RestoreFinalized it works on a
// populated tree: the window replaces whatever unfinalized guesswork the
// tree held for those rounds as the canonical finalized chain. The caller
// has already verified the window cryptographically (block signatures plus
// a quorum finalization certificate covering the tip); this method checks
// only structure and consistency:
//
//   - blocks ascend in contiguous parent-linked order (like RestoreFinalized);
//   - any overlap with the already-finalized prefix must agree block for
//     block, otherwise ErrSafetyViolation (a quorum-certified chain that
//     contradicts our finalized prefix is the protocol's fatal condition);
//   - a window whose tip is at or below the current finalized round is
//     stale and adopts to nothing.
//
// Like a checkpoint restore, the window's oldest parent may be absent:
// history below the window floor stays unknown, which is fine because the
// finalized prefix is append-only from here on.
//
// It returns the newly finalized blocks (rounds strictly above the old
// finalized round) in chain order, for the host's Commit stream.
func (t *Tree) AdoptFinalized(chain []*types.Block) ([]*types.Block, error) {
	for i, b := range chain {
		if b == nil {
			return nil, fmt.Errorf("blocktree: adopt chain has nil block at %d", i)
		}
		if i > 0 {
			prev := chain[i-1]
			if b.Parent != prev.ID() || b.Round <= prev.Round {
				return nil, fmt.Errorf("blocktree: adopt chain breaks at round %d", b.Round)
			}
		}
	}
	if len(chain) == 0 || chain[len(chain)-1].Round <= t.finalizedRound {
		return nil, nil
	}
	// Overlap with the finalized prefix must agree before anything mutates.
	for _, b := range chain {
		if b.Round > t.finalizedRound {
			continue
		}
		if fid, ok := t.finalized[b.Round]; ok && fid != b.ID() {
			return nil, fmt.Errorf("%w: adopted chain disagrees at round %d",
				ErrSafetyViolation, b.Round)
		}
	}
	prevFinal := t.finalizedRound
	var added []*types.Block
	for _, b := range chain {
		id := b.ID()
		if _, ok := t.blocks[id]; !ok {
			t.blocks[id] = b
			t.byRound[b.Round] = append(t.byRound[b.Round], id)
		}
		t.notarized[id] = true
		t.finalized[b.Round] = id
		if b.Round > prevFinal {
			added = append(added, t.blocks[id])
		}
	}
	t.finalizedRound = chain[len(chain)-1].Round
	return added, nil
}

// Length returns the number of chain edges from the block to genesis, or
// -1 if the chain is not fully connected. Used by Streamlet's
// longest-notarized-chain rule.
func (t *Tree) Length(id types.BlockID) int {
	if l, ok := t.lengths[id]; ok {
		return l
	}
	b, ok := t.blocks[id]
	if !ok {
		return -1
	}
	pl := t.Length(b.Parent)
	if pl < 0 {
		return -1
	}
	l := pl + 1
	t.lengths[id] = l
	return l
}

// ChainTo returns the chain from (exclusive) the finalized prefix to the
// given block, oldest first, or nil if not fully connected.
func (t *Tree) ChainTo(id types.BlockID) []*types.Block {
	var chain []*types.Block
	cur, ok := t.blocks[id]
	for ok {
		if t.IsFinalized(cur.ID()) {
			break
		}
		chain = append(chain, cur)
		cur, ok = t.blocks[cur.Parent]
	}
	if !ok {
		return nil
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// Prune drops blocks in rounds strictly below keepFrom that are not on the
// finalized chain, plus stale memoized lengths, bounding long-run memory.
// Finalized blocks are kept (they form the output history unless the
// application has archived them elsewhere).
func (t *Tree) Prune(keepFrom types.Round) {
	for round, ids := range t.byRound {
		if round >= keepFrom {
			continue
		}
		kept := ids[:0]
		for _, id := range ids {
			if t.finalized[round] == id {
				kept = append(kept, id)
				continue
			}
			delete(t.blocks, id)
			delete(t.notarized, id)
			delete(t.lengths, id)
		}
		if len(kept) == 0 {
			delete(t.byRound, round)
		} else {
			t.byRound[round] = kept
		}
	}
}

// PruneDeep is Prune plus eviction of finalized *blocks* below keepFrom:
// only the finalized ID map survives (so FinalizedChain, FinalizedAt and
// conflict detection stay exact) while the block bodies are dropped.
// Genesis is always kept. After a deep prune the tree can no longer serve
// chain-suffix sync below keepFrom — peers that far behind recover via
// snapshot state sync instead, which is exactly the trade that bounds a
// long-running replica's memory by the window size rather than by chain
// length.
func (t *Tree) PruneDeep(keepFrom types.Round) {
	t.Prune(keepFrom)
	for round, ids := range t.byRound {
		if round >= keepFrom || round == 0 {
			continue
		}
		for _, id := range ids {
			delete(t.blocks, id)
			delete(t.notarized, id)
			delete(t.lengths, id)
		}
		delete(t.byRound, round)
	}
}

// Stats summarizes the tree for diagnostics.
type Stats struct {
	Blocks         int
	Notarized      int
	FinalizedRound types.Round
	MaxRound       types.Round
}

// Stats returns store counters.
func (t *Tree) Stats() Stats {
	s := Stats{
		Blocks:         len(t.blocks),
		Notarized:      len(t.notarized),
		FinalizedRound: t.finalizedRound,
	}
	for r := range t.byRound {
		if r > s.MaxRound {
			s.MaxRound = r
		}
	}
	return s
}

// FinalizedChain returns the finalized block IDs from round 1 up to kMax in
// order. Rounds with no explicitly recorded block (possible only after
// pruning gaps, which Finalize prevents) are skipped.
func (t *Tree) FinalizedChain() []types.BlockID {
	rounds := make([]types.Round, 0, len(t.finalized))
	for r := range t.finalized {
		if r == 0 {
			continue
		}
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	out := make([]types.BlockID, 0, len(rounds))
	for _, r := range rounds {
		out = append(out, t.finalized[r])
	}
	return out
}
