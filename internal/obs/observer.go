package obs

import (
	"sync"
	"time"

	"banyan/internal/metrics"
	"banyan/internal/types"
)

// Canonical histogram and gauge names. Instruments live in the shared
// metrics.Registry under these names (the Prometheus exporter prefixes
// them with "banyan_" and suffixes histograms with "_seconds").
const (
	HistCommitLatency = "commit_latency"
	HistPreverifyWait = "preverify_wait"
	HistVerifyTime    = "verify_time"
	HistWALFlush      = "wal_flush"
	HistDissemFetch   = "dissem_fetch"
	HistDeliveryWait  = "delivery_wait"

	GaugeRound            = "round"
	GaugeEpoch            = "epoch"
	GaugeMempoolDepth     = "mempool_depth"
	GaugeDissemStoreBytes = "dissem_store_bytes"
)

// Observer bundles one replica's observability instruments: the shared
// registry, the lifecycle tracer, the slow-round detector, and hoisted
// pointers to every hot-path histogram and gauge so instrumented code
// pays a field load plus an atomic add per event — never a registry
// lookup (the satellite-1 discipline).
//
// A nil *Observer is the "observability off" state: every method is a
// nil-safe no-op, and the hot paths of core/node/wal skip their
// time.Now() calls entirely behind one branch.
type Observer struct {
	Registry *metrics.Registry
	Tracer   *Tracer
	Detector *SlowRoundDetector

	CommitLatency *metrics.Histogram
	PreverifyWait *metrics.Histogram
	VerifyTime    *metrics.Histogram
	WALFlush      *metrics.Histogram
	DissemFetch   *metrics.Histogram
	DeliveryWait  *metrics.Histogram

	Round            *metrics.Gauge
	Epoch            *metrics.Gauge
	MempoolDepth     *metrics.Gauge
	DissemStoreBytes *metrics.Gauge

	collectMu sync.Mutex
	collect   []func(*Observer)
}

// Options configures New.
type Options struct {
	// Registry to register instruments in; nil creates a private one.
	Registry *metrics.Registry
	// TraceEvents is the tracer ring capacity (0 = DefaultTraceEvents).
	TraceEvents int
	// SlowK is the slow-round multiplier k (0 = DefaultSlowK).
	SlowK float64
}

// New builds an Observer with all instruments registered.
func New(opts Options) *Observer {
	reg := opts.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	o := &Observer{
		Registry:         reg,
		Tracer:           NewTracer(opts.TraceEvents),
		CommitLatency:    reg.Histogram(HistCommitLatency),
		PreverifyWait:    reg.Histogram(HistPreverifyWait),
		VerifyTime:       reg.Histogram(HistVerifyTime),
		WALFlush:         reg.Histogram(HistWALFlush),
		DissemFetch:      reg.Histogram(HistDissemFetch),
		DeliveryWait:     reg.Histogram(HistDeliveryWait),
		Round:            reg.Gauge(GaugeRound),
		Epoch:            reg.Gauge(GaugeEpoch),
		MempoolDepth:     reg.Gauge(GaugeMempoolDepth),
		DissemStoreBytes: reg.Gauge(GaugeDissemStoreBytes),
	}
	o.Detector = NewSlowRoundDetector(opts.SlowK, o.Tracer)
	return o
}

// OnCollect registers fn to run before every scrape — the hook replicas
// use to refresh pull-style gauges (mempool depth, dissem store bytes)
// from sources that are safe to read from the scrape goroutine.
func (o *Observer) OnCollect(fn func(*Observer)) {
	if o == nil || fn == nil {
		return
	}
	o.collectMu.Lock()
	o.collect = append(o.collect, fn)
	o.collectMu.Unlock()
}

// Collect runs the registered collect hooks.
func (o *Observer) Collect() {
	if o == nil {
		return
	}
	o.collectMu.Lock()
	hooks := make([]func(*Observer), len(o.collect))
	copy(hooks, o.collect)
	o.collectMu.Unlock()
	for _, fn := range hooks {
		fn(o)
	}
}

// ObserveCommit records a finalized round: the commit-latency histogram,
// the finalized lifecycle mark, and the slow-round detector (which
// captures the round's trace spans when flagged).
func (o *Observer) ObserveCommit(round types.Round, block types.BlockID, latency time.Duration, now time.Time) {
	if o == nil {
		return
	}
	o.CommitLatency.Record(latency)
	o.Tracer.Mark(round, block, StageFinalized, now)
	o.Detector.Observe(round, latency)
}

// DefaultSlowK is the slow-round threshold multiplier: a round is
// flagged when its commit latency exceeds k times the EWMA of recent
// commit latencies.
const DefaultSlowK = 3.0

// ewmaAlpha weights the latest observation; ~1/16 gives a window of a
// few dozen rounds.
const ewmaAlpha = 1.0 / 16

// slowWarmup is how many rounds feed the EWMA before flagging begins
// (the first rounds of a run are legitimately slow).
const slowWarmup = 8

// maxSlowRounds bounds the retained flagged-round reports.
const maxSlowRounds = 32

// SlowRound is one flagged round: its latency, the EWMA it was judged
// against, and the trace spans the tracer held for it at flag time.
type SlowRound struct {
	Round   types.Round   `json:"round"`
	Latency time.Duration `json:"latency_ns"`
	EWMA    time.Duration `json:"ewma_ns"`
	Events  []Event       `json:"events,omitempty"`
}

// SlowRoundDetector flags rounds whose commit latency exceeds k×EWMA of
// recent commit latencies and snapshots their trace spans so the cause
// (verify stall, WAL flush, fetch miss) is attributable after the fact.
// Safe for concurrent use; a nil detector is a no-op.
type SlowRoundDetector struct {
	mu     sync.Mutex
	k      float64
	ewma   float64 // ns
	n      int
	tracer *Tracer
	slow   []SlowRound
}

// NewSlowRoundDetector builds a detector with threshold multiplier k
// (DefaultSlowK if k <= 0), capturing spans from tracer when flagging.
func NewSlowRoundDetector(k float64, tracer *Tracer) *SlowRoundDetector {
	if k <= 0 {
		k = DefaultSlowK
	}
	return &SlowRoundDetector{k: k, tracer: tracer}
}

// Observe feeds one round's commit latency; it reports whether the round
// was flagged as slow.
func (d *SlowRoundDetector) Observe(round types.Round, latency time.Duration) bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	ns := float64(latency)
	flagged := false
	if d.n >= slowWarmup && d.ewma > 0 && ns > d.k*d.ewma {
		flagged = true
		sr := SlowRound{Round: round, Latency: latency, EWMA: time.Duration(d.ewma)}
		if len(d.slow) == maxSlowRounds {
			copy(d.slow, d.slow[1:])
			d.slow = d.slow[:maxSlowRounds-1]
		}
		d.slow = append(d.slow, sr)
	}
	if d.n == 0 {
		d.ewma = ns
	} else {
		d.ewma += ewmaAlpha * (ns - d.ewma)
	}
	d.n++
	idx := len(d.slow) - 1
	d.mu.Unlock()
	// Capture spans outside the detector lock: the tracer has its own.
	if flagged && d.tracer != nil {
		events := d.tracer.EventsForRound(round)
		d.mu.Lock()
		if idx >= 0 && idx < len(d.slow) && d.slow[idx].Round == round {
			d.slow[idx].Events = events
		}
		d.mu.Unlock()
	}
	return flagged
}

// EWMA returns the current latency EWMA.
func (d *SlowRoundDetector) EWMA() time.Duration {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return time.Duration(d.ewma)
}

// Slow returns the retained flagged rounds, oldest first.
func (d *SlowRoundDetector) Slow() []SlowRound {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]SlowRound, len(d.slow))
	copy(out, d.slow)
	return out
}
