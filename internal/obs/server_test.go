package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"banyan/internal/types"
)

// TestServeEndpoints starts a live endpoint on an ephemeral port and
// exercises every route the way an operator (or the CI smoke) would:
// Prometheus text on /metrics with collect hooks applied, Chrome-trace
// JSON on /trace, summaries, slow rounds, and the pprof surface.
func TestServeEndpoints(t *testing.T) {
	o := New(Options{})
	o.Registry.Counter("transport_dropped").Add(3)
	o.CommitLatency.Record(250 * time.Millisecond)
	o.CommitLatency.Record(300 * time.Millisecond)
	o.WALFlush.Record(2 * time.Millisecond)
	o.OnCollect(func(o *Observer) { o.MempoolDepth.Set(11) })
	blk := types.BlockID{0xde, 0xad}
	o.Tracer.Mark(4, blk, StageProposalReceived, time.Unix(1, 0))
	o.Tracer.Span(4, blk, SpanVerify, time.Unix(1, 1000), time.Millisecond)
	o.Tracer.Mark(4, blk, StageFinalized, time.Unix(2, 0))

	srv, err := Serve("127.0.0.1:0", o, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	metricsBody := get("/metrics")
	for _, want := range []string{
		"banyan_commit_latency_seconds_bucket",
		"banyan_commit_latency_seconds_count 2",
		"banyan_wal_flush_seconds_count 1",
		"banyan_transport_dropped 3",
		"banyan_mempool_depth 11", // proves the collect hook ran on scrape
		"# TYPE banyan_round gauge",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metricsBody)
		}
	}

	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(get("/trace")), &trace); err != nil {
		t.Fatalf("/trace not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) != 3 {
		t.Errorf("/trace has %d events, want 3", len(trace.TraceEvents))
	}

	var sums []RoundSummary
	if err := json.Unmarshal([]byte(get("/trace/summary")), &sums); err != nil {
		t.Fatalf("/trace/summary not valid JSON: %v", err)
	}
	if len(sums) != 1 || sums[0].Round != 4 || sums[0].CommitNs != int64(time.Second) {
		t.Errorf("/trace/summary = %+v", sums)
	}

	var slow struct {
		EWMANs int64       `json:"ewma_ns"`
		Slow   []SlowRound `json:"slow"`
	}
	if err := json.Unmarshal([]byte(get("/slow")), &slow); err != nil {
		t.Fatalf("/slow not valid JSON: %v", err)
	}

	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

// TestServerNilSafe checks the nil server (obs endpoint disabled).
func TestServerNilSafe(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Fatal("nil server has an address")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeBadAddr checks listen errors surface instead of panicking.
func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bogus", New(Options{}), 0); err == nil {
		t.Fatal("expected listen error")
	}
}

// TestPrometheusSanitize checks non-metric characters are mapped into
// the exposition charset.
func TestPrometheusSanitize(t *testing.T) {
	if got := sanitize("dissem.store-bytes"); got != "dissem_store_bytes" {
		t.Fatalf("sanitize = %q", got)
	}
}
