package obs

import (
	"testing"
	"time"

	"banyan/internal/metrics"
	"banyan/internal/types"
)

// TestObserverNew checks every hoisted instrument is wired to the
// registry under its canonical name, so the hot-path field loads and the
// Prometheus exporter observe the same histograms.
func TestObserverNew(t *testing.T) {
	o := New(Options{})
	if o.Registry == nil || o.Tracer == nil || o.Detector == nil {
		t.Fatal("observer missing a component")
	}
	o.CommitLatency.Record(time.Millisecond)
	o.VerifyTime.Record(time.Microsecond)
	o.Round.Set(42)
	if got := o.Registry.Histograms()[HistCommitLatency].Count; got != 1 {
		t.Errorf("commit_latency not in registry (count %d)", got)
	}
	if got := o.Registry.Gauges()[GaugeRound]; got != 42 {
		t.Errorf("round gauge = %d, want 42", got)
	}
	for _, name := range []string{
		HistCommitLatency, HistPreverifyWait, HistVerifyTime,
		HistWALFlush, HistDissemFetch, HistDeliveryWait,
	} {
		if _, ok := o.Registry.Histograms()[name]; !ok {
			t.Errorf("histogram %q not registered", name)
		}
	}

	// A shared registry is adopted, not replaced.
	reg := metrics.NewRegistry()
	reg.Counter("transport_dropped").Inc()
	o2 := New(Options{Registry: reg})
	if o2.Registry != reg {
		t.Fatal("observer did not adopt the shared registry")
	}
	if o2.Registry.Snapshot()["transport_dropped"] != 1 {
		t.Fatal("pre-existing counters lost")
	}
}

// TestObserveCommit checks one finalization feeds all three consumers:
// histogram, tracer, detector.
func TestObserveCommit(t *testing.T) {
	o := New(Options{})
	now := time.Unix(0, 5000)
	o.ObserveCommit(7, types.BlockID{9}, 300*time.Millisecond, now)
	if o.CommitLatency.Count() != 1 {
		t.Error("commit latency not recorded")
	}
	ev := o.Tracer.EventsForRound(7)
	if len(ev) != 1 || ev[0].Stage != StageFinalized || ev[0].TS != 5000 {
		t.Errorf("finalized mark = %+v", ev)
	}
	if o.Detector.EWMA() != 300*time.Millisecond {
		t.Errorf("detector EWMA = %v, want 300ms after first observation", o.Detector.EWMA())
	}

	var nilO *Observer
	nilO.ObserveCommit(7, types.BlockID{}, time.Second, now) // must not panic
	nilO.Collect()
	nilO.OnCollect(func(*Observer) {})
}

// TestCollectHooks checks scrape-time gauge refresh: hooks run on
// Collect in registration order and see the observer.
func TestCollectHooks(t *testing.T) {
	o := New(Options{})
	depth := int64(17)
	o.OnCollect(func(o *Observer) { o.MempoolDepth.Set(depth) })
	o.OnCollect(func(o *Observer) { o.DissemStoreBytes.Set(depth * 2) })
	o.Collect()
	if got := o.MempoolDepth.Load(); got != 17 {
		t.Errorf("mempool depth = %d, want 17", got)
	}
	if got := o.DissemStoreBytes.Load(); got != 34 {
		t.Errorf("dissem store bytes = %d, want 34", got)
	}
	depth = 99
	o.Collect()
	if got := o.MempoolDepth.Load(); got != 99 {
		t.Errorf("gauge not refreshed on second collect: %d", got)
	}
}

// TestSlowRoundDetector checks the flagging contract: nothing flags
// during warmup, a round over k×EWMA flags afterwards with its trace
// spans captured, and ordinary rounds keep the EWMA tracking.
func TestSlowRoundDetector(t *testing.T) {
	tr := NewTracer(64)
	d := NewSlowRoundDetector(3.0, tr)

	// Warmup: even a huge outlier must not flag.
	for i := 0; i < slowWarmup; i++ {
		lat := 100 * time.Millisecond
		if i == 2 {
			lat = 100 * time.Second
		}
		if d.Observe(types.Round(i), lat) {
			t.Fatalf("round %d flagged during warmup", i)
		}
	}
	// Settle the EWMA back near 100ms (the warmup outlier decays by
	// (1-alpha)^n, so give it enough rounds to wash out).
	for i := slowWarmup; i < slowWarmup+200; i++ {
		if d.Observe(types.Round(i), 100*time.Millisecond) {
			t.Fatalf("steady round %d flagged (ewma %v)", i, d.EWMA())
		}
	}
	ewma := d.EWMA()
	if ewma < 90*time.Millisecond || ewma > 110*time.Millisecond {
		t.Fatalf("ewma = %v, want ~100ms", ewma)
	}

	// A 2× round stays under k=3; a 10× round flags.
	if d.Observe(200, 2*ewma) {
		t.Fatal("2x round flagged with k=3")
	}
	slowRound := types.Round(201)
	tr.Mark(slowRound, types.BlockID{1}, StageProposalReceived, time.Unix(0, 1))
	tr.Span(slowRound, types.BlockID{1}, SpanDissemFetch, time.Unix(0, 2), time.Second)
	if !d.Observe(slowRound, 10*ewma) {
		t.Fatal("10x round not flagged")
	}
	slow := d.Slow()
	if len(slow) != 1 {
		t.Fatalf("%d slow rounds retained, want 1", len(slow))
	}
	sr := slow[0]
	if sr.Round != slowRound || sr.Latency != 10*ewma {
		t.Fatalf("slow round = %+v", sr)
	}
	if sr.EWMA <= 0 {
		t.Error("flagged round lost the EWMA it was judged against")
	}
	if len(sr.Events) != 2 {
		t.Errorf("flagged round captured %d trace events, want 2", len(sr.Events))
	}

	// Retention is bounded: flood with slow rounds, keep the newest.
	for i := 0; i < maxSlowRounds+10; i++ {
		d.Observe(types.Round(1000+i), 100*ewma)
		d.Observe(types.Round(2000+i), ewma/2) // pull the EWMA back down
	}
	if got := len(d.Slow()); got > maxSlowRounds {
		t.Fatalf("retained %d slow rounds, cap %d", got, maxSlowRounds)
	}
}

// TestSlowRoundDetectorDefaults checks k and nil handling.
func TestSlowRoundDetectorDefaults(t *testing.T) {
	d := NewSlowRoundDetector(0, nil)
	if d.k != DefaultSlowK {
		t.Fatalf("k = %v, want default %v", d.k, DefaultSlowK)
	}
	var nilD *SlowRoundDetector
	if nilD.Observe(1, time.Second) {
		t.Fatal("nil detector flagged")
	}
	if nilD.EWMA() != 0 || nilD.Slow() != nil {
		t.Fatal("nil detector not inert")
	}
}
