package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"banyan/internal/types"
)

func ts(ns int64) time.Time { return time.Unix(0, ns) }

// TestTracerRingWrap checks the fixed-capacity ring: before wrap Events
// returns exactly what was appended oldest-first; after wrap it returns
// the newest capacity events, still oldest-first.
func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 3; i++ {
		tr.Mark(types.Round(i), types.BlockID{byte(i)}, StageProposalReceived, ts(int64(i+1)))
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("pre-wrap: %d events, want 3", len(ev))
	}
	for i, e := range ev {
		if e.Round != types.Round(i) || e.TS != int64(i+1) {
			t.Fatalf("pre-wrap event %d = %+v, want round %d ts %d", i, e, i, i+1)
		}
	}
	for i := 3; i < 10; i++ {
		tr.Mark(types.Round(i), types.BlockID{byte(i)}, StageProposalReceived, ts(int64(i+1)))
	}
	ev = tr.Events()
	if len(ev) != 4 {
		t.Fatalf("post-wrap: %d events, want capacity 4", len(ev))
	}
	for i, e := range ev {
		want := types.Round(6 + i) // rounds 6..9 survive
		if e.Round != want {
			t.Fatalf("post-wrap event %d round = %d, want %d", i, e.Round, want)
		}
	}
}

// TestTracerSpanClampsNegative checks a negative duration records as 0
// (a span, even mis-measured, must not corrupt summaries).
func TestTracerSpanClampsNegative(t *testing.T) {
	tr := NewTracer(4)
	tr.Span(1, types.BlockID{1}, SpanVerify, ts(100), -5*time.Second)
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Dur != 0 {
		t.Fatalf("negative span recorded as %+v, want Dur 0", ev)
	}
}

// TestTracerEventsForRound checks per-round filtering.
func TestTracerEventsForRound(t *testing.T) {
	tr := NewTracer(16)
	for r := 0; r < 4; r++ {
		tr.Mark(types.Round(r), types.BlockID{byte(r)}, StageProposalReceived, ts(int64(10*r+1)))
		tr.Span(types.Round(r), types.BlockID{byte(r)}, SpanVerify, ts(int64(10*r+2)), 3)
	}
	ev := tr.EventsForRound(2)
	if len(ev) != 2 {
		t.Fatalf("round 2: %d events, want 2", len(ev))
	}
	for _, e := range ev {
		if e.Round != 2 {
			t.Fatalf("stray round %d in filter", e.Round)
		}
	}
}

// TestTracerSummaries checks the per-round digest: CommitNs is
// finalized−proposal_received, span time is totalled per stage, and
// rounds come out ascending.
func TestTracerSummaries(t *testing.T) {
	tr := NewTracer(64)
	blk := types.BlockID{7}
	// Round 5 out of order, complete lifecycle.
	tr.Mark(5, blk, StageProposalReceived, ts(1000))
	tr.Span(5, blk, SpanVerify, ts(1100), 50)
	tr.Span(5, blk, SpanVerify, ts(1200), 70)
	tr.Span(5, blk, SpanWALFlush, ts(1300), 30)
	tr.Mark(5, blk, StageFinalized, ts(4000))
	// Round 3: no finalization, no CommitNs.
	tr.Mark(3, types.BlockID{3}, StageProposalReceived, ts(500))

	sums := tr.Summaries()
	if len(sums) != 2 {
		t.Fatalf("%d summaries, want 2", len(sums))
	}
	if sums[0].Round != 3 || sums[1].Round != 5 {
		t.Fatalf("rounds not ascending: %d, %d", sums[0].Round, sums[1].Round)
	}
	if sums[0].CommitNs != 0 {
		t.Errorf("unfinalized round has CommitNs %d", sums[0].CommitNs)
	}
	s5 := sums[1]
	if s5.CommitNs != 3000 {
		t.Errorf("CommitNs = %d, want 3000 (finalized 4000 − received 1000)", s5.CommitNs)
	}
	if s5.Events != 5 {
		t.Errorf("events = %d, want 5", s5.Events)
	}
	if got := s5.SpanTotals["verify"]; got != 120 {
		t.Errorf("verify span total = %d, want 120", got)
	}
	if got := s5.SpanTotals["wal_flush"]; got != 30 {
		t.Errorf("wal_flush span total = %d, want 30", got)
	}
	if s5.Block == "" {
		t.Error("finalized round lost its block ID")
	}
}

// TestWriteChromeTrace checks the dump is valid JSON in the Chrome
// traceEvents shape: spans as "X" with a dur, instants as "i", one pid
// per replica, round and block in args.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	blk := types.BlockID{0xab, 0xcd}
	tr.Mark(1, blk, StageProposalReceived, ts(2_000_000))
	tr.Span(1, blk, SpanVerify, ts(2_500_000), 1_000_000)
	tr.Mark(1, blk, StageFinalized, ts(9_000_000))

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, 3); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Args struct {
				Round int    `json:"round"`
				Block string `json:"block"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("%d trace events, want 3", len(doc.TraceEvents))
	}
	var spans, instants int
	for _, e := range doc.TraceEvents {
		if e.Pid != 3 {
			t.Errorf("event pid = %d, want replica 3", e.Pid)
		}
		if e.Args.Round != 1 || e.Args.Block == "" {
			t.Errorf("event args missing round/block: %+v", e)
		}
		switch e.Ph {
		case "X":
			spans++
			if e.Name != "verify" || e.Dur != 1000 { // µs
				t.Errorf("span = %+v, want verify dur 1000µs", e)
			}
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if spans != 1 || instants != 2 {
		t.Errorf("spans = %d instants = %d, want 1 and 2", spans, instants)
	}

	// Empty tracer still emits a valid document.
	buf.Reset()
	if err := NewTracer(4).WriteChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var empty map[string]any
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}

// TestAllocRegressionTracerSpan gates the hot-path budget: Mark and
// Span write into the preallocated ring without allocating, including
// across ring wraps and on a nil tracer.
func TestAllocRegressionTracerSpan(t *testing.T) {
	tr := NewTracer(64)
	blk := types.BlockID{1}
	start := ts(1000)
	if n := testing.AllocsPerRun(500, func() {
		tr.Mark(9, blk, StageProposalReceived, start)
		tr.Span(9, blk, SpanVerify, start, time.Millisecond)
	}); n > 0 {
		t.Errorf("Tracer Mark+Span: %v allocs/op, budget 0", n)
	}
	var nilT *Tracer
	if n := testing.AllocsPerRun(500, func() {
		nilT.Mark(9, blk, StageProposalReceived, start)
		nilT.Span(9, blk, SpanVerify, start, time.Millisecond)
	}); n > 0 {
		t.Errorf("nil Tracer Mark+Span: %v allocs/op, budget 0", n)
	}
}

// TestTracerNilSafe checks the disabled-observability state.
func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Mark(1, types.BlockID{}, StageFinalized, ts(1))
	tr.Span(1, types.BlockID{}, SpanVerify, ts(1), 1)
	if tr.Events() != nil {
		t.Fatal("nil tracer events != nil")
	}
	if tr.EventsForRound(1) != nil {
		t.Fatal("nil tracer round events != nil")
	}
}

// TestStageNames checks every stage has a distinct snake_case name (the
// Chrome-trace rows and summary keys depend on them).
func TestStageNames(t *testing.T) {
	seen := map[string]Stage{}
	for s := Stage(0); s < numStages; s++ {
		name := s.String()
		if name == "" {
			t.Fatalf("stage %d has no name", s)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("stages %d and %d share name %q", prev, s, name)
		}
		seen[name] = s
	}
	if got := Stage(200).String(); got != "stage(200)" {
		t.Fatalf("out-of-range stage name = %q", got)
	}
}
