// Package obs is the consensus observability layer: a block-lifecycle
// tracer, stage-latency histograms and gauges bundled into an Observer,
// a slow-round detector, and an HTTP export surface (Prometheus text,
// pprof, Chrome-trace dumps).
//
// The design splits along the hot/cold line. Hot-path instruments —
// metrics.Histogram Record, metrics.Gauge Set, cached *metrics.Counter
// adds — are lock-free atomics and allocation-free, honoring the PR 3
// discipline (gated by TestAllocRegression* in this package). The tracer
// appends into a preallocated ring under a mutex (an append is two
// fixed-size struct writes; the lock is uncontended because each replica
// owns its tracer) and is likewise allocation-free. Everything else —
// snapshotting, Chrome-trace serialization, Prometheus rendering — runs
// on the scrape path and may allocate freely.
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"banyan/internal/types"
)

// Stage identifies a point (or span) in a block's lifecycle. The
// instant stages trace the paper's commit path in order; the span
// stages attribute time to the subsystems that shape it.
type Stage uint8

const (
	// Instant stages (Dur == 0): the block reached this lifecycle point.
	StageProposalReceived Stage = iota
	StagePreverifyQueued
	StageVoteSent
	StageNotarized
	StageFastCertified
	StageBodiesResolved
	StageFinalized
	StageDelivered

	// Span stages (Dur > 0): time attributed to a subsystem.
	SpanVerify      // signature/structure verification of one message
	SpanPreverify   // preverify-stage wait + verify in the node pipeline
	SpanWALFlush    // one group-commit flush (write + fsync)
	SpanDissemFetch // one batch fetch, Begin to body arrival
	SpanStateSync   // one snapshot fetch attempt
	numStages
)

var stageNames = [numStages]string{
	StageProposalReceived: "proposal_received",
	StagePreverifyQueued:  "preverify_queued",
	StageVoteSent:         "vote_sent",
	StageNotarized:        "notarized",
	StageFastCertified:    "fast_certified",
	StageBodiesResolved:   "bodies_resolved",
	StageFinalized:        "finalized",
	StageDelivered:        "delivered",
	SpanVerify:            "verify",
	SpanPreverify:         "preverify",
	SpanWALFlush:          "wal_flush",
	SpanDissemFetch:       "dissem_fetch",
	SpanStateSync:         "statesync_fetch",
}

// String returns the stage's snake_case name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Event is one ring-buffer entry: an instant lifecycle mark (Dur 0) or a
// completed span (Dur > 0, TS the span start). TS is nanoseconds since
// the Unix epoch in whatever clock domain the caller observes — the
// engine's virtual clock under simulation, wall time on live replicas —
// so events from one tracer are mutually comparable but clock domains
// must not be mixed within a stage.
type Event struct {
	TS    int64 // ns since epoch
	Dur   int64 // ns; 0 for instants
	Round types.Round
	Block types.BlockID
	Stage Stage
}

// Tracer is a per-replica fixed-capacity ring of lifecycle events. All
// methods are nil-receiver safe no-ops, so disabled observability costs
// one predictable branch. Appends never allocate; once the ring wraps,
// new events overwrite the oldest.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	next    int
	wrapped bool
}

// DefaultTraceEvents is the ring capacity when none is given: at six to
// eight events per block it holds on the order of a thousand recent
// blocks, a few MB per replica.
const DefaultTraceEvents = 8192

// NewTracer returns a tracer holding the last capacity events
// (DefaultTraceEvents if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Tracer{events: make([]Event, capacity)}
}

// Mark appends an instant lifecycle event.
func (t *Tracer) Mark(round types.Round, block types.BlockID, stage Stage, ts time.Time) {
	if t == nil {
		return
	}
	t.append(Event{TS: ts.UnixNano(), Round: round, Block: block, Stage: stage})
}

// Span appends a completed span starting at start and lasting dur.
func (t *Tracer) Span(round types.Round, block types.BlockID, stage Stage, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.append(Event{TS: start.UnixNano(), Dur: int64(dur), Round: round, Block: block, Stage: stage})
}

func (t *Tracer) append(e Event) {
	t.mu.Lock()
	t.events[t.next] = e
	t.next++
	if t.next == len(t.events) {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Events returns a copy of the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		out := make([]Event, t.next)
		copy(out, t.events[:t.next])
		return out
	}
	out := make([]Event, len(t.events))
	n := copy(out, t.events[t.next:])
	copy(out[n:], t.events[:t.next])
	return out
}

// EventsForRound returns the buffered events of one round, oldest first.
func (t *Tracer) EventsForRound(round types.Round) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Round == round {
			out = append(out, e)
		}
	}
	return out
}

// RoundSummary is the per-round digest of trace events: when the round's
// block first appeared, when it finalized, and how much span time each
// subsystem consumed.
type RoundSummary struct {
	Round      types.Round      `json:"round"`
	Block      string           `json:"block,omitempty"`
	Events     int              `json:"events"`
	FirstTS    int64            `json:"first_ts_ns"`
	CommitNs   int64            `json:"commit_ns,omitempty"` // finalized − proposal_received
	SpanTotals map[string]int64 `json:"span_totals_ns,omitempty"`
}

// Summaries digests the buffered events into one summary per round,
// ascending by round.
func (t *Tracer) Summaries() []RoundSummary {
	events := t.Events()
	byRound := make(map[types.Round]*RoundSummary)
	var rounds []types.Round
	for _, e := range events {
		s, ok := byRound[e.Round]
		if !ok {
			s = &RoundSummary{Round: e.Round, FirstTS: e.TS}
			byRound[e.Round] = s
			rounds = append(rounds, e.Round)
		}
		s.Events++
		if e.TS < s.FirstTS {
			s.FirstTS = e.TS
		}
		switch e.Stage {
		case StageProposalReceived:
			if s.Block == "" {
				s.Block = shortID(e.Block)
			}
		case StageFinalized:
			s.Block = shortID(e.Block)
		}
		if e.Dur > 0 {
			if s.SpanTotals == nil {
				s.SpanTotals = make(map[string]int64)
			}
			s.SpanTotals[e.Stage.String()] += e.Dur
		}
	}
	// Derive commit time where both endpoints are present.
	for _, s := range byRound {
		var received, finalized int64
		for _, e := range events {
			if e.Round != s.Round {
				continue
			}
			switch e.Stage {
			case StageProposalReceived:
				if received == 0 || e.TS < received {
					received = e.TS
				}
			case StageFinalized:
				finalized = e.TS
			}
		}
		if received > 0 && finalized > received {
			s.CommitNs = finalized - received
		}
	}
	sortRounds(rounds)
	out := make([]RoundSummary, 0, len(rounds))
	for _, r := range rounds {
		out = append(out, *byRound[r])
	}
	return out
}

func sortRounds(rounds []types.Round) {
	for i := 1; i < len(rounds); i++ {
		for j := i; j > 0 && rounds[j] < rounds[j-1]; j-- {
			rounds[j], rounds[j-1] = rounds[j-1], rounds[j]
		}
	}
}

func shortID(id types.BlockID) string { return fmt.Sprintf("%x", id[:6]) }

// WriteChromeTrace serializes the buffered events as a Chrome trace
// (chrome://tracing / Perfetto "traceEvents" JSON): instants as "i"
// phase events, spans as "X" complete events, one thread row per stage.
func (t *Tracer) WriteChromeTrace(w io.Writer, replica types.ReplicaID) error {
	events := t.Events()
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	for i, e := range events {
		sep := ","
		if i == 0 {
			sep = ""
		}
		// Chrome traces use microsecond timestamps.
		tsUs := float64(e.TS) / 1e3
		var err error
		if e.Dur > 0 {
			_, err = fmt.Fprintf(w,
				`%s{"name":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"round":%d,"block":%q}}`,
				sep, e.Stage.String(), tsUs, float64(e.Dur)/1e3, replica, int(e.Stage), e.Round, shortID(e.Block))
		} else {
			_, err = fmt.Fprintf(w,
				`%s{"name":%q,"ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":%d,"args":{"round":%d,"block":%q}}`,
				sep, e.Stage.String(), tsUs, replica, int(e.Stage), e.Round, shortID(e.Block))
		}
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
