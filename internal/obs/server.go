package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"banyan/internal/metrics"
	"banyan/internal/types"
)

// Handler returns the observability HTTP surface for one replica:
//
//	/metrics        Prometheus text exposition (counters, gauges,
//	                log2-bucketed histograms as banyan_*_seconds)
//	/trace          Chrome-trace JSON dump of the lifecycle ring
//	/trace/summary  per-round span summaries (JSON)
//	/slow           flagged slow rounds with their spans (JSON)
//	/debug/pprof/*  the stdlib profiler endpoints
func (o *Observer) Handler(replica types.ReplicaID) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		o.Collect()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, o.Registry)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		o.Tracer.WriteChromeTrace(w, replica)
	})
	mux.HandleFunc("/trace/summary", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(o.Tracer.Summaries())
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			EWMANs int64       `json:"ewma_ns"`
			Slow   []SlowRound `json:"slow"`
		}{int64(o.Detector.EWMA()), o.Detector.Slow()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a live observability endpoint bound to one listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. "127.0.0.1:9464"
// or ":0" for an ephemeral port) and serves until Close.
func Serve(addr string, o *Observer, replica types.ReplicaID) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: o.Handler(replica), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the endpoint down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// writePrometheus renders every instrument of the registry in Prometheus
// text exposition format. Counters and gauges become banyan_<name>;
// histograms become banyan_<name>_seconds cumulative bucket series with
// log2 nanosecond boundaries converted to seconds.
func writePrometheus(w http.ResponseWriter, reg *metrics.Registry) {
	if reg == nil {
		return
	}
	counters := reg.Snapshot()
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := "banyan_" + sanitize(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, counters[name])
	}

	gauges := reg.Gauges()
	names = names[:0]
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := "banyan_" + sanitize(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m, m, gauges[name])
	}

	hists := reg.Histograms()
	names = names[:0]
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap := hists[name]
		m := "banyan_" + sanitize(name) + "_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", m)
		var cum int64
		for i, c := range snap.Buckets {
			cum += c
			if c == 0 && i != metrics.HistBuckets-1 {
				continue // sparse output: emit only occupied buckets (+Inf always)
			}
			if i == metrics.HistBuckets-1 {
				fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m, cum)
			} else {
				fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", m, float64(metrics.BucketUpper(i))/1e9, cum)
			}
		}
		fmt.Fprintf(w, "%s_sum %g\n", m, float64(snap.Sum)/1e9)
		fmt.Fprintf(w, "%s_count %d\n", m, snap.Count)
	}
}

// sanitize maps registry names onto the Prometheus metric charset.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}
