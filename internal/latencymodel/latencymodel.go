// Package latencymodel reproduces Table 1 of the paper analytically: for
// each surveyed protocol it records the block finalization latency, block
// creation latency, and the replica-count requirements as functions of f
// and p, and renders the table with quorum sizes evaluated at concrete
// parameters. The four protocols implemented in this repository also get
// measured step counts from the Figure 1 experiment (see bench_test.go).
package latencymodel

import (
	"fmt"
	"strings"
)

// LatencyUnit distinguishes actual-delay (δ) from bound (Δ) latencies.
type LatencyUnit string

// Units of Table 1.
const (
	Delta    LatencyUnit = "δ" // true message delivery time
	BigDelta LatencyUnit = "Δ" // pessimistic synchrony bound
)

// Entry is one row of Table 1.
type Entry struct {
	// Name of the protocol as listed in the paper.
	Name string
	// FinalSteps is the block finalization latency coefficient (e.g. 2 for
	// 2δ); FinalUnit gives its unit.
	FinalSteps int
	FinalUnit  LatencyUnit
	// FinalReq computes the block finalization quorum from (f, p);
	// FinalReqExpr is its symbolic form.
	FinalReq     func(f, p int) int
	FinalReqExpr string
	// CreateSteps is the block creation latency coefficient; CreateUnit
	// its unit. Zero with empty unit means not applicable.
	CreateSteps int
	CreateUnit  LatencyUnit
	// CreateReq computes the block creation quorum; nil when N/A.
	CreateReq     func(f, p int) int
	CreateReqExpr string
	// Replicas computes the minimum replica count; ReplicasExpr the
	// symbolic bound.
	Replicas     func(f, p int) int
	ReplicasExpr string
	// Rotating marks rotating-leader support (the ✓ column).
	Rotating bool
	// Implemented marks the protocols built in this repository.
	Implemented bool
}

func q2f1(f, _ int) int { return 2*f + 1 }
func n3f1(f, _ int) int { return 3*f + 1 }

// Table returns every row of Table 1, in the paper's order.
func Table() []Entry {
	return []Entry{
		{
			Name:       "Casper FFG",
			FinalSteps: 1, FinalUnit: BigDelta, // O(Δ)
			FinalReq: q2f1, FinalReqExpr: "2f+1",
			CreateSteps: 1, CreateUnit: BigDelta,
			CreateReq: nil, CreateReqExpr: "N/A",
			Replicas: n3f1, ReplicasExpr: "3f+1",
			Rotating: true,
		},
		{
			Name:       "Fast HotStuff",
			FinalSteps: 5, FinalUnit: Delta,
			FinalReq: q2f1, FinalReqExpr: "2f+1",
			CreateSteps: 2, CreateUnit: Delta,
			CreateReq: q2f1, CreateReqExpr: "2f+1",
			Replicas: n3f1, ReplicasExpr: "3f+1",
		},
		{
			Name:       "Jolteon",
			FinalSteps: 5, FinalUnit: Delta,
			FinalReq: q2f1, FinalReqExpr: "2f+1",
			CreateSteps: 2, CreateUnit: Delta,
			CreateReq: q2f1, CreateReqExpr: "2f+1",
			Replicas: n3f1, ReplicasExpr: "3f+1",
		},
		{
			Name:       "PaLa",
			FinalSteps: 4, FinalUnit: Delta,
			FinalReq: q2f1, FinalReqExpr: "2f+1",
			CreateSteps: 2, CreateUnit: Delta,
			CreateReq: q2f1, CreateReqExpr: "2f+1",
			Replicas: n3f1, ReplicasExpr: "3f+1",
		},
		{
			Name:       "Zelma",
			FinalSteps: 2, FinalUnit: Delta,
			FinalReq: func(f, p int) int { return 3*f + p + 1 }, FinalReqExpr: "3f+p+1",
			CreateSteps: 2, CreateUnit: Delta,
			CreateReq: func(f, p int) int { return 2*f + p + 1 }, CreateReqExpr: "2f+p+1",
			Replicas: func(f, p int) int { return 3*f + 2*p + 1 }, ReplicasExpr: "3f+2p+1",
		},
		{
			Name:       "SBFT",
			FinalSteps: 3, FinalUnit: Delta,
			FinalReq: func(f, p int) int { return 3*f + p + 1 }, FinalReqExpr: "3f+p+1",
			CreateSteps: 3, CreateUnit: Delta,
			CreateReq: func(f, p int) int { return 2*f + p + 1 }, CreateReqExpr: "2f+p+1",
			Replicas: func(f, p int) int { return 3*f + 2*p + 1 }, ReplicasExpr: "3f+2p+1",
		},
		{
			Name:       "Streamlet",
			FinalSteps: 6, FinalUnit: BigDelta,
			FinalReq: q2f1, FinalReqExpr: "2f+1",
			CreateSteps: 2, CreateUnit: BigDelta,
			CreateReq: q2f1, CreateReqExpr: "2f+1",
			Replicas: n3f1, ReplicasExpr: "3f+1",
			Rotating: true, Implemented: true,
		},
		{
			Name:       "Bullshark",
			FinalSteps: 4, FinalUnit: Delta,
			FinalReq: q2f1, FinalReqExpr: "2f+1",
			CreateSteps: 2, CreateUnit: Delta,
			CreateReq: q2f1, CreateReqExpr: "2f+1",
			Replicas: n3f1, ReplicasExpr: "3f+1",
			Rotating: true,
		},
		{
			Name:       "BBCA-Chain",
			FinalSteps: 3, FinalUnit: Delta,
			FinalReq: q2f1, FinalReqExpr: "2f+1",
			CreateSteps: 3, CreateUnit: Delta,
			CreateReq: q2f1, CreateReqExpr: "2f+1",
			Replicas: n3f1, ReplicasExpr: "3f+1",
			Rotating: true,
		},
		{
			Name:       "ICC / Simplex",
			FinalSteps: 3, FinalUnit: Delta,
			FinalReq: q2f1, FinalReqExpr: "2f+1",
			CreateSteps: 2, CreateUnit: Delta,
			CreateReq: q2f1, CreateReqExpr: "2f+1",
			Replicas: n3f1, ReplicasExpr: "3f+1",
			Rotating: true, Implemented: true,
		},
		{
			Name:       "Mysticeti",
			FinalSteps: 3, FinalUnit: Delta,
			FinalReq: q2f1, FinalReqExpr: "2f+1",
			CreateSteps: 1, CreateUnit: Delta,
			CreateReq: q2f1, CreateReqExpr: "2f+1",
			Replicas: n3f1, ReplicasExpr: "3f+1",
			Rotating: true,
		},
		{
			Name:       "Banyan",
			FinalSteps: 2, FinalUnit: Delta,
			FinalReq: func(f, p int) int { return 3*f + p - 1 }, FinalReqExpr: "3f+p*-1",
			CreateSteps: 2, CreateUnit: Delta,
			CreateReq: func(f, p int) int { return 2*f + p }, CreateReqExpr: "2f+p*",
			Replicas: func(f, p int) int { return 3*f + 2*p - 1 }, ReplicasExpr: "3f+2p*-1",
			Rotating: true, Implemented: true,
		},
	}
}

// HotStuffChained returns the row for the 3-chain HotStuff variant this
// repository implements (the paper's table lists the pipelined Fast
// HotStuff instead; chained HotStuff commits on a 3-chain, ~7δ at the
// proposer).
func HotStuffChained() Entry {
	return Entry{
		Name:       "HotStuff (chained, 3-phase)",
		FinalSteps: 7, FinalUnit: Delta,
		FinalReq: q2f1, FinalReqExpr: "2f+1",
		CreateSteps: 2, CreateUnit: Delta,
		CreateReq: q2f1, CreateReqExpr: "2f+1",
		Replicas: n3f1, ReplicasExpr: "3f+1",
		Rotating: true, Implemented: true,
	}
}

// Render formats the table with quorums evaluated at (f, p), mirroring
// Table 1's layout.
func Render(f, p int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 at f=%d, p=%d\n", f, p)
	fmt.Fprintf(&b, "%-16s %10s %12s %10s %12s %10s %9s\n",
		"Protocol", "FinalLat", "FinalReq", "CreateLat", "CreateReq", "Replicas", "Rotating")
	for _, e := range Table() {
		final := fmt.Sprintf("%d%s", e.FinalSteps, e.FinalUnit)
		create := "-"
		if e.CreateUnit != "" {
			create = fmt.Sprintf("%d%s", e.CreateSteps, e.CreateUnit)
		}
		createReq := e.CreateReqExpr
		if e.CreateReq != nil {
			createReq = fmt.Sprintf("%s=%d", e.CreateReqExpr, e.CreateReq(f, p))
		}
		rot := ""
		if e.Rotating {
			rot = "yes"
		}
		fmt.Fprintf(&b, "%-16s %10s %12s %10s %12s %10s %9s\n",
			e.Name,
			final,
			fmt.Sprintf("%s=%d", e.FinalReqExpr, e.FinalReq(f, p)),
			create,
			createReq,
			fmt.Sprintf("%s=%d", e.ReplicasExpr, e.Replicas(f, p)),
			rot,
		)
	}
	return b.String()
}
