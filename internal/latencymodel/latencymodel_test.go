package latencymodel

import (
	"strings"
	"testing"
)

func TestTableMatchesPaper(t *testing.T) {
	rows := make(map[string]Entry)
	for _, e := range Table() {
		rows[e.Name] = e
	}
	if len(rows) != 12 {
		t.Fatalf("table has %d rows, want 12", len(rows))
	}

	// Spot-check the quantitative claims of Table 1 at f=6, p=1 (the
	// paper's n=19 configuration).
	banyan := rows["Banyan"]
	if banyan.FinalSteps != 2 || banyan.FinalUnit != Delta {
		t.Errorf("Banyan finalization latency %d%s, want 2δ", banyan.FinalSteps, banyan.FinalUnit)
	}
	if got := banyan.FinalReq(6, 1); got != 18 { // 3f+p*-1 = n-p
		t.Errorf("Banyan finalization requirement at f=6,p=1 = %d, want 18", got)
	}
	if got := banyan.CreateReq(6, 1); got != 13 { // 2f+p*
		t.Errorf("Banyan creation requirement = %d, want 13", got)
	}
	if got := banyan.Replicas(6, 1); got != 19 {
		t.Errorf("Banyan replicas = %d, want 19", got)
	}
	if !banyan.Rotating || !banyan.Implemented {
		t.Error("Banyan must be rotating and implemented")
	}

	icc := rows["ICC / Simplex"]
	if icc.FinalSteps != 3 || icc.FinalReq(6, 1) != 13 || icc.Replicas(6, 1) != 19 {
		t.Errorf("ICC row wrong: %d steps, req %d, n %d",
			icc.FinalSteps, icc.FinalReq(6, 1), icc.Replicas(6, 1))
	}

	sbft := rows["SBFT"]
	if sbft.FinalSteps != 3 || sbft.Replicas(6, 1) != 21 { // 3f+2p+1
		t.Errorf("SBFT row wrong")
	}
	if sbft.Rotating {
		t.Error("SBFT is not a rotating-leader protocol in Table 1")
	}

	streamlet := rows["Streamlet"]
	if streamlet.FinalSteps != 6 || streamlet.FinalUnit != BigDelta {
		t.Error("Streamlet must be 6Δ")
	}

	// Banyan strictly beats every other rotating-leader row on
	// finalization steps (the paper's headline).
	for name, e := range rows {
		if name == "Banyan" || !e.Rotating || e.FinalUnit != Delta {
			continue
		}
		if e.FinalSteps <= banyan.FinalSteps {
			t.Errorf("%s at %d steps not beaten by Banyan's %d", name, e.FinalSteps, banyan.FinalSteps)
		}
	}
}

func TestHotStuffChainedRow(t *testing.T) {
	hs := HotStuffChained()
	if hs.FinalSteps != 7 || !hs.Implemented {
		t.Errorf("chained HotStuff row: %+v", hs)
	}
}

func TestRender(t *testing.T) {
	out := Render(6, 1)
	for _, want := range []string{"Banyan", "ICC / Simplex", "3f+p*-1=18", "2f+p*=13", "3f+2p*-1=19"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 13 {
		t.Errorf("rendered table has only %d lines", lines)
	}
}
