// Package simnet is a deterministic discrete-event network simulator for
// consensus engines.
//
// It substitutes for the paper's AWS deployments (DESIGN.md section 2):
// replicas are protocol.Engine instances driven by a virtual clock, links
// have configurable propagation delay, jitter and sender-side bandwidth,
// and crashes/partitions are injected as events. A 120-second wide-area
// experiment replays in milliseconds of wall time, and identical seeds
// replay identical executions, which the evaluation harness relies on.
//
// Per-link delivery is FIFO by default, matching TCP's no-reordering
// property that Remark 8.3 of the paper assumes; adversarial tests can
// enable reordering.
package simnet

import (
	"container/heap"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Topology models one-way propagation delays between replicas.
type Topology interface {
	// N is the number of replicas.
	N() int
	// Delay is the one-way propagation delay from one replica to another.
	Delay(from, to types.ReplicaID) time.Duration
}

// Options configure a simulation.
type Options struct {
	// Topology supplies propagation delays. Required.
	Topology Topology
	// BandwidthBps is each replica's uplink in bytes per second; messages
	// queue at the sender NIC and their serialization time adds to
	// delivery. Zero means infinite bandwidth.
	BandwidthBps float64
	// JitterFrac adds up to this fraction of the base propagation delay as
	// pseudo-random per-message jitter (e.g. 0.05 = up to +5%).
	JitterFrac float64
	// ProcRateBps models receiver-side processing throughput in bytes per
	// second: before its engine sees a message, a replica's CPU is occupied
	// for ProcFixed + size/ProcRateBps, and arrivals queue serially. This
	// captures deserialization, hashing and signature checking — the
	// per-hop cost that makes saving a communication step worth more than
	// pure propagation delay. Zero disables the model.
	ProcRateBps float64
	// ProcFixed is the per-message fixed processing cost (see ProcRateBps).
	ProcFixed time.Duration
	// Seed drives all pseudo-randomness (jitter). Same seed, same topology,
	// same engines => identical executions.
	Seed uint64
	// AllowReordering disables the per-link FIFO floor, letting jittered
	// messages overtake earlier ones on the same link.
	AllowReordering bool
	// Filter, when non-nil, is consulted for every delivery; returning
	// false drops the message. Used for partition and loss tests.
	Filter func(from, to types.ReplicaID, msg types.Message, at time.Time) bool
}

// Hooks observe the simulation. All callbacks run synchronously on the
// simulation goroutine and receive virtual timestamps.
type Hooks struct {
	// OnBroadcast fires when a replica broadcasts a message.
	OnBroadcast func(node types.ReplicaID, at time.Time, msg types.Message)
	// OnDeliver fires when a message is delivered to a replica.
	OnDeliver func(from, to types.ReplicaID, at time.Time, msg types.Message)
	// OnCommit fires when a replica finalizes blocks.
	OnCommit func(node types.ReplicaID, at time.Time, c protocol.Commit)
	// OnFault fires when an engine reports a safety fault.
	OnFault func(node types.ReplicaID, at time.Time, err error)
}

type eventKind uint8

const (
	evDeliver eventKind = iota + 1
	evTimer
	evCrash
	evRecover
	evRestart
	evCall
)

type event struct {
	at      time.Time
	seq     uint64
	kind    eventKind
	node    types.ReplicaID
	from    types.ReplicaID
	msg     types.Message
	tid     protocol.TimerID
	rebuild func(now time.Time) protocol.Engine
	call    func(now time.Time)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Network is a running simulation.
type Network struct {
	opts    Options
	hooks   Hooks
	engines []protocol.Engine

	now     time.Time
	pq      eventHeap
	seq     uint64
	started bool

	crashed []bool
	faulted []bool

	txFree  []time.Time   // sender NIC availability
	rxFree  []time.Time   // receiver CPU availability
	fifo    [][]time.Time // per-link latest delivery time
	linkSeq [][]uint64    // per-link message counter (jitter derivation)

	stats Stats
}

// Stats counts simulation-level activity.
type Stats struct {
	Events   int64
	Messages int64
	Bytes    int64
	Dropped  int64
	Timers   int64
	Crashes  int64
	SimTime  time.Duration
	Faults   int
}

// Epoch is the virtual time origin of every simulation.
var Epoch = time.Unix(0, 0).UTC()

// New assembles a simulation over the given engines. Engine i must be the
// engine for replica i.
func New(engines []protocol.Engine, opts Options, hooks Hooks) (*Network, error) {
	if opts.Topology == nil {
		return nil, fmt.Errorf("simnet: topology is required")
	}
	n := len(engines)
	if n == 0 || opts.Topology.N() != n {
		return nil, fmt.Errorf("simnet: %d engines but topology has %d nodes", n, opts.Topology.N())
	}
	for i, e := range engines {
		if int(e.ID()) != i {
			return nil, fmt.Errorf("simnet: engine %d claims replica ID %d", i, e.ID())
		}
	}
	net := &Network{
		opts:    opts,
		hooks:   hooks,
		engines: engines,
		now:     Epoch,
		crashed: make([]bool, n),
		faulted: make([]bool, n),
		txFree:  make([]time.Time, n),
		rxFree:  make([]time.Time, n),
		fifo:    make([][]time.Time, n),
		linkSeq: make([][]uint64, n),
	}
	for i := range net.fifo {
		net.fifo[i] = make([]time.Time, n)
		net.linkSeq[i] = make([]uint64, n)
		net.txFree[i] = Epoch
		net.rxFree[i] = Epoch
		for j := range net.fifo[i] {
			net.fifo[i][j] = Epoch
		}
	}
	return net, nil
}

// Now returns the current virtual time.
func (s *Network) Now() time.Time { return s.now }

// Elapsed returns virtual time since the epoch.
func (s *Network) Elapsed() time.Duration { return s.now.Sub(Epoch) }

// Stats returns simulation counters.
func (s *Network) Stats() Stats {
	st := s.stats
	st.SimTime = s.Elapsed()
	return st
}

// Engine returns the engine for a replica.
func (s *Network) Engine(id types.ReplicaID) protocol.Engine { return s.engines[id] }

// CrashAt schedules a crash: from time t on, the replica neither receives
// nor emits anything.
func (s *Network) CrashAt(id types.ReplicaID, t time.Duration) {
	s.push(&event{at: Epoch.Add(t), kind: evCrash, node: id})
}

// RecoverAt schedules a crashed replica to resume receiving (its engine
// state is as it was at crash time; the protocol's deadlock-freeness pulls
// it forward).
func (s *Network) RecoverAt(id types.ReplicaID, t time.Duration) {
	s.push(&event{at: Epoch.Add(t), kind: evRecover, node: id})
}

// RestartAt schedules a crash-restart: at time t the replica is replaced
// by the engine the rebuild callback returns — typically a fresh engine
// recovered from a write-ahead log (wal.NewRecorder over the crashed
// replica's directory) — and that engine's Start runs at virtual time t.
// A rebuild that fails may return nil: the replica then simply stays
// crashed (re-Starting the old engine would rewind it to round 1 and
// corrupt the run). Timer events scheduled by the pre-crash engine still
// fire on the new one; engines discard stale timer IDs, so this models a
// lost in-kernel timer wheel faithfully enough.
func (s *Network) RestartAt(id types.ReplicaID, t time.Duration, rebuild func(now time.Time) protocol.Engine) {
	s.push(&event{at: Epoch.Add(t), kind: evRestart, node: id, rebuild: rebuild})
}

// JoinAt schedules a replica to join the network at time t: it is held
// out of the initial Start (it neither receives nor emits before t) and
// boots cold at t having observed nothing — the fresh-join scenario
// that exercises peer snapshot state sync. Must be called before Start.
func (s *Network) JoinAt(id types.ReplicaID, t time.Duration) {
	s.crashed[id] = true
	s.push(&event{at: Epoch.Add(t), kind: evRestart, node: id})
}

// At schedules an arbitrary callback at virtual time t. The callback runs
// on the simulation goroutine between engine steps — hosts use it for
// scripted control-plane actions (scheduling a reconfiguration proposal,
// flipping a knob) that are not themselves network traffic.
func (s *Network) At(t time.Duration, fn func(now time.Time)) {
	s.push(&event{at: Epoch.Add(t), kind: evCall, call: fn})
}

// Start boots every engine at the epoch. Must be called once before Run.
func (s *Network) Start() {
	if s.started {
		return
	}
	s.started = true
	for i, e := range s.engines {
		if s.crashed[i] {
			continue
		}
		s.apply(types.ReplicaID(i), e.Start(s.now))
	}
}

// Run processes events until the virtual clock reaches the epoch plus d.
func (s *Network) Run(d time.Duration) {
	s.RunUntil(Epoch.Add(d))
}

// RunUntil processes events with timestamps <= deadline, advancing the
// clock to exactly the deadline.
func (s *Network) RunUntil(deadline time.Time) {
	if !s.started {
		s.Start()
	}
	for len(s.pq) > 0 {
		next := s.pq[0]
		if next.at.After(deadline) {
			break
		}
		heap.Pop(&s.pq)
		s.now = next.at
		s.dispatch(next)
	}
	if s.now.Before(deadline) {
		s.now = deadline
	}
}

// Idle reports whether no events remain.
func (s *Network) Idle() bool { return len(s.pq) == 0 }

func (s *Network) dispatch(e *event) {
	s.stats.Events++
	switch e.kind {
	case evCrash:
		if !s.crashed[e.node] {
			s.crashed[e.node] = true
			s.stats.Crashes++
		}
	case evRecover:
		s.crashed[e.node] = false
	case evRestart:
		if e.rebuild != nil {
			ne := e.rebuild(s.now)
			if ne == nil {
				return // rebuild failed: the replica stays crashed
			}
			s.engines[e.node] = ne
		}
		s.crashed[e.node] = false
		s.faulted[e.node] = false
		s.apply(e.node, s.engines[e.node].Start(s.now))
	case evDeliver:
		if s.crashed[e.node] || s.faulted[e.node] {
			return
		}
		if s.hooks.OnDeliver != nil {
			s.hooks.OnDeliver(e.from, e.node, s.now, e.msg)
		}
		s.apply(e.node, s.engines[e.node].HandleMessage(e.from, e.msg, s.now))
	case evTimer:
		if s.crashed[e.node] || s.faulted[e.node] {
			return
		}
		s.apply(e.node, s.engines[e.node].HandleTimer(e.tid, s.now))
	case evCall:
		e.call(s.now)
	}
}

// apply executes an engine's actions at the current instant.
func (s *Network) apply(node types.ReplicaID, acts []protocol.Action) {
	for _, a := range acts {
		switch act := a.(type) {
		case protocol.Broadcast:
			if s.hooks.OnBroadcast != nil {
				s.hooks.OnBroadcast(node, s.now, act.Msg)
			}
			s.broadcast(node, act.Msg)
		case protocol.Send:
			s.unicast(node, act.To, act.Msg)
		case protocol.SetTimer:
			at := act.At
			if at.Before(s.now) {
				at = s.now
			}
			s.stats.Timers++
			s.push(&event{at: at, kind: evTimer, node: node, tid: act.ID})
		case protocol.Commit:
			if s.hooks.OnCommit != nil {
				s.hooks.OnCommit(node, s.now, act)
			}
		case protocol.SafetyFault:
			s.faulted[node] = true
			s.stats.Faults++
			if s.hooks.OnFault != nil {
				s.hooks.OnFault(node, s.now, act.Err)
			}
		}
	}
}

func (s *Network) broadcast(from types.ReplicaID, msg types.Message) {
	n := len(s.engines)
	for j := 0; j < n; j++ {
		if types.ReplicaID(j) == from {
			continue
		}
		s.unicast(from, types.ReplicaID(j), msg)
	}
}

func (s *Network) unicast(from, to types.ReplicaID, msg types.Message) {
	if s.crashed[from] || s.faulted[from] {
		return
	}
	if s.opts.Filter != nil && !s.opts.Filter(from, to, msg, s.now) {
		s.stats.Dropped++
		return
	}
	size := msg.WireSize()
	s.stats.Messages++
	s.stats.Bytes += int64(size)

	// Sender NIC serialization: unicasts from one host share the uplink.
	txStart := s.now
	if s.txFree[from].After(txStart) {
		txStart = s.txFree[from]
	}
	var txDur time.Duration
	if s.opts.BandwidthBps > 0 {
		txDur = time.Duration(float64(size) / s.opts.BandwidthBps * float64(time.Second))
	}
	s.txFree[from] = txStart.Add(txDur)

	base := s.opts.Topology.Delay(from, to)
	arrive := txStart.Add(txDur).Add(base).Add(s.jitter(from, to, base))

	if !s.opts.AllowReordering {
		// TCP semantics: per-link FIFO (Remark 8.3).
		if s.fifo[from][to].After(arrive) {
			arrive = s.fifo[from][to]
		}
		s.fifo[from][to] = arrive
	}

	// Receiver CPU: arrivals queue serially for processing before the
	// engine handles them.
	if s.opts.ProcRateBps > 0 || s.opts.ProcFixed > 0 {
		start := arrive
		if s.rxFree[to].After(start) {
			start = s.rxFree[to]
		}
		proc := s.opts.ProcFixed
		if s.opts.ProcRateBps > 0 {
			proc += time.Duration(float64(size) / s.opts.ProcRateBps * float64(time.Second))
		}
		arrive = start.Add(proc)
		s.rxFree[to] = arrive
	}
	s.push(&event{at: arrive, kind: evDeliver, node: to, from: from, msg: msg})
}

// jitter derives a deterministic per-message jitter from the seed and the
// link's message counter, independent of global event interleaving.
func (s *Network) jitter(from, to types.ReplicaID, base time.Duration) time.Duration {
	if s.opts.JitterFrac <= 0 || base <= 0 {
		return 0
	}
	seq := s.linkSeq[from][to]
	s.linkSeq[from][to]++
	var buf [20]byte
	binary.LittleEndian.PutUint64(buf[0:8], s.opts.Seed)
	binary.LittleEndian.PutUint16(buf[8:10], uint16(from))
	binary.LittleEndian.PutUint16(buf[10:12], uint16(to))
	binary.LittleEndian.PutUint64(buf[12:20], seq)
	sum := sha256.Sum256(buf[:])
	u := binary.LittleEndian.Uint64(sum[:8])
	frac := float64(u) / float64(math.MaxUint64) // [0,1)
	return time.Duration(frac * s.opts.JitterFrac * float64(base))
}

func (s *Network) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.pq, e)
}
