package simnet

import (
	"fmt"
	"testing"
	"time"

	"banyan/internal/protocol"
	"banyan/internal/types"
	"banyan/internal/wan"
)

// echoEngine is a minimal engine: on start the designated sender
// broadcasts one message per tick; every receiver counts arrivals.
type echoEngine struct {
	id       types.ReplicaID
	sender   bool
	size     int
	interval time.Duration
	limit    int

	sent     int
	received []recvRecord
}

type recvRecord struct {
	from types.ReplicaID
	at   time.Time
	size int
}

func (e *echoEngine) ID() types.ReplicaID       { return e.id }
func (e *echoEngine) Protocol() string          { return "echo" }
func (e *echoEngine) Metrics() map[string]int64 { return nil }

func (e *echoEngine) Start(now time.Time) []protocol.Action {
	if !e.sender {
		return nil
	}
	return e.emit(now)
}

func (e *echoEngine) emit(now time.Time) []protocol.Action {
	if e.sent >= e.limit {
		return nil
	}
	e.sent++
	payload := types.SyntheticPayload(e.size, uint64(e.sent))
	msg := &types.Proposal{Block: types.NewBlock(types.Round(e.sent), e.id, 0, types.BlockID{}, payload)}
	return []protocol.Action{
		protocol.Broadcast{Msg: msg},
		protocol.SetTimer{
			ID: protocol.TimerID{Round: types.Round(e.sent), Kind: protocol.TimerPropose},
			At: now.Add(e.interval),
		},
	}
}

func (e *echoEngine) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	e.received = append(e.received, recvRecord{from: from, at: now, size: msg.WireSize()})
	return nil
}

func (e *echoEngine) HandleTimer(_ protocol.TimerID, now time.Time) []protocol.Action {
	return e.emit(now)
}

func echoNet(t *testing.T, n int, opts Options, senderSize, count int) (*Network, []*echoEngine) {
	t.Helper()
	engines := make([]protocol.Engine, n)
	echoes := make([]*echoEngine, n)
	for i := 0; i < n; i++ {
		echoes[i] = &echoEngine{
			id:       types.ReplicaID(i),
			sender:   i == 0,
			size:     senderSize,
			interval: 10 * time.Millisecond,
			limit:    count,
		}
		engines[i] = echoes[i]
	}
	net, err := New(engines, opts, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	return net, echoes
}

func TestPropagationDelay(t *testing.T) {
	const oneWay = 25 * time.Millisecond
	net, echoes := echoNet(t, 3, Options{Topology: wan.Uniform(3, oneWay)}, 100, 1)
	net.Run(time.Second)
	for i := 1; i < 3; i++ {
		recv := echoes[i].received
		if len(recv) != 1 {
			t.Fatalf("replica %d received %d messages", i, len(recv))
		}
		if got := recv[0].at.Sub(Epoch); got != oneWay {
			t.Fatalf("replica %d delivery at %v, want %v", i, got, oneWay)
		}
	}
}

func TestBandwidthSerialization(t *testing.T) {
	const (
		oneWay = 10 * time.Millisecond
		bw     = 1e6 // 1 MB/s
		size   = 100_000
	)
	net, echoes := echoNet(t, 3, Options{
		Topology:     wan.Uniform(3, oneWay),
		BandwidthBps: bw,
	}, size, 1)
	net.Run(time.Second)
	// The sender transmits to peer 1 first, then peer 2: each copy takes
	// ~size/bw = 100ms of uplink (plus header bytes).
	t1 := echoes[1].received[0].at.Sub(Epoch)
	t2 := echoes[2].received[0].at.Sub(Epoch)
	txTime := time.Duration(float64(echoes[1].received[0].size) / bw * float64(time.Second))
	want1 := txTime + oneWay
	if diff := t1 - want1; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("first delivery at %v, want ~%v", t1, want1)
	}
	if t2-t1 < txTime-time.Millisecond {
		t.Fatalf("second copy arrived %v after first; expected ≥ %v (serialized uplink)", t2-t1, txTime)
	}
}

func TestReceiverProcessingQueue(t *testing.T) {
	const oneWay = 5 * time.Millisecond
	net, echoes := echoNet(t, 2, Options{
		Topology:    wan.Uniform(2, oneWay),
		ProcRateBps: 1e6,
		ProcFixed:   time.Millisecond,
	}, 50_000, 3)
	net.Run(time.Second)
	recv := echoes[1].received
	if len(recv) != 3 {
		t.Fatalf("received %d, want 3", len(recv))
	}
	// Each ~50KB message needs ~50ms of receiver CPU + 1ms fixed; sent at
	// 10ms intervals, so arrivals queue: gaps of at least ~procTime.
	proc := time.Duration(float64(recv[0].size)/1e6*float64(time.Second)) + time.Millisecond
	for i := 1; i < 3; i++ {
		gap := recv[i].at.Sub(recv[i-1].at)
		if gap < proc-time.Millisecond {
			t.Fatalf("delivery gap %v below processing time %v", gap, proc)
		}
	}
}

func TestPerLinkFIFO(t *testing.T) {
	// Strong jitter but FIFO preserved by default.
	net, echoes := echoNet(t, 2, Options{
		Topology:   wan.Uniform(2, 20*time.Millisecond),
		JitterFrac: 0.9,
		Seed:       3,
	}, 100, 50)
	net.Run(5 * time.Second)
	recv := echoes[1].received
	if len(recv) != 50 {
		t.Fatalf("received %d, want 50", len(recv))
	}
	for i := 1; i < len(recv); i++ {
		if recv[i].at.Before(recv[i-1].at) {
			t.Fatal("per-link FIFO violated")
		}
	}
}

func TestCrashStopsTraffic(t *testing.T) {
	net, echoes := echoNet(t, 3, Options{Topology: wan.Uniform(3, time.Millisecond)}, 100, 100)
	net.CrashAt(0, 205*time.Millisecond) // sender dies after ~21 sends
	net.Run(2 * time.Second)
	got := len(echoes[1].received)
	if got < 15 || got > 25 {
		t.Fatalf("received %d messages; crash at 205ms should allow ~21", got)
	}
	if net.Stats().Crashes != 1 {
		t.Fatalf("stats crashes = %d", net.Stats().Crashes)
	}
}

func TestFilterDropsMessages(t *testing.T) {
	dropped := 0
	net, echoes := echoNet(t, 3, Options{
		Topology: wan.Uniform(3, time.Millisecond),
		Filter: func(from, to types.ReplicaID, _ types.Message, _ time.Time) bool {
			if to == 2 {
				dropped++
				return false
			}
			return true
		},
	}, 100, 10)
	net.Run(time.Second)
	if len(echoes[1].received) != 10 {
		t.Fatalf("replica 1 received %d", len(echoes[1].received))
	}
	if len(echoes[2].received) != 0 {
		t.Fatalf("replica 2 received %d despite the filter", len(echoes[2].received))
	}
	if net.Stats().Dropped != 10 || dropped != 10 {
		t.Fatalf("dropped = %d (filter saw %d)", net.Stats().Dropped, dropped)
	}
}

// TestDeterminism: identical seeds produce identical delivery schedules;
// different seeds (with jitter) do not.
func TestDeterminism(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		net, echoes := echoNet(t, 3, Options{
			Topology:   wan.Uniform(3, 20*time.Millisecond),
			JitterFrac: 0.3,
			Seed:       seed,
		}, 1000, 20)
		net.Run(2 * time.Second)
		var times []time.Duration
		for _, r := range echoes[1].received {
			times = append(times, r.at.Sub(Epoch))
		}
		return times
	}
	a, b, c := run(7), run(7), run(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different delivery schedules")
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical schedules despite jitter")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	net, _ := echoNet(t, 2, Options{Topology: wan.Uniform(2, time.Millisecond)}, 10, 1)
	net.Run(3 * time.Second)
	if net.Elapsed() != 3*time.Second {
		t.Fatalf("Elapsed = %v, want 3s", net.Elapsed())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}, Hooks{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	e := &echoEngine{id: 3}
	if _, err := New([]protocol.Engine{e}, Options{Topology: wan.Uniform(1, 0)}, Hooks{}); err == nil {
		t.Fatal("mismatched engine ID accepted")
	}
}
