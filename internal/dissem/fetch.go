package dissem

import (
	"time"

	"banyan/internal/statesync"
	"banyan/internal/types"
)

// Fetcher schedules batch-body fetches for delivery gating: a FIFO of
// deduplicated digests, at most one in-flight unicast BatchRequest, and a
// per-peer deadline after which the request rotates to the next peer. The
// first attempt goes to the batch's origin (the block proposer — blocks
// only reference proposer-own batches), retries walk the peer ring, so a
// withholding origin costs one timeout and nothing more. Like the
// statesync fetcher it is passive: the engine calls Begin/Expired/Retry/
// Done from its event handlers and turns peer choices into Send actions.
// Responses are self-certifying (digest check), so no peer can inject a
// wrong body — a bad peer only wastes its own timeout slot.
type Fetcher struct {
	self    types.ReplicaID
	ring    *statesync.Ring
	timeout time.Duration

	queue  []target
	queued map[[32]byte]struct{}

	inflight bool
	cur      target
	peer     types.ReplicaID
	deadline time.Time
	started  time.Time // when the in-flight fetch began (observability)

	// suspect is the negative cache: peers that let a request expire lose
	// the origin-first preference until the entry lapses, so a withholding
	// origin costs one probe per suspicion window — not one per digest.
	// Without it, a Byzantine origin cutting batches faster than
	// timeout-per-digest would outrun the serial fetcher and wedge the
	// requester's delivery queue.
	suspect map[types.ReplicaID]time.Time

	fetches int64
	retries int64
}

// suspectWindow is how many timeouts a suspicion lasts: long enough to
// amortize the probe, short enough that a recovered peer is retried.
const suspectWindow = 8

type target struct {
	digest [32]byte
	origin types.ReplicaID
	first  bool // next attempt is the first: prefer the origin
}

// NewFetcher creates a fetcher for replica self in a cluster of n.
// timeout is the per-peer silence budget before rotating.
func NewFetcher(self types.ReplicaID, n int, timeout time.Duration) *Fetcher {
	return &Fetcher{
		self:    self,
		ring:    statesync.NewRing(self, n),
		timeout: timeout,
		queued:  make(map[[32]byte]struct{}),
		suspect: make(map[types.ReplicaID]time.Time),
	}
}

// Add queues a digest to fetch, remembering the batch's origin as the
// preferred first peer. Duplicates (queued or in flight) are dropped.
// Reports whether the queue changed.
func (f *Fetcher) Add(digest [32]byte, origin types.ReplicaID) bool {
	if _, dup := f.queued[digest]; dup {
		return false
	}
	f.queued[digest] = struct{}{}
	f.queue = append(f.queue, target{digest: digest, origin: origin, first: true})
	return true
}

// Fetching reports whether a request is in flight.
func (f *Fetcher) Fetching() bool { return f.inflight }

// Pending reports whether digests are queued (not counting in-flight).
func (f *Fetcher) Pending() bool { return len(f.queue) > 0 }

// Digest returns the in-flight digest; only valid while Fetching.
func (f *Fetcher) Digest() [32]byte { return f.cur.digest }

// Peer returns the peer currently being asked; only valid while Fetching.
func (f *Fetcher) Peer() types.ReplicaID { return f.peer }

// Deadline returns the in-flight request's retry deadline; only valid
// while Fetching.
func (f *Fetcher) Deadline() time.Time { return f.deadline }

// Started returns when the in-flight fetch began (its Begin time, not
// the latest retry); only valid while Fetching.
func (f *Fetcher) Started() time.Time { return f.started }

// Begin pops the oldest queued digest and starts a fetch. Returns false
// when nothing is queued or a fetch is already in flight.
func (f *Fetcher) Begin(now time.Time) bool {
	if f.inflight || len(f.queue) == 0 {
		return false
	}
	f.cur = f.queue[0]
	f.queue = f.queue[1:]
	f.inflight = true
	// Prefer the origin on the first attempt — unless the origin is this
	// replica itself (a restarted proposer refetching bodies of its own
	// pre-crash blocks from the peers that acked them), or currently
	// suspect (it recently let a request time out).
	if f.cur.first && f.cur.origin != f.self && f.cur.origin != f.ring.Current() &&
		!f.suspected(f.cur.origin, now) {
		f.peer = f.cur.origin
	} else {
		f.peer = f.ring.Current()
	}
	f.cur.first = false
	f.deadline = now.Add(f.timeout)
	f.started = now
	f.fetches++
	return true
}

// Expired reports whether the in-flight request's deadline has passed.
func (f *Fetcher) Expired(now time.Time) bool {
	return f.inflight && !now.Before(f.deadline)
}

// suspected reports whether a peer's negative-cache entry is still live,
// lazily evicting lapsed ones.
func (f *Fetcher) suspected(id types.ReplicaID, now time.Time) bool {
	until, ok := f.suspect[id]
	if !ok {
		return false
	}
	if now.Before(until) {
		return true
	}
	delete(f.suspect, id)
	return false
}

// Retry rotates to the next peer and re-arms the deadline; the caller
// resends the request to the returned peer. Only valid while Fetching.
// The peer that timed out enters the negative cache.
func (f *Fetcher) Retry(now time.Time) types.ReplicaID {
	f.suspect[f.peer] = now.Add(suspectWindow * f.timeout)
	next := f.ring.Current()
	if next == f.peer {
		// Don't immediately re-ask the peer that just timed out (the ring
		// cursor may still point at it after an origin-first attempt).
		next = f.ring.Advance()
	}
	f.peer = next
	f.deadline = now.Add(f.timeout)
	f.retries++
	return f.peer
}

// Done marks a digest satisfied (body arrived — via response, late
// announce, or any other path): the in-flight request is cleared if it
// matches and the digest leaves the dedup set.
func (f *Fetcher) Done(digest [32]byte) {
	if f.inflight && f.cur.digest == digest {
		f.inflight = false
	}
	if _, ok := f.queued[digest]; ok {
		delete(f.queued, digest)
		for i := range f.queue {
			if f.queue[i].digest == digest {
				f.queue = append(f.queue[:i], f.queue[i+1:]...)
				break
			}
		}
	}
}

// Metrics reports the fetcher's counters into m.
func (f *Fetcher) Metrics(m map[string]int64) {
	m["dissemFetches"] = f.fetches
	m["dissemFetchRetries"] = f.retries
}
