package dissem

import (
	"bytes"
	"testing"
	"time"

	"banyan/internal/types"
)

// queueSource is a deterministic Source: a FIFO of transaction blobs,
// cut greedily like the mempool.
type queueSource struct {
	txs [][]byte
}

func (q *queueSource) CutBatch(max int) types.Payload {
	var buf []byte
	for len(q.txs) > 0 && len(buf)+len(q.txs[0]) <= max {
		buf = append(buf, q.txs[0]...)
		q.txs = q.txs[1:]
	}
	if len(buf) == 0 {
		return types.Payload{}
	}
	return types.BytesPayload(buf)
}

func tx(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

func TestStoreCutAnnounceAckPropose(t *testing.T) {
	src := &queueSource{txs: [][]byte{tx('a', 100), tx('b', 100), tx('c', 100)}}
	s := NewStore(Config{Self: 0, N: 4, BatchBytes: 200, BlockBytes: 1000, AckQuorum: 2, Source: src})

	anns := s.TakeAnnounces()
	if len(anns) != 2 {
		t.Fatalf("expected 2 batches (200B + 100B), got %d", len(anns))
	}
	for _, a := range anns {
		if a.Origin != 0 || a.IsAck() {
			t.Fatalf("bad announce: %+v", a)
		}
		if a.Body.Digest() != a.Digest {
			t.Fatal("announce digest does not match body")
		}
	}
	// Without quorum acks nothing is proposable.
	if p := s.NextPayload(1); p.Size() != 0 {
		t.Fatalf("unacked batch proposed: %+v", p)
	}
	// Re-queue: NextPayload must not have consumed the batches.
	s.RecordAck(anns[0].Digest, 1)
	s.RecordAck(anns[0].Digest, 1) // duplicate, ignored
	s.RecordAck(anns[0].Digest, 0) // self, ignored
	if p := s.NextPayload(2); p.Size() != 0 {
		t.Fatal("batch proposed below ack quorum")
	}
	s.RecordAck(anns[0].Digest, 2)
	p := s.NextPayload(3)
	if len(p.Batches) != 1 || p.Batches[0].Digest != anns[0].Digest || p.Batches[0].Size != 200 {
		t.Fatalf("acked prefix not proposed: %+v", p.Batches)
	}
	// The second batch stays queued (FIFO prefix stopped at it), and the
	// first never reappears.
	if p := s.NextPayload(4); p.Size() != 0 {
		t.Fatal("second batch proposed without acks, or first duplicated")
	}
	s.RecordAck(anns[1].Digest, 1)
	s.RecordAck(anns[1].Digest, 3)
	p = s.NextPayload(5)
	if len(p.Batches) != 1 || p.Batches[0].Digest != anns[1].Digest {
		t.Fatalf("second batch not proposed after acks: %+v", p.Batches)
	}
}

func TestStoreFIFOPrefixStopsAtUnacked(t *testing.T) {
	src := &queueSource{txs: [][]byte{tx('a', 10), tx('b', 10), tx('c', 10)}}
	s := NewStore(Config{Self: 0, N: 4, BatchBytes: 10, BlockBytes: 100, AckQuorum: 1, Source: src})
	anns := s.TakeAnnounces()
	if len(anns) != 3 {
		t.Fatalf("expected 3 batches, got %d", len(anns))
	}
	// Ack batches 0 and 2, not 1: only batch 0 may be proposed — order is
	// part of the committed sequence, so the prefix stops at the gap.
	s.RecordAck(anns[0].Digest, 1)
	s.RecordAck(anns[2].Digest, 1)
	p := s.NextPayload(1)
	if len(p.Batches) != 1 || p.Batches[0].Digest != anns[0].Digest {
		t.Fatalf("expected exactly the acked prefix, got %+v", p.Batches)
	}
}

func TestStoreBlockBytesBudget(t *testing.T) {
	src := &queueSource{txs: [][]byte{tx('a', 100), tx('b', 100), tx('c', 100)}}
	s := NewStore(Config{Self: 0, N: 4, BatchBytes: 100, BlockBytes: 250, AckQuorum: 1, Source: src})
	anns := s.TakeAnnounces()
	for _, a := range anns {
		s.RecordAck(a.Digest, 1)
	}
	p := s.NextPayload(1)
	if len(p.Batches) != 2 || p.Size() != 200 {
		t.Fatalf("block budget not honored: %d batches, %d bytes", len(p.Batches), p.Size())
	}
	p = s.NextPayload(2)
	if len(p.Batches) != 1 {
		t.Fatalf("remaining batch not proposed next: %+v", p.Batches)
	}
}

func TestStoreInlineTail(t *testing.T) {
	src := &queueSource{txs: [][]byte{tx('a', 400), tx('b', 30)}}
	s := NewStore(Config{Self: 0, N: 4, BatchBytes: 400, BlockBytes: 1000, InlineMax: 64, AckQuorum: 1, Source: src})
	anns := s.TakeAnnounces() // cuts everything: 400B batch + 30B batch
	for _, a := range anns {
		s.RecordAck(a.Digest, 1)
	}
	p := s.NextPayload(1)
	if len(p.Batches) != len(anns) {
		t.Fatalf("acked batches not all proposed: %d", len(p.Batches))
	}
	// Now submit a latency-sensitive tx: with batches drained it rides the
	// inline tail of the next proposal instead of a dissemination cycle.
	src.txs = append(src.txs, tx('z', 20))
	p = s.NextPayload(2)
	if len(p.Batches) != 0 || !bytes.Equal(p.Data, tx('z', 20)) {
		t.Fatalf("inline tail missing: %+v", p)
	}
}

func TestStorePutGetMissingBodies(t *testing.T) {
	s := NewStore(Config{Self: 1, N: 4})
	b1 := types.BytesPayload(tx('x', 50))
	b2 := types.BytesPayload(tx('y', 60))
	if !s.Put(b1.Digest(), b1) || s.Put(b1.Digest(), b1) {
		t.Fatal("Put idempotence broken")
	}
	p := types.BatchPayload([]types.BatchRef{
		{Digest: b1.Digest(), Size: 50},
		{Digest: b2.Digest(), Size: 60},
	}, nil)
	missing := s.Missing(p)
	if len(missing) != 1 || missing[0] != b2.Digest() {
		t.Fatalf("wrong missing set: %v", missing)
	}
	if _, ok := s.Bodies(p); ok {
		t.Fatal("Bodies succeeded with a missing batch")
	}
	s.Put(b2.Digest(), b2)
	bodies, ok := s.Bodies(p)
	if !ok || len(bodies) != 2 || !bytes.Equal(bodies[0].Data, b1.Data) || !bytes.Equal(bodies[1].Data, b2.Data) {
		t.Fatalf("Bodies wrong: %v %v", bodies, ok)
	}
}

func TestStoreCompactRetainsWindow(t *testing.T) {
	s := NewStore(Config{Self: 0, N: 4})
	old := types.BytesPayload(tx('o', 10))
	young := types.BytesPayload(tx('y', 10))
	undelivered := types.BytesPayload(tx('u', 10))
	s.Put(old.Digest(), old)
	s.Put(young.Digest(), young)
	s.Put(undelivered.Digest(), undelivered)
	s.MarkDelivered(types.BatchPayload([]types.BatchRef{{Digest: old.Digest(), Size: 10}}, nil), 5)
	s.MarkDelivered(types.BatchPayload([]types.BatchRef{{Digest: young.Digest(), Size: 10}}, nil), 20)
	s.Compact(10)
	if s.Has(old.Digest()) {
		t.Fatal("compaction kept a body behind the floor")
	}
	if !s.Has(young.Digest()) || !s.Has(undelivered.Digest()) {
		t.Fatal("compaction dropped a retained or undelivered body")
	}
}

func TestFetcherDedupOriginFirstRotation(t *testing.T) {
	f := NewFetcher(0, 4, 100*time.Millisecond)
	var d1, d2 [32]byte
	d1[0], d2[0] = 1, 2
	if !f.Add(d1, 2) || f.Add(d1, 2) {
		t.Fatal("dedup broken")
	}
	f.Add(d2, 3)
	now := time.Unix(0, 0)
	if !f.Begin(now) || f.Begin(now) {
		t.Fatal("Begin must start exactly one fetch")
	}
	if f.Digest() != d1 || f.Peer() != 2 {
		t.Fatalf("first attempt must go to the origin: peer %d", f.Peer())
	}
	if f.Expired(now.Add(50 * time.Millisecond)) {
		t.Fatal("expired early")
	}
	if !f.Expired(now.Add(100 * time.Millisecond)) {
		t.Fatal("not expired at deadline")
	}
	p1 := f.Retry(now.Add(100 * time.Millisecond))
	if p1 == 2 || p1 == 0 {
		t.Fatalf("retry went back to the timed-out origin or self: %d", p1)
	}
	seen := map[types.ReplicaID]bool{p1: true}
	for i := 0; i < 2; i++ {
		seen[f.Retry(now)] = true
	}
	if len(seen) != 3 || seen[0] {
		t.Fatalf("rotation did not cover the peers: %v", seen)
	}

	f.Done(d1)
	if f.Fetching() {
		t.Fatal("Done did not clear the in-flight fetch")
	}
	if !f.Add(d1, 2) {
		t.Fatal("completed digest cannot be re-added")
	}
	// d2 is still queued; the new d1 is behind it.
	if !f.Begin(now) || f.Digest() != d2 {
		t.Fatalf("queue order broken: %v", f.Digest())
	}
	// A late announce satisfies a queued (not in-flight) digest.
	f.Done(d1)
	f.Done(d2)
	if f.Fetching() || f.Pending() {
		t.Fatal("Done did not drain the fetcher")
	}
	if f.Begin(now) {
		t.Fatal("empty fetcher began a fetch")
	}
}
