// Package dissem decouples payload dissemination from ordering: replicas
// cut mempool transactions into self-certifying batches (digest-addressed,
// sharded by the submitting replica), broadcast the batch bodies
// continuously off the consensus path, and track per-peer availability
// acks. Blocks then commit an ordered list of batch digests (plus a small
// inline tail) instead of carrying bytes, so the vote path's message size
// is independent of block size and the broadcast load is shared by every
// replica instead of riding the leader's uplink — the first step toward
// parallel-leader throughput (FnF-BFT's argument, see ROADMAP).
//
// The layer has two passive components, driven by the consensus engine's
// event handlers like everything else in this repository:
//
//   - Store: holds batch bodies by digest, cuts new batches from a Source,
//     counts availability acks for the replica's own batches, and — as the
//     engine's PayloadSource — assembles proposals from acked batches.
//     Consensus votes on headers immediately; only *delivery* of finalized
//     blocks waits for bodies.
//   - Fetcher: the fetch-on-miss scheduler for bodies a finalized block
//     references but the store does not hold: digest-keyed dedup, one
//     in-flight unicast BatchRequest, origin-first peer choice, timeout
//     rotation. The same dispatcher shape as internal/statesync.
package dissem

import (
	"sync"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Source provides the transactions a replica cuts into batches. The
// mempool implements it over client submissions; the harness implements
// it with synthetic bit vectors. CutBatch removes up to max logical bytes
// from the source and returns them as one batch body; a zero-size payload
// means nothing is queued. Implementations must be safe for concurrent
// use (the store serializes its own calls, but hosts may also submit).
type Source interface {
	CutBatch(max int) types.Payload
}

// Config assembles a Store.
type Config struct {
	// Self is the replica that owns the store.
	Self types.ReplicaID
	// N is the cluster size.
	N int
	// BatchBytes is the cut size: batches are at most this many logical
	// bytes. Default 64 KiB.
	BatchBytes int
	// InlineMax bounds the inline tail a proposal may carry alongside its
	// batch refs (latency-sensitive transactions skip dissemination).
	// Default 0: everything rides in batches.
	InlineMax int
	// AckQuorum is the number of distinct peers that must acknowledge a
	// batch before the owner references it from a proposal; f+1 guarantees
	// at least one honest holder besides the origin, so a finalized batch
	// survives the origin's disk loss. Default (N-1)/3 + 1.
	AckQuorum int
	// BlockBytes bounds the total logical payload of one proposal.
	// Default 1 MiB.
	BlockBytes int
	// Source supplies transactions to cut. Nil means the store only
	// receives batches (a non-proposing observer).
	Source Source
}

// ownBatch is one batch this replica cut and still intends to propose.
type ownBatch struct {
	ref   types.BatchRef
	acked map[types.ReplicaID]struct{}
}

// Store is a replica's view of the dissemination layer. It is shared
// between the consensus engine (payload assembly, availability gating)
// and the host (delivery-time body lookup), so it carries its own lock;
// every method is safe for concurrent use.
type Store struct {
	mu  sync.Mutex
	cfg Config

	bodies    map[[32]byte]types.Payload
	delivered map[[32]byte]types.Round // digest -> round it was delivered in

	own      []ownBatch // cut order; proposals take the acked prefix
	announce []*types.BatchAnnounce

	cut       int64 // batches cut from the source
	acks      int64 // availability acks recorded
	announced int64 // bodies handed out for broadcast
}

// NewStore creates a store. See Config for defaults.
func NewStore(cfg Config) *Store {
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = 64 << 10
	}
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = 1 << 20
	}
	if cfg.AckQuorum <= 0 {
		cfg.AckQuorum = (cfg.N-1)/3 + 1
	}
	if cfg.InlineMax < 0 {
		cfg.InlineMax = 0
	}
	return &Store{
		cfg:       cfg,
		bodies:    make(map[[32]byte]types.Payload),
		delivered: make(map[[32]byte]types.Round),
	}
}

// TakeAnnounces cuts new batches from the source until the replica's
// pending (cut but unproposed) inventory covers the next proposal with
// cushion, stores their bodies, and returns the announce messages to
// broadcast. The engine drains this after every event, which makes
// dissemination continuous without its own timer: bodies start traveling
// the moment transactions arrive, long before any proposal names them.
func (s *Store) TakeAnnounces() []*types.BatchAnnounce {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Source != nil {
		pending := 0
		for _, b := range s.own {
			pending += int(b.ref.Size)
		}
		// One block of acked inventory plus one block in the ack pipeline.
		for target := 2 * s.cfg.BlockBytes; pending < target; {
			body := s.cfg.Source.CutBatch(s.cfg.BatchBytes)
			size := body.Size()
			if size == 0 {
				break
			}
			digest := body.Digest()
			s.bodies[digest] = body
			s.own = append(s.own, ownBatch{
				ref:   types.BatchRef{Digest: digest, Size: uint32(size)},
				acked: make(map[types.ReplicaID]struct{}),
			})
			s.announce = append(s.announce, &types.BatchAnnounce{
				Origin: s.cfg.Self,
				Digest: digest,
				Body:   body,
			})
			s.cut++
			pending += size
		}
	}
	out := s.announce
	s.announce = nil
	s.announced += int64(len(out))
	return out
}

// Put stores a batch body received from the network. The caller must have
// verified body.Digest() == digest (the self-certifying check). Reports
// whether the body was new.
func (s *Store) Put(digest [32]byte, body types.Payload) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.bodies[digest]; ok {
		return false
	}
	s.bodies[digest] = body
	return true
}

// Get returns a stored batch body.
func (s *Store) Get(digest [32]byte) (types.Payload, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bodies[digest]
	return b, ok
}

// Has reports whether the store holds a body.
func (s *Store) Has(digest [32]byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.bodies[digest]
	return ok
}

// RecordAck notes that peer holds one of this replica's own batches.
func (s *Store) RecordAck(digest [32]byte, peer types.ReplicaID) {
	if peer == s.cfg.Self {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.own {
		if s.own[i].ref.Digest == digest {
			if _, dup := s.own[i].acked[peer]; !dup {
				s.own[i].acked[peer] = struct{}{}
				s.acks++
			}
			return
		}
	}
}

// NextPayload implements protocol.PayloadSource: a proposal commits the
// acked prefix of the replica's own batch queue (cut order — FIFO keeps
// the committed transaction sequence equal to inline mode), up to the
// block byte budget, plus an inline tail cut directly from the source.
// Batches whose acks have not reached quorum stay queued for a later
// round; an empty payload is a valid proposal, so availability can never
// stall the vote path.
func (s *Store) NextPayload(types.Round) types.Payload {
	s.mu.Lock()
	defer s.mu.Unlock()
	var refs []types.BatchRef
	used := 0
	taken := 0
	for _, b := range s.own {
		if len(b.acked) < s.cfg.AckQuorum {
			break
		}
		if used+int(b.ref.Size) > s.cfg.BlockBytes && used > 0 {
			break
		}
		refs = append(refs, b.ref)
		used += int(b.ref.Size)
		taken++
		if used >= s.cfg.BlockBytes {
			break
		}
	}
	s.own = s.own[taken:]
	var inline []byte
	if s.cfg.Source != nil && s.cfg.InlineMax > 0 && used < s.cfg.BlockBytes {
		max := s.cfg.InlineMax
		if rem := s.cfg.BlockBytes - used; rem < max {
			max = rem
		}
		if tail := s.cfg.Source.CutBatch(max); tail.Size() > 0 {
			inline = tail.Materialize()
		}
	}
	if len(refs) == 0 && inline == nil {
		return types.Payload{}
	}
	return types.BatchPayload(refs, inline)
}

// Missing returns the digests of the payload's batch refs whose bodies
// the store does not hold — the fetch-on-miss work list for delivery
// gating. A nil result means the payload is deliverable now.
func (s *Store) Missing(p types.Payload) [][32]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var missing [][32]byte
	for _, r := range p.Batches {
		if _, ok := s.bodies[r.Digest]; !ok {
			missing = append(missing, r.Digest)
		}
	}
	return missing
}

// Bodies returns the payload's referenced batch bodies in ref order.
// Reports false (with no bodies) if any is missing.
func (s *Store) Bodies(p types.Payload) ([]types.Payload, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]types.Payload, 0, len(p.Batches))
	for _, r := range p.Batches {
		b, ok := s.bodies[r.Digest]
		if !ok {
			return nil, false
		}
		out = append(out, b)
	}
	return out, true
}

// MarkDelivered records that the payload's batches were delivered in
// round r, making their bodies eligible for compaction once the
// retention window moves past r.
func (s *Store) MarkDelivered(p types.Payload, r types.Round) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ref := range p.Batches {
		if cur, ok := s.delivered[ref.Digest]; !ok || r > cur {
			s.delivered[ref.Digest] = r
		}
	}
}

// Compact drops bodies of batches delivered before floor, mirroring the
// engine's block-tree pruning: within the retention window bodies stay
// serveable (BatchRequest, restart refetch); behind it they are gone along
// with the blocks that referenced them. Undelivered bodies are kept.
func (s *Store) Compact(floor types.Round) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for digest, r := range s.delivered {
		if r < floor {
			delete(s.bodies, digest)
			delete(s.delivered, digest)
		}
	}
}

// HeldBytes returns the total size of batch bodies currently held —
// the live footprint of the dissemination plane. Scrape-cadence only
// (it walks the body map under the lock); the hot paths never call it.
func (s *Store) HeldBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, b := range s.bodies {
		n += int64(b.Size())
	}
	return n
}

// Metrics reports the store's counters into m under dissem-prefixed keys.
func (s *Store) Metrics(m map[string]int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m["dissemBatchesCut"] = s.cut
	m["dissemAcks"] = s.acks
	m["dissemAnnounced"] = s.announced
	m["dissemBodiesHeld"] = int64(len(s.bodies))
	m["dissemOwnPending"] = int64(len(s.own))
}

var _ protocol.PayloadSource = (*Store)(nil)
