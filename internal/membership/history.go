package membership

import (
	"fmt"
	"sync"

	"banyan/internal/types"
)

// History is a replica's append-only sequence of validator sets, epoch 0
// upward. Sets are appended only when a ConfigChange block finalizes (or
// when a trusted snapshot/checkpoint restores a longer prefix), so every
// honest replica's history is a prefix of every other's — the engine
// queries it for the set in effect at any round it still handles
// messages for.
//
// All methods are safe for concurrent use: the engine appends on its
// event loop while hosts (cluster, harness, metrics) read.
type History struct {
	mu   sync.RWMutex
	sets []*ValidatorSet // ascending epoch == index; ascending activation
}

// NewHistory starts a history at its genesis set (epoch 0, activation 0).
func NewHistory(genesis *ValidatorSet) (*History, error) {
	if genesis.Epoch() != 0 || genesis.Activation() != 0 {
		return nil, fmt.Errorf("membership: genesis set must be epoch 0 active from round 0, got epoch %d round %d",
			genesis.Epoch(), genesis.Activation())
	}
	return &History{sets: []*ValidatorSet{genesis}}, nil
}

// Genesis returns the epoch-0 set.
func (h *History) Genesis() *ValidatorSet {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.sets[0]
}

// Current returns the newest set.
func (h *History) Current() *ValidatorSet {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.sets[len(h.sets)-1]
}

// SetForRound returns the set in effect at round r: the one with the
// greatest activation <= r.
func (h *History) SetForRound(r types.Round) *ValidatorSet {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for i := len(h.sets) - 1; i > 0; i-- {
		if h.sets[i].Activation() <= r {
			return h.sets[i]
		}
	}
	return h.sets[0]
}

// SetForEpoch returns the set with the given epoch, or nil when the
// history has not reached it.
func (h *History) SetForEpoch(epoch uint32) *ValidatorSet {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if int(epoch) >= len(h.sets) {
		return nil
	}
	return h.sets[epoch]
}

// EpochForRound returns the epoch in effect at round r.
func (h *History) EpochForRound(r types.Round) uint32 {
	return h.SetForRound(r).Epoch()
}

// Apply derives the next set from a change finalized at round changeRound
// (activation changeRound+1) and appends it. An inapplicable change — one
// Apply on the current set rejects, or one finalized at a round the
// current set does not precede — is a deterministic no-op: every honest
// replica evaluates the same finalized change against the same history,
// so all of them skip it together. Returns the new set and whether the
// change took effect.
func (h *History) Apply(c *types.ConfigChange, changeRound types.Round) (*ValidatorSet, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.sets[len(h.sets)-1]
	next, err := cur.Apply(c, changeRound+1)
	if err != nil {
		return nil, false
	}
	h.sets = append(h.sets, next)
	return next, true
}

// Descs returns the full history as wire descriptors (ascending epochs),
// the shape snapshots and WAL checkpoints carry.
func (h *History) Descs() []*types.ValidatorSetDesc {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]*types.ValidatorSetDesc, len(h.sets))
	for i, s := range h.sets {
		out[i] = s.Desc()
	}
	return out
}

// VerifyChain checks a claimed history structurally: epoch 0 anchored at
// round 0, epochs dense and ascending, activations strictly increasing,
// every transition a single legal add/remove with F/P and surviving keys
// unchanged, and every set satisfying the Banyan bound. It does NOT check
// the chain against any local trust anchor — pair it with VerifyExtends.
func VerifyChain(descs []*types.ValidatorSetDesc) ([]*ValidatorSet, error) {
	if len(descs) == 0 {
		return nil, fmt.Errorf("membership: empty set history")
	}
	if len(descs) > types.MaxSnapshotSets {
		return nil, fmt.Errorf("membership: set history of %d exceeds limit", len(descs))
	}
	sets := make([]*ValidatorSet, 0, len(descs))
	for i, d := range descs {
		if d == nil {
			return nil, fmt.Errorf("membership: nil set at index %d", i)
		}
		if d.Epoch != uint32(i) {
			return nil, fmt.Errorf("membership: epoch %d at index %d", d.Epoch, i)
		}
		s, err := FromDesc(d, nil)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			if s.Activation() != 0 {
				return nil, fmt.Errorf("membership: genesis set active from round %d", s.Activation())
			}
		} else {
			prev := sets[i-1]
			if s.Activation() <= prev.Activation() {
				return nil, fmt.Errorf("membership: epoch %d activation %d not after epoch %d activation %d",
					s.Epoch(), s.Activation(), prev.Epoch(), prev.Activation())
			}
			if _, err := prev.Diff(s); err != nil {
				return nil, err
			}
		}
		sets = append(sets, s)
	}
	return sets, nil
}

// VerifyExtends checks that a structurally valid claimed history agrees
// with the local one on every epoch both know: the local history is the
// replica's trust anchor (rooted at the genesis set it was configured
// with — the standard weak-subjectivity assumption), so a snapshot whose
// set history rewrites a known epoch is rejected no matter what
// certificate it carries.
func (h *History) VerifyExtends(descs []*types.ValidatorSetDesc) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for i, d := range descs {
		if i >= len(h.sets) {
			break
		}
		if !h.sets[i].Desc().Equal(d) {
			return fmt.Errorf("membership: claimed epoch %d disagrees with local history", i)
		}
	}
	if len(descs) < len(h.sets) {
		return fmt.Errorf("membership: claimed history of %d epochs is behind local %d", len(descs), len(h.sets))
	}
	return nil
}

// Restore replaces the history with a verified chain (VerifyChain +
// VerifyExtends must have passed). The epoch-0 beacon schedule of the
// existing genesis set is retained — descriptors do not carry beacons, and
// every replica of a deployment is configured with the same one.
func (h *History) Restore(descs []*types.ValidatorSetDesc) error {
	sets, err := VerifyChain(descs)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	genesis := h.sets[0]
	if !genesis.Desc().Equal(sets[0].Desc()) {
		return fmt.Errorf("membership: restored genesis disagrees with configured genesis")
	}
	sets[0] = genesis
	h.sets = sets
	return nil
}

// Len returns the number of epochs the history holds.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.sets)
}
