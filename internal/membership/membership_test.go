package membership

import (
	"fmt"
	"testing"

	"banyan/internal/beacon"
	"banyan/internal/types"
)

func key(id types.ReplicaID) []byte { return []byte(fmt.Sprintf("key-%d", id)) }

func denseSet(t *testing.T, n, f, p int, bc beacon.Beacon) *ValidatorSet {
	t.Helper()
	members := make([]types.ReplicaID, n)
	keys := make([][]byte, n)
	for i := range members {
		members[i] = types.ReplicaID(i)
		keys[i] = key(types.ReplicaID(i))
	}
	s, err := New(0, 0, members, keys, f, p, bc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	mk := func(members []types.ReplicaID) ([]types.ReplicaID, [][]byte) {
		keys := make([][]byte, len(members))
		for i, m := range members {
			keys[i] = key(m)
		}
		return members, keys
	}
	cases := []struct {
		name    string
		epoch   uint32
		members []types.ReplicaID
		mangle  func(m []types.ReplicaID, k [][]byte) ([]types.ReplicaID, [][]byte)
		beacon  bool
	}{
		{name: "unsorted members", members: []types.ReplicaID{2, 0, 1, 3}},
		{name: "duplicate member", members: []types.ReplicaID{0, 1, 1, 3}},
		{name: "key count mismatch", members: []types.ReplicaID{0, 1, 2, 3},
			mangle: func(m []types.ReplicaID, k [][]byte) ([]types.ReplicaID, [][]byte) { return m, k[:3] }},
		{name: "params below Banyan bound", members: []types.ReplicaID{0, 1}},
		{name: "beacon on later epoch", epoch: 1, members: []types.ReplicaID{0, 1, 2, 3}, beacon: true},
		{name: "beacon over sparse members", members: []types.ReplicaID{0, 1, 2, 4}, beacon: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			members, keys := mk(tc.members)
			if tc.mangle != nil {
				members, keys = tc.mangle(members, keys)
			}
			var bc beacon.Beacon
			if tc.beacon {
				var err error
				bc, err = beacon.NewRoundRobin(len(members))
				if err != nil {
					t.Fatal(err)
				}
			}
			if _, err := New(tc.epoch, 0, members, keys, 1, 1, bc); err == nil {
				t.Fatalf("New accepted %s", tc.name)
			}
		})
	}
}

// TestScheduleGenesisDelegates: epoch 0 must reproduce the configured
// beacon's schedule exactly — reconfiguration must not perturb a
// deployment that never reconfigures.
func TestScheduleGenesisDelegates(t *testing.T) {
	bc, err := beacon.NewRoundRobin(4)
	if err != nil {
		t.Fatal(err)
	}
	s := denseSet(t, 4, 1, 1, bc)
	for r := types.Round(1); r < 40; r++ {
		if got, want := s.Leader(r), bc.ReplicaAt(r, 0); got != want {
			t.Fatalf("round %d leader %d, beacon says %d", r, got, want)
		}
		for _, id := range s.Members() {
			if got, want := s.RankOf(r, id), bc.RankOf(r, id); got != want {
				t.Fatalf("round %d rank of %d: %d, beacon says %d", r, id, got, want)
			}
		}
	}
	if s.RankOf(3, types.ReplicaID(9)) != types.NoRank {
		t.Fatal("non-member got a rank")
	}
}

// TestScheduleSparseRotation: later epochs rotate round-robin over the
// ordered member list, every member leading once per size rounds, and
// ReplicaAt must invert RankOf.
func TestScheduleSparseRotation(t *testing.T) {
	members := []types.ReplicaID{0, 2, 3, 5, 6}
	keys := make([][]byte, len(members))
	for i, m := range members {
		keys[i] = key(m)
	}
	s, err := New(3, 100, members, keys, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	size := len(members)
	for r := types.Round(100); r < types.Round(100+3*size); r++ {
		seen := make(map[types.Rank]types.ReplicaID)
		for _, id := range members {
			rk := s.RankOf(r, id)
			if rk == types.NoRank {
				t.Fatalf("member %d has no rank at round %d", id, r)
			}
			if prev, dup := seen[rk]; dup {
				t.Fatalf("round %d: members %d and %d share rank %d", r, prev, id, rk)
			}
			seen[rk] = id
			if got := s.ReplicaAt(r, rk); got != id {
				t.Fatalf("round %d: ReplicaAt(%d) = %d, want %d", r, rk, got, id)
			}
		}
	}
	// Leadership is fair: size consecutive rounds cycle every member.
	led := make(map[types.ReplicaID]bool)
	for r := types.Round(100); r < types.Round(100+size); r++ {
		led[s.Leader(r)] = true
	}
	if len(led) != size {
		t.Fatalf("only %d of %d members led in one rotation", len(led), size)
	}
	if s.RankOf(101, types.ReplicaID(1)) != types.NoRank {
		t.Fatal("non-member 1 got a rank in a sparse set")
	}
}

func TestApplyAddRemove(t *testing.T) {
	s := denseSet(t, 4, 1, 1, nil)

	added, err := s.Apply(&types.ConfigChange{Op: types.ConfigAdd, Replica: 4, PubKey: key(4)}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if added.Epoch() != 1 || added.Activation() != 50 || added.Size() != 5 || !added.Contains(4) {
		t.Fatalf("add produced epoch %d activation %d members %v", added.Epoch(), added.Activation(), added.Members())
	}
	if got := added.Params(); got.N != 5 || got.F != 1 || got.P != 1 {
		t.Fatalf("add carried params %+v", got)
	}
	if string(added.Key(4)) != string(key(4)) {
		t.Fatal("added member's key not adopted")
	}

	removed, err := added.Apply(&types.ConfigChange{Op: types.ConfigRemove, Replica: 2}, 90)
	if err != nil {
		t.Fatal(err)
	}
	if removed.Epoch() != 2 || removed.Size() != 4 || removed.Contains(2) {
		t.Fatalf("remove produced epoch %d members %v", removed.Epoch(), removed.Members())
	}

	// Inapplicable changes are errors (hosts treat them as no-ops).
	bad := []struct {
		name string
		c    types.ConfigChange
		at   types.Round
	}{
		{"add existing member", types.ConfigChange{Op: types.ConfigAdd, Replica: 0, PubKey: key(0)}, 50},
		{"add without key", types.ConfigChange{Op: types.ConfigAdd, Replica: 7}, 50},
		{"remove non-member", types.ConfigChange{Op: types.ConfigRemove, Replica: 9}, 50},
		{"activation not after current", types.ConfigChange{Op: types.ConfigAdd, Replica: 4, PubKey: key(4)}, 0},
		{"shrink below bound", types.ConfigChange{Op: types.ConfigRemove, Replica: 3}, 50},
	}
	three := denseSet(t, 4, 1, 1, nil)
	for _, tc := range bad {
		s := s
		if tc.name == "shrink below bound" {
			s = three // removing from n=4 leaves n=3, violating n > 2(f+p)
		}
		if _, err := s.Apply(&tc.c, tc.at); err == nil {
			t.Errorf("Apply accepted %s", tc.name)
		}
	}
}

func TestDiff(t *testing.T) {
	s := denseSet(t, 4, 1, 1, nil)
	added, err := s.Apply(&types.ConfigChange{Op: types.ConfigAdd, Replica: 4, PubKey: key(4)}, 50)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Diff(added)
	if err != nil {
		t.Fatal(err)
	}
	if c.Op != types.ConfigAdd || c.Replica != 4 || string(c.PubKey) != string(key(4)) {
		t.Fatalf("Diff recovered %v", c)
	}
	c, err = added.Diff(s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Op != types.ConfigRemove || c.Replica != 4 {
		t.Fatalf("reverse Diff recovered %v", c)
	}
	if _, err := s.Diff(s); err == nil {
		t.Fatal("Diff accepted identical sets")
	}
	twoSteps, err := added.Apply(&types.ConfigChange{Op: types.ConfigAdd, Replica: 5, PubKey: key(5)}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Diff(twoSteps); err == nil {
		t.Fatal("Diff accepted a two-step transition")
	}
}

func TestDescRoundTrip(t *testing.T) {
	bc, err := beacon.NewRoundRobin(4)
	if err != nil {
		t.Fatal(err)
	}
	s := denseSet(t, 4, 1, 1, bc)
	back, err := FromDesc(s.Desc(), bc)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Desc().Equal(s.Desc()) {
		t.Fatal("Desc round-trip changed the set")
	}
	if back.Leader(7) != s.Leader(7) {
		t.Fatal("round-trip lost the beacon schedule")
	}
}

func TestHistoryLookup(t *testing.T) {
	hist, err := NewHistory(denseSet(t, 4, 1, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := hist.Apply(&types.ConfigChange{Op: types.ConfigAdd, Replica: 4, PubKey: key(4)}, 49); !ok {
		t.Fatal("add did not apply")
	}
	if _, ok := hist.Apply(&types.ConfigChange{Op: types.ConfigRemove, Replica: 4}, 99); !ok {
		t.Fatal("remove did not apply")
	}
	if hist.Len() != 3 {
		t.Fatalf("history holds %d epochs, want 3", hist.Len())
	}
	for _, tc := range []struct {
		round types.Round
		epoch uint32
	}{{0, 0}, {49, 0}, {50, 1}, {99, 1}, {100, 2}, {1 << 30, 2}} {
		if got := hist.SetForRound(tc.round).Epoch(); got != tc.epoch {
			t.Errorf("round %d resolved to epoch %d, want %d", tc.round, got, tc.epoch)
		}
		if got := hist.EpochForRound(tc.round); got != tc.epoch {
			t.Errorf("EpochForRound(%d) = %d, want %d", tc.round, got, tc.epoch)
		}
	}
	if hist.SetForEpoch(3) != nil {
		t.Fatal("SetForEpoch returned a set beyond the history")
	}
	if hist.Current().Epoch() != 2 || hist.Genesis().Epoch() != 0 {
		t.Fatal("Current/Genesis misrouted")
	}
	// Re-applying a change the history already absorbed is a no-op.
	if _, ok := hist.Apply(&types.ConfigChange{Op: types.ConfigRemove, Replica: 4}, 120); ok {
		t.Fatal("removing an already-removed member applied")
	}
	if hist.Len() != 3 {
		t.Fatalf("no-op change grew the history to %d", hist.Len())
	}
}

func TestVerifyChainAndRestore(t *testing.T) {
	bc, err := beacon.NewRoundRobin(4)
	if err != nil {
		t.Fatal(err)
	}
	genesis := denseSet(t, 4, 1, 1, bc)
	hist, err := NewHistory(genesis)
	if err != nil {
		t.Fatal(err)
	}
	hist.Apply(&types.ConfigChange{Op: types.ConfigAdd, Replica: 4, PubKey: key(4)}, 49)
	hist.Apply(&types.ConfigChange{Op: types.ConfigRemove, Replica: 1}, 99)
	descs := hist.Descs()

	if _, err := VerifyChain(descs); err != nil {
		t.Fatalf("legal chain rejected: %v", err)
	}

	// Structural corruption must be rejected.
	corrupt := func(name string, f func(d []*types.ValidatorSetDesc)) {
		cp := make([]*types.ValidatorSetDesc, len(descs))
		for i, d := range descs {
			c := *d
			c.Members = append([]types.ReplicaID(nil), d.Members...)
			c.Keys = append([][]byte(nil), d.Keys...)
			cp[i] = &c
		}
		f(cp)
		if _, err := VerifyChain(cp); err == nil {
			t.Errorf("VerifyChain accepted %s", name)
		}
	}
	corrupt("non-dense epochs", func(d []*types.ValidatorSetDesc) { d[1].Epoch = 5 })
	corrupt("non-increasing activation", func(d []*types.ValidatorSetDesc) { d[2].Activation = d[1].Activation })
	corrupt("two-step transition", func(d []*types.ValidatorSetDesc) {
		d[1].Members = append(d[1].Members, 9)
		d[1].Keys = append(d[1].Keys, key(9))
	})
	corrupt("rekeyed survivor", func(d []*types.ValidatorSetDesc) { d[1].Keys[0] = []byte("evil") })
	corrupt("genesis not at round 0", func(d []*types.ValidatorSetDesc) { d[0].Activation = 1 })

	// A fresh replica configured with the same genesis restores the chain;
	// the beacon schedule survives because epoch 0 keeps the local set.
	fresh, err := NewHistory(denseSet(t, 4, 1, 1, bc))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.VerifyExtends(descs); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(descs); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 3 || fresh.Current().Epoch() != 2 {
		t.Fatalf("restore produced %d epochs, current %d", fresh.Len(), fresh.Current().Epoch())
	}
	if fresh.Genesis().Leader(7) != bc.ReplicaAt(7, 0) {
		t.Fatal("restore lost the genesis beacon schedule")
	}

	// A history that already knows an epoch rejects a rewrite of it, and a
	// shorter chain than the local one cannot "extend" it.
	if err := hist.VerifyExtends(descs[:2]); err == nil {
		t.Fatal("VerifyExtends accepted a chain behind the local history")
	}
	rewritten := make([]*types.ValidatorSetDesc, len(descs))
	copy(rewritten, descs)
	alt := *descs[1]
	alt.Activation++
	rewritten[1] = &alt
	if err := hist.VerifyExtends(rewritten); err == nil {
		t.Fatal("VerifyExtends accepted a rewritten epoch")
	}
	other, err := NewHistory(denseSet(t, 5, 1, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(descs); err == nil {
		t.Fatal("Restore accepted a chain with a different genesis")
	}
}

func TestReconfigurator(t *testing.T) {
	var r Reconfigurator
	if r.Pending() != nil {
		t.Fatal("fresh reconfigurator has a pending change")
	}
	add := types.ConfigChange{Op: types.ConfigAdd, Replica: 4, PubKey: key(4)}
	r.Propose(add)
	if p := r.Pending(); p == nil || !p.Equal(&add) {
		t.Fatalf("Pending() = %v after Propose", p)
	}
	// A newer proposal replaces an unproposed older one.
	rm := types.ConfigChange{Op: types.ConfigRemove, Replica: 2}
	r.Propose(rm)
	if p := r.Pending(); !p.Equal(&rm) {
		t.Fatalf("Pending() = %v, want the newer change", p)
	}
	// Observing an unrelated finalized change leaves the slot alone;
	// observing the equal one clears it.
	r.Observe(&add)
	if r.Pending() == nil {
		t.Fatal("unrelated observation cleared the slot")
	}
	r.Observe(&rm)
	if r.Pending() != nil {
		t.Fatal("observation of the finalized change did not clear the slot")
	}
	r.Observe(nil) // must not panic with an empty slot
}
