package membership

import (
	"sync"

	"banyan/internal/types"
)

// Reconfigurator is the hand-off slot between a host and its engine: the
// host queues a validator-set change (Cluster.ProposeConfigChange, the
// localnet flags), and the engine attaches the pending change to the next
// block it proposes. One change is pending at a time; a newer Propose
// replaces an unproposed older one. The slot clears when the engine
// observes the change applied — or rejected as a no-op — in a finalized
// block, so a change that rides a block that never finalizes is retried
// on the proposer's next turn.
type Reconfigurator struct {
	mu      sync.Mutex
	pending *types.ConfigChange
}

// Propose queues a change for the engine's next proposal.
func (r *Reconfigurator) Propose(c types.ConfigChange) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pending = &c
}

// Pending returns the queued change, or nil.
func (r *Reconfigurator) Pending() *types.ConfigChange {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending
}

// Observe clears the slot when a finalized block carried an equal change —
// whichever replica proposed it, and whether or not it applied.
func (r *Reconfigurator) Observe(c *types.ConfigChange) {
	if c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pending.Equal(c) {
		r.pending = nil
	}
}
