// Package membership makes the validator set a first-class, epoch-scoped
// object. PR 6 gave fresh replicas a way *into* a running cluster; this
// package makes the set itself changeable: a finalized ConfigChange block
// at round R produces the next epoch's set, active from round R+1 (the
// activation rule). Everything that used to assume a fixed n — quorum
// sizes, leader rotation, certificate verification, snapshot trust —
// consults the set in effect at the relevant round instead.
//
// The set history is derived exclusively from finalized blocks, so every
// honest replica converges on the same sequence of sets; a replica that
// lags simply applies changes later, and certificate verification is
// pinned to the epoch of the certified round, so old certs keep verifying
// after the set moves on.
package membership

import (
	"bytes"
	"fmt"
	"sort"

	"banyan/internal/beacon"
	"banyan/internal/types"
)

// ValidatorSet is one epoch's validator set: an ordered member list with
// public keys, the quorum parameters derived from it, and a deterministic
// leader schedule over the members. It is immutable once built; Apply
// produces the next epoch's set.
//
// Leader schedule: epoch 0 delegates to the deployment's configured
// beacon (round-robin or hash-chain over the dense genesis IDs). Later
// epochs rotate round-robin over the ordered member list — member
// members[r mod size] leads round r — which stays deterministic no matter
// which IDs joined or left. ValidatorSet implements beacon.Beacon either
// way.
type ValidatorSet struct {
	epoch      uint32
	activation types.Round
	members    []types.ReplicaID // ascending; interned — shared, never mutated
	keys       [][]byte          // keys[i] is members[i]'s public key
	index      map[types.ReplicaID]int
	params     types.Params
	genesis    beacon.Beacon // epoch-0 schedule delegate; nil for later epochs
}

// New builds a validator set. members must be ascending and unique with
// one key each, and the derived Params{N: len(members), F: f, P: p} must
// satisfy the Banyan bound. For epoch 0 a beacon may be supplied to define
// the leader schedule; it must permute exactly the member IDs 0..n-1
// (genesis sets are dense by construction).
func New(epoch uint32, activation types.Round, members []types.ReplicaID, keys [][]byte, f, p int, genesis beacon.Beacon) (*ValidatorSet, error) {
	d := &types.ValidatorSetDesc{
		Epoch:      epoch,
		Activation: activation,
		Members:    members,
		Keys:       keys,
		F:          uint16(f),
		P:          uint16(p),
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("membership: %w", err)
	}
	if genesis != nil {
		if epoch != 0 {
			return nil, fmt.Errorf("membership: beacon schedule only applies to epoch 0, got epoch %d", epoch)
		}
		if genesis.N() != len(members) {
			return nil, fmt.Errorf("membership: beacon permutes %d replicas but set has %d members", genesis.N(), len(members))
		}
		for i, m := range members {
			if int(m) != i {
				return nil, fmt.Errorf("membership: beacon schedule requires dense members 0..n-1, got member %d at index %d", m, i)
			}
		}
	}
	s := &ValidatorSet{
		epoch:      epoch,
		activation: activation,
		members:    types.InternReplicaIDs(append([]types.ReplicaID(nil), members...)),
		keys:       append([][]byte(nil), keys...),
		index:      make(map[types.ReplicaID]int, len(members)),
		params:     d.Params(),
		genesis:    genesis,
	}
	for i, m := range s.members {
		s.index[m] = i
	}
	return s, nil
}

// FromDesc rebuilds a set from its wire descriptor. genesis supplies the
// epoch-0 leader schedule and is ignored for later epochs.
func FromDesc(d *types.ValidatorSetDesc, genesis beacon.Beacon) (*ValidatorSet, error) {
	if d.Epoch != 0 {
		genesis = nil
	}
	return New(d.Epoch, d.Activation, d.Members, d.Keys, int(d.F), int(d.P), genesis)
}

// Epoch returns the set's epoch number (0 = genesis).
func (s *ValidatorSet) Epoch() uint32 { return s.epoch }

// Activation returns the first round the set is in effect.
func (s *ValidatorSet) Activation() types.Round { return s.activation }

// Params returns the quorum parameters the set derives.
func (s *ValidatorSet) Params() types.Params { return s.params }

// Size returns the number of members.
func (s *ValidatorSet) Size() int { return len(s.members) }

// Members returns the ascending member list. The slice is interned —
// shared across every caller and never mutated — so member-filtered
// counting loops borrow it allocation-free.
func (s *ValidatorSet) Members() []types.ReplicaID { return s.members }

// Contains reports whether id is a member.
func (s *ValidatorSet) Contains(id types.ReplicaID) bool {
	_, ok := s.index[id]
	return ok
}

// IndexOf returns id's position in the ordered member list.
func (s *ValidatorSet) IndexOf(id types.ReplicaID) (int, bool) {
	i, ok := s.index[id]
	return i, ok
}

// Key returns a member's public key, or nil for non-members.
func (s *ValidatorSet) Key(id types.ReplicaID) []byte {
	if i, ok := s.index[id]; ok {
		return s.keys[i]
	}
	return nil
}

// N implements beacon.Beacon.
func (s *ValidatorSet) N() int { return len(s.members) }

// RankOf implements beacon.Beacon over the members; non-members get
// types.NoRank.
func (s *ValidatorSet) RankOf(round types.Round, id types.ReplicaID) types.Rank {
	if s.genesis != nil {
		if !s.Contains(id) {
			return types.NoRank
		}
		return s.genesis.RankOf(round, id)
	}
	i, ok := s.index[id]
	if !ok {
		return types.NoRank
	}
	size := uint64(len(s.members))
	shift := uint64(round) % size
	return types.Rank((uint64(i) + size - shift) % size)
}

// ReplicaAt implements beacon.Beacon: the member holding rank in round.
func (s *ValidatorSet) ReplicaAt(round types.Round, rank types.Rank) types.ReplicaID {
	if s.genesis != nil {
		return s.genesis.ReplicaAt(round, rank)
	}
	size := uint64(len(s.members))
	return s.members[(uint64(round)+uint64(rank))%size]
}

// Leader returns the round's rank-0 member.
func (s *ValidatorSet) Leader(round types.Round) types.ReplicaID {
	return s.ReplicaAt(round, 0)
}

// Desc returns the set's wire descriptor. The returned value shares the
// interned member and key slices; treat it as read-only.
func (s *ValidatorSet) Desc() *types.ValidatorSetDesc {
	return &types.ValidatorSetDesc{
		Epoch:      s.epoch,
		Activation: s.activation,
		Members:    s.members,
		Keys:       s.keys,
		F:          uint16(s.params.F),
		P:          uint16(s.params.P),
	}
}

// Apply produces the next epoch's set from a finalized change, active from
// activation (the change block's round + 1). F and P carry over unchanged;
// a change whose resulting parameters would break the Banyan bound (or
// that adds an existing member, removes a non-member, adds without a key,
// or re-adds an ID under a different key than the registry knows) is an
// error — callers treat that as a deterministic no-op, since every honest
// replica evaluates the same change against the same set.
func (s *ValidatorSet) Apply(c *types.ConfigChange, activation types.Round) (*ValidatorSet, error) {
	if c == nil || !c.Op.Valid() {
		return nil, fmt.Errorf("membership: invalid change %v", c)
	}
	if activation <= s.activation {
		return nil, fmt.Errorf("membership: activation %d not after epoch %d activation %d", activation, s.epoch, s.activation)
	}
	var members []types.ReplicaID
	var keys [][]byte
	switch c.Op {
	case types.ConfigAdd:
		if s.Contains(c.Replica) {
			return nil, fmt.Errorf("membership: add: %d already a member of epoch %d", c.Replica, s.epoch)
		}
		if len(c.PubKey) == 0 {
			return nil, fmt.Errorf("membership: add: %d carries no public key", c.Replica)
		}
		at := sort.Search(len(s.members), func(i int) bool { return s.members[i] > c.Replica })
		members = make([]types.ReplicaID, 0, len(s.members)+1)
		members = append(members, s.members[:at]...)
		members = append(members, c.Replica)
		members = append(members, s.members[at:]...)
		keys = make([][]byte, 0, len(s.keys)+1)
		keys = append(keys, s.keys[:at]...)
		keys = append(keys, c.PubKey)
		keys = append(keys, s.keys[at:]...)
	case types.ConfigRemove:
		i, ok := s.index[c.Replica]
		if !ok {
			return nil, fmt.Errorf("membership: remove: %d not a member of epoch %d", c.Replica, s.epoch)
		}
		members = make([]types.ReplicaID, 0, len(s.members)-1)
		members = append(members, s.members[:i]...)
		members = append(members, s.members[i+1:]...)
		keys = make([][]byte, 0, len(s.keys)-1)
		keys = append(keys, s.keys[:i]...)
		keys = append(keys, s.keys[i+1:]...)
	}
	return New(s.epoch+1, activation, members, keys, s.params.F, s.params.P, nil)
}

// Diff returns the single change that turns s into next, or an error when
// the sets do not differ by exactly one add or remove with F/P unchanged.
// Chain verification uses it to check that a claimed history only moves in
// legal steps.
func (s *ValidatorSet) Diff(next *ValidatorSet) (*types.ConfigChange, error) {
	if next.params.F != s.params.F || next.params.P != s.params.P {
		return nil, fmt.Errorf("membership: epoch %d -> %d changes f/p", s.epoch, next.epoch)
	}
	switch len(next.members) - len(s.members) {
	case 1:
		for i, m := range next.members {
			if _, ok := s.index[m]; !ok {
				return &types.ConfigChange{Op: types.ConfigAdd, Replica: m, PubKey: next.keys[i]}, s.sameExcept(next, m)
			}
		}
	case -1:
		for _, m := range s.members {
			if !next.Contains(m) {
				return &types.ConfigChange{Op: types.ConfigRemove, Replica: m}, s.sameExcept(next, m)
			}
		}
	}
	return nil, fmt.Errorf("membership: epoch %d -> %d is not a single add/remove", s.epoch, next.epoch)
}

// sameExcept checks every member other than skip appears in both sets
// under the same key.
func (s *ValidatorSet) sameExcept(next *ValidatorSet, skip types.ReplicaID) error {
	for i, m := range s.members {
		if m == skip {
			continue
		}
		j, ok := next.index[m]
		if !ok {
			return fmt.Errorf("membership: epoch %d -> %d drops member %d", s.epoch, next.epoch, m)
		}
		if !bytes.Equal(s.keys[i], next.keys[j]) {
			return fmt.Errorf("membership: epoch %d -> %d changes member %d's key", s.epoch, next.epoch, m)
		}
	}
	for _, m := range next.members {
		if m == skip {
			continue
		}
		if !s.Contains(m) {
			return fmt.Errorf("membership: epoch %d -> %d gains extra member %d", s.epoch, next.epoch, m)
		}
	}
	return nil
}
