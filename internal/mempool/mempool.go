// Package mempool supplies block payloads.
//
// Two sources are provided, matching the repository's two modes of use:
//
//   - Synthetic: the paper's benchmark workload (section 9.2) — the leader
//     generates a pseudo-random bit vector of a configured size for every
//     block it proposes. Used by the simulator and the benchmarks.
//   - Pool: a FIFO transaction mempool for the SMR example applications —
//     clients submit opaque transactions, proposers drain them into block
//     payloads up to a size limit.
package mempool

import (
	"encoding/binary"
	"sync"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Synthetic produces fixed-size pseudo-random payloads, one per proposal.
// It is safe for single-goroutine use (engines run single-threaded).
type Synthetic struct {
	size int
	seed uint64
	n    uint64
	// Materialized controls whether payloads carry real bytes (needed on
	// the TCP transport) or stay as size-only descriptors (simulation).
	materialized bool
}

var _ protocol.PayloadSource = (*Synthetic)(nil)

// NewSynthetic builds a source of size-byte payloads derived from seed.
func NewSynthetic(size int, seed uint64, materialized bool) *Synthetic {
	return &Synthetic{size: size, seed: seed, materialized: materialized}
}

// NextPayload implements protocol.PayloadSource.
func (s *Synthetic) NextPayload(round types.Round) types.Payload {
	s.n++
	sub := s.seed ^ uint64(round)<<20 ^ s.n
	p := types.SyntheticPayload(s.size, sub)
	if s.materialized {
		return types.BytesPayload(p.Materialize())
	}
	return p
}

// Pool is a bounded FIFO transaction mempool. It is safe for concurrent
// use: the node runtime calls NextPayload from the engine goroutine while
// clients Submit from anywhere.
//
// Locking is split so client-facing Submit never stalls behind block
// construction: the ingress mutex guards only the queue (Submit holds it
// for an append), while NextPayload serializes builders on its own
// mutex, claims the transactions that fit under a brief ingress
// critical section (length arithmetic only), and assembles the batch —
// the memcpy-heavy part — with the ingress lock released.
//
// Transactions are length-prefixed when batched into a payload; DecodeBatch
// recovers them on commit.
type Pool struct {
	mu       sync.Mutex // ingress: guards txs and bytes
	txs      [][]byte
	bytes    int
	maxBytes int // cap on buffered bytes; Submit fails beyond it
	maxBlock int // cap on bytes drained into one payload

	buildMu sync.Mutex // serializes NextPayload batch construction
}

var _ protocol.PayloadSource = (*Pool)(nil)

// NewPool creates a mempool buffering at most maxBytes of transactions and
// draining at most maxBlock bytes per block.
func NewPool(maxBytes, maxBlock int) *Pool {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	if maxBlock <= 0 {
		maxBlock = 1 << 20
	}
	return &Pool{maxBytes: maxBytes, maxBlock: maxBlock}
}

// Submit queues a transaction; it reports false when the pool is full or
// the transaction alone exceeds the per-block limit.
func (p *Pool) Submit(tx []byte) bool {
	if len(tx) == 0 || len(tx)+4 > p.maxBlock {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bytes+len(tx) > p.maxBytes {
		return false
	}
	cp := make([]byte, len(tx))
	copy(cp, tx)
	p.txs = append(p.txs, cp)
	p.bytes += len(tx)
	return true
}

// Len returns the number of queued transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.txs)
}

// NextPayload implements protocol.PayloadSource: drains queued
// transactions, oldest first, into a length-prefixed batch of at most
// maxBlock bytes. An empty pool yields an empty payload (empty blocks keep
// the chain growing, as in the paper's implementation).
func (p *Pool) NextPayload(types.Round) types.Payload {
	p.buildMu.Lock()
	defer p.buildMu.Unlock()

	// Claim phase (ingress lock, O(claimed) integer work): decide how many
	// transactions fit and detach them from the queue.
	p.mu.Lock()
	var (
		used int
		size int
	)
	for used < len(p.txs) {
		tx := p.txs[used]
		if size+4+len(tx) > p.maxBlock {
			break
		}
		size += 4 + len(tx)
		p.bytes -= len(tx)
		used++
	}
	claimed := p.txs[:used:used]
	p.txs = p.txs[used:]
	p.mu.Unlock()

	if used == 0 {
		return types.Payload{}
	}
	// Build phase (no ingress lock): one exact-size allocation, then copy.
	batch := make([]byte, 0, size)
	for _, tx := range claimed {
		batch = binary.LittleEndian.AppendUint32(batch, uint32(len(tx)))
		batch = append(batch, tx...)
	}
	return types.BytesPayload(batch)
}

// DecodeBatch splits a payload produced by Pool.NextPayload back into
// transactions. It returns nil for empty or malformed payloads.
func DecodeBatch(payload types.Payload) [][]byte {
	data := payload.Data
	var txs [][]byte
	for len(data) >= 4 {
		n := binary.LittleEndian.Uint32(data[:4])
		data = data[4:]
		if int(n) > len(data) || n == 0 {
			return nil
		}
		txs = append(txs, data[:n])
		data = data[n:]
	}
	if len(data) != 0 {
		return nil
	}
	return txs
}
