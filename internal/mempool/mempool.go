// Package mempool supplies block payloads.
//
// Two sources are provided, matching the repository's two modes of use:
//
//   - Synthetic: the paper's benchmark workload (section 9.2) — the leader
//     generates a pseudo-random bit vector of a configured size for every
//     block it proposes. Used by the simulator and the benchmarks.
//   - Pool: a submitter-sharded FIFO transaction mempool for the SMR
//     example applications — clients submit opaque transactions, proposers
//     drain them into block payloads (or dissemination batches) up to a
//     size limit.
package mempool

import (
	"encoding/binary"
	"errors"
	"sync"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Typed Submit rejections, surfaced through the replica metrics registry
// so operators can tell admission failures apart.
var (
	// ErrTxEmpty rejects zero-length transactions.
	ErrTxEmpty = errors.New("mempool: empty transaction")
	// ErrTxTooLarge rejects a transaction that cannot fit one batch (or
	// block) even alone. The transaction is refused outright — never
	// silently truncated or stranded in the queue.
	ErrTxTooLarge = errors.New("mempool: transaction exceeds batch size limit")
	// ErrPoolFull rejects a transaction when buffering it would exceed the
	// pool's byte budget.
	ErrPoolFull = errors.New("mempool: pool is full")
)

// Synthetic produces fixed-size pseudo-random payloads, one per proposal.
// It is safe for single-goroutine use (engines run single-threaded).
type Synthetic struct {
	size int
	seed uint64
	n    uint64
	// Materialized controls whether payloads carry real bytes (needed on
	// the TCP transport) or stay as size-only descriptors (simulation).
	materialized bool
}

var _ protocol.PayloadSource = (*Synthetic)(nil)

// NewSynthetic builds a source of size-byte payloads derived from seed.
func NewSynthetic(size int, seed uint64, materialized bool) *Synthetic {
	return &Synthetic{size: size, seed: seed, materialized: materialized}
}

// NextPayload implements protocol.PayloadSource.
func (s *Synthetic) NextPayload(round types.Round) types.Payload {
	s.n++
	sub := s.seed ^ uint64(round)<<20 ^ s.n
	p := types.SyntheticPayload(s.size, sub)
	if s.materialized {
		return types.BytesPayload(p.Materialize())
	}
	return p
}

// CutBatch implements dissem.Source: the synthetic workload is a
// bottomless transaction supply, so every cut yields a full batch of max
// bytes with a fresh seed. The dissemination store's inventory target is
// what bounds the cut rate.
func (s *Synthetic) CutBatch(max int) types.Payload {
	if max <= 0 {
		return types.Payload{}
	}
	s.n++
	p := types.SyntheticPayload(max, s.seed^0xD15E<<40^s.n)
	if s.materialized {
		return types.BytesPayload(p.Materialize())
	}
	return p
}

// Pool is a bounded, submitter-sharded FIFO transaction mempool. It is
// safe for concurrent use: the node runtime calls NextPayload/CutBatch
// from the engine goroutine while clients Submit from anywhere.
//
// Sharding: each submitter hashes to one of the pool's shards (per-shard
// FIFO), and batch construction drains shards round-robin, one
// transaction per non-empty shard per pass. One heavy submitter therefore
// cannot starve the others, and the drain order is a deterministic
// function of the submission sequence — the property the dissemination
// layer's same-sequence equivalence with inline payloads rests on.
//
// Locking is split so client-facing Submit never stalls behind block
// construction: the ingress mutex guards only the queues (Submit holds it
// for an append), while NextPayload/CutBatch serialize builders on their
// own mutex, claim the transactions that fit under a brief ingress
// critical section (length arithmetic only), and assemble the batch —
// the memcpy-heavy part — with the ingress lock released.
//
// Transactions are length-prefixed when batched into a payload; DecodeBatch
// recovers them on commit.
type Pool struct {
	mu       sync.Mutex // ingress: guards shards and bytes
	shards   []poolShard
	bytes    int
	maxBytes int // cap on buffered bytes; Submit fails beyond it
	maxBlock int // cap on bytes drained into one payload

	rejectedOversize int64
	rejectedFull     int64

	buildMu sync.Mutex // serializes batch construction
}

type poolShard struct {
	txs [][]byte
}

var _ protocol.PayloadSource = (*Pool)(nil)

// NewPool creates a single-shard mempool buffering at most maxBytes of
// transactions and draining at most maxBlock bytes per block.
func NewPool(maxBytes, maxBlock int) *Pool {
	return NewShardedPool(maxBytes, maxBlock, 1)
}

// NewShardedPool creates a mempool with the given number of submitter
// shards.
func NewShardedPool(maxBytes, maxBlock, shards int) *Pool {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	if maxBlock <= 0 {
		maxBlock = 1 << 20
	}
	if shards <= 0 {
		shards = 1
	}
	return &Pool{maxBytes: maxBytes, maxBlock: maxBlock, shards: make([]poolShard, shards)}
}

// Submit queues a transaction from the anonymous submitter; it reports
// false when the pool rejects it. Use SubmitErr for the typed reason.
func (p *Pool) Submit(tx []byte) bool { return p.SubmitErr(tx) == nil }

// SubmitErr queues a transaction from the anonymous submitter, returning
// the typed rejection (ErrTxEmpty, ErrTxTooLarge, ErrPoolFull) on
// failure.
func (p *Pool) SubmitErr(tx []byte) error { return p.SubmitFrom(0, tx) }

// SubmitFrom queues a transaction from the given submitter, routing it to
// that submitter's shard.
func (p *Pool) SubmitFrom(submitter uint64, tx []byte) error {
	if len(tx) == 0 {
		return ErrTxEmpty
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(tx)+4 > p.maxBlock {
		p.rejectedOversize++
		return ErrTxTooLarge
	}
	if p.bytes+len(tx) > p.maxBytes {
		p.rejectedFull++
		return ErrPoolFull
	}
	cp := make([]byte, len(tx))
	copy(cp, tx)
	sh := &p.shards[int(submitter%uint64(len(p.shards)))]
	sh.txs = append(sh.txs, cp)
	p.bytes += len(tx)
	return nil
}

// Len returns the number of queued transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.shards {
		n += len(p.shards[i].txs)
	}
	return n
}

// Metrics reports the pool's admission counters into m.
func (p *Pool) Metrics(m map[string]int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m["mempoolRejectedOversize"] = p.rejectedOversize
	m["mempoolRejectedFull"] = p.rejectedFull
}

// claim detaches up to budget bytes of transactions (including their
// 4-byte length prefixes) from the shards, round-robin one transaction
// per non-empty shard per pass, FIFO within a shard, always starting at
// shard 0 so the drain order is a pure function of the queue state.
// Caller must hold buildMu; the ingress lock is taken internally for the
// O(claimed) pointer work only. Returns the claimed transactions in drain
// order and their total batched size.
func (p *Pool) claim(budget int) ([][]byte, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var (
		claimed [][]byte
		size    int
	)
	for {
		progress := false
		for i := 0; i < len(p.shards); i++ {
			sh := &p.shards[i]
			if len(sh.txs) == 0 {
				continue
			}
			tx := sh.txs[0]
			if size+4+len(tx) > budget {
				continue
			}
			sh.txs = sh.txs[1:]
			claimed = append(claimed, tx)
			size += 4 + len(tx)
			p.bytes -= len(tx)
			progress = true
		}
		if !progress {
			break
		}
	}
	return claimed, size
}

func batchOf(claimed [][]byte, size int) types.Payload {
	if len(claimed) == 0 {
		return types.Payload{}
	}
	batch := make([]byte, 0, size)
	for _, tx := range claimed {
		batch = binary.LittleEndian.AppendUint32(batch, uint32(len(tx)))
		batch = append(batch, tx...)
	}
	return types.BytesPayload(batch)
}

// NextPayload implements protocol.PayloadSource: drains queued
// transactions into a length-prefixed batch of at most maxBlock bytes. An
// empty pool yields an empty payload (empty blocks keep the chain
// growing, as in the paper's implementation).
func (p *Pool) NextPayload(types.Round) types.Payload {
	p.buildMu.Lock()
	defer p.buildMu.Unlock()
	return batchOf(p.claim(p.maxBlock))
}

// CutBatch implements dissem.Source: identical drain discipline to
// NextPayload, but bounded by the dissemination layer's batch size. Since
// both paths share claim's round-robin order, a chain built from
// disseminated batches commits the same transaction sequence an inline
// chain would.
func (p *Pool) CutBatch(max int) types.Payload {
	p.buildMu.Lock()
	defer p.buildMu.Unlock()
	if max > p.maxBlock {
		max = p.maxBlock
	}
	return batchOf(p.claim(max))
}

// DecodeBatch splits a payload produced by Pool.NextPayload back into
// transactions. It returns nil for empty or malformed payloads.
func DecodeBatch(payload types.Payload) [][]byte {
	data := payload.Data
	var txs [][]byte
	for len(data) >= 4 {
		n := binary.LittleEndian.Uint32(data[:4])
		data = data[4:]
		if int(n) > len(data) || n == 0 {
			return nil
		}
		txs = append(txs, data[:n])
		data = data[n:]
	}
	if len(data) != 0 {
		return nil
	}
	return txs
}
