package mempool

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"banyan/internal/types"
)

func TestSyntheticSource(t *testing.T) {
	src := NewSynthetic(4096, 1, false)
	p1 := src.NextPayload(1)
	p2 := src.NextPayload(1)
	if !p1.IsSynthetic() || p1.Size() != 4096 {
		t.Fatalf("unexpected payload %+v", p1)
	}
	if p1.Digest() == p2.Digest() {
		t.Fatal("consecutive synthetic payloads must differ")
	}
	mat := NewSynthetic(128, 1, true)
	p := mat.NextPayload(1)
	if p.IsSynthetic() || len(p.Data) != 128 {
		t.Fatalf("materialized payload %+v", p)
	}
}

func TestPoolFIFOAndBatching(t *testing.T) {
	pool := NewPool(0, 1024)
	var want [][]byte
	for i := 0; i < 10; i++ {
		tx := []byte(fmt.Sprintf("tx-%02d", i))
		want = append(want, tx)
		if !pool.Submit(tx) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	if pool.Len() != 10 {
		t.Fatalf("Len = %d, want 10", pool.Len())
	}
	payload := pool.NextPayload(1)
	got := DecodeBatch(payload)
	if len(got) != 10 {
		t.Fatalf("decoded %d transactions, want 10", len(got))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("tx %d out of order: %q vs %q", i, got[i], want[i])
		}
	}
	if pool.Len() != 0 {
		t.Fatalf("pool not drained: %d left", pool.Len())
	}
	if p := pool.NextPayload(2); p.Size() != 0 {
		t.Fatalf("empty pool produced payload of size %d", p.Size())
	}
}

func TestPoolBlockSizeLimit(t *testing.T) {
	pool := NewPool(0, 100)
	big := make([]byte, 200)
	if pool.Submit(big) {
		t.Fatal("transaction larger than a block accepted")
	}
	// Several transactions that cannot all fit in one block.
	for i := 0; i < 5; i++ {
		if !pool.Submit(make([]byte, 30)) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	first := DecodeBatch(pool.NextPayload(1))
	if len(first) != 2 { // 2*(4+30) = 68 fits; 3 would be 102 > 100
		t.Fatalf("first block has %d txs, want 2", len(first))
	}
	second := DecodeBatch(pool.NextPayload(2))
	if len(first)+len(second)+pool.Len() != 5 {
		t.Fatal("transactions lost across batches")
	}
}

func TestPoolCapacity(t *testing.T) {
	pool := NewPool(100, 1000)
	if !pool.Submit(make([]byte, 80)) {
		t.Fatal("first submit rejected")
	}
	if pool.Submit(make([]byte, 30)) {
		t.Fatal("pool accepted beyond its byte capacity")
	}
	pool.NextPayload(1) // drain
	if !pool.Submit(make([]byte, 30)) {
		t.Fatal("submit rejected after drain")
	}
}

func TestPoolRejectsEmpty(t *testing.T) {
	pool := NewPool(0, 0)
	if pool.Submit(nil) || pool.Submit([]byte{}) {
		t.Fatal("empty transaction accepted")
	}
}

func TestPoolConcurrentSubmit(t *testing.T) {
	pool := NewPool(0, 1<<20)
	var wg sync.WaitGroup
	const workers, each = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				pool.Submit([]byte(fmt.Sprintf("w%d-%d", w, i)))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	total := 0
	for {
		select {
		case <-done:
			for {
				batch := DecodeBatch(pool.NextPayload(1))
				if len(batch) == 0 {
					break
				}
				total += len(batch)
			}
			if total != workers*each {
				t.Errorf("got %d transactions, want %d", total, workers*each)
			}
			return
		default:
			total += len(DecodeBatch(pool.NextPayload(1)))
		}
	}
}

// TestPoolTypedRejections pins the typed Submit errors and their metric
// counters: oversized transactions are refused outright (never truncated
// or stranded), full-pool rejections are distinguishable, and both are
// counted for the metrics registry.
func TestPoolTypedRejections(t *testing.T) {
	pool := NewPool(100, 50)
	if err := pool.SubmitErr(nil); err != ErrTxEmpty {
		t.Fatalf("empty: got %v", err)
	}
	if err := pool.SubmitErr(make([]byte, 47)); err != ErrTxTooLarge {
		t.Fatalf("oversize (47+4 > 50): got %v", err)
	}
	if err := pool.SubmitErr(make([]byte, 40)); err != nil {
		t.Fatalf("valid submit rejected: %v", err)
	}
	if err := pool.SubmitErr(make([]byte, 40)); err != nil {
		t.Fatalf("second submit rejected: %v", err)
	}
	if err := pool.SubmitErr(make([]byte, 40)); err != ErrPoolFull {
		t.Fatalf("full: got %v", err)
	}
	// The oversized transaction must not have entered the queue in any
	// truncated form.
	for pool.Len() > 0 {
		for _, tx := range DecodeBatch(pool.NextPayload(1)) {
			if len(tx) != 40 {
				t.Fatalf("truncated transaction of %d bytes leaked into a batch", len(tx))
			}
		}
	}
	m := map[string]int64{}
	pool.Metrics(m)
	if m["mempoolRejectedOversize"] != 1 || m["mempoolRejectedFull"] != 1 {
		t.Fatalf("rejection counters wrong: %v", m)
	}
}

// TestShardedPoolFairness checks the round-robin drain: a heavy submitter
// cannot starve a light one out of the next batch.
func TestShardedPoolFairness(t *testing.T) {
	pool := NewShardedPool(0, 1024, 4)
	for i := 0; i < 50; i++ {
		if err := pool.SubmitFrom(0, []byte(fmt.Sprintf("heavy-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.SubmitFrom(1, []byte("light-tx")); err != nil {
		t.Fatal(err)
	}
	batch := DecodeBatch(pool.NextPayload(1))
	found := false
	for _, tx := range batch {
		if bytes.Equal(tx, []byte("light-tx")) {
			found = true
		}
	}
	if !found {
		t.Fatal("light submitter starved out of the first batch")
	}
	// FIFO within the heavy shard must be preserved.
	var heavy [][]byte
	for _, tx := range batch {
		if bytes.HasPrefix(tx, []byte("heavy-")) {
			heavy = append(heavy, tx)
		}
	}
	for i := range heavy {
		if want := fmt.Sprintf("heavy-%02d", i); string(heavy[i]) != want {
			t.Fatalf("heavy shard out of order: %q at %d", heavy[i], i)
		}
	}
}

// TestCutBatchMatchesNextPayload is the dissemination equivalence
// property at the mempool level: cutting one submitter's queue into
// dissemination batches and concatenating them yields the same
// transaction sequence as draining inline payloads, regardless of where
// the batch boundaries fall.
func TestCutBatchMatchesNextPayload(t *testing.T) {
	submit := func(pool *Pool) {
		r := rand.New(rand.NewSource(77))
		for i := 0; i < 100; i++ {
			tx := make([]byte, r.Intn(60)+1)
			r.Read(tx)
			if err := pool.SubmitFrom(3, tx); err != nil {
				t.Fatal(err)
			}
		}
	}
	inline := NewShardedPool(0, 1<<20, 4)
	dissem := NewShardedPool(0, 1<<20, 4)
	submit(inline)
	submit(dissem)

	var a, b [][]byte
	for inline.Len() > 0 {
		a = append(a, DecodeBatch(inline.NextPayload(1))...)
	}
	for dissem.Len() > 0 {
		b = append(b, DecodeBatch(dissem.CutBatch(256))...)
	}
	if len(a) != len(b) || len(a) != 100 {
		t.Fatalf("sequence lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("sequence diverges at %d", i)
		}
	}
}

func TestDecodeBatchMalformed(t *testing.T) {
	if DecodeBatch(types.BytesPayload([]byte{1, 0, 0})) != nil {
		t.Fatal("truncated prefix decoded")
	}
	if DecodeBatch(types.BytesPayload([]byte{10, 0, 0, 0, 1})) != nil {
		t.Fatal("length beyond data decoded")
	}
	if DecodeBatch(types.BytesPayload([]byte{0, 0, 0, 0})) != nil {
		t.Fatal("zero-length transaction decoded")
	}
	if DecodeBatch(types.Payload{}) != nil {
		t.Fatal("empty payload should decode to nil")
	}
}

// TestQuickBatchRoundTrip: submitting arbitrary transactions and decoding
// the produced batches yields the same transactions in order.
func TestQuickBatchRoundTrip(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := NewPool(0, 1<<20)
		var want [][]byte
		for i := 0; i < int(count%40)+1; i++ {
			tx := make([]byte, rng.Intn(100)+1)
			rng.Read(tx)
			if pool.Submit(tx) {
				want = append(want, tx)
			}
		}
		var got [][]byte
		for pool.Len() > 0 {
			got = append(got, DecodeBatch(pool.NextPayload(1))...)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
