package core

import (
	"time"

	"banyan/internal/membership"
	"banyan/internal/types"
)

// roundState is the engine's per-round book-keeping. States are created
// lazily (messages for rounds ahead of the replica are buffered in them)
// and "started" when the replica actually enters the round.
type roundState struct {
	started bool
	// t0 is the local time the replica entered the round (Algorithm 1
	// line 20); proposal and notarization delays are measured from it.
	t0 time.Time

	proposed     bool // Algorithm 1 line 19
	fastVoteSent bool // Algorithm 1 line 18
	advanced     bool // the replica has moved past this round (line 54)
	finalVoted   bool // a finalization vote was broadcast (line 52)

	// blocks holds every round-k block received (Definition 7.1 blocks(k)),
	// keyed by ID. valid marks those that passed valid() (Algorithm 2
	// line 62); pending holds proposals whose parent credentials are not
	// yet established, awaiting revalidation.
	blocks  map[types.BlockID]*types.Block
	valid   map[types.BlockID]bool
	pending map[types.BlockID]*types.Proposal

	// notarVoted is N: blocks this replica notarization-voted for
	// (Algorithm 1 line 21).
	notarVoted map[types.BlockID]bool

	// Vote ledgers: signature by voter, per block.
	fastVotes  map[types.BlockID]map[types.ReplicaID][]byte
	notarVotes map[types.BlockID]map[types.ReplicaID][]byte
	finalVotes map[types.BlockID]map[types.ReplicaID][]byte

	// notarizations holds formed or received notarization certificates.
	notarizations map[types.BlockID]*types.Certificate

	// Unlock state (Definition 7.6). unlocked marks per-block Condition-1
	// unlocks; allUnlocked is the sticky Condition-2 state covering every
	// current and future block of the round.
	unlocked    map[types.BlockID]bool
	allUnlocked bool

	// finalized records an explicit finalization seen for this round.
	finalized      bool
	finalizedBlock types.BlockID

	// barrier marks a round this replica has left (advanced, Advance
	// broadcast out, finalization vote cast) through a block that carries
	// a validator-set change, without entering the next round yet: the
	// next round's epoch — and therefore this replica's rank, the quorum
	// sizes, and the epoch stamp of anything it would sign there — depends
	// on whether the change block finalizes, so entry waits for the
	// round's finalization (tryAdvance completes it; tryJump subsumes it
	// when the finalization also commits).
	barrier bool

	// advanceBlock is the notarized-and-unlocked block this replica left
	// the round through; it becomes the parent of the replica's round-(k+1)
	// proposal. advanceNotar/advanceProof are its credentials, reused in
	// proposals (Addition 2) and the Advance broadcast (Addition 1).
	advanceBlock types.BlockID
	advanceNotar *types.Certificate
	advanceProof *types.UnlockProof

	// notarTimerSet tracks ranks for which a notarization-delay timer has
	// been requested, to avoid duplicate SetTimer actions.
	notarTimerSet map[types.Rank]bool
}

func newRoundState() *roundState {
	return &roundState{
		blocks:        make(map[types.BlockID]*types.Block),
		valid:         make(map[types.BlockID]bool),
		pending:       make(map[types.BlockID]*types.Proposal),
		notarVoted:    make(map[types.BlockID]bool),
		fastVotes:     make(map[types.BlockID]map[types.ReplicaID][]byte),
		notarVotes:    make(map[types.BlockID]map[types.ReplicaID][]byte),
		finalVotes:    make(map[types.BlockID]map[types.ReplicaID][]byte),
		notarizations: make(map[types.BlockID]*types.Certificate),
		unlocked:      make(map[types.BlockID]bool),
		notarTimerSet: make(map[types.Rank]bool),
	}
}

// addVote records a vote signature in the given ledger; it reports whether
// the vote was new.
func addVote(ledger map[types.BlockID]map[types.ReplicaID][]byte,
	block types.BlockID, voter types.ReplicaID, sig []byte) bool {
	m, ok := ledger[block]
	if !ok {
		m = make(map[types.ReplicaID][]byte)
		ledger[block] = m
	}
	if _, dup := m[voter]; dup {
		return false
	}
	m[voter] = sig
	return true
}

// votesFor converts a ledger entry back into Vote values for certificate
// assembly.
func votesFor(kind types.VoteKind, round types.Round, block types.BlockID,
	m map[types.ReplicaID][]byte) []types.Vote {
	votes := make([]types.Vote, 0, len(m))
	for voter, sig := range m {
		votes = append(votes, types.Vote{
			Kind: kind, Round: round, Block: block, Voter: voter, Signature: sig,
		})
	}
	return votes
}

// scrubNonMembers removes every vote cast by a replica outside the given
// validator set, drops notarization certificates that carry a non-member
// signature or no longer clear the set's quorum, and resets the unlock
// state so recomputeUnlock re-derives it from the surviving votes. Called
// when an epoch activates over rounds the new set governs: votes buffered
// from before the activation was known must not count toward the new
// epoch's quorums.
func (rs *roundState) scrubNonMembers(set *membership.ValidatorSet, notarQuorum int) {
	scrub := func(ledger map[types.BlockID]map[types.ReplicaID][]byte) {
		for block, byVoter := range ledger {
			for voter := range byVoter {
				if !set.Contains(voter) {
					delete(byVoter, voter)
				}
			}
			if len(byVoter) == 0 {
				delete(ledger, block)
			}
		}
	}
	scrub(rs.fastVotes)
	scrub(rs.notarVotes)
	scrub(rs.finalVotes)
	for id, cert := range rs.notarizations {
		ok := len(cert.Signers) >= notarQuorum
		for _, s := range cert.Signers {
			if !set.Contains(s) {
				ok = false
				break
			}
		}
		if !ok {
			delete(rs.notarizations, id)
		}
	}
	rs.unlocked = make(map[types.BlockID]bool)
	rs.allUnlocked = false
}

// isUnlocked reports whether the block is unlocked in this round under
// Definition 7.6, where finalized blocks are unlocked by definition.
func (rs *roundState) isUnlocked(id types.BlockID) bool {
	if rs.allUnlocked || rs.unlocked[id] {
		return true
	}
	return rs.finalized && rs.finalizedBlock == id
}
