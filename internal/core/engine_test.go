package core

import (
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/crypto"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// rig drives a single Banyan engine directly, with signers for every
// replica so tests can fabricate any peer message.
type rig struct {
	t       *testing.T
	params  types.Params
	keyring *crypto.Keyring
	signers []*crypto.Signer
	beacon  beacon.Beacon
	eng     *Engine
	now     time.Time
	acts    []protocol.Action
}

const rigDelta = 10 * time.Millisecond

func newRig(t *testing.T, params types.Params, self types.ReplicaID, opts ...func(*Config)) *rig {
	t.Helper()
	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 7)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Params:  params,
		Self:    self,
		Keyring: keyring,
		Signer:  signers[self],
		Beacon:  bc,
		Delta:   rigDelta,
	}
	for _, o := range opts {
		o(&cfg)
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		t:       t,
		params:  params,
		keyring: keyring,
		signers: signers,
		beacon:  bc,
		eng:     eng,
		now:     time.Unix(0, 0),
	}
	r.acts = eng.Start(r.now)
	return r
}

func (r *rig) deliver(from types.ReplicaID, msg types.Message) {
	r.t.Helper()
	r.acts = append(r.acts, r.eng.HandleMessage(from, msg, r.now)...)
}

func (r *rig) tick(d time.Duration) {
	r.t.Helper()
	r.now = r.now.Add(d)
	r.acts = append(r.acts, r.eng.HandleTimer(protocol.TimerID{}, r.now)...)
}

// leaderBlock builds and signs a rank-0 block for the round.
func (r *rig) leaderBlock(round types.Round, parent types.BlockID, tag byte) *types.Block {
	r.t.Helper()
	leader := beacon.Leader(r.beacon, round)
	b := types.NewBlock(round, leader, 0, parent, types.BytesPayload([]byte{tag}))
	if err := r.signers[leader].SignBlock(b); err != nil {
		r.t.Fatal(err)
	}
	return b
}

// rankedBlock builds a signed block of the given rank for the round.
func (r *rig) rankedBlock(round types.Round, rank types.Rank, parent types.BlockID, tag byte) *types.Block {
	r.t.Helper()
	proposer := r.beacon.ReplicaAt(round, rank)
	b := types.NewBlock(round, proposer, rank, parent, types.BytesPayload([]byte{tag}))
	if err := r.signers[proposer].SignBlock(b); err != nil {
		r.t.Fatal(err)
	}
	return b
}

// proposalFor wraps a rank-0 block in a Proposal with the proposer's fast
// vote attached, as Addition 2 requires.
func (r *rig) proposalFor(b *types.Block) *types.Proposal {
	r.t.Helper()
	p := &types.Proposal{Block: b}
	if b.Rank == 0 {
		fv := r.signers[b.Proposer].SignVote(types.VoteFast, b.Round, b.ID())
		p.FastVote = &fv
	}
	return p
}

func (r *rig) fastVote(voter types.ReplicaID, b *types.Block) types.Vote {
	return r.signers[voter].SignVote(types.VoteFast, b.Round, b.ID())
}

func (r *rig) notarVote(voter types.ReplicaID, b *types.Block) types.Vote {
	return r.signers[voter].SignVote(types.VoteNotarize, b.Round, b.ID())
}

func (r *rig) finalVote(voter types.ReplicaID, b *types.Block) types.Vote {
	return r.signers[voter].SignVote(types.VoteFinalize, b.Round, b.ID())
}

// commits extracts Commit actions accumulated so far.
func (r *rig) commits() []protocol.Commit {
	var out []protocol.Commit
	for _, a := range r.acts {
		if c, ok := a.(protocol.Commit); ok {
			out = append(out, c)
		}
	}
	return out
}

// broadcasts extracts broadcast messages of a concrete type.
func broadcasts[T types.Message](r *rig) []T {
	var out []T
	for _, a := range r.acts {
		if b, ok := a.(protocol.Broadcast); ok {
			if m, ok := b.Msg.(T); ok {
				out = append(out, m)
			}
		}
	}
	return out
}

// sends collects unicast messages of one type from the recorded actions,
// paired with their destination.
func sends[T types.Message](r *rig) []protocol.Send {
	var out []protocol.Send
	for _, a := range r.acts {
		if s, ok := a.(protocol.Send); ok {
			if _, ok := s.Msg.(T); ok {
				out = append(out, s)
			}
		}
	}
	return out
}

func (r *rig) clearActs() { r.acts = nil }

var p411 = types.Params{N: 4, F: 1, P: 1}

// TestLeaderProposesImmediately: the round-1 leader proposes at Start with
// its fast vote attached.
func TestLeaderProposesImmediately(t *testing.T) {
	leader := beacon.Leader(mustBeacon(t, 4), 1)
	r := newRig(t, p411, leader)
	props := broadcasts[*types.Proposal](r)
	if len(props) != 1 {
		t.Fatalf("leader broadcast %d proposals, want 1", len(props))
	}
	if props[0].FastVote == nil {
		t.Fatal("rank-0 proposal must carry the proposer's fast vote (Addition 2)")
	}
	if props[0].Block.Rank != 0 || props[0].Block.Round != 1 {
		t.Fatalf("unexpected block %v", props[0].Block)
	}
}

func mustBeacon(t *testing.T, n int) beacon.Beacon {
	t.Helper()
	b, err := beacon.NewRoundRobin(n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestNonLeaderWaitsProposalDelay: a rank-r replica proposes only after
// 2Δ·r (Algorithm 1 line 23).
func TestNonLeaderWaitsProposalDelay(t *testing.T) {
	bc := mustBeacon(t, 4)
	var rank1 types.ReplicaID = bc.ReplicaAt(1, 1)
	r := newRig(t, p411, rank1)
	if len(broadcasts[*types.Proposal](r)) != 0 {
		t.Fatal("rank-1 replica proposed before its delay")
	}
	r.tick(2*rigDelta - time.Millisecond)
	if len(broadcasts[*types.Proposal](r)) != 0 {
		t.Fatal("rank-1 replica proposed before 2Δ")
	}
	r.tick(2 * time.Millisecond)
	props := broadcasts[*types.Proposal](r)
	if len(props) != 1 {
		t.Fatalf("rank-1 replica broadcast %d proposals after 2Δ, want 1", len(props))
	}
	if props[0].Block.Rank != 1 {
		t.Fatalf("block rank = %d, want 1", props[0].Block.Rank)
	}
	if props[0].FastVote != nil {
		t.Fatal("non-rank-0 proposal must not carry a proposer fast vote")
	}
}

// TestFirstVoteBundlesFastVote: the first notarization vote of a round
// carries a fast vote (Addition 3); later votes do not.
func TestFirstVoteBundlesFastVote(t *testing.T) {
	bc := mustBeacon(t, 4)
	observer := bc.ReplicaAt(1, 2) // neither leader nor rank-1
	r := newRig(t, p411, observer)
	b := r.leaderBlock(1, types.Genesis().ID(), 1)
	r.deliver(b.Proposer, r.proposalFor(b))

	votes := broadcasts[*types.VoteMsg](r)
	if len(votes) != 1 {
		t.Fatalf("got %d vote messages, want 1", len(votes))
	}
	kinds := map[types.VoteKind]int{}
	for _, v := range votes[0].Votes {
		kinds[v.Kind]++
		if v.Block != b.ID() {
			t.Fatal("vote for wrong block")
		}
	}
	if kinds[types.VoteNotarize] != 1 || kinds[types.VoteFast] != 1 {
		t.Fatalf("first vote must bundle notarize+fast, got %v", kinds)
	}

	// An equivocating second rank-0 block gets a notarization vote only.
	r.clearActs()
	b2 := r.leaderBlock(1, types.Genesis().ID(), 2)
	r.deliver(b2.Proposer, r.proposalFor(b2))
	votes = broadcasts[*types.VoteMsg](r)
	if len(votes) != 1 {
		t.Fatalf("second block: got %d vote messages, want 1", len(votes))
	}
	for _, v := range votes[0].Votes {
		if v.Kind == types.VoteFast {
			t.Fatal("fast vote cast twice in one round")
		}
	}
}

// TestVoteRespectsRankOrdering: with a valid rank-0 block present, a
// higher-rank block gets no vote; and a rank-1 block is voted only after
// its notarization delay when no rank-0 block exists.
func TestVoteRespectsRankOrdering(t *testing.T) {
	bc := mustBeacon(t, 4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p411, observer)
	rank1 := r.rankedBlock(1, 1, types.Genesis().ID(), 1)
	r.deliver(rank1.Proposer, &types.Proposal{Block: rank1})
	if len(broadcasts[*types.VoteMsg](r)) != 0 {
		t.Fatal("voted for a rank-1 block before its notarization delay")
	}
	// After Δ_notary(1) = 2Δ, the rank-1 block is voted.
	r.tick(2 * rigDelta)
	if len(broadcasts[*types.VoteMsg](r)) != 1 {
		t.Fatal("rank-1 block not voted after its delay")
	}
	// A late rank-0 block still gets a vote (no lower-rank block exists
	// below rank 0).
	r.clearActs()
	b0 := r.leaderBlock(1, types.Genesis().ID(), 2)
	r.deliver(b0.Proposer, r.proposalFor(b0))
	if len(broadcasts[*types.VoteMsg](r)) != 1 {
		t.Fatal("late rank-0 block not voted")
	}
}

// TestFPFinalization drives a full fast-path round at the leader: with
// n-p = 3 fast votes the block FP-finalizes and commits after a single
// round trip, with the fast finalization broadcast (Addition 4).
func TestFPFinalization(t *testing.T) {
	bc := mustBeacon(t, 4)
	leader := beacon.Leader(bc, 1)
	r := newRig(t, p411, leader)
	props := broadcasts[*types.Proposal](r)
	b := props[0].Block

	// Two peers return fast votes (plus the leader's own = 3 = n-p).
	peer1, peer2 := bc.ReplicaAt(1, 1), bc.ReplicaAt(1, 2)
	r.clearActs()
	r.deliver(peer1, &types.VoteMsg{Votes: []types.Vote{r.fastVote(peer1, b), r.notarVote(peer1, b)}})
	if len(r.commits()) != 0 {
		t.Fatal("committed with only 2 fast votes")
	}
	r.deliver(peer2, &types.VoteMsg{Votes: []types.Vote{r.fastVote(peer2, b), r.notarVote(peer2, b)}})

	commits := r.commits()
	if len(commits) != 1 {
		t.Fatalf("got %d commits, want 1", len(commits))
	}
	if commits[0].Explicit != protocol.FinalizeFast {
		t.Fatalf("finalization mode = %v, want fast", commits[0].Explicit)
	}
	if len(commits[0].Blocks) != 1 || !commits[0].Blocks[0].Equal(b) {
		t.Fatalf("committed wrong chain %v", commits[0].Blocks)
	}
	// The fast finalization certificate is broadcast.
	var fastCerts int
	for _, c := range broadcasts[*types.CertMsg](r) {
		if c.Cert.Kind == types.CertFastFinalization && c.Cert.Block == b.ID() {
			fastCerts++
		}
	}
	if fastCerts != 1 {
		t.Fatalf("fast finalization broadcast %d times, want 1", fastCerts)
	}
	// The engine advanced to round 2 and broadcast the Advance message
	// with notarization + unlock proof (Addition 1).
	if r.eng.Round() != 2 {
		t.Fatalf("round = %d, want 2", r.eng.Round())
	}
	advs := broadcasts[*types.Advance](r)
	if len(advs) != 1 || advs[0].Notarization == nil || advs[0].Unlock == nil {
		t.Fatalf("bad advance broadcast %+v", advs)
	}
	if err := crypto.VerifyUnlockProof(r.keyring, advs[0].Unlock, r.params.UnlockThreshold()); err != nil {
		t.Fatalf("advance unlock proof does not verify: %v", err)
	}
	if m := r.eng.Metrics(); m["final_fast"] != 1 || m["final_slow"] != 0 {
		t.Fatalf("metrics %v", m)
	}
}

// TestSPFinalization: without enough fast votes, finalization votes carry
// the round (the ICC slow path embedded in Banyan).
func TestSPFinalization(t *testing.T) {
	bc := mustBeacon(t, 4)
	leader := beacon.Leader(bc, 1)
	r := newRig(t, p411, leader)
	b := broadcasts[*types.Proposal](r)[0].Block
	peer1, peer2 := bc.ReplicaAt(1, 1), bc.ReplicaAt(1, 2)

	// The peers' fast votes went to a rank-1 block c (they saw it first),
	// so b can never collect n-p = 3 fast votes: the fast path is dark.
	// b still notarizes (3 notar votes incl. the leader's own), and
	// Condition 1 unlocks it: supp(b) = {leader} plus
	// supp(nonLeaderBlocks) = {peer1, peer2} exceeds f+p = 2.
	c := r.rankedBlock(1, 1, types.Genesis().ID(), 7)
	r.clearActs()
	r.deliver(c.Proposer, &types.Proposal{Block: c})
	r.deliver(peer1, &types.VoteMsg{Votes: []types.Vote{r.notarVote(peer1, b), r.fastVote(peer1, c)}})
	if r.eng.Round() != 1 {
		t.Fatalf("advanced too early: round %d", r.eng.Round())
	}
	r.deliver(peer2, &types.VoteMsg{Votes: []types.Vote{r.notarVote(peer2, b), r.fastVote(peer2, c)}})
	if r.eng.Round() != 2 {
		t.Fatalf("round = %d after notarization + unlock, want 2", r.eng.Round())
	}
	if m := r.eng.Metrics(); m["final_fast"] != 0 {
		t.Fatalf("fast path fired unexpectedly: %v", m)
	}
	// The leader's own finalization vote was broadcast (N = {b}).
	var finals int
	for _, vm := range broadcasts[*types.VoteMsg](r) {
		for _, v := range vm.Votes {
			if v.Kind == types.VoteFinalize && v.Block == b.ID() {
				finals++
			}
		}
	}
	if finals != 1 {
		t.Fatalf("finalization votes broadcast = %d, want 1", finals)
	}
	// Two peer finalization votes complete SP-finalization.
	r.clearActs()
	r.deliver(peer1, &types.VoteMsg{Votes: []types.Vote{r.finalVote(peer1, b)}})
	r.deliver(peer2, &types.VoteMsg{Votes: []types.Vote{r.finalVote(peer2, b)}})
	commits := r.commits()
	if len(commits) != 1 || commits[0].Explicit != protocol.FinalizeSlow {
		t.Fatalf("commits %v", commits)
	}
}

// TestFigure4UnlockConditions reproduces Figure 4 (n=4, f=1, p=1,
// threshold f+p=2) against the engine's internal unlock state.
func TestFigure4UnlockConditions(t *testing.T) {
	bc := mustBeacon(t, 4)
	// The observer is the round-1 rank-3 replica so it proposes nothing.
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p411, observer)

	// Round k (=1): the rank-0 block receives fast votes from replicas
	// 0,1,2 -> Condition 1 unlocks it.
	b := r.leaderBlock(1, types.Genesis().ID(), 1)
	r.deliver(b.Proposer, r.proposalFor(b)) // includes the leader's fast vote
	rs := r.eng.getRound(1)
	if rs.isUnlocked(b.ID()) {
		t.Fatal("two fast votes (leader + observer's own) must not unlock (threshold 2)")
	}
	// Note the observer's own fast vote (cast on delivery, Addition 3)
	// plus the leader's (from the proposal) make two votes: still locked.
	v1 := bc.ReplicaAt(1, 1)
	r.deliver(v1, &types.VoteMsg{Votes: []types.Vote{r.fastVote(v1, b)}})
	if !rs.isUnlocked(b.ID()) {
		t.Fatal("three fast votes (leader + own + peer) must unlock the rank-0 block (Condition 1)")
	}
	if rs.allUnlocked {
		t.Fatal("Condition 2 must not have fired for round k")
	}
}

// TestCondition2UnlocksAll drives the engine into Figure 4's round (k+1)
// situation: support spread over an equivocating leader's blocks and a
// rank-1 block unlocks every block of the round.
func TestCondition2UnlocksAll(t *testing.T) {
	bc := mustBeacon(t, 4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p411, observer)
	genesis := types.Genesis().ID()

	// Equivocating leader: two rank-0 blocks, one fast vote each; one
	// rank-1 block with two fast votes. Strict Condition 2: excluding
	// either rank-0 block leaves 3 distinct voters > 2.
	a := r.leaderBlock(1, genesis, 1)
	bb := r.leaderBlock(1, genesis, 2)
	c := r.rankedBlock(1, 1, genesis, 3)
	leader := a.Proposer
	rank1 := c.Proposer
	other := bc.ReplicaAt(1, 2)

	r.deliver(leader, r.proposalFor(a))  // leader's fast vote on a
	r.deliver(leader, r.proposalFor(bb)) // leader's fast vote on bb (equivocated fast votes)
	r.deliver(rank1, &types.Proposal{Block: c})
	r.deliver(rank1, &types.VoteMsg{Votes: []types.Vote{r.fastVote(rank1, c)}})

	rs := r.eng.getRound(1)
	if rs.allUnlocked {
		t.Fatal("premature condition 2")
	}
	r.deliver(other, &types.VoteMsg{Votes: []types.Vote{r.fastVote(other, c)}})
	if !rs.allUnlocked {
		t.Fatalf("condition 2 should unlock all blocks (votes: a=1 b=1 c=2 spread over 3 voters)")
	}
	if !rs.isUnlocked(a.ID()) || !rs.isUnlocked(bb.ID()) || !rs.isUnlocked(c.ID()) {
		t.Fatal("allUnlocked must cover every block")
	}
}

// TestValidityRequiresParentCredentials: a round-2 block is pending until
// its parent is known notarized and unlocked.
func TestValidityRequiresParentCredentials(t *testing.T) {
	bc := mustBeacon(t, 4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p411, observer)

	// Build round 1 completely from peer messages.
	b1 := r.leaderBlock(1, types.Genesis().ID(), 1)
	var notarVotes, fastVotes []types.Vote
	for _, peer := range []types.ReplicaID{0, 1, 2} {
		notarVotes = append(notarVotes, r.notarVote(peer, b1))
		fastVotes = append(fastVotes, r.fastVote(peer, b1))
	}
	notar, err := types.NewCertificate(types.CertNotarization, 1, b1.ID(), notarVotes)
	if err != nil {
		t.Fatal(err)
	}
	unlock := &types.UnlockProof{
		Round: 1, Block: b1.ID(),
		Entries: []types.UnlockEntry{{
			Header: b1.Header(),
			Voters: []types.ReplicaID{0, 1, 2},
			Sigs:   [][]byte{fastVotes[0].Signature, fastVotes[1].Signature, fastVotes[2].Signature},
		}},
	}

	// Round-2 block arrives BEFORE the observer knows anything about b1:
	// it must stay pending (not valid).
	b2 := r.leaderBlock(2, b1.ID(), 2)
	r.deliver(b2.Proposer, &types.Proposal{Block: b2})
	rs2 := r.eng.getRound(2)
	if rs2.valid[b2.ID()] {
		t.Fatal("block with unknown parent credentials validated")
	}

	// Delivering the parent's credentials validates the pending block.
	r.deliver(b2.Proposer, &types.Proposal{
		Block:              b2,
		ParentNotarization: notar,
		ParentUnlock:       unlock,
		FastVote:           r.proposalFor(b2).FastVote,
		Relayed:            true,
	})
	if !rs2.valid[b2.ID()] {
		t.Fatal("block not validated after parent credentials arrived")
	}
}

// TestRejectsBadMessages: wrong rank claims, bad signatures and foreign
// votes are rejected and counted.
func TestRejectsBadMessages(t *testing.T) {
	bc := mustBeacon(t, 4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p411, observer)

	// Wrong rank claim.
	leader := beacon.Leader(bc, 1)
	bad := types.NewBlock(1, leader, 2 /* lies about rank */, types.Genesis().ID(), types.Payload{})
	if err := r.signers[leader].SignBlock(bad); err != nil {
		t.Fatal(err)
	}
	r.deliver(leader, &types.Proposal{Block: bad})

	// Bad block signature.
	forged := r.leaderBlock(1, types.Genesis().ID(), 9)
	forged.Signature = []byte("nope")
	r.deliver(leader, &types.Proposal{Block: forged})

	// Vote signed by the wrong key.
	good := r.leaderBlock(1, types.Genesis().ID(), 1)
	v := r.fastVote(1, good)
	v.Voter = 2
	r.deliver(2, &types.VoteMsg{Votes: []types.Vote{v}})

	if got := r.eng.Metrics()["rejected"]; got != 3 {
		t.Fatalf("rejected = %d, want 3", got)
	}
}

// TestIndirectFinalizationViaCertificate: receiving a finalization
// certificate finalizes without local votes.
func TestIndirectFinalizationViaCertificate(t *testing.T) {
	bc := mustBeacon(t, 4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p411, observer)
	b := r.leaderBlock(1, types.Genesis().ID(), 1)
	r.deliver(b.Proposer, r.proposalFor(b))

	var votes []types.Vote
	for _, peer := range []types.ReplicaID{0, 1, 2} {
		votes = append(votes, r.finalVote(peer, b))
	}
	cert, err := types.NewCertificate(types.CertFinalization, 1, b.ID(), votes)
	if err != nil {
		t.Fatal(err)
	}
	r.clearActs()
	r.deliver(0, &types.CertMsg{Cert: cert})
	commits := r.commits()
	if len(commits) != 1 || commits[0].Explicit != protocol.FinalizeIndirect {
		t.Fatalf("commits = %v", commits)
	}
	// Indirect finalizations are not re-broadcast.
	if n := len(broadcasts[*types.CertMsg](r)); n != 0 {
		t.Fatalf("re-broadcast %d certificates", n)
	}
}

// TestDisableFastPath: the ablated engine sends no fast votes and
// finalizes via the slow path only.
func TestDisableFastPath(t *testing.T) {
	bc := mustBeacon(t, 4)
	leader := beacon.Leader(bc, 1)
	r := newRig(t, p411, leader, func(c *Config) { c.DisableFastPath = true })
	props := broadcasts[*types.Proposal](r)
	if len(props) != 1 || props[0].FastVote != nil {
		t.Fatalf("nofast proposal %v", props)
	}
	b := props[0].Block
	peer1, peer2 := bc.ReplicaAt(1, 1), bc.ReplicaAt(1, 2)
	r.deliver(peer1, &types.VoteMsg{Votes: []types.Vote{r.notarVote(peer1, b)}})
	r.deliver(peer2, &types.VoteMsg{Votes: []types.Vote{r.notarVote(peer2, b)}})
	if r.eng.Round() != 2 {
		t.Fatalf("round = %d, want 2 (nofast advances on notarization)", r.eng.Round())
	}
	r.deliver(peer1, &types.VoteMsg{Votes: []types.Vote{r.finalVote(peer1, b)}})
	r.deliver(peer2, &types.VoteMsg{Votes: []types.Vote{r.finalVote(peer2, b)}})
	commits := r.commits()
	if len(commits) != 1 || commits[0].Explicit != protocol.FinalizeSlow {
		t.Fatalf("commits %v", commits)
	}
	if m := r.eng.Metrics(); m["final_fast"] != 0 {
		t.Fatalf("fast path used despite being disabled: %v", m)
	}
}

// TestNoFinalizationVoteAfterDoubleNotarVote: a replica that notarization-
// voted two blocks must not send a finalization vote (line 51's N ⊆ {b}).
func TestNoFinalizationVoteAfterDoubleNotarVote(t *testing.T) {
	bc := mustBeacon(t, 4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p411, observer)
	genesis := types.Genesis().ID()
	a := r.leaderBlock(1, genesis, 1)
	bb := r.leaderBlock(1, genesis, 2) // equivocation at rank 0

	r.deliver(a.Proposer, r.proposalFor(a))
	r.deliver(bb.Proposer, r.proposalFor(bb))
	// The observer voted for both. Now give block a enough support to
	// notarize and unlock (peers at ranks 1 and 2; the observer holds
	// rank 3 and the leader rank 0).
	for _, rank := range []types.Rank{1, 2} {
		peer := bc.ReplicaAt(1, rank)
		r.deliver(peer, &types.VoteMsg{Votes: []types.Vote{r.notarVote(peer, a), r.fastVote(peer, a)}})
	}
	if r.eng.Round() != 2 {
		t.Fatalf("round = %d, want 2", r.eng.Round())
	}
	for _, vm := range broadcasts[*types.VoteMsg](r) {
		for _, v := range vm.Votes {
			if v.Kind == types.VoteFinalize {
				t.Fatal("finalization vote sent despite N ⊄ {b}")
			}
		}
	}
}

// TestRelayOnVote: voting for another replica's block relays the block
// (Algorithm 1 line 35).
func TestRelayOnVote(t *testing.T) {
	bc := mustBeacon(t, 4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p411, observer)
	b := r.leaderBlock(1, types.Genesis().ID(), 1)
	r.deliver(b.Proposer, r.proposalFor(b))
	var relayed int
	for _, p := range broadcasts[*types.Proposal](r) {
		if p.Relayed && p.Block.ID() == b.ID() {
			relayed++
		}
	}
	if relayed != 1 {
		t.Fatalf("block relayed %d times, want 1", relayed)
	}
}

// TestStaleMessagesIgnored: messages for long-finalized rounds do not
// disturb the engine or allocate state.
func TestStaleMessagesIgnored(t *testing.T) {
	bc := mustBeacon(t, 4)
	leader := beacon.Leader(bc, 1)
	r := newRig(t, p411, leader, func(c *Config) { c.PruneKeep = 2; c.PruneInterval = 1 })
	// Drive 40 fast rounds: whichever replica leads, fabricate its block
	// (when it is a peer) and the peers' votes; the engine's own votes
	// complete the quorums.
	parent := types.Genesis().ID()
	for round := types.Round(1); round <= 40; round++ {
		roundLeader := beacon.Leader(r.beacon, round)
		var b *types.Block
		if roundLeader == r.eng.ID() {
			rs := r.eng.getRound(round)
			for id := range rs.blocks {
				b = rs.blocks[id]
			}
			if b == nil {
				t.Fatalf("round %d: engine leads but proposed nothing", round)
			}
		} else {
			b = r.leaderBlock(round, parent, byte(round))
			r.deliver(roundLeader, r.proposalFor(b))
		}
		for peer := types.ReplicaID(0); int(peer) < r.params.N; peer++ {
			if peer == r.eng.ID() || peer == roundLeader {
				continue
			}
			r.deliver(peer, &types.VoteMsg{Votes: []types.Vote{
				r.fastVote(peer, b), r.notarVote(peer, b),
			}})
		}
		parent = b.ID()
	}
	if r.eng.Tree().FinalizedRound() < 30 {
		t.Fatalf("only finalized %d rounds", r.eng.Tree().FinalizedRound())
	}
	// Old-round messages are dropped without effect.
	old := r.leaderBlock(1, types.Genesis().ID(), 99)
	before := len(r.eng.rounds)
	r.deliver(old.Proposer, r.proposalFor(old))
	if len(r.eng.rounds) > before {
		t.Fatal("stale message allocated round state")
	}
	// Pruning kept the rounds map bounded.
	if len(r.eng.rounds) > 16 {
		t.Fatalf("rounds map grew to %d entries", len(r.eng.rounds))
	}
}
