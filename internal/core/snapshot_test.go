package core

import (
	"strings"
	"testing"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// snapshotRig builds an engine plus a properly signed one-block chain
// window and matching finalization certificate, so tests can assemble
// both genuine and doctored snapshots.
func snapshotRig(t *testing.T) (*rig, *types.Block, *types.Certificate) {
	t.Helper()
	params := types.Params{N: 4, F: 1, P: 1}
	r := newRig(t, params, 0)
	b := types.NewBlock(1, 1, 0, types.Genesis().ID(), types.BytesPayload([]byte("x")))
	if err := r.signers[1].SignBlock(b); err != nil {
		t.Fatal(err)
	}
	var votes []types.Vote
	for i := 0; i < params.FinalizationQuorum(); i++ {
		votes = append(votes, r.signers[i].SignVote(types.VoteFinalize, 1, b.ID()))
	}
	cert, err := types.NewCertificate(types.CertFinalization, 1, b.ID(), votes)
	if err != nil {
		t.Fatal(err)
	}
	return r, b, cert
}

// TestRestoreSnapshotRequiresFinalizationCert: a chain window of
// validly proposer-signed blocks must NOT restore as finalized history
// unless a quorum-verified finalization certificate covers its tip —
// otherwise a doctored checkpoint could resurrect an abandoned fork as
// the finalized chain.
func TestRestoreSnapshotRequiresFinalizationCert(t *testing.T) {
	r, b, cert := snapshotRig(t)

	// No certificate at all.
	r.eng.BeginReplay()
	err := r.eng.RestoreSnapshot(&protocol.Snapshot{
		Round: 2, FinalizedRound: 1, Chain: []*types.Block{b},
	})
	if err == nil || !strings.Contains(err.Error(), "finalization certificate") {
		t.Fatalf("restore without certificate: got %v", err)
	}

	// Certificate for a different block at the tip round.
	other := types.NewBlock(1, 2, 1, types.Genesis().ID(), types.BytesPayload([]byte("y")))
	if err := r.signers[2].SignBlock(other); err != nil {
		t.Fatal(err)
	}
	var votes []types.Vote
	for i := 0; i < r.params.FinalizationQuorum(); i++ {
		votes = append(votes, r.signers[i].SignVote(types.VoteFinalize, 1, other.ID()))
	}
	otherCert, err := types.NewCertificate(types.CertFinalization, 1, other.ID(), votes)
	if err != nil {
		t.Fatal(err)
	}
	err = r.eng.RestoreSnapshot(&protocol.Snapshot{
		Round: 2, FinalizedRound: 1, Chain: []*types.Block{b},
		Own: []types.Message{&types.CertMsg{Cert: otherCert}},
	})
	if err == nil {
		t.Fatal("restore accepted a window whose tip the certificate does not name")
	}

	// Forged certificate (garbage signatures) naming the right block.
	forged := &types.Certificate{Kind: types.CertFinalization, Round: 1, Block: b.ID(),
		Signers: cert.Signers, Sigs: make([][]byte, len(cert.Sigs))}
	for i := range forged.Sigs {
		forged.Sigs[i] = []byte("forged")
	}
	err = r.eng.RestoreSnapshot(&protocol.Snapshot{
		Round: 2, FinalizedRound: 1, Chain: []*types.Block{b},
		Own: []types.Message{&types.CertMsg{Cert: forged}},
	})
	if err == nil {
		t.Fatal("restore accepted a forged finalization certificate")
	}

	// The genuine snapshot restores.
	err = r.eng.RestoreSnapshot(&protocol.Snapshot{
		Round: 2, FinalizedRound: 1, Chain: []*types.Block{b},
		Own: []types.Message{&types.CertMsg{Cert: cert}},
	})
	if err != nil {
		t.Fatalf("genuine snapshot refused: %v", err)
	}
	if got := r.eng.Tree().FinalizedRound(); got != 1 {
		t.Fatalf("restored finalized round %d, want 1", got)
	}
	if r.eng.Round() != 2 {
		t.Fatalf("restored round %d, want 2", r.eng.Round())
	}
}

// TestRestoreSnapshotRefusesBadBlockSignature: window blocks re-verify
// their proposer signatures on restore.
func TestRestoreSnapshotRefusesBadBlockSignature(t *testing.T) {
	r, b, cert := snapshotRig(t)
	bad := types.NewBlock(b.Round, b.Proposer, b.Rank, b.Parent, b.Payload)
	bad.Signature = []byte("not a signature")
	r.eng.BeginReplay()
	err := r.eng.RestoreSnapshot(&protocol.Snapshot{
		Round: 2, FinalizedRound: 1, Chain: []*types.Block{bad},
		Own: []types.Message{&types.CertMsg{Cert: cert}},
	})
	if err == nil {
		t.Fatal("restore accepted a window block with a bad proposer signature")
	}
}
