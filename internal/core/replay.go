package core

import (
	"time"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// WAL replay (the wal.Replayer contract). A restarted replica rebuilds
// its state by re-running the journaled message sequence through the
// normal ingestion paths — signatures are re-verified, certificates
// re-form from the replayed vote ledgers, finalizations re-commit the
// chain — while replay mode keeps the engine from creating any *new*
// signature. The replica's own pre-crash messages are restored through
// ReplayOwn, which sets the "I already did this" flags (proposed,
// notarVoted, fastVoteSent, finalVoted) that the safety argument depends
// on: without them, a restarted replica could re-decide a round with
// post-crash timing and vote for a different block — equivocation.

// BeginReplay puts the engine in replay mode. Call before Start.
func (e *Engine) BeginReplay() { e.replaying = true }

// ReplayOwn ingests a message this replica itself sent before the crash.
// Proposals and votes restore the own-action flags alongside the ledger
// state; certificates and advances are absorbed like peer messages. All
// signatures are re-verified, so a corrupted-but-framed WAL entry cannot
// smuggle a forged vote into a certificate this replica later builds.
func (e *Engine) ReplayOwn(msg types.Message, now time.Time) []protocol.Action {
	if e.stopped {
		return nil
	}
	switch m := msg.(type) {
	case *types.Proposal:
		e.replayOwnProposal(m)
	case *types.VoteMsg:
		for _, v := range m.Votes {
			e.replayOwnVote(v)
		}
	case *types.CertMsg:
		e.onCert(m.Cert)
	case *types.Advance:
		e.onCert(m.Notarization)
		e.onUnlock(m.Unlock)
	}
	return e.progress(now, nil)
}

func (e *Engine) replayOwnProposal(m *types.Proposal) {
	b := m.Block
	if b == nil || b.Round < 1 {
		return
	}
	if b.Proposer != e.cfg.Self || m.Relayed {
		// A relay of someone else's block: ingest like a peer message.
		e.onProposal(m)
		return
	}
	if b.Round+e.cfg.PruneKeep <= e.tree.FinalizedRound() {
		return
	}
	if err := e.cfg.Verifier.VerifyBlock(b); err != nil {
		e.met.rejected++
		return
	}
	rs := e.getRound(b.Round)
	if e.cfg.OptimisticProposals && b.Rank == 0 && m.FastVote == nil && !rs.proposed {
		// An optimistic proposal: the live path always attaches the fast
		// vote to a rank-0 proposal, so a journaled own rank-0 proposal
		// without one was broadcast before its parent round certified.
		// Restore it as *pending*, exactly the pre-crash state — marking it
		// proposed would let a restart resurrect a proposal the pre-crash
		// replica may have withdrawn, and the later journaled fast vote
		// (confirmation) or same-round proposal (fallback) resolves it just
		// as the live path would. Checkpoint snapshots strip fast votes
		// from own proposals too; those heal through the same confirmation
		// record, which Snapshot always emits alongside.
		e.opt = &optimisticProposal{round: b.Round, parent: b.Parent, block: b}
		e.met.optProposed++
		return
	}
	id := b.ID()
	rs.blocks[id] = b
	rs.valid[id] = true
	e.tree.Add(b)
	rs.proposed = true
	e.met.proposals++
	if e.opt != nil && e.opt.round == b.Round {
		// A journaled same-round proposal WITH credentials supersedes the
		// optimistic one: the pre-crash replica withdrew and re-proposed.
		e.opt = nil
		e.met.optWithdrawn++
	}
	if m.FastVote != nil {
		e.replayOwnVote(*m.FastVote)
	}
	if m.ParentNotarization != nil {
		e.onCert(m.ParentNotarization)
	}
	e.onUnlock(m.ParentUnlock)
}

func (e *Engine) replayOwnVote(v types.Vote) {
	if v.Voter != e.cfg.Self || v.Round < 1 || !v.Kind.Valid() {
		return
	}
	if v.Round+e.cfg.PruneKeep <= e.tree.FinalizedRound() {
		return
	}
	if err := e.cfg.Verifier.VerifyVote(v); err != nil {
		e.met.rejected++
		return
	}
	rs := e.getRound(v.Round)
	switch v.Kind {
	case types.VoteNotarize:
		rs.notarVoted[v.Block] = true
		addVote(rs.notarVotes, v.Block, v.Voter, v.Signature)
	case types.VoteFast:
		rs.fastVoteSent = true
		addVote(rs.fastVotes, v.Block, v.Voter, v.Signature)
		if opt := e.opt; opt != nil && opt.round == v.Round && opt.block.ID() == v.Block {
			// The journaled fast vote names the pending optimistic block:
			// that vote was its confirmation — adopt it as the round's
			// proposal, as confirmOptimistic did before the crash.
			rs.blocks[v.Block] = opt.block
			rs.valid[v.Block] = true
			e.tree.Add(opt.block)
			rs.proposed = true
			e.met.proposals++
			e.met.optConfirmed++
			e.opt = nil
		}
	case types.VoteFinalize:
		rs.finalVoted = true
		addVote(rs.finalVotes, v.Block, v.Voter, v.Signature)
	}
}

// EndReplay leaves replay mode and resumes live operation: the current
// round's delays restart at now (slower than pre-crash timing, never
// unsafe), the propose/resend timers are re-armed, and one progress pass
// picks up anything the restored state already justifies.
func (e *Engine) EndReplay(now time.Time) []protocol.Action {
	e.replaying = false
	rs := e.getRound(e.round)
	rs.started = true
	rs.t0 = now
	// Notarization-delay timers were requested against pre-crash t0;
	// forget them so scheduleNotarTimers re-arms against the new one.
	rs.notarTimerSet = make(map[types.Rank]bool)
	var acts []protocol.Action
	if rank := e.setFor(e.round).RankOf(e.round, e.cfg.Self); rank > 0 && rank != types.NoRank && !rs.proposed {
		acts = append(acts, protocol.SetTimer{
			ID: protocol.TimerID{Round: e.round, Kind: protocol.TimerPropose, Rank: rank},
			At: now.Add(e.propDelay(rank)),
		})
	}
	acts = append(acts, protocol.SetTimer{
		ID: protocol.TimerID{Round: e.round, Kind: protocol.TimerResend},
		At: now.Add(e.resendInterval()),
	})
	return e.progress(now, acts)
}
