package core

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"banyan/internal/beacon"
	"banyan/internal/crypto"
	"banyan/internal/types"
)

// propertyTrials returns the iteration count for randomized property
// tests: def by default, overridden by BANYAN_PROPERTY_TRIALS for the
// long-mode CI job (which runs the same battery at much higher counts
// under -race).
func propertyTrials(def int) int {
	if s := os.Getenv("BANYAN_PROPERTY_TRIALS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestUnlockMonotonicity is the property the engine's incremental
// recomputation relies on: as fast votes arrive in any order, unlock flags
// only ever turn on — never off — and the final unlock state depends only
// on the vote *set*, not its arrival order.
func TestUnlockMonotonicity(t *testing.T) {
	params := types.Params{N: 7, F: 2, P: 1}
	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 3)
	_ = keyring
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	thr := params.UnlockThreshold()

	for trial := 0; trial < propertyTrials(60); trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))

		// A random round scenario: 1-2 rank-0 blocks (equivocation), up to
		// two higher-rank blocks, and a random assignment of fast votes
		// (each voter votes 1..2 random blocks — Byzantine voters may
		// double-vote).
		round := types.Round(1)
		var blocks []*types.Block
		nLeaderBlocks := 1 + rng.Intn(2)
		for i := 0; i < nLeaderBlocks; i++ {
			b := types.NewBlock(round, beacon.Leader(bc, round), 0,
				types.Genesis().ID(), types.BytesPayload([]byte{byte(i)}))
			if err := signers[b.Proposer].SignBlock(b); err != nil {
				t.Fatal(err)
			}
			blocks = append(blocks, b)
		}
		for rank := types.Rank(1); int(rank) <= rng.Intn(3); rank++ {
			proposer := bc.ReplicaAt(round, rank)
			b := types.NewBlock(round, proposer, rank,
				types.Genesis().ID(), types.BytesPayload([]byte{0xF0 ^ byte(rank)}))
			if err := signers[proposer].SignBlock(b); err != nil {
				t.Fatal(err)
			}
			blocks = append(blocks, b)
		}
		type fv struct {
			voter types.ReplicaID
			block int
		}
		var votes []fv
		for v := 0; v < params.N; v++ {
			nVotes := 1 + rng.Intn(2)
			for k := 0; k < nVotes; k++ {
				votes = append(votes, fv{types.ReplicaID(v), rng.Intn(len(blocks))})
			}
		}

		// Apply in two different random orders; track monotonicity.
		run := func(order []int) (map[types.BlockID]bool, bool) {
			rs := newRoundState()
			for _, b := range blocks {
				rs.blocks[b.ID()] = b
			}
			prevUnlocked := make(map[types.BlockID]bool)
			prevAll := false
			for _, idx := range order {
				v := votes[idx]
				addVote(rs.fastVotes, blocks[v.block].ID(), v.voter, []byte{1})
				rs.recomputeUnlock(thr)
				for id, was := range prevUnlocked {
					if was && !rs.unlocked[id] {
						t.Fatalf("trial %d: unlock revoked for %s", trial, id)
					}
				}
				if prevAll && !rs.allUnlocked {
					t.Fatalf("trial %d: allUnlocked revoked", trial)
				}
				for id := range rs.unlocked {
					prevUnlocked[id] = rs.unlocked[id]
				}
				prevAll = rs.allUnlocked
			}
			final := make(map[types.BlockID]bool)
			for _, b := range blocks {
				final[b.ID()] = rs.isUnlocked(b.ID())
			}
			return final, rs.allUnlocked
		}

		order1 := rng.Perm(len(votes))
		order2 := rng.Perm(len(votes))
		final1, all1 := run(order1)
		final2, all2 := run(order2)
		if all1 != all2 {
			t.Fatalf("trial %d: allUnlocked depends on arrival order", trial)
		}
		for id, u1 := range final1 {
			if final2[id] != u1 {
				t.Fatalf("trial %d: unlock state for %s depends on arrival order", trial, id)
			}
		}
	}
}

// TestProofMatchesLocalState: whenever the engine considers a block
// unlocked from its own votes, the transferable proof it builds must
// verify under the same threshold — and vice versa, a verifying proof must
// describe a genuinely unlocked state. This ties Definition 7.6 (local)
// to Definition 7.7 (transferable) across random scenarios.
func TestProofMatchesLocalState(t *testing.T) {
	params := types.Params{N: 4, F: 1, P: 1}
	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 9)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	thr := params.UnlockThreshold()

	for trial := 0; trial < propertyTrials(80); trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		round := types.Round(1)
		rs := newRoundState()
		var blocks []*types.Block
		for i := 0; i < 1+rng.Intn(2); i++ { // 1-2 rank-0 blocks
			b := types.NewBlock(round, beacon.Leader(bc, round), 0,
				types.Genesis().ID(), types.BytesPayload([]byte{byte(i)}))
			if err := signers[b.Proposer].SignBlock(b); err != nil {
				t.Fatal(err)
			}
			blocks = append(blocks, b)
			rs.blocks[b.ID()] = b
		}
		if rng.Intn(2) == 0 { // maybe a rank-1 block
			proposer := bc.ReplicaAt(round, 1)
			b := types.NewBlock(round, proposer, 1, types.Genesis().ID(),
				types.BytesPayload([]byte{0xAA}))
			if err := signers[proposer].SignBlock(b); err != nil {
				t.Fatal(err)
			}
			blocks = append(blocks, b)
			rs.blocks[b.ID()] = b
		}
		// Random real fast votes.
		for v := 0; v < params.N; v++ {
			for k := 0; k <= rng.Intn(2); k++ {
				b := blocks[rng.Intn(len(blocks))]
				vote := signers[v].SignVote(types.VoteFast, round, b.ID())
				addVote(rs.fastVotes, b.ID(), vote.Voter, vote.Signature)
			}
		}
		rs.recomputeUnlock(thr)

		for _, b := range blocks {
			id := b.ID()
			proof := rs.buildUnlockProof(round, id, thr)
			if rs.isUnlocked(id) {
				if proof == nil {
					t.Fatalf("trial %d: block unlocked locally but no proof constructible", trial)
				}
				if err := crypto.VerifyUnlockProof(keyring, proof, thr); err != nil {
					t.Fatalf("trial %d: constructed proof does not verify: %v", trial, err)
				}
			} else if proof != nil {
				t.Fatalf("trial %d: proof built for a locked block", trial)
			}
		}
	}
}
