package core

import (
	"fmt"
	"sort"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// WAL checkpointing (the protocol.Snapshotter contract). A snapshot
// captures the two things a restarted replica cannot re-derive from its
// peers: the finalized chain window the engine still retains under its
// pruning policy, and the replica's own voting record for every live
// round. The WAL recorder journals snapshots as checkpoint records and
// truncates the log behind them, so restart replay and disk usage are
// O(PruneKeep) instead of O(uptime).

var _ protocol.Snapshotter = (*Engine)(nil)

// Snapshot implements protocol.Snapshotter: it exports the finalized
// window (walked tip-to-floor along parent links, so the result is
// contiguous by construction) and, per live round, this replica's own
// proposal and votes, reconstructed as wire messages that ReplayOwn can
// ingest. The newest finalization certificate rides along so a restored
// replica can immediately follow and serve catch-up.
func (e *Engine) Snapshot() *protocol.Snapshot {
	fin := e.tree.FinalizedRound()
	s := &protocol.Snapshot{Round: e.round, FinalizedRound: fin, Sets: e.history.Descs()}

	// Finalized window: the last PruneKeep finalized blocks.
	floor := types.Round(1)
	if fin > e.cfg.PruneKeep {
		floor = fin - e.cfg.PruneKeep + 1
	}
	if id, ok := e.tree.FinalizedAt(fin); ok && fin >= 1 {
		var chain []*types.Block
		b, ok := e.tree.Block(id)
		for ok && b.Round >= floor && !b.IsGenesis() {
			chain = append(chain, b)
			b, ok = e.tree.Block(b.Parent)
		}
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		s.Chain = chain
		if len(chain) > 0 {
			s.FinalizedRound = chain[len(chain)-1].Round
		}
	}

	// Own voting record, one message bundle per live round, in round
	// order (determinism keeps checkpoint bytes reproducible for tests).
	rounds := make([]types.Round, 0, len(e.rounds))
	for r := range e.rounds {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	for _, r := range rounds {
		rs := e.rounds[r]
		if rs.proposed {
			for _, b := range rs.blocks {
				if b.Proposer == e.cfg.Self {
					s.Own = append(s.Own, &types.Proposal{Block: b})
					break
				}
			}
		}
		var votes []types.Vote
		for kind, ledger := range map[types.VoteKind]map[types.BlockID]map[types.ReplicaID][]byte{
			types.VoteNotarize: rs.notarVotes,
			types.VoteFast:     rs.fastVotes,
			types.VoteFinalize: rs.finalVotes,
		} {
			for block, byVoter := range ledger {
				if sig, ok := byVoter[e.cfg.Self]; ok {
					votes = append(votes, types.Vote{
						Kind: kind, Round: r, Block: block, Voter: e.cfg.Self, Signature: sig,
					})
				}
			}
		}
		if len(votes) > 0 {
			sort.Slice(votes, func(i, j int) bool {
				if votes[i].Kind != votes[j].Kind {
					return votes[i].Kind < votes[j].Kind
				}
				return lessBlockID(votes[i].Block, votes[j].Block)
			})
			s.Own = append(s.Own, &types.VoteMsg{Votes: votes})
		}
	}
	// A pending optimistic proposal (signed and broadcast, not yet
	// confirmed or withdrawn) rides along so a checkpoint-plus-tail replay
	// restores the same in-flight state as a full replay. Its missing fast
	// vote is what marks it optimistic to ReplayOwn.
	if e.opt != nil {
		s.Own = append(s.Own, &types.Proposal{Block: e.opt.block})
	}
	if e.latestFinal != nil {
		s.Own = append(s.Own, &types.CertMsg{Cert: e.latestFinal})
	}
	return s
}

// RestoreSnapshot implements protocol.Snapshotter: it re-anchors the
// block tree at the snapshot's finalized window and re-enters the round
// after it. Own messages are NOT absorbed here — the WAL recorder feeds
// them through ReplayOwn exactly like journaled own records, so every
// signature is re-verified and the restore path stays identical to
// ordinary replay. Must be called in replay mode on a fresh engine.
func (e *Engine) RestoreSnapshot(s *protocol.Snapshot) error {
	if !e.replaying {
		return fmt.Errorf("core: RestoreSnapshot outside replay mode")
	}
	// Restore the validator-set history first: every signature and quorum
	// check below — and the replay that follows — must run under the
	// epochs in effect when the checkpoint was taken. Restore re-verifies
	// the chain of sets structurally and anchors it at the configured
	// genesis set, so a corrupted checkpoint cannot smuggle in an epoch.
	if len(s.Sets) > 0 {
		if err := e.history.Restore(s.Sets); err != nil {
			return err
		}
	}
	// Re-verify the window's proposer signatures before adopting it: the
	// checkpoint is local disk, not a trusted channel.
	for _, b := range s.Chain {
		if b == nil {
			return fmt.Errorf("core: snapshot chain contains nil block")
		}
		if set := e.setFor(b.Round); b.Epoch != set.Epoch() || !set.Contains(b.Proposer) {
			return fmt.Errorf("core: snapshot block r=%d outside its epoch's set", b.Round)
		}
		if err := e.cfg.Verifier.VerifyBlock(b); err != nil {
			return fmt.Errorf("core: snapshot block r=%d: %w", b.Round, err)
		}
	}
	// The window must be *finalized*, not merely well-signed: a
	// proposer-signed chain of abandoned-fork blocks would otherwise
	// restore as finalized history. Require a quorum-verified
	// finalization certificate at or above the window tip; at the tip it
	// must name the tip block. (A certificate above the tip means the
	// replica crashed mid-catch-up; the restored replica re-enters
	// catch-up immediately, and a window conflicting with the cluster's
	// genuine chain surfaces as a safety fault there instead of being
	// served silently.)
	if len(s.Chain) > 0 {
		if err := e.verifySnapshotFinalization(s); err != nil {
			return err
		}
	}
	if err := e.tree.RestoreFinalized(s.Chain); err != nil {
		return err
	}
	fin := e.tree.FinalizedRound()
	if fin != s.FinalizedRound {
		return fmt.Errorf("core: snapshot claims finalized round %d, window restores %d",
			s.FinalizedRound, fin)
	}
	if fin >= 1 {
		// The restored tip is the block the replica leaves round fin
		// through; without this, a post-restore proposal in round fin+1
		// would extend a zero parent.
		head := s.Chain[len(s.Chain)-1]
		rs := e.getRound(fin)
		rs.started = true
		rs.advanced = true
		rs.advanceBlock = head.ID()
		rs.finalized = true
		rs.finalizedBlock = head.ID()
	}
	e.round = fin + 1
	e.lastPrune = fin
	e.syncHigh = fin
	return nil
}

// finalizationQuorum is the quorum-certificate trust gate shared by WAL
// checkpoint restores (verifySnapshotFinalization) and peer snapshot
// ingestion (onSnapshotResponse): the quorum a finalization certificate
// of the given kind must clear, or false for kinds that finalize nothing.
func finalizationQuorum(p types.Params, kind types.CertKind) (int, bool) {
	switch kind {
	case types.CertFinalization:
		return p.FinalizationQuorum(), true
	case types.CertFastFinalization:
		return p.FastQuorum(), true
	default:
		return 0, false
	}
}

// verifySnapshotFinalization checks the snapshot carries a
// quorum-verified finalization certificate covering its chain window
// (see RestoreSnapshot). Snapshot always embeds the engine's newest
// finalization certificate in Own, so a genuine checkpoint passes.
func (e *Engine) verifySnapshotFinalization(s *protocol.Snapshot) error {
	tip := s.Chain[len(s.Chain)-1]
	for _, m := range s.Own {
		cm, ok := m.(*types.CertMsg)
		if !ok || cm.Cert == nil {
			continue
		}
		c := cm.Cert
		set := e.setFor(c.Round)
		quorum, ok := finalizationQuorum(set.Params(), c.Kind)
		if !ok {
			continue
		}
		if c.Round < tip.Round {
			continue
		}
		if c.Round == tip.Round && c.Block != tip.ID() {
			continue
		}
		if err := e.cfg.Verifier.VerifyCertIn(c, quorum, set); err != nil {
			return fmt.Errorf("core: snapshot finalization certificate: %w", err)
		}
		return nil
	}
	return fmt.Errorf("core: snapshot has no finalization certificate covering round %d", tip.Round)
}

// OwnRecord summarizes this replica's own actions in one round — the
// state whose loss across a crash-restart would permit equivocation.
// Property tests compare it between a full replay and a
// checkpoint-plus-tail replay.
type OwnRecord struct {
	Proposed     bool
	FastVoteSent bool
	FinalVoted   bool
	NotarVotes   []types.BlockID
	FastVotes    []types.BlockID
	FinalVotes   []types.BlockID
}

// OwnVotingRecord exports the per-round voting record for every round
// above the engine's pruning floor. Block ID lists are sorted.
func (e *Engine) OwnVotingRecord() map[types.Round]OwnRecord {
	out := make(map[types.Round]OwnRecord)
	floor := types.Round(0)
	if fin := e.tree.FinalizedRound(); fin > e.cfg.PruneKeep {
		floor = fin - e.cfg.PruneKeep
	}
	collect := func(ledger map[types.BlockID]map[types.ReplicaID][]byte) []types.BlockID {
		var ids []types.BlockID
		for block, byVoter := range ledger {
			if _, ok := byVoter[e.cfg.Self]; ok {
				ids = append(ids, block)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return lessBlockID(ids[i], ids[j]) })
		return ids
	}
	for r, rs := range e.rounds {
		if r <= floor {
			continue
		}
		rec := OwnRecord{
			Proposed:     rs.proposed,
			FastVoteSent: rs.fastVoteSent,
			FinalVoted:   rs.finalVoted,
			NotarVotes:   collect(rs.notarVotes),
			FastVotes:    collect(rs.fastVotes),
			FinalVotes:   collect(rs.finalVotes),
		}
		if !rec.Proposed && !rec.FastVoteSent && !rec.FinalVoted &&
			len(rec.NotarVotes)+len(rec.FastVotes)+len(rec.FinalVotes) == 0 {
			continue
		}
		out[r] = rec
	}
	return out
}
