package core

import (
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// deepPruned configures a rig whose engine retains only a small finalized
// window in memory — the post-checkpoint / deep-pruning server shape that
// makes a SyncRequest for early rounds unserveable.
func deepPruned(cfg *Config) {
	cfg.DeepPrune = true
	cfg.PruneKeep = 8
	cfg.PruneInterval = 8
}

// newWindowServer builds a deep-pruned rig finalized through `rounds`
// rounds, so it holds only its last PruneKeep finalized blocks.
func newWindowServer(t *testing.T, rounds types.Round) *rig {
	t.Helper()
	bc := mustBeacon(t, 4)
	r := newRig(t, p411, beacon.Leader(bc, 1), deepPruned)
	buildFinalizedChain(t, r, rounds)
	fin := r.eng.Tree().FinalizedRound()
	if fin < rounds-1 {
		t.Fatalf("setup: server finalized only %d rounds", fin)
	}
	if _, ok := r.eng.Tree().FinalizedAt(1); !ok {
		t.Fatal("setup: finalized ID map must survive deep pruning")
	}
	if id, _ := r.eng.Tree().FinalizedAt(1); r.eng.Tree().Contains(id) {
		t.Fatal("setup: server still holds round-1 block; deep prune did not run")
	}
	return r
}

// stallOnce fires the fresh replica's resend timer past the interval —
// exactly what a stuck replica does on its own — driving one probe
// through maybeSync.
func stallOnce(r *rig) {
	r.now = r.now.Add(r.eng.resendInterval() + time.Millisecond)
	r.acts = append(r.acts, r.eng.HandleTimer(
		protocol.TimerID{Round: r.eng.Round(), Kind: protocol.TimerResend}, r.now)...)
}

// TestUnserveablePrefixLivelock is the regression test for the catch-up
// hole this package fixes: with snapshot escalation disabled
// (StateSyncStalls < 0, the pre-fix behaviour), a fresh replica facing
// peers that hold only a finalized window re-requests the same
// unserveable prefix forever and never finalizes anything.
func TestUnserveablePrefixLivelock(t *testing.T) {
	server := newWindowServer(t, 30)
	bc := mustBeacon(t, 4)
	fresh := newRig(t, p411, bc.ReplicaAt(1, 3), func(cfg *Config) {
		cfg.StateSyncStalls = -1
	})

	fresh.clearActs()
	fresh.deliver(server.eng.ID(), &types.CertMsg{Cert: server.eng.latestFinal})
	for i := 0; i < 12; i++ {
		// Route every sync request to the window server; it must not be
		// able to serve any of them.
		for _, s := range sends[*types.SyncRequest](fresh) {
			req := s.Msg.(*types.SyncRequest)
			if req.From != 1 {
				t.Fatalf("iteration %d: request From=%d; the stall loop must re-ask the prefix", i, req.From)
			}
			for _, a := range server.eng.HandleMessage(fresh.eng.ID(), req, server.now) {
				if _, ok := a.(protocol.Send); ok {
					t.Fatal("deep-pruned server served the prefix")
				}
			}
		}
		fresh.clearActs()
		stallOnce(fresh)
	}
	if len(sends[*types.SnapshotRequest](fresh)) != 0 {
		t.Fatal("escalation disabled but a snapshot request was sent")
	}
	if fin := fresh.eng.Tree().FinalizedRound(); fin != 0 {
		t.Fatalf("finalized %d rounds; the pre-fix livelock should finalize none", fin)
	}
	if fresh.eng.Round() != 1 {
		t.Fatalf("round advanced to %d during livelock", fresh.eng.Round())
	}
}

// TestSnapshotFetchRecoversFreshReplica is the post-fix half of the
// regression: the same scenario escalates to a snapshot fetch after
// StateSyncStalls prefix stalls, adopts the server's window through the
// quorum-cert trust gate, commits it, and jumps to the live round.
func TestSnapshotFetchRecoversFreshReplica(t *testing.T) {
	server := newWindowServer(t, 30)
	serverFin := server.eng.Tree().FinalizedRound()
	bc := mustBeacon(t, 4)
	fresh := newRig(t, p411, bc.ReplicaAt(1, 3))

	fresh.clearActs()
	fresh.deliver(server.eng.ID(), &types.CertMsg{Cert: server.eng.latestFinal})
	var snapReq *types.SnapshotRequest
	for i := 0; i < 10 && snapReq == nil; i++ {
		stallOnce(fresh)
		if reqs := sends[*types.SnapshotRequest](fresh); len(reqs) > 0 {
			snapReq = reqs[0].Msg.(*types.SnapshotRequest)
		}
	}
	if snapReq == nil {
		t.Fatal("unserveable prefix never escalated to a snapshot fetch")
	}
	if snapReq.Have != 0 {
		t.Fatalf("snapshot request Have=%d, want 0", snapReq.Have)
	}
	if got := fresh.eng.Metrics()["statesync_fetches"]; got < 1 {
		t.Fatalf("statesync_fetches = %d", got)
	}

	// Serve the fetch from the window server.
	server.clearActs()
	serveActs := server.eng.HandleMessage(fresh.eng.ID(), snapReq, server.now)
	var resp *types.SnapshotResponse
	for _, a := range serveActs {
		if s, ok := a.(protocol.Send); ok {
			if m, ok := s.Msg.(*types.SnapshotResponse); ok {
				if s.To != fresh.eng.ID() {
					t.Fatalf("snapshot sent to %d", s.To)
				}
				resp = m
			}
		}
	}
	if resp == nil {
		t.Fatal("window server did not serve the snapshot")
	}
	if got := server.eng.Metrics()["statesync_served"]; got != 1 {
		t.Fatalf("statesync_served = %d", got)
	}
	tip := resp.Chain[len(resp.Chain)-1]
	if tip.Round != serverFin || resp.Finalization == nil ||
		resp.Finalization.Round != tip.Round || resp.Finalization.Block != tip.ID() {
		t.Fatal("snapshot response is not anchored tip-exactly")
	}

	// Ingest: the fresh replica adopts the window, commits it, and jumps.
	fresh.clearActs()
	fresh.deliver(server.eng.ID(), resp)
	if fin := fresh.eng.Tree().FinalizedRound(); fin != serverFin {
		t.Fatalf("finalized round %d after snapshot, want %d", fin, serverFin)
	}
	if fresh.eng.Round() != serverFin+1 {
		t.Fatalf("round %d after snapshot, want %d", fresh.eng.Round(), serverFin+1)
	}
	total := 0
	for _, c := range fresh.commits() {
		total += len(c.Blocks)
	}
	if total != len(resp.Chain) {
		t.Fatalf("committed %d blocks, want the %d-block window", total, len(resp.Chain))
	}
	m := fresh.eng.Metrics()
	if m["statesync_bytes"] <= 0 || m["statesync_rejected"] != 0 {
		t.Fatalf("statesync metrics off: bytes=%d rejected=%d",
			m["statesync_bytes"], m["statesync_rejected"])
	}
	if fresh.eng.fetcher.Fetching() {
		t.Fatal("fetch not completed after adoption")
	}
}

// TestSnapshotRequestDeclinedWhenUseless: a server refuses to serve a
// requester at or ahead of its own window tip.
func TestSnapshotRequestDeclinedWhenUseless(t *testing.T) {
	server := newWindowServer(t, 30)
	fin := server.eng.Tree().FinalizedRound()
	for _, have := range []types.Round{fin, fin + 5} {
		for _, a := range server.eng.HandleMessage(3, &types.SnapshotRequest{Have: have}, server.now) {
			if _, ok := a.(protocol.Send); ok {
				t.Fatalf("served a snapshot to a requester with Have=%d (fin=%d)", have, fin)
			}
		}
	}
}

// TestUnsolicitedSnapshotResponseRejected: snapshot state only enters
// through an in-flight fetch (or WAL replay); a pushed response is
// dropped and counted.
func TestUnsolicitedSnapshotResponseRejected(t *testing.T) {
	server := newWindowServer(t, 30)
	serveActs := server.eng.HandleMessage(3, &types.SnapshotRequest{Have: 0}, server.now)
	resp := serveActs[0].(protocol.Send).Msg.(*types.SnapshotResponse)

	bc := mustBeacon(t, 4)
	fresh := newRig(t, p411, bc.ReplicaAt(1, 3))
	fresh.deliver(server.eng.ID(), resp)
	if fin := fresh.eng.Tree().FinalizedRound(); fin != 0 {
		t.Fatalf("unsolicited snapshot adopted (fin=%d)", fin)
	}
	if got := fresh.eng.Metrics()["statesync_rejected"]; got != 1 {
		t.Fatalf("statesync_rejected = %d", got)
	}
}

// TestSnapshotResponseRejectsBadAnchor: while a fetch is in flight, a
// window whose certificate does not name the tip exactly — or whose
// chain was tampered with — is rejected without adoption, and the fetch
// stays live for the next peer.
func TestSnapshotResponseRejectsBadAnchor(t *testing.T) {
	server := newWindowServer(t, 30)
	serveActs := server.eng.HandleMessage(3, &types.SnapshotRequest{Have: 0}, server.now)
	good := serveActs[0].(protocol.Send).Msg.(*types.SnapshotResponse)

	bc := mustBeacon(t, 4)
	fresh := newRig(t, p411, bc.ReplicaAt(1, 3))
	fresh.deliver(server.eng.ID(), &types.CertMsg{Cert: server.eng.latestFinal})
	for i := 0; i < 10 && !fresh.eng.fetcher.Fetching(); i++ {
		stallOnce(fresh)
	}
	if !fresh.eng.fetcher.Fetching() {
		t.Fatal("setup: fetch never started")
	}

	// Certificate anchored above (not at) the tip: refused.
	short := &types.SnapshotResponse{Chain: good.Chain[:len(good.Chain)-1], Finalization: good.Finalization}
	fresh.deliver(server.eng.ID(), short)
	// Tampered chain: parent break.
	broken := &types.SnapshotResponse{
		Chain:        []*types.Block{good.Chain[0], good.Chain[2]},
		Finalization: good.Finalization,
	}
	fresh.deliver(server.eng.ID(), broken)
	if fin := fresh.eng.Tree().FinalizedRound(); fin != 0 {
		t.Fatalf("bad snapshot adopted (fin=%d)", fin)
	}
	if got := fresh.eng.Metrics()["statesync_rejected"]; got != 2 {
		t.Fatalf("statesync_rejected = %d, want 2", got)
	}
	if !fresh.eng.fetcher.Fetching() {
		t.Fatal("fetch abandoned after a bad response; it must await the retry timer")
	}

	// The genuine window still lands afterwards.
	fresh.deliver(server.eng.ID(), good)
	if fin := fresh.eng.Tree().FinalizedRound(); fin != server.eng.Tree().FinalizedRound() {
		t.Fatalf("good snapshot not adopted after bad ones (fin=%d)", fin)
	}
}

// TestSnapshotFetchRotatesPeerOnTimeout: a silent peer costs one
// StateSyncTimeout, after which the fetcher re-sends to the next peer.
func TestSnapshotFetchRotatesPeerOnTimeout(t *testing.T) {
	server := newWindowServer(t, 30)
	bc := mustBeacon(t, 4)
	fresh := newRig(t, p411, bc.ReplicaAt(1, 3))
	fresh.deliver(server.eng.ID(), &types.CertMsg{Cert: server.eng.latestFinal})
	for i := 0; i < 10 && !fresh.eng.fetcher.Fetching(); i++ {
		stallOnce(fresh)
	}
	first := sends[*types.SnapshotRequest](fresh)
	if len(first) == 0 {
		t.Fatal("setup: no snapshot request sent")
	}
	firstPeer := first[len(first)-1].To

	// Before the deadline: the timer fire re-arms without resending.
	fresh.clearActs()
	fresh.now = fresh.now.Add(time.Millisecond)
	fresh.acts = fresh.eng.HandleTimer(protocol.TimerID{Kind: protocol.TimerStateSync}, fresh.now)
	if len(sends[*types.SnapshotRequest](fresh)) != 0 {
		t.Fatal("resent before the per-peer deadline")
	}

	// Past the deadline: rotate to the next peer.
	fresh.clearActs()
	fresh.now = fresh.now.Add(8 * rigDelta)
	fresh.acts = fresh.eng.HandleTimer(protocol.TimerID{Kind: protocol.TimerStateSync}, fresh.now)
	retries := sends[*types.SnapshotRequest](fresh)
	if len(retries) != 1 {
		t.Fatalf("expected one retry, got %d", len(retries))
	}
	if retries[0].To == firstPeer || retries[0].To == fresh.eng.ID() {
		t.Fatalf("retry went to %d (first was %d)", retries[0].To, firstPeer)
	}
	rearmed := false
	for _, a := range fresh.acts {
		if st, ok := a.(protocol.SetTimer); ok && st.ID.Kind == protocol.TimerStateSync {
			rearmed = true
		}
	}
	if !rearmed {
		t.Fatal("state-sync timer not re-armed after retry")
	}
}
