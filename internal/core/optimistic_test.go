package core

import (
	"errors"
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/blocktree"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Optimistic proposal pipelining (Moonshot mode) unit battery: the
// propose → confirm / withdraw lifecycle, the rank-0 validity seam that
// keeps withdrawn blocks inert, the stale-parent extension rule, the
// conflicting-finalization fault path, and WAL replay of every
// lifecycle state.

// withOptimistic enables the knob on a rig config.
func withOptimistic(c *Config) { c.OptimisticProposals = true }

// countingPayloads records every NextPayload call so tests can assert
// the payload source is consulted exactly once per proposed round (the
// withdraw path must reuse the optimistic payload, not drain a second
// one).
func countingPayloads(calls *[]types.Round) func(*Config) {
	return func(c *Config) {
		c.Payloads = protocol.PayloadFunc(func(r types.Round) types.Payload {
			*calls = append(*calls, r)
			return types.BytesPayload([]byte{byte(r), byte(len(*calls))})
		})
	}
}

// ownRound2Proposals filters the rig's own (non-relayed) round-2
// proposal broadcasts — relays of peers' round-1 proposals don't count.
func ownRound2Proposals(r *rig) []*types.Proposal {
	var out []*types.Proposal
	for _, p := range broadcasts[*types.Proposal](r) {
		if !p.Relayed && p.Block != nil && p.Block.Round == 2 {
			out = append(out, p)
		}
	}
	return out
}

// bareProposals filters own credential-less broadcasts — the optimistic
// wire shape: rank 0, no fast vote, no parent credentials.
func bareProposals(r *rig) []*types.Proposal {
	var out []*types.Proposal
	for _, p := range broadcasts[*types.Proposal](r) {
		if !p.Relayed && p.FastVote == nil && p.ParentNotarization == nil && p.Block.Rank == 0 {
			out = append(out, p)
		}
	}
	return out
}

// fastFinalCert builds a quorum fast-finalization certificate.
func (r *rig) fastFinalCert(b *types.Block, voters ...types.ReplicaID) *types.CertMsg {
	r.t.Helper()
	votes := make([]types.Vote, len(voters))
	for i, v := range voters {
		votes[i] = r.fastVote(v, b)
	}
	cert, err := types.NewCertificate(types.CertFastFinalization, b.Round, b.ID(), votes)
	if err != nil {
		r.t.Fatal(err)
	}
	return &types.CertMsg{Cert: cert}
}

// TestOptimisticConfigRequiresFastPath: the knob leans on the rank-0
// fast-vote validity rule, so it must be rejected without the fast path.
func TestOptimisticConfigRequiresFastPath(t *testing.T) {
	_, err := New(Config{
		Params: p411, Self: 0,
		OptimisticProposals: true,
		DisableFastPath:     true,
	})
	if err == nil {
		t.Fatal("OptimisticProposals with DisableFastPath must be rejected")
	}
}

// TestOptimisticProposeAndConfirm drives the happy path at the round-2
// leader: receiving round 1's rank-0 block triggers an immediate bare
// broadcast of the round-2 block; when round 1 certifies with that
// parent, the already-broadcast block is confirmed by a tiny fast-vote
// message — no second body broadcast, no second payload draw.
func TestOptimisticProposeAndConfirm(t *testing.T) {
	bc := mustBeacon(t, 4)
	self := bc.ReplicaAt(2, 0) // leader of round 2
	var calls []types.Round
	r := newRig(t, p411, self, withOptimistic, countingPayloads(&calls))

	a := r.leaderBlock(1, types.Genesis().ID(), 'a')
	r.deliver(a.Proposer, r.proposalFor(a))

	bare := bareProposals(r)
	if len(bare) != 1 {
		t.Fatalf("optimistic broadcasts = %d, want 1", len(bare))
	}
	opt := bare[0].Block
	if opt.Round != 2 || opt.Rank != 0 || opt.Parent != a.ID() {
		t.Fatalf("optimistic block %+v, want round 2 rank 0 on %s", opt, a.ID())
	}
	if m := r.eng.Metrics(); m["opt_proposed"] != 1 {
		t.Fatalf("opt_proposed = %d, want 1", m["opt_proposed"])
	}

	// Certify round 1 on the expected parent: two peer fast votes plus the
	// proposer's (attached) and this replica's own reach n-p = 3.
	r.clearActs()
	peer1, peer2 := bc.ReplicaAt(1, 2), bc.ReplicaAt(1, 3)
	r.deliver(peer1, &types.VoteMsg{Votes: []types.Vote{r.fastVote(peer1, a), r.notarVote(peer1, a)}})
	r.deliver(peer2, &types.VoteMsg{Votes: []types.Vote{r.fastVote(peer2, a), r.notarVote(peer2, a)}})

	if r.eng.Round() != 2 {
		t.Fatalf("round = %d, want 2", r.eng.Round())
	}
	// Confirmation: a fast vote for the SAME block, and no re-broadcast of
	// the body.
	var confirms int
	for _, vm := range broadcasts[*types.VoteMsg](r) {
		for _, v := range vm.Votes {
			if v.Kind == types.VoteFast && v.Round == 2 {
				if v.Block != opt.ID() {
					t.Fatalf("confirmation fast vote for %s, want %s", v.Block, opt.ID())
				}
				confirms++
			}
		}
	}
	if confirms != 1 {
		t.Fatalf("confirmation fast votes = %d, want 1", confirms)
	}
	if props := broadcasts[*types.Proposal](r); len(props) != 0 {
		t.Fatalf("confirmed round re-broadcast %d proposals, want 0 (body already sent)", len(props))
	}
	if _, ok := r.eng.Tree().Block(opt.ID()); !ok {
		t.Fatal("confirmed block missing from the tree")
	}
	m := r.eng.Metrics()
	if m["opt_confirmed"] != 1 || m["opt_withdrawn"] != 0 {
		t.Fatalf("metrics confirmed=%d withdrawn=%d, want 1/0", m["opt_confirmed"], m["opt_withdrawn"])
	}
	if len(calls) != 1 || calls[0] != 2 {
		t.Fatalf("payload draws = %v, want exactly [2]", calls)
	}
}

// TestOptimisticWithdrawOnParentMismatch: the guessed parent loses its
// round (an equivocating leader's other block certifies instead). The
// pipelined block must be withdrawn — never adopted, never fast-voted —
// and the fallback proposal must extend the certified parent while
// reusing the optimistic payload (a second draw would lose queued
// transactions in a real mempool).
func TestOptimisticWithdrawOnParentMismatch(t *testing.T) {
	bc := mustBeacon(t, 4)
	self := bc.ReplicaAt(2, 0)
	var calls []types.Round
	r := newRig(t, p411, self, withOptimistic, countingPayloads(&calls))

	a := r.leaderBlock(1, types.Genesis().ID(), 'a')
	r.deliver(a.Proposer, r.proposalFor(a))
	bare := bareProposals(r)
	if len(bare) != 1 {
		t.Fatalf("optimistic broadcasts = %d, want 1", len(bare))
	}
	opt := bare[0].Block

	// The round-1 leader equivocated: its other block a2 certifies (fast
	// quorum = proposer + both other peers, without this replica).
	a2 := r.leaderBlock(1, types.Genesis().ID(), 'z')
	r.clearActs()
	r.deliver(a2.Proposer, r.proposalFor(a2))
	peer1, peer2 := bc.ReplicaAt(1, 2), bc.ReplicaAt(1, 3)
	r.deliver(peer1, &types.VoteMsg{Votes: []types.Vote{r.fastVote(peer1, a2), r.notarVote(peer1, a2)}})
	r.deliver(peer2, &types.VoteMsg{Votes: []types.Vote{r.fastVote(peer2, a2), r.notarVote(peer2, a2)}})

	if r.eng.Round() != 2 {
		t.Fatalf("round = %d, want 2", r.eng.Round())
	}
	props := ownRound2Proposals(r)
	if len(props) != 1 {
		t.Fatalf("fallback proposals = %d, want 1", len(props))
	}
	fb := props[0]
	if fb.FastVote == nil || fb.Block.Parent != a2.ID() || fb.Block.Round != 2 {
		t.Fatalf("fallback %+v, want credentialed round-2 proposal on %s", fb, a2.ID())
	}
	if fb.Block.ID() == opt.ID() {
		t.Fatal("fallback reused the withdrawn block ID")
	}
	if fb.Block.Payload.Digest() != opt.Payload.Digest() {
		t.Fatal("fallback did not reuse the optimistic payload")
	}
	if len(calls) != 1 {
		t.Fatalf("payload draws = %v, want exactly one (withdrawal must not re-draw)", calls)
	}
	// The withdrawn block is inert: never adopted locally, never fast-voted.
	if _, ok := r.eng.Tree().Block(opt.ID()); ok {
		t.Fatal("withdrawn block was added to the tree")
	}
	for _, vm := range broadcasts[*types.VoteMsg](r) {
		for _, v := range vm.Votes {
			if v.Block == opt.ID() {
				t.Fatalf("voted %v for the withdrawn block", v.Kind)
			}
		}
	}
	m := r.eng.Metrics()
	if m["opt_withdrawn"] != 1 || m["opt_confirmed"] != 0 {
		t.Fatalf("metrics withdrawn=%d confirmed=%d, want 1/0", m["opt_withdrawn"], m["opt_confirmed"])
	}
}

// TestOptimisticReceiverParksBareProposal: a replica receiving the bare
// optimistic broadcast must treat it as unvoteable (no proposer fast
// vote) until the confirmation arrives — the inertness that makes
// withdrawal safe.
func TestOptimisticReceiverParksBareProposal(t *testing.T) {
	bc := mustBeacon(t, 4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p411, observer, withOptimistic)

	a := r.leaderBlock(1, types.Genesis().ID(), 'a')
	r.deliver(a.Proposer, r.proposalFor(a))
	r.clearActs()

	// Round 2's pipelined block arrives bare while round 1 is still open.
	leader2 := bc.ReplicaAt(2, 0)
	b := types.NewBlock(2, leader2, 0, a.ID(), types.BytesPayload([]byte{'b'}))
	if err := r.signers[leader2].SignBlock(b); err != nil {
		t.Fatal(err)
	}
	r.deliver(leader2, &types.Proposal{Block: b})
	for _, vm := range broadcasts[*types.VoteMsg](r) {
		for _, v := range vm.Votes {
			if v.Block == b.ID() {
				t.Fatalf("voted %v for an unconfirmed optimistic block", v.Kind)
			}
		}
	}
	// The block may sit in the ancestry tree, but it must not be VALID —
	// validity is what gates every vote kind.
	if rs := r.eng.rounds[2]; rs != nil && rs.valid[b.ID()] {
		t.Fatal("unconfirmed optimistic block marked valid")
	}

	// Certify round 1, then deliver the confirmation: the parked block
	// becomes valid and this replica fast-votes it.
	peer1, peer2 := bc.ReplicaAt(1, 1), bc.ReplicaAt(1, 2)
	r.deliver(peer1, &types.VoteMsg{Votes: []types.Vote{r.fastVote(peer1, a), r.notarVote(peer1, a)}})
	r.deliver(peer2, &types.VoteMsg{Votes: []types.Vote{r.fastVote(peer2, a), r.notarVote(peer2, a)}})
	if r.eng.Round() != 2 {
		t.Fatalf("round = %d, want 2", r.eng.Round())
	}
	r.clearActs()
	r.deliver(leader2, &types.VoteMsg{Votes: []types.Vote{r.fastVote(leader2, b)}})
	var fastVoted bool
	for _, vm := range broadcasts[*types.VoteMsg](r) {
		for _, v := range vm.Votes {
			if v.Kind == types.VoteFast && v.Block == b.ID() {
				fastVoted = true
			}
		}
	}
	if !fastVoted {
		t.Fatal("confirmed optimistic block not fast-voted by the receiver")
	}
}

// TestStaleFinalizedParentRejected: a rank-0 block extending a finalized
// block from an older round (a superseded fork point) must not validate
// — voting for it could notarize a chain that contradicts the finalized
// prefix and halt the cluster (see parentOK).
func TestStaleFinalizedParentRejected(t *testing.T) {
	bc := mustBeacon(t, 4)
	r := newRig(t, p411, bc.ReplicaAt(4, 0)) // idle observer for rounds 1-3

	a1 := r.leaderBlock(1, types.Genesis().ID(), 'a')
	r.deliver(a1.Proposer, r.proposalFor(a1))
	r.deliver(a1.Proposer, r.fastFinalCert(a1, 1, 2, 3))
	if r.eng.Round() != 2 {
		t.Fatalf("round = %d after finalizing round 1, want 2", r.eng.Round())
	}

	// Round-2 block extending genesis: genesis is finalized, but it is not
	// the round-1 extension point — must stay invalid and unvoted.
	r.clearActs()
	stale := r.leaderBlock(2, types.Genesis().ID(), 's')
	r.deliver(stale.Proposer, r.proposalFor(stale))
	for _, vm := range broadcasts[*types.VoteMsg](r) {
		for _, v := range vm.Votes {
			if v.Block == stale.ID() {
				t.Fatalf("voted %v for a stale-parent block", v.Kind)
			}
		}
	}

	// The legitimate extension of the round-1 tip still validates.
	good := r.leaderBlock(2, a1.ID(), 'g')
	r.deliver(good.Proposer, r.proposalFor(good))
	var voted bool
	for _, vm := range broadcasts[*types.VoteMsg](r) {
		for _, v := range vm.Votes {
			if v.Block == good.ID() {
				voted = true
			}
		}
	}
	if !voted {
		t.Fatal("adjacent finalized parent rejected")
	}
}

// TestConflictingFinalizationFaults: a quorum certificate finalizing a
// chain that contradicts the locally finalized prefix must fire the
// safety-fault path (SafetyFault action, engine halt) rather than be
// absorbed.
func TestConflictingFinalizationFaults(t *testing.T) {
	bc := mustBeacon(t, 4)
	r := newRig(t, p411, bc.ReplicaAt(4, 0))

	a1 := r.leaderBlock(1, types.Genesis().ID(), 'a')
	r.deliver(a1.Proposer, r.proposalFor(a1))
	r.deliver(a1.Proposer, r.fastFinalCert(a1, 1, 2, 3))

	// A conflicting round-1 fork b1, and b2 on top of it with forged-quorum
	// credentials (every signer is available to the test).
	b1 := r.leaderBlock(1, types.Genesis().ID(), 'b')
	r.deliver(b1.Proposer, r.proposalFor(b1))
	for _, voter := range []types.ReplicaID{1, 2, 3} {
		r.deliver(voter, &types.VoteMsg{Votes: []types.Vote{r.fastVote(voter, b1)}})
	}
	notarB1, err := types.NewCertificate(types.CertNotarization, 1, b1.ID(), []types.Vote{
		r.notarVote(1, b1), r.notarVote(2, b1), r.notarVote(3, b1),
	})
	if err != nil {
		t.Fatal(err)
	}
	b2 := r.leaderBlock(2, b1.ID(), 'c')
	fv := r.fastVote(b2.Proposer, b2)
	r.clearActs()
	r.deliver(b2.Proposer, &types.Proposal{Block: b2, FastVote: &fv, ParentNotarization: notarB1})
	r.deliver(b2.Proposer, r.fastFinalCert(b2, 1, 2, 3))

	var faults []protocol.SafetyFault
	for _, a := range r.acts {
		if f, ok := a.(protocol.SafetyFault); ok {
			faults = append(faults, f)
		}
	}
	if len(faults) == 0 {
		t.Fatal("conflicting finalization did not raise a SafetyFault")
	}
	if !errors.Is(faults[0].Err, blocktree.ErrSafetyViolation) {
		t.Fatalf("fault = %v, want ErrSafetyViolation", faults[0].Err)
	}
}

// TestOptimisticDisabledNoBareBroadcast: without the knob the engine
// never emits a credential-less proposal.
func TestOptimisticDisabledNoBareBroadcast(t *testing.T) {
	bc := mustBeacon(t, 4)
	r := newRig(t, p411, bc.ReplicaAt(2, 0))
	a := r.leaderBlock(1, types.Genesis().ID(), 'a')
	r.deliver(a.Proposer, r.proposalFor(a))
	if len(bareProposals(r)) != 0 {
		t.Fatal("knob off but a bare optimistic proposal was broadcast")
	}
}

// --- WAL replay of the optimistic lifecycle -------------------------------
//
// The recorder journals the bare broadcast and (if reached) the
// confirmation fast vote or fallback proposal as KindOwn records. Replay
// must restore exactly the pre-crash state: a pending optimistic
// proposal is pending again (same block, no new signatures), a confirmed
// one is this round's proposal, a withdrawn one stays withdrawn.

// optimisticFirstLife drives a leader-of-round-2 rig to the bare
// broadcast and returns the rig, round-1's block, and the phase-1 own
// messages (journal order).
func optimisticFirstLife(t *testing.T) (*rig, *types.Block, []types.Message) {
	t.Helper()
	bc := mustBeacon(t, 4)
	var calls []types.Round
	r := newRig(t, p411, bc.ReplicaAt(2, 0), withOptimistic, countingPayloads(&calls))
	a := r.leaderBlock(1, types.Genesis().ID(), 'a')
	r.deliver(a.Proposer, r.proposalFor(a))
	if len(bareProposals(r)) != 1 {
		t.Fatal("no optimistic broadcast in first life")
	}
	return r, a, ownBroadcasts(r)
}

// TestReplayRestoresPendingOptimistic: crash between the bare broadcast
// and the parent's certification. Replay must restore the proposal as
// pending — not adopted, not signed again — and the post-replay
// confirmation must reuse the journaled block.
func TestReplayRestoresPendingOptimistic(t *testing.T) {
	r, a, own := optimisticFirstLife(t)
	opt := bareProposals(r)[0].Block

	now := time.Unix(10, 0)
	eng2 := replayRig(t, r, withOptimistic)
	eng2.BeginReplay()
	var acts []protocol.Action
	acts = append(acts, eng2.Start(now)...)
	acts = append(acts, eng2.HandleMessage(a.Proposer, r.proposalFor(a), now)...)
	for _, m := range own {
		acts = append(acts, eng2.ReplayOwn(m, now)...)
	}
	if v, p := countSigning(acts); v != 0 || p != 0 {
		t.Fatalf("replay signed: %d vote msgs, %d proposals", v, p)
	}
	acts = eng2.EndReplay(now)
	if v, p := countSigning(acts); v != 0 || p != 0 {
		t.Fatalf("EndReplay re-signed: %d vote msgs, %d proposals (body is already on the wire)", v, p)
	}
	if eng2.opt == nil || eng2.opt.block.ID() != opt.ID() {
		t.Fatal("pending optimistic proposal not restored")
	}
	if rs := eng2.rounds[2]; rs != nil && rs.proposed {
		t.Fatal("pending optimistic proposal replayed as a committed proposal")
	}
	if m := eng2.Metrics(); m["opt_proposed"] != 1 {
		t.Fatalf("opt_proposed = %d after replay, want 1", m["opt_proposed"])
	}

	// Live continuation: certify round 1 on the expected parent — the
	// confirmation must fast-vote the journaled block, without a second
	// body broadcast.
	bc := r.beacon
	peer1, peer2 := bc.ReplicaAt(1, 2), bc.ReplicaAt(1, 3)
	var live []protocol.Action
	live = append(live, eng2.HandleMessage(peer1,
		&types.VoteMsg{Votes: []types.Vote{r.fastVote(peer1, a), r.notarVote(peer1, a)}}, now)...)
	live = append(live, eng2.HandleMessage(peer2,
		&types.VoteMsg{Votes: []types.Vote{r.fastVote(peer2, a), r.notarVote(peer2, a)}}, now)...)
	var confirmed, rebroadcast bool
	for _, act := range live {
		b, ok := act.(protocol.Broadcast)
		if !ok {
			continue
		}
		switch m := b.Msg.(type) {
		case *types.VoteMsg:
			for _, v := range m.Votes {
				if v.Kind == types.VoteFast && v.Round == 2 && v.Block == opt.ID() {
					confirmed = true
				}
			}
		case *types.Proposal:
			if !m.Relayed && m.Block.Round == 2 {
				rebroadcast = true
			}
		}
	}
	if !confirmed {
		t.Fatal("post-replay confirmation did not fast-vote the journaled block")
	}
	if rebroadcast {
		t.Fatal("post-replay confirmation re-broadcast the body")
	}
}

// TestReplayRestoresConfirmedOptimistic: crash after the confirmation.
// Replay must land the block as this round's proposal with the fast vote
// on the ledger, signing nothing.
func TestReplayRestoresConfirmedOptimistic(t *testing.T) {
	r, a, phase1 := optimisticFirstLife(t)
	opt := bareProposals(r)[0].Block
	bc := r.beacon
	peer1, peer2 := bc.ReplicaAt(1, 2), bc.ReplicaAt(1, 3)
	votes1 := &types.VoteMsg{Votes: []types.Vote{r.fastVote(peer1, a), r.notarVote(peer1, a)}}
	votes2 := &types.VoteMsg{Votes: []types.Vote{r.fastVote(peer2, a), r.notarVote(peer2, a)}}
	r.clearActs()
	r.deliver(peer1, votes1)
	r.deliver(peer2, votes2)
	phase2 := ownBroadcasts(r)

	now := time.Unix(10, 0)
	eng2 := replayRig(t, r, withOptimistic)
	eng2.BeginReplay()
	var acts []protocol.Action
	acts = append(acts, eng2.Start(now)...)
	acts = append(acts, eng2.HandleMessage(a.Proposer, r.proposalFor(a), now)...)
	for _, m := range phase1 {
		acts = append(acts, eng2.ReplayOwn(m, now)...)
	}
	acts = append(acts, eng2.HandleMessage(peer1, votes1, now)...)
	acts = append(acts, eng2.HandleMessage(peer2, votes2, now)...)
	for _, m := range phase2 {
		acts = append(acts, eng2.ReplayOwn(m, now)...)
	}
	if v, p := countSigning(acts); v != 0 || p != 0 {
		t.Fatalf("replay signed: %d vote msgs, %d proposals", v, p)
	}
	eng2.EndReplay(now)

	if eng2.opt != nil {
		t.Fatal("confirmed optimistic proposal still pending after replay")
	}
	rs := eng2.rounds[2]
	if rs == nil || !rs.proposed || !rs.fastVoteSent {
		t.Fatal("confirmed optimistic proposal not restored as the round's proposal")
	}
	if len(rs.fastVotes[opt.ID()]) == 0 {
		t.Fatal("replayed confirmation fast vote missing from the ledger")
	}
	if _, ok := eng2.Tree().Block(opt.ID()); !ok {
		t.Fatal("confirmed block missing from the replayed tree")
	}
	if m := eng2.Metrics(); m["opt_confirmed"] != 1 {
		t.Fatalf("opt_confirmed = %d after replay, want 1", m["opt_confirmed"])
	}
}

// TestReplayKeepsWithdrawnOptimisticInert: crash after a withdraw +
// fallback re-proposal. Replay must adopt the fallback, drop the
// withdrawn block, and never resurrect it — the equivocation hazard the
// WAL journaling exists to prevent.
func TestReplayKeepsWithdrawnOptimisticInert(t *testing.T) {
	r, a, phase1 := optimisticFirstLife(t)
	opt := bareProposals(r)[0].Block
	bc := r.beacon
	a2 := r.leaderBlock(1, types.Genesis().ID(), 'z')
	peer1, peer2 := bc.ReplicaAt(1, 2), bc.ReplicaAt(1, 3)
	votes1 := &types.VoteMsg{Votes: []types.Vote{r.fastVote(peer1, a2), r.notarVote(peer1, a2)}}
	votes2 := &types.VoteMsg{Votes: []types.Vote{r.fastVote(peer2, a2), r.notarVote(peer2, a2)}}
	r.clearActs()
	r.deliver(a2.Proposer, r.proposalFor(a2))
	r.deliver(peer1, votes1)
	r.deliver(peer2, votes2)
	phase2 := ownBroadcasts(r)
	props := ownRound2Proposals(r)
	if len(props) != 1 {
		t.Fatalf("fallback proposals = %d, want 1", len(props))
	}
	fallback := props[0].Block

	now := time.Unix(10, 0)
	eng2 := replayRig(t, r, withOptimistic)
	eng2.BeginReplay()
	var acts []protocol.Action
	acts = append(acts, eng2.Start(now)...)
	acts = append(acts, eng2.HandleMessage(a.Proposer, r.proposalFor(a), now)...)
	for _, m := range phase1 {
		acts = append(acts, eng2.ReplayOwn(m, now)...)
	}
	acts = append(acts, eng2.HandleMessage(a2.Proposer, r.proposalFor(a2), now)...)
	acts = append(acts, eng2.HandleMessage(peer1, votes1, now)...)
	acts = append(acts, eng2.HandleMessage(peer2, votes2, now)...)
	for _, m := range phase2 {
		acts = append(acts, eng2.ReplayOwn(m, now)...)
	}
	if v, p := countSigning(acts); v != 0 || p != 0 {
		t.Fatalf("replay signed: %d vote msgs, %d proposals", v, p)
	}
	eng2.EndReplay(now)

	if eng2.opt != nil {
		t.Fatal("withdrawn optimistic proposal resurrected as pending")
	}
	rs := eng2.rounds[2]
	if rs == nil || !rs.proposed {
		t.Fatal("fallback proposal not restored")
	}
	if _, ok := rs.blocks[fallback.ID()]; !ok {
		t.Fatal("fallback block missing from the replayed round")
	}
	if _, ok := eng2.Tree().Block(opt.ID()); ok {
		t.Fatal("withdrawn block adopted into the replayed tree")
	}
	m := eng2.Metrics()
	if m["opt_withdrawn"] != 1 || m["opt_confirmed"] != 0 {
		t.Fatalf("metrics withdrawn=%d confirmed=%d after replay, want 1/0",
			m["opt_withdrawn"], m["opt_confirmed"])
	}
}

var _ = beacon.Leader // beacon is referenced via rig helpers too
