package core

import (
	"time"

	"banyan/internal/obs"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Batch dissemination (Config.Dissem). Consensus is untouched: replicas
// vote on headers the moment they validate, and finalization forms from
// votes exactly as in inline mode. What the store adds is a second,
// asynchronous plane — batch bodies broadcast continuously off the
// consensus path — and a delivery gate: a finalized chain's Commit action
// is withheld until every batch body its payloads reference is held
// locally, fetched on miss from the block's proposer (blocks reference
// only proposer-own batches) with timeout rotation across peers. Safety
// never depends on the gate; it only orders the application's view.

// onBatchAnnounce ingests a body broadcast or an availability ack. A
// body-carrying announce is self-certifying (digest check) and answered
// with an ack — an announce with the same digest and no body — so the
// origin can count availability before referencing the batch.
func (e *Engine) onBatchAnnounce(from types.ReplicaID, m *types.BatchAnnounce) []protocol.Action {
	if e.cfg.Dissem == nil {
		e.met.rejected++
		return nil
	}
	if m.IsAck() {
		// The sender holds one of our batches. Count the transport-level
		// sender, not the forgeable Origin field.
		e.cfg.Dissem.RecordAck(m.Digest, from)
		return nil
	}
	if m.Body.Digest() != m.Digest {
		e.met.rejected++
		return nil
	}
	e.cfg.Dissem.Put(m.Digest, m.Body)
	e.recordFetchDone(m.Digest)
	e.batchFetch.Done(m.Digest)
	return []protocol.Action{protocol.Send{
		To:  from,
		Msg: &types.BatchAnnounce{Origin: e.cfg.Self, Digest: m.Digest},
	}}
}

// onBatchRequest serves a stored batch body to a peer fetching on miss.
// Stateless, like sync/snapshot requests: not journaled, served straight
// from the store, silent when the body is unknown or already compacted
// (the requester's rotation finds another holder).
func (e *Engine) onBatchRequest(from types.ReplicaID, m *types.BatchRequest) []protocol.Action {
	if e.cfg.Dissem == nil {
		return nil
	}
	body, ok := e.cfg.Dissem.Get(m.Digest)
	if !ok {
		return nil
	}
	e.met.batchServed++
	return []protocol.Action{protocol.Send{
		To:  from,
		Msg: &types.BatchResponse{Digest: m.Digest, Body: body},
	}}
}

// onBatchResponse ingests a fetched body. Self-certifying like the
// announce path, so a malicious peer cannot inject a wrong body — at
// worst it wastes its timeout slot in the rotation.
func (e *Engine) onBatchResponse(m *types.BatchResponse) {
	if e.cfg.Dissem == nil {
		e.met.rejected++
		return
	}
	if m.Body.Digest() != m.Digest {
		e.met.rejected++
		return
	}
	e.cfg.Dissem.Put(m.Digest, m.Body)
	e.recordFetchDone(m.Digest)
	e.batchFetch.Done(m.Digest)
}

// recordFetchDone records the duration of a completing batch fetch —
// Begin to body arrival, across peer rotations — when the arriving
// digest is the one in flight. Called before Fetcher.Done clears the
// in-flight state.
func (e *Engine) recordFetchDone(digest [32]byte) {
	o := e.cfg.Obs
	if o == nil || e.replaying || !e.batchFetch.Fetching() || e.batchFetch.Digest() != digest {
		return
	}
	start := e.batchFetch.Started()
	d := e.now.Sub(start)
	o.DissemFetch.Record(d)
	o.Tracer.Span(0, types.BlockID(digest), obs.SpanDissemFetch, start, d)
}

// tryDisseminate drains freshly cut batches into broadcasts. Running at
// the tail of every progress pass makes dissemination continuous without
// a timer of its own: bodies start traveling as soon as the source has
// transactions, long before any proposal names them. Suppressed during
// replay — cutting from the source there would consume live transactions
// into announces that keepReplayActions drops.
func (e *Engine) tryDisseminate(acts []protocol.Action) []protocol.Action {
	if e.replaying || e.stopped {
		return acts
	}
	for _, a := range e.cfg.Dissem.TakeAnnounces() {
		acts = append(acts, protocol.Broadcast{Msg: a})
	}
	return acts
}

// deliver routes a newly finalized chain to the application. Inline mode
// commits immediately; dissemination mode enqueues the chain behind any
// earlier gated deliveries (application order must match finalization
// order) and flushes whatever prefix has its bodies.
func (e *Engine) deliver(chain []*types.Block, mode protocol.FinalizationMode,
	acts []protocol.Action) []protocol.Action {
	if e.cfg.Dissem == nil {
		o := e.cfg.Obs
		for _, b := range chain {
			e.met.blocksCommit++
			e.met.bytesCommit += int64(b.Payload.Size())
			if o != nil && !e.replaying {
				o.Tracer.Mark(b.Round, b.ID(), obs.StageDelivered, e.now)
			}
		}
		return append(acts, protocol.Commit{Blocks: chain, Explicit: mode})
	}
	e.delivQueue = append(e.delivQueue, deliveryItem{blocks: chain, mode: mode, enq: e.now})
	return e.flushDelivery(acts)
}

// flushDelivery emits Commit actions for the longest prefix of the
// delivery queue whose batch bodies are all held, and queues fetches for
// the digests blocking the head. A partially deliverable chain commits
// its resolvable prefix as FinalizeIndirect (the original mode describes
// the chain's tip, which is still gated); commit metrics count here, at
// delivery, so blocks_commit/bytes_commit mean what the application saw.
func (e *Engine) flushDelivery(acts []protocol.Action) []protocol.Action {
	for len(e.delivQueue) > 0 {
		it := &e.delivQueue[0]
		n := 0
		for _, b := range it.blocks {
			missing := e.cfg.Dissem.Missing(b.Payload)
			if len(missing) > 0 {
				for _, d := range missing {
					e.batchFetch.Add(d, b.Proposer)
				}
				break
			}
			n++
		}
		if n > 0 {
			blocks := it.blocks[:n:n]
			o := e.cfg.Obs
			for _, b := range blocks {
				e.met.blocksCommit++
				e.met.bytesCommit += int64(b.Payload.Size())
				e.cfg.Dissem.MarkDelivered(b.Payload, b.Round)
				if o != nil && !e.replaying {
					id := b.ID()
					o.Tracer.Mark(b.Round, id, obs.StageBodiesResolved, e.now)
					o.Tracer.Mark(b.Round, id, obs.StageDelivered, e.now)
					o.DeliveryWait.Record(e.now.Sub(it.enq))
				}
			}
			mode := it.mode
			if n < len(it.blocks) {
				mode = protocol.FinalizeIndirect
			}
			acts = append(acts, protocol.Commit{Blocks: blocks, Explicit: mode})
			it.blocks = it.blocks[n:]
		}
		if len(it.blocks) > 0 {
			break // head still gated; later items must wait regardless
		}
		e.delivQueue = e.delivQueue[1:]
	}
	return acts
}

// dropStaleDeliveries discards gated delivery-queue blocks the engine has
// pruned past. Behind the retention window a body is no longer guaranteed
// recoverable anywhere — peers compact behind the same floor — and the
// commit-stream contract already tolerates restart gaps (a replica that
// recovered via snapshot adoption never had those blocks either). This is
// what lets a checkpoint-replayed restart rejoin when its pre-crash
// deliveries reference long-compacted batches: catch-up moves the floor
// past them, the stale head is dropped, and live delivery resumes. Blocks
// whose bodies are all held are never dropped, and the fetcher abandons
// the dropped digests so rotation stops burning timeouts on them.
func (e *Engine) dropStaleDeliveries(floor types.Round) {
	items := e.delivQueue[:0]
	for _, it := range e.delivQueue {
		kept := make([]*types.Block, 0, len(it.blocks))
		for _, b := range it.blocks {
			missing := e.cfg.Dissem.Missing(b.Payload)
			if b.Round < floor && len(missing) > 0 {
				e.met.delivDropped++
				for _, d := range missing {
					e.batchFetch.Done(d)
				}
				// The emitted Commit now has a gap in front of it.
				it.mode = protocol.FinalizeIndirect
				continue
			}
			kept = append(kept, b)
		}
		it.blocks = kept
		if len(it.blocks) > 0 {
			items = append(items, it)
		}
	}
	e.delivQueue = items
}

// maybeBatchFetch starts the next queued body fetch when none is in
// flight: a unicast BatchRequest — to the batch's origin first, then
// rotating — plus the deadline timer pollBatchFetch re-arms. Suppressed
// during replay; EndReplay's live progress pass re-issues fetches for
// anything the recovered delivery queue is missing.
func (e *Engine) maybeBatchFetch(now time.Time, acts []protocol.Action) []protocol.Action {
	if e.replaying || e.stopped {
		return acts
	}
	if !e.batchFetch.Begin(now) {
		return acts
	}
	acts = append(acts, protocol.Send{
		To:  e.batchFetch.Peer(),
		Msg: &types.BatchRequest{Digest: e.batchFetch.Digest()},
	})
	return append(acts, protocol.SetTimer{
		ID: protocol.TimerID{Kind: protocol.TimerBatchFetch},
		At: e.batchFetch.Deadline(),
	})
}

// pollBatchFetch handles a TimerBatchFetch fire: a request past its
// per-peer deadline is retried against the next peer in rotation — the
// same discipline as the snapshot fetcher's pollFetch.
func (e *Engine) pollBatchFetch(now time.Time, acts []protocol.Action) []protocol.Action {
	if e.cfg.Dissem == nil || !e.batchFetch.Fetching() {
		return acts
	}
	rearm := protocol.SetTimer{
		ID: protocol.TimerID{Kind: protocol.TimerBatchFetch},
		At: e.batchFetch.Deadline(),
	}
	if !e.batchFetch.Expired(now) {
		return append(acts, rearm)
	}
	peer := e.batchFetch.Retry(now)
	acts = append(acts, protocol.Send{To: peer, Msg: &types.BatchRequest{Digest: e.batchFetch.Digest()}})
	rearm.At = e.batchFetch.Deadline()
	return append(acts, rearm)
}
