package core

import (
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// replayRig builds a second engine with the same identity/config as r's,
// for replaying the first engine's journal into.
func replayRig(t *testing.T, r *rig, opts ...func(*Config)) *Engine {
	t.Helper()
	cfg := Config{
		Params:  r.params,
		Self:    r.eng.cfg.Self,
		Keyring: r.keyring,
		Signer:  r.signers[r.eng.cfg.Self],
		Beacon:  r.beacon,
		Delta:   rigDelta,
	}
	for _, o := range opts {
		o(&cfg)
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// ownBroadcasts extracts the messages a recorder would journal as
// KindOwn from the rig's accumulated actions.
func ownBroadcasts(r *rig) []types.Message {
	var out []types.Message
	for _, a := range r.acts {
		if b, ok := a.(protocol.Broadcast); ok {
			switch b.Msg.(type) {
			case *types.SyncRequest, *types.SyncResponse:
			default:
				out = append(out, b.Msg)
			}
		}
	}
	return out
}

func countSigning(acts []protocol.Action) (votes, proposals int) {
	for _, a := range acts {
		b, ok := a.(protocol.Broadcast)
		if !ok {
			continue
		}
		switch m := b.Msg.(type) {
		case *types.VoteMsg:
			votes++
		case *types.Proposal:
			if !m.Relayed {
				proposals++
			}
		}
	}
	return
}

// TestReplayRestoresVotingRecord: after replaying the journal, the
// engine must not re-issue the votes it already cast — re-deciding a
// round with post-crash timing is how a restarted replica equivocates.
func TestReplayRestoresVotingRecord(t *testing.T) {
	bc := mustBeacon(t, 4)
	self := bc.ReplicaAt(1, 1) // non-leader in round 1
	r := newRig(t, p411, self)
	blockA := r.leaderBlock(1, r.eng.Tree().Genesis().ID(), 'a')
	r.deliver(blockA.Proposer, r.proposalFor(blockA))
	voted := broadcasts[*types.VoteMsg](r)
	if len(voted) != 1 {
		t.Fatalf("first life broadcast %d vote messages, want 1", len(voted))
	}

	// Second life: replay the journal a recorder would have kept —
	// the inbound proposal, then the replica's own vote message.
	now := time.Unix(10, 0)
	eng2 := replayRig(t, r)
	eng2.BeginReplay()
	var acts []protocol.Action
	acts = append(acts, eng2.Start(now)...)
	acts = append(acts, eng2.HandleMessage(blockA.Proposer, r.proposalFor(blockA), now)...)
	acts = append(acts, eng2.ReplayOwn(voted[0], now)...)
	if v, p := countSigning(acts); v != 0 || p != 0 {
		t.Fatalf("replay mode created signatures: %d vote msgs, %d proposals", v, p)
	}
	acts = eng2.EndReplay(now)
	if v, _ := countSigning(acts); v != 0 {
		t.Fatalf("engine re-voted after replay: %d vote messages", v)
	}

	rs := eng2.rounds[1]
	if rs == nil || !rs.notarVoted[blockA.ID()] || !rs.fastVoteSent {
		t.Fatal("replay did not restore the voting record")
	}
	if len(rs.fastVotes[blockA.ID()]) == 0 {
		t.Fatal("replayed own fast vote missing from the ledger")
	}
}

// TestReplayDoesNotReproposeWithNewPayload: the round leader crashed
// after proposing; on replay it must adopt the journaled block instead
// of signing a second, different proposal for the same round.
func TestReplayDoesNotReproposeWithNewPayload(t *testing.T) {
	bc := mustBeacon(t, 4)
	leader := beacon.Leader(bc, 1)
	r := newRig(t, p411, leader, func(c *Config) {
		c.Payloads = protocol.PayloadFunc(func(types.Round) types.Payload {
			return types.BytesPayload([]byte("pre-crash"))
		})
	})
	props := broadcasts[*types.Proposal](r)
	if len(props) != 1 {
		t.Fatalf("leader broadcast %d proposals, want 1", len(props))
	}

	// The restarted process has a different mempool state.
	now := time.Unix(10, 0)
	eng2 := replayRig(t, r, func(c *Config) {
		c.Payloads = protocol.PayloadFunc(func(types.Round) types.Payload {
			return types.BytesPayload([]byte("post-crash, different"))
		})
	})
	eng2.BeginReplay()
	var acts []protocol.Action
	acts = append(acts, eng2.Start(now)...)
	acts = append(acts, eng2.ReplayOwn(props[0], now)...)
	acts = append(acts, eng2.EndReplay(now)...)
	if _, p := countSigning(acts); p != 0 {
		t.Fatal("replay re-proposed — the restarted leader would equivocate")
	}
	rs := eng2.rounds[1]
	if rs == nil || !rs.proposed {
		t.Fatal("replay did not restore the proposed flag")
	}
	if !rs.valid[props[0].Block.ID()] {
		t.Fatal("replayed own block not marked valid")
	}
	if !rs.fastVoteSent {
		t.Fatal("the journaled proposal's fast vote must restore fastVoteSent")
	}
}

// TestReplayRecommitsAndAdvances: a journal covering a fast-finalized
// round must re-derive the commit and leave the engine in the next
// round, exactly where it crashed.
func TestReplayRecommitsAndAdvances(t *testing.T) {
	bc := mustBeacon(t, 4)
	self := bc.ReplicaAt(1, 1)
	r := newRig(t, p411, self)
	blockA := r.leaderBlock(1, r.eng.Tree().Genesis().ID(), 'a')
	inboundProposal := r.proposalFor(blockA)
	r.deliver(blockA.Proposer, inboundProposal)
	// Fast votes from the two remaining replicas complete the n-p = 3
	// quorum (proposer's came with the proposal, ours with our vote).
	var rest []types.ReplicaID
	for i := 0; i < 4; i++ {
		if id := types.ReplicaID(i); id != self && id != blockA.Proposer {
			rest = append(rest, id)
		}
	}
	inboundVotes := &types.VoteMsg{Votes: []types.Vote{r.fastVote(rest[0], blockA)}}
	r.deliver(rest[0], inboundVotes)
	if len(r.commits()) == 0 {
		t.Fatal("first life did not fast-finalize")
	}
	if r.eng.Round() != 2 {
		t.Fatalf("first life in round %d, want 2", r.eng.Round())
	}
	journalOwn := ownBroadcasts(r)

	// Second life: inbound records first (as arrival order had them),
	// own records after — the recorder preserves true interleaving, but
	// replay must converge regardless because ingestion is commutative
	// up to the progress fixpoint.
	now := time.Unix(10, 0)
	eng2 := replayRig(t, r)
	eng2.BeginReplay()
	var acts []protocol.Action
	acts = append(acts, eng2.Start(now)...)
	acts = append(acts, eng2.HandleMessage(blockA.Proposer, inboundProposal, now)...)
	for _, m := range journalOwn {
		acts = append(acts, eng2.ReplayOwn(m, now)...)
	}
	acts = append(acts, eng2.HandleMessage(rest[0], inboundVotes, now)...)
	acts = append(acts, eng2.EndReplay(now)...)

	var committed int
	for _, a := range acts {
		if c, ok := a.(protocol.Commit); ok {
			for _, b := range c.Blocks {
				if b.ID() != blockA.ID() {
					t.Fatalf("replay committed unexpected block %s", b.ID())
				}
				committed++
			}
		}
	}
	if committed != 1 {
		t.Fatalf("replay committed %d blocks, want 1", committed)
	}
	if eng2.Round() != 2 {
		t.Fatalf("replayed engine in round %d, want 2", eng2.Round())
	}
	if v, p := countSigning(acts); v != 0 || p != 0 {
		t.Fatalf("replay created signatures: %d vote msgs, %d proposals", v, p)
	}
	if eng2.Tree().FinalizedRound() != 1 {
		t.Fatalf("finalized round = %d, want 1", eng2.Tree().FinalizedRound())
	}
}
