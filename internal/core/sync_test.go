package core

import (
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// buildFinalizedChain drives the rig's engine through `rounds` fast
// rounds, returning the blocks in order. The engine under test is the
// observer whose chain state we then use to serve or request syncs.
func buildFinalizedChain(t *testing.T, r *rig, rounds types.Round) []*types.Block {
	t.Helper()
	var chain []*types.Block
	parent := types.Genesis().ID()
	for round := types.Round(1); round <= rounds; round++ {
		roundLeader := beacon.Leader(r.beacon, round)
		var b *types.Block
		if roundLeader == r.eng.ID() {
			rs := r.eng.getRound(round)
			for id := range rs.blocks {
				b = rs.blocks[id]
			}
			if b == nil {
				t.Fatalf("round %d: engine leads but proposed nothing", round)
			}
		} else {
			b = r.leaderBlock(round, parent, byte(round))
			r.deliver(roundLeader, r.proposalFor(b))
		}
		for peer := types.ReplicaID(0); int(peer) < r.params.N; peer++ {
			if peer == r.eng.ID() || peer == roundLeader {
				continue
			}
			r.deliver(peer, &types.VoteMsg{Votes: []types.Vote{
				r.fastVote(peer, b), r.notarVote(peer, b),
			}})
		}
		chain = append(chain, b)
		parent = b.ID()
	}
	return chain
}

// TestSyncRequestServesFinalizedChain: a replica with a finalized prefix
// answers SyncRequests with the chain segment and its latest finalization
// certificate.
func TestSyncRequestServesFinalizedChain(t *testing.T) {
	bc := mustBeacon(t, 4)
	leader := beacon.Leader(bc, 1)
	r := newRig(t, p411, leader)
	chain := buildFinalizedChain(t, r, 10)
	if r.eng.Tree().FinalizedRound() < 9 {
		t.Fatalf("setup: finalized only %d rounds", r.eng.Tree().FinalizedRound())
	}

	r.clearActs()
	r.deliver(2, &types.SyncRequest{From: 3, To: 7})
	var resp *types.SyncResponse
	for _, a := range r.acts {
		if s, ok := a.(protocol.Send); ok {
			if m, ok := s.Msg.(*types.SyncResponse); ok {
				if s.To != 2 {
					t.Fatalf("response sent to %d, want 2", s.To)
				}
				resp = m
			}
		}
	}
	if resp == nil {
		t.Fatal("no sync response")
	}
	if len(resp.Blocks) != 5 {
		t.Fatalf("response has %d blocks, want 5 (rounds 3..7)", len(resp.Blocks))
	}
	for i, b := range resp.Blocks {
		if !b.Equal(chain[i+2]) {
			t.Fatalf("response block %d is not the finalized round-%d block", i, i+3)
		}
	}
	if resp.Finalization == nil || resp.Finalization.Round < 7 {
		t.Fatalf("response certificate %v does not cover the segment", resp.Finalization)
	}

	// A request beyond the finalized prefix yields nothing.
	r.clearActs()
	r.deliver(2, &types.SyncRequest{From: 100, To: 120})
	for _, a := range r.acts {
		if _, ok := a.(protocol.Send); ok {
			t.Fatal("responded to a request beyond the finalized prefix")
		}
	}
}

// TestLaggingReplicaCatchesUpViaSync: a fresh engine receiving only a
// far-ahead finalization certificate requests a sync, ingests the
// response, commits the chain and jumps its round forward.
func TestLaggingReplicaCatchesUpViaSync(t *testing.T) {
	bc := mustBeacon(t, 4)
	leader := beacon.Leader(bc, 1)
	full := newRig(t, p411, leader)
	buildFinalizedChain(t, full, 10)
	fullEng := full.eng

	// The lagging replica: a different rig sharing the same cluster keys.
	lag := newRig(t, p411, bc.ReplicaAt(1, 3))
	if lag.eng.Round() != 1 {
		t.Fatal("setup: lagging replica should start at round 1")
	}

	// Deliver the full replica's latest finalization certificate.
	if fullEng.latestFinal == nil {
		t.Fatal("setup: full replica has no finalization certificate")
	}
	lag.clearActs()
	lag.deliver(leader, &types.CertMsg{Cert: fullEng.latestFinal})
	if n := len(broadcasts[*types.SyncRequest](lag)); n != 0 {
		t.Fatalf("sync request broadcast %d times; catch-up must be unicast", n)
	}
	reqs := sends[*types.SyncRequest](lag)
	if len(reqs) != 1 {
		t.Fatal("lagging replica did not request a sync")
	}
	if reqs[0].To == lag.eng.ID() {
		t.Fatal("sync request sent to self")
	}
	req := reqs[0].Msg.(*types.SyncRequest)
	if req.From != 1 {
		t.Fatalf("sync request From = %d, want 1", req.From)
	}

	// Serve it from the full replica and feed the response back.
	respActs := fullEng.HandleMessage(lag.eng.ID(), req, full.now)
	var resp *types.SyncResponse
	for _, a := range respActs {
		if s, ok := a.(protocol.Send); ok {
			if m, ok := s.Msg.(*types.SyncResponse); ok {
				resp = m
			}
		}
	}
	if resp == nil {
		t.Fatal("full replica did not serve the sync")
	}
	lag.deliver(leader, resp)

	if fin := lag.eng.Tree().FinalizedRound(); fin < 9 {
		t.Fatalf("lagging replica finalized only %d rounds after sync", fin)
	}
	if lag.eng.Round() <= 9 {
		t.Fatalf("lagging replica did not jump rounds: at %d", lag.eng.Round())
	}
	commits := lag.commits()
	total := 0
	for _, c := range commits {
		total += len(c.Blocks)
	}
	if total < 9 {
		t.Fatalf("lagging replica committed %d blocks via sync", total)
	}
}

// TestSyncResponseRejectsDisconnectedSegment: blocks that do not connect
// to the local tree are dropped and do not advance the high-water mark.
func TestSyncResponseRejectsDisconnectedSegment(t *testing.T) {
	bc := mustBeacon(t, 4)
	r := newRig(t, p411, bc.ReplicaAt(1, 3))
	// A block whose parent is unknown garbage.
	orphan := types.NewBlock(5, beacon.Leader(bc, 5), 0, types.BlockID{9, 9}, types.Payload{})
	if err := r.signers[orphan.Proposer].SignBlock(orphan); err != nil {
		t.Fatal(err)
	}
	r.deliver(1, &types.SyncResponse{Blocks: []*types.Block{orphan}})
	if r.eng.syncHigh != 0 {
		t.Fatalf("syncHigh advanced to %d on a disconnected segment", r.eng.syncHigh)
	}
	if r.eng.Tree().Contains(orphan.ID()) {
		t.Fatal("disconnected block stored")
	}
}

// TestResendAfterStall: a replica stuck in a round rebroadcasts its votes
// and best block after the resend interval, repeatedly.
func TestResendAfterStall(t *testing.T) {
	bc := mustBeacon(t, 4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p411, observer)
	b := r.leaderBlock(1, types.Genesis().ID(), 1)
	r.deliver(b.Proposer, r.proposalFor(b))
	// No further traffic: after the resend interval the engine must
	// rebroadcast its fast+notarize votes and relay the block.
	r.clearActs()
	interval := r.eng.resendInterval()
	r.now = r.now.Add(interval + time.Millisecond)
	r.acts = append(r.acts, r.eng.HandleTimer(
		protocol.TimerID{Round: 1, Kind: protocol.TimerResend}, r.now)...)

	votes := 0
	for _, vm := range broadcasts[*types.VoteMsg](r) {
		votes += len(vm.Votes)
	}
	if votes < 2 {
		t.Fatalf("resend broadcast %d votes, want >= 2 (fast + notarize)", votes)
	}
	relays := 0
	for _, p := range broadcasts[*types.Proposal](r) {
		if p.Relayed && p.Block.ID() == b.ID() {
			relays++
		}
	}
	if relays < 1 {
		t.Fatal("resend did not relay the best known block")
	}
	if n := len(broadcasts[*types.SyncRequest](r)); n != 0 {
		t.Fatalf("resend broadcast %d sync requests; the probe must be unicast", n)
	}
	if len(sends[*types.SyncRequest](r)) != 1 {
		t.Fatal("resend did not probe for missed finalizations")
	}
	// The timer re-arms itself.
	rearmed := false
	for _, a := range r.acts {
		if st, ok := a.(protocol.SetTimer); ok && st.ID.Kind == protocol.TimerResend {
			rearmed = true
		}
	}
	if !rearmed {
		t.Fatal("resend timer not re-armed")
	}
	if r.eng.Metrics()["resends"] != 1 {
		t.Fatalf("resends metric = %d", r.eng.Metrics()["resends"])
	}

	// A stale resend fire (old round) does nothing.
	r.clearActs()
	r.acts = r.eng.HandleTimer(protocol.TimerID{Round: 0, Kind: protocol.TimerResend}, r.now)
	if len(broadcasts[*types.VoteMsg](r)) != 0 {
		t.Fatal("stale resend timer rebroadcast votes")
	}
}

// TestFastFinalCertForUnknownBlockDefersRankCheck: a fast-finalization
// certificate for a block we have not received is accepted provisionally;
// the commit happens once the block arrives (and its rank is checked
// against the certificate's premise by validity at that point).
func TestFastFinalCertForUnknownBlock(t *testing.T) {
	bc := mustBeacon(t, 4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p411, observer)
	b := r.leaderBlock(1, types.Genesis().ID(), 1)
	var votes []types.Vote
	for _, peer := range []types.ReplicaID{0, 1, 2} {
		votes = append(votes, r.fastVote(peer, b))
	}
	cert, err := types.NewCertificate(types.CertFastFinalization, 1, b.ID(), votes)
	if err != nil {
		t.Fatal(err)
	}
	r.deliver(0, &types.CertMsg{Cert: cert})
	if len(r.commits()) != 0 {
		t.Fatal("committed without the block")
	}
	// The block arrives: the certificate applies.
	r.deliver(b.Proposer, r.proposalFor(b))
	commits := r.commits()
	if len(commits) != 1 || !commits[0].Blocks[0].Equal(b) {
		t.Fatalf("commits after block arrival: %v", commits)
	}
}
