package core

import (
	"errors"
	"fmt"
	"time"

	"banyan/internal/blocktree"
	"banyan/internal/dissem"
	"banyan/internal/membership"
	"banyan/internal/obs"
	"banyan/internal/protocol"
	"banyan/internal/statesync"
	"banyan/internal/types"
)

// Engine is the Banyan consensus state machine for one replica. It
// implements protocol.Engine; see the package comment for the protocol
// overview and config.go for wiring.
type Engine struct {
	cfg  Config
	tree *blocktree.Tree

	// history is the epoch-scoped validator-set sequence (Config.History):
	// every quorum size, leader rank, and certificate check consults the
	// set in effect at the relevant round. It grows only when a
	// ConfigChange block finalizes (applyChanges) or a verified
	// snapshot/checkpoint restores a longer prefix.
	history *membership.History

	round  types.Round // current round k
	rounds map[types.Round]*roundState

	// extFinal holds explicit finalization certificates received from
	// peers, per round, applied by tryFinalize.
	extFinal map[types.Round]*types.Certificate

	// pendingCommit holds explicitly finalized blocks whose ancestor chain
	// is not yet complete locally; retried as blocks arrive.
	pendingCommit map[types.BlockID]protocol.FinalizationMode

	// Catch-up state: latestFinal is the highest-round finalization
	// certificate seen or formed (it anchors sync responses and proves
	// this replica behind); syncHigh is the highest round up to which the
	// tree holds a contiguous chain fetched by sync; catchupDirty marks
	// that new catch-up material arrived; lastSyncReq, lastSyncFrom and
	// syncStalls rate-limit and reset a stalled sync.
	latestFinal  *types.Certificate
	epochHint    *types.Certificate
	syncHigh     types.Round
	catchupDirty bool
	lastSyncReq  time.Time
	lastSyncFrom types.Round
	syncStalls   int

	// Snapshot state sync: syncPeers rotates the unicast target of both
	// the suffix subprotocol and snapshot fetches; fetcher schedules the
	// latter; syncProbe marks that the resend timer wants a pull for
	// possibly-missed finalizations even though no certificate proves this
	// replica behind; prefixStalls counts consecutive stalls on the first
	// missing round — the unserveable-prefix livelock signature that
	// escalates to a snapshot fetch.
	syncPeers    *statesync.Ring
	fetcher      *statesync.Fetcher
	syncProbe    bool
	prefixStalls int

	// Batch dissemination (Config.Dissem): delivQueue holds finalized
	// chains whose Commit is gated on batch-body availability — ordering
	// already decided, bytes possibly still in flight — and batchFetch
	// schedules the fetch-on-miss unicasts for the missing bodies.
	delivQueue []deliveryItem
	batchFetch *dissem.Fetcher

	stopped bool
	fault   error

	// now caches the host-supplied clock of the entry point currently
	// being processed (Start/HandleMessage/HandleTimer), so internal
	// paths that do not thread a timestamp (onProposal, tryNotarize,
	// flushDelivery) can stamp observability events in the engine's
	// clock domain — virtual time under simulation, wall time live.
	now time.Time

	// replaying marks WAL recovery (see replay.go): every clause that
	// would create a new signature is suppressed, so replayed state can
	// only come from the journal itself.
	replaying bool

	// opt is the in-flight optimistic proposal (Config.OptimisticProposals):
	// a signed block for round opt.round, broadcast while this replica was
	// still in round opt.round-1, extending the parent it expected that
	// round to certify. It is deliberately NOT in rounds[opt.round].blocks
	// or the tree — it becomes this replica's proposal only when tryPropose
	// confirms it (certified parent matched) and fast-votes it; a mismatch
	// withdraws it, and the block, lacking its proposer's fast vote, can
	// never satisfy validBlock anywhere.
	opt *optimisticProposal

	lastPrune types.Round

	met struct {
		roundsStarted int64
		proposals     int64
		relays        int64
		votesSent     int64
		advances      int64
		fastFinal     int64
		slowFinal     int64
		indirectFinal int64
		blocksCommit  int64
		bytesCommit   int64
		rejected      int64
		resends       int64
		ssFetches     int64
		ssServed      int64
		ssRejected    int64
		ssBytes       int64
		optProposed   int64
		optConfirmed  int64
		optWithdrawn  int64
		batchServed   int64
		delivDropped  int64
		epochChanges  int64
		epochHints    int64
	}
}

// deliveryItem is one finalized chain waiting for its batch bodies.
type deliveryItem struct {
	blocks []*types.Block
	mode   protocol.FinalizationMode
	// enq is when the chain entered the delivery queue (engine clock),
	// the start point of the delivery-wait histogram.
	enq time.Time
}

// optimisticProposal is a proposal signed and broadcast before its
// parent round certified, pending confirmation or withdrawal.
type optimisticProposal struct {
	round  types.Round
	parent types.BlockID
	block  *types.Block
}

var _ protocol.Engine = (*Engine)(nil)

// New builds a Banyan engine from the configuration.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Peer rotations span the whole identity registry, not just the
	// genesis set: a joiner must fetch state from replicas it is not yet a
	// co-member of, and the rings tolerate silent (not-yet-started) peers
	// by timeout rotation.
	return &Engine{
		cfg:           cfg,
		history:       cfg.History,
		tree:          blocktree.New(),
		rounds:        make(map[types.Round]*roundState),
		extFinal:      make(map[types.Round]*types.Certificate),
		pendingCommit: make(map[types.BlockID]protocol.FinalizationMode),
		syncPeers:     statesync.NewRing(cfg.Self, cfg.Keyring.N()),
		fetcher:       statesync.NewFetcher(cfg.Self, cfg.Keyring.N(), cfg.StateSyncTimeout),
		batchFetch:    dissem.NewFetcher(cfg.Self, cfg.Keyring.N(), cfg.BatchFetchTimeout),
	}, nil
}

// setFor returns the validator set in effect at round r.
func (e *Engine) setFor(r types.Round) *membership.ValidatorSet {
	return e.history.SetForRound(r)
}

// ID implements protocol.Engine.
func (e *Engine) ID() types.ReplicaID { return e.cfg.Self }

// Protocol implements protocol.Engine.
func (e *Engine) Protocol() string {
	if e.cfg.DisableFastPath {
		return "banyan-nofast"
	}
	return "banyan"
}

// Round returns the engine's current round (for tests and the harness).
func (e *Engine) Round() types.Round { return e.round }

// Tree exposes the block tree for inspection by tests and the harness.
func (e *Engine) Tree() *blocktree.Tree { return e.tree }

// Params returns the genesis fault-model parameters; the per-epoch
// parameters live in History().
func (e *Engine) Params() types.Params { return e.cfg.Params }

// History exposes the validator-set history for hosts and tests.
func (e *Engine) History() *membership.History { return e.history }

// Member reports whether this replica is a voting member of the set in
// effect at its current round. A non-member (a joiner syncing toward its
// first epoch, or a removed validator) runs as an observer: it follows
// finalization and serves state but proposes and votes nothing.
func (e *Engine) Member() bool {
	return e.setFor(e.round).Contains(e.cfg.Self)
}

// Start implements protocol.Engine: the replica enters round 1.
func (e *Engine) Start(now time.Time) []protocol.Action {
	e.now = now
	var acts []protocol.Action
	acts = e.enterRound(1, now, acts)
	return e.progress(now, acts)
}

// HandleMessage implements protocol.Engine.
func (e *Engine) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	// The from-guard admits the whole identity registry, not just current
	// members: joiners must be able to request state before their first
	// epoch as voters, and removed validators may still serve sync. Voting
	// power is gated per message below, against the epoch's set.
	if e.stopped || int(from) >= e.cfg.Keyring.N() {
		return nil
	}
	e.now = now
	switch m := msg.(type) {
	case *types.Proposal:
		e.onProposal(m)
	case *types.VoteMsg:
		for _, v := range m.Votes {
			e.onVote(v)
		}
	case *types.CertMsg:
		e.onCert(m.Cert)
	case *types.Advance:
		e.onCert(m.Notarization)
		e.onUnlock(m.Unlock)
	case *types.SyncRequest:
		return e.onSyncRequest(from, m)
	case *types.SyncResponse:
		e.onSyncResponse(m)
	case *types.SnapshotRequest:
		return e.onSnapshotRequest(from, m)
	case *types.SnapshotResponse:
		return e.progress(now, e.onSnapshotResponse(m))
	case *types.BatchAnnounce:
		return e.progress(now, e.onBatchAnnounce(from, m))
	case *types.BatchRequest:
		return e.onBatchRequest(from, m)
	case *types.BatchResponse:
		e.onBatchResponse(m)
	default:
		e.met.rejected++
		return nil
	}
	return e.progress(now, nil)
}

// HandleTimer implements protocol.Engine. Most timers carry no state of
// their own — they re-trigger the evaluation of the time-gated
// upon-clauses; resend timers additionally rebroadcast round state.
func (e *Engine) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	if e.stopped {
		return nil
	}
	e.now = now
	var acts []protocol.Action
	if id.Kind == protocol.TimerResend && id.Round == e.round {
		acts = e.resendRound(now, acts)
	}
	if id.Kind == protocol.TimerStateSync {
		acts = e.pollFetch(now, acts)
	}
	if id.Kind == protocol.TimerBatchFetch {
		acts = e.pollBatchFetch(now, acts)
	}
	return e.progress(now, acts)
}

// resendRound rebroadcasts this replica's state for a round it has been
// stuck in: its own votes, the best block it holds (with parent
// credentials), any notarization certificates, and a sync request for
// newer finalized rounds. Receivers deduplicate everything, so resends are
// idempotent. This restores liveness when messages were lost for good
// (crash-rebooted peers, dropped frames across TCP reconnects) — a case
// the paper's reliable-link model excludes but deployments meet.
func (e *Engine) resendRound(now time.Time, acts []protocol.Action) []protocol.Action {
	rs := e.getRound(e.round)
	if !rs.started || (rs.advanced && !rs.barrier) {
		return acts
	}
	e.met.resends++
	// Own votes for this round, across all three ledgers.
	var votes []types.Vote
	for kind, ledger := range map[types.VoteKind]map[types.BlockID]map[types.ReplicaID][]byte{
		types.VoteNotarize: rs.notarVotes,
		types.VoteFast:     rs.fastVotes,
		types.VoteFinalize: rs.finalVotes,
	} {
		for block, byVoter := range ledger {
			if sig, ok := byVoter[e.cfg.Self]; ok {
				votes = append(votes, types.Vote{
					Kind: kind, Round: e.round, Block: block, Voter: e.cfg.Self, Signature: sig,
				})
			}
		}
	}
	if len(votes) > 0 {
		acts = append(acts, protocol.Broadcast{Msg: &types.VoteMsg{Votes: votes}})
	}
	// The best (lowest-rank valid, else any) block we hold, as a relay.
	if b := e.bestKnownBlock(rs); b != nil {
		acts = append(acts, protocol.Broadcast{Msg: e.relayProposal(b)})
	}
	// Any notarizations formed or received for this round.
	for _, cert := range rs.notarizations {
		acts = append(acts, protocol.Broadcast{Msg: &types.CertMsg{Cert: cert}})
	}
	// Pull finalizations we may have missed: flag a probe for maybeSync,
	// which owns the unicast target, the 2Δ rate limit, and the
	// high-water-mark bookkeeping — a direct request from here would
	// bypass all three and re-fetch segments already in flight.
	e.syncProbe = true
	// Re-arm with the same interval.
	acts = append(acts, protocol.SetTimer{
		ID: protocol.TimerID{Round: e.round, Kind: protocol.TimerResend},
		At: now.Add(e.resendInterval()),
	})
	return acts
}

func (e *Engine) bestKnownBlock(rs *roundState) *types.Block {
	var best *types.Block
	for id := range rs.valid {
		b := rs.blocks[id]
		if best == nil || b.Rank < best.Rank {
			best = b
		}
	}
	if best != nil {
		return best
	}
	for _, b := range rs.blocks {
		if best == nil || b.Rank < best.Rank {
			best = b
		}
	}
	return best
}

// resendInterval is comfortably beyond the slowest legitimate round: all
// n rank delays (2Δ each) plus margin, n being the current epoch's size.
func (e *Engine) resendInterval() time.Duration {
	return 2 * e.cfg.Delta * time.Duration(e.setFor(e.round).Size()+2)
}

// Metrics implements protocol.Engine.
func (e *Engine) Metrics() map[string]int64 {
	m := map[string]int64{
		"rounds":             e.met.roundsStarted,
		"proposals":          e.met.proposals,
		"relays":             e.met.relays,
		"votes_sent":         e.met.votesSent,
		"advances":           e.met.advances,
		"final_fast":         e.met.fastFinal,
		"final_slow":         e.met.slowFinal,
		"final_indirect":     e.met.indirectFinal,
		"blocks_commit":      e.met.blocksCommit,
		"bytes_commit":       e.met.bytesCommit,
		"rejected":           e.met.rejected,
		"resends":            e.met.resends,
		"statesync_fetches":  e.met.ssFetches,
		"epoch_hints":        e.met.epochHints,
		"statesync_served":   e.met.ssServed,
		"statesync_rejected": e.met.ssRejected,
		"statesync_bytes":    e.met.ssBytes,
		"opt_proposed":       e.met.optProposed,
		"opt_confirmed":      e.met.optConfirmed,
		"opt_withdrawn":      e.met.optWithdrawn,
		"epoch":              int64(e.history.Current().Epoch()),
		"epoch_changes":      e.met.epochChanges,
		"members":            int64(e.history.Current().Size()),
	}
	if e.cfg.Dissem != nil {
		e.cfg.Dissem.Metrics(m)
		e.batchFetch.Metrics(m)
		m["dissemServed"] = e.met.batchServed
		m["dissemDelivQueued"] = int64(len(e.delivQueue))
		m["dissemDelivDropped"] = e.met.delivDropped
	}
	return m
}

// ---------------------------------------------------------------------------
// Message ingestion. These mutate state only; all protocol reactions happen
// in progress() so that every upon-clause is re-evaluated exactly once per
// event regardless of which message kind triggered it.

func (e *Engine) onProposal(m *types.Proposal) {
	b := m.Block
	if b == nil || b.Round < 1 || int(b.Proposer) >= e.cfg.Keyring.N() {
		e.met.rejected++
		return
	}
	if b.Round+e.cfg.PruneKeep <= e.tree.FinalizedRound() {
		return // too old to matter
	}
	// The epoch and rank are committed into the header; both must match
	// the set in effect at the block's round — a non-member proposer gets
	// NoRank and is rejected here no matter what rank it claims.
	set := e.setFor(b.Round)
	if b.Epoch != set.Epoch() || !set.Contains(b.Proposer) ||
		b.Rank != set.RankOf(b.Round, b.Proposer) {
		e.met.rejected++
		return
	}
	rs := e.getRound(b.Round)
	id := b.ID()
	_, known := rs.blocks[id]
	if !known {
		o := e.cfg.Obs
		var verifyStart time.Time
		if o != nil {
			verifyStart = time.Now() // real time: verification is CPU-bound
		}
		if err := e.cfg.Verifier.VerifyBlock(b); err != nil {
			e.met.rejected++
			return
		}
		if o != nil && !e.replaying {
			d := time.Since(verifyStart)
			o.VerifyTime.Record(d)
			o.Tracer.Mark(b.Round, id, obs.StageProposalReceived, e.now)
			o.Tracer.Span(b.Round, id, obs.SpanVerify, e.now, d)
		}
		rs.blocks[id] = b
		e.tree.Add(b)
		if !rs.valid[id] {
			rs.pending[id] = m
		}
	}
	// Absorb the proposer's fast vote (Addition 2): it counts toward
	// support sets even before the block is valid.
	if m.FastVote != nil {
		e.onVote(*m.FastVote)
	}
	// Adopt parent credentials carried by the proposal.
	if m.ParentNotarization != nil {
		e.onCert(m.ParentNotarization)
	}
	e.onUnlock(m.ParentUnlock)
}

func (e *Engine) onVote(v types.Vote) {
	if v.Round < 1 || !v.Kind.Valid() {
		e.met.rejected++
		return
	}
	// Membership pinning: only votes from members of the round's epoch
	// count. This is what defeats an epoch-straddling adversary — a
	// removed validator's key still verifies (identities are never
	// re-keyed), but its votes for rounds past its removal are discarded
	// before they touch any ledger.
	if !e.setFor(v.Round).Contains(v.Voter) {
		e.met.rejected++
		return
	}
	if v.Round+e.cfg.PruneKeep <= e.tree.FinalizedRound() {
		return
	}
	rs := e.getRound(v.Round)
	var ledger map[types.BlockID]map[types.ReplicaID][]byte
	switch v.Kind {
	case types.VoteNotarize:
		ledger = rs.notarVotes
	case types.VoteFinalize:
		ledger = rs.finalVotes
	case types.VoteFast:
		ledger = rs.fastVotes
	}
	if _, dup := ledger[v.Block][v.Voter]; dup {
		return
	}
	if err := e.cfg.Verifier.VerifyVote(v); err != nil {
		e.met.rejected++
		return
	}
	addVote(ledger, v.Block, v.Voter, v.Signature)
}

func (e *Engine) onCert(c *types.Certificate) {
	if c == nil || c.Round < 1 {
		return
	}
	if c.Round+e.cfg.PruneKeep <= e.tree.FinalizedRound() {
		return
	}
	rs := e.getRound(c.Round)
	// Certificate verification is pinned to the certified round's epoch:
	// quorum sizes come from that set, and every signer must be one of its
	// members — old certs keep verifying after the set moves on, and a
	// removed validator's signature poisons any later-epoch certificate.
	set := e.setFor(c.Round)
	switch c.Kind {
	case types.CertNotarization:
		if rs.notarizations[c.Block] != nil {
			return
		}
		if err := e.cfg.Verifier.VerifyCertIn(c, set.Params().NotarizationQuorum(), set); err != nil {
			e.met.rejected++
			return
		}
		rs.notarizations[c.Block] = c
		e.tree.MarkNotarized(c.Block)
	case types.CertFinalization, types.CertFastFinalization:
		if rs.finalized || e.extFinal[c.Round] != nil {
			return
		}
		quorum := set.Params().FinalizationQuorum()
		if c.Kind == types.CertFastFinalization {
			quorum = set.Params().FastQuorum()
		}
		if err := e.cfg.Verifier.VerifyCertIn(c, quorum, set); err != nil {
			e.met.rejected++
			e.noteEpochHint(c)
			return
		}
		// A fast finalization is only meaningful for a rank-0 block; if the
		// block is known, enforce that here (otherwise it is enforced before
		// commit, when the block arrives).
		if c.Kind == types.CertFastFinalization {
			if b, ok := rs.blocks[c.Block]; ok && b.Rank != 0 {
				e.met.rejected++
				return
			}
		}
		if c.Round <= e.round+1 {
			e.extFinal[c.Round] = c
		}
		e.noteFinalCert(c)
	default:
		e.met.rejected++
	}
}

func (e *Engine) onUnlock(u *types.UnlockProof) {
	if u == nil || u.Round < 1 || e.cfg.DisableFastPath {
		return
	}
	if u.Round+e.cfg.PruneKeep <= e.tree.FinalizedRound() {
		return
	}
	rs := e.getRound(u.Round)
	if u.All && rs.allUnlocked {
		return
	}
	if !u.All && rs.isUnlocked(u.Block) {
		return
	}
	set := e.setFor(u.Round)
	if err := e.cfg.Verifier.VerifyUnlockProofIn(u, set.Params().UnlockThreshold(), set); err != nil {
		e.met.rejected++
		return
	}
	if u.All {
		rs.allUnlocked = true
	} else {
		rs.unlocked[u.Block] = true
	}
	// Absorb the proof's verified fast votes: they contribute to this
	// replica's own support sets and future proofs.
	for _, en := range u.Entries {
		id := en.Header.ID()
		for i, voter := range en.Voters {
			addVote(rs.fastVotes, id, voter, en.Sigs[i])
		}
	}
}

// ---------------------------------------------------------------------------
// The progress loop: evaluates every upon-clause of Algorithms 1 and 2 to a
// fixpoint, accumulating actions.

func (e *Engine) progress(now time.Time, acts []protocol.Action) []protocol.Action {
	for {
		changed := false
		e.recomputeUnlocks()
		if e.revalidate() {
			changed = true
		}
		if c, a := e.tryNotarize(acts); c {
			changed, acts = true, a
		}
		if c, a := e.tryPropose(now, acts); c {
			changed, acts = true, a
		}
		if c, a := e.tryOptimisticPropose(acts); c {
			changed, acts = true, a
		}
		if c, a := e.tryVote(now, acts); c {
			changed, acts = true, a
		}
		if c, a := e.tryFinalize(acts); c {
			changed, acts = true, a
		}
		if c, a := e.tryAdvance(now, acts); c {
			changed, acts = true, a
		}
		if c, a := e.tryJump(now, acts); c {
			changed, acts = true, a
		}
		if e.stopped {
			if e.fault != nil {
				acts = append(acts, protocol.SafetyFault{Err: e.fault})
				e.fault = nil
			}
			return acts
		}
		if !changed {
			break
		}
	}
	acts = e.scheduleNotarTimers(now, acts)
	acts = e.maybeSync(now, acts)
	if e.cfg.Dissem != nil {
		acts = e.tryDisseminate(acts)
		acts = e.flushDelivery(acts)
		acts = e.maybeBatchFetch(now, acts)
	}
	e.maybePrune()
	return acts
}

// noteFinalCert remembers the highest-round finalization certificate for
// the catch-up subprotocol and flags catch-up work when the certificate
// proves the cluster is ahead of this replica.
func (e *Engine) noteFinalCert(c *types.Certificate) {
	if e.latestFinal == nil || c.Round > e.latestFinal.Round {
		e.latestFinal = c
		if c.Round > e.round+1 {
			e.catchupDirty = true
		}
	}
}

// noteEpochHint records a finalization-kind certificate that failed
// epoch-pinned verification but still proves the chain finalized rounds
// beyond this replica's horizon: a replica that crashed (or partitioned)
// before a reconfiguration and comes back after it holds a stale validator
// set, so every certificate of the new epoch fails VerifyCertIn and the
// ordinary catch-up trigger (noteFinalCert) never fires. If at least f+1
// of the certificate's signatures are genuine, at least one honest replica
// finalized that round under a set this replica has not learned yet. The
// hint is never trusted for commit — it only aims the snapshot fetcher,
// and the snapshot response re-verifies the full epoch chain against the
// local history (VerifyExtends) before anything is adopted.
func (e *Engine) noteEpochHint(c *types.Certificate) {
	fin := e.tree.FinalizedRound()
	if c.Round <= fin+e.cfg.PruneKeep {
		return // near-window garbage, not epoch lag
	}
	if e.epochHint != nil && c.Round <= e.epochHint.Round {
		return
	}
	f := e.history.Current().Params().F
	if e.cfg.Verifier.VerifyCert(c, f+1) != nil {
		return
	}
	e.epochHint = c
	e.met.epochHints++
	e.catchupDirty = true
}

// tryJump fast-forwards a replica whose finalized prefix has caught up
// with (or passed) its current round — the exit from catch-up: the
// finalized block of round k is notarized and unlocked by definition, so
// entering round k+1 through it is exactly Restriction 2's condition. The
// skipped rounds need no votes from this replica; the rest of the cluster
// finalized them long ago.
func (e *Engine) tryJump(now time.Time, acts []protocol.Action) (bool, []protocol.Action) {
	fin := e.tree.FinalizedRound()
	if fin < e.round {
		return false, acts
	}
	finID, ok := e.tree.FinalizedAt(fin)
	if !ok {
		return false, acts
	}
	rs := e.getRound(fin)
	rs.advanced = true
	rs.advanceBlock = finID
	rs.advanceNotar = nil
	rs.advanceProof = nil
	acts = e.enterRound(fin+1, now, acts)
	return true, acts
}

// maybeSync drives the catch-up subprotocol: when a finalization
// certificate proves the cluster is ahead, try to commit through it and —
// while blocks are still missing — request the next contiguous chain
// segment, rate-limited to one request per 2Δ. Requests are unicast to a
// rotating peer (a broadcast would draw up to n−1 full-segment responses
// for one missing segment); a stalled request rotates to the next peer.
// The resend timer's periodic pull for possibly-missed finalizations
// (syncProbe) shares this path so it inherits the same rate limit and
// high-water-mark bookkeeping.
//
// When the stall is pinned at the first missing round — the prefix itself
// is unserveable because every peer has pruned past it (fresh join, disk
// loss, deep-pruned cluster) — suffix requests can never make progress;
// after StateSyncStalls consecutive prefix stalls the engine escalates to
// a snapshot fetch (beginFetch) and the suffix subprotocol stands down
// until the fetch resolves.
func (e *Engine) maybeSync(now time.Time, acts []protocol.Action) []protocol.Action {
	probe := e.syncProbe
	e.syncProbe = false
	if !e.catchupDirty && !probe {
		return acts
	}
	e.catchupDirty = false
	fin := e.tree.FinalizedRound()
	if e.epochHint != nil && e.epochHint.Round <= fin {
		e.epochHint = nil // caught up past the hinted round
	}
	behind := e.latestFinal != nil && e.latestFinal.Round > fin
	hinted := e.epochHint != nil
	if !behind && !probe && !hinted {
		return acts
	}
	if behind {
		// Try to commit through the certificate with what we have.
		var done bool
		acts, done = e.commitChain(e.latestFinal.Block, protocol.FinalizeIndirect, acts)
		if done {
			// Caught up: fast-forward the current round immediately.
			if c, a := e.tryJump(now, acts); c {
				acts = a
			}
			return acts
		}
	}
	if e.fetcher.Fetching() {
		// A snapshot fetch is in flight; it lands above anything a suffix
		// request could return. Stay dirty so sync resumes for the tail.
		if behind {
			e.catchupDirty = true
		}
		return acts
	}
	if hinted {
		// Suffix sync cannot cross an epoch boundary this replica has not
		// learned: segment blocks of the new epoch fail epoch-pinned
		// validation on arrival. Escalate straight to a snapshot fetch,
		// which carries the validator-set chain alongside the window.
		return e.beginFetch(now, acts)
	}
	if !e.lastSyncReq.IsZero() && now.Sub(e.lastSyncReq) < 2*e.cfg.Delta {
		if behind {
			e.catchupDirty = true // revisit after the rate-limit window
		}
		return acts
	}
	from := fin + 1
	if e.syncHigh >= from {
		from = e.syncHigh + 1
	}
	to := from + types.MaxSyncBlocks - 1
	if behind {
		if e.latestFinal.Round > to {
			to = e.latestFinal.Round // the serving peer caps per response
		}
		if from == e.lastSyncFrom {
			// No progress since the last request (lost response, a peer that
			// cannot serve the segment, or a poisoned syncHigh from a bogus
			// segment): rotate peers and retry; after repeated stalls restart
			// the fetch from the finalized prefix.
			e.syncStalls++
			e.syncPeers.Advance()
			if from == fin+1 {
				e.prefixStalls++
			}
			if e.syncStalls > 3 {
				e.syncHigh = fin
				e.syncStalls = 0
				from = fin + 1
			}
		} else {
			e.syncStalls = 0
			e.prefixStalls = 0
		}
		if e.cfg.StateSyncStalls > 0 && e.prefixStalls >= e.cfg.StateSyncStalls {
			e.prefixStalls = 0
			return e.beginFetch(now, acts)
		}
	}
	e.lastSyncReq = now
	e.lastSyncFrom = from
	return append(acts, protocol.Send{
		To:  e.syncPeers.Current(),
		Msg: &types.SyncRequest{From: from, To: to},
	})
}

// beginFetch escalates catch-up to a snapshot fetch: the highest known
// finalization certificate becomes the fetch target and a SnapshotRequest
// goes to the rotation's current peer, with a timer to rotate away from a
// silent one. While the fetch is in flight maybeSync sends no suffix
// requests.
func (e *Engine) beginFetch(now time.Time, acts []protocol.Action) []protocol.Action {
	e.fetcher.AddTarget(e.latestFinal)
	e.fetcher.AddTarget(e.epochHint)
	if !e.fetcher.Begin(now) {
		return acts
	}
	e.met.ssFetches++
	acts = append(acts, protocol.Send{
		To:  e.fetcher.Peer(),
		Msg: &types.SnapshotRequest{Have: e.tree.FinalizedRound()},
	})
	return append(acts, protocol.SetTimer{
		ID: protocol.TimerID{Kind: protocol.TimerStateSync},
		At: e.fetcher.Deadline(),
	})
}

// pollFetch handles a TimerStateSync fire: if the in-flight snapshot
// fetch has been overtaken by suffix sync it is completed silently;
// otherwise a request past its per-peer deadline is retried against the
// next peer in rotation.
func (e *Engine) pollFetch(now time.Time, acts []protocol.Action) []protocol.Action {
	if !e.fetcher.Fetching() {
		return acts
	}
	fin := e.tree.FinalizedRound()
	if fin >= e.fetcher.Target().Round {
		e.fetcher.Done(fin)
		return acts
	}
	rearm := protocol.SetTimer{
		ID: protocol.TimerID{Kind: protocol.TimerStateSync},
		At: e.fetcher.Deadline(),
	}
	if !e.fetcher.Expired(now) {
		return append(acts, rearm)
	}
	peer := e.fetcher.Retry(now)
	e.met.ssFetches++
	acts = append(acts, protocol.Send{To: peer, Msg: &types.SnapshotRequest{Have: fin}})
	rearm.At = e.fetcher.Deadline()
	return append(acts, rearm)
}

// onSnapshotRequest serves this replica's finalized window to a peer that
// cannot catch up via chain-suffix sync. The response is only useful — and
// only sent — when the window tip is strictly ahead of the requester and
// this replica holds a finalization certificate naming the tip exactly
// (the anchor the requester's trust gate demands).
func (e *Engine) onSnapshotRequest(from types.ReplicaID, m *types.SnapshotRequest) []protocol.Action {
	fin := e.tree.FinalizedRound()
	if fin < 1 || fin <= m.Have {
		return nil
	}
	if e.latestFinal == nil || e.latestFinal.Round != fin {
		return nil // mid-catch-up ourselves; cannot anchor our own tip
	}
	tipID, ok := e.tree.FinalizedAt(fin)
	if !ok || e.latestFinal.Block != tipID {
		return nil
	}
	// Walk tip-to-floor along parent links, like Snapshot(): contiguous by
	// construction.
	floor := types.Round(1)
	if fin > e.cfg.PruneKeep {
		floor = fin - e.cfg.PruneKeep + 1
	}
	var chain []*types.Block
	b, ok := e.tree.Block(tipID)
	for ok && b.Round >= floor && !b.IsGenesis() {
		chain = append(chain, b)
		b, ok = e.tree.Block(b.Parent)
	}
	if len(chain) == 0 {
		return nil
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	e.met.ssServed++
	return []protocol.Action{protocol.Send{To: from, Msg: &types.SnapshotResponse{
		Chain:        chain,
		Finalization: e.latestFinal,
		Sets:         e.history.Descs(),
	}}}
}

// onSnapshotResponse ingests a snapshot window. Nothing in the message is
// trusted until it passes the same quorum-certificate gate that guards
// WAL checkpoint restores (RestoreSnapshot): every block signature is
// verified, ranks must match the beacon, the chain must be contiguous,
// and the finalization certificate must carry a verified quorum naming
// the window tip exactly — tip-exact because a peer, unlike local disk,
// is an adversarial channel. A valid window is grafted onto the tree as
// finalized history (Tree.AdoptFinalized) and committed; the certificate
// then drives ordinary suffix sync for the tail.
func (e *Engine) onSnapshotResponse(m *types.SnapshotResponse) []protocol.Action {
	if !e.replaying && !e.fetcher.Fetching() {
		// Unsolicited: only a replica that escalated to a snapshot fetch
		// (or is replaying one from its WAL) ingests state this way.
		e.met.ssRejected++
		return nil
	}
	n := len(m.Chain)
	if n == 0 || n > types.MaxSnapshotBlocks || m.Finalization == nil {
		e.met.ssRejected++
		return nil
	}
	fin := e.tree.FinalizedRound()
	tip := m.Chain[n-1]
	if tip == nil {
		e.met.ssRejected++
		return nil
	}
	if tip.Round <= fin {
		// Stale: suffix sync or another snapshot got there first.
		e.fetcher.Done(fin)
		return nil
	}
	// The responder's claimed validator-set history: structurally a legal
	// chain of single add/remove steps, and an extension of the local
	// history (the replica's weak-subjectivity trust anchor — a response
	// rewriting a known epoch is rejected no matter its certificate).
	// Overlapping epochs are then swapped for the local sets so epoch 0
	// keeps its configured beacon schedule.
	sets, err := membership.VerifyChain(m.Sets)
	if err != nil || e.history.VerifyExtends(m.Sets) != nil {
		e.met.ssRejected++
		return nil
	}
	for i := range sets {
		if s := e.history.SetForEpoch(uint32(i)); s != nil {
			sets[i] = s
		}
	}
	setAt := func(r types.Round) *membership.ValidatorSet {
		for i := len(sets) - 1; i > 0; i-- {
			if sets[i].Activation() <= r {
				return sets[i]
			}
		}
		return sets[0]
	}
	for i, b := range m.Chain {
		if b == nil || b.Round < 1 {
			e.met.ssRejected++
			return nil
		}
		set := setAt(b.Round)
		if b.Epoch != set.Epoch() ||
			!set.Contains(b.Proposer) || b.Rank != set.RankOf(b.Round, b.Proposer) {
			e.met.ssRejected++
			return nil
		}
		if i > 0 && (b.Parent != m.Chain[i-1].ID() || b.Round <= m.Chain[i-1].Round) {
			e.met.ssRejected++
			return nil
		}
		if err := e.cfg.Verifier.VerifyBlock(b); err != nil {
			e.met.ssRejected++
			return nil
		}
	}
	c := m.Finalization
	tipSet := setAt(tip.Round)
	quorum, ok := finalizationQuorum(tipSet.Params(), c.Kind)
	if !ok || c.Round != tip.Round || c.Block != tip.ID() {
		e.met.ssRejected++
		return nil
	}
	if err := e.cfg.Verifier.VerifyCertIn(c, quorum, tipSet); err != nil {
		e.met.ssRejected++
		return nil
	}
	if err := e.history.Restore(m.Sets); err != nil {
		e.met.ssRejected++
		return nil
	}
	e.scrubNonMembers(e.history.Current())
	added, err := e.tree.AdoptFinalized(m.Chain)
	if err != nil {
		// A quorum-certified window contradicting our finalized prefix is
		// the protocol's fatal condition.
		e.stop(err)
		return nil
	}
	e.met.ssBytes += int64(m.WireSize())
	newFin := e.tree.FinalizedRound()
	rs := e.getRound(newFin)
	rs.finalized = true
	rs.finalizedBlock = tip.ID()
	var acts []protocol.Action
	if len(added) > 0 {
		e.met.indirectFinal++
		acts = e.deliver(added, protocol.FinalizeIndirect, acts)
	}
	// Pending commits at or below the adopted tip are obsolete: the window
	// is the canonical finalized history now, and anything it skipped is
	// below every peer's horizon (that is why the fetch escalated).
	for id := range e.pendingCommit {
		if b, ok := e.tree.Block(id); !ok || b.Round <= newFin {
			delete(e.pendingCommit, id)
		}
	}
	// Reset the suffix subprotocol's bookkeeping: it resumes above the
	// window for the tail between the snapshot and the live tip.
	e.syncHigh = newFin
	e.syncStalls = 0
	e.prefixStalls = 0
	e.lastSyncFrom = 0
	e.catchupDirty = true
	e.fetcher.Done(newFin)
	e.noteFinalCert(c)
	return acts
}

// onSyncRequest serves a catch-up request from this replica's finalized
// chain; blocks are capped per response and the requester iterates.
func (e *Engine) onSyncRequest(from types.ReplicaID, m *types.SyncRequest) []protocol.Action {
	start := m.From
	if start < 1 {
		start = 1
	}
	fin := e.tree.FinalizedRound()
	end := m.To
	if end > fin {
		end = fin
	}
	if max := start + types.MaxSyncBlocks - 1; end > max {
		end = max
	}
	if end < start {
		return nil
	}
	resp := &types.SyncResponse{Finalization: e.latestFinal}
	for r := start; r <= end; r++ {
		id, ok := e.tree.FinalizedAt(r)
		if !ok {
			break
		}
		b, ok := e.tree.Block(id)
		if !ok {
			break
		}
		resp.Blocks = append(resp.Blocks, b)
	}
	if len(resp.Blocks) == 0 {
		return nil
	}
	return []protocol.Action{protocol.Send{To: from, Msg: resp}}
}

// onSyncResponse ingests a catch-up segment: signed blocks whose parents
// connect to the local tree (contiguity keeps the sync high-water mark
// honest), then the certificate through the normal finalization path. The
// subsequent progress pass commits whatever now connects.
func (e *Engine) onSyncResponse(m *types.SyncResponse) {
	if len(m.Blocks) > types.MaxSyncBlocks {
		e.met.rejected++
		return
	}
	for _, b := range m.Blocks {
		if b == nil || b.Round < 1 || int(b.Proposer) >= e.cfg.Keyring.N() {
			e.met.rejected++
			continue
		}
		// Epoch and rank against the local history's set for the round.
		// Blocks from epochs this replica has not reached yet fail here and
		// are re-served once snapshot sync advances the history.
		set := e.setFor(b.Round)
		if b.Epoch != set.Epoch() || b.Rank != set.RankOf(b.Round, b.Proposer) {
			e.met.rejected++
			continue
		}
		if !e.tree.Contains(b.Parent) {
			break // segment no longer connects; drop the rest
		}
		if !e.tree.Contains(b.ID()) {
			if err := e.cfg.Verifier.VerifyBlock(b); err != nil {
				e.met.rejected++
				continue
			}
			e.tree.Add(b)
		}
		if b.Round > e.syncHigh {
			e.syncHigh = b.Round
		}
	}
	e.catchupDirty = true
	if m.Finalization != nil {
		e.onCert(m.Finalization)
	}
}

// getRound returns (creating lazily) the state for a round.
func (e *Engine) getRound(r types.Round) *roundState {
	rs, ok := e.rounds[r]
	if !ok {
		rs = newRoundState()
		e.rounds[r] = rs
	}
	return rs
}

// enterRound makes r the current round at time now (Restriction 2 /
// Algorithm 2 line 54) and schedules this replica's proposal delay.
func (e *Engine) enterRound(r types.Round, now time.Time, acts []protocol.Action) []protocol.Action {
	e.round = r
	rs := e.getRound(r)
	rs.started = true
	rs.t0 = now
	e.met.roundsStarted++
	if o := e.cfg.Obs; o != nil {
		o.Round.Set(int64(r))
	}
	rank := e.setFor(r).RankOf(r, e.cfg.Self)
	if rank > 0 && rank != types.NoRank {
		// Δ_prop(r_u) = 2Δ·r_u (Algorithm 1 line 23). The leader's delay is
		// zero; tryPropose handles it immediately.
		acts = append(acts, protocol.SetTimer{
			ID: protocol.TimerID{Round: r, Kind: protocol.TimerPropose, Rank: rank},
			At: now.Add(e.propDelay(rank)),
		})
	}
	// Liveness hardening: if this round is still open after every rank's
	// delay has expired, suspect message loss and start resending.
	acts = append(acts, protocol.SetTimer{
		ID: protocol.TimerID{Round: r, Kind: protocol.TimerResend},
		At: now.Add(e.resendInterval()),
	})
	return acts
}

func (e *Engine) propDelay(rank types.Rank) time.Duration {
	return 2 * e.cfg.Delta * time.Duration(rank)
}

// recomputeUnlocks refreshes the Definition 7.6 state of all live rounds,
// each under its own epoch's f+p threshold.
func (e *Engine) recomputeUnlocks() {
	if e.cfg.DisableFastPath {
		return
	}
	for r := e.tree.FinalizedRound(); r <= e.round; r++ {
		if rs, ok := e.rounds[r]; ok {
			rs.recomputeUnlock(e.setFor(r).Params().UnlockThreshold())
		}
	}
}

// revalidate retries pending proposals whose parent credentials may have
// arrived (Algorithm 2 line 62).
func (e *Engine) revalidate() bool {
	changed := false
	for r := e.tree.FinalizedRound(); r <= e.round+1; r++ {
		rs, ok := e.rounds[r]
		if !ok {
			continue
		}
		for id, p := range rs.pending {
			if !e.validBlock(rs, p.Block) {
				continue
			}
			rs.valid[id] = true
			delete(rs.pending, id)
			changed = true
		}
	}
	return changed
}

// validBlock implements valid(b) (Algorithm 2 line 62): b extends a
// notarized and unlocked round-(k-1) block, and a rank-0 block carries its
// proposer's fast vote. Signature and rank were verified at ingestion.
func (e *Engine) validBlock(rs *roundState, b *types.Block) bool {
	if b.Rank == 0 && !e.cfg.DisableFastPath {
		if _, ok := rs.fastVotes[b.ID()][b.Proposer]; !ok {
			return false
		}
	}
	return e.parentOK(b)
}

func (e *Engine) parentOK(b *types.Block) bool {
	if b.Round == 1 {
		return b.Parent == e.tree.Genesis().ID()
	}
	if e.tree.IsFinalized(b.Parent) {
		// Finalized: notarized and unlocked by definition — but only a
		// round-(k-1) parent is a legal extension point. A finalized parent
		// from an older round is a superseded fork point: voting for such a
		// block could notarize a chain that contradicts the finalized block
		// at round k-1 and halt the cluster with a safety fault.
		pb, ok := e.tree.Block(b.Parent)
		return ok && pb.Round == b.Round-1
	}
	if _, ok := e.tree.FinalizedAt(b.Round - 1); ok {
		// A round-(k-1) block is finalized locally and b does not extend
		// it: even if b's parent is notarized and unlocked, extending the
		// losing fork can only notarize a chain that contradicts finalized
		// history — and, when the finalized block carried a validator-set
		// change, under the wrong epoch.
		return false
	}
	prev, ok := e.rounds[b.Round-1]
	if !ok {
		return false
	}
	notarized := prev.notarizations[b.Parent] != nil || e.tree.IsNotarized(b.Parent)
	if !notarized {
		return false
	}
	if e.cfg.DisableFastPath {
		return true
	}
	return prev.isUnlocked(b.Parent)
}

// tryPropose implements Algorithm 1 line 23: propose once the proposal
// delay for this replica's rank has elapsed. In OptimisticProposals mode
// it is also where an in-flight optimistic proposal resolves: confirmed
// (adopted and fast-voted) when the certified parent matches the
// expected one, withdrawn otherwise.
func (e *Engine) tryPropose(now time.Time, acts []protocol.Action) (bool, []protocol.Action) {
	rs := e.getRound(e.round)
	if e.replaying || !rs.started {
		return false, acts
	}
	if e.opt != nil && e.opt.round < e.round {
		// The chain advanced past the optimistic target without this
		// replica proposing (catch-up jump): the never-fast-voted block is
		// inert everywhere; drop it.
		e.opt = nil
		e.met.optWithdrawn++
	}
	if rs.proposed || rs.advanced {
		return false, acts
	}
	set := e.setFor(e.round)
	rank := set.RankOf(e.round, e.cfg.Self)
	if rank == types.NoRank {
		// Observer: not a member of this round's epoch — nothing to propose.
		return false, acts
	}
	if now.Before(rs.t0.Add(e.propDelay(rank))) {
		return false, acts
	}
	parentID, parentNotar, parentProof := e.parentCreds(e.round)
	var payload types.Payload
	if opt := e.opt; opt != nil && opt.round == e.round {
		e.opt = nil
		if opt.parent == parentID {
			return true, e.confirmOptimistic(rs, opt, acts)
		}
		// Withdrawn: the round certified a different parent. Re-propose on
		// the real parent, reusing the optimistic payload — NextPayload
		// drains queued transactions, so drawing a fresh batch here would
		// lose the withdrawn one.
		e.met.optWithdrawn++
		payload = opt.block.Payload
	} else {
		payload = e.cfg.Payloads.NextPayload(e.round)
	}
	// A host-queued validator-set change rides this proposal, provided it
	// would actually apply to the round's set (a stale or inapplicable
	// change stays queued rather than burning its block). Wrapping is
	// skipped if the payload already carries one (withdrawn-optimistic
	// reuse can't hit this — optimistic proposals never carry changes).
	if e.cfg.Reconfig != nil && payload.Change == nil {
		if c := e.cfg.Reconfig.Pending(); c != nil {
			if _, err := set.Apply(c, e.round+1); err == nil {
				payload = types.ConfigChangePayload(*c, payload)
			}
		}
	}
	b := types.NewBlock(e.round, e.cfg.Self, rank, parentID, payload)
	b.Epoch = set.Epoch()
	if err := e.cfg.Signer.SignBlock(b); err != nil {
		// Impossible by construction (proposer == signer); treat as fatal.
		e.stop(fmt.Errorf("core: signing own block: %w", err))
		return true, acts
	}
	id := b.ID()
	rs.blocks[id] = b
	rs.valid[id] = true
	e.tree.Add(b)
	rs.proposed = true
	e.met.proposals++

	msg := &types.Proposal{
		Block:              b,
		ParentNotarization: parentNotar,
		ParentUnlock:       parentProof,
	}
	if rank == 0 && !e.cfg.DisableFastPath {
		// Addition 2: the leader's proposal carries its own fast vote.
		fv := e.cfg.Signer.SignVote(types.VoteFast, e.round, id)
		msg.FastVote = &fv
		rs.fastVoteSent = true
		addVote(rs.fastVotes, id, e.cfg.Self, fv.Signature)
	}
	return true, append(acts, protocol.Broadcast{Msg: msg})
}

// tryOptimisticPropose implements the Moonshot-style pipelining mode
// (Config.OptimisticProposals): when this replica holds rank 0 for the
// next round and the current round has exactly one rank-0 block, the next
// proposal's parent is overwhelmingly likely to be that block — so sign
// and broadcast the proposal now, overlapping the (large) block body's
// network transmission with the current round's quorum formation. The
// broadcast is deliberately inert: it carries no fast vote and no parent
// credentials, and validBlock requires the proposer's fast vote for a
// rank-0 block, so no replica can vote for it until tryPropose later
// confirms it. The leader's single per-round fast vote is thus the commit
// point, and safety reduces to the existing vote rules.
func (e *Engine) tryOptimisticPropose(acts []protocol.Action) (bool, []protocol.Action) {
	if !e.cfg.OptimisticProposals || e.replaying {
		return false, acts
	}
	next := e.round + 1
	if e.opt != nil && e.opt.round >= next {
		return false, acts
	}
	if e.setFor(next).RankOf(next, e.cfg.Self) != 0 {
		return false, acts
	}
	rs := e.getRound(e.round)
	if !rs.started || rs.advanced {
		return false, acts
	}
	if nrs, ok := e.rounds[next]; ok && nrs.proposed {
		return false, acts
	}
	// The expected parent is the current round's unique rank-0 block. Two
	// rank-0 blocks mean the round's leader equivocated — no safe guess.
	var parent *types.Block
	for _, b := range rs.blocks {
		if b.Rank != 0 {
			continue
		}
		if parent != nil {
			return false, acts
		}
		parent = b
	}
	if parent == nil {
		return false, acts
	}
	if parent.Payload.Change != nil {
		// The expected parent carries a validator-set change: if it
		// finalizes, round next belongs to the *next* epoch and this
		// replica's rank-0 guess (and the block's epoch stamp) would be
		// stale. Wait for tryPropose on the certified parent instead.
		return false, acts
	}
	payload := e.cfg.Payloads.NextPayload(next)
	b := types.NewBlock(next, e.cfg.Self, 0, parent.ID(), payload)
	b.Epoch = e.setFor(next).Epoch()
	if err := e.cfg.Signer.SignBlock(b); err != nil {
		e.stop(fmt.Errorf("core: signing optimistic block: %w", err))
		return true, acts
	}
	e.opt = &optimisticProposal{round: next, parent: parent.ID(), block: b}
	e.met.optProposed++
	return true, append(acts, protocol.Broadcast{Msg: &types.Proposal{Block: b}})
}

// confirmOptimistic adopts a pipelined proposal whose expected parent was
// certified: the already-broadcast block becomes this round's proposal,
// and the fast vote receivers have been waiting for goes out as a tiny
// VoteMsg — the block body is already on the wire, and receivers take the
// parent credentials from the Advance broadcast that accompanied leaving
// the previous round.
func (e *Engine) confirmOptimistic(rs *roundState, opt *optimisticProposal,
	acts []protocol.Action) []protocol.Action {
	b := opt.block
	id := b.ID()
	rs.blocks[id] = b
	rs.valid[id] = true
	e.tree.Add(b)
	rs.proposed = true
	e.met.proposals++
	e.met.optConfirmed++
	fv := e.cfg.Signer.SignVote(types.VoteFast, e.round, id)
	rs.fastVoteSent = true
	addVote(rs.fastVotes, id, e.cfg.Self, fv.Signature)
	return append(acts, protocol.Broadcast{Msg: &types.VoteMsg{Votes: []types.Vote{fv}}})
}

// parentCreds returns the parent this replica extends in round r, plus the
// credentials to ship with the proposal (Addition 2).
func (e *Engine) parentCreds(r types.Round) (types.BlockID, *types.Certificate, *types.UnlockProof) {
	if r == 1 {
		return e.tree.Genesis().ID(), nil, nil
	}
	prev := e.getRound(r - 1)
	return prev.advanceBlock, prev.advanceNotar, prev.advanceProof
}

// tryVote implements Algorithm 1 line 33: once the notarization delay of
// the lowest-ranked valid block has elapsed, vote for every such block not
// yet in N, bundle a fast vote with the first (Addition 3), and relay
// blocks proposed by others (line 35).
func (e *Engine) tryVote(now time.Time, acts []protocol.Action) (bool, []protocol.Action) {
	rs := e.getRound(e.round)
	if e.replaying || !rs.started || rs.advanced {
		return false, acts
	}
	myRank := e.setFor(e.round).RankOf(e.round, e.cfg.Self)
	if myRank == types.NoRank {
		// Observer: non-members cast no votes; they follow the round via
		// certificates and finalizations alone.
		return false, acts
	}
	// Lowest rank among valid blocks: the "∄ valid block of lower rank"
	// condition restricts voting to that rank.
	minRank, found := types.Rank(0), false
	for id := range rs.valid {
		b := rs.blocks[id]
		if !found || b.Rank < minRank {
			minRank, found = b.Rank, true
		}
	}
	if !found || now.Before(rs.t0.Add(e.propDelay(minRank))) {
		return false, acts
	}
	changed := false
	for id := range rs.valid {
		b := rs.blocks[id]
		if b.Rank != minRank || rs.notarVoted[id] {
			continue
		}
		rs.notarVoted[id] = true
		changed = true
		if b.Rank != myRank && !e.cfg.DisableForwarding {
			// Line 35: relay the block with its parent's credentials so
			// replicas that missed the original broadcast catch up.
			acts = append(acts, protocol.Broadcast{Msg: e.relayProposal(b)})
			e.met.relays++
		}
		nv := e.cfg.Signer.SignVote(types.VoteNotarize, e.round, id)
		votes := []types.Vote{nv}
		addVote(rs.notarVotes, id, e.cfg.Self, nv.Signature)
		if !rs.fastVoteSent && !e.cfg.DisableFastPath {
			// Addition 3 / line 39: first notarization vote of the round
			// carries the fast vote.
			fv := e.cfg.Signer.SignVote(types.VoteFast, e.round, id)
			votes = append(votes, fv)
			rs.fastVoteSent = true
			addVote(rs.fastVotes, id, e.cfg.Self, fv.Signature)
		}
		e.met.votesSent++
		if o := e.cfg.Obs; o != nil {
			o.Tracer.Mark(e.round, id, obs.StageVoteSent, now)
		}
		acts = append(acts, protocol.Broadcast{Msg: &types.VoteMsg{Votes: votes}})
	}
	return changed, acts
}

// relayProposal rebuilds a Proposal message for a block this replica is
// about to vote for, with the best parent credentials it holds. For
// rank-0 blocks the relay also carries the proposer's fast vote when
// this replica holds it: validity requires that vote (Addition 2), and
// without it a replica the original broadcast missed — dropped
// optimistic confirmation, or an equivocating leader sending each twin
// to only half the cluster — could never validate the block, splitting
// the cluster below the notarization quorum.
func (e *Engine) relayProposal(b *types.Block) *types.Proposal {
	p := &types.Proposal{Block: b, Relayed: true}
	if b.Rank == 0 {
		if sig, ok := e.getRound(b.Round).fastVotes[b.ID()][b.Proposer]; ok {
			p.FastVote = &types.Vote{
				Kind: types.VoteFast, Round: b.Round, Block: b.ID(),
				Voter: b.Proposer, Signature: sig,
			}
		}
	}
	if b.Round > 1 && !e.tree.IsFinalized(b.Parent) {
		prev := e.getRound(b.Round - 1)
		p.ParentNotarization = prev.notarizations[b.Parent]
		if !e.cfg.DisableFastPath {
			if prev.advanceBlock == b.Parent && prev.advanceProof != nil {
				p.ParentUnlock = prev.advanceProof
			} else {
				p.ParentUnlock = prev.buildUnlockProof(b.Round-1, b.Parent,
					e.setFor(b.Round-1).Params().UnlockThreshold())
			}
		}
	}
	return p
}

// tryNotarize implements Algorithm 2 line 45: combine a quorum of
// notarization votes into a notarization certificate, each round under
// its own epoch's quorum.
func (e *Engine) tryNotarize(acts []protocol.Action) (bool, []protocol.Action) {
	changed := false
	for r := e.tree.FinalizedRound(); r <= e.round; r++ {
		rs, ok := e.rounds[r]
		if !ok {
			continue
		}
		quorum := e.setFor(r).Params().NotarizationQuorum()
		for id, votes := range rs.notarVotes {
			if len(votes) < quorum || rs.notarizations[id] != nil {
				continue
			}
			cert, err := types.NewCertificate(types.CertNotarization, r, id,
				votesFor(types.VoteNotarize, r, id, votes))
			if err != nil {
				continue
			}
			rs.notarizations[id] = cert
			e.tree.MarkNotarized(id)
			if o := e.cfg.Obs; o != nil && !e.replaying {
				o.Tracer.Mark(r, id, obs.StageNotarized, e.now)
			}
			changed = true
		}
	}
	return changed, acts
}

// tryFinalize implements Algorithm 2 line 56: explicit finalization by
// finalization-vote quorum (SP), by n-p fast votes for a valid rank-0
// block (FP, Addition 4), or by a certificate received from a peer.
func (e *Engine) tryFinalize(acts []protocol.Action) (bool, []protocol.Action) {
	changed := false
	for r := e.tree.FinalizedRound() + 1; r <= e.round; r++ {
		rs, ok := e.rounds[r]
		if !ok {
			continue
		}
		if rs.finalized {
			continue
		}
		params := e.setFor(r).Params()
		// Received certificate for a round at or below our own.
		if cert := e.extFinal[r]; cert != nil {
			changed = true
			acts = e.finalizeExplicit(rs, cert, protocol.FinalizeIndirect, acts)
			continue
		}
		// FP-finalization: n-p fast votes for a valid rank-0 block.
		if !e.cfg.DisableFastPath {
			if id, votes, ok := rs.fastQuorumBlock(params.FastQuorum()); ok && rs.valid[id] {
				cert, err := types.NewCertificate(types.CertFastFinalization, r, id,
					votesFor(types.VoteFast, r, id, votes))
				if err == nil {
					changed = true
					acts = e.finalizeExplicit(rs, cert, protocol.FinalizeFast, acts)
					continue
				}
			}
		}
		// SP-finalization: quorum of finalization votes.
		for id, votes := range rs.finalVotes {
			if len(votes) < params.FinalizationQuorum() {
				continue
			}
			cert, err := types.NewCertificate(types.CertFinalization, r, id,
				votesFor(types.VoteFinalize, r, id, votes))
			if err != nil {
				continue
			}
			changed = true
			acts = e.finalizeExplicit(rs, cert, protocol.FinalizeSlow, acts)
			break
		}
	}
	// Retry commits blocked on missing ancestors.
	for id, mode := range e.pendingCommit {
		var done bool
		acts, done = e.commitChain(id, mode, acts)
		if done {
			delete(e.pendingCommit, id)
			changed = true
		}
	}
	return changed, acts
}

// fastQuorumBlock finds a received rank-0 block holding at least quorum
// fast votes.
func (rs *roundState) fastQuorumBlock(quorum int) (types.BlockID, map[types.ReplicaID][]byte, bool) {
	for id, votes := range rs.fastVotes {
		if len(votes) < quorum {
			continue
		}
		if b, ok := rs.blocks[id]; ok && b.Rank == 0 {
			return id, votes, true
		}
	}
	return types.BlockID{}, nil, false
}

// finalizeExplicit records an explicit finalization, broadcasts the
// certificate if this replica formed it (line 58), and commits the chain.
func (e *Engine) finalizeExplicit(rs *roundState, cert *types.Certificate,
	mode protocol.FinalizationMode, acts []protocol.Action) []protocol.Action {
	rs.finalized = true
	rs.finalizedBlock = cert.Block
	e.noteFinalCert(cert)
	if o := e.cfg.Obs; o != nil && !e.replaying {
		if mode == protocol.FinalizeFast {
			o.Tracer.Mark(cert.Round, cert.Block, obs.StageFastCertified, e.now)
		}
		// Commit latency is measured from round entry (rs.t0) to the
		// finalization becoming known here, in the engine's clock domain.
		// Rounds this replica never entered (catch-up, replayed history)
		// carry no t0 and are skipped.
		if rs.started && !rs.t0.IsZero() {
			o.ObserveCommit(cert.Round, cert.Block, e.now.Sub(rs.t0), e.now)
		}
	}
	switch mode {
	case protocol.FinalizeFast:
		e.met.fastFinal++
		acts = append(acts, protocol.Broadcast{Msg: &types.CertMsg{Cert: cert}})
	case protocol.FinalizeSlow:
		e.met.slowFinal++
		acts = append(acts, protocol.Broadcast{Msg: &types.CertMsg{Cert: cert}})
	default:
		e.met.indirectFinal++
	}
	acts, done := e.commitChain(cert.Block, mode, acts)
	if !done {
		e.pendingCommit[cert.Block] = mode
	}
	return acts
}

// commitChain applies a finalization to the block tree, emitting a Commit
// for the newly finalized chain. done is false while ancestors are missing.
func (e *Engine) commitChain(id types.BlockID, mode protocol.FinalizationMode,
	acts []protocol.Action) ([]protocol.Action, bool) {
	chain, err := e.tree.Finalize(id)
	switch {
	case err == nil:
		if len(chain) > 0 {
			e.applyChanges(chain)
			acts = e.deliver(chain, mode, acts)
		}
		return acts, true
	case isMissingAncestor(err):
		return acts, false
	default:
		e.stop(err)
		return acts, true
	}
}

func isMissingAncestor(err error) bool {
	return errors.Is(err, blocktree.ErrMissingAncestor)
}

// applyChanges walks a newly finalized chain (oldest first) and applies
// any validator-set changes it carries: the history grows by one epoch
// per applicable change, activation the change round + 1; a joiner's key
// is registered with the identity registry (idempotent when the host
// pre-provisioned it); and vote ledgers of rounds the new set governs are
// scrubbed of non-member votes — buffered future-round votes from a
// just-removed validator must not survive into its post-removal epochs.
// An inapplicable change is a deterministic no-op (every honest replica
// evaluates the same finalized change against the same history). Either
// way the host's Reconfigurator slot is notified so a queued change that
// just finalized — whoever proposed it — stops being re-proposed.
func (e *Engine) applyChanges(chain []*types.Block) {
	for _, b := range chain {
		c := b.Payload.Change
		if c == nil {
			continue
		}
		if next, ok := e.history.Apply(c, b.Round); ok {
			if c.Op == types.ConfigAdd {
				// Best-effort: a registry that already knows the ID under a
				// different key rejects the re-key, and the joiner's
				// signatures simply fail verification.
				_ = e.cfg.Keyring.SetKey(c.Replica, c.PubKey)
			}
			e.scrubNonMembers(next)
			e.met.epochChanges++
			if o := e.cfg.Obs; o != nil {
				o.Epoch.Set(int64(next.Epoch()))
			}
		}
		if e.cfg.Reconfig != nil {
			e.cfg.Reconfig.Observe(c)
		}
	}
}

// scrubNonMembers drops buffered votes, and certificates formed from
// them, cast by replicas outside the given set from every live round the
// set governs. Unlock state is recomputed from the scrubbed ledgers on
// the next progress pass.
func (e *Engine) scrubNonMembers(set *membership.ValidatorSet) {
	quorum := set.Params().NotarizationQuorum()
	for r, rs := range e.rounds {
		if r < set.Activation() {
			continue
		}
		rs.scrubNonMembers(set, quorum)
	}
}

// tryAdvance implements Algorithm 2 line 48 (Restriction 2, Additions 1):
// once a notarized and unlocked block exists and the fast vote is out,
// broadcast the notarization and unlock proof, send a finalization vote if
// N ⊆ {b} (line 51), and enter the next round.
func (e *Engine) tryAdvance(now time.Time, acts []protocol.Action) (bool, []protocol.Action) {
	rs := e.getRound(e.round)
	if !rs.started {
		return false, acts
	}
	if rs.advanced {
		// A round held at the epoch-activation barrier completes its
		// advance once the round finalizes; the set for round+1 is settled
		// by then (applyChanges ran, or the change lost to a competing
		// block).
		if rs.barrier && rs.finalized {
			rs.barrier = false
			if rs.finalizedBlock != rs.advanceBlock {
				// A competing block finalized instead of the change block we
				// left through: re-anchor the exit on it (finalized parents
				// need no credentials).
				rs.advanceBlock = rs.finalizedBlock
				rs.advanceNotar = nil
				rs.advanceProof = nil
			}
			return true, e.enterRound(e.round+1, now, acts)
		}
		return false, acts
	}
	// Observers (non-members of the round's epoch) never cast a fast vote;
	// they leave the round on certificates alone.
	member := e.setFor(e.round).Contains(e.cfg.Self)
	if member && !rs.fastVoteSent && !e.cfg.DisableFastPath {
		return false, acts
	}
	id, ok := e.advanceCandidate(rs)
	if !ok {
		return false, acts
	}
	round := e.round
	notar := rs.notarizations[id]
	var proof *types.UnlockProof
	if !e.cfg.DisableFastPath {
		proof = rs.buildUnlockProof(round, id, e.setFor(round).Params().UnlockThreshold())
	}
	rs.advanced = true
	rs.advanceBlock = id
	rs.advanceNotar = notar
	rs.advanceProof = proof
	e.met.advances++
	acts = append(acts, protocol.Broadcast{Msg: &types.Advance{Notarization: notar, Unlock: proof}})

	// Line 51: finalization vote if this replica notarization-voted for no
	// other block. Suppressed during WAL replay (a new signature); the
	// journaled vote, if one was cast, restores finalVoted instead.
	if member && !e.replaying && !rs.finalVoted && nSubsetOf(rs.notarVoted, id) {
		fv := e.cfg.Signer.SignVote(types.VoteFinalize, round, id)
		rs.finalVoted = true
		addVote(rs.finalVotes, id, e.cfg.Self, fv.Signature)
		e.met.votesSent++
		acts = append(acts, protocol.Broadcast{Msg: &types.VoteMsg{Votes: []types.Vote{fv}}})
	}
	// Activation barrier: leaving a round through a ConfigChange block is
	// deferred until the round finalizes — entering round+1 earlier would
	// guess the next epoch. The Advance broadcast and finalization vote
	// above still go out (they are what *forms* the finalization), and
	// resends keep retrying while the barrier holds.
	if b, known := rs.blocks[id]; known && b.Payload.Change != nil &&
		!(rs.finalized && rs.finalizedBlock == id) {
		rs.barrier = true
		return true, acts
	}
	acts = e.enterRound(round+1, now, acts)
	return true, acts
}

// advanceCandidate picks a notarized and unlocked block to leave the round
// through: the finalized block if any, otherwise the lowest-rank notarized
// and unlocked block (ties to smaller ID for determinism).
func (e *Engine) advanceCandidate(rs *roundState) (types.BlockID, bool) {
	if rs.finalized {
		if rs.notarizations[rs.finalizedBlock] != nil {
			return rs.finalizedBlock, true
		}
	}
	var (
		best  types.BlockID
		bestR types.Rank
		found bool
	)
	for id := range rs.notarizations {
		if !e.cfg.DisableFastPath && !rs.isUnlocked(id) {
			continue
		}
		b, ok := rs.blocks[id]
		if !ok {
			// Certificate for a block we have not received: it is notarized
			// but we cannot know its rank; it is still a legitimate way out
			// of the round if unlocked.
			if !found {
				best, bestR, found = id, types.Rank(^uint16(0)), true
			}
			continue
		}
		if !found || b.Rank < bestR || (b.Rank == bestR && lessBlockID(id, best)) {
			best, bestR, found = id, b.Rank, true
		}
	}
	return best, found
}

// nSubsetOf reports N ⊆ {b}.
func nSubsetOf(n map[types.BlockID]bool, b types.BlockID) bool {
	for id := range n {
		if id != b {
			return false
		}
	}
	return true
}

// scheduleNotarTimers requests wake-ups at the notarization delays of
// received blocks whose delay has not yet elapsed (Algorithm 1 line 33's
// clock condition).
func (e *Engine) scheduleNotarTimers(now time.Time, acts []protocol.Action) []protocol.Action {
	rs := e.getRound(e.round)
	if !rs.started || rs.advanced {
		return acts
	}
	for id := range rs.blocks {
		b := rs.blocks[id]
		if rs.notarTimerSet[b.Rank] {
			continue
		}
		rs.notarTimerSet[b.Rank] = true
		at := rs.t0.Add(e.propDelay(b.Rank))
		if !now.Before(at) {
			continue // already elapsed; tryVote ran in this progress pass
		}
		acts = append(acts, protocol.SetTimer{
			ID: protocol.TimerID{Round: e.round, Kind: protocol.TimerNotarize, Rank: b.Rank},
			At: at,
		})
	}
	return acts
}

func (e *Engine) stop(err error) {
	if !e.stopped {
		e.stopped = true
		e.fault = err
	}
}

// maybePrune drops state for rounds far below the finalized height.
func (e *Engine) maybePrune() {
	fin := e.tree.FinalizedRound()
	if fin < e.lastPrune+e.cfg.PruneInterval {
		return
	}
	e.lastPrune = fin
	if fin <= e.cfg.PruneKeep {
		return
	}
	floor := fin - e.cfg.PruneKeep
	if e.cfg.Dissem != nil {
		e.cfg.Dissem.Compact(floor)
		e.dropStaleDeliveries(floor)
	}
	for r := range e.rounds {
		if r < floor {
			delete(e.rounds, r)
		}
	}
	for r := range e.extFinal {
		if r < floor {
			delete(e.extFinal, r)
		}
	}
	if e.cfg.DeepPrune {
		e.tree.PruneDeep(floor)
	} else {
		e.tree.Prune(floor)
	}
}
