// Package core implements the Banyan consensus engine — the paper's
// primary contribution (sections 6–8, Algorithms 1 and 2).
//
// Banyan extends the Internet Computer Consensus protocol with an
// integrated fast path: alongside its first notarization vote of a round,
// every replica broadcasts a *fast vote*; a rank-0 block that collects
// n−p fast votes is FP-finalized after a single round trip (Addition 4),
// while the unmodified ICC slow path (notarization, then finalization
// votes) runs concurrently and finalizes in three steps whenever the fast
// path does not fire. Safety of the combination rests on the *unlock* rule
// (Definition 7.6): blocks may only be extended — or voted for — once
// enough fast votes prove that no conflicting block can have been
// FP-finalized.
//
// The engine is a deterministic state machine per the protocol package
// contract; all Algorithm 1/2 line references appear next to the code that
// implements them.
package core

import (
	"errors"
	"fmt"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/crypto"
	"banyan/internal/dissem"
	"banyan/internal/membership"
	"banyan/internal/obs"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Config assembles everything a Banyan engine instance needs.
type Config struct {
	// Params are the fault-model parameters (n, f, p) of the *genesis*
	// validator set. They must satisfy n >= max(3f+2p-1, 3f+1), p in [1, f].
	// Reconfiguration carries f and p forward unchanged; n tracks the
	// epoch's member count.
	Params types.Params
	// Self is this replica's ID.
	Self types.ReplicaID
	// Keyring is the identity registry: every replica's public key, keyed
	// by ID. It may hold more keys than the genesis set has members —
	// hosts that plan to add validators at runtime pre-register the keys
	// of every identity the deployment may ever admit, so joiners can
	// speak (state sync, batch fetch) before their first epoch as voters.
	Keyring *crypto.Keyring
	// History is the epoch sequence this engine consults for quorums,
	// leader schedules, and certificate verification. Nil builds a
	// single-epoch history from Params, Keyring, and Beacon: members
	// 0..n-1, which is the pre-reconfiguration behaviour.
	History *membership.History
	// Reconfig, when set, is the host's hand-off slot for validator-set
	// changes: the engine attaches the pending change to its next
	// proposal and clears the slot when it observes the change finalized.
	Reconfig *membership.Reconfigurator
	// Verifier is the batched, cached signature-verification pipeline the
	// engine routes all VerifyVote/VerifyCert/VerifyUnlockProof/VerifyBlock
	// checks through. Nil builds one over Keyring from VerifyOptions.
	// Hosts that preverify inbound messages (internal/node's
	// verify-then-deliver stage) must pass the same Verifier here and to
	// the node so the engine sees the warmed cache.
	Verifier *crypto.Verifier
	// VerifyOptions tunes the Verifier built when the field above is nil:
	// worker-pool size and verified-signature cache capacity.
	VerifyOptions crypto.VerifyConfig
	// Signer signs this replica's blocks and votes.
	Signer *crypto.Signer
	// Beacon supplies the per-round leader permutations.
	Beacon beacon.Beacon
	// Payloads supplies block payloads when this replica proposes.
	Payloads protocol.PayloadSource
	// Delta is the message-delay bound Δ. Proposal and notarization delays
	// are Δ_prop(r) = Δ_notary(r) = 2Δ·r (paper section 4). Deployments set
	// it above the delay observed without disruptions (section 9.2).
	Delta time.Duration
	// DisableFastPath turns off fast votes and the unlock machinery,
	// reducing the engine to ICC behaviour with Banyan quorums. Used by the
	// fast-path ablation benchmarks.
	DisableFastPath bool
	// DisableForwarding turns off the tip-forwarding relay of Algorithm 1
	// line 35 (the Bamboo fix of paper section 9.1). Used by the
	// forwarding ablation benchmark.
	DisableForwarding bool
	// OptimisticProposals enables Moonshot-style proposal pipelining: when
	// this replica holds rank 0 for the next round, it signs and broadcasts
	// its proposal on the *expected* parent (the current round's unique
	// rank-0 block) as soon as that block arrives, instead of waiting for
	// the round's certificate. The optimistic broadcast carries no fast
	// vote and no parent credentials, so no replica can vote for it until
	// the leader confirms it with its (single, per-round) fast vote; if the
	// certified parent differs, the proposal is withdrawn — never
	// fast-voted, hence permanently invalid everywhere — and the leader
	// proposes on the real parent. Requires the fast path: the rank-0
	// validity rule (proposer fast vote present) is what keeps a withdrawn
	// proposal inert. The knob must be kept stable across restarts of a
	// WAL-backed replica, as replay classifies journaled proposals with it.
	OptimisticProposals bool
	// PruneInterval controls how often (in rounds) old state is discarded.
	// Zero selects the default.
	PruneInterval types.Round
	// PruneKeep is how many rounds below the finalized height are retained.
	// Zero selects the default.
	PruneKeep types.Round
	// DeepPrune additionally evicts finalized block bodies below the prune
	// floor (Tree.PruneDeep), bounding memory by the window size instead of
	// chain length. A deep-pruned replica cannot serve chain-suffix sync
	// below its window; peers that far behind recover via snapshot state
	// sync, which this option therefore depends on for cluster liveness.
	DeepPrune bool
	// StateSyncStalls is how many consecutive sync stalls on the first
	// missing round (an unserveable prefix: no peer holds it) escalate to a
	// snapshot fetch. Zero selects the default; negative disables
	// escalation, leaving only chain-suffix sync.
	StateSyncStalls int
	// StateSyncTimeout is the per-peer silence budget of a snapshot fetch
	// before the fetcher rotates to the next peer. Zero selects 8Δ.
	StateSyncTimeout time.Duration
	// Dissem, when set, decouples payload dissemination from ordering: the
	// store becomes the engine's PayloadSource (proposals commit batch
	// digests instead of bytes; Payloads is overridden), batch bodies are
	// broadcast off the consensus path as BatchAnnounce messages, and
	// *delivery* of finalized blocks — never voting or finalization — is
	// gated on body availability, with fetch-on-miss against the block's
	// proposer. The same store instance must be shared with the host, which
	// resolves committed digest lists back to transaction bytes.
	Dissem *dissem.Store
	// BatchFetchTimeout is the per-peer silence budget of a batch-body
	// fetch before the fetcher rotates to the next peer. Zero selects 4Δ.
	BatchFetchTimeout time.Duration
	// Obs, when set, is the replica's observability bundle: the engine
	// records commit-latency/delivery-wait/verify histograms, lifecycle
	// trace events, round/epoch gauges, and feeds the slow-round
	// detector. Nil (the default) keeps every hot path free of
	// observability work behind a single branch.
	Obs *obs.Observer
}

const (
	defaultPruneInterval   = 64
	defaultPruneKeep       = 16
	defaultStateSyncStalls = 3
)

func (c *Config) validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Params.P < 1 && !c.DisableFastPath {
		return fmt.Errorf("core: fast path requires p >= 1, got %d", c.Params.P)
	}
	if c.OptimisticProposals && c.DisableFastPath {
		return errors.New("core: OptimisticProposals requires the fast path " +
			"(withdrawn proposals stay inert only under the rank-0 fast-vote validity rule)")
	}
	if c.Keyring == nil || c.Signer == nil {
		return errors.New("core: keyring and signer are required")
	}
	if c.Beacon == nil {
		return errors.New("core: beacon is required")
	}
	if c.Beacon.N() != c.Params.N {
		return fmt.Errorf("core: beacon permutes %d replicas, params say %d", c.Beacon.N(), c.Params.N)
	}
	if c.Keyring.N() < c.Params.N {
		return fmt.Errorf("core: keyring holds %d keys, genesis set needs %d", c.Keyring.N(), c.Params.N)
	}
	if int(c.Self) >= c.Keyring.N() {
		return fmt.Errorf("core: self id %d not in the key registry (%d identities)", c.Self, c.Keyring.N())
	}
	if c.Delta <= 0 {
		return errors.New("core: Delta must be positive")
	}
	if c.History == nil {
		members := make([]types.ReplicaID, c.Params.N)
		keys := make([][]byte, c.Params.N)
		for i := range members {
			members[i] = types.ReplicaID(i)
			keys[i] = c.Keyring.PublicKey(types.ReplicaID(i))
		}
		genesis, err := membership.New(0, 0, members, keys, c.Params.F, c.Params.P, c.Beacon)
		if err != nil {
			return fmt.Errorf("core: building genesis validator set: %w", err)
		}
		c.History, err = membership.NewHistory(genesis)
		if err != nil {
			return err
		}
	}
	if g := c.History.Genesis(); g.Size() != c.Params.N || g.Params() != c.Params {
		return fmt.Errorf("core: genesis set %v disagrees with params %v", g.Params(), c.Params)
	}
	if c.Verifier == nil {
		c.Verifier = crypto.NewVerifier(c.Keyring, c.VerifyOptions)
	}
	if c.Payloads == nil {
		c.Payloads = protocol.EmptyPayloads
	}
	if c.Dissem != nil {
		c.Payloads = c.Dissem
	}
	if c.BatchFetchTimeout == 0 {
		c.BatchFetchTimeout = 4 * c.Delta
	}
	if c.PruneInterval == 0 {
		c.PruneInterval = defaultPruneInterval
	}
	if c.PruneKeep == 0 {
		c.PruneKeep = defaultPruneKeep
	}
	if c.StateSyncStalls == 0 {
		c.StateSyncStalls = defaultStateSyncStalls
	}
	if c.StateSyncTimeout == 0 {
		c.StateSyncTimeout = 8 * c.Delta
	}
	return nil
}
