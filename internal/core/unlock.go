package core

import (
	"banyan/internal/types"
)

// This file implements the unlock machinery of Definitions 7.1–7.7: the
// support-set computations over received fast votes, the two unlock
// conditions, and the construction of transferable unlock proofs.

// recomputeUnlock re-evaluates Definition 7.6 for a round from its current
// fast votes and received blocks. Support sets only grow, so unlock flags
// are monotone and never cleared. threshold is f + p.
//
// Only votes for *received* blocks participate: Definition 7.1 defines
// supp over blocks(k), and a vote for an unknown ID has an unknown rank.
// Votes are retained, so they are reconsidered as soon as the block shows
// up.
func (rs *roundState) recomputeUnlock(threshold int) {
	if rs.allUnlocked {
		return
	}

	// supp(nonLeaderBlocks(k)): distinct voters over received rank!=0 blocks.
	nonLeader := make(map[types.ReplicaID]bool)
	for id, votes := range rs.fastVotes {
		b, ok := rs.blocks[id]
		if !ok || b.Rank == 0 {
			continue
		}
		for voter := range votes {
			nonLeader[voter] = true
		}
	}

	// Condition 1, rank!=0 blocks: supp(b) is a subset of
	// supp(nonLeaderBlocks), so the union is just supp(nonLeaderBlocks) and
	// all of them unlock together.
	if len(nonLeader) > threshold {
		for id, b := range rs.blocks {
			if b.Rank != 0 {
				rs.unlocked[id] = true
			}
		}
	}

	// Condition 1, rank-0 blocks: |supp(b) ∪ supp(nonLeaderBlocks)| > f+p.
	for id, b := range rs.blocks {
		if b.Rank != 0 || rs.unlocked[id] {
			continue
		}
		union := len(nonLeader)
		for voter := range rs.fastVotes[id] {
			if !nonLeader[voter] {
				union++
			}
		}
		if union > threshold {
			rs.unlocked[id] = true
		}
	}

	// Condition 2: |supp(nonMaxBlocks(k))| > f+p unlocks everything.
	// Definition 7.2's max(k) is evaluated under the strict semantics of
	// types.UnlockProof.cond2Support — the bound must hold for *every*
	// candidate max (see the soundness discussion there): an adversary
	// feeding this replica a partial view of an FP-finalized block's votes
	// must not be able to trip Condition 2.
	if rs.cond2StrictSupport() > threshold {
		rs.allUnlocked = true
	}
}

// cond2StrictSupport returns the minimum, over every choice of excluded
// rank-0 block m (including no exclusion), of the distinct-voter count
// across fast votes for received blocks other than m.
func (rs *roundState) cond2StrictSupport() int {
	support := func(skip types.BlockID, useSkip bool) int {
		voters := make(map[types.ReplicaID]bool)
		for id, votes := range rs.fastVotes {
			if useSkip && id == skip {
				continue
			}
			if _, known := rs.blocks[id]; !known {
				continue
			}
			for voter := range votes {
				voters[voter] = true
			}
		}
		return len(voters)
	}
	min := support(types.BlockID{}, false)
	for id, b := range rs.blocks {
		if b.Rank != 0 {
			continue
		}
		if s := support(id, true); s < min {
			min = s
		}
	}
	return min
}

func lessBlockID(a, b types.BlockID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// buildUnlockProof assembles a transferable proof (Definition 7.7) that
// `block` is unlocked in this round, from locally held fast votes. It
// prefers a Condition-1 proof (votes for the block itself plus votes for
// non-leader blocks) and falls back to a Condition-2 "all unlocked" proof.
// Returns nil if the local votes cannot establish either condition — the
// caller then relies on the block being finalized (unlocked by definition).
func (rs *roundState) buildUnlockProof(round types.Round, block types.BlockID, threshold int) *types.UnlockProof {
	// Condition 1 entries: the block itself + every received non-leader
	// block with votes.
	proof := &types.UnlockProof{Round: round, Block: block}
	for id, b := range rs.blocks {
		if id != block && b.Rank == 0 {
			continue
		}
		if e, ok := rs.voteEntry(id); ok {
			proof.Entries = append(proof.Entries, e)
		}
	}
	sortEntries(proof.Entries)
	if proof.Evaluate(threshold) {
		return proof
	}

	// Condition 2: include every received block's votes — the strict
	// verifier (types.UnlockProof.cond2Support) re-derives the minimum
	// over candidate max blocks itself, and more entries only help.
	all := &types.UnlockProof{Round: round, Block: block, All: true}
	for id := range rs.blocks {
		if e, ok := rs.voteEntry(id); ok {
			all.Entries = append(all.Entries, e)
		}
	}
	sortEntries(all.Entries)
	if all.Evaluate(threshold) {
		return all
	}
	return nil
}

// voteEntry packages the fast votes for one received block into an
// UnlockEntry, voters ascending.
func (rs *roundState) voteEntry(id types.BlockID) (types.UnlockEntry, bool) {
	b, ok := rs.blocks[id]
	if !ok {
		return types.UnlockEntry{}, false
	}
	votes := rs.fastVotes[id]
	if len(votes) == 0 {
		return types.UnlockEntry{}, false
	}
	e := types.UnlockEntry{Header: b.Header()}
	e.Voters = make([]types.ReplicaID, 0, len(votes))
	for voter := range votes {
		e.Voters = append(e.Voters, voter)
	}
	sortReplicas(e.Voters)
	e.Sigs = make([][]byte, len(e.Voters))
	for i, voter := range e.Voters {
		e.Sigs[i] = votes[voter]
	}
	return e, true
}

func sortReplicas(ids []types.ReplicaID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// sortEntries orders proof entries by block ID so proofs are deterministic
// byte-for-byte across replicas holding the same votes.
func sortEntries(entries []types.UnlockEntry) {
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && lessBlockID(entries[j].Header.ID(), entries[j-1].Header.ID()); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
}
