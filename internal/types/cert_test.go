package types

import (
	"testing"
)

func mkVote(kind VoteKind, round Round, block BlockID, voter ReplicaID) Vote {
	return Vote{Kind: kind, Round: round, Block: block, Voter: voter, Signature: []byte{byte(voter)}}
}

func TestNewCertificate(t *testing.T) {
	var block BlockID
	block[0] = 7
	votes := []Vote{
		mkVote(VoteNotarize, 3, block, 2),
		mkVote(VoteNotarize, 3, block, 0),
		mkVote(VoteNotarize, 3, block, 1),
		mkVote(VoteNotarize, 3, block, 2), // duplicate, dropped
	}
	c, err := NewCertificate(CertNotarization, 3, block, votes)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Signers) != 3 {
		t.Fatalf("got %d signers, want 3", len(c.Signers))
	}
	for i := 1; i < len(c.Signers); i++ {
		if c.Signers[i-1] >= c.Signers[i] {
			t.Fatal("signers not strictly ascending")
		}
	}
	if err := c.CheckShape(4, 3); err != nil {
		t.Fatalf("CheckShape: %v", err)
	}
	if err := c.CheckShape(4, 4); err == nil {
		t.Fatal("CheckShape should fail below quorum")
	}
	if err := c.CheckShape(2, 3); err == nil {
		t.Fatal("CheckShape should fail with out-of-range signer")
	}
}

func TestNewCertificateRejectsMismatches(t *testing.T) {
	var b1, b2 BlockID
	b2[0] = 1
	tests := []struct {
		name string
		vote Vote
	}{
		{"wrong kind", mkVote(VoteFast, 3, b1, 0)},
		{"wrong round", mkVote(VoteNotarize, 4, b1, 0)},
		{"wrong block", mkVote(VoteNotarize, 3, b2, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewCertificate(CertNotarization, 3, b1, []Vote{tt.vote}); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestCertKindVoteKind(t *testing.T) {
	tests := []struct {
		cert CertKind
		vote VoteKind
	}{
		{CertNotarization, VoteNotarize},
		{CertFinalization, VoteFinalize},
		{CertFastFinalization, VoteFast},
	}
	for _, tt := range tests {
		if got := tt.cert.VoteKind(); got != tt.vote {
			t.Errorf("%v.VoteKind() = %v, want %v", tt.cert, got, tt.vote)
		}
	}
	if CertKind(0).VoteKind() != 0 {
		t.Error("invalid kind should map to zero")
	}
}

// unlockFixture builds headers for a round with one or two rank-0 blocks
// and one rank-1 block, plus helpers to assemble proofs.
type unlockFixture struct {
	round   Round
	leaderA BlockHeader // rank 0
	leaderB BlockHeader // rank 0 (equivocation)
	rank1   BlockHeader // rank 1
}

func newUnlockFixture(round Round) unlockFixture {
	f := unlockFixture{round: round}
	f.leaderA = BlockHeader{Round: round, Proposer: 0, Rank: 0, PayloadDigest: [32]byte{1}}
	f.leaderB = BlockHeader{Round: round, Proposer: 0, Rank: 0, PayloadDigest: [32]byte{2}}
	f.rank1 = BlockHeader{Round: round, Proposer: 1, Rank: 1, PayloadDigest: [32]byte{3}}
	return f
}

func entry(h BlockHeader, voters ...ReplicaID) UnlockEntry {
	e := UnlockEntry{Header: h}
	for _, v := range voters {
		e.Voters = append(e.Voters, v)
		e.Sigs = append(e.Sigs, []byte{byte(v)})
	}
	return e
}

// TestUnlockProofCondition1 mirrors Figure 4's round k: with n=4, f=1,
// p=1 (threshold 2), three fast votes for the rank-0 block unlock it.
func TestUnlockProofCondition1(t *testing.T) {
	f := newUnlockFixture(5)
	proof := &UnlockProof{
		Round:   5,
		Block:   f.leaderA.ID(),
		Entries: []UnlockEntry{entry(f.leaderA, 0, 1, 2)},
	}
	if !proof.Evaluate(2) {
		t.Fatal("3 votes for the block should exceed threshold 2")
	}
	// Two votes are not enough.
	proof.Entries = []UnlockEntry{entry(f.leaderA, 0, 1)}
	if proof.Evaluate(2) {
		t.Fatal("2 votes must not exceed threshold 2")
	}
	// Votes for the block plus votes for a non-leader block pool together
	// (supp(b) ∪ supp(nonLeaderBlocks)).
	proof.Entries = []UnlockEntry{entry(f.leaderA, 0, 1), entry(f.rank1, 2)}
	if !proof.Evaluate(2) {
		t.Fatal("2 votes for b plus 1 for a non-leader block should unlock")
	}
	// Overlapping voters count once.
	proof.Entries = []UnlockEntry{entry(f.leaderA, 0, 1), entry(f.rank1, 0, 1)}
	if proof.Evaluate(2) {
		t.Fatal("overlapping voters must be deduplicated")
	}
}

// TestUnlockProofCondition2 checks the strict Condition-2 semantics: the
// support bound must hold no matter which rank-0 block is taken as max(k)
// (see cond2Support for why the paper-literal "largest support" choice is
// unsound against adversarial vote presentation). With n=4, f=1, p=1
// (threshold 2), an equivocating leader's two rank-0 blocks plus a rank-1
// block can still unlock the whole round when support is spread.
func TestUnlockProofCondition2(t *testing.T) {
	f := newUnlockFixture(6)
	proof := &UnlockProof{
		Round: 6,
		All:   true,
		Entries: []UnlockEntry{
			entry(f.leaderA, 0),
			entry(f.leaderB, 1),
			entry(f.rank1, 2, 3),
		},
	}
	// Excluding leaderA leaves voters {1,2,3}; excluding leaderB leaves
	// {0,2,3}: both exceed 2, so the round unlocks.
	if !proof.Evaluate(2) {
		t.Fatal("spread support should satisfy strict condition 2")
	}
	// Concentrated support does not: excluding the heavy rank-0 block
	// leaves too few voters.
	proof.Entries = []UnlockEntry{
		entry(f.leaderA, 0, 1, 2),
		entry(f.rank1, 3),
	}
	if proof.Evaluate(2) {
		t.Fatal("excluding the heavy rank-0 block leaves 1 voter; must fail")
	}
}

// TestUnlockProofCondition2ForgeryResistance is the attack the strict
// semantics exists for: an adversary presents a partial view in which an
// FP-finalized block's votes are hidden behind a fake max, trying to trip
// Condition 2. The strict evaluator also excludes the FP-finalized block
// as a candidate max, capping the count.
func TestUnlockProofCondition2ForgeryResistance(t *testing.T) {
	f := newUnlockFixture(7)
	// Suppose leaderA was FP-finalized with votes {0,1,2} (n-p = 3 of 4).
	// The adversary shows only voter 0 for leaderA, makes leaderB look
	// maximal with Byzantine voter 3, and reuses voter 3 on the rank-1
	// block. Under "largest support is max" the excluded block would be
	// leaderB and the count would be |{0, 3}| -- still short here, but
	// with larger f this forges; strictly, excluding leaderA gives
	// |{3}| = 1 and the proof fails outright.
	proof := &UnlockProof{
		Round: 7,
		All:   true,
		Entries: []UnlockEntry{
			entry(f.leaderA, 0),
			entry(f.leaderB, 3),
			entry(f.rank1, 3),
		},
	}
	if proof.Evaluate(2) {
		t.Fatal("partial-view forgery must not satisfy strict condition 2")
	}
}

func TestUnlockProofRejectsMalformed(t *testing.T) {
	f := newUnlockFixture(8)
	base := func() *UnlockProof {
		return &UnlockProof{
			Round:   8,
			Block:   f.leaderA.ID(),
			Entries: []UnlockEntry{entry(f.leaderA, 0, 1, 2)},
		}
	}
	p := base()
	p.Entries[0].Header.Round = 9 // round mismatch
	if p.Evaluate(2) {
		t.Fatal("entry with mismatched round must fail")
	}
	p = base()
	p.Entries[0].Voters = []ReplicaID{2, 1, 0} // unsorted
	if p.Evaluate(2) {
		t.Fatal("unsorted voters must fail")
	}
	p = base()
	p.Entries[0].Voters = []ReplicaID{0, 0, 1} // duplicates
	if p.Evaluate(2) {
		t.Fatal("duplicate voters must fail")
	}
	p = base()
	p.Entries[0].Sigs = p.Entries[0].Sigs[:2] // sig/voter mismatch
	if p.Evaluate(2) {
		t.Fatal("voter/sig count mismatch must fail")
	}
}

func TestUnlockProofVoteCount(t *testing.T) {
	f := newUnlockFixture(9)
	p := &UnlockProof{
		Round:   9,
		Entries: []UnlockEntry{entry(f.leaderA, 0, 1), entry(f.rank1, 2, 3, 0)},
	}
	if got := p.VoteCount(); got != 5 {
		t.Fatalf("VoteCount = %d, want 5", got)
	}
}
