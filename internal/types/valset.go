package types

import (
	"bytes"
	"fmt"
	"sort"
)

// ValidatorSetDesc is the serialized form of one epoch's validator set: the
// shape that travels in snapshot responses (so joiners bootstrap membership
// together with state) and in WAL checkpoints (so replay restores the right
// set). internal/membership builds its in-memory ValidatorSet from this and
// produces it back; types only knows the wire shape.
type ValidatorSetDesc struct {
	// Epoch numbers sets from 0 (genesis) upward, +1 per applied change.
	Epoch uint32
	// Activation is the first round the set is in effect: the round after
	// the finalized ConfigChange block that created it (0 for genesis).
	Activation Round
	// Members lists the validator IDs in ascending order; Keys[i] is
	// Members[i]'s public key.
	Members []ReplicaID
	Keys    [][]byte
	// F and P are the fault and partition-tolerance parameters the set's
	// quorums derive from (Params{N: len(Members), F: F, P: P}).
	F, P uint16
}

// MaxValidatorSetMembers bounds one descriptor's member list; IDs are
// uint16 so this is the natural ceiling, and the decoder rejects anything
// larger before allocating.
const MaxValidatorSetMembers = 1 << 16

// MaxSnapshotSets bounds the validator-set history one SnapshotResponse or
// checkpoint record may carry.
const MaxSnapshotSets = 1024

// Params returns the quorum parameters the set derives.
func (d *ValidatorSetDesc) Params() Params {
	return Params{N: len(d.Members), F: int(d.F), P: int(d.P)}
}

// internedDenseIDs bounds the shared dense member table: clusters whose
// member list is 0..n-1 (every genesis set, and most reconfigured ones)
// all point at one backing array instead of each descriptor, snapshot,
// and epoch set holding its own copy.
const internedDenseIDs = 1024

var denseReplicaIDs = func() []ReplicaID {
	t := make([]ReplicaID, internedDenseIDs)
	for i := range t {
		t[i] = ReplicaID(i)
	}
	return t
}()

// InternReplicaIDs returns a shared immutable backing for dense ascending
// ID lists 0..n-1, and the input unchanged otherwise. Retained member
// lists (validator sets, descriptors decoded from snapshots and WAL
// checkpoints) intern through this so every epoch of every replica shares
// one table; the returned slice must never be mutated.
func InternReplicaIDs(ids []ReplicaID) []ReplicaID {
	if len(ids) > internedDenseIDs {
		return ids
	}
	for i, id := range ids {
		if id != ReplicaID(i) {
			return ids
		}
	}
	return denseReplicaIDs[:len(ids):len(ids)]
}

// Validate checks structural well-formedness: ascending unique members,
// one key per member, and quorum parameters that satisfy the Banyan bound.
func (d *ValidatorSetDesc) Validate() error {
	if len(d.Members) != len(d.Keys) {
		return fmt.Errorf("validator set %d: %d members but %d keys", d.Epoch, len(d.Members), len(d.Keys))
	}
	if len(d.Members) > MaxValidatorSetMembers {
		return fmt.Errorf("validator set %d: %d members exceeds limit", d.Epoch, len(d.Members))
	}
	if !sort.SliceIsSorted(d.Members, func(i, j int) bool { return d.Members[i] < d.Members[j] }) {
		return fmt.Errorf("validator set %d: members not ascending", d.Epoch)
	}
	for i := 1; i < len(d.Members); i++ {
		if d.Members[i-1] == d.Members[i] {
			return fmt.Errorf("validator set %d: duplicate member %d", d.Epoch, d.Members[i])
		}
	}
	return d.Params().Validate()
}

// Equal reports whether two descriptors are identical.
func (d *ValidatorSetDesc) Equal(o *ValidatorSetDesc) bool {
	if d == nil || o == nil {
		return d == o
	}
	if d.Epoch != o.Epoch || d.Activation != o.Activation || d.F != o.F || d.P != o.P ||
		len(d.Members) != len(o.Members) {
		return false
	}
	for i := range d.Members {
		if d.Members[i] != o.Members[i] || !bytes.Equal(d.Keys[i], o.Keys[i]) {
			return false
		}
	}
	return true
}

// EncodedSize is the exact wire length of one descriptor.
func (d *ValidatorSetDesc) EncodedSize() int {
	s := 4 + 8 + 2 + 2 + 4 // epoch + activation + f + p + member count
	for _, k := range d.Keys {
		s += 2 + 4 + len(k) // member id + key length prefix + key
	}
	return s
}
