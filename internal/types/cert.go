package types

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// BlockHeader is the hashed portion of a block. Headers appear on the wire
// inside unlock proofs, where the verifier needs the rank of a voted block
// without necessarily holding the block itself: the header re-hashes to the
// BlockID the votes name, so the rank claim is bound by collision
// resistance.
type BlockHeader struct {
	Round         Round
	Epoch         uint32
	Proposer      ReplicaID
	Rank          Rank
	Parent        BlockID
	PayloadDigest [32]byte
}

// ID computes the block ID this header hashes to. Layout must stay in
// lockstep with Block.computeID (block.go).
func (h BlockHeader) ID() BlockID {
	var hdr [8 + 4 + 2 + 2 + 32 + 32]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(h.Round))
	binary.LittleEndian.PutUint32(hdr[8:12], h.Epoch)
	binary.LittleEndian.PutUint16(hdr[12:14], uint16(h.Proposer))
	binary.LittleEndian.PutUint16(hdr[14:16], uint16(h.Rank))
	copy(hdr[16:48], h.Parent[:])
	copy(hdr[48:80], h.PayloadDigest[:])
	hash := sha256.New()
	hash.Write([]byte("banyan/block/v2"))
	hash.Write(hdr[:])
	var id BlockID
	hash.Sum(id[:0])
	return id
}

// Header extracts the block's header.
func (b *Block) Header() BlockHeader {
	return BlockHeader{
		Round:         b.Round,
		Epoch:         b.Epoch,
		Proposer:      b.Proposer,
		Rank:          b.Rank,
		Parent:        b.Parent,
		PayloadDigest: b.Payload.Digest(),
	}
}

// CertKind distinguishes the aggregate certificates of the protocol.
type CertKind uint8

const (
	// CertNotarization aggregates NotarizationQuorum notarization votes
	// (paper: "notarization", N in Figure 3).
	CertNotarization CertKind = iota + 1
	// CertFinalization aggregates FinalizationQuorum finalization votes
	// ("finalization", F in Figure 3) — SP-finalization.
	CertFinalization
	// CertFastFinalization aggregates FastQuorum fast votes for a rank-0
	// block (Addition 4) — FP-finalization.
	CertFastFinalization
)

func (k CertKind) String() string {
	switch k {
	case CertNotarization:
		return "notarization"
	case CertFinalization:
		return "finalization"
	case CertFastFinalization:
		return "fast-finalization"
	default:
		return fmt.Sprintf("CertKind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined certificate kind.
func (k CertKind) Valid() bool { return k >= CertNotarization && k <= CertFastFinalization }

// VoteKind returns the kind of vote the certificate aggregates.
func (k CertKind) VoteKind() VoteKind {
	switch k {
	case CertNotarization:
		return VoteNotarize
	case CertFinalization:
		return VoteFinalize
	case CertFastFinalization:
		return VoteFast
	default:
		return 0
	}
}

// Certificate is an aggregate of quorum-many votes of one kind for one
// block. The paper aggregates votes into BLS multi-signatures; this
// implementation substitutes a signer list plus one signature per signer
// (see DESIGN.md section 2) — same quorum semantics, transferable, and the
// certificate size still grows with the quorum, preserving the message-size
// behaviour the evaluation depends on.
type Certificate struct {
	Kind    CertKind
	Round   Round
	Block   BlockID
	Signers []ReplicaID // ascending, no duplicates
	Sigs    [][]byte    // Sigs[i] is Signers[i]'s signature over the vote digest
}

// NewCertificate assembles a certificate from collected votes of the given
// kind for the given block. Votes for other blocks/rounds/kinds are
// rejected.
func NewCertificate(kind CertKind, round Round, block BlockID, votes []Vote) (*Certificate, error) {
	want := kind.VoteKind()
	c := &Certificate{Kind: kind, Round: round, Block: block}
	seen := make(map[ReplicaID]bool, len(votes))
	sorted := make([]Vote, 0, len(votes))
	for _, v := range votes {
		if v.Kind != want || v.Round != round || v.Block != block {
			return nil, fmt.Errorf("certificate: vote %v does not match %s for round %d block %s",
				v, kind, round, block)
		}
		if seen[v.Voter] {
			continue
		}
		seen[v.Voter] = true
		sorted = append(sorted, v)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Voter < sorted[j].Voter })
	c.Signers = make([]ReplicaID, len(sorted))
	c.Sigs = make([][]byte, len(sorted))
	for i, v := range sorted {
		c.Signers[i] = v.Voter
		c.Sigs[i] = v.Signature
	}
	return c, nil
}

// Digest returns the vote digest every signature in the certificate covers.
func (c *Certificate) Digest() [32]byte {
	return VoteDigest(c.Kind.VoteKind(), c.Round, c.Block)
}

// CheckShape verifies the structural well-formedness of the certificate:
// sorted unique signers with in-range IDs and one signature each, meeting
// the given quorum. Signature verification is done by crypto.VerifyCert.
func (c *Certificate) CheckShape(n, quorum int) error {
	if !c.Kind.Valid() {
		return fmt.Errorf("certificate: invalid kind %d", c.Kind)
	}
	if len(c.Signers) != len(c.Sigs) {
		return fmt.Errorf("certificate: %d signers but %d signatures", len(c.Signers), len(c.Sigs))
	}
	if len(c.Signers) < quorum {
		return fmt.Errorf("certificate: %d signers below quorum %d", len(c.Signers), quorum)
	}
	for i, s := range c.Signers {
		if int(s) >= n {
			return fmt.Errorf("certificate: signer %d out of range (n=%d)", s, n)
		}
		if i > 0 && c.Signers[i-1] >= s {
			return fmt.Errorf("certificate: signers not strictly ascending at index %d", i)
		}
	}
	return nil
}

func (c *Certificate) String() string {
	return fmt.Sprintf("%s{r=%d b=%s |signers|=%d}", c.Kind, c.Round, c.Block, len(c.Signers))
}

// UnlockEntry groups the fast votes an unlock proof contains for one block,
// together with that block's header (which binds the block's rank).
type UnlockEntry struct {
	Header BlockHeader
	Voters []ReplicaID // ascending, no duplicates
	Sigs   [][]byte    // fast-vote signatures, aligned with Voters
}

// UnlockProof is the transferable evidence that a block is unlocked
// (Definition 7.7): a collection of fast votes that satisfies one of the
// two conditions of Definition 7.6 from any verifier's standpoint.
type UnlockProof struct {
	Round Round
	Block BlockID // block claimed unlocked; ignored when All is set
	// All marks a Condition-2 proof: every current and future block of the
	// round is unlocked.
	All     bool
	Entries []UnlockEntry
}

// Evaluate re-runs Definition 7.6 over the proof's own votes and reports
// whether they establish the claim, assuming all contained votes verify
// (signature checking is crypto.VerifyUnlockProof's job). threshold is
// Params.UnlockThreshold() = f + p.
//
// Condition 1: |supp(b) ∪ supp(nonLeaderBlocks)| > f+p unlocks b.
// Condition 2: |supp(nonMaxBlocks)| > f+p unlocks every block of the round,
// where max is a rank-0 block with the greatest support among the entries.
func (u *UnlockProof) Evaluate(threshold int) bool {
	for _, e := range u.Entries {
		if e.Header.Round != u.Round {
			return false
		}
		if len(e.Voters) != len(e.Sigs) {
			return false
		}
		for i := 1; i < len(e.Voters); i++ {
			if e.Voters[i-1] >= e.Voters[i] {
				return false
			}
		}
	}
	if u.All {
		return u.cond2Support() > threshold
	}
	return u.cond1Support(u.Block) > threshold
}

// cond1Support computes |supp(b) ∪ supp(nonLeaderBlocks)| over the entries.
func (u *UnlockProof) cond1Support(b BlockID) int {
	voters := make(map[ReplicaID]bool)
	for _, e := range u.Entries {
		id := e.Header.ID()
		if id == b || e.Header.Rank != 0 {
			for _, v := range e.Voters {
				voters[v] = true
			}
		}
	}
	return len(voters)
}

// cond2Support computes the Condition-2 support under the *strict*
// semantics: the smallest |supp(entries \ {m})| over every possible choice
// of the excluded rank-0 block m (including "m is a block the verifier has
// not seen", i.e. excluding nothing).
//
// Definition 7.2 picks max(k) as the rank-0 block with the largest
// support, but a verifier working from a transferred vote set cannot know
// the true max: an adversary could withhold votes for an FP-finalized
// block so that a different block looks maximal, smuggling that block's
// honest votes into the Condition-2 count and forging an "all unlocked"
// proof for a round with an FP-finalized block (breaking Lemma 8.5 for
// f >= 2). Requiring the bound for every candidate max closes the gap:
//
//   - Sound: if block b is FP-finalized, votes for blocks other than b
//     come from at most p honest + f Byzantine distinct voters, so the
//     choice m = b (or m absent when b's votes are withheld) caps the
//     support at f+p.
//   - Live: in Lemma 8.1's pigeonhole, either supp(max) > f+p (then
//     Condition 1 already unlocks max), or supp(max) <= f+p and the total
//     2f+2p+1 support means removing any single rank-0 block leaves more
//     than f+p voters, so the strict condition still fires.
func (u *UnlockProof) cond2Support() int {
	support := func(skip int) int {
		voters := make(map[ReplicaID]bool)
		for i, e := range u.Entries {
			if i == skip {
				continue
			}
			for _, v := range e.Voters {
				voters[v] = true
			}
		}
		return len(voters)
	}
	min := support(-1) // the excluded max may be a block with no entry
	for i, e := range u.Entries {
		if e.Header.Rank != 0 {
			continue
		}
		if s := support(i); s < min {
			min = s
		}
	}
	return min
}

func lessID(a, b BlockID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// VoteCount returns the total number of fast votes carried by the proof.
func (u *UnlockProof) VoteCount() int {
	n := 0
	for _, e := range u.Entries {
		n += len(e.Voters)
	}
	return n
}

func (u *UnlockProof) String() string {
	if u == nil {
		return "unlock{nil}"
	}
	return fmt.Sprintf("unlock{r=%d b=%s all=%v votes=%d}", u.Round, u.Block, u.All, u.VoteCount())
}
