package types

import "sync"

// Scratch-buffer pool shared by the encode paths that frame messages —
// the TCP transport's frame writer and the WAL's record framing — so
// steady-state encoding allocates nothing. A pooled buffer is strictly
// scratch: its bytes must be fully consumed (written to a socket or a
// bufio.Writer) before PutBuffer, and it must never be handed to
// DecodeMessageInPlace or SetCachedEncoding, both of which retain their
// input.

const (
	// bufPoolInitCap sizes fresh pool buffers to hold a typical vote or
	// certificate frame without growing.
	bufPoolInitCap = 4 << 10
	// bufPoolMaxCap caps what PutBuffer retains, so one multi-megabyte
	// block doesn't pin its footprint in the pool forever.
	bufPoolMaxCap = 1 << 20
)

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, bufPoolInitCap)
		return &b
	},
}

// GetBuffer returns a pooled scratch buffer with zero length and at
// least bufPoolInitCap capacity. Pass it back with PutBuffer.
func GetBuffer() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuffer returns a scratch buffer to the pool. The caller must not
// touch the slice (or anything aliasing it) afterwards.
func PutBuffer(b *[]byte) {
	if cap(*b) > bufPoolMaxCap {
		return // let oversized one-offs be collected
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
