// Package types defines the core data model shared by every consensus
// engine in this repository: replica identities, rounds, ranks, blocks,
// votes, certificates, protocol parameters and the wire encoding used by
// the TCP transport.
//
// The vocabulary follows the Banyan paper (Middleware 2024): a protocol
// proceeds in rounds, each round has a permutation of replicas assigning
// every replica a rank (rank 0 is the leader), blocks are notarized and
// finalized by aggregating votes, and Banyan additionally exchanges fast
// votes that can finalize a rank-0 block after a single round trip.
package types

import (
	"fmt"
	"math"
)

// ReplicaID identifies a replica by its index in the (fixed, permissioned)
// replica set. IDs are dense in [0, n).
type ReplicaID uint16

// Round is the protocol round, equal to the block-tree height at which a
// block proposed in that round is placed. Round 0 is reserved for the
// genesis block.
type Round uint64

// Rank is a replica's position in a round's leader permutation.
// The rank-0 replica is the round's leader.
type Rank uint16

// NoReplica is a sentinel for "no replica" in contexts where a ReplicaID is
// optional (e.g. message tracing).
const NoReplica = ReplicaID(math.MaxUint16)

// NoRank is a sentinel for "no rank": the rank a membership set assigns to
// a replica that is not a member in the queried round.
const NoRank = Rank(math.MaxUint16)

// Params carries the fault-model parameters of a deployment.
//
// Banyan requires n >= max(3f+2p-1, 3f+1) with p in [1, f]: up to f
// Byzantine replicas are tolerated, and the fast path succeeds whenever at
// most p replicas are unresponsive. Setting p = 1 gives the classic
// n >= 3f+1 bound at no extra cost; p = f makes the fast path robust to
// Byzantine interference (given an honest leader).
type Params struct {
	N int // total number of replicas
	F int // maximum number of Byzantine replicas tolerated
	P int // fast-path slack: replicas not needed for the fast path
}

// Validate reports whether the parameters satisfy the Banyan bound
// n >= max(3f+2p-1, 3f+1) with 1 <= p <= f (or p == 0 for protocols
// without a fast path, which only need n >= 3f+1).
func (p Params) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("params: n = %d must be positive", p.N)
	}
	if p.F < 0 {
		return fmt.Errorf("params: f = %d must be non-negative", p.F)
	}
	if p.P < 0 {
		return fmt.Errorf("params: p = %d must be non-negative", p.P)
	}
	if p.P > p.F && !(p.F == 0 && p.P == 0) {
		return fmt.Errorf("params: p = %d must not exceed f = %d", p.P, p.F)
	}
	min := 3*p.F + 2*p.P - 1
	if m := 3*p.F + 1; m > min {
		min = m
	}
	if p.N < min {
		return fmt.Errorf("params: n = %d below bound max(3f+2p-1, 3f+1) = %d for f = %d, p = %d",
			p.N, min, p.F, p.P)
	}
	return nil
}

// NotarizationQuorum is the number of notarization votes required to
// notarize a block in Banyan: ceil((n+f+1)/2) (Algorithm 2, line 45).
// At n = 3f+1 this equals the familiar 2f+1 = n-f.
func (p Params) NotarizationQuorum() int {
	return (p.N + p.F + 2) / 2 // ceil((n+f+1)/2)
}

// FinalizationQuorum is the number of finalization votes required to
// SP-finalize a block in Banyan: ceil((n+f+1)/2) (Algorithm 2, line 56).
func (p Params) FinalizationQuorum() int {
	return (p.N + p.F + 2) / 2
}

// FastQuorum is the number of fast votes required to FP-finalize a rank-0
// block: n - p (Definition 6.2, Algorithm 2 line 56).
func (p Params) FastQuorum() int {
	return p.N - p.P
}

// UnlockThreshold is the strict lower bound of Definition 7.6: a support
// set unlocks a block once its size exceeds f + p.
func (p Params) UnlockThreshold() int {
	return p.F + p.P
}

// ICCQuorum is the n-f quorum used by the ICC baseline (paper section 4)
// for both notarization and finalization.
func (p Params) ICCQuorum() int {
	return p.N - p.F
}

// MaxFaultyFor returns the largest f tolerable for n replicas under the
// classic n >= 3f+1 bound.
func MaxFaultyFor(n int) int {
	if n < 1 {
		return 0
	}
	return (n - 1) / 3
}

// BanyanParams builds Params for n replicas with the largest f such that
// n >= max(3f+2p-1, 3f+1) still holds for the given p. It is a convenience
// for experiment setup; use Params literals when f is fixed externally.
func BanyanParams(n, p int) (Params, error) {
	if p < 1 {
		return Params{}, fmt.Errorf("params: p = %d must be at least 1", p)
	}
	for f := (n - 1) / 3; f >= p; f-- {
		pr := Params{N: n, F: f, P: p}
		if pr.Validate() == nil {
			return pr, nil
		}
	}
	// Fall back to f = p if even that fails, reporting the error.
	pr := Params{N: n, F: p, P: p}
	if err := pr.Validate(); err != nil {
		return Params{}, err
	}
	return pr, nil
}

func (p Params) String() string {
	return fmt.Sprintf("n=%d f=%d p=%d", p.N, p.F, p.P)
}
